// Command threadedconvo runs the YCSB-E application pattern of Table 3 ("threaded
// conversations") on P-Masstree. Messages are keyed by
// (conversation, sequence) so fetching a thread is a short range scan
// starting at the conversation prefix — 95% scans, 5% appends.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	recipe "repro"
)

const (
	conversations = 2_000
	seedMessages  = 50
	workers       = 8
)

// msgKey builds an order-preserving (conversation, sequence) key so that
// one conversation's messages are contiguous in the index.
func msgKey(convo, seq uint64) []byte {
	k := make([]byte, 16)
	binary.BigEndian.PutUint64(k[:8], convo)
	binary.BigEndian.PutUint64(k[8:], seq)
	return k
}

func main() {
	heap := recipe.NewHeap()
	idx, err := recipe.NewOrdered("P-Masstree", heap, recipe.YCSBString)
	if err != nil {
		log.Fatal(err)
	}

	// Seed every conversation with an initial thread.
	var nextSeq sync.Map
	for c := uint64(0); c < conversations; c++ {
		for s := uint64(0); s < seedMessages; s++ {
			if err := idx.Insert(msgKey(c, s), c*1_000_000+s); err != nil {
				log.Fatal(err)
			}
		}
		seq := new(uint64)
		*seq = seedMessages
		nextSeq.Store(c, seq)
	}

	var wg sync.WaitGroup
	var scans, appends, scanned int64
	var mu sync.Mutex
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var sc, ap, msgs int64
			for i := 0; i < 50_000; i++ {
				convo := uint64(rng.Intn(conversations))
				if rng.Intn(100) < 95 {
					// Fetch the most recent window of the thread.
					n := idx.Scan(msgKey(convo, 0), 25, func(k []byte, v uint64) bool {
						return binary.BigEndian.Uint64(k[:8]) == convo
					})
					msgs += int64(n)
					sc++
				} else {
					// Append a message: per-conversation sequence numbers
					// are claimed with a private counter per worker slot.
					v, _ := nextSeq.Load(convo)
					seq := uint64(w)*1_000_000 + uint64(i) + *v.(*uint64)
					if err := idx.Insert(msgKey(convo, seq), seq); err != nil {
						log.Fatal(err)
					}
					ap++
				}
			}
			mu.Lock()
			scans += sc
			appends += ap
			scanned += msgs
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("threaded conversations: %d scans (%d messages fetched), %d appends in %v\n",
		scans, scanned, appends, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.2f Kops/s across %d workers, index holds %d messages\n",
		float64(scans+appends)/elapsed.Seconds()/1e3, workers, idx.Len())
}
