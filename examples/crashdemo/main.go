// Command crashdemo walks through RECIPE's crash-consistency story on P-ART
// (§4.5, §6.4). A crash is injected exactly between the two ordered
// atomic steps of a path-compression split — the state that leaves a
// permanently stale prefix. Readers tolerate it immediately; the first
// writer that walks past detects it with a try-lock and repairs it, so
// the index needs no recovery pass at restart.
package main

import (
	"errors"
	"fmt"
	"log"

	recipe "repro"
	"repro/internal/art"
	"repro/internal/crash"
	"repro/internal/pmem"
)

func main() {
	heap := pmem.NewFast()
	idx := art.New(heap)

	// Keys with a long shared prefix force path compression and, as they
	// diverge, a compression split (ART's SMO).
	committed := [][]byte{}
	put := func(k string, v uint64) error {
		err := idx.Insert([]byte(k), v)
		if err == nil {
			committed = append(committed, []byte(k))
		}
		return err
	}
	for i, k := range []string{
		"conversation/2026/thread-aaaa/msg-1",
		"conversation/2026/thread-aaaa/msg-2",
		"conversation/2026/thread-aaaa/msg-3",
	} {
		if err := put(k, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Arm the injector at the exact mid-SMO point: after the new parent
	// node is installed (step 1), before the old node's prefix is
	// shortened (step 2).
	heap.SetInjector(crash.NewAtSite("art.split.installed", 1))
	fmt.Println("inserting a diverging key with a crash armed mid-split...")
	err := put("conversation/2026/thread-bbbb/msg-1", 99)
	if !errors.Is(err, recipe.ErrCrashed) {
		log.Fatalf("expected a simulated crash, got %v", err)
	}
	heap.SetInjector(nil)
	fmt.Println("crash! the old node now carries a stale compressed prefix")

	// Restart: RECIPE indexes only re-initialise locks — no recovery scan.
	idx.Recover()

	// Reads tolerate the inconsistency: every committed key is readable
	// because readers compare depth+prefixLen against the immutable level
	// field and skip the stale prefix (§6.4).
	for i, k := range committed {
		v, ok := idx.Lookup(k)
		if !ok || v != uint64(i) {
			log.Fatalf("committed key %q lost after crash", k)
		}
	}
	fmt.Printf("all %d committed keys still readable through the inconsistency\n", len(committed))

	// The first write through the damaged path acquires the node lock
	// with try-lock (nothing concurrent can hold it, so the inconsistency
	// is permanent, not transient) and replays the prefix fix.
	if err := idx.Insert([]byte("conversation/2026/thread-cccc/msg-1"), 100); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first post-crash write repaired the prefix via the helper mechanism")

	v, ok := idx.Lookup([]byte("conversation/2026/thread-cccc/msg-1"))
	fmt.Printf("index fully serviceable again: new key -> %d (%v), %d keys total\n",
		v, ok, idx.Len())
}
