// Command sessionstore runs the YCSB-A application pattern of Table 3 ("a session
// store") on P-CLHT, the paper's headline conversion (30 LOC, beats the
// state-of-the-art hand-crafted PM hash table by up to 2.4x).
//
// A fleet of worker goroutines records and reads back session state
// keyed by session ID — a 50/50 read/write mix — while the simulated PM
// heap guarantees every committed write would survive a crash.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	recipe "repro"
)

const (
	workers  = 8
	sessions = 200_000
)

func main() {
	heap := recipe.NewHeap()
	store, err := recipe.NewHash("P-CLHT", heap)
	if err != nil {
		log.Fatal(err)
	}

	// Populate: every session gets an initial state token.
	for id := uint64(1); id <= sessions; id++ {
		if err := store.Insert(id, id*10); err != nil {
			log.Fatal(err)
		}
	}

	// Session traffic: half the operations refresh a session (write), half
	// validate one (read) — workload A's mix.
	var wg sync.WaitGroup
	var reads, writes, misses int64
	var mu sync.Mutex
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var r, wr, m int64
			for i := 0; i < 250_000; i++ {
				id := uint64(rng.Intn(sessions)) + 1
				if i%2 == 0 {
					if err := store.Insert(id, uint64(time.Now().UnixNano())); err != nil {
						log.Fatal(err)
					}
					wr++
				} else {
					if _, ok := store.Lookup(id); !ok {
						m++
					}
					r++
				}
			}
			mu.Lock()
			reads += r
			writes += wr
			misses += m
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := reads + writes
	fmt.Printf("session store: %d ops (%d reads / %d writes) in %v across %d workers\n",
		total, reads, writes, elapsed.Round(time.Millisecond), workers)
	fmt.Printf("throughput: %.2f Mops/s, misses: %d\n",
		float64(total)/elapsed.Seconds()/1e6, misses)
	s := heap.Stats()
	fmt.Printf("persistence: %d clwb (%.2f per write), %d mfence\n",
		s.Clwb, float64(s.Clwb)/float64(writes+sessions), s.Fence)
}
