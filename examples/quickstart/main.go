// Command quickstart builds a RECIPE-converted persistent index, writes and reads
// through it, and inspects the persistence counters the simulated PM heap
// collects (the clwb/mfence placements are the RECIPE conversion).
package main

import (
	"fmt"
	"log"

	recipe "repro"
)

func main() {
	heap := recipe.NewHeap()
	idx, err := recipe.NewOrdered("P-ART", heap, recipe.YCSBString)
	if err != nil {
		log.Fatal(err)
	}

	// Point writes and reads.
	for i, name := range []string{"alice", "bob", "carol", "dave", "erin"} {
		if err := idx.Insert([]byte("user:"+name), uint64(1000+i)); err != nil {
			log.Fatal(err)
		}
	}
	if v, ok := idx.Lookup([]byte("user:carol")); ok {
		fmt.Printf("user:carol -> %d\n", v)
	}

	// Ordered range scan.
	fmt.Println("scan from user:bob:")
	idx.Scan([]byte("user:bob"), 3, func(k []byte, v uint64) bool {
		fmt.Printf("  %s = %d\n", k, v)
		return true
	})

	// Deletes commit with a single atomic store, like every other update.
	if del, err := idx.Delete([]byte("user:dave")); err != nil || !del {
		log.Fatalf("delete: %v %v", del, err)
	}
	fmt.Printf("after delete, %d keys remain\n", idx.Len())

	// The heap counted every simulated clwb and mfence the converted
	// index issued — the quantities Fig 4c of the paper reports.
	s := heap.Stats()
	fmt.Printf("persistence counters: %d clwb, %d mfence, %d allocations (%d bytes)\n",
		s.Clwb, s.Fence, s.Allocs, s.AllocBytes)
}
