// Package hot implements P-HOT, the RECIPE conversion of the Height
// Optimized Trie (Binna et al., SIGMOD '18) to persistent memory (§6.1).
//
// HOT keeps trie height low by packing many discriminative decisions into
// compound nodes with high, adaptive fanout. Every update is performed by
// copy-on-write: the affected compound node (or, during a structure
// modification, the affected subtree) is rebuilt off-path and committed
// by atomically swapping the single pointer that references it. SMOs lock
// the affected nodes bottom-up and unlock top-down. Because every change
// becomes visible through one hardware-atomic pointer store, HOT
// satisfies RECIPE Condition #1 and its conversion only adds cache-line
// write-backs and fences around the commit (38 LOC in the paper).
//
// This port keeps the commit protocol, the compound high-fanout nodes,
// and the bottom-up-lock SMOs, but replaces the original's SIMD-packed
// sparse-partial-key layout with portable sorted entry arrays: the
// discriminative-bit search inside a node becomes a binary search, which
// preserves the cache-efficiency argument (one compact node per ~log_16
// levels of the key space) without processor-specific code.
package hot

import (
	"bytes"
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// MaxFanout is the compound-node capacity.
const MaxFanout = 16

// ErrEmptyKey is returned for zero-length keys.
var ErrEmptyKey = errors.New("hot: empty key")

// entry is one slot of a compound node: a full-key leaf or a child
// subtree. key is immutable; it is the leaf's key or the subtree's
// separator (a lower bound of every key below it). Only the child pointer
// mutates, and only under the owning node's lock.
type entry struct {
	key    []byte
	isLeaf bool
	value  uint64
	child  atomic.Pointer[hnode]
}

func leafEntry(key []byte, v uint64) *entry {
	return &entry{key: append([]byte(nil), key...), isLeaf: true, value: v}
}

func childEntry(sep []byte, n *hnode) *entry {
	e := &entry{key: sep}
	e.child.Store(n)
	return e
}

// hnode is a compound node. The entry set (keys, kinds, values) is
// immutable after publication; replacing it means building a new node and
// swapping the single pointer that references the old one.
type hnode struct {
	pm       pmem.Obj
	lock     pmlock.Mutex
	obsolete atomic.Bool
	entries  []*entry
}

// entryBytes is the nominal persistent footprint of one slot (separator
// reference + tagged pointer), used for flush accounting.
const entryBytes = 24

func (n *hnode) bytesSize() uintptr {
	s := uintptr(16)
	for i := range n.entries {
		s += uintptr(len(n.entries[i].key)) + entryBytes
	}
	return s
}

// candidate returns the index of the entry routing key (the last entry
// with entry.key <= key), or -1 when key sorts before every entry.
func (n *hnode) candidate(key []byte) int {
	i := sort.Search(len(n.entries), func(i int) bool {
		return bytes.Compare(n.entries[i].key, key) > 0
	})
	return i - 1
}

// Index is a persistent height-optimized trie mapping byte-string keys to
// uint64 values. Lookups and scans are non-blocking; writers lock
// bottom-up around the copy-on-write commit.
type Index struct {
	heap   *pmem.Heap
	rootPM pmem.Obj
	root   atomic.Pointer[hnode]
	rootMu pmlock.Mutex
	count  atomic.Int64
}

// New returns an empty P-HOT backed by heap.
func New(heap *pmem.Heap) *Index {
	idx := &Index{heap: heap}
	idx.rootPM = heap.Alloc(64)
	heap.Shadow(idx.rootPM, &idx.root)
	// RECIPE: persist the root line at creation.
	heap.PersistFence(idx.rootPM, 0, 64)
	return idx
}

// Len returns the number of keys.
func (idx *Index) Len() int { return int(idx.count.Load()) }

// newNode builds and persists a compound node from sorted entries.
func (idx *Index) newNode(entries []*entry) *hnode {
	n := &hnode{entries: entries}
	n.pm = idx.heap.Alloc(n.bytesSize())
	idx.heap.Shadow(n.pm, n)
	// RECIPE: persist the copy-on-write node before it is published.
	idx.heap.Persist(n.pm, 0, n.bytesSize())
	return n
}

// Lookup returns the value stored under key. Non-blocking: compound nodes
// are immutable snapshots and commits are single pointer swaps, so a
// reader sees either the old or the new version of a subtree.
func (idx *Index) Lookup(key []byte) (uint64, bool) {
	n := idx.root.Load()
	for n != nil {
		idx.heap.Load(n.pm, 0, n.bytesSize())
		i := n.candidate(key)
		if i < 0 {
			return 0, false
		}
		e := n.entries[i]
		if e.isLeaf {
			if bytes.Equal(e.key, key) {
				return e.value, true
			}
			return 0, false
		}
		n = e.child.Load()
	}
	return 0, false
}

// Scan visits keys >= start in ascending order until fn returns false or
// count keys have been visited (count <= 0 = unbounded). Like the other
// tries, HOT has no leaf sibling links, so scans walk the tree — the
// reason trie scans trail FAST & FAIR on YCSB E (§7.1).
func (idx *Index) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	visited := 0
	var walk func(n *hnode) bool
	walk = func(n *hnode) bool {
		if n == nil {
			return true
		}
		idx.heap.Load(n.pm, 0, n.bytesSize())
		for i, e := range n.entries {
			if e.isLeaf {
				if bytes.Compare(e.key, start) < 0 {
					continue
				}
				if !fn(e.key, e.value) {
					return false
				}
				visited++
				if count > 0 && visited >= count {
					return false
				}
				continue
			}
			// Prune subtrees whose range ends before start.
			if i+1 < len(n.entries) && bytes.Compare(n.entries[i+1].key, start) <= 0 {
				continue
			}
			if !walk(e.child.Load()) {
				return false
			}
		}
		return true
	}
	walk(idx.root.Load())
	return visited
}

// Recover re-initialises all node locks after a simulated crash. No
// structural repair is needed: commits are single atomic stores, so every
// crash state is either before or after a complete update (§6.1).
func (idx *Index) Recover() {
	idx.rootMu.Reset()
	var walk func(n *hnode)
	walk = func(n *hnode) {
		if n == nil {
			return
		}
		n.lock.Reset()
		for _, e := range n.entries {
			if !e.isLeaf {
				walk(e.child.Load())
			}
		}
	}
	walk(idx.root.Load())
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
