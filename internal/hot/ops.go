package hot

import "bytes"

// pathEl records one descent step: path[i].n.entries[path[i].slot] is the
// child entry taken.
type pathEl struct {
	n    *hnode
	slot int
}

// Insert stores value under key, overwriting an existing binding. Every
// mutation is copy-on-write, committed by a single atomic pointer swap
// (Condition #1); structure modifications lock the affected nodes
// bottom-up and unlock top-down, as in the original (§6.1).
func (idx *Index) Insert(key []byte, value uint64) (err error) {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	defer recoverCrash(&err)
	for {
		if idx.tryInsert(key, value) {
			return nil
		}
	}
}

func (idx *Index) tryInsert(key []byte, value uint64) bool {
	root := idx.root.Load()
	if root == nil {
		idx.rootMu.Lock()
		if idx.root.Load() != nil {
			idx.rootMu.Unlock()
			return false
		}
		nn := idx.newNode([]*entry{leafEntry(key, value)})
		idx.heap.Fence()
		idx.heap.CrashPoint("hot.rootinit.built")
		idx.root.Store(nn)
		idx.heap.Dirty(idx.rootPM, 0, 8)
		// RECIPE: flush + fence after the committing root store.
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("hot.rootinit.commit")
		idx.count.Add(1)
		idx.rootMu.Unlock()
		return true
	}
	var path []pathEl
	n := root
	for {
		i := n.candidate(key)
		if i >= 0 && !n.entries[i].isLeaf {
			path = append(path, pathEl{n, i})
			n = n.entries[i].child.Load()
			continue
		}
		break
	}
	return idx.commitInsert(path, n, key, value)
}

// commitInsert builds the copy-on-write replacement for target (update,
// sorted insert, or overflow split) and swaps it in.
func (idx *Index) commitInsert(path []pathEl, target *hnode, key []byte, value uint64) bool {
	var locked []*hnode
	defer func() {
		// Unlock top-down, as HOT's SMO protocol specifies.
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].lock.Unlock()
		}
	}()
	target.lock.Lock()
	locked = append(locked, target)
	if target.obsolete.Load() {
		return false
	}
	i := target.candidate(key)
	if i >= 0 && target.entries[i].isLeaf && bytes.Equal(target.entries[i].key, key) {
		// Update: COW with one slot replaced.
		ne := append([]*entry(nil), target.entries...)
		ne[i] = leafEntry(key, value)
		nn := idx.newNode(ne)
		idx.heap.Fence()
		idx.heap.CrashPoint("hot.update.built")
		return idx.swapUp(path, len(path), target, nn, nil, &locked)
	}
	ne := make([]*entry, 0, len(target.entries)+1)
	ne = append(ne, target.entries[:i+1]...)
	ne = append(ne, leafEntry(key, value))
	ne = append(ne, target.entries[i+1:]...)
	if len(ne) <= MaxFanout {
		nn := idx.newNode(ne)
		idx.heap.Fence()
		idx.heap.CrashPoint("hot.insert.built")
		if idx.swapUp(path, len(path), target, nn, nil, &locked) {
			idx.count.Add(1)
			return true
		}
		return false
	}
	// Overflow: split into two compound nodes (the SMO).
	mid := len(ne) / 2
	ln := idx.newNode(ne[:mid:mid])
	rn := idx.newNode(ne[mid:])
	idx.heap.Fence()
	idx.heap.CrashPoint("hot.split.built")
	if idx.swapUp(path, len(path), target, ln, rn, &locked) {
		idx.count.Add(1)
		return true
	}
	return false
}

// swapUp replaces the subtree rooted at old with left (and right, when a
// split added a sibling), ascending while parents overflow. The commit is
// always a single atomic pointer store: either an in-place child-pointer
// swap (no split) or the swap installing the highest rebuilt ancestor.
// Ancestors are locked bottom-up as they are reached.
func (idx *Index) swapUp(path []pathEl, d int, old *hnode, left, right *hnode, locked *[]*hnode) bool {
	if d == 0 {
		idx.rootMu.Lock()
		defer idx.rootMu.Unlock()
		if idx.root.Load() != old {
			return false
		}
		nn := left
		if right != nil {
			nn = idx.newNode([]*entry{
				childEntry(left.entries[0].key, left),
				childEntry(right.entries[0].key, right),
			})
			idx.heap.Fence()
			idx.heap.CrashPoint("hot.rootgrow.built")
		}
		idx.root.Store(nn)
		idx.heap.Dirty(idx.rootPM, 0, 8)
		// RECIPE: flush + fence after the committing root store.
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("hot.commit.root")
		old.obsolete.Store(true)
		return true
	}
	p := path[d-1].n
	slot := path[d-1].slot
	p.lock.Lock()
	*locked = append(*locked, p)
	if p.obsolete.Load() || slot >= len(p.entries) || p.entries[slot].child.Load() != old {
		return false
	}
	if right == nil {
		// Same-shape replacement: swing the child pointer atomically.
		p.entries[slot].child.Store(left)
		idx.heap.Dirty(p.pm, uintptr(slot)*entryBytes, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(p.pm, uintptr(slot)*entryBytes, 8)
		idx.heap.CrashPoint("hot.commit.swap")
		old.obsolete.Store(true)
		return true
	}
	// The split adds an entry: COW the parent, keeping its old separator
	// as the left child's lower bound.
	le := childEntry(p.entries[slot].key, left)
	re := childEntry(right.entries[0].key, right)
	ne := make([]*entry, 0, len(p.entries)+1)
	ne = append(ne, p.entries[:slot]...)
	ne = append(ne, le, re)
	ne = append(ne, p.entries[slot+1:]...)
	if len(ne) <= MaxFanout {
		np := idx.newNode(ne)
		idx.heap.Fence()
		idx.heap.CrashPoint("hot.parent.built")
		if idx.swapUp(path, d-1, p, np, nil, locked) {
			old.obsolete.Store(true)
			return true
		}
		return false
	}
	mid := len(ne) / 2
	lp := idx.newNode(ne[:mid:mid])
	rp := idx.newNode(ne[mid:])
	idx.heap.Fence()
	idx.heap.CrashPoint("hot.parentsplit.built")
	if idx.swapUp(path, d-1, p, lp, rp, locked) {
		old.obsolete.Store(true)
		return true
	}
	return false
}

// Delete removes key, committing via COW + pointer swap like every other
// HOT mutation. Emptied nodes are left in place (lazy) and reclaimed when
// their parent is next rebuilt.
func (idx *Index) Delete(key []byte) (deleted bool, err error) {
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	defer recoverCrash(&err)
	for {
		root := idx.root.Load()
		if root == nil {
			return false, nil
		}
		var path []pathEl
		n := root
		for {
			i := n.candidate(key)
			if i >= 0 && !n.entries[i].isLeaf {
				path = append(path, pathEl{n, i})
				n = n.entries[i].child.Load()
				continue
			}
			if i < 0 || !bytes.Equal(n.entries[i].key, key) {
				return false, nil
			}
			break
		}
		if del, done := idx.commitDelete(path, n, key); done {
			return del, nil
		}
	}
}

func (idx *Index) commitDelete(path []pathEl, target *hnode, key []byte) (del, done bool) {
	var locked []*hnode
	defer func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].lock.Unlock()
		}
	}()
	target.lock.Lock()
	locked = append(locked, target)
	if target.obsolete.Load() {
		return false, false
	}
	i := target.candidate(key)
	if i < 0 || !target.entries[i].isLeaf || !bytes.Equal(target.entries[i].key, key) {
		return false, true // removed concurrently; linearize as absent
	}
	ne := make([]*entry, 0, len(target.entries)-1)
	ne = append(ne, target.entries[:i]...)
	ne = append(ne, target.entries[i+1:]...)
	if len(ne) == 0 && len(path) == 0 {
		// Removing the last key of the tree.
		idx.rootMu.Lock()
		defer idx.rootMu.Unlock()
		if idx.root.Load() != target {
			return false, false
		}
		idx.root.Store(nil)
		idx.heap.Dirty(idx.rootPM, 0, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("hot.delete.root")
		target.obsolete.Store(true)
		idx.count.Add(-1)
		return true, true
	}
	nn := idx.newNode(ne)
	idx.heap.Fence()
	idx.heap.CrashPoint("hot.delete.built")
	if idx.swapUp(path, len(path), target, nn, nil, &locked) {
		idx.count.Add(-1)
		return true, true
	}
	return false, false
}
