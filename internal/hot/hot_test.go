package hot

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func newIdx() *Index { return New(pmem.NewFast()) }

func k64(v uint64) []byte { return keys.EncodeUint64(v) }

func mustInsert(t testing.TB, idx *Index, key []byte, v uint64) {
	t.Helper()
	if err := idx.Insert(key, v); err != nil {
		t.Fatalf("Insert(%x): %v", key, err)
	}
}

func TestEmpty(t *testing.T) {
	idx := newIdx()
	if _, ok := idx.Lookup(k64(1)); ok {
		t.Fatal("phantom")
	}
	if err := idx.Insert(nil, 1); err != ErrEmptyKey {
		t.Fatalf("err = %v", err)
	}
	if n := idx.Scan(nil, 0, func([]byte, uint64) bool { return true }); n != 0 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestBasic(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, []byte("hello"), 1)
	if v, ok := idx.Lookup([]byte("hello")); !ok || v != 1 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := idx.Lookup([]byte("hellp")); ok {
		t.Fatal("phantom")
	}
}

func TestUpdateCOW(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	mustInsert(t, idx, k64(1), 2)
	if v, _ := idx.Lookup(k64(1)); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestSplitsGrowTree(t *testing.T) {
	idx := newIdx()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(k64(keys.Mix64(i))); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestStringKeys(t *testing.T) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.YCSBString)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, gen.Key(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(gen.Key(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 1000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		del, err := idx.Delete(k64(i))
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", i, del, err)
		}
	}
	if del, _ := idx.Delete(k64(0)); del {
		t.Fatal("double delete")
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok := idx.Lookup(k64(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted %d present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("survivor %d missing", i)
		}
	}
	if idx.Len() != 500 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestDeleteLastKey(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(9), 9)
	if del, err := idx.Delete(k64(9)); err != nil || !del {
		t.Fatalf("Delete = %v,%v", del, err)
	}
	mustInsert(t, idx, k64(10), 10)
	if v, ok := idx.Lookup(k64(10)); !ok || v != 10 {
		t.Fatal("insert after emptying broken")
	}
}

func TestScanOrdered(t *testing.T) {
	idx := newIdx()
	var want []uint64
	for i := 0; i < 3000; i++ {
		v := keys.Mix64(uint64(i))
		mustInsert(t, idx, k64(v), v)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestScanRange(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 500; i++ {
		mustInsert(t, idx, k64(i*2), i*2)
	}
	var got []uint64
	n := idx.Scan(k64(101), 4, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if n != 4 {
		t.Fatalf("visited %d", n)
	}
	for i, g := range got {
		if g != uint64(102+i*2) {
			t.Fatalf("scan[%d] = %d", i, g)
		}
	}
}

func TestOracleRandom(t *testing.T) {
	idx := newIdx()
	oracle := make(map[string]uint64)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%05d", rng.Intn(3000))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			mustInsert(t, idx, []byte(k), v)
			oracle[k] = v
		case 2:
			if _, err := idx.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := idx.Lookup([]byte(k))
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%q) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	if idx.Len() != len(oracle) {
		t.Fatalf("Len = %d oracle %d", idx.Len(), len(oracle))
	}
}

// Property: scans are sorted and complete.
func TestQuickScanSorted(t *testing.T) {
	f := func(vals []uint64) bool {
		idx := newIdx()
		set := make(map[uint64]bool)
		for _, v := range vals {
			if idx.Insert(k64(v), v) != nil {
				return false
			}
			set[v] = true
		}
		var got []uint64
		idx.Scan(nil, 0, func(k []byte, v uint64) bool {
			got = append(got, keys.DecodeUint64(k))
			return true
		})
		if len(got) != len(set) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.RandInt)
	const threads = 8
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				if err := idx.Insert(gen.Key(id), id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if v, ok := idx.Lookup(gen.Key(id)); !ok || v != id {
					t.Errorf("readback %d = %d,%v", id, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx.Len() != threads*per {
		t.Fatalf("Len = %d want %d", idx.Len(), threads*per)
	}
}

func TestConcurrentReadersDuringCOW(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 2000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % 2000
				if v, ok := idx.Lookup(k64(k)); !ok || v != k {
					t.Errorf("reader: key %d = %d,%v", k, v, ok)
					return
				}
				i++
			}
		}()
	}
	for i := uint64(2000); i < 8000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	close(stop)
	wg.Wait()
}

// §5 crash testing: COW + single-swap commits mean every enumerated crash
// state is trivially consistent.
func TestCrashRecoveryEnumerated(t *testing.T) {
	gen := keys.NewGenerator(keys.YCSBString)
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := New(heap)
		heap.SetInjector(crash.NewNth(n))
		committed := make(map[uint64]uint64)
		crashed := false
		for i := uint64(0); i < 400; i++ {
			err := idx.Insert(gen.Key(i), i)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[i] = i
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		idx.Recover()
		for id, v := range committed {
			got, ok := idx.Lookup(gen.Key(id))
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, id, got, ok)
			}
		}
		for id := uint64(40000); id < 40080; id++ {
			if err := idx.Insert(gen.Key(id), id); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
		}
		if n > 20000 {
			t.Fatal("enumeration did not terminate")
		}
	}
}

func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := New(heap)
	gen := keys.NewGenerator(keys.YCSBString)
	for i := uint64(0); i < 800; i++ {
		mustInsert(t, idx, gen.Key(i), i)
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", i, v)
		}
	}
	for i := uint64(0); i < 800; i += 3 {
		if _, err := idx.Delete(gen.Key(i)); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("delete %d left unpersisted lines: %v", i, v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.RandInt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.RandInt)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if err := idx.Insert(gen.Key(i), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := idx.Lookup(gen.Key(uint64(i) % n)); !ok {
			b.Fatal("miss")
		}
	}
}
