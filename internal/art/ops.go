package art

import (
	"bytes"
	"sync/atomic"

	"repro/internal/crash"
)

// Insert stores value under key, overwriting the value if key exists.
// Writers are verified: unlike lookups they never descend optimistically
// through an inconsistent prefix; they detect it, distinguish transient
// from permanent with a try-lock, repair permanent damage with the RECIPE
// helper mechanism, and restart (§6.4).
func (idx *Index) Insert(key []byte, value uint64) (err error) {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	defer recoverCrash(&err)
	for {
		done, err := idx.tryInsert(key, value)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// tryInsert performs one traversal attempt. It returns done=false to
// request a restart from the root (lost race or repaired inconsistency).
func (idx *Index) tryInsert(key []byte, value uint64) (done bool, err error) {
	n := idx.root.Load()
	if n == nil {
		idx.rootMu.Lock()
		if idx.root.Load() != nil {
			idx.rootMu.Unlock()
			return false, nil
		}
		l := idx.newLeaf(key, value)
		// RECIPE: persist the leaf before publishing it.
		idx.persistAll(&l.header)
		idx.heap.Fence()
		idx.heap.CrashPoint("art.insert.rootleaf.init")
		idx.root.Store(&l.header)
		idx.heap.Dirty(idx.rootPM, 0, 8)
		// RECIPE: flush + fence after the committing root store.
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("art.insert.rootleaf.commit")
		idx.count.Add(1)
		idx.rootMu.Unlock()
		return true, nil
	}
	var parent *header
	var pslot byte
	depth := 0
	for {
		if n.kind == kLeaf {
			return idx.insertAtLeaf(parent, pslot, n.leaf(), depth, key, value)
		}
		pword := n.prefix.Load()
		plen, pb := unpackPrefix(pword)
		expected := int(n.level) - depth
		if plen != expected {
			// RECIPE: a writer distinguishes a transient inconsistency
			// (a concurrent split between its two steps) from a permanent
			// one (a crash) by acquiring the node lock with try-lock; on
			// success nothing can be in flight, so the helper repairs the
			// prefix from a leaf below and persists it.
			if n.lock.TryLock() {
				if !n.obsolete.Load() {
					if p2, _ := n.prefixSnapshot(); int(p2) != expected && expected >= 0 {
						idx.fixPrefix(n, depth)
					}
				}
				n.lock.Unlock()
			}
			return false, nil
		}
		// Verified byte comparison: writers reconstruct prefixes longer
		// than the stored seven bytes from a leaf (hybrid compression).
		cmpLen := plen
		if rem := len(key) - depth; cmpLen > rem {
			cmpLen = rem
		}
		mismatch := -1
		m := cmpLen
		if m > maxStoredPrefix {
			m = maxStoredPrefix
		}
		for i := 0; i < m; i++ {
			if pb[i] != key[depth+i] {
				mismatch = i
				break
			}
		}
		if mismatch < 0 && cmpLen > maxStoredPrefix {
			full := idx.fullPrefix(n, depth)
			if full == nil {
				return false, nil
			}
			for i := maxStoredPrefix; i < cmpLen; i++ {
				if full[i] != key[depth+i] {
					mismatch = i
					break
				}
			}
		}
		if mismatch < 0 && cmpLen < plen {
			return false, ErrPrefixKey // key exhausted inside the prefix
		}
		if mismatch >= 0 {
			return idx.splitPrefix(parent, pslot, n, depth, mismatch, key, value)
		}
		depth = int(n.level)
		if depth >= len(key) {
			return false, ErrPrefixKey
		}
		b := key[depth]
		next := n.child(b)
		if next == nil {
			return idx.insertIntoNode(parent, pslot, n, pword, b, key, value)
		}
		parent, pslot = n, b
		n = next
		depth++
	}
}

// insertAtLeaf handles reaching an existing leaf: update in place when the
// keys match, otherwise split the edge with a new node4 holding both
// leaves (copy-on-write committed by one pointer swap — Condition #1).
func (idx *Index) insertAtLeaf(parent *header, pslot byte, lf *leaf, depth int, key []byte, value uint64) (bool, error) {
	if bytes.Equal(lf.key, key) {
		// In-place update: a single atomic 8-byte store is the commit.
		lf.value.Store(value)
		idx.heap.Dirty(lf.pm, leafValOff, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(lf.pm, leafValOff, 8)
		idx.heap.CrashPoint("art.update.commit")
		return true, nil
	}
	unlock, ok := idx.lockSlot(parent, pslot, &lf.header)
	if !ok {
		return false, nil
	}
	// Recheck equality under the lock (the slot could have been replaced
	// before we locked, in which case lockSlot already failed).
	cp := 0
	maxCp := len(key) - depth
	if l := len(lf.key) - depth; l < maxCp {
		maxCp = l
	}
	for cp < maxCp && key[depth+cp] == lf.key[depth+cp] {
		cp++
	}
	if depth+cp == len(key) || depth+cp == len(lf.key) {
		unlock()
		return false, ErrPrefixKey
	}
	nn := idx.allocNode(kNode4, uint32(depth+cp), key[depth:depth+cp])
	nl := idx.newLeaf(key, value)
	n4 := nn.n4()
	n4.keys.Set(0, lf.key[depth+cp])
	n4.children[0].Store(&lf.header)
	n4.keys.Set(1, key[depth+cp])
	n4.children[1].Store(&nl.header)
	nn.count.Store(2)
	// RECIPE: persist the new leaf and node before publishing them.
	idx.persistAll(&nl.header)
	idx.persistAll(nn)
	idx.heap.Fence()
	idx.heap.CrashPoint("art.leafsplit.init")
	idx.setChildPersist(parent, pslot, nn)
	idx.heap.CrashPoint("art.leafsplit.commit")
	idx.count.Add(1)
	unlock()
	return true, nil
}

// insertIntoNode adds a leaf for branch byte b to node n (which writers
// verified has no child at b). Appends commit via a single atomic store:
// the count increment (node4/16), the index byte (node48), or the child
// pointer itself (node256). When n is full it grows by copy-on-write into
// the next node kind, committed by one pointer swap.
//
// prefixSeen is the prefix word the caller verified during its descent; a
// change means a concurrent split or repair invalidated the verification,
// so the insert restarts.
func (idx *Index) insertIntoNode(parent *header, pslot byte, n *header, prefixSeen uint64, b byte, key []byte, value uint64) (bool, error) {
	n.lock.Lock()
	if n.obsolete.Load() {
		n.lock.Unlock()
		return false, nil
	}
	// Recheck under the lock: the prefix may have been split or the slot
	// filled while we were acquiring it.
	if n.prefix.Load() != prefixSeen || n.child(b) != nil {
		n.lock.Unlock()
		return false, nil
	}
	nl := idx.newLeaf(key, value)
	// RECIPE: persist the leaf before publishing it.
	idx.persistAll(&nl.header)
	idx.heap.Fence()
	idx.heap.CrashPoint("art.insert.leafready")

	switch n.kind {
	case kNode4, kNode16:
		var keysSet func(int, byte)
		var children func(int) *childSlot
		var capN int
		if n.kind == kNode4 {
			nd := n.n4()
			keysSet = nd.keys.Set
			children = func(i int) *childSlot { return &nd.children[i] }
			capN = 4
		} else {
			nd := n.n16()
			keysSet = nd.keys.Set
			children = func(i int) *childSlot { return &nd.children[i] }
			capN = 16
		}
		cnt := int(n.count.Load())
		// Reuse a slot whose child was deleted and whose key byte matches.
		for i := 0; i < cnt; i++ {
			if keyAt(n, i) == b {
				children(i).Store(&nl.header)
				idx.heap.Dirty(n.pm, childOff(n, i), 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(n.pm, childOff(n, i), 8)
				idx.heap.CrashPoint("art.insert.slotreuse")
				idx.count.Add(1)
				n.lock.Unlock()
				return true, nil
			}
		}
		if cnt < capN {
			keysSet(cnt, b)
			children(cnt).Store(&nl.header)
			idx.heap.Dirty(n.pm, keysOff(n), 16)
			idx.heap.Dirty(n.pm, childOff(n, cnt), 8)
			// RECIPE: persist the appended entry, fence, then commit with
			// the atomic count increment, then persist the header.
			idx.heap.Persist(n.pm, keysOff(n), 16)
			idx.heap.Persist(n.pm, childOff(n, cnt), 8)
			idx.heap.Fence()
			idx.heap.CrashPoint("art.insert.appended")
			n.count.Store(uint32(cnt + 1))
			idx.heap.Dirty(n.pm, 0, hdrBytes)
			idx.heap.PersistFence(n.pm, 0, hdrBytes)
			idx.heap.CrashPoint("art.insert.commit")
			idx.count.Add(1)
			n.lock.Unlock()
			return true, nil
		}
	case kNode48:
		nd := n.n48()
		if s := nd.index.Get(int(b)); s != 0 {
			nd.children[s-1].Store(&nl.header)
			idx.heap.Dirty(n.pm, n48ChildOff+uintptr(s-1)*8, 8)
			// RECIPE: flush + fence after the committing store.
			idx.heap.PersistFence(n.pm, n48ChildOff+uintptr(s-1)*8, 8)
			idx.heap.CrashPoint("art.insert.slotreuse")
			idx.count.Add(1)
			n.lock.Unlock()
			return true, nil
		}
		cnt := int(n.count.Load())
		if cnt < 48 {
			nd.children[cnt].Store(&nl.header)
			idx.heap.Dirty(n.pm, n48ChildOff+uintptr(cnt)*8, 8)
			// RECIPE: persist the child slot, fence, then commit with the
			// atomic index-byte store, then persist the index line.
			idx.heap.Persist(n.pm, n48ChildOff+uintptr(cnt)*8, 8)
			idx.heap.Fence()
			idx.heap.CrashPoint("art.insert.appended")
			nd.index.Set(int(b), byte(cnt+1))
			n.count.Store(uint32(cnt + 1))
			idx.heap.Dirty(n.pm, n48IdxOff+uintptr(b), 1)
			idx.heap.PersistFence(n.pm, n48IdxOff+uintptr(b), 1)
			idx.heap.Dirty(n.pm, 0, hdrBytes)
			idx.heap.Persist(n.pm, 0, hdrBytes)
			idx.heap.Fence()
			idx.heap.CrashPoint("art.insert.commit")
			idx.count.Add(1)
			n.lock.Unlock()
			return true, nil
		}
	case kNode256:
		nd := n.n256()
		nd.children[b].Store(&nl.header)
		idx.heap.Dirty(n.pm, n256ChOff+uintptr(b)*8, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(n.pm, n256ChOff+uintptr(b)*8, 8)
		idx.heap.CrashPoint("art.insert.commit")
		idx.count.Add(1)
		n.lock.Unlock()
		return true, nil
	}

	// Node full: grow by copy-on-write into the next kind, carrying only
	// live entries (compaction reclaims slots freed by deletes).
	bigger := idx.growNode(n, b, &nl.header)
	// RECIPE: persist the replacement before publishing it.
	idx.persistAll(bigger)
	idx.heap.Fence()
	idx.heap.CrashPoint("art.grow.built")
	unlock, ok := idx.lockSlot(parent, pslot, n)
	if !ok {
		n.lock.Unlock()
		return false, nil
	}
	idx.setChildPersist(parent, pslot, bigger)
	idx.heap.CrashPoint("art.grow.commit")
	n.obsolete.Store(true)
	idx.count.Add(1)
	unlock()
	n.lock.Unlock()
	return true, nil
}

// childSlot aliases the child-pointer type so node4 and node16 share the
// insert code.
type childSlot = atomic.Pointer[header]

// growNode builds the next-size node containing n's live entries plus
// (b -> extra). When live occupancy leaves room (deletes freed slots) it
// rebuilds the same kind instead of growing.
func (idx *Index) growNode(n *header, b byte, extra *header) *header {
	var buf [256]entry
	es := n.entries(buf[:0:256])
	es = append(es, entry{b, extra})
	var k kind
	switch {
	case len(es) <= 4:
		k = kNode4
	case len(es) <= 16:
		k = kNode16
	case len(es) <= 48:
		k = kNode48
	default:
		k = kNode256
	}
	plen, _ := n.prefixSnapshot()
	var prefix []byte
	if plen > 0 {
		depth := int(n.level) - plen
		prefix = idx.fullPrefix(n, depth)
		if prefix == nil && extra.kind == kLeaf {
			// Every live entry was deleted; reconstruct the prefix from
			// the entry being inserted, which shares it by definition.
			prefix = extra.leaf().key[depth:int(n.level)]
		}
	}
	nn := idx.allocNode(k, n.level, prefix)
	switch k {
	case kNode4:
		nd := nn.n4()
		for i, e := range es {
			nd.keys.Set(i, e.b)
			nd.children[i].Store(e.c)
		}
		nn.count.Store(uint32(len(es)))
	case kNode16:
		nd := nn.n16()
		for i, e := range es {
			nd.keys.Set(i, e.b)
			nd.children[i].Store(e.c)
		}
		nn.count.Store(uint32(len(es)))
	case kNode48:
		nd := nn.n48()
		for i, e := range es {
			nd.children[i].Store(e.c)
			nd.index.Set(int(e.b), byte(i+1))
		}
		nn.count.Store(uint32(len(es)))
	case kNode256:
		nd := nn.n256()
		for _, e := range es {
			nd.children[e.b].Store(e.c)
		}
		nn.count.Store(uint32(len(es)))
	}
	return nn
}

// splitPrefix performs ART's SMO: the compressed prefix of n diverges from
// key at byte index mismatch, so a new node4 takes over the shared part.
// The two ordered atomic steps are (1) swap the parent's child pointer to
// the new node and (2) shorten n's prefix; a crash between them is the
// permanent inconsistency Condition #3 is about.
func (idx *Index) splitPrefix(parent *header, pslot byte, n *header, depth, mismatch int, key []byte, value uint64) (bool, error) {
	n.lock.Lock()
	if n.obsolete.Load() {
		n.lock.Unlock()
		return false, nil
	}
	// Recheck under the lock.
	plen, _ := n.prefixSnapshot()
	if plen != int(n.level)-depth {
		n.lock.Unlock()
		return false, nil
	}
	full := idx.fullPrefix(n, depth)
	if full == nil || mismatch >= plen || len(key) <= depth+mismatch ||
		full[mismatch] == key[depth+mismatch] ||
		!bytes.Equal(full[:mismatch], key[depth:depth+mismatch]) {
		n.lock.Unlock()
		return false, nil
	}
	unlock, ok := idx.lockSlot(parent, pslot, n)
	if !ok {
		n.lock.Unlock()
		return false, nil
	}

	nn := idx.allocNode(kNode4, uint32(depth+mismatch), key[depth:depth+mismatch])
	nl := idx.newLeaf(key, value)
	n4 := nn.n4()
	n4.keys.Set(0, full[mismatch])
	n4.children[0].Store(n)
	n4.keys.Set(1, key[depth+mismatch])
	n4.children[1].Store(&nl.header)
	nn.count.Store(2)
	// RECIPE: persist the new node and leaf before step 1.
	idx.persistAll(&nl.header)
	idx.persistAll(nn)
	idx.heap.Fence()
	idx.heap.CrashPoint("art.split.built")

	// Step 1: atomically install the new parent.
	idx.setChildPersist(parent, pslot, nn)
	idx.heap.CrashPoint("art.split.installed")

	// Step 2: shorten n's prefix. A crash exactly between the steps
	// leaves this store missing — the state the helper repairs.
	rest := full[mismatch+1:]
	n.prefix.Store(packPrefix(rest))
	idx.heap.Dirty(n.pm, offPrefix, 8)
	// RECIPE: flush + fence after the prefix store.
	idx.heap.PersistFence(n.pm, offPrefix, 8)
	idx.heap.CrashPoint("art.split.prefixfixed")

	idx.count.Add(1)
	unlock()
	n.lock.Unlock()
	return true, nil
}

// fixPrefix is the RECIPE helper mechanism added to the write path: with
// n locked and known to carry a stale prefix, recompute the true prefix
// from any leaf below (every leaf under n shares bytes [depth, n.level))
// and persist it (§6.4: "the write calculates and persists the correct
// prefix").
func (idx *Index) fixPrefix(n *header, depth int) {
	lf := idx.minLeaf(n)
	truePlen := int(n.level) - depth
	if lf == nil || truePlen < 0 || len(lf.key) < int(n.level) {
		return
	}
	n.prefix.Store(packPrefix(lf.key[depth:int(n.level)]))
	idx.heap.Dirty(n.pm, offPrefix, 8)
	// RECIPE: flush + fence after the repairing store.
	idx.heap.PersistFence(n.pm, offPrefix, 8)
	idx.heap.CrashPoint("art.fixprefix")
}

// Delete removes key, returning whether it was present. Deletion commits
// with a single atomic store that nils the leaf's child slot (§6.4);
// freed slots are reclaimed when the node next grows or compacts.
func (idx *Index) Delete(key []byte) (deleted bool, err error) {
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	defer recoverCrash(&err)
	for {
		del, done := idx.tryDelete(key)
		if done {
			return del, nil
		}
	}
}

func (idx *Index) tryDelete(key []byte) (deleted, done bool) {
	n := idx.root.Load()
	if n == nil {
		return false, true
	}
	if n.kind == kLeaf {
		idx.rootMu.Lock()
		r := idx.root.Load()
		if r != n {
			idx.rootMu.Unlock()
			return false, false
		}
		if !bytes.Equal(n.leaf().key, key) {
			idx.rootMu.Unlock()
			return false, true
		}
		idx.root.Store(nil)
		idx.heap.Dirty(idx.rootPM, 0, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("art.delete.root")
		idx.count.Add(-1)
		idx.rootMu.Unlock()
		return true, true
	}
	depth := 0
	for {
		plen, pb := n.prefixSnapshot()
		expected := int(n.level) - depth
		if plen != expected {
			if n.lock.TryLock() {
				if !n.obsolete.Load() && expected >= 0 {
					if p2, _ := n.prefixSnapshot(); int(p2) != expected {
						idx.fixPrefix(n, depth)
					}
				}
				n.lock.Unlock()
			}
			return false, false
		}
		m := plen
		if m > maxStoredPrefix {
			m = maxStoredPrefix
		}
		if depth+m > len(key) {
			return false, true
		}
		for i := 0; i < m; i++ {
			if pb[i] != key[depth+i] {
				return false, true
			}
		}
		if plen > maxStoredPrefix {
			full := idx.fullPrefix(n, depth)
			if full == nil {
				return false, false
			}
			if len(key)-depth < plen || !bytes.Equal(full[maxStoredPrefix:], key[depth+maxStoredPrefix:depth+plen]) {
				return false, true
			}
		}
		depth = int(n.level)
		if depth >= len(key) {
			return false, true
		}
		b := key[depth]
		next := n.child(b)
		if next == nil {
			return false, true
		}
		if next.kind == kLeaf {
			if !bytes.Equal(next.leaf().key, key) {
				return false, true
			}
			n.lock.Lock()
			if n.obsolete.Load() || n.child(b) != next {
				n.lock.Unlock()
				return false, false
			}
			idx.nilChild(n, b)
			idx.heap.CrashPoint("art.delete.commit")
			idx.count.Add(-1)
			n.lock.Unlock()
			return true, true
		}
		n = next
		depth++
	}
}

// nilChild atomically clears the child slot for byte b (caller holds n's
// lock) and persists the slot.
func (idx *Index) nilChild(n *header, b byte) {
	switch n.kind {
	case kNode4:
		nd := n.n4()
		cnt := int(n.count.Load())
		for i := 0; i < cnt; i++ {
			if nd.keys.Get(i) == b {
				nd.children[i].Store(nil)
				idx.heap.Dirty(n.pm, n4ChildOff+uintptr(i)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(n.pm, n4ChildOff+uintptr(i)*8, 8)
				return
			}
		}
	case kNode16:
		nd := n.n16()
		cnt := int(n.count.Load())
		for i := 0; i < cnt; i++ {
			if nd.keys.Get(i) == b {
				nd.children[i].Store(nil)
				idx.heap.Dirty(n.pm, n16ChildOff+uintptr(i)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(n.pm, n16ChildOff+uintptr(i)*8, 8)
				return
			}
		}
	case kNode48:
		nd := n.n48()
		if s := nd.index.Get(int(b)); s != 0 {
			nd.children[s-1].Store(nil)
			idx.heap.Dirty(n.pm, n48ChildOff+uintptr(s-1)*8, 8)
			// RECIPE: flush + fence after the committing store.
			idx.heap.PersistFence(n.pm, n48ChildOff+uintptr(s-1)*8, 8)
		}
	case kNode256:
		nd := n.n256()
		nd.children[b].Store(nil)
		idx.heap.Dirty(n.pm, n256ChOff+uintptr(b)*8, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(n.pm, n256ChOff+uintptr(b)*8, 8)
	}
}

// lockSlot locks whatever owns the slot pointing at want: the rootMu when
// parent is nil, otherwise the parent node. It verifies the slot still
// points at want (and the parent is not obsolete); on failure it returns
// ok=false with everything unlocked so the caller restarts.
func (idx *Index) lockSlot(parent *header, pslot byte, want *header) (unlock func(), ok bool) {
	if parent == nil {
		idx.rootMu.Lock()
		if idx.root.Load() != want {
			idx.rootMu.Unlock()
			return nil, false
		}
		return idx.rootMu.Unlock, true
	}
	parent.lock.Lock()
	if parent.obsolete.Load() || parent.child(pslot) != want {
		parent.lock.Unlock()
		return nil, false
	}
	return parent.lock.Unlock, true
}

// setChildPersist atomically replaces the slot (which the caller has
// locked via lockSlot) with nn and persists the containing line.
func (idx *Index) setChildPersist(parent *header, pslot byte, nn *header) {
	if parent == nil {
		idx.root.Store(nn)
		idx.heap.Dirty(idx.rootPM, 0, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		return
	}
	switch parent.kind {
	case kNode4:
		nd := parent.n4()
		cnt := int(parent.count.Load())
		for i := 0; i < cnt; i++ {
			if nd.keys.Get(i) == pslot && nd.children[i].Load() != nil {
				nd.children[i].Store(nn)
				idx.heap.Dirty(parent.pm, n4ChildOff+uintptr(i)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(parent.pm, n4ChildOff+uintptr(i)*8, 8)
				return
			}
		}
	case kNode16:
		nd := parent.n16()
		cnt := int(parent.count.Load())
		for i := 0; i < cnt; i++ {
			if nd.keys.Get(i) == pslot && nd.children[i].Load() != nil {
				nd.children[i].Store(nn)
				idx.heap.Dirty(parent.pm, n16ChildOff+uintptr(i)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(parent.pm, n16ChildOff+uintptr(i)*8, 8)
				return
			}
		}
	case kNode48:
		nd := parent.n48()
		if s := nd.index.Get(int(pslot)); s != 0 {
			nd.children[s-1].Store(nn)
			idx.heap.Dirty(parent.pm, n48ChildOff+uintptr(s-1)*8, 8)
			// RECIPE: flush + fence after the committing store.
			idx.heap.PersistFence(parent.pm, n48ChildOff+uintptr(s-1)*8, 8)
			return
		}
	case kNode256:
		nd := parent.n256()
		nd.children[pslot].Store(nn)
		idx.heap.Dirty(parent.pm, n256ChOff+uintptr(pslot)*8, 8)
		// RECIPE: flush + fence after the committing store.
		idx.heap.PersistFence(parent.pm, n256ChOff+uintptr(pslot)*8, 8)
		return
	}
	panic("art: setChildPersist slot vanished under lock")
}

// minLeaf returns some leaf below n (the first found in slot order), used
// to reconstruct compressed prefixes. Returns nil if a racing delete
// emptied the subtree.
func (idx *Index) minLeaf(n *header) *leaf {
	for n != nil {
		if n.kind == kLeaf {
			return n.leaf()
		}
		var buf [256]entry
		es := n.entries(buf[:0:256])
		if len(es) == 0 {
			return nil
		}
		n = es[0].c
	}
	return nil
}

// fullPrefix reconstructs n's complete compressed prefix (bytes
// [depth, n.level) shared by every key below n) from a leaf.
func (idx *Index) fullPrefix(n *header, depth int) []byte {
	lf := idx.minLeaf(n)
	if lf == nil || len(lf.key) < int(n.level) || depth > int(n.level) {
		return nil
	}
	return lf.key[depth:int(n.level)]
}

// keyAt / keysOff / childOff adapt slot addressing across node4/node16.
func keyAt(n *header, i int) byte {
	if n.kind == kNode4 {
		return n.n4().keys.Get(i)
	}
	return n.n16().keys.Get(i)
}

func keysOff(n *header) uintptr {
	if n.kind == kNode4 {
		return n4KeysOff
	}
	return n16KeysOff
}

func childOff(n *header, i int) uintptr {
	if n.kind == kNode4 {
		return n4ChildOff + uintptr(i)*8
	}
	return n16ChildOff + uintptr(i)*8
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
