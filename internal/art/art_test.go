package art

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func newIdx() *Index { return New(pmem.NewFast()) }

func k64(v uint64) []byte { return keys.EncodeUint64(v) }

func mustInsert(t testing.TB, idx *Index, key []byte, v uint64) {
	t.Helper()
	if err := idx.Insert(key, v); err != nil {
		t.Fatalf("Insert(%x): %v", key, err)
	}
}

func TestEmpty(t *testing.T) {
	idx := newIdx()
	if _, ok := idx.Lookup(k64(1)); ok {
		t.Fatal("lookup on empty tree hit")
	}
	if idx.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if n := idx.Scan(nil, 10, func([]byte, uint64) bool { return true }); n != 0 {
		t.Fatalf("scan on empty tree visited %d", n)
	}
}

func TestSingleKey(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(42), 100)
	if v, ok := idx.Lookup(k64(42)); !ok || v != 100 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := idx.Lookup(k64(43)); ok {
		t.Fatal("wrong key hit")
	}
}

func TestUpdateInPlace(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	mustInsert(t, idx, k64(1), 2)
	if v, _ := idx.Lookup(k64(1)); v != 2 {
		t.Fatalf("value = %d after update, want 2", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d, want 1", idx.Len())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	idx := newIdx()
	if err := idx.Insert(nil, 1); err != ErrEmptyKey {
		t.Fatalf("Insert(nil) = %v", err)
	}
	if _, err := idx.Delete(nil); err != ErrEmptyKey {
		t.Fatalf("Delete(nil) = %v", err)
	}
}

func TestPrefixKeyRejected(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, []byte("abcd"), 1)
	if err := idx.Insert([]byte("ab"), 2); err != ErrPrefixKey {
		t.Fatalf("prefix insert err = %v, want ErrPrefixKey", err)
	}
	if err := idx.Insert([]byte("abcdef"), 2); err != ErrPrefixKey {
		t.Fatalf("extension insert err = %v, want ErrPrefixKey", err)
	}
}

func TestNodeGrowthThroughAllKinds(t *testing.T) {
	idx := newIdx()
	// 256 keys differing in the last byte force node4 -> 16 -> 48 -> 256.
	var key [8]byte
	for i := 0; i < 256; i++ {
		key[7] = byte(i)
		mustInsert(t, idx, key[:], uint64(i))
	}
	for i := 0; i < 256; i++ {
		key[7] = byte(i)
		if v, ok := idx.Lookup(key[:]); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != 256 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestPathCompressionSplit(t *testing.T) {
	idx := newIdx()
	// Long shared prefixes exercise compression and splitting, including
	// prefixes beyond the 7 stored bytes.
	ks := [][]byte{
		[]byte("commonprefix-aaaaaaaaaaaa-1"),
		[]byte("commonprefix-aaaaaaaaaaaa-2"),
		[]byte("commonprefix-bbbbbbbbbbbb-1"),
		[]byte("commonprefix-bbbbbbbbbbbb-2"),
		[]byte("otherprefix-cccccccccccc-x1"),
	}
	for i, k := range ks {
		mustInsert(t, idx, k, uint64(i))
	}
	for i, k := range ks {
		if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%q) = %d,%v", k, v, ok)
		}
	}
	if _, ok := idx.Lookup([]byte("commonprefix-aaaaaaaaaaaa-3")); ok {
		t.Fatal("phantom key")
	}
}

func TestDelete(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 100; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < 100; i += 2 {
		del, err := idx.Delete(k64(i))
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", i, del, err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := idx.Lookup(k64(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && (!ok || v != i) {
			t.Fatalf("surviving key %d = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != 50 {
		t.Fatalf("Len = %d, want 50", idx.Len())
	}
	// Deleting absent keys reports false.
	if del, err := idx.Delete(k64(0)); err != nil || del {
		t.Fatalf("re-delete = %v,%v", del, err)
	}
}

func TestDeleteRootLeaf(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	if del, err := idx.Delete(k64(1)); err != nil || !del {
		t.Fatalf("Delete = %v,%v", del, err)
	}
	if _, ok := idx.Lookup(k64(1)); ok {
		t.Fatal("root leaf survived delete")
	}
	mustInsert(t, idx, k64(2), 2) // tree must remain usable
	if v, ok := idx.Lookup(k64(2)); !ok || v != 2 {
		t.Fatal("insert after root delete broken")
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	mustInsert(t, idx, k64(2), 2)
	if _, err := idx.Delete(k64(1)); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, idx, k64(1), 11)
	if v, ok := idx.Lookup(k64(1)); !ok || v != 11 {
		t.Fatalf("reinserted key = %d,%v", v, ok)
	}
}

func TestScanOrderedFull(t *testing.T) {
	idx := newIdx()
	var want []uint64
	for i := 0; i < 1000; i++ {
		v := keys.Mix64(uint64(i))
		mustInsert(t, idx, k64(v), v)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order broken at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestScanRange(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 200; i++ {
		mustInsert(t, idx, k64(i*2), i*2) // even keys 0..398
	}
	var got []uint64
	n := idx.Scan(k64(101), 10, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if n != 10 || len(got) != 10 {
		t.Fatalf("scan returned %d keys", n)
	}
	for i, g := range got {
		want := uint64(102 + i*2)
		if g != want {
			t.Fatalf("scan[%d] = %d, want %d", i, g, want)
		}
	}
}

func TestScanStopEarly(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 50; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	calls := 0
	idx.Scan(nil, 0, func([]byte, uint64) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("fn called %d times, want 5", calls)
	}
}

func TestOracleRandom(t *testing.T) {
	idx := newIdx()
	oracle := make(map[string]uint64)
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 8)
	for i := 0; i < 30000; i++ {
		rng.Read(buf)
		buf[0] &= 3 // force collisions and deep structure
		k := string(buf)
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			mustInsert(t, idx, []byte(k), v)
			oracle[k] = v
		case 2:
			if _, err := idx.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		case 3:
			v, ok := idx.Lookup([]byte(k))
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%x) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	if idx.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle = %d", idx.Len(), len(oracle))
	}
	for k, ov := range oracle {
		if v, ok := idx.Lookup([]byte(k)); !ok || v != ov {
			t.Fatalf("final Lookup(%x) = %d,%v want %d", k, v, ok, ov)
		}
	}
}

// Property: any set of same-length keys round-trips and scans in sorted
// order.
func TestQuickInsertScanSorted(t *testing.T) {
	f := func(vals []uint64) bool {
		idx := newIdx()
		set := make(map[uint64]bool)
		for _, v := range vals {
			if idx.Insert(k64(v), v) != nil {
				return false
			}
			set[v] = true
		}
		var got []uint64
		idx.Scan(nil, 0, func(k []byte, v uint64) bool {
			got = append(got, keys.DecodeUint64(k))
			return true
		})
		if len(got) != len(set) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		for _, g := range got {
			if !set[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.RandInt)
	const threads = 8
	const per = 4000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				k := gen.Key(id)
				if err := idx.Insert(k, id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if v, ok := idx.Lookup(k); !ok || v != id {
					t.Errorf("readback id %d = %d,%v", id, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx.Len() != threads*per {
		t.Fatalf("Len = %d want %d", idx.Len(), threads*per)
	}
	for id := uint64(0); id < threads*per; id += 131 {
		if v, ok := idx.Lookup(gen.Key(id)); !ok || v != id {
			t.Fatalf("final lookup %d = %d,%v", id, v, ok)
		}
	}
}

func TestConcurrentStringKeys(t *testing.T) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.YCSBString)
	const threads = 4
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				if err := idx.Insert(gen.Key(id), id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent readers and scanners.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			idx.Scan(nil, 100, func(k []byte, v uint64) bool { return true })
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	for id := uint64(0); id < threads*per; id += 97 {
		if v, ok := idx.Lookup(gen.Key(id)); !ok || v != id {
			t.Fatalf("lookup %d = %d,%v", id, v, ok)
		}
	}
}

func TestConcurrentDeleteInsert(t *testing.T) {
	idx := newIdx()
	const n = 4000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i += 2 {
			if _, err := idx.Delete(k64(i)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint64(n); i < n+2000; i++ {
			if err := idx.Insert(k64(i), i); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	for i := uint64(1); i < n; i += 2 {
		if v, ok := idx.Lookup(k64(i)); !ok || v != i {
			t.Fatalf("odd key %d = %d,%v", i, v, ok)
		}
	}
	for i := uint64(0); i < n; i += 2 {
		if _, ok := idx.Lookup(k64(i)); ok {
			t.Fatalf("even key %d survived", i)
		}
	}
}

// §5 crash testing: systematically enumerate crash states; after each,
// recover and verify no committed key is lost, lookups return correct
// values, and writes still succeed (the Condition #3 helper must repair
// stale prefixes).
func TestCrashRecoveryEnumerated(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := New(heap)
		inj := crash.NewNth(n)
		heap.SetInjector(inj)
		committed := make(map[uint64]uint64)
		crashed := false
		for id := uint64(0); id < 400; id++ {
			err := idx.Insert(gen.Key(id), id)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[id] = id
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		idx.Recover()
		for id, v := range committed {
			got, ok := idx.Lookup(gen.Key(id))
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, id, got, ok)
			}
		}
		// Post-crash writes (which exercise the helper on stale prefixes).
		for id := uint64(10000); id < 10100; id++ {
			if err := idx.Insert(gen.Key(id), id); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
			if v, ok := idx.Lookup(gen.Key(id)); !ok || v != id {
				t.Fatalf("crash state %d: post-crash readback", n)
			}
		}
	}
}

// Crash exactly between the two SMO steps: the stale-prefix state readers
// must tolerate and the first post-crash writer must repair.
func TestCrashBetweenSplitSteps(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		heap := pmem.NewFast()
		idx := New(heap)
		// Build keys with long shared prefixes so splits happen.
		base := fmt.Sprintf("prefix%02d-shared-run-", trial)
		committed := [][]byte{}
		inj := crash.NewAtSite("art.split.installed", 1)
		heap.SetInjector(inj)
		var crashedKey []byte
		for i := 0; i < 40; i++ {
			k := []byte(fmt.Sprintf("%s%04d", base, i*7))
			err := idx.Insert(k, uint64(i))
			if crash.IsCrash(err) {
				crashedKey = k
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed = append(committed, k)
		}
		heap.SetInjector(nil)
		idx.Recover()
		// All committed keys must still be readable despite the stale prefix.
		for i, k := range committed {
			if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
				t.Fatalf("trial %d: committed key %q lost after mid-SMO crash", trial, k)
			}
		}
		if crashedKey == nil {
			continue // no split happened this trial
		}
		// A post-crash write through the inconsistent path triggers the
		// helper; afterwards everything still works.
		mustInsert(t, idx, []byte(base+"zzzz"), 999)
		if v, ok := idx.Lookup([]byte(base + "zzzz")); !ok || v != 999 {
			t.Fatalf("trial %d: post-repair lookup broken", trial)
		}
		for i, k := range committed {
			if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
				t.Fatalf("trial %d: key %q lost after repair", trial, k)
			}
		}
	}
}

// Durability: every dirtied line is persisted by the time each operation
// returns.
func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := New(heap)
	gen := keys.NewGenerator(keys.YCSBString)
	for id := uint64(0); id < 400; id++ {
		mustInsert(t, idx, gen.Key(id), id)
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", id, v)
		}
	}
	for id := uint64(0); id < 400; id += 3 {
		if _, err := idx.Delete(gen.Key(id)); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("delete %d left unpersisted lines: %v", id, v)
		}
	}
}

func TestPackUnpackPrefix(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 2, 3}, {1, 2, 3, 4, 5, 6, 7}, bytes.Repeat([]byte{9}, 20)} {
		n, got := unpackPrefix(packPrefix(b))
		if n != len(b) {
			t.Fatalf("len %d, want %d", n, len(b))
		}
		m := len(b)
		if m > maxStoredPrefix {
			m = maxStoredPrefix
		}
		for i := 0; i < m; i++ {
			if got[i] != b[i] {
				t.Fatalf("byte %d = %d, want %d", i, got[i], b[i])
			}
		}
	}
}

func TestAtomicBytes(t *testing.T) {
	var a8 atomicBytes8
	var a16 atomicBytes16
	var a256 atomicBytes256
	for i := 0; i < 8; i++ {
		a8.Set(i, byte(i*3))
	}
	for i := 0; i < 16; i++ {
		a16.Set(i, byte(i*5))
	}
	for i := 0; i < 256; i++ {
		a256.Set(i, byte(i))
	}
	for i := 0; i < 8; i++ {
		if a8.Get(i) != byte(i*3) {
			t.Fatalf("a8[%d]", i)
		}
	}
	for i := 0; i < 16; i++ {
		if a16.Get(i) != byte(i*5) {
			t.Fatalf("a16[%d]", i)
		}
	}
	for i := 0; i < 256; i++ {
		if a256.Get(i) != byte(i) {
			t.Fatalf("a256[%d]", i)
		}
	}
}

func BenchmarkInsertRandInt(b *testing.B) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.RandInt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupRandInt(b *testing.B) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.RandInt)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if err := idx.Insert(gen.Key(i), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := idx.Lookup(gen.Key(uint64(i) % n)); !ok {
			b.Fatal("miss")
		}
	}
}
