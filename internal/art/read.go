package art

import "bytes"

// Lookup returns the value stored under key. Lookups are non-blocking and
// never retry: a reader that observes an inconsistent compressed prefix
// (depth + prefixLen != level, the signature of an in-flight or crashed
// path-compression split) tolerates it by skipping the prefix — the level
// field records how many bytes the prefix must cover — and verifying the
// full key at the leaf (§6.4).
func (idx *Index) Lookup(key []byte) (uint64, bool) {
	n := idx.root.Load()
	depth := 0
	for n != nil {
		idx.trackRead(n)
		if n.kind == kLeaf {
			l := n.leaf()
			if bytes.Equal(l.key, key) {
				return l.value.Load(), true
			}
			return 0, false
		}
		plen, pb := n.prefixSnapshot()
		expected := int(n.level) - depth
		if expected < 0 {
			return 0, false
		}
		if plen == expected {
			// Consistent prefix: check the stored bytes; bytes beyond the
			// seven stored inline are verified at the leaf (hybrid path
			// compression).
			m := plen
			if m > maxStoredPrefix {
				m = maxStoredPrefix
			}
			if depth+m > len(key) {
				return 0, false
			}
			for i := 0; i < m; i++ {
				if pb[i] != key[depth+i] {
					return 0, false
				}
			}
		}
		// plen != expected: tolerate the inconsistency, as the converted
		// read path does, by ignoring the stale prefix entirely.
		depth = int(n.level)
		if depth >= len(key) {
			return 0, false
		}
		n = n.child(key[depth])
		depth++
	}
	return 0, false
}

// trackRead charges the LLC model for the lines a descent step touches.
func (idx *Index) trackRead(n *header) {
	switch n.kind {
	case kLeaf:
		idx.heap.Load(n.pm, 0, uintptr(leafHdrBytes+len(n.leaf().key)))
	case kNode4:
		idx.heap.Load(n.pm, 0, node4Bytes)
	case kNode16:
		idx.heap.Load(n.pm, 0, n16ChildOff+64)
	case kNode48:
		idx.heap.Load(n.pm, 0, hdrBytes)
		idx.heap.Load(n.pm, n48IdxOff, 64)
		idx.heap.Load(n.pm, n48ChildOff, 8)
	case kNode256:
		idx.heap.Load(n.pm, 0, hdrBytes)
		idx.heap.Load(n.pm, n256ChOff, 8)
	}
}

// Scan visits keys >= start in ascending order, calling fn for each until
// fn returns false or count keys have been visited (count <= 0 means
// unbounded). It returns the number of keys visited. Scans are
// non-blocking; like lookups they tolerate stale prefixes by pruning only
// through prefixes that pass the consistency check and filtering every
// leaf against start.
//
// Tries keep no sibling pointers between leaves, so range scans pay a
// full tree walk — the structural reason P-ART trails B+ trees on YCSB E
// (§7.1), which this implementation reproduces.
func (idx *Index) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	visited := 0
	var walk func(n *header, depth int, bounded bool) bool
	walk = func(n *header, depth int, bounded bool) bool {
		if n == nil {
			return true
		}
		idx.trackRead(n)
		if n.kind == kLeaf {
			l := n.leaf()
			if bytes.Compare(l.key, start) >= 0 {
				if !fn(l.key, l.value.Load()) {
					return false
				}
				visited++
				if count > 0 && visited >= count {
					return false
				}
			}
			return true
		}
		lo := -1 // smallest admissible branch byte when bounded
		plen, pb := n.prefixSnapshot()
		expected := int(n.level) - depth
		if bounded && expected >= 0 && plen == expected {
			// Compare the consistent prefix against start to prune.
			m := plen
			if m > maxStoredPrefix {
				m = maxStoredPrefix
			}
			for i := 0; i < m; i++ {
				sb := byte(0)
				if depth+i < len(start) {
					sb = start[depth+i]
				}
				if pb[i] > sb {
					bounded = false // whole subtree > start
					break
				}
				if pb[i] < sb {
					return true // whole subtree < start
				}
			}
		}
		depth = int(n.level)
		if bounded {
			if depth < len(start) {
				lo = int(start[depth])
			} else {
				lo = 0
			}
		}
		var buf [256]entry
		es := n.entries(buf[:0:256])
		// Node4/16 keep entries in append order; insertion sort is cheap
		// at <=16 elements and avoids per-node allocations (node48/256
		// come out of entries() already sorted).
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].b < es[j-1].b; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		for _, e := range es {
			if lo >= 0 && int(e.b) < lo {
				continue
			}
			childBounded := bounded && lo >= 0 && int(e.b) == lo
			if !walk(e.c, depth+1, childBounded) {
				return false
			}
		}
		return true
	}
	walk(idx.root.Load(), 0, len(start) > 0)
	return visited
}
