// Package art implements P-ART, the RECIPE conversion of the Adaptive
// Radix Tree (Leis et al., ICDE '13; concurrency per "The ART of
// Practical Synchronization") to persistent memory (§6.4).
//
// ART adapts node sizes (4/16/48/256 children) to their occupancy and
// compresses common key prefixes into node headers. Synchronisation
// follows the paper's converted index: reads are non-blocking and never
// retry; writes take per-node locks. Non-SMO inserts append an entry and
// commit it with one atomic store (Condition #1). The path-compression
// split — ART's SMO — consists of exactly two ordered atomic steps:
//
//	step 1: install a new parent node (atomic child-pointer swap);
//	step 2: shorten the old node's compressed prefix.
//
// A crash between the steps leaves a permanently stale prefix. Readers
// tolerate it: each node records its immutable level (depth of its branch
// byte), so a reader that observes depth+prefixLen != level skips the
// prefix and verifies the full key at the leaf. Writes in stock ART detect
// the same mismatch but cannot repair it — Condition #3 — so the RECIPE
// conversion adds (a) permanent-inconsistency detection via try-lock and
// (b) a helper that recomputes and persists the correct prefix from any
// leaf below the node. Conversion points carry "RECIPE:" comments.
package art

import (
	"errors"
	"sync/atomic"
	"unsafe"

	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// ErrPrefixKey is returned when inserting a key that is a proper prefix of
// an existing key (or vice versa). Fixed-width key encodings (the paper's
// randint and YCSB string keys) never trigger it.
var ErrPrefixKey = errors.New("art: key is a proper prefix of an existing key")

// ErrEmptyKey is returned for zero-length keys.
var ErrEmptyKey = errors.New("art: empty key")

type kind uint8

const (
	kLeaf kind = iota
	kNode4
	kNode16
	kNode48
	kNode256
)

// maxStoredPrefix is the number of compressed-prefix bytes stored inline
// in the header word. Longer shared prefixes are handled optimistically:
// the stored length is exact, the bytes beyond seven are verified at the
// leaf (reads) or reconstructed from a leaf (writes), as in ART's hybrid
// path compression.
const maxStoredPrefix = 7

// header is the common node prefix. Every concrete node type embeds it as
// its first field, so a *header can be cast back to the concrete type.
type header struct {
	kind     kind
	level    uint32 // depth of this node's branch byte; immutable
	prefix   atomic.Uint64
	count    atomic.Uint32
	obsolete atomic.Bool
	lock     pmlock.Mutex
	pm       pmem.Obj
}

// Simulated persistent layout shared by all nodes: the first 16 bytes of
// every node hold kind/level/count/prefix.
const (
	hdrBytes  = 16
	offPrefix = 8
)

// packPrefix encodes a compressed prefix: the true length in the top byte
// (capped at 255) and the first seven bytes in the low bytes.
func packPrefix(b []byte) uint64 {
	n := len(b)
	if n > 255 {
		panic("art: prefix longer than 255 bytes")
	}
	v := uint64(n) << 56
	m := n
	if m > maxStoredPrefix {
		m = maxStoredPrefix
	}
	for i := 0; i < m; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func unpackPrefix(v uint64) (n int, b [maxStoredPrefix]byte) {
	n = int(v >> 56)
	for i := 0; i < maxStoredPrefix; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return n, b
}

type node4 struct {
	header
	keys     atomicBytes8
	children [4]atomic.Pointer[header]
}

type node16 struct {
	header
	keys     atomicBytes16
	children [16]atomic.Pointer[header]
}

type node48 struct {
	header
	index    atomicBytes256 // key byte -> child slot + 1 (0 = empty)
	children [48]atomic.Pointer[header]
}

type node256 struct {
	header
	children [256]atomic.Pointer[header]
}

type leaf struct {
	header
	key   []byte
	value atomic.Uint64
}

// Simulated persistent node sizes (header + payload), used for clwb
// accounting and the LLC model.
const (
	node4Bytes   = hdrBytes + 8 + 4*8           // 56
	node16Bytes  = hdrBytes + 16 + 16*8         // 160
	node48Bytes  = hdrBytes + 256 + 48*8        // 656
	node256Bytes = hdrBytes + 256*8             // 2064
	leafHdrBytes = hdrBytes + 8 /* value */ + 8 /* key len */
)

// child-slot persistent offsets within each node kind.
const (
	n4KeysOff   = hdrBytes
	n4ChildOff  = hdrBytes + 8
	n16KeysOff  = hdrBytes
	n16ChildOff = hdrBytes + 16
	n48IdxOff   = hdrBytes
	n48ChildOff = hdrBytes + 256
	n256ChOff   = hdrBytes
	leafValOff  = hdrBytes
	leafKeyOff  = leafHdrBytes
)

func (h *header) n4() *node4     { return (*node4)(unsafe.Pointer(h)) }
func (h *header) n16() *node16   { return (*node16)(unsafe.Pointer(h)) }
func (h *header) n48() *node48   { return (*node48)(unsafe.Pointer(h)) }
func (h *header) n256() *node256 { return (*node256)(unsafe.Pointer(h)) }
func (h *header) leaf() *leaf    { return (*leaf)(unsafe.Pointer(h)) }

// prefixSnapshot returns the node's compressed-prefix length and stored
// bytes from a single atomic load, so readers always see a consistent
// (length, bytes) pair.
func (h *header) prefixSnapshot() (int, [maxStoredPrefix]byte) {
	return unpackPrefix(h.prefix.Load())
}

// child returns the child pointer for key byte b, or nil.
func (h *header) child(b byte) *header {
	switch h.kind {
	case kNode4:
		n := h.n4()
		cnt := int(h.count.Load())
		for i := 0; i < cnt; i++ {
			if n.keys.Get(i) == b {
				return n.children[i].Load()
			}
		}
	case kNode16:
		n := h.n16()
		cnt := int(h.count.Load())
		for i := 0; i < cnt; i++ {
			if n.keys.Get(i) == b {
				return n.children[i].Load()
			}
		}
	case kNode48:
		n := h.n48()
		if s := n.index.Get(int(b)); s != 0 {
			return n.children[s-1].Load()
		}
	case kNode256:
		return h.n256().children[b].Load()
	}
	return nil
}

// capacity returns the maximum child count of the node kind.
func (h *header) capacity() int {
	switch h.kind {
	case kNode4:
		return 4
	case kNode16:
		return 16
	case kNode48:
		return 48
	case kNode256:
		return 256
	default:
		return 0
	}
}

// entry is a (key byte, child) pair gathered from a node.
type entry struct {
	b byte
	c *header
}

// entries collects the node's live (non-nil) children. The caller must
// hold the node lock if a consistent snapshot is required; readers use it
// only for scans, where leaf-side verification tolerates races.
func (h *header) entries(buf []entry) []entry {
	buf = buf[:0]
	switch h.kind {
	case kNode4:
		n := h.n4()
		cnt := int(h.count.Load())
		for i := 0; i < cnt; i++ {
			if c := n.children[i].Load(); c != nil {
				buf = append(buf, entry{n.keys.Get(i), c})
			}
		}
	case kNode16:
		n := h.n16()
		cnt := int(h.count.Load())
		for i := 0; i < cnt; i++ {
			if c := n.children[i].Load(); c != nil {
				buf = append(buf, entry{n.keys.Get(i), c})
			}
		}
	case kNode48:
		n := h.n48()
		for b := 0; b < 256; b++ {
			if s := n.index.Get(b); s != 0 {
				if c := n.children[s-1].Load(); c != nil {
					buf = append(buf, entry{byte(b), c})
				}
			}
		}
	case kNode256:
		n := h.n256()
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				buf = append(buf, entry{byte(b), c})
			}
		}
	}
	return buf
}

// liveCount returns the number of non-nil children.
func (h *header) liveCount() int {
	var buf [256]entry
	return len(h.entries(buf[:0:256]))
}

// Index is a persistent adaptive radix tree mapping byte-string keys to
// uint64 values. It is safe for concurrent use: lookups and scans are
// non-blocking, writers use per-node locks.
type Index struct {
	heap   *pmem.Heap
	rootPM pmem.Obj
	root   atomic.Pointer[header]
	rootMu pmlock.Mutex
	count  atomic.Int64
}

// New returns an empty P-ART backed by heap.
func New(heap *pmem.Heap) *Index {
	idx := &Index{heap: heap}
	idx.rootPM = heap.Alloc(64)
	heap.Shadow(idx.rootPM, &idx.root)
	// RECIPE: persist the root line at creation.
	heap.PersistFence(idx.rootPM, 0, 64)
	return idx
}

// Len returns the number of keys in the tree.
func (idx *Index) Len() int { return int(idx.count.Load()) }

func (idx *Index) newLeaf(key []byte, value uint64) *leaf {
	l := &leaf{key: append([]byte(nil), key...)}
	l.kind = kLeaf
	l.value.Store(value)
	l.pm = idx.heap.Alloc(uintptr(leafHdrBytes + len(key)))
	idx.heap.Shadow(l.pm, l)
	return l
}

func (idx *Index) allocNode(k kind, level uint32, prefix []byte) *header {
	var h *header
	var size uintptr
	var concrete any // the full node, for shadow registration
	switch k {
	case kNode4:
		n := &node4{}
		h, size, concrete = &n.header, node4Bytes, n
	case kNode16:
		n := &node16{}
		h, size, concrete = &n.header, node16Bytes, n
	case kNode48:
		n := &node48{}
		h, size, concrete = &n.header, node48Bytes, n
	case kNode256:
		n := &node256{}
		h, size, concrete = &n.header, node256Bytes, n
	default:
		panic("art: bad node kind")
	}
	h.kind = k
	h.level = level
	h.prefix.Store(packPrefix(prefix))
	h.pm = idx.heap.Alloc(size)
	idx.heap.Shadow(h.pm, concrete)
	return h
}

// persistAll flushes a node's entire persistent image (used when a
// freshly built node is about to be published).
func (idx *Index) persistAll(h *header) {
	var size uintptr
	switch h.kind {
	case kNode4:
		size = node4Bytes
	case kNode16:
		size = node16Bytes
	case kNode48:
		size = node48Bytes
	case kNode256:
		size = node256Bytes
	case kLeaf:
		size = uintptr(leafHdrBytes + len(h.leaf().key))
	}
	idx.heap.Persist(h.pm, 0, size)
}

// Recover re-initialises every node lock after a simulated crash,
// modelling the lock-table re-initialisation of §6. No structural repair
// runs here: RECIPE indexes repair lazily on the write path.
func (idx *Index) Recover() {
	idx.rootMu.Reset()
	var walk func(h *header)
	walk = func(h *header) {
		if h == nil {
			return
		}
		h.lock.Reset()
		if h.kind == kLeaf {
			return
		}
		var buf [256]entry
		for _, e := range h.entries(buf[:0:256]) {
			walk(e.c)
		}
	}
	walk(idx.root.Load())
}
