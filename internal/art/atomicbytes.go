package art

import "sync/atomic"

// atomicBytes8 / atomicBytes16 / atomicBytes256 are byte arrays readable
// with atomic loads. ART readers scan node key arrays without locks while
// a locked writer appends, so every byte must be loadable race-free; the
// bytes are packed into 64-bit words that readers load atomically and
// writers update with read-modify-write under the node lock.

type atomicBytes8 struct {
	w atomic.Uint64
}

func (a *atomicBytes8) Get(i int) byte {
	return byte(a.w.Load() >> (8 * uint(i)))
}

// Set must be called with the owning node's lock held.
func (a *atomicBytes8) Set(i int, b byte) {
	sh := 8 * uint(i)
	v := a.w.Load()
	v = (v &^ (0xFF << sh)) | uint64(b)<<sh
	a.w.Store(v)
}

type atomicBytes16 struct {
	w [2]atomic.Uint64
}

func (a *atomicBytes16) Get(i int) byte {
	return byte(a.w[i/8].Load() >> (8 * uint(i%8)))
}

// Set must be called with the owning node's lock held.
func (a *atomicBytes16) Set(i int, b byte) {
	sh := 8 * uint(i%8)
	w := &a.w[i/8]
	v := w.Load()
	v = (v &^ (0xFF << sh)) | uint64(b)<<sh
	w.Store(v)
}

type atomicBytes256 struct {
	w [32]atomic.Uint64
}

func (a *atomicBytes256) Get(i int) byte {
	return byte(a.w[i/8].Load() >> (8 * uint(i%8)))
}

// Set must be called with the owning node's lock held.
func (a *atomicBytes256) Set(i int, b byte) {
	sh := 8 * uint(i%8)
	w := &a.w[i/8]
	v := w.Load()
	v = (v &^ (0xFF << sh)) | uint64(b)<<sh
	w.Store(v)
}
