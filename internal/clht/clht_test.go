package clht

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/pmem"
)

func newSmall(t testing.TB) *Index {
	t.Helper()
	return NewWithBuckets(pmem.NewFast(), 4)
}

func TestInsertLookup(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(42, 100); err != nil {
		t.Fatal(err)
	}
	v, ok := idx.Lookup(42)
	if !ok || v != 100 {
		t.Fatalf("Lookup(42) = %d,%v want 100,true", v, ok)
	}
	if _, ok := idx.Lookup(43); ok {
		t.Fatal("Lookup(43) should miss")
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d, want 1", idx.Len())
	}
}

func TestInsertOverwrites(t *testing.T) {
	idx := New(pmem.NewFast())
	mustInsert(t, idx, 7, 1)
	mustInsert(t, idx, 7, 2)
	if v, _ := idx.Lookup(7); v != 2 {
		t.Fatalf("value = %d, want 2 after overwrite", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (update must not double-count)", idx.Len())
	}
}

func TestZeroKeyRejected(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(0, 1); err != ErrZeroKey {
		t.Fatalf("Insert(0) err = %v, want ErrZeroKey", err)
	}
	if _, err := idx.Delete(0); err != ErrZeroKey {
		t.Fatalf("Delete(0) err = %v, want ErrZeroKey", err)
	}
	if _, ok := idx.Lookup(0); ok {
		t.Fatal("Lookup(0) should miss")
	}
}

func TestDelete(t *testing.T) {
	idx := New(pmem.NewFast())
	mustInsert(t, idx, 5, 50)
	del, err := idx.Delete(5)
	if err != nil || !del {
		t.Fatalf("Delete(5) = %v,%v", del, err)
	}
	if _, ok := idx.Lookup(5); ok {
		t.Fatal("key survived delete")
	}
	del, err = idx.Delete(5)
	if err != nil || del {
		t.Fatal("second delete should report absent")
	}
	if idx.Len() != 0 {
		t.Fatalf("Len = %d, want 0", idx.Len())
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	idx := newSmall(t)
	mustInsert(t, idx, 1, 10)
	if _, err := idx.Delete(1); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, idx, 2, 20)
	if v, ok := idx.Lookup(2); !ok || v != 20 {
		t.Fatalf("Lookup(2) = %d,%v", v, ok)
	}
}

func TestOverflowChains(t *testing.T) {
	// 1-bucket table: everything chains.
	idx := NewWithBuckets(pmem.NewFast(), 1)
	for k := uint64(1); k <= 6; k++ {
		mustInsert(t, idx, k, k*10)
	}
	for k := uint64(1); k <= 6; k++ {
		if v, ok := idx.Lookup(k); !ok || v != k*10 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestRehashGrowsAndPreserves(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 2)
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		mustInsert(t, idx, k, k)
	}
	if idx.Buckets() <= 2 {
		t.Fatalf("table never grew: %d buckets", idx.Buckets())
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := idx.Lookup(k); !ok || v != k {
			t.Fatalf("post-rehash Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d, want %d", idx.Len(), n)
	}
}

func TestOracleRandomOps(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 2)
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(500)) + 1
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			mustInsert(t, idx, k, v)
			oracle[k] = v
		case 1:
			if _, err := idx.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		case 2:
			v, ok := idx.Lookup(k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%d) = %d,%v; oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	if idx.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", idx.Len(), len(oracle))
	}
}

// Property: any batch of inserts is fully readable.
func TestQuickInsertAllReadable(t *testing.T) {
	f := func(ks []uint64) bool {
		idx := NewWithBuckets(pmem.NewFast(), 2)
		want := make(map[uint64]uint64)
		for i, k := range ks {
			if k == 0 {
				continue
			}
			if idx.Insert(k, uint64(i)) != nil {
				return false
			}
			want[k] = uint64(i)
		}
		for k, v := range want {
			got, ok := idx.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return idx.Len() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrent(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 2)
	const threads = 8
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(g*per) + 1
			for i := uint64(0); i < per; i++ {
				if err := idx.Insert(base+i, base+i); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if v, ok := idx.Lookup(base + i); !ok || v != base+i {
					t.Errorf("readback %d = %d,%v", base+i, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx.Len() != threads*per {
		t.Fatalf("Len = %d, want %d", idx.Len(), threads*per)
	}
	for g := 0; g < threads; g++ {
		base := uint64(g*per) + 1
		for i := uint64(0); i < per; i += 97 {
			if v, ok := idx.Lookup(base + i); !ok || v != base+i {
				t.Fatalf("final Lookup(%d) = %d,%v", base+i, v, ok)
			}
		}
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 2)
	for k := uint64(1); k <= 1000; k++ {
		mustInsert(t, idx, k, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i%1000 + 1
				if v, ok := idx.Lookup(k); ok && v != k {
					t.Errorf("reader saw wrong value %d for key %d", v, k)
					return
				}
			}
		}()
	}
	for k := uint64(1001); k <= 4000; k++ {
		mustInsert(t, idx, k, k)
	}
	close(stop)
	wg.Wait()
}

// Crash testing per §5: enumerate every crash site systematically, verify
// no committed key is lost and the index remains fully writable.
func TestCrashRecoveryEnumerated(t *testing.T) {
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := NewWithBuckets(heap, 2)
		inj := crash.NewNth(n)
		heap.SetInjector(inj)

		committed := make(map[uint64]uint64)
		var crashed bool
		for k := uint64(1); k <= 300; k++ {
			err := idx.Insert(k, k*3)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = k * 3
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached at all")
			}
			break // enumerated every crash state
		}
		idx.Recover()
		// No committed key may be lost.
		for k, v := range committed {
			got, ok := idx.Lookup(k)
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (got %d,%v)", n, k, got, ok)
			}
		}
		// Writes must still succeed after recovery.
		for k := uint64(1000); k < 1050; k++ {
			if err := idx.Insert(k, k); err != nil {
				t.Fatalf("crash state %d: post-crash insert failed: %v", n, err)
			}
			if v, ok := idx.Lookup(k); !ok || v != k {
				t.Fatalf("crash state %d: post-crash readback failed", n)
			}
		}
	}
}

// Durability per §5: every dirtied line is flushed and fenced by the time
// each operation returns.
func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := NewWithBuckets(heap, 2)
	if v := heap.Tracker().Check(); len(v) != 0 {
		t.Fatalf("constructor left unpersisted lines: %v", v)
	}
	for k := uint64(1); k <= 500; k++ {
		mustInsert(t, idx, k, k)
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", k, v)
		}
	}
	for k := uint64(1); k <= 500; k += 3 {
		if _, err := idx.Delete(k); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("delete %d left unpersisted lines: %v", k, v)
		}
	}
}

func TestInsertFlushCount(t *testing.T) {
	// §6.2: common-case inserts require one cache-line flush.
	heap := pmem.NewFast()
	idx := NewWithBuckets(heap, 1024)
	before := heap.Stats()
	mustInsert(t, idx, 12345, 1)
	d := heap.Stats().Sub(before)
	if d.Clwb != 1 {
		t.Fatalf("common-case insert issued %d clwb, want 1", d.Clwb)
	}
	if d.Fence != 2 {
		t.Fatalf("common-case insert issued %d fences, want 2", d.Fence)
	}
}

func TestRecoverResetsLocks(t *testing.T) {
	idx := newSmall(t)
	// Abandon a bucket lock as a crashed writer would.
	idx.tab.Load().buckets[0].lock.Lock()
	idx.resize.Lock()
	idx.Recover()
	if idx.tab.Load().buckets[0].lock.Locked() || idx.resize.Locked() {
		t.Fatal("Recover did not reset locks")
	}
}

func mustInsert(t testing.TB, idx *Index, k, v uint64) {
	t.Helper()
	if err := idx.Insert(k, v); err != nil {
		t.Fatalf("Insert(%d,%d): %v", k, v, err)
	}
}

func BenchmarkInsert(b *testing.B) {
	heap := pmem.NewFast()
	idx := New(heap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(uint64(i)+1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	heap := pmem.NewFast()
	idx := New(heap)
	const n = 1 << 16
	for i := uint64(1); i <= n; i++ {
		if err := idx.Insert(i, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)%n + 1
		if _, ok := idx.Lookup(k); !ok {
			b.Fatalf("miss %d", k)
		}
	}
}

func ExampleIndex() {
	idx := New(pmem.NewFast())
	_ = idx.Insert(1, 100)
	v, ok := idx.Lookup(1)
	fmt.Println(v, ok)
	// Output: 100 true
}
