// Package clht implements P-CLHT, the RECIPE conversion of the Cache-Line
// Hash Table (David et al., ASPLOS '15) to persistent memory (§6.2).
//
// CLHT restricts each bucket to one 64-byte cache line holding three
// key/value pairs, a lock word, and an overflow pointer, so the common
// case costs one cache-line access. Readers are non-blocking and use
// atomic snapshots of key/value pairs; writers lock the bucket and commit
// each insert or delete with a single 8-byte atomic store (the key write),
// ordering the value store before it. Rehashing copies buckets into a new
// table and commits it by atomically swapping the table pointer.
//
// CLHT therefore satisfies RECIPE Condition #1 — every update becomes
// visible through one hardware-atomic store — and the conversion consists
// only of cache-line write-backs and fences after the appropriate stores
// (30 LOC in the paper). The persistence points in this file are marked
// with "RECIPE:" comments; cmd/loccount counts them to regenerate Table 1.
package clht

import (
	"errors"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// EntriesPerBucket is the number of key/value pairs per 64-byte bucket.
const EntriesPerBucket = 3

// Simulated persistent layout of a bucket: exactly one cache line.
//
//	off  0..23  keys[3]
//	off 24..47  vals[3]
//	off 48..55  lock (not meaningfully persistent; re-initialised on recovery)
//	off 56..63  next
const (
	bucketBytes = 64
	offKeys     = 0
	offVals     = 24
	offNext     = 56
)

// ErrZeroKey is returned for key 0, which CLHT reserves as the empty-slot
// marker.
var ErrZeroKey = errors.New("clht: key 0 is reserved")

type bucket struct {
	pm   pmem.Obj // allocation holding this bucket's persistent image
	off  uintptr  // byte offset of the bucket within pm
	lock pmlock.Mutex
	keys [EntriesPerBucket]atomic.Uint64
	vals [EntriesPerBucket]atomic.Uint64
	next atomic.Pointer[bucket]
}

type table struct {
	pm      pmem.Obj
	buckets []bucket
	mask    uint64
	seed    uint64
}

func (t *table) bucketFor(key uint64) *bucket {
	h := mix(key ^ t.seed)
	return &t.buckets[h&t.mask]
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	return x ^ (x >> 33)
}

// Index is a persistent cache-line hash table. Keys are non-zero uint64s
// and values are uint64s, matching the paper's evaluation of unordered
// indexes with 8-byte integer keys. Index is safe for concurrent use.
type Index struct {
	heap  *pmem.Heap
	root  pmem.Obj // persistent root line holding the current table pointer
	tab   atomic.Pointer[table]
	count atomic.Int64

	resize pmlock.Mutex

	// maxChain is the overflow-chain length that triggers rehashing.
	maxChain int
}

// DefaultBuckets is the initial bucket count; 768 buckets ≈ the paper's
// 48 KB starting table (§7: "a starting hash table size of 48KB").
const DefaultBuckets = 768

// New returns an empty P-CLHT backed by heap with the default initial
// size.
func New(heap *pmem.Heap) *Index { return NewWithBuckets(heap, DefaultBuckets) }

// NewWithBuckets returns an empty P-CLHT with n initial buckets (rounded
// up to a power of two).
func NewWithBuckets(heap *pmem.Heap, n int) *Index {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p *= 2
	}
	idx := &Index{heap: heap, maxChain: 2}
	idx.root = heap.Alloc(64)
	heap.Shadow(idx.root, &idx.tab)
	t := idx.newTable(p, 0x5bd1e995)
	idx.tab.Store(t)
	// RECIPE: persist the freshly initialised table and the root pointer
	// before the index is usable (the durability bug the paper found in
	// FAST & FAIR and CCEH was an unpersisted initial allocation).
	heap.PersistFence(idx.root, 0, 64)
	return idx
}

func (idx *Index) newTable(nbuckets int, seed uint64) *table {
	t := &table{
		buckets: make([]bucket, nbuckets),
		mask:    uint64(nbuckets - 1),
		seed:    seed,
	}
	t.pm = idx.heap.Alloc(uintptr(nbuckets) * bucketBytes)
	for i := range t.buckets {
		t.buckets[i].pm = t.pm
		t.buckets[i].off = uintptr(i) * bucketBytes
	}
	idx.heap.ShadowSlice(t.pm, t.buckets, bucketBytes)
	// Persist the zeroed array; relaxed ordering is fine because the table
	// only becomes reachable via a later atomic pointer swap (Condition #1
	// allows reordering of stores preceding the commit store).
	idx.heap.Persist(t.pm, 0, uintptr(nbuckets)*bucketBytes)
	return t
}

// Lookup returns the value stored for key. Reads are non-blocking: they
// walk the bucket chain using atomic loads and take an atomic snapshot of
// each candidate pair by re-checking the key after reading the value.
func (idx *Index) Lookup(key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	t := idx.tab.Load()
	for b := t.bucketFor(key); b != nil; b = b.next.Load() {
		idx.heap.Load(b.pm, b.off, bucketBytes)
		for i := 0; i < EntriesPerBucket; i++ {
			if b.keys[i].Load() == key {
				v := b.vals[i].Load()
				if b.keys[i].Load() == key {
					return v, true
				}
			}
		}
	}
	return 0, false
}

// Insert stores value under key, overwriting any existing value. It
// returns ErrZeroKey for key 0 and crash.ErrCrashed when interrupted by a
// simulated crash.
func (idx *Index) Insert(key, value uint64) (err error) {
	if key == 0 {
		return ErrZeroKey
	}
	defer recoverCrash(&err)
	for {
		t := idx.tab.Load()
		b := t.bucketFor(key)
		b.lock.Lock()
		// A resize may have swapped the table while we waited for the
		// bucket lock; retry against the new table.
		if idx.tab.Load() != t {
			b.lock.Unlock()
			continue
		}
		ok := idx.insertLocked(b, key, value)
		b.lock.Unlock()
		if ok {
			return nil
		}
		// Chain too long: rehash and retry.
		idx.rehash(t)
	}
}

// insertLocked performs the insert under the bucket lock. It returns false
// when the chain is over the overflow threshold and a resize is required.
func (idx *Index) insertLocked(head *bucket, key, value uint64) bool {
	var free *bucket
	freeIdx := -1
	chain := 0
	for b := head; b != nil; b = b.next.Load() {
		idx.heap.Load(b.pm, b.off, bucketBytes)
		for i := 0; i < EntriesPerBucket; i++ {
			k := b.keys[i].Load()
			if k == key {
				// Update: a single atomic 8-byte store is the commit.
				b.vals[i].Store(value)
				idx.heap.Dirty(b.pm, b.off+offVals+uintptr(i)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(b.pm, b.off+offVals+uintptr(i)*8, 8)
				idx.heap.CrashPoint("clht.update.commit")
				return true
			}
			if k == 0 && freeIdx < 0 {
				free, freeIdx = b, i
			}
		}
		chain++
	}
	if freeIdx >= 0 {
		// Write the value first, order it, then commit with the atomic
		// key store. Both live in the same cache line, so one write-back
		// after the commit persists the pair; an eviction between the
		// stores persists only the value, which is invisible (key still
		// 0) and therefore harmless.
		free.vals[freeIdx].Store(value)
		idx.heap.Dirty(free.pm, free.off+offVals+uintptr(freeIdx)*8, 8)
		// RECIPE: fence so the value store is ordered before the key
		// store on its way to PM.
		idx.heap.Fence()
		idx.heap.CrashPoint("clht.insert.val")
		free.keys[freeIdx].Store(key)
		idx.heap.Dirty(free.pm, free.off+offKeys+uintptr(freeIdx)*8, 8)
		// RECIPE: flush + fence after the committing key store.
		idx.heap.PersistFence(free.pm, free.off, bucketBytes)
		idx.heap.CrashPoint("clht.insert.commit")
		idx.count.Add(1)
		return true
	}
	if chain > idx.maxChain {
		return false
	}
	// Append an overflow bucket: initialise it off-path, persist it, then
	// commit by atomically linking it.
	nb := &bucket{pm: idx.heap.Alloc(bucketBytes)}
	idx.heap.Shadow(nb.pm, nb)
	nb.keys[0].Store(key)
	nb.vals[0].Store(value)
	// RECIPE: persist the new bucket before it becomes reachable.
	idx.heap.Persist(nb.pm, 0, bucketBytes)
	idx.heap.Fence()
	idx.heap.CrashPoint("clht.insert.overflow.init")
	last := head
	for l := last.next.Load(); l != nil; l = last.next.Load() {
		last = l
	}
	last.next.Store(nb)
	idx.heap.Dirty(last.pm, last.off+offNext, 8)
	// RECIPE: flush + fence after the committing link store.
	idx.heap.PersistFence(last.pm, last.off+offNext, 8)
	idx.heap.CrashPoint("clht.insert.overflow.link")
	idx.count.Add(1)
	return true
}

// Delete removes key, returning true if it was present.
func (idx *Index) Delete(key uint64) (deleted bool, err error) {
	if key == 0 {
		return false, ErrZeroKey
	}
	defer recoverCrash(&err)
	for {
		t := idx.tab.Load()
		head := t.bucketFor(key)
		head.lock.Lock()
		if idx.tab.Load() != t {
			head.lock.Unlock()
			continue
		}
		for b := head; b != nil; b = b.next.Load() {
			for i := 0; i < EntriesPerBucket; i++ {
				if b.keys[i].Load() == key {
					// Deletion commits with a single atomic store of 0 to
					// the key (§6.2).
					b.keys[i].Store(0)
					idx.heap.Dirty(b.pm, b.off+offKeys+uintptr(i)*8, 8)
					// RECIPE: flush + fence after the committing store.
					idx.heap.PersistFence(b.pm, b.off+offKeys+uintptr(i)*8, 8)
					idx.heap.CrashPoint("clht.delete.commit")
					idx.count.Add(-1)
					head.lock.Unlock()
					return true, nil
				}
			}
		}
		head.lock.Unlock()
		return false, nil
	}
}

// rehash doubles the table. It locks every bucket of the old table (so no
// writer can race the copy), builds the new table off-path, persists it,
// and commits with a single atomic swap of the table pointer — the SMO
// variant of Condition #1 (§6.2: re-hashing uses copy-on-write and an
// atomic swap). The paper attributes P-CLHT's Load-A deficit vs CCEH to
// exactly this globally locked scheme (§7.2).
func (idx *Index) rehash(old *table) {
	idx.resize.Lock()
	defer idx.resize.Unlock()
	if idx.tab.Load() != old {
		return // someone else already resized
	}
	for i := range old.buckets {
		old.buckets[i].lock.Lock()
	}
	nt := idx.newTable(len(old.buckets)*2, old.seed+0x9E3779B9)
	for i := range old.buckets {
		for b := &old.buckets[i]; b != nil; b = b.next.Load() {
			for e := 0; e < EntriesPerBucket; e++ {
				if k := b.keys[e].Load(); k != 0 {
					idx.copyInto(nt, k, b.vals[e].Load())
				}
			}
		}
	}
	// RECIPE: persist the fully built table, fence, then commit with the
	// atomic table-pointer swap, then persist the root line.
	idx.heap.Persist(nt.pm, 0, uintptr(len(nt.buckets))*bucketBytes)
	idx.heap.Fence()
	idx.heap.CrashPoint("clht.rehash.built")
	idx.tab.Store(nt)
	idx.heap.Dirty(idx.root, 0, 8)
	idx.heap.PersistFence(idx.root, 0, 8)
	idx.heap.CrashPoint("clht.rehash.swap")
	for i := range old.buckets {
		old.buckets[i].lock.Unlock()
	}
}

// copyInto inserts into a private (not yet published) table without
// locking or per-store persistence.
func (idx *Index) copyInto(t *table, key, value uint64) {
	b := t.bucketFor(key)
	for {
		for i := 0; i < EntriesPerBucket; i++ {
			if b.keys[i].Load() == 0 {
				b.keys[i].Store(key)
				b.vals[i].Store(value)
				return
			}
		}
		nb := b.next.Load()
		if nb == nil {
			nb = &bucket{pm: idx.heap.Alloc(bucketBytes)}
			idx.heap.Shadow(nb.pm, nb)
			idx.heap.Persist(nb.pm, 0, bucketBytes)
			b.next.Store(nb)
		}
		b = nb
	}
}

// Len returns the number of live keys.
func (idx *Index) Len() int { return int(idx.count.Load()) }

// Range calls fn for every live key/value pair until fn returns false.
// Enumeration order is unspecified. Each pair is read with the same
// atomic (value, key-recheck) snapshot lookups use, so Range is safe
// against concurrent writers, but it only observes a consistent cut of
// the table when writers are quiesced (the migration copy path holds
// the handoff window exclusively while it enumerates).
func (idx *Index) Range(fn func(key, value uint64) bool) {
	t := idx.tab.Load()
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next.Load() {
			idx.heap.Load(b.pm, b.off, bucketBytes)
			for e := 0; e < EntriesPerBucket; e++ {
				k := b.keys[e].Load()
				if k == 0 {
					continue
				}
				v := b.vals[e].Load()
				if b.keys[e].Load() != k {
					continue
				}
				if !fn(k, v) {
					return
				}
			}
		}
	}
}

// Buckets returns the current bucket count (for tests and capacity
// reporting).
func (idx *Index) Buckets() int { return len(idx.tab.Load().buckets) }

// Recover re-initialises all locks, modelling the lock-table
// re-initialisation a RECIPE index performs when restarting after a crash
// (§6, "Lock initialization"). CLHT needs no other recovery work: a
// crashed insert left either an invisible value store (key still 0) or a
// fully committed pair.
func (idx *Index) Recover() {
	idx.resize.Reset()
	t := idx.tab.Load()
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next.Load() {
			b.lock.Reset()
		}
	}
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
