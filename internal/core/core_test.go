package core

import (
	"strings"
	"testing"

	"repro/internal/keys"
	"repro/internal/pmem"
)

func TestNewOrderedAllNames(t *testing.T) {
	for _, name := range append(append([]string(nil), OrderedNames...), "WOART") {
		for _, kind := range []keys.Kind{keys.RandInt, keys.YCSBString} {
			heap := pmem.NewFast()
			idx, err := NewOrdered(name, heap, kind)
			if err != nil {
				t.Fatalf("NewOrdered(%q): %v", name, err)
			}
			gen := keys.NewGenerator(kind)
			for i := uint64(0); i < 500; i++ {
				if err := idx.Insert(gen.Key(i), i); err != nil {
					t.Fatalf("%s insert: %v", name, err)
				}
			}
			for i := uint64(0); i < 500; i++ {
				if v, ok := idx.Lookup(gen.Key(i)); !ok || v != i {
					t.Fatalf("%s lookup %d = %d,%v", name, i, v, ok)
				}
			}
			if idx.Len() != 500 {
				t.Fatalf("%s Len = %d", name, idx.Len())
			}
			if del, err := idx.Delete(gen.Key(7)); err != nil || !del {
				t.Fatalf("%s delete = %v,%v", name, del, err)
			}
			n := idx.Scan(nil, 10, func([]byte, uint64) bool { return true })
			if n != 10 {
				t.Fatalf("%s scan visited %d", name, n)
			}
			if err := idx.Recover(); err != nil {
				t.Fatalf("%s recover: %v", name, err)
			}
		}
	}
}

// TestUpdateAllIndexes: every index (ordered and hash) overwrites in
// place through Update — no growth, new value visible — the capability
// that unlocks workloads D and F.
func TestUpdateAllIndexes(t *testing.T) {
	for _, name := range append(append([]string(nil), OrderedNames...), "WOART") {
		heap := pmem.NewFast()
		idx, err := NewOrdered(name, heap, keys.RandInt)
		if err != nil {
			t.Fatalf("NewOrdered(%q): %v", name, err)
		}
		gen := keys.NewGenerator(keys.RandInt)
		for i := uint64(0); i < 200; i++ {
			if err := idx.Insert(gen.Key(i), i); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
		}
		for i := uint64(0); i < 200; i++ {
			if err := idx.Update(gen.Key(i), i+1000); err != nil {
				t.Fatalf("%s update: %v", name, err)
			}
		}
		if idx.Len() != 200 {
			t.Fatalf("%s: updates grew Len to %d, want 200", name, idx.Len())
		}
		for i := uint64(0); i < 200; i++ {
			if v, ok := idx.Lookup(gen.Key(i)); !ok || v != i+1000 {
				t.Fatalf("%s lookup after update %d = %d,%v", name, i, v, ok)
			}
		}
		heap.Release()
	}
	for _, name := range HashNames {
		heap := pmem.NewFast()
		idx, err := NewHash(name, heap)
		if err != nil {
			t.Fatalf("NewHash(%q): %v", name, err)
		}
		for i := uint64(1); i <= 200; i++ {
			if err := idx.Insert(i, i); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
		}
		for i := uint64(1); i <= 200; i++ {
			if err := idx.Update(i, i+1000); err != nil {
				t.Fatalf("%s update: %v", name, err)
			}
		}
		if idx.Len() != 200 {
			t.Fatalf("%s: updates grew Len to %d, want 200", name, idx.Len())
		}
		for i := uint64(1); i <= 200; i++ {
			if v, ok := idx.Lookup(i); !ok || v != i+1000 {
				t.Fatalf("%s lookup after update %d = %d,%v", name, i, v, ok)
			}
		}
		heap.Release()
	}
}

func TestNewHashAllNames(t *testing.T) {
	for _, name := range HashNames {
		heap := pmem.NewFast()
		idx, err := NewHash(name, heap)
		if err != nil {
			t.Fatalf("NewHash(%q): %v", name, err)
		}
		for i := uint64(1); i <= 500; i++ {
			if err := idx.Insert(i, i*2); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
		}
		for i := uint64(1); i <= 500; i++ {
			if v, ok := idx.Lookup(i); !ok || v != i*2 {
				t.Fatalf("%s lookup %d = %d,%v", name, i, v, ok)
			}
		}
		if del, err := idx.Delete(3); err != nil || !del {
			t.Fatalf("%s delete = %v,%v", name, del, err)
		}
		if err := idx.Recover(); err != nil {
			t.Fatalf("%s recover: %v", name, err)
		}
	}
}

func TestUnknownNames(t *testing.T) {
	if _, err := NewOrdered("nope", pmem.NewFast(), keys.RandInt); err == nil {
		t.Fatal("unknown ordered name accepted")
	}
	if _, err := NewHash("nope", pmem.NewFast()); err == nil {
		t.Fatal("unknown hash name accepted")
	}
}

func TestConditionString(t *testing.T) {
	if Cond1.String() != "#1" || Cond2.String() != "#2" || Cond3.String() != "#3" || NotApplicable.String() != "-" {
		t.Fatal("Condition.String mismatch")
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"CLHT", "HOT", "BwTree", "ART", "Masstree", "30 (1%)", "200 (9%)"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("Table1 missing %q", want)
		}
	}
	t2 := Table2()
	for _, want := range []string{"Non-blocking", "Blocking", "#1", "#2", "#3"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table2 missing %q", want)
		}
	}
}

func TestMetadataConsistency(t *testing.T) {
	if len(Converted) != 5 {
		t.Fatalf("expected 5 converted indexes, got %d", len(Converted))
	}
	for _, i := range Converted {
		if !i.Recipe {
			t.Fatalf("%s not marked as RECIPE conversion", i.Name)
		}
		if i.NonSMO != Cond1 {
			t.Fatalf("%s non-SMO condition should be #1 (Table 2)", i.Name)
		}
		if i.Condition != i.SMO {
			t.Fatalf("%s overall condition should match its SMO condition", i.Name)
		}
	}
	for _, n := range OrderedNames {
		heap := pmem.NewFast()
		if _, err := NewOrdered(n, heap, keys.RandInt); err != nil {
			t.Fatalf("OrderedNames entry %q not constructible: %v", n, err)
		}
	}
	for _, n := range HashNames {
		heap := pmem.NewFast()
		if _, err := NewHash(n, heap); err != nil {
			t.Fatalf("HashNames entry %q not constructible: %v", n, err)
		}
	}
}
