// Package core defines the common index interfaces, the registry of all
// nine index implementations (the five RECIPE conversions of §6 and the
// four hand-crafted PM baselines of §3/§7), and the metadata behind the
// paper's Tables 1 and 2.
package core

import (
	"fmt"

	"repro/internal/art"
	"repro/internal/bwtree"
	"repro/internal/cceh"
	"repro/internal/clht"
	"repro/internal/fastfair"
	"repro/internal/hot"
	"repro/internal/keys"
	"repro/internal/levelhash"
	"repro/internal/masstree"
	"repro/internal/pmem"
	"repro/internal/woart"
)

// OrderedIndex is the interface every ordered (point + range query) index
// implements: the paper's insert/lookup/range_query/delete interface of
// §2.1 plus crash recovery.
type OrderedIndex interface {
	// Insert stores value under key, overwriting an existing binding.
	Insert(key []byte, value uint64) error
	// Update overwrites the value stored under key in place. Every
	// index here reaches it through its upsert-capable Insert path
	// (YCSB blind-write semantics: updating an absent key inserts it),
	// but the separate method keeps the operation distinguishable for
	// workloads D/F accounting and lets future indexes route updates
	// past their insert path (e.g. skip SMO machinery).
	Update(key []byte, value uint64) error
	// Lookup returns the value stored under key.
	Lookup(key []byte) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) (bool, error)
	// Scan visits keys >= start in ascending order until fn returns false
	// or count keys were visited (count <= 0 = unbounded); it returns the
	// number of keys visited.
	Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int
	// Recover models restart after a crash: lock re-initialisation plus
	// whatever explicit recovery the index defines (RECIPE indexes: none).
	Recover() error
	// Len returns the number of live keys.
	Len() int
}

// HashIndex is the unordered (point query only) interface; the paper
// evaluates unordered indexes with 8-byte integer keys (§7).
type HashIndex interface {
	Insert(key, value uint64) error
	// Update overwrites key's value in place via the upsert path (see
	// OrderedIndex.Update).
	Update(key, value uint64) error
	Lookup(key uint64) (uint64, bool)
	Delete(key uint64) (bool, error)
	Recover() error
	Len() int
}

// HashRanger is the optional enumeration capability of an unordered
// index: Range calls fn for every live key/value pair until fn returns
// false, in unspecified order. All three registry hash indexes
// implement it; the sharded front-end's migration path type-asserts it
// to stream a donor shard (hash tables have no ordered Scan to cursor
// over). Implementations read pairs with their lookup snapshot, so
// Range is safe against concurrent writers but only yields a consistent
// cut when writers are quiesced.
type HashRanger interface {
	Range(fn func(key, value uint64) bool)
}

// Condition is a RECIPE conversion condition (§4).
type Condition int

const (
	// NotApplicable marks hand-crafted baselines.
	NotApplicable Condition = iota
	// Cond1 — updates visible via a single atomic store (§4.3).
	Cond1
	// Cond2 — non-blocking writers fix inconsistencies (§4.4).
	Cond2
	// Cond3 — blocking writers detect but cannot fix; RECIPE adds the
	// helper (§4.5).
	Cond3
)

func (c Condition) String() string {
	switch c {
	case Cond1:
		return "#1"
	case Cond2:
		return "#2"
	case Cond3:
		return "#3"
	default:
		return "-"
	}
}

// Info describes one index for Tables 1 and 2.
type Info struct {
	// Name is the evaluation name ("P-ART", "FAST & FAIR", ...).
	Name string
	// Source is the DRAM index converted, for RECIPE indexes.
	Source string
	// Structure is the Table 1 "Data Structure" column.
	Structure string
	// Recipe is true for the five converted indexes.
	Recipe bool
	// Ordered is true for indexes supporting range queries.
	Ordered bool
	// Condition is the overall Table 1 condition; NonSMO/SMO split it as
	// in Table 2.
	Condition, NonSMO, SMO Condition
	// Reader/Writer synchronisation, as in Table 2.
	Reader, Writer string
	// PaperOrigLOC/PaperCoreLOC/PaperModLOC reproduce Table 1's LOC
	// columns as reported by the paper (the Go port's own numbers come
	// from cmd/loccount).
	PaperOrigLOC, PaperCoreLOC, PaperModLOC string
}

// Converted lists the five RECIPE-converted indexes (Tables 1 and 2).
var Converted = []Info{
	{Name: "P-CLHT", Source: "CLHT", Structure: "Hash Table", Recipe: true, Ordered: false,
		Condition: Cond1, NonSMO: Cond1, SMO: Cond1, Reader: "Non-blocking", Writer: "Blocking",
		PaperOrigLOC: "12.6K", PaperCoreLOC: "2.8K", PaperModLOC: "30 (1%)"},
	{Name: "P-HOT", Source: "HOT", Structure: "Trie", Recipe: true, Ordered: true,
		Condition: Cond1, NonSMO: Cond1, SMO: Cond1, Reader: "Non-blocking", Writer: "Blocking",
		PaperOrigLOC: "36K", PaperCoreLOC: "2K", PaperModLOC: "38 (2%)"},
	{Name: "P-BwTree", Source: "BwTree", Structure: "B+ Tree", Recipe: true, Ordered: true,
		Condition: Cond2, NonSMO: Cond1, SMO: Cond2, Reader: "Non-blocking", Writer: "Non-blocking",
		PaperOrigLOC: "13K", PaperCoreLOC: "5.2K", PaperModLOC: "85 (1.6%)"},
	{Name: "P-ART", Source: "ART", Structure: "Radix Tree", Recipe: true, Ordered: true,
		Condition: Cond3, NonSMO: Cond1, SMO: Cond3, Reader: "Non-blocking", Writer: "Blocking",
		PaperOrigLOC: "4.5K", PaperCoreLOC: "1.5K", PaperModLOC: "52 (3.4%)"},
	{Name: "P-Masstree", Source: "Masstree", Structure: "B+ Tree & Trie", Recipe: true, Ordered: true,
		Condition: Cond3, NonSMO: Cond1, SMO: Cond3, Reader: "Non-blocking", Writer: "Blocking",
		PaperOrigLOC: "25K", PaperCoreLOC: "2.2K", PaperModLOC: "200 (9%)"},
}

// Baselines lists the hand-crafted PM indexes compared against.
var Baselines = []Info{
	{Name: "FAST & FAIR", Structure: "B+ Tree", Ordered: true, Reader: "Non-blocking", Writer: "Blocking"},
	{Name: "CCEH", Structure: "Hash Table", Reader: "Non-blocking", Writer: "Blocking"},
	{Name: "Level Hashing", Structure: "Hash Table", Reader: "Non-blocking", Writer: "Blocking"},
	{Name: "WOART", Structure: "Radix Tree", Ordered: true, Reader: "Blocking", Writer: "Blocking"},
}

// OrderedNames lists the ordered indexes in the paper's Fig 4 order.
var OrderedNames = []string{"FAST & FAIR", "P-BwTree", "P-Masstree", "P-ART", "P-HOT"}

// HashNames lists the unordered indexes in the paper's Fig 5 order.
var HashNames = []string{"CCEH", "Level Hashing", "P-CLHT"}

// orderedAdapter lifts the concrete indexes (whose Recover has no error)
// into OrderedIndex.
type orderedAdapter struct {
	insert func([]byte, uint64) error
	lookup func([]byte) (uint64, bool)
	del    func([]byte) (bool, error)
	scan   func([]byte, int, func([]byte, uint64) bool) int
	rec    func() error
	length func() int
}

func (a *orderedAdapter) Insert(k []byte, v uint64) error { return a.insert(k, v) }
func (a *orderedAdapter) Update(k []byte, v uint64) error { return a.insert(k, v) }
func (a *orderedAdapter) Lookup(k []byte) (uint64, bool)  { return a.lookup(k) }
func (a *orderedAdapter) Delete(k []byte) (bool, error)   { return a.del(k) }
func (a *orderedAdapter) Recover() error                  { return a.rec() }
func (a *orderedAdapter) Len() int                        { return a.length() }
func (a *orderedAdapter) Scan(s []byte, c int, f func([]byte, uint64) bool) int {
	return a.scan(s, c, f)
}

// NewOrdered constructs the named ordered index on heap. kind selects the
// key encoding, which only FAST & FAIR needs to know up front (it stores
// integer keys inline and string keys out of line, as the paper's
// extension does).
func NewOrdered(name string, heap *pmem.Heap, kind keys.Kind) (OrderedIndex, error) {
	wrap := func(insert func([]byte, uint64) error, lookup func([]byte) (uint64, bool),
		del func([]byte) (bool, error), scan func([]byte, int, func([]byte, uint64) bool) int,
		rec func(), length func() int) OrderedIndex {
		return &orderedAdapter{insert, lookup, del, scan, func() error { rec(); return nil }, length}
	}
	switch name {
	case "P-ART":
		t := art.New(heap)
		return wrap(t.Insert, t.Lookup, t.Delete, t.Scan, t.Recover, t.Len), nil
	case "P-HOT":
		t := hot.New(heap)
		return wrap(t.Insert, t.Lookup, t.Delete, t.Scan, t.Recover, t.Len), nil
	case "P-BwTree":
		t := bwtree.New(heap)
		return wrap(t.Insert, t.Lookup, t.Delete, t.Scan, t.Recover, t.Len), nil
	case "P-Masstree":
		t := masstree.New(heap)
		return wrap(t.Insert, t.Lookup, t.Delete, t.Scan, t.Recover, t.Len), nil
	case "FAST & FAIR":
		t := fastfair.New(heap, kind)
		return wrap(t.Insert, t.Lookup, t.Delete, t.Scan, t.Recover, t.Len), nil
	case "WOART":
		t := woart.New(heap)
		return wrap(t.Insert, t.Lookup, t.Delete, t.Scan, t.Recover, t.Len), nil
	default:
		return nil, fmt.Errorf("core: unknown ordered index %q", name)
	}
}

// hashAdapter lifts the hash tables into HashIndex (and HashRanger:
// every registry hash table provides Range).
type hashAdapter struct {
	insert func(uint64, uint64) error
	lookup func(uint64) (uint64, bool)
	del    func(uint64) (bool, error)
	rec    func() error
	length func() int
	ranger func(func(uint64, uint64) bool)
}

func (a *hashAdapter) Insert(k, v uint64) error        { return a.insert(k, v) }
func (a *hashAdapter) Update(k, v uint64) error        { return a.insert(k, v) }
func (a *hashAdapter) Lookup(k uint64) (uint64, bool)  { return a.lookup(k) }
func (a *hashAdapter) Delete(k uint64) (bool, error)   { return a.del(k) }
func (a *hashAdapter) Recover() error                  { return a.rec() }
func (a *hashAdapter) Len() int                        { return a.length() }
func (a *hashAdapter) Range(fn func(k, v uint64) bool) { a.ranger(fn) }

// NewHash constructs the named unordered index on heap.
func NewHash(name string, heap *pmem.Heap) (HashIndex, error) {
	switch name {
	case "P-CLHT":
		t := clht.New(heap)
		return &hashAdapter{t.Insert, t.Lookup, t.Delete, func() error { t.Recover(); return nil }, t.Len, t.Range}, nil
	case "CCEH":
		t := cceh.New(heap)
		return &hashAdapter{t.Insert, t.Lookup, t.Delete, t.Recover, t.Len, t.Range}, nil
	case "Level Hashing":
		t := levelhash.New(heap)
		return &hashAdapter{t.Insert, t.Lookup, t.Delete, func() error { t.Recover(); return nil }, t.Len, t.Range}, nil
	default:
		return nil, fmt.Errorf("core: unknown hash index %q", name)
	}
}

// Table1 renders the paper's Table 1 (categorising the converted DRAM
// indexes with the paper's reported LOC figures).
func Table1() string {
	s := "DRAM Index | Data Structure  | Condition | Orig   | Core  | Modified\n"
	s += "-----------+-----------------+-----------+--------+-------+----------\n"
	for _, i := range Converted {
		s += fmt.Sprintf("%-10s | %-15s | %-9s | %-6s | %-5s | %s\n",
			i.Source, i.Structure, i.Condition, i.PaperOrigLOC, i.PaperCoreLOC, i.PaperModLOC)
	}
	return s
}

// Table2 renders the paper's Table 2 (conversion actions and
// synchronisation).
func Table2() string {
	s := "DRAM Index | Reader        | Writer        | Non-SMO | SMO\n"
	s += "-----------+---------------+---------------+---------+-----\n"
	for _, i := range Converted {
		s += fmt.Sprintf("%-10s | %-13s | %-13s | %-7s | %s\n",
			i.Source, i.Reader, i.Writer, i.NonSMO, i.SMO)
	}
	return s
}
