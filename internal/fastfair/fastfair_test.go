package fastfair

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func newInt() *Tree    { return New(pmem.NewFast(), keys.RandInt) }
func newString() *Tree { return New(pmem.NewFast(), keys.YCSBString) }

func k64(v uint64) []byte { return keys.EncodeUint64(v) }

func mustInsert(t testing.TB, tr *Tree, key []byte, v uint64) {
	t.Helper()
	if err := tr.Insert(key, v); err != nil {
		t.Fatalf("Insert(%x): %v", key, err)
	}
}

func TestBasicIntKeys(t *testing.T) {
	tr := newInt()
	mustInsert(t, tr, k64(10), 100)
	if v, ok := tr.Lookup(k64(10)); !ok || v != 100 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := tr.Lookup(k64(11)); ok {
		t.Fatal("phantom key")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestBadIntKeySize(t *testing.T) {
	tr := newInt()
	if err := tr.Insert([]byte("short"), 1); err != ErrKeySize {
		t.Fatalf("Insert short key err = %v", err)
	}
	if _, ok := tr.Lookup([]byte("short")); ok {
		t.Fatal("short key lookup hit")
	}
}

func TestUpdate(t *testing.T) {
	tr := newInt()
	mustInsert(t, tr, k64(1), 1)
	mustInsert(t, tr, k64(1), 2)
	if v, _ := tr.Lookup(k64(1)); v != 2 {
		t.Fatalf("updated value = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after update", tr.Len())
	}
}

func TestSplitsManyKeys(t *testing.T) {
	tr := newInt()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, tr, k64(keys.Mix64(i)), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Lookup(k64(keys.Mix64(i))); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSequentialInsertAscendingDescending(t *testing.T) {
	up := newInt()
	down := newInt()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, up, k64(i), i)
		mustInsert(t, down, k64(n-1-i), n-1-i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := up.Lookup(k64(i)); !ok || v != i {
			t.Fatalf("asc Lookup(%d) = %d,%v", i, v, ok)
		}
		if v, ok := down.Lookup(k64(i)); !ok || v != i {
			t.Fatalf("desc Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestStringKeys(t *testing.T) {
	tr := newString()
	gen := keys.NewGenerator(keys.YCSBString)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, tr, gen.Key(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Lookup(gen.Key(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newInt()
	for i := uint64(0); i < 500; i++ {
		mustInsert(t, tr, k64(i), i)
	}
	for i := uint64(0); i < 500; i += 2 {
		del, err := tr.Delete(k64(i))
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", i, del, err)
		}
	}
	if del, _ := tr.Delete(k64(0)); del {
		t.Fatal("double delete reported success")
	}
	for i := uint64(0); i < 500; i++ {
		_, ok := tr.Lookup(k64(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted %d still present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("survivor %d missing", i)
		}
	}
}

func TestScanFull(t *testing.T) {
	tr := newInt()
	var want []uint64
	for i := 0; i < 3000; i++ {
		v := keys.Mix64(uint64(i))
		mustInsert(t, tr, k64(v), v)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	tr.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan count = %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d want %d", i, got[i], want[i])
		}
	}
}

func TestScanRangeBounded(t *testing.T) {
	tr := newInt()
	for i := uint64(0); i < 1000; i++ {
		mustInsert(t, tr, k64(i*3), i*3)
	}
	var got []uint64
	n := tr.Scan(k64(100), 7, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if n != 7 {
		t.Fatalf("visited %d", n)
	}
	want := uint64(102) // first multiple of 3 >= 100
	for i, g := range got {
		if g != want+uint64(i)*3 {
			t.Fatalf("scan[%d] = %d want %d", i, g, want+uint64(i)*3)
		}
	}
}

func TestScanStringKeys(t *testing.T) {
	tr := newString()
	gen := keys.NewGenerator(keys.YCSBString)
	kset := make([]string, 0, 500)
	for i := uint64(0); i < 500; i++ {
		k := gen.Key(i)
		mustInsert(t, tr, k, i)
		kset = append(kset, string(k))
	}
	sort.Strings(kset)
	var got []string
	tr.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(kset) {
		t.Fatalf("scan count %d want %d", len(got), len(kset))
	}
	for i := range kset {
		if got[i] != kset[i] {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestOracleRandom(t *testing.T) {
	tr := newInt()
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			mustInsert(t, tr, k64(k), v)
			oracle[k] = v
		case 2:
			if _, err := tr.Delete(k64(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := tr.Lookup(k64(k))
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%d) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	for k, ov := range oracle {
		if v, ok := tr.Lookup(k64(k)); !ok || v != ov {
			t.Fatalf("final Lookup(%d) = %d,%v want %d", k, v, ok, ov)
		}
	}
}

// Property: scans always return sorted, duplicate-free results matching
// the inserted set.
func TestQuickScanSortedUnique(t *testing.T) {
	f := func(vals []uint64) bool {
		tr := newInt()
		set := make(map[uint64]bool)
		for _, v := range vals {
			if tr.Insert(k64(v), v) != nil {
				return false
			}
			set[v] = true
		}
		var got []uint64
		tr.Scan(nil, 0, func(k []byte, v uint64) bool {
			got = append(got, keys.DecodeUint64(k))
			return true
		})
		if len(got) != len(set) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	tr := newInt()
	const threads = 8
	const per = 4000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				k := k64(keys.Mix64(id))
				if err := tr.Insert(k, id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if v, ok := tr.Lookup(k); !ok || v != id {
					t.Errorf("readback %d = %d,%v", id, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != threads*per {
		t.Fatalf("Len = %d want %d", tr.Len(), threads*per)
	}
	for id := uint64(0); id < threads*per; id += 111 {
		if v, ok := tr.Lookup(k64(keys.Mix64(id))); !ok || v != id {
			t.Fatalf("final lookup %d = %d,%v", id, v, ok)
		}
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	tr := newInt()
	for i := uint64(0); i < 5000; i++ {
		mustInsert(t, tr, k64(i), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % 5000
				if v, ok := tr.Lookup(k64(k)); ok && v != k {
					t.Errorf("reader saw %d for key %d", v, k)
					return
				}
				i++
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Scan(k64(100), 50, func([]byte, uint64) bool { return true })
		}
	}()
	for i := uint64(5000); i < 15000; i++ {
		mustInsert(t, tr, k64(i), i)
	}
	close(stop)
	wg.Wait()
}

// §5 crash testing: enumerate crash states during a write-heavy load;
// verify no committed key is lost and the tree stays writable. This
// passes because the port includes interrupted-split completion; the
// published artifact had bugs here (§7.5), reproduced separately via the
// Faithful durability mode below.
func TestCrashRecoveryEnumerated(t *testing.T) {
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		tr := New(heap, keys.RandInt)
		inj := crash.NewNth(n)
		heap.SetInjector(inj)
		committed := make(map[uint64]uint64)
		crashed := false
		for id := uint64(0); id < 600; id++ {
			k := keys.Mix64(id)
			err := tr.Insert(k64(k), id)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = id
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		tr.Recover()
		for k, v := range committed {
			got, ok := tr.Lookup(k64(k))
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, k, got, ok)
			}
		}
		for id := uint64(100000); id < 100100; id++ {
			if err := tr.Insert(k64(id), id); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
		}
	}
}

// §7.5 durability finding: FAST & FAIR does not persist the initial node
// allocation holding the root pointer. Faithful mode reproduces the bug,
// Fixed mode persists it.
func TestDurabilityInitialAllocationBug(t *testing.T) {
	heapF := pmem.New(pmem.Options{Track: true})
	NewWithMode(heapF, keys.RandInt, Faithful)
	if v := heapF.Tracker().Check(); len(v) == 0 {
		t.Fatal("Faithful mode should leave the initial allocation unpersisted (the published bug)")
	}
	heapX := pmem.New(pmem.Options{Track: true})
	NewWithMode(heapX, keys.RandInt, Fixed)
	if v := heapX.Tracker().Check(); len(v) != 0 {
		t.Fatalf("Fixed mode left unpersisted lines: %v", v)
	}
}

func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	tr := NewWithMode(heap, keys.RandInt, Fixed)
	for i := uint64(0); i < 400; i++ {
		mustInsert(t, tr, k64(keys.Mix64(i)), i)
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", i, v)
		}
	}
	for i := uint64(0); i < 400; i += 3 {
		if _, err := tr.Delete(k64(keys.Mix64(i))); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("delete %d left unpersisted lines: %v", i, v)
		}
	}
}

// The paper's §3 observation: repeated crashes during splits degrade the
// tree (parents never learn about siblings, so chains grow), but in a
// correct implementation no data may be lost. Verify data survives many
// mid-split crashes even though structure degrades.
func TestRepeatedSplitCrashesLoseNothing(t *testing.T) {
	heap := pmem.NewFast()
	tr := New(heap, keys.RandInt)
	committed := make(map[uint64]uint64)
	id := uint64(0)
	for round := 0; round < 30; round++ {
		inj := crash.NewAtSite("ff.split.linked", 1)
		heap.SetInjector(inj)
		for i := 0; i < 200; i++ {
			k := keys.Mix64(id)
			err := tr.Insert(k64(k), id)
			if crash.IsCrash(err) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = id
			id++
		}
		heap.SetInjector(nil)
		tr.Recover()
	}
	for k, v := range committed {
		if got, ok := tr.Lookup(k64(k)); !ok || got != v {
			t.Fatalf("key %d lost after repeated split crashes (%d,%v)", k, got, ok)
		}
	}
}

func BenchmarkInsertInt(b *testing.B) {
	tr := newInt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(k64(keys.Mix64(uint64(i))), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupInt(b *testing.B) {
	tr := newInt()
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(k64(keys.Mix64(i)), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Lookup(k64(keys.Mix64(uint64(i) % n))); !ok {
			b.Fatal("miss")
		}
	}
}
