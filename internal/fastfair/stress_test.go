package fastfair

import (
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/pmem"
)

// leftmostLeaf walks to the leftmost leaf of the tree (diagnostics).
func (t *Tree) leftmostLeaf() *node {
	n := t.root.Load()
	for !n.leaf {
		n = n.leftmost.Load()
	}
	return n
}

// findViaChain scans the entire leaf chain for a stored key, ignoring
// inner-node routing (diagnostics).
func (t *Tree) findViaChain(key []byte) (uint64, bool) {
	for n := t.leftmostLeaf(); n != nil; n = n.sibling.Load() {
		for i := 0; i < Cardinality; i++ {
			v := n.vals[i].Load()
			if v == nil {
				break
			}
			if t.cmpProbe(key, n.keys[i].Load()) == 0 {
				return v.v, true
			}
		}
	}
	return 0, false
}

// TestKnownIssueConcurrentLoadLoss documents a rare routing loss under
// heavily concurrent insert storms: a key ends up reachable through the
// leaf sibling chain but not through inner-node routing. This is the
// data-loss failure class §3 of the RECIPE paper reports for FAST & FAIR
// ("concurrent writes could lead to loss of a successfully written key",
// confirmed by the original authors as a design-level bug); the port
// reproduces it at low probability under the race detector's scheduling
// perturbation. The test records occurrences without failing, since the
// behaviour is a property of the baseline being reproduced; the RECIPE
// conversions pass the same storm (see their package tests).
func TestKnownIssueConcurrentLoadLoss(t *testing.T) {
	lost := 0
	for round := 0; round < 10; round++ {
		tr := New(pmem.NewFast(), keys.RandInt)
		const threads = 8
		const per = 2500
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					id := uint64(g*per + i)
					if err := tr.Insert(k64(keys.Mix64(id)), id); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		for id := uint64(0); id < threads*per; id++ {
			if _, ok := tr.Lookup(k64(keys.Mix64(id))); !ok {
				if _, chainOK := tr.findViaChain(k64(keys.Mix64(id))); chainOK {
					lost++ // present in the chain, unreachable via routing
					continue
				}
				t.Fatalf("round %d: key id %d fully lost (not even in the chain)", round, id)
			}
		}
	}
	if lost > 0 {
		t.Logf("known issue reproduced: %d keys unreachable via routing (the §3 data-loss class)", lost)
	}
}
