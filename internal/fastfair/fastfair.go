// Package fastfair implements FAST & FAIR (Hwang et al., FAST '18), the
// hand-crafted persistent B+ tree RECIPE compares against (§3, §7.1).
//
// FAST (Failure-Atomic ShifT) keeps node entries sorted by shifting them
// in place with 8-byte atomic stores; a reader that observes the transient
// duplicate created by an in-flight shift skips it. FAIR (Failure-Atomic
// In-place Rebalancing) splits nodes B-link style: the new sibling is
// linked before the parent learns about it, so readers reach moved keys
// through sibling pointers. Writes lock individual nodes; reads are
// lock-free and tolerate the transient states.
//
// Two fidelity notes that reproduce the paper's findings:
//
//   - String keys are supported the way the RECIPE authors extended the
//     original (integer-only) implementation: key slots hold references to
//     out-of-line key records, so every comparison dereferences a pointer.
//     This is what makes FAST & FAIR 2.5–5x slower on string keys (§7.1)
//     and inflates its LLC misses (Fig 4d) — behaviour this port keeps.
//   - In Faithful mode the initial root allocation is not persisted, the
//     unpersisted-allocation durability bug §7.5 reports for FAST & FAIR.
//     Fixed mode persists it.
package fastfair

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// ErrKeySize is returned when an integer-keyed tree receives a key that is
// not exactly 8 bytes.
var ErrKeySize = errors.New("fastfair: integer keys must be 8 bytes")

// Cardinality is the number of records per node. With 16-byte records and
// a 64-byte header this gives the 512-byte nodes used by the original.
const Cardinality = 28

// Mode selects bug fidelity.
type Mode int

const (
	// Fixed persists the initial allocation (correct behaviour).
	Fixed Mode = iota
	// Faithful reproduces the durability bug found in §7.5: the node
	// allocation containing the root pointer is not persisted.
	Faithful
)

// Persistent layout: 64-byte header (sibling, count, level, high key),
// then Cardinality 16-byte (key, ptr) records.
const (
	hdrBytes   = 64
	recBytes   = 16
	nodeBytes  = hdrBytes + Cardinality*recBytes
	offSibling = 0
	offHigh    = 8
)

func recOff(i int) uintptr { return hdrBytes + uintptr(i)*recBytes }

// krec is an out-of-line string key record (string mode only).
type krec struct {
	b  []byte
	pm pmem.Obj
}

// node is one B+ tree node. Leaves store value handles in ptrs-as-values;
// internal nodes store child pointers. Slot occupancy is detected by a
// nil pointer sentinel (the original's NULL-terminated record array),
// which keeps FAST shifts failure-atomic without a separate count field.
type node struct {
	pm       pmem.Obj
	lock     pmlock.Mutex
	leaf     bool
	level    int
	keys     [Cardinality]atomic.Uint64
	vals     [Cardinality]atomic.Pointer[vref] // leaf values
	kids     [Cardinality]atomic.Pointer[node] // internal children
	leftmost atomic.Pointer[node]              // internal only
	sibling  atomic.Pointer[node]
	highSet  atomic.Bool   // node has split at least once
	high     atomic.Uint64 // first key of the right sibling
}

// vref is a leaf value record; the pointer doubles as the slot-occupancy
// sentinel, mirroring the original's record pointers.
type vref struct {
	v  uint64
	pm pmem.Obj
}

// Tree is a concurrent persistent B+ tree over either 8-byte integer keys
// or arbitrary byte-string keys (dereferenced out of line, as the paper's
// string extension does).
type Tree struct {
	heap   *pmem.Heap
	mode   Mode
	kind   keys.Kind
	rootPM pmem.Obj
	root   atomic.Pointer[node]
	rootMu pmlock.Mutex
	count  atomic.Int64

	arenaMu sync.Mutex
	arena   []*krec // string-key records, handle = index+1
}

// New returns an empty tree for the given key kind in Fixed mode.
func New(heap *pmem.Heap, kind keys.Kind) *Tree { return NewWithMode(heap, kind, Fixed) }

// NewWithMode returns an empty tree with explicit bug fidelity.
func NewWithMode(heap *pmem.Heap, kind keys.Kind, mode Mode) *Tree {
	t := &Tree{heap: heap, mode: mode, kind: kind}
	t.rootPM = heap.Alloc(64)
	heap.Shadow(t.rootPM, &t.root)
	r := t.newNode(true, 0)
	t.root.Store(r)
	if mode == Fixed {
		// RECIPE-FIXED: persist the initial allocation; Faithful mode
		// reproduces the durability bug of §7.5 by skipping this.
		heap.PersistFence(t.rootPM, 0, 64)
		heap.PersistFence(r.pm, 0, nodeBytes)
	}
	return t
}

func (t *Tree) newNode(leaf bool, level int) *node {
	n := &node{leaf: leaf, level: level}
	n.pm = t.heap.Alloc(nodeBytes)
	t.heap.Shadow(n.pm, n)
	return n
}

// intern stores a string key out of line and returns its handle.
func (t *Tree) intern(k []byte) uint64 {
	r := &krec{b: append([]byte(nil), k...)}
	r.pm = t.heap.Alloc(uintptr(len(k)))
	t.heap.Shadow(r.pm, r)
	t.heap.Persist(r.pm, 0, uintptr(len(k)))
	t.arenaMu.Lock()
	t.arena = append(t.arena, r)
	h := uint64(len(t.arena))
	t.arenaMu.Unlock()
	return h
}

func (t *Tree) krecOf(h uint64) *krec {
	t.arenaMu.Lock()
	r := t.arena[h-1]
	t.arenaMu.Unlock()
	return r
}

// cmpProbe compares a probe key against a stored key slot. In string mode
// this dereferences the out-of-line record and charges the LLC model for
// it — the pointer chase the paper blames for FAST & FAIR's string-key
// collapse.
func (t *Tree) cmpProbe(probe []byte, stored uint64) int {
	if t.kind == keys.RandInt {
		p := keys.DecodeUint64(probe)
		switch {
		case p < stored:
			return -1
		case p > stored:
			return 1
		default:
			return 0
		}
	}
	r := t.krecOf(stored)
	t.heap.Load(r.pm, 0, uintptr(len(r.b)))
	return bytes.Compare(probe, r.b)
}

// keyBytes returns the byte representation of a stored key.
func (t *Tree) keyBytes(stored uint64) []byte {
	if t.kind == keys.RandInt {
		return keys.EncodeUint64(stored)
	}
	return t.krecOf(stored).b
}

// appendKeyBytes is keyBytes with a caller-owned scratch buffer for the
// randint encoding, so loops that emit many keys (Scan) do not allocate
// one 8-byte slice per key. String keys return the interned record
// bytes directly, as keyBytes does.
func (t *Tree) appendKeyBytes(dst []byte, stored uint64) []byte {
	if t.kind == keys.RandInt {
		return keys.AppendUint64(dst, stored)
	}
	return t.krecOf(stored).b
}

// encode converts a probe key to its stored representation, interning
// string keys.
func (t *Tree) encode(k []byte) uint64 {
	if t.kind == keys.RandInt {
		return keys.DecodeUint64(k)
	}
	return t.intern(k)
}

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

// countRecords returns the number of live records (nil-sentinel scan).
func (n *node) countRecords() int {
	for i := 0; i < Cardinality; i++ {
		if n.leaf {
			if n.vals[i].Load() == nil {
				return i
			}
		} else {
			if n.kids[i].Load() == nil {
				return i
			}
		}
	}
	return Cardinality
}

// Recover re-initialises all node locks after a simulated crash.
func (t *Tree) Recover() {
	t.rootMu.Reset()
	seen := make(map[*node]bool)
	var walk func(n *node)
	walk = func(n *node) {
		for n != nil && !seen[n] {
			seen[n] = true
			n.lock.Reset()
			if !n.leaf {
				if lm := n.leftmost.Load(); lm != nil {
					walk(lm)
				}
				cnt := n.countRecords()
				for i := 0; i < cnt; i++ {
					walk(n.kids[i].Load())
				}
			}
			n = n.sibling.Load()
		}
	}
	walk(t.root.Load())
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
