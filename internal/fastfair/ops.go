package fastfair

import (
	"bytes"

	"repro/internal/keys"
)

// flusher batches cache-line write-backs during FAST shifts: stores within
// one line are failure-atomic with respect to each other (a line is
// written back as a unit), so FAST flushes and fences only when a shift
// sequence crosses a cache-line boundary — the behaviour behind FAST &
// FAIR's clwb/mfence counts in Fig 4c.
type flusher struct {
	t     *Tree
	n     *node
	line  uintptr
	dirty bool
}

func (f *flusher) store(off uintptr) {
	f.t.heap.Dirty(f.n.pm, off, 8)
	l := off / 64
	if f.dirty && l != f.line {
		f.t.heap.Persist(f.n.pm, f.line*64, 64)
		f.t.heap.Fence()
	}
	f.line = l
	f.dirty = true
}

func (f *flusher) flush() {
	if f.dirty {
		f.t.heap.Persist(f.n.pm, f.line*64, 64)
		f.t.heap.Fence()
		f.dirty = false
	}
}

// Lookup returns the value stored under key. Reads are lock-free: they
// skip the transient duplicates FAST shifts create (two adjacent slots
// sharing one record pointer) and chase sibling links when the key lies
// beyond the node's high key (FAIR).
func (t *Tree) Lookup(key []byte) (uint64, bool) {
	if t.kind == keys.RandInt && len(key) != 8 {
		return 0, false
	}
	n := t.root.Load()
	for n != nil && !n.leaf {
		n = t.childFor(n, key)
	}
	for n != nil {
		t.heap.Load(n.pm, 0, nodeBytes)
		for i := 0; i < Cardinality; i++ {
			v := n.vals[i].Load()
			if v == nil {
				break
			}
			if i+1 < Cardinality && n.vals[i+1].Load() == v {
				continue // transient duplicate mid-shift: key not committed
			}
			c := t.cmpProbe(key, n.keys[i].Load())
			if c == 0 {
				t.heap.Load(v.pm, 0, 16)
				return v.v, true
			}
			if c < 0 {
				break
			}
		}
		if n.highSet.Load() && t.cmpProbe(key, n.high.Load()) >= 0 {
			n = n.sibling.Load()
			continue
		}
		return 0, false
	}
	return 0, false
}

// childFor picks the child covering key in internal node n, chasing
// siblings when key is at or beyond the high key.
//
// The high-key check runs AFTER the entry scan: a split links the
// sibling, publishes the high key, and only then truncates the entries,
// so a reader that observes a truncated entry set is guaranteed to see
// the high key set and re-routes right. Checking before the scan would
// let a reader pair a pre-split high key with post-truncation entries and
// descend into the wrong subtree.
func (t *Tree) childFor(n *node, key []byte) *node {
	for {
		t.heap.Load(n.pm, 0, nodeBytes)
		child := n.leftmost.Load()
		for i := 0; i < Cardinality; i++ {
			k := n.kids[i].Load()
			if k == nil {
				break
			}
			if i+1 < Cardinality && n.kids[i+1].Load() == k {
				continue // transient duplicate mid-shift
			}
			if t.cmpProbe(key, n.keys[i].Load()) >= 0 {
				child = k
			} else {
				break
			}
		}
		if n.highSet.Load() && t.cmpProbe(key, n.high.Load()) >= 0 {
			if s := n.sibling.Load(); s != nil {
				n = s
				continue
			}
		}
		return child
	}
}

// Insert stores value under key, overwriting an existing value.
func (t *Tree) Insert(key []byte, value uint64) (err error) {
	if t.kind == keys.RandInt && len(key) != 8 {
		return ErrKeySize
	}
	defer recoverCrash(&err)
	stored := t.encode(key)
	vr := &vref{v: value, pm: t.heap.Alloc(16)}
	t.heap.Shadow(vr.pm, vr)
	// Persist the value record before it becomes reachable.
	t.heap.Persist(vr.pm, 0, 16)
	t.heap.Fence()
	for {
		if t.tryInsert(key, stored, vr) {
			return nil
		}
	}
}

// lockLeafFor descends to and locks the leaf covering key, chasing
// siblings under lock hand-over when a concurrent split moved the range.
func (t *Tree) lockLeafFor(key []byte) *node {
	n := t.root.Load()
	for !n.leaf {
		n = t.childFor(n, key)
	}
	n.lock.Lock()
	for n.highSet.Load() && t.cmpProbe(key, n.high.Load()) >= 0 {
		s := n.sibling.Load()
		n.lock.Unlock()
		s.lock.Lock()
		n = s
	}
	return n
}

func (t *Tree) tryInsert(key []byte, stored uint64, vr *vref) bool {
	n := t.lockLeafFor(key)
	defer n.lock.Unlock()

	cnt := n.countRecords()
	pos := cnt
	for i := 0; i < cnt; i++ {
		c := t.cmpProbe(key, n.keys[i].Load())
		if c == 0 {
			// Update: swing the record pointer with one atomic store.
			n.vals[i].Store(vr)
			t.heap.Dirty(n.pm, recOff(i)+8, 8)
			t.heap.PersistFence(n.pm, recOff(i)+8, 8)
			t.heap.CrashPoint("ff.update.commit")
			return true
		}
		if c < 0 {
			pos = i
			break
		}
	}
	if cnt < Cardinality {
		t.fastInsertLeaf(n, cnt, pos, stored, vr)
		t.count.Add(1)
		return true
	}
	// Node full: FAIR split, then insert into the proper half.
	right, splitKey := t.splitLeaf(n)
	target := n
	if t.cmpProbe(key, splitKey) >= 0 {
		target = right
	}
	cnt = target.countRecords()
	pos = cnt
	for i := 0; i < cnt; i++ {
		if t.cmpProbe(key, target.keys[i].Load()) < 0 {
			pos = i
			break
		}
	}
	t.fastInsertLeaf(target, cnt, pos, stored, vr)
	t.count.Add(1)
	right.lock.Unlock() // splitLeaf leaves the new sibling locked
	t.insertParent(n, splitKey, right, n.level+1)
	return true
}

// fastInsertLeaf performs the FAST shift: entries move right one slot via
// 8-byte atomic stores (key before record pointer, so a torn pair is
// detectable as a duplicate pointer), flushing at cache-line boundaries.
func (t *Tree) fastInsertLeaf(n *node, cnt, pos int, stored uint64, vr *vref) {
	f := flusher{t: t, n: n}
	// Extend the nil terminator one slot right before shifting so stale
	// records beyond it (left over from a split truncation) can never be
	// resurrected by the shift.
	if cnt+1 < Cardinality {
		n.vals[cnt+1].Store(nil)
		f.store(recOff(cnt+1) + 8)
	}
	for i := cnt - 1; i >= pos; i-- {
		n.keys[i+1].Store(n.keys[i].Load())
		f.store(recOff(i + 1))
		n.vals[i+1].Store(n.vals[i].Load())
		f.store(recOff(i+1) + 8)
	}
	n.keys[pos].Store(stored)
	f.store(recOff(pos))
	t.heap.CrashPoint("ff.insert.shifted")
	n.vals[pos].Store(vr) // commit: pointer becomes unique
	f.store(recOff(pos) + 8)
	f.flush()
	t.heap.CrashPoint("ff.insert.commit")
}

// splitLeaf splits the full, locked leaf n. It returns the new right
// sibling still locked, plus the separator key. Steps follow FAIR: build
// sibling, link it (commit), publish the high key, truncate with one
// atomic nil store.
func (t *Tree) splitLeaf(n *node) (*node, uint64) {
	half := Cardinality / 2
	// Interrupted-split detection: if a crash hit between linking the
	// sibling and truncating this node, our upper half already lives in
	// the sibling (same record pointers). Complete that split instead of
	// creating a second sibling with duplicate keys.
	if s := n.sibling.Load(); s != nil && s.vals[0].Load() != nil && s.vals[0].Load() == n.vals[half].Load() {
		s.lock.Lock()
		splitKey := n.keys[half].Load()
		n.high.Store(splitKey)
		n.highSet.Store(true)
		t.heap.Dirty(n.pm, offHigh, 8)
		t.heap.PersistFence(n.pm, offHigh, 8)
		n.vals[half].Store(nil)
		t.heap.Dirty(n.pm, recOff(half)+8, 8)
		t.heap.PersistFence(n.pm, recOff(half)+8, 8)
		t.heap.CrashPoint("ff.split.completed")
		return s, splitKey
	}
	s := t.newNode(true, n.level)
	s.lock.Lock()
	for i := half; i < Cardinality; i++ {
		s.keys[i-half].Store(n.keys[i].Load())
		s.vals[i-half].Store(n.vals[i].Load())
	}
	s.sibling.Store(n.sibling.Load())
	if n.highSet.Load() {
		s.high.Store(n.high.Load())
		s.highSet.Store(true)
	}
	t.heap.Persist(s.pm, 0, nodeBytes)
	t.heap.Fence()
	t.heap.CrashPoint("ff.split.built")

	splitKey := n.keys[half].Load()
	n.sibling.Store(s)
	t.heap.Dirty(n.pm, offSibling, 8)
	t.heap.PersistFence(n.pm, offSibling, 8)
	t.heap.CrashPoint("ff.split.linked")

	n.high.Store(splitKey)
	n.highSet.Store(true)
	t.heap.Dirty(n.pm, offHigh, 8)
	t.heap.PersistFence(n.pm, offHigh, 8)

	n.vals[half].Store(nil) // truncation commit: one atomic store
	t.heap.Dirty(n.pm, recOff(half)+8, 8)
	t.heap.PersistFence(n.pm, recOff(half)+8, 8)
	t.heap.CrashPoint("ff.split.truncated")
	return s, splitKey
}

// splitInternal splits the full, locked internal node n; the middle key
// moves up. Returns the locked new sibling and the separator.
func (t *Tree) splitInternal(n *node) (*node, uint64) {
	half := Cardinality / 2
	// Interrupted-split detection, as in splitLeaf.
	if s := n.sibling.Load(); s != nil && s.leftmost.Load() != nil && s.leftmost.Load() == n.kids[half].Load() {
		s.lock.Lock()
		splitKey := n.keys[half].Load()
		n.high.Store(splitKey)
		n.highSet.Store(true)
		t.heap.Dirty(n.pm, offHigh, 8)
		t.heap.PersistFence(n.pm, offHigh, 8)
		n.kids[half].Store(nil)
		t.heap.Dirty(n.pm, recOff(half)+8, 8)
		t.heap.PersistFence(n.pm, recOff(half)+8, 8)
		t.heap.CrashPoint("ff.isplit.completed")
		return s, splitKey
	}
	s := t.newNode(false, n.level)
	s.lock.Lock()
	splitKey := n.keys[half].Load()
	s.leftmost.Store(n.kids[half].Load())
	for i := half + 1; i < Cardinality; i++ {
		s.keys[i-half-1].Store(n.keys[i].Load())
		s.kids[i-half-1].Store(n.kids[i].Load())
	}
	s.sibling.Store(n.sibling.Load())
	if n.highSet.Load() {
		s.high.Store(n.high.Load())
		s.highSet.Store(true)
	}
	t.heap.Persist(s.pm, 0, nodeBytes)
	t.heap.Fence()
	t.heap.CrashPoint("ff.isplit.built")

	n.sibling.Store(s)
	t.heap.Dirty(n.pm, offSibling, 8)
	t.heap.PersistFence(n.pm, offSibling, 8)
	t.heap.CrashPoint("ff.isplit.linked")

	n.high.Store(splitKey)
	n.highSet.Store(true)
	t.heap.Dirty(n.pm, offHigh, 8)
	t.heap.PersistFence(n.pm, offHigh, 8)

	n.kids[half].Store(nil) // truncation commit
	t.heap.Dirty(n.pm, recOff(half)+8, 8)
	t.heap.PersistFence(n.pm, recOff(half)+8, 8)
	t.heap.CrashPoint("ff.isplit.truncated")
	return s, splitKey
}

// insertParent installs (splitKey -> right) into the parent level after
// left split. left must still be reachable at level-1.
func (t *Tree) insertParent(left *node, splitKey uint64, right *node, level int) {
	keyB := t.keyBytes(splitKey)
	for {
		root := t.root.Load()
		if root == left {
			// Root split: build a new root and swing the root pointer.
			t.rootMu.Lock()
			if t.root.Load() != left {
				t.rootMu.Unlock()
				continue
			}
			nr := t.newNode(false, level)
			nr.leftmost.Store(left)
			nr.keys[0].Store(splitKey)
			nr.kids[0].Store(right)
			t.heap.Persist(nr.pm, 0, nodeBytes)
			t.heap.Fence()
			t.heap.CrashPoint("ff.rootsplit.built")
			t.root.Store(nr)
			t.heap.Dirty(t.rootPM, 0, 8)
			t.heap.PersistFence(t.rootPM, 0, 8)
			t.heap.CrashPoint("ff.rootsplit.commit")
			t.rootMu.Unlock()
			return
		}
		if root.level < level {
			continue // a new root is being installed; retry
		}
		// Descend to the internal node at this level covering splitKey.
		n := root
		for n.level > level {
			n = t.childFor(n, keyB)
		}
		n.lock.Lock()
		for n.highSet.Load() && t.cmpProbe(keyB, n.high.Load()) >= 0 {
			s := n.sibling.Load()
			n.lock.Unlock()
			s.lock.Lock()
			n = s
		}
		cnt := n.countRecords()
		pos := cnt
		for i := 0; i < cnt; i++ {
			if t.cmpProbe(keyB, n.keys[i].Load()) < 0 {
				pos = i
				break
			}
		}
		if cnt < Cardinality {
			t.fastInsertInternal(n, cnt, pos, splitKey, right)
			n.lock.Unlock()
			return
		}
		ns, sk := t.splitInternal(n)
		target := n
		if t.cmpProbe(keyB, sk) >= 0 {
			target = ns
		}
		cnt = target.countRecords()
		pos = cnt
		for i := 0; i < cnt; i++ {
			if t.cmpProbe(keyB, target.keys[i].Load()) < 0 {
				pos = i
				break
			}
		}
		t.fastInsertInternal(target, cnt, pos, splitKey, right)
		ns.lock.Unlock()
		n.lock.Unlock()
		t.insertParent(n, sk, ns, level+1)
		return
	}
}

func (t *Tree) fastInsertInternal(n *node, cnt, pos int, stored uint64, child *node) {
	f := flusher{t: t, n: n}
	// Terminator extension, as in fastInsertLeaf.
	if cnt+1 < Cardinality {
		n.kids[cnt+1].Store(nil)
		f.store(recOff(cnt+1) + 8)
	}
	for i := cnt - 1; i >= pos; i-- {
		n.keys[i+1].Store(n.keys[i].Load())
		f.store(recOff(i + 1))
		n.kids[i+1].Store(n.kids[i].Load())
		f.store(recOff(i+1) + 8)
	}
	n.keys[pos].Store(stored)
	f.store(recOff(pos))
	n.kids[pos].Store(child) // commit
	f.store(recOff(pos) + 8)
	f.flush()
	t.heap.CrashPoint("ff.iinsert.commit")
}

// Delete removes key from the tree, returning whether it was present.
// Deletion shifts left with atomic stores (record pointer before key, so
// the transient state is a detectable duplicate) and does not rebalance —
// the lazy scheme the original uses for its evaluation.
func (t *Tree) Delete(key []byte) (deleted bool, err error) {
	if t.kind == keys.RandInt && len(key) != 8 {
		return false, nil
	}
	defer recoverCrash(&err)
	n := t.lockLeafFor(key)
	defer n.lock.Unlock()
	cnt := n.countRecords()
	pos := -1
	for i := 0; i < cnt; i++ {
		c := t.cmpProbe(key, n.keys[i].Load())
		if c == 0 {
			pos = i
			break
		}
		if c < 0 {
			return false, nil
		}
	}
	if pos < 0 {
		return false, nil
	}
	f := flusher{t: t, n: n}
	for i := pos; i < cnt-1; i++ {
		// Pointer first: the moment vals[i] equals vals[i+1] the left
		// slot is a duplicate and the deleted key is logically gone.
		n.vals[i].Store(n.vals[i+1].Load())
		f.store(recOff(i) + 8)
		n.keys[i].Store(n.keys[i+1].Load())
		f.store(recOff(i))
	}
	n.vals[cnt-1].Store(nil)
	f.store(recOff(cnt-1) + 8)
	f.flush()
	t.heap.CrashPoint("ff.delete.commit")
	t.count.Add(-1)
	return true, nil
}

// Scan visits keys >= start in order, calling fn until it returns false
// or count keys were visited (count <= 0 means unbounded). Leaf sibling
// links make this a linked-list walk — the structural reason FAST & FAIR
// wins YCSB E over the tries (§7.1).
func (t *Tree) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	n := t.root.Load()
	if len(start) == 0 {
		// Scan from the minimum: descend the leftmost spine.
		for n != nil && !n.leaf {
			n = n.leftmost.Load()
		}
	} else {
		for n != nil && !n.leaf {
			n = t.childFor(n, start)
		}
	}
	visited := 0
	kbuf := make([]byte, 0, 8) // reused per emitted randint key; fn must not retain
	for n != nil {
		t.heap.Load(n.pm, 0, nodeBytes)
		cnt := n.countRecords()
		for i := 0; i < cnt; i++ {
			v := n.vals[i].Load()
			if v == nil {
				break
			}
			if i+1 < Cardinality && n.vals[i+1].Load() == v {
				continue
			}
			k := n.keys[i].Load()
			kb := t.appendKeyBytes(kbuf[:0], k)
			if bytes.Compare(kb, start) < 0 {
				continue
			}
			if !fn(kb, v.v) {
				return visited
			}
			visited++
			if count > 0 && visited >= count {
				return visited
			}
		}
		n = n.sibling.Load()
	}
	return visited
}
