package harness

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/pmem"
)

const (
	reshardShards = 4
	reshardLoadN  = 300
	reshardPostN  = 30
)

// TestReshardLossyOrdered sweeps every reshard crash site under all
// three power-cycle policies for P-ART: zero LOST-ACK, zero CORRUPT,
// zero healthy-shard replays.
func TestReshardLossyOrdered(t *testing.T) {
	for _, policy := range pmem.Policies {
		rep := ReshardLossyOrdered("P-ART", keys.RandInt, false, policy, 1, reshardShards, reshardLoadN, reshardPostN, 0)
		t.Log(rep)
		if rep.Fired() != len(rep.Sites) {
			t.Errorf("%v: only %d/%d sites fired", policy, rep.Fired(), len(rep.Sites))
		}
		if !rep.Pass() {
			for _, s := range rep.Sites {
				if s.Outcome >= OutcomeLostAck || s.RecoveryViolations+s.OpViolations > 0 {
					t.Errorf("%v site %s host %d: %s lostAcks=%d replays=%v detail=%s",
						policy, s.Site, s.Host, s.Outcome, s.LostAcks, s.Replays, s.Detail)
				}
			}
			t.Fatalf("%v: reshard lossy campaign failed", policy)
		}
	}
}

// TestReshardLossyHash is the same sweep for P-CLHT (the whole-copy
// HashRanger migration path).
func TestReshardLossyHash(t *testing.T) {
	for _, policy := range pmem.Policies {
		rep := ReshardLossyHash("P-CLHT", policy, 2, reshardShards, reshardLoadN, reshardPostN, 0)
		t.Log(rep)
		if rep.Fired() != len(rep.Sites) {
			t.Errorf("%v: only %d/%d sites fired", policy, rep.Fired(), len(rep.Sites))
		}
		if !rep.Pass() {
			for _, s := range rep.Sites {
				t.Errorf("%v site %s host %d: %s replays=%v detail=%s",
					policy, s.Site, s.Host, s.Outcome, s.Replays, s.Detail)
			}
			t.Fatalf("%v: reshard lossy campaign failed", policy)
		}
	}
}

// TestReshardLossyRange covers the range-window migration path (span
// split and merge in the flipped table) under the torn policy.
func TestReshardLossyRange(t *testing.T) {
	rep := ReshardLossyOrdered("P-ART", keys.RandInt, true, pmem.PolicyTorn, 3, reshardShards, reshardLoadN, reshardPostN, 0)
	t.Log(rep)
	if rep.Fired() != len(rep.Sites) {
		t.Errorf("only %d/%d sites fired", rep.Fired(), len(rep.Sites))
	}
	if !rep.Pass() {
		for _, s := range rep.Sites {
			t.Errorf("site %s host %d: %s replays=%v detail=%s", s.Site, s.Host, s.Outcome, s.Replays, s.Detail)
		}
		t.Fatal("reshard lossy range campaign failed")
	}
}

// TestReshardDurability: flush-coverage sweep over the reshard sites —
// recovery and post-crash traffic must leave every dirtied line flushed
// and fenced at operation boundaries, on every shard.
func TestReshardDurability(t *testing.T) {
	ordered := ReshardDurabilityOrdered("P-ART", keys.RandInt, false, reshardShards, reshardLoadN, reshardPostN, 0)
	t.Log(ordered)
	hash := ReshardDurabilityHash("P-CLHT", reshardShards, reshardLoadN, reshardPostN, 0)
	t.Log(hash)
	for _, rep := range []ReshardCampaignReport{ordered, hash} {
		if rep.Fired() != len(rep.Sites) {
			t.Errorf("%s: only %d/%d sites fired", rep.Index, rep.Fired(), len(rep.Sites))
		}
		if !rep.Pass() {
			for _, s := range rep.Sites {
				t.Errorf("%s site %s: %s recovViol=%d opViol=%d replays=%v detail=%s",
					rep.Index, s.Site, s.Outcome, s.RecoveryViolations, s.OpViolations, s.Replays, s.Detail)
			}
			t.Fatalf("%s: reshard durability campaign failed", rep.Index)
		}
	}
}
