// Batched crash campaigns: the per-site durability and lossy
// power-failure sweeps driven through the group-commit write path
// (internal/group), so every site inside a group commit — the two
// group.* boundary sites plus every index-internal site reached while a
// fence group is open — is crashed and verified.
//
// The acked-durability contract under batching is per batch: a batch
// whose Apply returned nil is acknowledged in full and every one of its
// writes must survive the power loss; a batch in flight when the crash
// hit was never acknowledged, so any subset of its operations may
// survive (each op's commit store is individually atomic — the
// deferred-fence invariant), but a surviving operation must carry its
// exact value. An acked write missing is LOST-ACK; an in-flight write
// missing is PARTIAL; a wrong value anywhere is CORRUPT — identical
// severity semantics to the unbatched campaigns, with the in-flight set
// widened from one operation to one batch.
package harness

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// batchTrial binds one index instance on one heap behind a batched
// loader: insertBatch group-commits identifiers [lo, lo+n).
type batchTrial struct {
	insertBatch func(lo uint64, n int) error
	lookup      func(id uint64) (uint64, bool)
	recoverFn   func() error
}

// orderedBatchTrial adapts an ordered index to the batched trial shape.
func orderedBatchTrial(factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind) func(*pmem.Heap) batchTrial {
	return func(heap *pmem.Heap) batchTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(kind)
		return batchTrial{
			insertBatch: func(lo uint64, n int) error {
				ops := make([]group.ByteOp, n)
				for i := range ops {
					id := lo + uint64(i)
					ops[i] = group.ByteOp{Key: gen.Key(id), Value: id}
				}
				return group.ApplyOrdered(heap, idx, ops, nil)
			},
			lookup:    func(id uint64) (uint64, bool) { return idx.Lookup(gen.Key(id)) },
			recoverFn: idx.Recover,
		}
	}
}

// hashBatchTrial adapts an unordered index to the batched trial shape.
func hashBatchTrial(factory func(*pmem.Heap) core.HashIndex) func(*pmem.Heap) batchTrial {
	return func(heap *pmem.Heap) batchTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(keys.RandInt)
		return batchTrial{
			insertBatch: func(lo uint64, n int) error {
				ops := make([]group.U64Op, n)
				for i := range ops {
					id := lo + uint64(i)
					ops[i] = group.U64Op{Key: gen.Uint64(id) | 1, Value: id}
				}
				return group.ApplyHash(heap, idx, ops, nil)
			},
			lookup:    func(id uint64) (uint64, bool) { return idx.Lookup(gen.Uint64(id) | 1) },
			recoverFn: idx.Recover,
		}
	}
}

// batches cuts [0, total) into group-commit ranges of the given size
// and calls body(lo, n) for each, stopping on the first error.
func batches(total, size int, body func(lo uint64, n int) error) error {
	if size < 1 {
		size = 1
	}
	for lo := 0; lo < total; lo += size {
		n := size
		if lo+n > total {
			n = total - lo
		}
		if err := body(uint64(lo), n); err != nil {
			return err
		}
	}
	return nil
}

// discoverBatchSites runs one untracked batched load with a
// never-firing injector and returns every crash site it passed through
// — the index's own sites plus the group.* boundary sites.
func discoverBatchSites(loadN, batch int, build func(*pmem.Heap) batchTrial) []string {
	inj := crash.NewProbabilistic(0, 1)
	heap := pmem.New(pmem.Options{Injector: inj})
	trial := build(heap)
	_ = batches(loadN, batch, trial.insertBatch)
	m := inj.Sites()
	sites := make([]string, 0, len(m))
	for s := range m {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	heap.Release()
	return sites
}

// LossyCampaignOrderedBatched runs the lossy power-failure campaign
// through the batched write path for an ordered index: discover every
// crash site a batched loadN-insert load passes through (including the
// group commit boundary sites), then crash at each, power-cycle under
// the policy, recover, and verify every acknowledged batch in full plus
// batch-atomicity of the in-flight batch and postN batched post-cycle
// inserts.
func LossyCampaignOrderedBatched(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, policy pmem.Policy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return lossyCampaignBatched(name, policy, seed, loadN, postN, batch, workers, orderedBatchTrial(factory, kind))
}

// LossyCampaignHashBatched is LossyCampaignOrderedBatched for unordered
// indexes.
func LossyCampaignHashBatched(name string, factory func(*pmem.Heap) core.HashIndex, policy pmem.Policy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return lossyCampaignBatched(name, policy, seed, loadN, postN, batch, workers, hashBatchTrial(factory))
}

func lossyCampaignBatched(name string, policy pmem.Policy, seed int64, loadN, postN, batch, workers int, build func(*pmem.Heap) batchTrial) LossyCampaignReport {
	sites := discoverBatchSites(loadN, batch, build)
	rep := LossyCampaignReport{
		Index: name, Policy: policy, Seed: seed,
		PostOps: postN, Sites: make([]LossySiteReport, len(sites)),
	}
	forEachSite(len(sites), workers, func(i int) {
		rep.Sites[i] = lossyBatchAtSite(sites[i], policy, siteSeed(seed, sites[i]), loadN, postN, batch, build)
	})
	return rep
}

// lossyBatchAtSite is one trial: batched load with a crash armed at the
// site's first visit on a Shadow-mode heap, power-cycle, recover, and
// verify acked batches fully and the in-flight batch atomically.
func lossyBatchAtSite(site string, policy pmem.Policy, seed int64, loadN, postN, batch int, build func(*pmem.Heap) batchTrial) LossySiteReport {
	r := LossySiteReport{Site: site}
	heap := pmem.New(pmem.Options{Shadow: true})
	defer heap.Release()
	trial := build(heap)
	heap.SetInjector(crash.NewAtSite(site, 1))

	committed := make([]uint64, 0, loadN)
	var inflight []uint64
	_ = batches(loadN, batch, func(lo uint64, n int) error {
		if err := trial.insertBatch(lo, n); err != nil {
			if crash.IsCrash(err) {
				r.Fired = true
				// The whole unacknowledged batch is in flight; any subset of
				// it may survive the loss, each op individually atomic.
				for i := 0; i < n; i++ {
					inflight = append(inflight, lo+uint64(i))
				}
			}
			// Non-crash errors end the load; only acknowledged batches join
			// the model.
			return err
		}
		for i := 0; i < n; i++ {
			committed = append(committed, lo+uint64(i))
		}
		return nil
	})
	heap.SetInjector(nil)
	if !r.Fired {
		return r
	}

	r.Cycle = heap.PowerCycle(policy, seed)
	if err := guard(trial.recoverFn); err != nil {
		r.Outcome, r.Detail = OutcomeCorrupt, fmt.Sprintf("recovery failed: %v", err)
		return r
	}

	fail := func(o LossyOutcome, detail string) {
		if o > r.Outcome {
			r.Outcome = o
			r.Detail = detail
		}
	}

	// Acked batches: every write present with its value — the group
	// barrier retired before the ack, so the power loss may not touch it.
	verify := func(phase string) error {
		return guard(func() error {
			for _, id := range committed {
				v, ok := trial.lookup(id)
				switch {
				case !ok:
					r.LostAcks++
					fail(OutcomeLostAck, fmt.Sprintf("%s: acknowledged id %d missing", phase, id))
				case v != id:
					r.LostAcks++
					fail(OutcomeCorrupt, fmt.Sprintf("%s: id %d read back %d", phase, id, v))
				}
			}
			return nil
		})
	}
	if err := verify("readback"); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("readback %v", err))
		return r
	}

	// The in-flight batch was never acknowledged: each of its ops either
	// survived whole or vanished whole — a wrong value is corruption.
	err := guard(func() error {
		for _, id := range inflight {
			if v, ok := trial.lookup(id); ok {
				if v != id {
					fail(OutcomeCorrupt, fmt.Sprintf("in-flight id %d read back %d", id, v))
				}
			} else {
				fail(OutcomePartial, "")
			}
		}
		return nil
	})
	if err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("in-flight lookup %v", err))
		return r
	}

	// The recovered index must accept and retain new batched writes.
	const postBase = 1_000_000
	if err := guard(func() error {
		return batches(postN, batch, func(lo uint64, n int) error {
			return trial.insertBatch(postBase+lo, n)
		})
	}); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-cycle batch: %v", err))
		return r
	}
	if err := guard(func() error {
		for i := 0; i < postN; i++ {
			id := uint64(postBase + i)
			if v, ok := trial.lookup(id); !ok || v != id {
				fail(OutcomeCorrupt, fmt.Sprintf("post-cycle id %d: ok=%v v=%d", id, ok, v))
			}
		}
		return nil
	}); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-cycle readback %v", err))
		return r
	}
	// Re-verify the original dataset after the repair traffic.
	if err := verify("post-ops readback"); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-ops readback %v", err))
	}
	return r
}

// DurabilitySitesOrderedBatched runs the per-site durability campaign
// through the batched write path for an ordered index: the tracker must
// report every line flushed and fenced at each acknowledged batch
// boundary — mid-batch pending lines are legal, unfenced lines
// surviving past the covering barrier are not — before the crash, after
// recovery, and across postN batched post-crash inserts.
func DurabilitySitesOrderedBatched(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, loadN, postN, batch, workers int) SiteCampaignReport {
	return durabilitySitesBatched(name, loadN, postN, batch, workers, orderedBatchTrial(factory, kind))
}

// DurabilitySitesHashBatched is DurabilitySitesOrderedBatched for
// unordered indexes.
func DurabilitySitesHashBatched(name string, factory func(*pmem.Heap) core.HashIndex, loadN, postN, batch, workers int) SiteCampaignReport {
	return durabilitySitesBatched(name, loadN, postN, batch, workers, hashBatchTrial(factory))
}

func durabilitySitesBatched(name string, loadN, postN, batch, workers int, build func(*pmem.Heap) batchTrial) SiteCampaignReport {
	sites := discoverBatchSites(loadN, batch, build)
	rep := SiteCampaignReport{Index: name, PostOps: postN, Sites: make([]SiteReport, len(sites))}
	forEachSite(len(sites), workers, func(i int) {
		rep.Sites[i] = durabilityBatchAtSite(sites[i], loadN, postN, batch, build)
	})
	return rep
}

// durabilityBatchAtSite is one trial: batched load with a crash armed
// at the site's first visit on a Track-mode heap, checking flush
// coverage at every acknowledged batch boundary before and after the
// crash.
func durabilityBatchAtSite(site string, loadN, postN, batch int, build func(*pmem.Heap) batchTrial) SiteReport {
	r := SiteReport{Site: site}
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	trial := build(heap)
	heap.SetInjector(crash.NewAtSite(site, 1))
	_ = batches(loadN, batch, func(lo uint64, n int) error {
		err := trial.insertBatch(lo, n)
		if crash.IsCrash(err) {
			r.Fired = true
		}
		return err
	})
	heap.SetInjector(nil)
	if !r.Fired {
		return r
	}
	// Power-cycle: unflushed state is gone; every boundary from here on
	// must be durable again.
	heap.Tracker().Reset()
	if err := trial.recoverFn(); err != nil {
		r.RecoveryFailed = true
		return r
	}
	if v := heap.Tracker().Check(); len(v) != 0 {
		r.RecoveryViolations = len(v)
		heap.Tracker().Reset()
	}
	const postBase = 1_000_000
	_ = batches(postN, batch, func(lo uint64, n int) error {
		if err := trial.insertBatch(postBase+lo, n); err != nil {
			r.OpViolations++
			return nil // keep driving the remaining batches
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			r.OpViolations += len(v)
			heap.Tracker().Reset()
		}
		return nil
	})
	return r
}
