// Batched execution: the YCSB run loops and the exact per-op-kind
// attribution walk, driven through the sharded front-end's group-flush
// combiners (shard.Deferred) so writes commit in groups of `batch` ops
// with one covering fence per same-shard group.
//
// The flush rules keep batched reads consistent with the plan's
// guarantees (see ycsb.Sampler): read-like targets are either loaded
// identifiers (< LoadN, flushed since the load phase completed) or the
// same thread's own earlier inserts — which sit in this thread's own
// combiner, so flushing the private queue before a read of an
// own-inserted identifier is sufficient. Pending in-place updates never
// force a flush: verification masks value tags (ValueID), so reading
// the pre-update value is indistinguishable in ID space.
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/keys"
	"repro/internal/ycsb"
	"repro/shard"
)

// RunOrderedBatched is RunOrdered over the sharded front-end with
// group-commit batching: each worker queues its writes in a
// shard.Deferred combiner of the given batch size (batch < 2 degrades
// to per-op group commits of one, the unbatched write path). Reads and
// scans execute directly, flushing the worker's queue first only when a
// queued insert could be observed. The measured-phase Result is
// comparable to RunOrdered's: same plan, same op counts, fewer fences.
func RunOrderedBatched(name string, m *shard.Ordered, gen *keys.Generator, w ycsb.Workload, loadN, opN, threads, batch int, seed int64) (Result, error) {
	load := ycsb.GenerateLoad(loadN, threads)
	if err := execOrderedBatched(m, gen, load, batch); err != nil {
		return Result{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := m.Stats()
	start := time.Now()
	if err := execOrderedBatched(m, gen, plan, batch); err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	elapsed := time.Since(start)
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: m.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
	}, nil
}

// RunHashBatched is RunOrderedBatched for the unordered front-end
// (integer keys; scan ops are invalid).
func RunHashBatched(name string, m *shard.Hash, gen *keys.Generator, w ycsb.Workload, loadN, opN, threads, batch int, seed int64) (Result, error) {
	if w.ScanPct > 0 {
		return Result{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	load := ycsb.GenerateLoad(loadN, threads)
	if err := execHashBatched(m, gen, load, batch); err != nil {
		return Result{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := m.Stats()
	start := time.Now()
	if err := execHashBatched(m, gen, plan, batch); err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	elapsed := time.Since(start)
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: m.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
	}, nil
}

// execOrderedBatched runs a plan against the ordered front-end, one
// goroutine per thread stream, each owning a private combiner.
func execOrderedBatched(m *shard.Ordered, gen *keys.Generator, plan *ycsb.Plan, batch int) error {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.Threads))
	loadN := uint64(plan.LoadN)
	for t := range plan.Threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := shard.NewDeferred(m, batch)
			buf := make([]byte, 0, 32)
			for _, op := range plan.Threads[t] {
				buf = gen.AppendKey(buf[:0], op.ID)
				var err error
				switch op.Kind {
				case ycsb.OpInsert:
					err = d.Insert(buf, op.ID)
				case ycsb.OpUpdate:
					err = d.Update(buf, op.ID|UpdateBit)
				case ycsb.OpRead:
					// Only an own earlier insert (ID >= LoadN) can still sit in
					// the queue; loaded identifiers were flushed with the load.
					if op.ID >= loadN && d.HasInserts() {
						err = d.Flush()
					}
					if err == nil {
						if v, ok := m.Lookup(buf); !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
						}
					}
				case ycsb.OpRMW:
					if op.ID >= loadN && d.HasInserts() {
						err = d.Flush()
					}
					if err == nil {
						v, ok := m.Lookup(buf)
						if !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
						} else {
							err = d.Update(buf, v|RMWBit)
						}
					}
				case ycsb.OpScan:
					if d.HasInserts() {
						err = d.Flush()
					}
					if err == nil {
						m.Scan(buf, op.ScanLen, func([]byte, uint64) bool { return true })
					}
				}
				if err != nil {
					errs[t] = err
					return
				}
			}
			if err := d.Flush(); err != nil {
				errs[t] = err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// execHashBatched runs a plan against the unordered front-end.
func execHashBatched(m *shard.Hash, gen *keys.Generator, plan *ycsb.Plan, batch int) error {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.Threads))
	loadN := uint64(plan.LoadN)
	for t := range plan.Threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := shard.NewDeferredHash(m, batch)
			for _, op := range plan.Threads[t] {
				k := gen.Uint64(op.ID) | 1 // hash tables reserve key 0
				var err error
				switch op.Kind {
				case ycsb.OpInsert:
					err = d.Insert(k, op.ID)
				case ycsb.OpUpdate:
					err = d.Update(k, op.ID|UpdateBit)
				case ycsb.OpRead:
					if op.ID >= loadN && d.HasInserts() {
						err = d.Flush()
					}
					if err == nil {
						if v, ok := m.Lookup(k); !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
						}
					}
				case ycsb.OpRMW:
					if op.ID >= loadN && d.HasInserts() {
						err = d.Flush()
					}
					if err == nil {
						v, ok := m.Lookup(k)
						if !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
						} else {
							err = d.Update(k, v|RMWBit)
						}
					}
				}
				if err != nil {
					errs[t] = err
					return
				}
			}
			if err := d.Flush(); err != nil {
				errs[t] = err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AttributeOrderedBatched is AttributeOrdered through the batched write
// path: a single-threaded walk with a combiner of the given batch size,
// charging every counter delta to the operation that caused it. Direct
// operations (reads, scans, the RMW read) are charged around their
// execution as in the unbatched walk; queued writes are charged at
// flush time through the combiner's observer, which fires after each
// op's group boundary — the covering barrier's delta is charged to the
// sub-batch's last write. Per-kind deltas conserve bit-exactly against
// the aggregate (Attribution.Conserves), batched or not.
func AttributeOrderedBatched(m *shard.Ordered, gen *keys.Generator, w ycsb.Workload, loadN, opN, batch int, seed int64) (Attribution, error) {
	if err := execOrderedBatched(m, gen, ycsb.GenerateLoad(loadN, 1), batch); err != nil {
		return Attribution{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, 1, seed)
	var a Attribution
	start := m.Stats()
	before := start
	charge := func(k ycsb.OpKind) {
		after := m.Stats()
		a.Kinds[k].Stats = a.Kinds[k].Stats.Add(after.Sub(before))
		before = after
	}

	d := shard.NewDeferred(m, batch)
	kinds := make([]ycsb.OpKind, 0, batch)
	obs := func(i int) { charge(kinds[i]) }
	flush := func() error {
		err := d.FlushObserved(obs)
		kinds = kinds[:0]
		return err
	}
	// enqueue pre-flushes a full queue so the combiner's internal
	// (unobserved) auto-flush never fires and every write is charged.
	enqueue := func(k ycsb.OpKind, key []byte, v uint64, update bool) error {
		if d.Pending() >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
		var err error
		if update {
			err = d.Update(key, v)
		} else {
			err = d.Insert(key, v)
		}
		kinds = append(kinds, k)
		return err
	}

	buf := make([]byte, 0, 32)
	loadN64 := uint64(loadN)
	for _, op := range plan.Threads[0] {
		buf = gen.AppendKey(buf[:0], op.ID)
		a.Kinds[op.Kind].Ops++
		var err error
		switch op.Kind {
		case ycsb.OpInsert:
			err = enqueue(ycsb.OpInsert, buf, op.ID, false)
		case ycsb.OpUpdate:
			err = enqueue(ycsb.OpUpdate, buf, op.ID|UpdateBit, true)
		case ycsb.OpRead:
			if op.ID >= loadN64 && d.HasInserts() {
				err = flush()
			}
			if err == nil {
				if v, ok := m.Lookup(buf); !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
				}
				charge(ycsb.OpRead)
			}
		case ycsb.OpRMW:
			if op.ID >= loadN64 && d.HasInserts() {
				err = flush()
			}
			if err == nil {
				v, ok := m.Lookup(buf)
				if !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
				} else {
					charge(ycsb.OpRMW) // the read half
					err = enqueue(ycsb.OpRMW, buf, v|RMWBit, true)
				}
			}
		case ycsb.OpScan:
			if d.HasInserts() {
				err = flush()
			}
			if err == nil {
				m.Scan(buf, op.ScanLen, func([]byte, uint64) bool { return true })
				charge(ycsb.OpScan)
			}
		}
		if err != nil {
			return Attribution{}, fmt.Errorf("run phase: %w", err)
		}
	}
	if err := flush(); err != nil {
		return Attribution{}, fmt.Errorf("final flush: %w", err)
	}
	a.Total = before.Sub(start)
	return a, nil
}

// AttributeHashBatched is AttributeOrderedBatched for the unordered
// front-end.
func AttributeHashBatched(m *shard.Hash, gen *keys.Generator, w ycsb.Workload, loadN, opN, batch int, seed int64) (Attribution, error) {
	if w.ScanPct > 0 {
		return Attribution{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	if err := execHashBatched(m, gen, ycsb.GenerateLoad(loadN, 1), batch); err != nil {
		return Attribution{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, 1, seed)
	var a Attribution
	start := m.Stats()
	before := start
	charge := func(k ycsb.OpKind) {
		after := m.Stats()
		a.Kinds[k].Stats = a.Kinds[k].Stats.Add(after.Sub(before))
		before = after
	}

	d := shard.NewDeferredHash(m, batch)
	kinds := make([]ycsb.OpKind, 0, batch)
	obs := func(i int) { charge(kinds[i]) }
	flush := func() error {
		err := d.FlushObserved(obs)
		kinds = kinds[:0]
		return err
	}
	enqueue := func(kind ycsb.OpKind, k, v uint64, update bool) error {
		if d.Pending() >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
		var err error
		if update {
			err = d.Update(k, v)
		} else {
			err = d.Insert(k, v)
		}
		kinds = append(kinds, kind)
		return err
	}

	loadN64 := uint64(loadN)
	for _, op := range plan.Threads[0] {
		k := gen.Uint64(op.ID) | 1
		a.Kinds[op.Kind].Ops++
		var err error
		switch op.Kind {
		case ycsb.OpInsert:
			err = enqueue(ycsb.OpInsert, k, op.ID, false)
		case ycsb.OpUpdate:
			err = enqueue(ycsb.OpUpdate, k, op.ID|UpdateBit, true)
		case ycsb.OpRead:
			if op.ID >= loadN64 && d.HasInserts() {
				err = flush()
			}
			if err == nil {
				if v, ok := m.Lookup(k); !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
				}
				charge(ycsb.OpRead)
			}
		case ycsb.OpRMW:
			if op.ID >= loadN64 && d.HasInserts() {
				err = flush()
			}
			if err == nil {
				v, ok := m.Lookup(k)
				if !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
				} else {
					charge(ycsb.OpRMW)
					err = enqueue(ycsb.OpRMW, k, v|RMWBit, true)
				}
			}
		}
		if err != nil {
			return Attribution{}, fmt.Errorf("run phase: %w", err)
		}
	}
	if err := flush(); err != nil {
		return Attribution{}, fmt.Errorf("final flush: %w", err)
	}
	a.Total = before.Sub(start)
	return a, nil
}
