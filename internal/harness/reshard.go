// Crash-mid-migration campaigns: the lossy power-failure methodology
// and the per-site durability sweep, extended to the resharding
// protocol's crash sites (shard.SiteCopyApplied on the recipient,
// shard.SiteFlipPublished on the donor, and the group-commit sites a
// copy batch passes through on the recipient).
//
// Each trial builds a fresh sharded front-end with resharding enabled,
// loads it, then runs a slot (or range) migration with a crash armed on
// the role-appropriate shard's heap. After the crash the trial
// power-cycles only that shard, runs the crashed-shard recovery sweep,
// and asserts the resharding invariants on top of the usual lossy
// verdicts:
//
//   - recovery replays exactly the crashed shard — a migration crash
//     must never force healthy shards through recovery;
//   - every acknowledged write reads back through the surviving routing
//     table (donor-authoritative after an abort, recipient-owned after
//     a published flip);
//   - the merged scan stays duplicate-free — migration residue on
//     either side of the handoff is deduplicated, not double-counted;
//   - an aborted migration is retryable to completion afterwards.
package harness

import (
	"fmt"

	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/shard"
)

// ReshardSiteReport is one (crash site, host shard) row in a reshard
// campaign.
type ReshardSiteReport struct {
	// Site is the crash-site name.
	Site string
	// Host is the shard whose heap the injector was armed on (the
	// recipient for copy-path sites, the donor for the flip site).
	Host int
	// Fired reports whether the migration reached the site and crashed.
	Fired bool
	// Outcome is the trial's worst observation (lossy verdict scale).
	Outcome LossyOutcome
	// LostAcks counts acknowledged writes missing after recovery.
	LostAcks int
	// Detail describes the first failure (empty for CLEAN/PARTIAL).
	Detail string
	// Replays is the per-shard recovery replay count after the trial;
	// Pass requires zeros everywhere but Host.
	Replays []uint64
	// RecoveryViolations and OpViolations are the durability-mode flush
	// coverage counters (always zero in lossy mode).
	RecoveryViolations int
	OpViolations       int
	// Cycle is the power cycle's damage report (lossy mode).
	Cycle pmem.CycleReport
}

// ReshardCampaignReport summarises one index × mode reshard campaign.
type ReshardCampaignReport struct {
	Index string
	// Mode is "lossy" or "durability".
	Mode string
	// Policy is the power-cycle policy (lossy mode).
	Policy pmem.Policy
	// Seed drove the torn coin flips (combined per site).
	Seed int64
	// Shards is the front-end width of every trial.
	Shards int
	// PostOps is the number of post-recovery inserts verified per site.
	PostOps int
	// Sites holds one row per (site, host) pair, in sweep order.
	Sites []ReshardSiteReport
}

// Fired counts trials that actually crashed.
func (r ReshardCampaignReport) Fired() int {
	n := 0
	for _, s := range r.Sites {
		if s.Fired {
			n++
		}
	}
	return n
}

// Pass reports whether no trial lost acknowledged data, corrupted the
// front-end, replayed a healthy shard, or (durability mode) left a line
// unflushed at a boundary.
func (r ReshardCampaignReport) Pass() bool {
	for _, s := range r.Sites {
		if s.Outcome == OutcomeLostAck || s.Outcome == OutcomeCorrupt {
			return false
		}
		if s.RecoveryViolations != 0 || s.OpViolations != 0 {
			return false
		}
		for i, c := range s.Replays {
			if want := uint64(0); i == s.Host && s.Fired {
				want = 1
			} else if c != want {
				return false
			}
		}
	}
	return true
}

func (r ReshardCampaignReport) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-12s mode=%-10s policy=%-6s sites=%d fired=%d lostAck=%d corrupt=%d  %s",
		r.Index, r.Mode, r.Policy, len(r.Sites), r.Fired(),
		r.Count(OutcomeLostAck), r.Count(OutcomeCorrupt), verdict)
}

// Count returns the number of fired trials with the given outcome.
func (r ReshardCampaignReport) Count(o LossyOutcome) int {
	n := 0
	for _, s := range r.Sites {
		if s.Fired && s.Outcome == o {
			n++
		}
	}
	return n
}

// reshardRig binds one sharded front-end trial behind key-type-neutral
// closures, so the sweep core serves both Ordered and Hash.
type reshardRig struct {
	insert     func(id uint64) error
	lookup     func(id uint64) (uint64, bool)
	migrate    func() error        // the armed migration (donor -> recipient)
	scanUnique func() (int, error) // merged-scan unique count; -1 = unsupported
	heap       func(i int) *pmem.Heap
	powerCycle func(i int, p pmem.Policy, seed int64) pmem.CycleReport
	recoverCr  func() ([]int, error)
	recoveries func() []uint64
	release    func()
	shards     int
	donor      int
	recipient  int
}

// reshardPair is one sweep entry: a crash site and which migration role
// hosts the injector.
type reshardPair struct {
	site    string
	onDonor bool
	// flips reports that a crash at this site lands after the flip
	// published (the migration stands); everywhere else it aborts.
	flips bool
}

// reshardPairs is the sweep: every crash boundary the migration
// protocol adds, plus the group-commit sites its copy batches pass
// through on the recipient.
func reshardPairs() []reshardPair {
	return []reshardPair{
		{site: group.SiteOpApplied},
		{site: group.SiteCommitFenced},
		{site: shard.SiteCopyApplied},
		{site: shard.SiteFlipPublished, onDonor: true, flips: true},
	}
}

// rigOrdered builds one ordered-front-end trial. ranged selects a
// range-partitioned front-end migrating the upper half of the donor's
// span; otherwise half the donor's slots move.
func rigOrdered(name string, kind keys.Kind, h int, ranged bool, heapOpts pmem.Options) (*reshardRig, error) {
	opts := shard.Options{Shards: h, Heap: heapOpts}
	if ranged {
		opts.Partitioner = shard.RangePartition{}
	}
	m, err := shard.NewOrdered(name, kind, opts)
	if err != nil {
		return nil, err
	}
	if err := m.EnableResharding(); err != nil {
		m.Release()
		return nil, err
	}
	gen := keys.NewGenerator(kind)
	migrate := func() error {
		slots := m.SlotsOf(0)
		return m.MigrateSlots(0, 1, slots[:len(slots)/2], 32)
	}
	if ranged {
		width := ^uint64(0)/uint64(h) + 1
		migrate = func() error { return m.MigrateRange(0, 1, width/2, width-1, 32) }
	}
	return &reshardRig{
		insert:  func(id uint64) error { return m.Insert(gen.Key(id), id) },
		lookup:  func(id uint64) (uint64, bool) { return m.Lookup(gen.Key(id)) },
		migrate: migrate,
		scanUnique: func() (int, error) {
			return guardCount(func() int {
				seen := 0
				var prev []byte
				m.Scan(nil, 0, func(k []byte, v uint64) bool {
					if prev != nil && string(prev) >= string(k) {
						seen = -1
						return false
					}
					prev = append(prev[:0], k...)
					seen++
					return true
				})
				return seen
			})
		},
		heap:       m.Heap,
		powerCycle: m.PowerCycleShard,
		recoverCr:  m.RecoverCrashed,
		recoveries: m.Recoveries,
		release:    m.Release,
		shards:     h,
		donor:      0,
		recipient:  1,
	}, nil
}

// rigHash builds one unordered-front-end trial (slot migration via the
// HashRanger enumeration path).
func rigHash(name string, h int, heapOpts pmem.Options) (*reshardRig, error) {
	m, err := shard.NewHash(name, shard.Options{Shards: h, Heap: heapOpts})
	if err != nil {
		return nil, err
	}
	if err := m.EnableResharding(); err != nil {
		m.Release()
		return nil, err
	}
	gen := keys.NewGenerator(keys.RandInt)
	return &reshardRig{
		insert: func(id uint64) error { return m.Insert(gen.Uint64(id)|1, id) },
		lookup: func(id uint64) (uint64, bool) { return m.Lookup(gen.Uint64(id) | 1) },
		migrate: func() error {
			slots := m.SlotsOf(0)
			return m.MigrateSlots(0, 1, slots[:len(slots)/2], 32)
		},
		scanUnique: func() (int, error) { return -1, nil },
		heap:       m.Heap,
		powerCycle: m.PowerCycleShard,
		recoverCr:  m.RecoverCrashed,
		recoveries: m.Recoveries,
		release:    m.Release,
		shards:     h,
		donor:      0,
		recipient:  1,
	}, nil
}

// guardCount is guard for an int-returning readback.
func guardCount(f func() int) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f(), nil
}

// ReshardLossyOrdered runs the lossy crash-mid-migration campaign for
// an ordered index over every reshard sweep site.
func ReshardLossyOrdered(name string, kind keys.Kind, ranged bool, policy pmem.Policy, seed int64, shards, loadN, postN, workers int) ReshardCampaignReport {
	build := func() (*reshardRig, error) {
		return rigOrdered(name, kind, shards, ranged, pmem.Options{Shadow: true})
	}
	return reshardCampaign(name, "lossy", policy, seed, shards, loadN, postN, workers, build)
}

// ReshardLossyHash is ReshardLossyOrdered for unordered indexes.
func ReshardLossyHash(name string, policy pmem.Policy, seed int64, shards, loadN, postN, workers int) ReshardCampaignReport {
	build := func() (*reshardRig, error) {
		return rigHash(name, shards, pmem.Options{Shadow: true})
	}
	return reshardCampaign(name, "lossy", policy, seed, shards, loadN, postN, workers, build)
}

// ReshardDurabilityOrdered runs the flush-coverage variant: Track-mode
// heaps, no power loss, asserting that recovery and post-crash traffic
// leave every dirtied line flushed and fenced at operation boundaries.
func ReshardDurabilityOrdered(name string, kind keys.Kind, ranged bool, shards, loadN, postN, workers int) ReshardCampaignReport {
	build := func() (*reshardRig, error) {
		return rigOrdered(name, kind, shards, ranged, pmem.Options{Track: true})
	}
	return reshardCampaign(name, "durability", 0, 0, shards, loadN, postN, workers, build)
}

// ReshardDurabilityHash is ReshardDurabilityOrdered for unordered
// indexes.
func ReshardDurabilityHash(name string, shards, loadN, postN, workers int) ReshardCampaignReport {
	build := func() (*reshardRig, error) {
		return rigHash(name, shards, pmem.Options{Track: true})
	}
	return reshardCampaign(name, "durability", 0, 0, shards, loadN, postN, workers, build)
}

func reshardCampaign(name, mode string, policy pmem.Policy, seed int64, shards, loadN, postN, workers int, build func() (*reshardRig, error)) ReshardCampaignReport {
	pairs := reshardPairs()
	rep := ReshardCampaignReport{
		Index: name, Mode: mode, Policy: policy, Seed: seed,
		Shards: shards, PostOps: postN, Sites: make([]ReshardSiteReport, len(pairs)),
	}
	forEachSite(len(pairs), workers, func(i int) {
		rep.Sites[i] = reshardAtSite(pairs[i], mode, policy, siteSeed(seed, pairs[i].site), loadN, postN, build)
	})
	return rep
}

// reshardAtSite is one trial; see the package comment for the protocol
// and the invariants asserted.
func reshardAtSite(pair reshardPair, mode string, policy pmem.Policy, seed int64, loadN, postN int, build func() (*reshardRig, error)) ReshardSiteReport {
	r := ReshardSiteReport{Site: pair.site}
	rig, err := build()
	if err != nil {
		r.Outcome, r.Detail = OutcomeCorrupt, fmt.Sprintf("build: %v", err)
		return r
	}
	defer rig.release()
	r.Host = rig.recipient
	if pair.onDonor {
		r.Host = rig.donor
	}

	fail := func(o LossyOutcome, detail string) {
		if o > r.Outcome {
			r.Outcome = o
			r.Detail = detail
		}
	}

	committed := make([]uint64, 0, loadN)
	for i := 0; i < loadN; i++ {
		id := uint64(i)
		if err := rig.insert(id); err != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("load insert %d: %v", id, err))
			return r
		}
		committed = append(committed, id)
	}

	// Arm the host shard and run the migration into the crash.
	inj := crash.NewAtSite(pair.site, 1)
	rig.heap(r.Host).SetInjector(inj)
	merr := guard(rig.migrate)
	r.Fired = inj.Fired()
	if !r.Fired {
		rig.heap(r.Host).SetInjector(nil)
		if merr != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("migration failed without firing: %v", merr))
		}
		return r
	}
	if merr == nil {
		fail(OutcomeCorrupt, "migration acknowledged success despite an injected crash")
		return r
	}

	// Restart only the crashed shard: lossy mode materialises its
	// post-power-loss image first; durability mode adopts power-cycle
	// semantics on its flush tracker.
	if mode == "lossy" {
		r.Cycle = rig.powerCycle(r.Host, policy, seed)
	} else {
		rig.heap(r.Host).Tracker().Reset()
	}
	recovered, rerr := rig.recoverCr()
	r.Replays = rig.recoveries()
	if rerr != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("recovery: %v", rerr))
		return r
	}
	if len(recovered) != 1 || recovered[0] != r.Host {
		fail(OutcomeCorrupt, fmt.Sprintf("recovered %v, want [%d]", recovered, r.Host))
		return r
	}
	if mode == "durability" {
		if v := rig.heap(r.Host).Tracker().Check(); len(v) != 0 {
			r.RecoveryViolations = len(v)
			rig.heap(r.Host).Tracker().Reset()
		}
	}

	verify := func(phase string) bool {
		err := guard(func() error {
			for _, id := range committed {
				v, ok := rig.lookup(id)
				switch {
				case !ok:
					r.LostAcks++
					fail(OutcomeLostAck, fmt.Sprintf("%s: acknowledged id %d missing", phase, id))
				case v != id:
					r.LostAcks++
					fail(OutcomeCorrupt, fmt.Sprintf("%s: id %d read back %d", phase, id, v))
				}
			}
			return nil
		})
		if err != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("%s: %v", phase, err))
			return false
		}
		if n, err := rig.scanUnique(); err != nil || (n >= 0 && n != len(committed)) {
			fail(OutcomeCorrupt, fmt.Sprintf("%s: unique scan %d (err %v), want %d", phase, n, err, len(committed)))
			return false
		}
		return true
	}
	if !verify("readback") {
		return r
	}

	// The surviving routing table must keep serving writes.
	post := make([]uint64, 0, postN)
	for i := 0; i < postN; i++ {
		id := uint64(1_000_000 + i)
		if err := guard(func() error { return rig.insert(id) }); err != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("post-crash insert %d: %v", id, err))
			return r
		}
		post = append(post, id)
		if mode == "durability" {
			r.OpViolations += checkAllTrackers(rig)
		}
	}
	err = guard(func() error {
		for _, id := range post {
			if v, ok := rig.lookup(id); !ok || v != id {
				fail(OutcomeCorrupt, fmt.Sprintf("post-crash id %d: ok=%v v=%d", id, ok, v))
			}
		}
		return nil
	})
	if err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-crash readback: %v", err))
		return r
	}
	committed = append(committed, post...)

	// An aborted migration must be retryable to completion; a published
	// flip already stands, so there is nothing to redo.
	if !pair.flips {
		if err := guard(rig.migrate); err != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("retry migration: %v", err))
			return r
		}
		if mode == "durability" {
			r.OpViolations += checkAllTrackers(rig)
		}
	}
	verify("final readback")
	return r
}

// checkAllTrackers sums flush-coverage violations over every shard's
// tracker at an operation boundary, resetting any dirty tracker so one
// violation is not recounted at every later boundary.
func checkAllTrackers(rig *reshardRig) int {
	n := 0
	for i := 0; i < rig.shards; i++ {
		if v := rig.heap(i).Tracker().Check(); len(v) != 0 {
			n += len(v)
			rig.heap(i).Tracker().Reset()
		}
	}
	return n
}
