// Async execution: the YCSB run loops and the per-op-kind attribution
// walk driven through the async commit pipeline (internal/commit) —
// writers enqueue into per-shard bounded queues and receive futures,
// shard committers drain the queues into group commits, and every
// future resolves only after its batch's covering fence retired.
//
// Read-your-writes under async enqueue follows the batched loops' rule
// with futures in place of a private combiner: a read-like target is
// either a loaded identifier (drained before the measured phase) or
// the same thread's own earlier insert — which the thread tracks in
// its outstanding-futures window and waits for before reading.
// Pending in-place updates never force a wait: verification masks
// value tags (ValueID), so observing the pre-update value is
// indistinguishable in ID space. Waits double as the enqueue-to-ack
// latency sample: each waited future's ResolvedAt minus its enqueue
// time feeds Result.AckOps/AckTotal.
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/commit"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/ycsb"
	"repro/shard"
)

// asyncWindow caps a worker's outstanding (unwaited) futures; reaching
// it drains the window so a fast enqueuer cannot hold unbounded
// future memory on top of the pipeline's own bounded queues.
const asyncWindow = 1024

// ackWindow is one worker's outstanding-futures window plus its
// enqueue-to-ack latency accumulator.
type ackWindow struct {
	futs       []*commit.Future
	enq        []time.Time
	hasInserts bool

	ops   int
	total time.Duration
}

// add records one accepted write future. insert marks futures a read
// of an own-inserted identifier must wait for.
func (w *ackWindow) add(f *commit.Future, at time.Time, insert bool) {
	w.futs = append(w.futs, f)
	w.enq = append(w.enq, at)
	w.hasInserts = w.hasInserts || insert
}

// drain waits every outstanding future, sampling ack latency, and
// returns the first write failure.
func (w *ackWindow) drain() error {
	var first error
	for i, f := range w.futs {
		if err := f.Wait(); err != nil && first == nil {
			first = err
		}
		if at, ok := f.ResolvedAt(); ok {
			w.total += at.Sub(w.enq[i])
			w.ops++
		}
	}
	w.futs = w.futs[:0]
	w.enq = w.enq[:0]
	w.hasInserts = false
	return first
}

// RunOrderedAsync is RunOrdered through the async commit pipeline:
// each worker enqueues its writes into the per-shard committers of a
// commit.Ordered built over m with opts and waits futures only when a
// read could observe one of its own pending inserts. The measured
// phase ends at a full pipeline drain (inside the timing), so the
// Result covers every write's covering fence; the pipeline is closed
// before returning. Result.AckOps/AckTotal carry the enqueue-to-ack
// latency sample.
func RunOrderedAsync(name string, m *shard.Ordered, gen *keys.Generator, w ycsb.Workload, loadN, opN, threads int, opts commit.Options, seed int64) (Result, error) {
	p := commit.NewOrdered(m, opts)
	res, err := runOrderedAsync(name, p, m, gen, w, loadN, opN, threads, seed)
	cerr := p.Close()
	if err != nil {
		return Result{}, err
	}
	if cerr != nil {
		return Result{}, fmt.Errorf("pipeline close: %w", cerr)
	}
	return res, nil
}

func runOrderedAsync(name string, p *commit.Ordered, m *shard.Ordered, gen *keys.Generator, w ycsb.Workload, loadN, opN, threads int, seed int64) (Result, error) {
	load := ycsb.GenerateLoad(loadN, threads)
	if _, _, err := execOrderedAsync(p, m, gen, load); err != nil {
		return Result{}, fmt.Errorf("load phase: %w", err)
	}
	// Quiesce: the measured phase starts with every loaded key durable.
	if err := p.Drain(); err != nil {
		return Result{}, fmt.Errorf("load drain: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := m.Stats()
	start := time.Now()
	ackOps, ackTotal, err := execOrderedAsync(p, m, gen, plan)
	if err == nil {
		// The drain is part of the measured phase: throughput and the
		// counter delta cover every measured write's covering fence.
		err = p.Drain()
	}
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: m.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
		AckOps: ackOps, AckTotal: ackTotal,
	}, nil
}

// RunHashAsync is RunOrderedAsync for the unordered front-end (integer
// keys; scan ops are invalid).
func RunHashAsync(name string, m *shard.Hash, gen *keys.Generator, w ycsb.Workload, loadN, opN, threads int, opts commit.Options, seed int64) (Result, error) {
	if w.ScanPct > 0 {
		return Result{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	p := commit.NewHash(m, opts)
	res, err := runHashAsync(name, p, m, gen, w, loadN, opN, threads, seed)
	cerr := p.Close()
	if err != nil {
		return Result{}, err
	}
	if cerr != nil {
		return Result{}, fmt.Errorf("pipeline close: %w", cerr)
	}
	return res, nil
}

func runHashAsync(name string, p *commit.Hash, m *shard.Hash, gen *keys.Generator, w ycsb.Workload, loadN, opN, threads int, seed int64) (Result, error) {
	load := ycsb.GenerateLoad(loadN, threads)
	if _, _, err := execHashAsync(p, m, gen, load); err != nil {
		return Result{}, fmt.Errorf("load phase: %w", err)
	}
	if err := p.Drain(); err != nil {
		return Result{}, fmt.Errorf("load drain: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := m.Stats()
	start := time.Now()
	ackOps, ackTotal, err := execHashAsync(p, m, gen, plan)
	if err == nil {
		err = p.Drain()
	}
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: m.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
		AckOps: ackOps, AckTotal: ackTotal,
	}, nil
}

// execOrderedAsync runs a plan against the ordered pipeline, one
// goroutine per thread stream, each owning a private futures window.
// It returns the summed ack-latency sample across threads.
func execOrderedAsync(p *commit.Ordered, m *shard.Ordered, gen *keys.Generator, plan *ycsb.Plan) (int, time.Duration, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.Threads))
	windows := make([]ackWindow, len(plan.Threads))
	loadN := uint64(plan.LoadN)
	for t := range plan.Threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			wdw := &windows[t]
			buf := make([]byte, 0, 32)
			for _, op := range plan.Threads[t] {
				buf = gen.AppendKey(buf[:0], op.ID)
				var err error
				switch op.Kind {
				case ycsb.OpInsert:
					err = asyncWrite(wdw, func() (*commit.Future, error) { return p.Insert(buf, op.ID) }, true)
				case ycsb.OpUpdate:
					err = asyncWrite(wdw, func() (*commit.Future, error) { return p.Update(buf, op.ID|UpdateBit) }, false)
				case ycsb.OpRead:
					// Only an own earlier insert (ID >= LoadN) can still be
					// unresolved; loaded identifiers drained with the load.
					if op.ID >= loadN && wdw.hasInserts {
						err = wdw.drain()
					}
					if err == nil {
						if v, ok := m.Lookup(buf); !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
						}
					}
				case ycsb.OpRMW:
					if op.ID >= loadN && wdw.hasInserts {
						err = wdw.drain()
					}
					if err == nil {
						v, ok := m.Lookup(buf)
						if !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
						} else {
							err = asyncWrite(wdw, func() (*commit.Future, error) { return p.Update(buf, v|RMWBit) }, false)
						}
					}
				case ycsb.OpScan:
					if wdw.hasInserts {
						err = wdw.drain()
					}
					if err == nil {
						m.Scan(buf, op.ScanLen, func([]byte, uint64) bool { return true })
					}
				}
				if err != nil {
					errs[t] = err
					return
				}
			}
			errs[t] = wdw.drain()
		}()
	}
	wg.Wait()
	ops, total := 0, time.Duration(0)
	for i := range windows {
		ops += windows[i].ops
		total += windows[i].total
	}
	for _, err := range errs {
		if err != nil {
			return ops, total, err
		}
	}
	return ops, total, nil
}

// execHashAsync runs a plan against the unordered pipeline.
func execHashAsync(p *commit.Hash, m *shard.Hash, gen *keys.Generator, plan *ycsb.Plan) (int, time.Duration, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.Threads))
	windows := make([]ackWindow, len(plan.Threads))
	loadN := uint64(plan.LoadN)
	for t := range plan.Threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			wdw := &windows[t]
			for _, op := range plan.Threads[t] {
				k := gen.Uint64(op.ID) | 1 // hash tables reserve key 0
				var err error
				switch op.Kind {
				case ycsb.OpInsert:
					err = asyncWrite(wdw, func() (*commit.Future, error) { return p.Insert(k, op.ID) }, true)
				case ycsb.OpUpdate:
					err = asyncWrite(wdw, func() (*commit.Future, error) { return p.Update(k, op.ID|UpdateBit) }, false)
				case ycsb.OpRead:
					if op.ID >= loadN && wdw.hasInserts {
						err = wdw.drain()
					}
					if err == nil {
						if v, ok := m.Lookup(k); !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
						}
					}
				case ycsb.OpRMW:
					if op.ID >= loadN && wdw.hasInserts {
						err = wdw.drain()
					}
					if err == nil {
						v, ok := m.Lookup(k)
						if !ok || ValueID(v) != op.ID {
							err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
						} else {
							err = asyncWrite(wdw, func() (*commit.Future, error) { return p.Update(k, v|RMWBit) }, false)
						}
					}
				}
				if err != nil {
					errs[t] = err
					return
				}
			}
			errs[t] = wdw.drain()
		}()
	}
	wg.Wait()
	ops, total := 0, time.Duration(0)
	for i := range windows {
		ops += windows[i].ops
		total += windows[i].total
	}
	for _, err := range errs {
		if err != nil {
			return ops, total, err
		}
	}
	return ops, total, nil
}

// asyncWrite enqueues one write through enq, recording its future in
// the window — draining the window first when it is at capacity.
func asyncWrite(w *ackWindow, enq func() (*commit.Future, error), insert bool) error {
	if len(w.futs) >= asyncWindow {
		if err := w.drain(); err != nil {
			return err
		}
	}
	at := time.Now()
	f, err := enq()
	if err != nil {
		return err
	}
	w.add(f, at, insert)
	return nil
}

// asyncKindByte infers the op kind the attribution observer charges
// from the write's tag bits: an insert carries the bare identifier, an
// RMW rewrite carries RMWBit, anything else updating is an update.
func asyncKindByte(op group.ByteOp) ycsb.OpKind {
	if !op.Update {
		return ycsb.OpInsert
	}
	if op.Value&RMWBit != 0 {
		return ycsb.OpRMW
	}
	return ycsb.OpUpdate
}

func asyncKindU64(op group.U64Op) ycsb.OpKind {
	if !op.Update {
		return ycsb.OpInsert
	}
	if op.Value&RMWBit != 0 {
		return ycsb.OpRMW
	}
	return ycsb.OpUpdate
}

// AttributeOrderedAsync is AttributeOrderedBatched through the async
// pipeline: a single-threaded driver enqueues the plan's writes into
// an observed pipeline whose per-op hook — running on the shard
// committers' goroutines — charges each counter delta to the kind
// inferred from the op's value tags; the driver charges its direct
// reads/scans under the same mutex. The telescoping snapshot chain
// makes conservation bit-exact by construction (Attribution.Conserves)
// even though committers of different shards may interleave, in which
// case a charge can blur across kinds while the total stays exact.
func AttributeOrderedAsync(m *shard.Ordered, gen *keys.Generator, w ycsb.Workload, loadN, opN int, opts commit.Options, seed int64) (Attribution, error) {
	lp := commit.NewOrdered(m, opts)
	_, _, err := execOrderedAsync(lp, m, gen, ycsb.GenerateLoad(loadN, 1))
	if cerr := lp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Attribution{}, fmt.Errorf("load phase: %w", err)
	}

	plan := ycsb.Generate(w, loadN, opN, 1, seed)
	var a Attribution
	var mu sync.Mutex
	start := m.Stats()
	before := start
	charge := func(k ycsb.OpKind) { // callers hold mu
		after := m.Stats()
		a.Kinds[k].Stats = a.Kinds[k].Stats.Add(after.Sub(before))
		before = after
	}
	p := commit.NewOrderedObserved(m, opts, func(op group.ByteOp) {
		mu.Lock()
		charge(asyncKindByte(op))
		mu.Unlock()
	})

	var futs []*commit.Future
	hasInserts := false
	wait := func() error {
		var first error
		for _, f := range futs {
			if err := f.Wait(); err != nil && first == nil {
				first = err
			}
		}
		futs = futs[:0]
		hasInserts = false
		return first
	}
	enqueue := func(enq func() (*commit.Future, error), insert bool) error {
		if len(futs) >= asyncWindow {
			if err := wait(); err != nil {
				return err
			}
		}
		f, err := enq()
		if err != nil {
			return err
		}
		futs = append(futs, f)
		hasInserts = hasInserts || insert
		return nil
	}

	fail := func(err error) (Attribution, error) {
		p.Close()
		return Attribution{}, fmt.Errorf("run phase: %w", err)
	}
	buf := make([]byte, 0, 32)
	loadN64 := uint64(loadN)
	for _, op := range plan.Threads[0] {
		buf = gen.AppendKey(buf[:0], op.ID)
		a.Kinds[op.Kind].Ops++
		var err error
		switch op.Kind {
		case ycsb.OpInsert:
			err = enqueue(func() (*commit.Future, error) { return p.Insert(buf, op.ID) }, true)
		case ycsb.OpUpdate:
			err = enqueue(func() (*commit.Future, error) { return p.Update(buf, op.ID|UpdateBit) }, false)
		case ycsb.OpRead:
			if op.ID >= loadN64 && hasInserts {
				err = wait()
			}
			if err == nil {
				if v, ok := m.Lookup(buf); !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
				}
				mu.Lock()
				charge(ycsb.OpRead)
				mu.Unlock()
			}
		case ycsb.OpRMW:
			if op.ID >= loadN64 && hasInserts {
				err = wait()
			}
			if err == nil {
				v, ok := m.Lookup(buf)
				if !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
				} else {
					mu.Lock()
					charge(ycsb.OpRMW) // the read half
					mu.Unlock()
					err = enqueue(func() (*commit.Future, error) { return p.Update(buf, v|RMWBit) }, false)
				}
			}
		case ycsb.OpScan:
			if hasInserts {
				err = wait()
			}
			if err == nil {
				m.Scan(buf, op.ScanLen, func([]byte, uint64) bool { return true })
				mu.Lock()
				charge(ycsb.OpScan)
				mu.Unlock()
			}
		}
		if err != nil {
			return fail(err)
		}
	}
	if err := wait(); err != nil {
		return fail(err)
	}
	if err := p.Drain(); err != nil {
		return fail(err)
	}
	if err := p.Close(); err != nil {
		return Attribution{}, fmt.Errorf("pipeline close: %w", err)
	}
	mu.Lock()
	a.Total = before.Sub(start)
	mu.Unlock()
	return a, nil
}

// AttributeHashAsync is AttributeOrderedAsync for the unordered
// front-end.
func AttributeHashAsync(m *shard.Hash, gen *keys.Generator, w ycsb.Workload, loadN, opN int, opts commit.Options, seed int64) (Attribution, error) {
	if w.ScanPct > 0 {
		return Attribution{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	lp := commit.NewHash(m, opts)
	_, _, err := execHashAsync(lp, m, gen, ycsb.GenerateLoad(loadN, 1))
	if cerr := lp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Attribution{}, fmt.Errorf("load phase: %w", err)
	}

	plan := ycsb.Generate(w, loadN, opN, 1, seed)
	var a Attribution
	var mu sync.Mutex
	start := m.Stats()
	before := start
	charge := func(k ycsb.OpKind) { // callers hold mu
		after := m.Stats()
		a.Kinds[k].Stats = a.Kinds[k].Stats.Add(after.Sub(before))
		before = after
	}
	p := commit.NewHashObserved(m, opts, func(op group.U64Op) {
		mu.Lock()
		charge(asyncKindU64(op))
		mu.Unlock()
	})

	var futs []*commit.Future
	hasInserts := false
	wait := func() error {
		var first error
		for _, f := range futs {
			if err := f.Wait(); err != nil && first == nil {
				first = err
			}
		}
		futs = futs[:0]
		hasInserts = false
		return first
	}
	enqueue := func(enq func() (*commit.Future, error), insert bool) error {
		if len(futs) >= asyncWindow {
			if err := wait(); err != nil {
				return err
			}
		}
		f, err := enq()
		if err != nil {
			return err
		}
		futs = append(futs, f)
		hasInserts = hasInserts || insert
		return nil
	}

	fail := func(err error) (Attribution, error) {
		p.Close()
		return Attribution{}, fmt.Errorf("run phase: %w", err)
	}
	loadN64 := uint64(loadN)
	for _, op := range plan.Threads[0] {
		k := gen.Uint64(op.ID) | 1
		a.Kinds[op.Kind].Ops++
		var err error
		switch op.Kind {
		case ycsb.OpInsert:
			err = enqueue(func() (*commit.Future, error) { return p.Insert(k, op.ID) }, true)
		case ycsb.OpUpdate:
			err = enqueue(func() (*commit.Future, error) { return p.Update(k, op.ID|UpdateBit) }, false)
		case ycsb.OpRead:
			if op.ID >= loadN64 && hasInserts {
				err = wait()
			}
			if err == nil {
				if v, ok := m.Lookup(k); !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
				}
				mu.Lock()
				charge(ycsb.OpRead)
				mu.Unlock()
			}
		case ycsb.OpRMW:
			if op.ID >= loadN64 && hasInserts {
				err = wait()
			}
			if err == nil {
				v, ok := m.Lookup(k)
				if !ok || ValueID(v) != op.ID {
					err = fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
				} else {
					mu.Lock()
					charge(ycsb.OpRMW)
					mu.Unlock()
					err = enqueue(func() (*commit.Future, error) { return p.Update(k, v|RMWBit) }, false)
				}
			}
		}
		if err != nil {
			return fail(err)
		}
	}
	if err := wait(); err != nil {
		return fail(err)
	}
	if err := p.Drain(); err != nil {
		return fail(err)
	}
	if err := p.Close(); err != nil {
		return Attribution{}, fmt.Errorf("pipeline close: %w", err)
	}
	mu.Lock()
	a.Total = before.Sub(start)
	mu.Unlock()
	return a, nil
}
