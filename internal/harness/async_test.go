package harness

import (
	"reflect"
	"testing"

	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
	"repro/shard"
)

// TestAsyncRunOrdered: the async run loop executes write-heavy A
// clean, covers the full plan, and samples enqueue-to-ack latency.
func TestAsyncRunOrdered(t *testing.T) {
	const loadN, opN, threads, seed = 512, 1024, 2, 42
	gen := keys.NewGenerator(keys.RandInt)
	m := shardedOrdered(t, "P-ART", 2)
	defer m.Release()
	opts := commit.Options{Queue: 64, MaxBatch: 8}
	res, err := RunOrderedAsync("P-ART", m, gen, ycsb.A, loadN, opN, threads, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	plan := ycsb.Generate(ycsb.A, loadN, opN, threads, seed)
	if res.Ops != plan.TotalOps() || res.Counts != plan.Counts {
		t.Fatalf("async plan diverged: ops %d vs %d, counts %v vs %v",
			res.Ops, plan.TotalOps(), res.Counts, plan.Counts)
	}
	if res.AckOps == 0 || res.AckTotal <= 0 {
		t.Fatalf("no ack-latency sample: ops=%d total=%v", res.AckOps, res.AckTotal)
	}
	if res.MeanAckLatency() <= 0 {
		t.Fatalf("mean ack latency = %v", res.MeanAckLatency())
	}
}

// TestAsyncRunHash is TestAsyncRunOrdered for the unordered pipeline,
// including the scan rejection.
func TestAsyncRunHash(t *testing.T) {
	const loadN, opN, threads, seed = 512, 1024, 2, 42
	gen := keys.NewGenerator(keys.RandInt)
	m, err := shard.NewHash("P-CLHT", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	opts := commit.Options{Queue: 64, MaxBatch: 8}
	res, err := RunHashAsync("P-CLHT", m, gen, ycsb.F, loadN, opN, threads, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.AckOps == 0 {
		t.Fatal("no ack-latency sample")
	}
	if _, err := RunHashAsync("P-CLHT", m, gen, ycsb.E, loadN, opN, threads, opts, seed); err == nil {
		t.Fatal("scan workload accepted by unordered async runner")
	}
}

// TestAsyncSyncParityD: workload D's final dataset is identical (exact
// values — D carries no in-place writes) between the async and
// synchronous run loops at the same seed.
func TestAsyncSyncParityD(t *testing.T) {
	const loadN, opN, seed = 400, 800, 7
	gen := keys.NewGenerator(keys.RandInt)

	plain := shardedOrdered(t, "P-ART", 2)
	defer plain.Release()
	if _, err := RunOrdered("P-ART", plain, gen, plain, ycsb.D, loadN, opN, 1, seed); err != nil {
		t.Fatal(err)
	}
	async := shardedOrdered(t, "P-ART", 2)
	defer async.Release()
	if _, err := RunOrderedAsync("P-ART", async, gen, ycsb.D, loadN, opN, 1, commit.Options{Queue: 32, MaxBatch: 8}, seed); err != nil {
		t.Fatal(err)
	}

	if plain.Len() != async.Len() {
		t.Fatalf("Len: sync %d, async %d", plain.Len(), async.Len())
	}
	plan := ycsb.Generate(ycsb.D, loadN, opN, 1, seed)
	maxID := uint64(loadN + plan.Inserts)
	for id := uint64(0); id < maxID; id++ {
		key := gen.Key(id)
		va, oka := plain.Lookup(key)
		vb, okb := async.Lookup(key)
		if oka != okb || va != vb {
			t.Fatalf("id %d: sync (%d,%v) != async (%d,%v)", id, va, oka, vb, okb)
		}
	}
}

// TestAsyncAttributionConserves: the async per-op-kind attribution
// sums bit-exactly to the aggregate delta on the update-bearing D and
// F workloads plus A, across batch sizes, with the full plan counted.
func TestAsyncAttributionConserves(t *testing.T) {
	const loadN, opN, seed = 400, 800, 42
	for _, w := range []ycsb.Workload{ycsb.D, ycsb.F, ycsb.A} {
		for _, batch := range []int{1, 8, 64} {
			m := shardedOrdered(t, "P-ART", 2)
			gen := keys.NewGenerator(keys.RandInt)
			opts := commit.Options{Queue: 2 * batch, MaxBatch: batch}
			a, err := AttributeOrderedAsync(m, gen, w, loadN, opN, opts, seed)
			if err != nil {
				m.Release()
				t.Fatalf("%s batch=%d: %v", w.Name, batch, err)
			}
			if !a.Conserves() {
				t.Errorf("%s batch=%d: per-kind deltas do not conserve against total %+v", w.Name, batch, a.Total)
			}
			ops := 0
			for _, k := range a.Kinds {
				ops += k.Ops
			}
			if ops != opN {
				t.Errorf("%s batch=%d: attributed ops = %d, want %d", w.Name, batch, ops, opN)
			}
			m.Release()
		}
	}
}

// TestAsyncAttributionHashConserves is the unordered-front-end
// conservation check.
func TestAsyncAttributionHashConserves(t *testing.T) {
	m, err := shard.NewHash("P-CLHT", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	a, err := AttributeHashAsync(m, gen, ycsb.F, 400, 800, commit.Options{Queue: 16, MaxBatch: 8}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Conserves() {
		t.Errorf("hash async attribution does not conserve: total %+v", a.Total)
	}
}

// TestAsyncLossyMatrix drives all 9 indexes through the async lossy
// power-failure campaign under all three policies: crash at every site
// the committer drain loop passes through — the commit.* sites
// bracketing it included — and every nil-resolved future survives
// while error-resolved ops are at worst atomically PARTIAL; never
// LOST-ACK, never CORRUPT.
func TestAsyncLossyMatrix(t *testing.T) {
	const loadN, postN, batch, seed = 60, 6, 8, 42
	for _, name := range lossyOrderedNames {
		for _, policy := range pmem.Policies {
			rep := LossyCampaignOrderedAsync(name, orderedFactory(t, name), keys.RandInt, policy, seed, loadN, postN, batch, 0)
			checkLossy(t, rep)
			checkCommitSites(t, rep)
		}
	}
	for _, name := range core.HashNames {
		for _, policy := range pmem.Policies {
			rep := LossyCampaignHashAsync(name, hashFactory(t, name), policy, seed, loadN, postN, batch, 0)
			checkLossy(t, rep)
			checkCommitSites(t, rep)
		}
	}
}

// checkCommitSites asserts the async campaign swept both committer
// drain-loop sites and the group boundary sites beneath them.
func checkCommitSites(t *testing.T, rep LossyCampaignReport) {
	t.Helper()
	found := map[string]bool{}
	for _, s := range rep.Sites {
		found[s.Site] = s.Fired
	}
	for _, site := range []string{commit.SiteDrainApplied, commit.SiteAckFenced, group.SiteOpApplied, group.SiteCommitFenced} {
		fired, ok := found[site]
		if !ok {
			t.Errorf("%s/%v: async campaign did not discover %s", rep.Index, rep.Policy, site)
		} else if !fired {
			t.Errorf("%s/%v: site %s discovered but never fired", rep.Index, rep.Policy, site)
		}
	}
}

// TestAsyncLossyDeterministic: the same seed yields the identical
// report regardless of the campaign worker count — trial batch
// composition is pinned by the committer configuration.
func TestAsyncLossyDeterministic(t *testing.T) {
	const loadN, postN, batch, seed = 48, 4, 8, 7
	a := LossyCampaignOrderedAsync("P-ART", orderedFactory(t, "P-ART"), keys.RandInt, pmem.PolicyTorn, seed, loadN, postN, batch, 1)
	b := LossyCampaignOrderedAsync("P-ART", orderedFactory(t, "P-ART"), keys.RandInt, pmem.PolicyTorn, seed, loadN, postN, batch, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("async torn campaign not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestAsyncDurabilitySites: the per-site durability campaign through
// the async write path — flush coverage holds at every quiesced
// committer boundary after a crash at any site, the commit.* sites
// included.
func TestAsyncDurabilitySites(t *testing.T) {
	rep := DurabilitySitesOrderedAsync("P-ART", func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered("P-ART", h, keys.RandInt)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return idx
	}, keys.RandInt, 600, 60, 8, 4)
	if len(rep.Sites) == 0 {
		t.Fatal("no crash sites discovered")
	}
	if rep.Fired() != len(rep.Sites) {
		t.Fatalf("fired at %d of %d sites", rep.Fired(), len(rep.Sites))
	}
	if !rep.Pass() {
		t.Fatalf("campaign failed: %s", rep.String())
	}
	hasCommit := false
	for _, s := range rep.Sites {
		if s.Site == commit.SiteDrainApplied || s.Site == commit.SiteAckFenced {
			hasCommit = true
		}
	}
	if !hasCommit {
		t.Fatal("async durability campaign never crashed a committer drain-loop site")
	}
}

// TestAsyncDurabilitySitesHash is the unordered variant.
func TestAsyncDurabilitySitesHash(t *testing.T) {
	rep := DurabilitySitesHashAsync("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return idx
	}, 600, 60, 8, 4)
	if len(rep.Sites) == 0 {
		t.Fatal("no crash sites discovered")
	}
	if !rep.Pass() {
		t.Fatalf("campaign failed: %s", rep.String())
	}
}
