// Package harness executes the paper's experiments: multi-threaded YCSB
// runs with per-operation performance counters (Figs 4 and 5, Table 4),
// the §5/§7.5 crash-recovery campaigns (single-heap and sharded), and
// the §5 durability test.
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
	"repro/shard"
)

// StatsSource yields heap-counter snapshots for the measured phase. A
// single *pmem.Heap satisfies it, and so does the sharded front-end
// (shard.Ordered / shard.Hash), whose Stats aggregates every per-shard
// heap — the run functions below work unchanged over both.
type StatsSource interface {
	Stats() pmem.Stats
}

// Value tags distinguish in-place rewrites from the original insert so
// read verification can accept any interleaving: inserts store the
// key's dense identifier, updates store it with UpdateBit set, RMWs
// OR RMWBit into whatever value they read. Identifiers are dense (far
// below 2^62), so the top two bits are free.
const (
	// UpdateBit marks a value written by OpUpdate.
	UpdateBit uint64 = 1 << 63
	// RMWBit marks a value rewritten by OpRMW.
	RMWBit uint64 = 1 << 62
)

// ValueID strips the update/RMW tag bits, recovering the dense key
// identifier a stored value verifies against.
func ValueID(v uint64) uint64 { return v &^ (UpdateBit | RMWBit) }

// Result is one (index, workload) measurement.
type Result struct {
	Index    string
	Workload string
	KeyKind  keys.Kind
	Threads  int
	Ops      int
	Elapsed  time.Duration
	// Stats is the heap-counter delta over the measured phase.
	Stats pmem.Stats
	// Inserts counts insert operations in the measured phase (for
	// clwb/mfence-per-insert columns; == Counts[ycsb.OpInsert]).
	Inserts int
	// Counts is the number of operations the workers actually executed,
	// per kind. Conservation holds by construction — reads + updates +
	// RMWs + inserts + scans == Ops — and TestRunConservationDF
	// re-checks it against the plan under -race.
	Counts [ycsb.NumOpKinds]int
	// AckOps and AckTotal sample enqueue-to-ack latency on the async
	// write path (RunOrderedAsync/RunHashAsync): AckOps write futures
	// were waited during the measured phase, their enqueue-to-resolve
	// times summing to AckTotal. Both are zero for sync runs.
	AckOps   int
	AckTotal time.Duration
}

// MeanAckLatency returns the average enqueue-to-ack latency of the
// sampled async writes (zero when the run path was synchronous).
func (r Result) MeanAckLatency() time.Duration {
	if r.AckOps == 0 {
		return 0
	}
	return r.AckTotal / time.Duration(r.AckOps)
}

// MopsPerSec returns throughput in million operations per second.
func (r Result) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// ClwbPerInsert returns average clwb instructions per insert.
func (r Result) ClwbPerInsert() float64 {
	if r.Inserts == 0 {
		return 0
	}
	return float64(r.Stats.Clwb) / float64(r.Inserts)
}

// FencePerInsert returns average mfence instructions per insert.
func (r Result) FencePerInsert() float64 {
	if r.Inserts == 0 {
		return 0
	}
	return float64(r.Stats.Fence) / float64(r.Inserts)
}

// LLCMissPerOp returns average simulated LLC misses per operation.
func (r Result) LLCMissPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Stats.LLC.Misses) / float64(r.Ops)
}

// RunOrdered loads loadN keys into idx and then executes the workload
// plan across its threads, returning measured-phase results. The load
// phase mirrors the paper: populate with Load A, then run the respective
// workload (§7).
func RunOrdered(name string, idx core.OrderedIndex, gen *keys.Generator, stats StatsSource, w ycsb.Workload, loadN, opN, threads int, seed int64) (Result, error) {
	load := ycsb.GenerateLoad(loadN, threads)
	if err := execOrdered(idx, gen, load); err != nil {
		return Result{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := stats.Stats()
	start := time.Now()
	if err := execOrdered(idx, gen, plan); err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	elapsed := time.Since(start)
	res := Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: stats.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
	}
	return res, nil
}

// RunOrderedPhase executes one measured workload phase against an
// already-populated index — no load phase. Callers that split a cell
// around an online event (cmd/ycsbbench -reshard runs the rebalancer
// between two phases) use it to measure the second phase against the
// population the first phase left behind; loadN must match the
// population so the request samplers draw from live keys.
func RunOrderedPhase(name string, idx core.OrderedIndex, gen *keys.Generator, stats StatsSource, w ycsb.Workload, loadN, opN, threads int, seed int64) (Result, error) {
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := stats.Stats()
	start := time.Now()
	if err := execOrdered(idx, gen, plan); err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	elapsed := time.Since(start)
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: stats.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
	}, nil
}

// RunHashPhase is RunOrderedPhase for unordered indexes.
func RunHashPhase(name string, idx core.HashIndex, gen *keys.Generator, stats StatsSource, w ycsb.Workload, loadN, opN, threads int, seed int64) (Result, error) {
	if w.ScanPct > 0 {
		return Result{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := stats.Stats()
	start := time.Now()
	if err := execHash(idx, gen, plan); err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	elapsed := time.Since(start)
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: stats.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
	}, nil
}

// RunHash is RunOrdered for unordered indexes (integer keys only, as in
// the paper; scan ops are invalid).
func RunHash(name string, idx core.HashIndex, gen *keys.Generator, stats StatsSource, w ycsb.Workload, loadN, opN, threads int, seed int64) (Result, error) {
	if w.ScanPct > 0 {
		return Result{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	load := ycsb.GenerateLoad(loadN, threads)
	if err := execHash(idx, gen, load); err != nil {
		return Result{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, threads, seed)
	before := stats.Stats()
	start := time.Now()
	if err := execHash(idx, gen, plan); err != nil {
		return Result{}, fmt.Errorf("run phase: %w", err)
	}
	elapsed := time.Since(start)
	return Result{
		Index: name, Workload: w.Name, KeyKind: gen.Kind(), Threads: threads,
		Ops: plan.TotalOps(), Elapsed: elapsed, Stats: stats.Stats().Sub(before),
		Inserts: plan.Inserts, Counts: plan.Counts,
	}, nil
}

// applyOrderedOp executes one operation against an ordered index. buf
// is the caller's reusable key buffer (returned so the caller keeps its
// growth). Reads verify the stored identifier modulo the update/RMW
// value tags, since a concurrent or earlier in-place write may have
// tagged the value.
func applyOrderedOp(idx core.OrderedIndex, gen *keys.Generator, op ycsb.Op, buf []byte) ([]byte, error) {
	buf = gen.AppendKey(buf[:0], op.ID)
	switch op.Kind {
	case ycsb.OpInsert:
		if err := idx.Insert(buf, op.ID); err != nil {
			return buf, fmt.Errorf("insert id %d: %w", op.ID, err)
		}
	case ycsb.OpRead:
		if v, ok := idx.Lookup(buf); !ok || ValueID(v) != op.ID {
			return buf, fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
		}
	case ycsb.OpUpdate:
		if err := idx.Update(buf, op.ID|UpdateBit); err != nil {
			return buf, fmt.Errorf("update id %d: %w", op.ID, err)
		}
	case ycsb.OpRMW:
		v, ok := idx.Lookup(buf)
		if !ok || ValueID(v) != op.ID {
			return buf, fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
		}
		if err := idx.Update(buf, v|RMWBit); err != nil {
			return buf, fmt.Errorf("rmw write id %d: %w", op.ID, err)
		}
	case ycsb.OpScan:
		idx.Scan(buf, op.ScanLen, func([]byte, uint64) bool { return true })
	}
	return buf, nil
}

// applyHashOp is applyOrderedOp for unordered indexes (integer keys;
// scans are rejected upstream).
func applyHashOp(idx core.HashIndex, gen *keys.Generator, op ycsb.Op) error {
	k := gen.Uint64(op.ID) | 1 // hash tables reserve key 0
	switch op.Kind {
	case ycsb.OpInsert:
		if err := idx.Insert(k, op.ID); err != nil {
			return fmt.Errorf("insert id %d: %w", op.ID, err)
		}
	case ycsb.OpRead:
		if v, ok := idx.Lookup(k); !ok || ValueID(v) != op.ID {
			return fmt.Errorf("read id %d: got %d,%v", op.ID, v, ok)
		}
	case ycsb.OpUpdate:
		if err := idx.Update(k, op.ID|UpdateBit); err != nil {
			return fmt.Errorf("update id %d: %w", op.ID, err)
		}
	case ycsb.OpRMW:
		v, ok := idx.Lookup(k)
		if !ok || ValueID(v) != op.ID {
			return fmt.Errorf("rmw read id %d: got %d,%v", op.ID, v, ok)
		}
		if err := idx.Update(k, v|RMWBit); err != nil {
			return fmt.Errorf("rmw write id %d: %w", op.ID, err)
		}
	}
	return nil
}

// execOrdered runs a plan against an ordered index, one goroutine per
// thread stream.
func execOrdered(idx core.OrderedIndex, gen *keys.Generator, plan *ycsb.Plan) error {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.Threads))
	for t := range plan.Threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 32)
			var err error
			for _, op := range plan.Threads[t] {
				if buf, err = applyOrderedOp(idx, gen, op, buf); err != nil {
					errs[t] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// execHash runs a plan against an unordered index.
func execHash(idx core.HashIndex, gen *keys.Generator, plan *ycsb.Plan) error {
	var wg sync.WaitGroup
	errs := make([]error, len(plan.Threads))
	for t := range plan.Threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, op := range plan.Threads[t] {
				if err := applyHashOp(idx, gen, op); err != nil {
					errs[t] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// KindStats is the counter delta one operation kind accumulated over
// an attribution pass.
type KindStats struct {
	// Ops is the number of operations of this kind executed.
	Ops int
	// Stats is the exact counter delta charged to this kind.
	Stats pmem.Stats
}

// Attribution is the per-op-kind counter breakdown of one attribution
// pass, indexed by ycsb.OpKind, plus the aggregate measured-phase
// delta the per-kind deltas must sum to.
type Attribution struct {
	Kinds [ycsb.NumOpKinds]KindStats
	// Total is the aggregate counter delta over the measured phase.
	// Conservation is exact: Total equals the field-wise sum of
	// Kinds[*].Stats, because execution is single-threaded and the
	// striped counters are exact at snapshot points.
	Total pmem.Stats
}

// Conserves reports whether the per-kind deltas sum bit-exactly to the
// aggregate delta.
func (a Attribution) Conserves() bool {
	var sum pmem.Stats
	for _, k := range a.Kinds {
		sum = sum.Add(k.Stats)
	}
	return sum == a.Total
}

// ClwbPer returns average clwb per operation of kind k.
func (a Attribution) ClwbPer(k ycsb.OpKind) float64 {
	if a.Kinds[k].Ops == 0 {
		return 0
	}
	return float64(a.Kinds[k].Stats.Clwb) / float64(a.Kinds[k].Ops)
}

// FencePer returns average fence per operation of kind k.
func (a Attribution) FencePer(k ycsb.OpKind) float64 {
	if a.Kinds[k].Ops == 0 {
		return 0
	}
	return float64(a.Kinds[k].Stats.Fence) / float64(a.Kinds[k].Ops)
}

// AttributeOrdered loads loadN keys into idx, then executes opN
// operations of w single-threaded, snapshotting the counter source
// around every operation and charging each delta to the operation's
// kind. This is how per-op-kind clwb/fence columns (clwb per update vs
// per insert) are measured exactly: multi-threaded runs cannot
// attribute a shared counter to the op that moved it, a serial walk
// can, and the per-kind deltas then conserve bit-exactly against the
// aggregate (Attribution.Conserves).
func AttributeOrdered(idx core.OrderedIndex, gen *keys.Generator, stats StatsSource, w ycsb.Workload, loadN, opN int, seed int64) (Attribution, error) {
	if err := execOrdered(idx, gen, ycsb.GenerateLoad(loadN, 1)); err != nil {
		return Attribution{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, 1, seed)
	var a Attribution
	start := stats.Stats()
	before := start
	buf := make([]byte, 0, 32)
	var err error
	for _, op := range plan.Threads[0] {
		if buf, err = applyOrderedOp(idx, gen, op, buf); err != nil {
			return Attribution{}, fmt.Errorf("run phase: %w", err)
		}
		after := stats.Stats()
		a.Kinds[op.Kind].Ops++
		a.Kinds[op.Kind].Stats = a.Kinds[op.Kind].Stats.Add(after.Sub(before))
		before = after
	}
	a.Total = before.Sub(start)
	return a, nil
}

// AttributeHash is AttributeOrdered for unordered indexes.
func AttributeHash(idx core.HashIndex, gen *keys.Generator, stats StatsSource, w ycsb.Workload, loadN, opN int, seed int64) (Attribution, error) {
	if w.ScanPct > 0 {
		return Attribution{}, fmt.Errorf("harness: workload %s has scans; unordered indexes do not support them", w.Name)
	}
	if err := execHash(idx, gen, ycsb.GenerateLoad(loadN, 1)); err != nil {
		return Attribution{}, fmt.Errorf("load phase: %w", err)
	}
	plan := ycsb.Generate(w, loadN, opN, 1, seed)
	var a Attribution
	start := stats.Stats()
	before := start
	for _, op := range plan.Threads[0] {
		if err := applyHashOp(idx, gen, op); err != nil {
			return Attribution{}, fmt.Errorf("run phase: %w", err)
		}
		after := stats.Stats()
		a.Kinds[op.Kind].Ops++
		a.Kinds[op.Kind].Stats = a.Kinds[op.Kind].Stats.Add(after.Sub(before))
		before = after
	}
	a.Total = before.Sub(start)
	return a, nil
}

// CrashReport summarises a §7.5 crash-recovery campaign.
type CrashReport struct {
	Index string
	// States is the number of distinct crash states exercised.
	States int
	// Crashed counts states where a crash actually fired during load.
	Crashed int
	// LostKeys counts committed keys unreadable after recovery.
	LostKeys int
	// WriteFailures counts post-crash writes that failed.
	WriteFailures int
	// RecoveryFailures counts recovery calls that returned an error (the
	// CCEH Faithful-mode recovery stall surfaces here).
	RecoveryFailures int
}

// Pass reports whether the campaign found no crash-consistency failures.
func (r CrashReport) Pass() bool {
	return r.LostKeys == 0 && r.WriteFailures == 0 && r.RecoveryFailures == 0
}

func (r CrashReport) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-12s states=%d crashed=%d lost=%d writeFail=%d recoveryFail=%d  %s",
		r.Index, r.States, r.Crashed, r.LostKeys, r.WriteFailures, r.RecoveryFailures, verdict)
}

// CrashCampaignOrdered reproduces §7.5 for an ordered index: for each of
// states trials, load loadN entries with a probabilistic crash armed,
// recover, run a mixed insert/read phase with `threads` concurrent
// threads, and finally read back every committed key.
func CrashCampaignOrdered(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, states, loadN, mixedN, threads int) CrashReport {
	gen := keys.NewGenerator(kind)
	rep := CrashReport{Index: name}
	for s := 0; s < states; s++ {
		rep.States++
		heap := pmem.NewFast()
		idx := factory(heap)
		heap.SetInjector(crash.NewProbabilistic(0.002, int64(s)+1))
		committed := make(map[uint64]uint64, loadN)
		for i := 0; i < loadN; i++ {
			id := uint64(i)
			err := idx.Insert(gen.Key(id), id)
			if crash.IsCrash(err) {
				rep.Crashed++
				break
			}
			if err != nil {
				rep.WriteFailures++
				break
			}
			committed[id] = id
		}
		heap.SetInjector(nil)
		if err := idx.Recover(); err != nil {
			rep.RecoveryFailures++
			heap.Release()
			continue
		}
		// Mixed phase: concurrent inserts and reads.
		var wg sync.WaitGroup
		var mu sync.Mutex
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				base := uint64(1_000_000 + s*100_000 + t*10_000)
				for i := 0; i < mixedN/threads; i++ {
					id := base + uint64(i)
					if i%2 == 0 {
						if err := idx.Insert(gen.Key(id), id); err != nil {
							mu.Lock()
							rep.WriteFailures++
							mu.Unlock()
							return
						}
						mu.Lock()
						committed[id] = id
						mu.Unlock()
					} else {
						idx.Lookup(gen.Key(id - 1))
					}
				}
			}()
		}
		wg.Wait()
		for id, v := range committed {
			if got, ok := idx.Lookup(gen.Key(id)); !ok || got != v {
				rep.LostKeys++
			}
		}
		// The state's heap and index are dead; recycle the address space.
		heap.Release()
	}
	return rep
}

// CrashCampaignHash is CrashCampaignOrdered for unordered indexes.
func CrashCampaignHash(name string, factory func(*pmem.Heap) core.HashIndex, states, loadN, mixedN, threads int) CrashReport {
	gen := keys.NewGenerator(keys.RandInt)
	rep := CrashReport{Index: name}
	for s := 0; s < states; s++ {
		rep.States++
		heap := pmem.NewFast()
		idx := factory(heap)
		heap.SetInjector(crash.NewProbabilistic(0.002, int64(s)+1))
		committed := make(map[uint64]uint64, loadN)
		for i := 0; i < loadN; i++ {
			k := gen.Uint64(uint64(i)) | 1
			err := idx.Insert(k, uint64(i))
			if crash.IsCrash(err) {
				rep.Crashed++
				break
			}
			if err != nil {
				rep.WriteFailures++
				break
			}
			committed[k] = uint64(i)
		}
		heap.SetInjector(nil)
		if err := idx.Recover(); err != nil {
			rep.RecoveryFailures++
			heap.Release()
			continue
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				base := uint64(1_000_000 + s*100_000 + t*10_000)
				for i := 0; i < mixedN/threads; i++ {
					k := gen.Uint64(base+uint64(i)) | 1
					if i%2 == 0 {
						if err := idx.Insert(k, base+uint64(i)); err != nil {
							mu.Lock()
							rep.WriteFailures++
							mu.Unlock()
							return
						}
						mu.Lock()
						committed[k] = base + uint64(i)
						mu.Unlock()
					} else {
						idx.Lookup(k)
					}
				}
			}()
		}
		wg.Wait()
		for k, v := range committed {
			if got, ok := idx.Lookup(k); !ok || got != v {
				rep.LostKeys++
			}
		}
		heap.Release()
	}
	return rep
}

// ShardCrashReport summarises a per-shard crash-recovery campaign.
type ShardCrashReport struct {
	CrashReport
	// Shards is the partition count H of the sharded front-end.
	Shards int
	// ExtraReplays counts recovery replays of shards that did not crash
	// — any non-zero value breaks the per-shard recovery invariant.
	ExtraReplays int
}

// Pass reports whether the campaign found no crash-consistency failures
// and never replayed a shard that did not crash.
func (r ShardCrashReport) Pass() bool {
	return r.CrashReport.Pass() && r.ExtraReplays == 0
}

func (r ShardCrashReport) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-12s shards=%d states=%d crashed=%d lost=%d writeFail=%d recoveryFail=%d extraReplays=%d  %s",
		r.Index, r.Shards, r.States, r.Crashed, r.LostKeys, r.WriteFailures, r.RecoveryFailures, r.ExtraReplays, verdict)
}

// CrashCampaignSharded runs the §5/§7.5 crash-recovery methodology
// against the sharded front-end with the per-shard recovery discipline:
// for each trial a crash is armed in one shard (rotating over shards),
// load proceeds until it fires, and recovery replays only the shards
// whose injector fired — the campaign counts any replay of a healthy
// shard as an ExtraReplays violation. After recovery a multi-threaded
// mixed phase runs against all shards, and every committed key is read
// back.
func CrashCampaignSharded(name string, kind keys.Kind, shards, states, loadN, mixedN, threads int) ShardCrashReport {
	if shards < 1 {
		shards = 1 // match shard.Options, which clamps Shards < 1 to 1
	}
	gen := keys.NewGenerator(kind)
	rep := ShardCrashReport{CrashReport: CrashReport{Index: name}, Shards: shards}
	for s := 0; s < states; s++ {
		rep.States++
		m, err := shard.NewOrdered(name, kind, shard.Options{Shards: shards})
		if err != nil {
			rep.RecoveryFailures++
			continue
		}
		target := s % shards
		m.Heap(target).SetInjector(crash.NewProbabilistic(0.002, int64(s)+1))
		committed := make(map[uint64]uint64, loadN)
		for i := 0; i < loadN; i++ {
			id := uint64(i)
			err := m.Insert(gen.Key(id), id)
			if crash.IsCrash(err) {
				rep.Crashed++
				break
			}
			if err != nil {
				rep.WriteFailures++
				break
			}
			committed[id] = id
		}
		// RecoverCrashed keys on the fired injector and clears it; only
		// disarm by hand when no crash fired this trial.
		if !m.Heap(target).Injector().Fired() {
			m.Heap(target).SetInjector(nil)
		}
		if _, err := m.RecoverCrashed(); err != nil {
			rep.RecoveryFailures++
			m.Release()
			continue
		}
		// Per-shard replay counts catch any replay path; only the armed
		// shard may have been replayed.
		for i, n := range m.Recoveries() {
			if i != target && n > 0 {
				rep.ExtraReplays += int(n)
			}
		}
		// Mixed phase: concurrent inserts and reads across all shards.
		var wg sync.WaitGroup
		var mu sync.Mutex
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				base := uint64(1_000_000 + s*100_000 + t*10_000)
				for i := 0; i < mixedN/threads; i++ {
					id := base + uint64(i)
					if i%2 == 0 {
						if err := m.Insert(gen.Key(id), id); err != nil {
							mu.Lock()
							rep.WriteFailures++
							mu.Unlock()
							return
						}
						mu.Lock()
						committed[id] = id
						mu.Unlock()
					} else {
						m.Lookup(gen.Key(id - 1))
					}
				}
			}()
		}
		wg.Wait()
		for id, v := range committed {
			if got, ok := m.Lookup(gen.Key(id)); !ok || got != v {
				rep.LostKeys++
			}
		}
		m.Release()
	}
	return rep
}

// DurabilityReport summarises a §5 durability test.
type DurabilityReport struct {
	Index string
	// ConstructorViolations are lines left unpersisted by index creation
	// (the FAST & FAIR / CCEH finding of §7.5).
	ConstructorViolations int
	// OpViolations are lines left unpersisted at operation boundaries.
	OpViolations int
	Ops          int
}

// Pass reports full flush coverage.
func (r DurabilityReport) Pass() bool {
	return r.ConstructorViolations == 0 && r.OpViolations == 0
}

func (r DurabilityReport) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-12s ops=%d ctorViolations=%d opViolations=%d  %s",
		r.Index, r.Ops, r.ConstructorViolations, r.OpViolations, verdict)
}

// DurabilityOrdered checks that every dirtied cache line is flushed and
// fenced by the time each operation returns (§5, "testing durability").
func DurabilityOrdered(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, n int) DurabilityReport {
	heap := pmem.New(pmem.Options{Track: true})
	idx := factory(heap)
	rep := DurabilityReport{Index: name, Ops: n}
	rep.ConstructorViolations = len(heap.Tracker().Check())
	heap.Tracker().Reset()
	gen := keys.NewGenerator(kind)
	for i := 0; i < n; i++ {
		if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
			rep.OpViolations++
			continue
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			rep.OpViolations += len(v)
			heap.Tracker().Reset()
		}
	}
	heap.Release()
	return rep
}

// DurabilityHash is DurabilityOrdered for unordered indexes.
func DurabilityHash(name string, factory func(*pmem.Heap) core.HashIndex, n int) DurabilityReport {
	heap := pmem.New(pmem.Options{Track: true})
	idx := factory(heap)
	rep := DurabilityReport{Index: name, Ops: n}
	rep.ConstructorViolations = len(heap.Tracker().Check())
	heap.Tracker().Reset()
	gen := keys.NewGenerator(keys.RandInt)
	for i := 0; i < n; i++ {
		if err := idx.Insert(gen.Uint64(uint64(i))|1, uint64(i)); err != nil {
			rep.OpViolations++
			continue
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			rep.OpViolations += len(v)
			heap.Tracker().Reset()
		}
	}
	heap.Release()
	return rep
}
