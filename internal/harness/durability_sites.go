// Per-crash-site durability campaigns: the §5 durability test composed
// with the §5 crash methodology. The plain durability test
// (DurabilityOrdered) checks flush coverage of the clean write path;
// the campaigns here check the path the paper's argument actually leans
// on — that after a crash at any atomic-store boundary, recovery plus
// the lazy write-path repairs leave every dirtied line flushed and
// fenced at each operation boundary. One trial per crash site, each
// with its own Track-mode heap, so the sweep is embarrassingly parallel
// across a worker pool; results are collected in site order, making the
// report deterministic for any worker count.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// SiteReport is one crash site's row in a per-site durability campaign.
type SiteReport struct {
	// Site is the crash-site name (e.g. "art.split.installed").
	Site string
	// Fired reports whether the load reached the site and crashed there.
	// A deterministic single-threaded load revisits the sites the
	// discovery pass saw, so this is false only for sites that need a
	// different interleaving to re-arise.
	Fired bool
	// RecoveryFailed reports that Recover itself returned an error (the
	// CCEH Faithful-mode stall class).
	RecoveryFailed bool
	// RecoveryViolations counts lines Recover left dirty or unfenced.
	RecoveryViolations int
	// OpViolations counts lines left dirty or unfenced at post-crash
	// operation boundaries — flush coverage of the repair paths.
	OpViolations int
}

// SiteCampaignReport summarises a per-site durability campaign.
type SiteCampaignReport struct {
	Index string
	// Sites holds one row per discovered crash site, sorted by site
	// name — deterministic regardless of the worker count.
	Sites []SiteReport
	// PostOps is the number of traced post-crash inserts per site.
	PostOps int
}

// Fired counts sites whose trial actually crashed.
func (r SiteCampaignReport) Fired() int {
	n := 0
	for _, s := range r.Sites {
		if s.Fired {
			n++
		}
	}
	return n
}

// Pass reports whether every site recovered cleanly with full flush
// coverage.
func (r SiteCampaignReport) Pass() bool {
	for _, s := range r.Sites {
		if s.RecoveryFailed || s.RecoveryViolations != 0 || s.OpViolations != 0 {
			return false
		}
	}
	return true
}

func (r SiteCampaignReport) String() string {
	recov, ops, failed := 0, 0, 0
	for _, s := range r.Sites {
		recov += s.RecoveryViolations
		ops += s.OpViolations
		if s.RecoveryFailed {
			failed++
		}
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-12s sites=%d fired=%d recoveryFail=%d recoveryViol=%d opViol=%d  %s",
		r.Index, len(r.Sites), r.Fired(), failed, recov, ops, verdict)
}

// siteTrial binds one index instance on one heap: an id-keyed insert
// and the index's recovery entry point.
type siteTrial struct {
	insert    func(id uint64) error
	recoverFn func() error
}

// DurabilitySitesOrdered runs the per-site durability campaign for an
// ordered index: discover every crash site a loadN-insert load passes
// through, then — one trial per site, fanned out over `workers`
// goroutines (< 1 selects GOMAXPROCS) — crash at that site, recover,
// and verify that recovery and postN further traced inserts leave every
// dirtied line flushed and fenced at each operation boundary.
func DurabilitySitesOrdered(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, loadN, postN, workers int) SiteCampaignReport {
	return durabilitySites(name, loadN, postN, workers, func(heap *pmem.Heap) siteTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(kind)
		return siteTrial{
			insert:    func(id uint64) error { return idx.Insert(gen.Key(id), id) },
			recoverFn: idx.Recover,
		}
	})
}

// DurabilitySitesHash is DurabilitySitesOrdered for unordered indexes.
func DurabilitySitesHash(name string, factory func(*pmem.Heap) core.HashIndex, loadN, postN, workers int) SiteCampaignReport {
	return durabilitySites(name, loadN, postN, workers, func(heap *pmem.Heap) siteTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(keys.RandInt)
		return siteTrial{
			insert:    func(id uint64) error { return idx.Insert(gen.Uint64(id)|1, id) },
			recoverFn: idx.Recover,
		}
	})
}

func durabilitySites(name string, loadN, postN, workers int, build func(*pmem.Heap) siteTrial) SiteCampaignReport {
	sites := discoverSites(loadN, build)
	rep := SiteCampaignReport{Index: name, PostOps: postN, Sites: make([]SiteReport, len(sites))}
	forEachSite(len(sites), workers, func(i int) {
		rep.Sites[i] = durabilityAtSite(sites[i], loadN, postN, build)
	})
	return rep
}

// discoverSites runs one untracked load with a never-firing injector
// (probability zero, which still records site visits) and returns every
// crash site it passed through, sorted by name.
func discoverSites(loadN int, build func(*pmem.Heap) siteTrial) []string {
	inj := crash.NewProbabilistic(0, 1)
	heap := pmem.New(pmem.Options{Injector: inj})
	trial := build(heap)
	for i := 0; i < loadN; i++ {
		if err := trial.insert(uint64(i)); err != nil {
			break
		}
	}
	m := inj.Sites()
	sites := make([]string, 0, len(m))
	for s := range m {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	heap.Release()
	return sites
}

// forEachSite fans body out over a pool of workers (< 1 selects
// GOMAXPROCS). Each body(i) writes only its own result slot, so the
// collected output is in site order no matter which worker ran it.
func forEachSite(n, workers int, body func(i int)) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// durabilityAtSite is one trial: load with a crash armed at the site's
// first visit on a Track-mode heap, then apply power-cycle semantics
// (unflushed shadow state is lost), recover, and trace postN more
// inserts checking flush coverage at every boundary.
func durabilityAtSite(site string, loadN, postN int, build func(*pmem.Heap) siteTrial) SiteReport {
	r := SiteReport{Site: site}
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	trial := build(heap)
	heap.SetInjector(crash.NewAtSite(site, 1))
	for i := 0; i < loadN && !r.Fired; i++ {
		if err := trial.insert(uint64(i)); crash.IsCrash(err) {
			r.Fired = true
		}
	}
	heap.SetInjector(nil)
	if !r.Fired {
		return r
	}
	// Power-cycle: whatever the interrupted operation had not flushed is
	// gone; the shadow tracker restarts clean, and from here on every
	// boundary must be durable again.
	heap.Tracker().Reset()
	if err := trial.recoverFn(); err != nil {
		r.RecoveryFailed = true
		return r
	}
	if v := heap.Tracker().Check(); len(v) != 0 {
		r.RecoveryViolations = len(v)
		heap.Tracker().Reset()
	}
	for i := 0; i < postN; i++ {
		// Fresh ids continue the interrupted load, driving writers across
		// (and through) whatever torn state the crash left behind.
		if err := trial.insert(uint64(1_000_000 + i)); err != nil {
			r.OpViolations++
			continue
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			r.OpViolations += len(v)
			heap.Tracker().Reset()
		}
	}
	return r
}
