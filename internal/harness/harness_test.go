package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
	"repro/shard"
)

func TestRunOrderedAllWorkloads(t *testing.T) {
	for _, w := range ycsb.All {
		heap := pmem.NewFast()
		idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
		if err != nil {
			t.Fatal(err)
		}
		gen := keys.NewGenerator(keys.RandInt)
		res, err := RunOrdered("P-ART", idx, gen, heap, w, 5000, 5000, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.Ops != 5000 {
			t.Fatalf("%s ops = %d", w.Name, res.Ops)
		}
		if res.MopsPerSec() <= 0 {
			t.Fatalf("%s throughput = %v", w.Name, res.MopsPerSec())
		}
		if w.InsertPct > 0 && res.Inserts == 0 {
			t.Fatalf("%s recorded no inserts", w.Name)
		}
		if w.InsertPct > 0 && res.ClwbPerInsert() <= 0 {
			t.Fatalf("%s clwb/insert = %v", w.Name, res.ClwbPerInsert())
		}
	}
}

// TestRunConservationDF executes the update-bearing workloads D and F
// on every index class, multi-threaded, and asserts harness-level op
// conservation: the per-kind executed counts equal the plan's per-kind
// counts, per thread and in aggregate (reads + updates + RMWs +
// inserts + scans == opcount). The race lane runs this under -race, so
// the update/RMW execution paths are exercised concurrently.
func TestRunConservationDF(t *testing.T) {
	const loadN, opN, threads = 3000, 6000, 4
	for _, w := range []ycsb.Workload{ycsb.D, ycsb.F} {
		plan := ycsb.Generate(w, loadN, opN, threads, 1)
		for ti, ops := range plan.Threads {
			var perThread [ycsb.NumOpKinds]int
			for _, op := range ops {
				perThread[op.Kind]++
			}
			sum := 0
			for _, c := range perThread {
				sum += c
			}
			if sum != len(ops) {
				t.Fatalf("%s thread %d: kind counts sum to %d, stream has %d ops", w.Name, ti, sum, len(ops))
			}
		}
		for _, name := range []string{"P-ART", "FAST & FAIR"} {
			heap := pmem.NewFast()
			idx, err := core.NewOrdered(name, heap, keys.RandInt)
			if err != nil {
				t.Fatal(err)
			}
			gen := keys.NewGenerator(keys.RandInt)
			res, err := RunOrdered(name, idx, gen, heap, w, loadN, opN, threads, 1)
			if err != nil {
				if name == "FAST & FAIR" && strings.Contains(err.Error(), "read id") {
					heap.Release()
					continue // known §3 data-loss class under concurrent inserts
				}
				t.Fatalf("%s/%s: %v", name, w.Name, err)
			}
			if res.Counts != plan.Counts {
				t.Fatalf("%s/%s: executed counts %v != plan counts %v", name, w.Name, res.Counts, plan.Counts)
			}
			sum := 0
			for _, c := range res.Counts {
				sum += c
			}
			if sum != res.Ops {
				t.Fatalf("%s/%s: counts sum %d != Ops %d", name, w.Name, sum, res.Ops)
			}
			heap.Release()
		}
		if w.ScanPct == 0 {
			heap := pmem.NewFast()
			idx, err := core.NewHash("P-CLHT", heap)
			if err != nil {
				t.Fatal(err)
			}
			gen := keys.NewGenerator(keys.RandInt)
			res, err := RunHash("P-CLHT", idx, gen, heap, w, loadN, opN, threads, 1)
			if err != nil {
				t.Fatalf("P-CLHT/%s: %v", w.Name, err)
			}
			if res.Counts != plan.Counts {
				t.Fatalf("P-CLHT/%s: executed counts %v != plan counts %v", w.Name, res.Counts, plan.Counts)
			}
			heap.Release()
		}
	}
}

// TestRunUpdatesInPlace: workload F must not grow the index — every
// write is an in-place rewrite of a loaded key, unlike the paper's
// fresh-key update model.
func TestRunUpdatesInPlace(t *testing.T) {
	const loadN = 2000
	heap := pmem.NewFast()
	idx, err := core.NewOrdered("P-Masstree", heap, keys.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	if _, err := RunOrdered("P-Masstree", idx, gen, heap, ycsb.F, loadN, 4000, 4, 1); err != nil {
		t.Fatal(err)
	}
	if n := idx.Len(); n != loadN {
		t.Fatalf("workload F grew the index to %d keys, want %d (in-place updates)", n, loadN)
	}
	// Tagged values decode back to the key's identifier.
	for id := uint64(0); id < loadN; id += 97 {
		v, ok := idx.Lookup(gen.Key(id))
		if !ok || ValueID(v) != id {
			t.Fatalf("id %d: got %d,%v after RMW traffic", id, v, ok)
		}
	}
	heap.Release()
}

// TestAttributeConserves: the per-op-kind counter deltas of an
// attribution pass must sum bit-exactly to the aggregate delta, and
// update/RMW ops must charge fewer clwb than fresh inserts on a
// B+-tree (no node allocation on the rewrite path).
func TestAttributeConserves(t *testing.T) {
	heap := pmem.NewFast()
	idx, err := core.NewOrdered("FAST & FAIR", heap, keys.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	w := ycsb.Workload{Name: "mix", InsertPct: 25, ReadPct: 25, UpdatePct: 25, RMWPct: 25,
		Dist: ycsb.Zipfian{Theta: 0.99}}
	a, err := AttributeOrdered(idx, gen, heap, w, 3000, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Conserves() {
		t.Fatalf("per-kind deltas do not sum to aggregate: %+v", a)
	}
	total := 0
	for _, k := range a.Kinds {
		total += k.Ops
	}
	if total != 4000 {
		t.Fatalf("attributed %d ops, want 4000", total)
	}
	for _, k := range []ycsb.OpKind{ycsb.OpInsert, ycsb.OpUpdate, ycsb.OpRMW} {
		if a.Kinds[k].Ops == 0 || a.Kinds[k].Stats.Clwb == 0 {
			t.Fatalf("%v: no ops or no clwb attributed (%+v)", k, a.Kinds[k])
		}
	}
	if a.ClwbPer(ycsb.OpUpdate) >= a.ClwbPer(ycsb.OpInsert) {
		t.Fatalf("clwb/update (%v) should be below clwb/insert (%v) on FAST & FAIR",
			a.ClwbPer(ycsb.OpUpdate), a.ClwbPer(ycsb.OpInsert))
	}
	heap.Release()

	hheap := pmem.NewFast()
	hidx, err := core.NewHash("P-CLHT", hheap)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := AttributeHash(hidx, keys.NewGenerator(keys.RandInt), hheap, ycsb.F, 3000, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ha.Conserves() {
		t.Fatalf("hash per-kind deltas do not sum to aggregate: %+v", ha)
	}
	if ha.Kinds[ycsb.OpRMW].Ops == 0 {
		t.Fatal("workload F attributed no RMW ops")
	}
	hheap.Release()
}

// TestRunShardedDF drives D and F through the sharded front-end (the
// Update passthrough) and checks aggregate-vs-per-shard counter
// conservation over the measured phase.
func TestRunShardedDF(t *testing.T) {
	for _, w := range []ycsb.Workload{ycsb.D, ycsb.F} {
		m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		gen := keys.NewGenerator(keys.RandInt)
		before := m.ShardStats()
		aggBefore := m.Stats()
		res, err := RunOrdered("P-ART", m, gen, m, w, 3000, 6000, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		agg := m.Stats().Sub(aggBefore)
		var sum pmem.Stats
		after := m.ShardStats()
		for i := range after {
			sum = sum.Add(after[i].Sub(before[i]))
		}
		if agg != sum {
			t.Fatalf("%s: aggregate stats %+v != per-shard sum %+v", w.Name, agg, sum)
		}
		if res.Counts[ycsb.OpRead] == 0 {
			t.Fatalf("%s executed no reads", w.Name)
		}
		m.Release()
	}
}

func TestRunHash(t *testing.T) {
	heap := pmem.NewFast()
	idx, err := core.NewHash("P-CLHT", heap)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	res, err := RunHash("P-CLHT", idx, gen, heap, ycsb.A, 5000, 5000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FencePerInsert() <= 0 {
		t.Fatal("no fences per insert recorded")
	}
}

func TestRunHashRejectsScans(t *testing.T) {
	heap := pmem.NewFast()
	idx, err := core.NewHash("P-CLHT", heap)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	if _, err := RunHash("P-CLHT", idx, gen, heap, ycsb.E, 100, 100, 1, 1); err == nil {
		t.Fatal("workload E accepted by hash runner")
	}
}

func TestCrashCampaignOrderedPasses(t *testing.T) {
	rep := CrashCampaignOrdered("P-ART", func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered("P-ART", h, keys.RandInt)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}, keys.RandInt, 20, 2000, 2000, 4)
	if !rep.Pass() {
		t.Fatalf("P-ART crash campaign failed: %s", rep)
	}
	if rep.Crashed == 0 {
		t.Fatal("no crash state actually crashed; campaign vacuous")
	}
	if !strings.Contains(rep.String(), "PASS") {
		t.Fatalf("report string: %s", rep)
	}
}

func TestCrashCampaignHashPasses(t *testing.T) {
	rep := CrashCampaignHash("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}, 20, 2000, 2000, 4)
	if !rep.Pass() {
		t.Fatalf("P-CLHT crash campaign failed: %s", rep)
	}
	if rep.Crashed == 0 {
		t.Fatal("no crash fired")
	}
}

func TestDurabilityReports(t *testing.T) {
	rep := DurabilityOrdered("P-Masstree", func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered("P-Masstree", h, keys.YCSBString)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}, keys.YCSBString, 500)
	if !rep.Pass() {
		t.Fatalf("P-Masstree durability failed: %s", rep)
	}
	hrep := DurabilityHash("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}, 500)
	if !hrep.Pass() {
		t.Fatalf("P-CLHT durability failed: %s", hrep)
	}
	if !strings.Contains(hrep.String(), "PASS") {
		t.Fatalf("report string: %s", hrep)
	}
}

func TestResultMetricsZeroSafe(t *testing.T) {
	var r Result
	if r.MopsPerSec() != 0 || r.ClwbPerInsert() != 0 || r.FencePerInsert() != 0 || r.LLCMissPerOp() != 0 {
		t.Fatal("zero Result should produce zero metrics")
	}
}

// TestRunShardedAllWorkloads drives every YCSB workload through the
// sharded front-end via the unchanged RunOrdered entry point (the
// front-end is both the index and the StatsSource), and checks that the
// aggregate Stats delta conserves against the per-shard deltas exactly.
func TestRunShardedAllWorkloads(t *testing.T) {
	for _, w := range ycsb.All {
		m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		gen := keys.NewGenerator(keys.RandInt)
		before := m.ShardStats()
		aggBefore := m.Stats()
		res, err := RunOrdered("P-ART", m, gen, m, w, 5000, 5000, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.Ops != 5000 {
			t.Fatalf("%s ops = %d", w.Name, res.Ops)
		}
		var sum pmem.Stats
		for i, p := range m.ShardStats() {
			sum = sum.Add(p.Sub(before[i]))
		}
		if agg := m.Stats().Sub(aggBefore); agg != sum {
			t.Fatalf("%s: aggregate delta %+v != sum of shard deltas %+v", w.Name, agg, sum)
		}
	}
}

// TestRunShardedHash drives the sharded unordered front-end through
// RunHash.
func TestRunShardedHash(t *testing.T) {
	m, err := shard.NewHash("P-CLHT", shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	res, err := RunHash("P-CLHT", m, gen, m, ycsb.A, 5000, 5000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 5000 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

// TestCrashCampaignShardedPasses: the per-shard campaign must lose no
// keys and never replay a healthy shard.
func TestCrashCampaignShardedPasses(t *testing.T) {
	rep := CrashCampaignSharded("P-ART", keys.RandInt, 4, 12, 4000, 2000, 4)
	if !rep.Pass() {
		t.Fatalf("sharded campaign failed: %s", rep)
	}
	if rep.Crashed == 0 {
		t.Fatal("campaign never crashed; injector not exercising shards")
	}
	if rep.ExtraReplays != 0 {
		t.Fatalf("healthy shards replayed %d times: %s", rep.ExtraReplays, rep)
	}
	if !strings.Contains(rep.String(), "shards=4") {
		t.Fatalf("report missing shard count: %s", rep)
	}
}

// TestDurabilitySitesOrderedPasses: the per-site durability campaign
// finds sites, fires at every one (the load is deterministic), and the
// converted index recovers with full flush coverage at each.
func TestDurabilitySitesOrderedPasses(t *testing.T) {
	rep := DurabilitySitesOrdered("P-ART", func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered("P-ART", h, keys.RandInt)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return idx
	}, keys.RandInt, 1200, 200, 4)
	if len(rep.Sites) == 0 {
		t.Fatal("no crash sites discovered")
	}
	if rep.Fired() != len(rep.Sites) {
		t.Fatalf("fired at %d of %d sites; the deterministic load must revisit every discovered site",
			rep.Fired(), len(rep.Sites))
	}
	if !rep.Pass() {
		t.Fatalf("campaign failed: %s", rep.String())
	}
	for i := 1; i < len(rep.Sites); i++ {
		if rep.Sites[i-1].Site >= rep.Sites[i].Site {
			t.Fatalf("sites out of order: %q before %q", rep.Sites[i-1].Site, rep.Sites[i].Site)
		}
	}
}

// TestDurabilitySitesHashPasses is the unordered-index variant.
func TestDurabilitySitesHashPasses(t *testing.T) {
	rep := DurabilitySitesHash("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return idx
	}, 1200, 200, 4)
	if len(rep.Sites) == 0 {
		t.Fatal("no crash sites discovered")
	}
	if !rep.Pass() {
		t.Fatalf("campaign failed: %s", rep.String())
	}
}

// TestDurabilitySitesDeterministicAcrossWorkers: the report must be
// byte-identical for any worker count — per-site trials are independent
// and results are collected in site order.
func TestDurabilitySitesDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) SiteCampaignReport {
		return DurabilitySitesOrdered("P-Masstree", func(h *pmem.Heap) core.OrderedIndex {
			idx, err := core.NewOrdered("P-Masstree", h, keys.RandInt)
			if err != nil {
				panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
			}
			return idx
		}, keys.RandInt, 800, 100, workers)
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("reports differ across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
