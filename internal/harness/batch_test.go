package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
	"repro/shard"
)

func shardedOrdered(t *testing.T, name string, shards int) *shard.Ordered {
	t.Helper()
	m, err := shard.NewOrdered(name, keys.RandInt, shard.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatchedRunSavesFences: the batched run loop pays measurably fewer
// fences than the unbatched loop on write-heavy A — the tentpole's
// fences-per-op claim at small scale.
func TestBatchedRunSavesFences(t *testing.T) {
	const loadN, opN, threads, batch, seed = 512, 1024, 2, 8, 42
	gen := keys.NewGenerator(keys.RandInt)

	plain := shardedOrdered(t, "P-ART", 2)
	defer plain.Release()
	base, err := RunOrdered("P-ART", plain, gen, plain, ycsb.A, loadN, opN, threads, seed)
	if err != nil {
		t.Fatal(err)
	}

	batched := shardedOrdered(t, "P-ART", 2)
	defer batched.Release()
	res, err := RunOrderedBatched("P-ART", batched, gen, ycsb.A, loadN, opN, threads, batch, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != base.Ops || res.Counts != base.Counts {
		t.Fatalf("batched plan diverged: ops %d vs %d, counts %v vs %v",
			res.Ops, base.Ops, res.Counts, base.Counts)
	}
	if res.Stats.Fence >= base.Stats.Fence {
		t.Errorf("batched fences = %d, want < unbatched %d", res.Stats.Fence, base.Stats.Fence)
	}
}

// TestBatchedUnbatchedParityD: workload D's final dataset is identical
// (exact values — D carries no in-place writes) between the batched and
// unbatched run loops at the same seed.
func TestBatchedUnbatchedParityD(t *testing.T) {
	const loadN, opN, batch, seed = 400, 800, 8, 7
	gen := keys.NewGenerator(keys.RandInt)

	plain := shardedOrdered(t, "P-ART", 2)
	defer plain.Release()
	if _, err := RunOrdered("P-ART", plain, gen, plain, ycsb.D, loadN, opN, 1, seed); err != nil {
		t.Fatal(err)
	}
	batched := shardedOrdered(t, "P-ART", 2)
	defer batched.Release()
	if _, err := RunOrderedBatched("P-ART", batched, gen, ycsb.D, loadN, opN, 1, batch, seed); err != nil {
		t.Fatal(err)
	}

	if plain.Len() != batched.Len() {
		t.Fatalf("Len: unbatched %d, batched %d", plain.Len(), batched.Len())
	}
	plan := ycsb.Generate(ycsb.D, loadN, opN, 1, seed)
	maxID := uint64(loadN + plan.Inserts)
	for id := uint64(0); id < maxID; id++ {
		key := gen.Key(id)
		va, oka := plain.Lookup(key)
		vb, okb := batched.Lookup(key)
		if oka != okb || va != vb {
			t.Fatalf("id %d: unbatched (%d,%v) != batched (%d,%v)", id, va, oka, vb, okb)
		}
	}
}

// TestBatchedUnbatchedParityF: workload F's final dataset matches
// modulo value tags — the batched RMW may read the pre-pending value,
// but the identifier under the tags must agree key for key.
func TestBatchedUnbatchedParityF(t *testing.T) {
	const loadN, opN, batch, seed = 400, 800, 8, 11
	gen := keys.NewGenerator(keys.RandInt)

	plain := shardedOrdered(t, "P-ART", 2)
	defer plain.Release()
	if _, err := RunOrdered("P-ART", plain, gen, plain, ycsb.F, loadN, opN, 1, seed); err != nil {
		t.Fatal(err)
	}
	batched := shardedOrdered(t, "P-ART", 2)
	defer batched.Release()
	if _, err := RunOrderedBatched("P-ART", batched, gen, ycsb.F, loadN, opN, 1, batch, seed); err != nil {
		t.Fatal(err)
	}

	if plain.Len() != batched.Len() {
		t.Fatalf("Len: unbatched %d, batched %d", plain.Len(), batched.Len())
	}
	for id := uint64(0); id < loadN; id++ {
		key := gen.Key(id)
		va, oka := plain.Lookup(key)
		vb, okb := batched.Lookup(key)
		if oka != okb || ValueID(va) != ValueID(vb) {
			t.Fatalf("id %d: unbatched (%d,%v) != batched (%d,%v) under ValueID", id, va, oka, vb, okb)
		}
	}
}

// TestBatchedAttributionConserves: the batched per-op-kind attribution
// sums bit-exactly to the aggregate delta on the update-bearing D and F
// workloads, at batch sizes that exercise mid-queue flushes.
func TestBatchedAttributionConserves(t *testing.T) {
	const loadN, opN, seed = 400, 800, 42
	for _, w := range []ycsb.Workload{ycsb.D, ycsb.F, ycsb.A} {
		for _, batch := range []int{1, 8, 64} {
			m := shardedOrdered(t, "P-ART", 2)
			gen := keys.NewGenerator(keys.RandInt)
			a, err := AttributeOrderedBatched(m, gen, w, loadN, opN, batch, seed)
			if err != nil {
				m.Release()
				t.Fatalf("%s batch=%d: %v", w.Name, batch, err)
			}
			if !a.Conserves() {
				t.Errorf("%s batch=%d: per-kind deltas do not conserve against total %+v", w.Name, batch, a.Total)
			}
			ops := 0
			for _, k := range a.Kinds {
				ops += k.Ops
			}
			if ops != opN {
				t.Errorf("%s batch=%d: attributed ops = %d, want %d", w.Name, batch, ops, opN)
			}
			m.Release()
		}
	}
}

// TestBatchedAttributionHashConserves is the unordered-front-end
// conservation check.
func TestBatchedAttributionHashConserves(t *testing.T) {
	m, err := shard.NewHash("P-CLHT", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	a, err := AttributeHashBatched(m, gen, ycsb.F, 400, 800, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Conserves() {
		t.Errorf("hash batched attribution does not conserve: total %+v", a.Total)
	}
}

// TestBatchedRunHash: the batched unordered run loop executes A clean
// and saves fences.
func TestBatchedRunHash(t *testing.T) {
	const loadN, opN, threads, batch, seed = 512, 1024, 2, 8, 42
	gen := keys.NewGenerator(keys.RandInt)

	plain, err := shard.NewHash("P-CLHT", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Release()
	base, err := RunHash("P-CLHT", plain, gen, plain, ycsb.A, loadN, opN, threads, seed)
	if err != nil {
		t.Fatal(err)
	}

	m, err := shard.NewHash("P-CLHT", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	res, err := RunHashBatched("P-CLHT", m, gen, ycsb.A, loadN, opN, threads, batch, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fence >= base.Stats.Fence {
		t.Errorf("batched fences = %d, want < unbatched %d", res.Stats.Fence, base.Stats.Fence)
	}
}

// TestBatchedLossyMatrix drives all 9 indexes through the batched lossy
// power-failure campaign under all three policies: crash at every site
// inside a group commit (the group.* boundary sites included), and
// acknowledged batches survive everywhere while the in-flight batch is
// at worst batch-atomically PARTIAL — never LOST-ACK, never CORRUPT.
func TestBatchedLossyMatrix(t *testing.T) {
	const loadN, postN, batch, seed = 60, 6, 8, 42
	for _, name := range lossyOrderedNames {
		for _, policy := range pmem.Policies {
			rep := LossyCampaignOrderedBatched(name, orderedFactory(t, name), keys.RandInt, policy, seed, loadN, postN, batch, 0)
			checkLossy(t, rep)
			checkGroupSites(t, rep)
		}
	}
	for _, name := range core.HashNames {
		for _, policy := range pmem.Policies {
			rep := LossyCampaignHashBatched(name, hashFactory(t, name), policy, seed, loadN, postN, batch, 0)
			checkLossy(t, rep)
			checkGroupSites(t, rep)
		}
	}
}

// checkGroupSites asserts the batched campaign actually swept the group
// commit boundary sites.
func checkGroupSites(t *testing.T, rep LossyCampaignReport) {
	t.Helper()
	found := map[string]bool{}
	for _, s := range rep.Sites {
		found[s.Site] = s.Fired
	}
	for _, site := range []string{group.SiteOpApplied, group.SiteCommitFenced} {
		fired, ok := found[site]
		if !ok {
			t.Errorf("%s/%v: batched campaign did not discover %s", rep.Index, rep.Policy, site)
		} else if !fired {
			t.Errorf("%s/%v: site %s discovered but never fired", rep.Index, rep.Policy, site)
		}
	}
}

// TestBatchedDurabilitySites: the per-site durability campaign through
// the batched write path — flush coverage holds at every acknowledged
// batch boundary after a crash at any site, group boundaries included.
func TestBatchedDurabilitySites(t *testing.T) {
	rep := DurabilitySitesOrderedBatched("P-ART", func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered("P-ART", h, keys.RandInt)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return idx
	}, keys.RandInt, 600, 60, 8, 4)
	if len(rep.Sites) == 0 {
		t.Fatal("no crash sites discovered")
	}
	if rep.Fired() != len(rep.Sites) {
		t.Fatalf("fired at %d of %d sites", rep.Fired(), len(rep.Sites))
	}
	if !rep.Pass() {
		t.Fatalf("campaign failed: %s", rep.String())
	}
	hasGroup := false
	for _, s := range rep.Sites {
		if s.Site == group.SiteOpApplied || s.Site == group.SiteCommitFenced {
			hasGroup = true
		}
	}
	if !hasGroup {
		t.Fatal("batched durability campaign never crashed a group boundary site")
	}
}

// TestBatchedDurabilitySitesHash is the unordered variant.
func TestBatchedDurabilitySitesHash(t *testing.T) {
	rep := DurabilitySitesHashBatched("P-CLHT", func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash("P-CLHT", h)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return idx
	}, 600, 60, 8, 4)
	if len(rep.Sites) == 0 {
		t.Fatal("no crash sites discovered")
	}
	if !rep.Pass() {
		t.Fatalf("campaign failed: %s", rep.String())
	}
}
