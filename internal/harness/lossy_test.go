package harness

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/fastfair"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// lossyOrderedNames are the ordered indexes the lossy matrix covers —
// the Fig 4 five plus WOART, matching cmd/durability.
var lossyOrderedNames = []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", "WOART"}

func orderedFactory(t *testing.T, name string) func(*pmem.Heap) core.OrderedIndex {
	return func(h *pmem.Heap) core.OrderedIndex {
		idx, err := core.NewOrdered(name, h, keys.RandInt)
		if err != nil {
			t.Fatalf("NewOrdered(%s): %v", name, err)
		}
		return idx
	}
}

func hashFactory(t *testing.T, name string) func(*pmem.Heap) core.HashIndex {
	return func(h *pmem.Heap) core.HashIndex {
		idx, err := core.NewHash(name, h)
		if err != nil {
			t.Fatalf("NewHash(%s): %v", name, err)
		}
		return idx
	}
}

// TestLossyMatrix drives all 9 indexes through the lossy power-failure
// campaign under all three policies at small scale: zero LOST-ACK and
// zero CORRUPT outcomes anywhere — every crash either committed or
// vanished atomically, even when unfenced write-backs are torn.
func TestLossyMatrix(t *testing.T) {
	const loadN, postN, seed = 60, 6, 42
	for _, name := range lossyOrderedNames {
		for _, policy := range pmem.Policies {
			rep := LossyCampaignOrdered(name, orderedFactory(t, name), keys.RandInt, policy, seed, loadN, postN, 0)
			checkLossy(t, rep)
		}
	}
	for _, name := range core.HashNames {
		for _, policy := range pmem.Policies {
			rep := LossyCampaignHash(name, hashFactory(t, name), policy, seed, loadN, postN, 0)
			checkLossy(t, rep)
		}
	}
}

func checkLossy(t *testing.T, rep LossyCampaignReport) {
	t.Helper()
	if len(rep.Sites) == 0 {
		t.Errorf("%s/%v: no crash sites discovered", rep.Index, rep.Policy)
		return
	}
	if rep.Fired() == 0 {
		t.Errorf("%s/%v: no site fired", rep.Index, rep.Policy)
	}
	if !rep.Pass() {
		for _, s := range rep.Sites {
			if s.Outcome == OutcomeLostAck || s.Outcome == OutcomeCorrupt {
				t.Errorf("%s/%v site %s: %v lostAcks=%d detail=%s cycle=[%v]",
					rep.Index, rep.Policy, s.Site, s.Outcome, s.LostAcks, s.Detail, s.Cycle)
			}
		}
	}
}

// faithfulFF adapts Faithful-mode FAST & FAIR — which reproduces the
// §7.5 unpersisted-initial-allocation bug — to OrderedIndex.
type faithfulFF struct{ t *fastfair.Tree }

func (f faithfulFF) Insert(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f faithfulFF) Update(k []byte, v uint64) error { return f.t.Insert(k, v) }
func (f faithfulFF) Lookup(k []byte) (uint64, bool)  { return f.t.Lookup(k) }
func (f faithfulFF) Delete(k []byte) (bool, error)   { return f.t.Delete(k) }
func (f faithfulFF) Recover() error                  { f.t.Recover(); return nil }
func (f faithfulFF) Len() int                        { return f.t.Len() }
func (f faithfulFF) Scan(s []byte, c int, fn func([]byte, uint64) bool) int {
	return f.t.Scan(s, c, fn)
}

// TestLossyDetectsMissingPersist is the negative control: the unwind-only
// crash model can never observe Faithful mode's missing initial-allocation
// persist as data loss, but the lossy model must — under the revert
// policy the never-persisted root pointer zero-fills and acknowledged
// writes vanish.
func TestLossyDetectsMissingPersist(t *testing.T) {
	rep := LossyCampaignOrdered("FF-faithful", func(h *pmem.Heap) core.OrderedIndex {
		return faithfulFF{fastfair.NewWithMode(h, keys.RandInt, fastfair.Faithful)}
	}, keys.RandInt, pmem.PolicyRevert, 42, 60, 4, 0)
	if rep.Fired() == 0 {
		t.Fatal("no crash site fired")
	}
	if rep.Pass() {
		t.Fatalf("lossy campaign failed to flag the known durability bug:\n%s", rep)
	}
	if rep.Count(OutcomeLostAck)+rep.Count(OutcomeCorrupt) == 0 {
		t.Fatalf("no LOST-ACK/CORRUPT outcome recorded: %s", rep)
	}
}

// TestLossyDeterministic: the same seed yields the identical report,
// including every torn coin flip's consequences, regardless of workers.
func TestLossyDeterministic(t *testing.T) {
	const loadN, postN, seed = 50, 4, 7
	a := LossyCampaignOrdered("P-ART", orderedFactory(t, "P-ART"), keys.RandInt, pmem.PolicyTorn, seed, loadN, postN, 1)
	b := LossyCampaignOrdered("P-ART", orderedFactory(t, "P-ART"), keys.RandInt, pmem.PolicyTorn, seed, loadN, postN, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("torn campaign not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestLossyMultiCycle crashes, power-cycles, recovers — then rearms the
// injector, crashes the recovered index again, and cycles a second
// time. Acknowledged writes must survive both generations; a stale
// one-shot injector state would silently skip the second crash.
func TestLossyMultiCycle(t *testing.T) {
	heap := pmem.New(pmem.Options{Shadow: true})
	defer heap.Release()
	idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)

	committed := make([]uint64, 0, 128)
	crashLoad := func(inj *crash.Injector, lo, n int) bool {
		heap.SetInjector(inj)
		defer heap.SetInjector(nil)
		for i := lo; i < lo+n; i++ {
			if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
				if crash.IsCrash(err) {
					return true
				}
				t.Fatalf("insert %d: %v", i, err)
			}
			committed = append(committed, uint64(i))
		}
		return false
	}
	verify := func(gen2 string) {
		for _, id := range committed {
			k := gen.Key(id)
			if v, ok := idx.Lookup(k); !ok || v != id {
				t.Fatalf("%s: acknowledged id %d lost (ok=%v v=%d)", gen2, id, ok, v)
			}
		}
	}

	inj := crash.NewNth(40)
	if !crashLoad(inj, 0, 60) {
		t.Fatal("first crash did not fire")
	}
	heap.PowerCycle(pmem.PolicyTorn, 1)
	if err := idx.Recover(); err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	verify("after first cycle")

	// Same injector object, rearmed for the second generation.
	inj.Rearm()
	if !crashLoad(inj, 100, 60) {
		t.Fatal("second crash did not fire after Rearm")
	}
	heap.PowerCycle(pmem.PolicyTorn, 2)
	if err := idx.Recover(); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	verify("after second cycle")

	// And the index still accepts writes.
	if err := idx.Insert(gen.Key(999_999), 999_999); err != nil {
		t.Fatalf("post-cycle insert: %v", err)
	}
	if v, ok := idx.Lookup(gen.Key(999_999)); !ok || v != 999_999 {
		t.Fatalf("post-cycle readback: ok=%v v=%d", ok, v)
	}
}
