// Adversarial lossy power-failure campaigns: the per-site crash sweep
// composed with pmem's shadow-mode PowerCycle and a full-dataset
// readback verifier.
//
// The per-site durability campaigns (durability_sites.go) check flush
// coverage — every dirtied line clwb'd and fenced at operation
// boundaries — but a crash there still leaves all stores visible, so a
// missing persist can never surface as data loss. The campaigns here
// run the stronger faulty-PM model: crash at each discovered site,
// materialise a true post-power-loss image (Heap.PowerCycle — stores
// that never reached a clwb+fence are gone, unfenced write-backs follow
// the policy), recover, and then verify the surviving data against a
// model map of acknowledged writes. Outcomes per trial:
//
//   - CLEAN: every acknowledged write readable with its value, the
//     in-flight operation either completed or vanished atomically, and
//     post-cycle writes work.
//   - PARTIAL: the in-flight (unacknowledged) operation vanished —
//     acceptable under any failure model, reported for visibility.
//   - LOST-ACK: an acknowledged write is missing or has the wrong
//     value — the index acknowledged before its commit was durable, a
//     real crash-consistency bug.
//   - CORRUPT: recovery or post-cycle traffic panics or errors, or
//     readback returns values never written — the image was
//     unrecoverable.
//
// Loads run single-threaded (shadow capture is a single-writer testing
// mode), and every trial derives its torn-policy coin flips from the
// campaign seed and the site name, so a campaign is deterministic for a
// fixed seed regardless of worker count.
package harness

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// LossyOutcome classifies one lossy crash trial, ordered by severity.
type LossyOutcome int

const (
	// OutcomeClean: all acknowledged data survived, in-flight op either
	// completed or was atomically absent, post-cycle traffic clean.
	OutcomeClean LossyOutcome = iota
	// OutcomePartial: the unacknowledged in-flight operation vanished.
	OutcomePartial
	// OutcomeLostAck: an acknowledged write is missing or wrong.
	OutcomeLostAck
	// OutcomeCorrupt: recovery/readback/post-cycle traffic failed.
	OutcomeCorrupt
)

func (o LossyOutcome) String() string {
	switch o {
	case OutcomeClean:
		return "CLEAN"
	case OutcomePartial:
		return "PARTIAL"
	case OutcomeLostAck:
		return "LOST-ACK"
	case OutcomeCorrupt:
		return "CORRUPT"
	default:
		return fmt.Sprintf("LossyOutcome(%d)", int(o))
	}
}

// LossySiteReport is one crash site's row in a lossy campaign.
type LossySiteReport struct {
	// Site is the crash-site name.
	Site string
	// Fired reports whether the load reached the site and crashed there.
	Fired bool
	// Outcome is the trial's worst observation.
	Outcome LossyOutcome
	// LostAcks counts acknowledged writes missing after recovery.
	LostAcks int
	// Detail describes the first failure (empty for CLEAN/PARTIAL).
	Detail string
	// Cycle is the power cycle's damage report.
	Cycle pmem.CycleReport
}

// LossyCampaignReport summarises one index × policy lossy campaign.
type LossyCampaignReport struct {
	Index  string
	Policy pmem.Policy
	// Seed drove every trial's torn coin flips (combined per site).
	Seed int64
	// Sites holds one row per discovered crash site, sorted by name.
	Sites []LossySiteReport
	// PostOps is the number of post-cycle inserts verified per site.
	PostOps int
}

// Fired counts sites whose trial actually crashed.
func (r LossyCampaignReport) Fired() int {
	n := 0
	for _, s := range r.Sites {
		if s.Fired {
			n++
		}
	}
	return n
}

// Count returns the number of trials with the given outcome.
func (r LossyCampaignReport) Count(o LossyOutcome) int {
	n := 0
	for _, s := range r.Sites {
		if s.Fired && s.Outcome == o {
			n++
		}
	}
	return n
}

// Pass reports whether no trial lost acknowledged data or corrupted the
// index. PARTIAL outcomes are acceptable: the in-flight operation was
// never acknowledged.
func (r LossyCampaignReport) Pass() bool {
	for _, s := range r.Sites {
		if s.Outcome == OutcomeLostAck || s.Outcome == OutcomeCorrupt {
			return false
		}
	}
	return true
}

func (r LossyCampaignReport) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-12s policy=%-6s sites=%d fired=%d clean=%d partial=%d lostAck=%d corrupt=%d  %s",
		r.Index, r.Policy, len(r.Sites), r.Fired(),
		r.Count(OutcomeClean), r.Count(OutcomePartial), r.Count(OutcomeLostAck), r.Count(OutcomeCorrupt),
		verdict)
}

// lossyTrial binds one index instance on one shadow heap.
type lossyTrial struct {
	insert    func(id uint64) error
	lookup    func(id uint64) (uint64, bool)
	recoverFn func() error
}

// LossyCampaignOrdered runs the lossy power-failure campaign for an
// ordered index: discover every crash site a loadN-insert load passes
// through, then — one trial per site, fanned out over `workers`
// goroutines (< 1 selects GOMAXPROCS) — crash at that site, power-cycle
// under the policy, recover, and verify every acknowledged write plus
// postN post-cycle inserts.
func LossyCampaignOrdered(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, policy pmem.Policy, seed int64, loadN, postN, workers int) LossyCampaignReport {
	return lossyCampaign(name, policy, seed, loadN, postN, workers, func(heap *pmem.Heap) lossyTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(kind)
		return lossyTrial{
			insert:    func(id uint64) error { return idx.Insert(gen.Key(id), id) },
			lookup:    func(id uint64) (uint64, bool) { return idx.Lookup(gen.Key(id)) },
			recoverFn: idx.Recover,
		}
	})
}

// LossyCampaignHash is LossyCampaignOrdered for unordered indexes.
func LossyCampaignHash(name string, factory func(*pmem.Heap) core.HashIndex, policy pmem.Policy, seed int64, loadN, postN, workers int) LossyCampaignReport {
	return lossyCampaign(name, policy, seed, loadN, postN, workers, func(heap *pmem.Heap) lossyTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(keys.RandInt)
		return lossyTrial{
			insert:    func(id uint64) error { return idx.Insert(gen.Uint64(id)|1, id) },
			lookup:    func(id uint64) (uint64, bool) { return idx.Lookup(gen.Uint64(id) | 1) },
			recoverFn: idx.Recover,
		}
	})
}

func lossyCampaign(name string, policy pmem.Policy, seed int64, loadN, postN, workers int, build func(*pmem.Heap) lossyTrial) LossyCampaignReport {
	sites := discoverLossySites(loadN, build)
	rep := LossyCampaignReport{
		Index: name, Policy: policy, Seed: seed,
		PostOps: postN, Sites: make([]LossySiteReport, len(sites)),
	}
	forEachSite(len(sites), workers, func(i int) {
		rep.Sites[i] = lossyAtSite(sites[i], policy, siteSeed(seed, sites[i]), loadN, postN, build)
	})
	return rep
}

// discoverLossySites reuses the discovery pass of the durability
// campaigns over the lossy trial shape.
func discoverLossySites(loadN int, build func(*pmem.Heap) lossyTrial) []string {
	return discoverSites(loadN, func(heap *pmem.Heap) siteTrial {
		t := build(heap)
		return siteTrial{insert: t.insert, recoverFn: t.recoverFn}
	})
}

// siteSeed combines the campaign seed with the site name so each trial
// gets independent, reproducible torn coin flips.
func siteSeed(seed int64, site string) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return seed ^ int64(h.Sum64())
}

// guard runs f, converting a panic into an error — a power-cycled image
// can be arbitrarily damaged, and a recovery or readback that panics is
// a CORRUPT outcome, not a test crash.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f()
}

// lossyAtSite is one trial: load single-threaded with a crash armed at
// the site's first visit on a Shadow-mode heap, power-cycle under the
// policy, recover, and verify.
func lossyAtSite(site string, policy pmem.Policy, seed int64, loadN, postN int, build func(*pmem.Heap) lossyTrial) LossySiteReport {
	r := LossySiteReport{Site: site}
	heap := pmem.New(pmem.Options{Shadow: true})
	defer heap.Release()
	trial := build(heap)
	heap.SetInjector(crash.NewAtSite(site, 1))

	committed := make([]uint64, 0, loadN)
	inflight := int64(-1)
	for i := 0; i < loadN && !r.Fired; i++ {
		id := uint64(i)
		if err := trial.insert(id); err != nil {
			if crash.IsCrash(err) {
				r.Fired = true
				inflight = int64(id)
			}
			// Non-crash errors (e.g. bounded-retry stalls) end the load;
			// only acknowledged inserts join the model.
			break
		}
		committed = append(committed, id)
	}
	heap.SetInjector(nil)
	if !r.Fired {
		return r
	}

	// Power loss: materialise the lossy image, then recover it exactly as
	// a restart would.
	r.Cycle = heap.PowerCycle(policy, seed)
	if err := guard(trial.recoverFn); err != nil {
		r.Outcome, r.Detail = OutcomeCorrupt, fmt.Sprintf("recovery failed: %v", err)
		return r
	}

	fail := func(o LossyOutcome, detail string) {
		if o > r.Outcome {
			r.Outcome = o
			r.Detail = detail
		}
	}

	// Full-dataset readback against the model: every acknowledged write
	// must be present with its value.
	verify := func(phase string) error {
		return guard(func() error {
			for _, id := range committed {
				v, ok := trial.lookup(id)
				switch {
				case !ok:
					r.LostAcks++
					fail(OutcomeLostAck, fmt.Sprintf("%s: acknowledged id %d missing", phase, id))
				case v != id:
					r.LostAcks++
					fail(OutcomeCorrupt, fmt.Sprintf("%s: id %d read back %d", phase, id, v))
				}
			}
			return nil
		})
	}
	if err := verify("readback"); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("readback %v", err))
		return r
	}

	// The in-flight operation may have completed (its commit store made
	// it out) or vanished (PARTIAL) — but never with a wrong value.
	if inflight >= 0 {
		id := uint64(inflight)
		err := guard(func() error {
			if v, ok := trial.lookup(id); ok {
				if v != id {
					fail(OutcomeCorrupt, fmt.Sprintf("in-flight id %d read back %d", id, v))
				}
			} else {
				fail(OutcomePartial, "")
			}
			return nil
		})
		if err != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("in-flight lookup %v", err))
			return r
		}
	}

	// The recovered index must accept and retain new writes.
	post := make([]uint64, 0, postN)
	for i := 0; i < postN; i++ {
		id := uint64(1_000_000 + i)
		if err := guard(func() error { return trial.insert(id) }); err != nil {
			fail(OutcomeCorrupt, fmt.Sprintf("post-cycle insert %d: %v", id, err))
			return r
		}
		post = append(post, id)
	}
	err := guard(func() error {
		for _, id := range post {
			if v, ok := trial.lookup(id); !ok || v != id {
				fail(OutcomeCorrupt, fmt.Sprintf("post-cycle id %d: ok=%v v=%d", id, ok, v))
			}
		}
		return nil
	})
	if err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-cycle readback %v", err))
		return r
	}
	// Re-verify the original dataset after the repair traffic: post-cycle
	// writes must not damage recovered data.
	if err := verify("post-ops readback"); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-ops readback %v", err))
	}
	return r
}
