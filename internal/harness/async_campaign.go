// Async crash campaigns: the per-site durability and lossy
// power-failure sweeps driven through the async commit pipeline
// (internal/commit), so every site inside a committer's drain loop —
// the two commit.* sites bracketing it, the group.* boundary sites,
// and every index-internal site reached while a fence group is open —
// is crashed and verified.
//
// The acked-durability contract under async commit is per future: an
// operation whose future resolved nil had its covering fence retire
// strictly before the ack, so it must survive the power loss exactly;
// an operation whose future resolved with an error (or that the
// committer's death failed) was never acknowledged, so it may survive
// whole or vanish whole — each op's commit store is individually
// atomic — but never with a wrong value. A nil-resolved write missing
// is LOST-ACK; an error-resolved write missing is PARTIAL; a wrong
// value anywhere is CORRUPT. A future still pending after Close is a
// graceful-drain contract violation and reported CORRUPT.
//
// Each trial runs one standalone committer over the trial heap with
// MaxBatch = Queue = batch and a long flush interval: the single
// enqueuer keeps the queue fed, so mid-stream batches are exactly
// `batch` consecutive identifiers and the tail flushes on Close —
// batch composition, and therefore the site-visit sequence on the
// committer goroutine, is deterministic for any worker count.
package harness

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// asyncRun is one committer generation over a trial's heap and index:
// enqueue identifiers, then close — which resolves every accepted
// future — and inspect the futures.
type asyncRun struct {
	enqueue func(id uint64) (*commit.Future, error)
	close   func() error
}

// asyncTrial binds one index instance on one heap behind a committer
// factory: start spawns a fresh committer generation (the load's, and
// a new one for post-crash traffic — a dead committer stays dead).
type asyncTrial struct {
	start     func() asyncRun
	lookup    func(id uint64) (uint64, bool)
	recoverFn func() error
}

// orderedAsyncTrial adapts an ordered index to the async trial shape.
func orderedAsyncTrial(factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, batch int) func(*pmem.Heap) asyncTrial {
	return func(heap *pmem.Heap) asyncTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(kind)
		opts := campaignOptions(heap, batch)
		return asyncTrial{
			start: func() asyncRun {
				c := commit.NewCommitter(func(ops []group.ByteOp, obs group.Observer) error {
					return group.ApplyOrdered(heap, idx, ops, obs)
				}, nil, opts)
				return asyncRun{
					enqueue: func(id uint64) (*commit.Future, error) {
						return c.Enqueue(group.ByteOp{Key: gen.Key(id), Value: id})
					},
					close: c.Close,
				}
			},
			lookup:    func(id uint64) (uint64, bool) { return idx.Lookup(gen.Key(id)) },
			recoverFn: idx.Recover,
		}
	}
}

// hashAsyncTrial adapts an unordered index to the async trial shape.
func hashAsyncTrial(factory func(*pmem.Heap) core.HashIndex, batch int) func(*pmem.Heap) asyncTrial {
	return func(heap *pmem.Heap) asyncTrial {
		idx := factory(heap)
		gen := keys.NewGenerator(keys.RandInt)
		opts := campaignOptions(heap, batch)
		return asyncTrial{
			start: func() asyncRun {
				c := commit.NewCommitter(func(ops []group.U64Op, obs group.Observer) error {
					return group.ApplyHash(heap, idx, ops, obs)
				}, nil, opts)
				return asyncRun{
					enqueue: func(id uint64) (*commit.Future, error) {
						return c.Enqueue(group.U64Op{Key: gen.Uint64(id) | 1, Value: id})
					},
					close: c.Close,
				}
			},
			lookup:    func(id uint64) (uint64, bool) { return idx.Lookup(gen.Uint64(id) | 1) },
			recoverFn: idx.Recover,
		}
	}
}

// campaignOptions pins the committer configuration that makes a trial
// deterministic: batches fill to exactly MaxBatch (the long flush
// interval never expires mid-load; the tail flushes on Close), and the
// trial heap carries the commit.* crash sites.
func campaignOptions(heap *pmem.Heap, batch int) commit.Options {
	return commit.Options{
		Queue:         batch,
		MaxBatch:      batch,
		FlushInterval: time.Hour,
		Heap:          heap,
	}
}

// asyncLoad enqueues identifiers [0, loadN) through one committer
// generation, closes it, and splits the ids by their future's outcome:
// acked (resolved nil — covering fence retired, must survive) and
// unacked (resolved with an error — never acknowledged). pending is
// non-nil if any future violated the Close contract and stayed
// unresolved.
func asyncLoad(trial asyncTrial, loadN int) (acked, unacked []uint64, pending error) {
	run := trial.start()
	futs := make([]*commit.Future, 0, loadN)
	ids := make([]uint64, 0, loadN)
	for i := 0; i < loadN; i++ {
		f, err := run.enqueue(uint64(i))
		if err != nil {
			// Enqueue rejections (cannot happen with the Block policy, but
			// stay safe) leave the op out of both sets: never accepted,
			// never owed an ack.
			continue
		}
		futs = append(futs, f)
		ids = append(ids, uint64(i))
	}
	_ = run.close()
	for i, f := range futs {
		switch err := f.Err(); {
		case err == nil:
			acked = append(acked, ids[i])
		case errors.Is(err, commit.ErrPending):
			pending = fmt.Errorf("future for id %d unresolved after Close", ids[i])
		default:
			unacked = append(unacked, ids[i])
		}
	}
	return acked, unacked, pending
}

// discoverAsyncSites runs one untracked async load with a never-firing
// injector and returns every crash site it passed through — the
// index's own sites, the group.* boundary sites, and the commit.*
// drain-loop sites.
func discoverAsyncSites(loadN int, build func(*pmem.Heap) asyncTrial) []string {
	inj := crash.NewProbabilistic(0, 1)
	heap := pmem.New(pmem.Options{Injector: inj})
	trial := build(heap)
	_, _, _ = asyncLoad(trial, loadN)
	m := inj.Sites()
	sites := make([]string, 0, len(m))
	for s := range m {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	heap.Release()
	return sites
}

// LossyCampaignOrderedAsync runs the lossy power-failure campaign
// through the async commit pipeline for an ordered index: discover
// every crash site an async loadN-insert load passes through
// (including the committer drain-loop sites), then crash at each,
// power-cycle under the policy, recover, and verify every nil-resolved
// future's write in full, exact-or-absent survival of every
// error-resolved write, and postN post-cycle inserts through a fresh
// committer.
func LossyCampaignOrderedAsync(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, policy pmem.Policy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return lossyCampaignAsync(name, policy, seed, loadN, postN, workers, orderedAsyncTrial(factory, kind, batch))
}

// LossyCampaignHashAsync is LossyCampaignOrderedAsync for unordered
// indexes.
func LossyCampaignHashAsync(name string, factory func(*pmem.Heap) core.HashIndex, policy pmem.Policy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return lossyCampaignAsync(name, policy, seed, loadN, postN, workers, hashAsyncTrial(factory, batch))
}

func lossyCampaignAsync(name string, policy pmem.Policy, seed int64, loadN, postN, workers int, build func(*pmem.Heap) asyncTrial) LossyCampaignReport {
	sites := discoverAsyncSites(loadN, build)
	rep := LossyCampaignReport{
		Index: name, Policy: policy, Seed: seed,
		PostOps: postN, Sites: make([]LossySiteReport, len(sites)),
	}
	forEachSite(len(sites), workers, func(i int) {
		rep.Sites[i] = lossyAsyncAtSite(sites[i], policy, siteSeed(seed, sites[i]), loadN, postN, build)
	})
	return rep
}

// lossyAsyncAtSite is one trial: async load with a crash armed at the
// site's first visit on a Shadow-mode heap, power-cycle, recover, and
// verify acked futures fully and unacked ones exact-or-absent.
func lossyAsyncAtSite(site string, policy pmem.Policy, seed int64, loadN, postN int, build func(*pmem.Heap) asyncTrial) LossySiteReport {
	r := LossySiteReport{Site: site}
	heap := pmem.New(pmem.Options{Shadow: true})
	defer heap.Release()
	trial := build(heap)
	heap.SetInjector(crash.NewAtSite(site, 1))

	acked, unacked, pending := asyncLoad(trial, loadN)
	r.Fired = heap.Injector().Fired()
	heap.SetInjector(nil)
	if !r.Fired {
		return r
	}

	fail := func(o LossyOutcome, detail string) {
		if o > r.Outcome {
			r.Outcome = o
			r.Detail = detail
		}
	}
	if pending != nil {
		// Close returned with an unresolved future: the graceful-drain
		// contract itself broke — as severe as a corrupt image.
		fail(OutcomeCorrupt, pending.Error())
		return r
	}

	r.Cycle = heap.PowerCycle(policy, seed)
	if err := guard(trial.recoverFn); err != nil {
		r.Outcome, r.Detail = OutcomeCorrupt, fmt.Sprintf("recovery failed: %v", err)
		return r
	}

	// Acked futures: the covering fence retired strictly before the nil
	// resolution, so the power loss may not touch these writes.
	verify := func(phase string) error {
		return guard(func() error {
			for _, id := range acked {
				v, ok := trial.lookup(id)
				switch {
				case !ok:
					r.LostAcks++
					fail(OutcomeLostAck, fmt.Sprintf("%s: acknowledged id %d missing", phase, id))
				case v != id:
					r.LostAcks++
					fail(OutcomeCorrupt, fmt.Sprintf("%s: id %d read back %d", phase, id, v))
				}
			}
			return nil
		})
	}
	if err := verify("readback"); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("readback %v", err))
		return r
	}

	// Unacked futures were never acknowledged: each op either survived
	// whole or vanished whole — a wrong value is corruption. (A crash at
	// commit.ack.fenced lands a durable batch here: present with exact
	// values is the expected shape.)
	err := guard(func() error {
		for _, id := range unacked {
			if v, ok := trial.lookup(id); ok {
				if v != id {
					fail(OutcomeCorrupt, fmt.Sprintf("unacked id %d read back %d", id, v))
				}
			} else {
				fail(OutcomePartial, "")
			}
		}
		return nil
	})
	if err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("unacked lookup %v", err))
		return r
	}

	// The recovered index must accept and retain new async writes
	// through a fresh committer (the load's died with the crash).
	const postBase = 1_000_000
	if err := guard(func() error {
		run := trial.start()
		futs := make([]*commit.Future, 0, postN)
		for i := 0; i < postN; i++ {
			f, err := run.enqueue(postBase + uint64(i))
			if err != nil {
				return fmt.Errorf("post-cycle enqueue %d: %w", postBase+i, err)
			}
			futs = append(futs, f)
		}
		if err := run.close(); err != nil {
			return fmt.Errorf("post-cycle committer: %w", err)
		}
		for i, f := range futs {
			if err := f.Err(); err != nil {
				return fmt.Errorf("post-cycle id %d: %w", postBase+i, err)
			}
		}
		return nil
	}); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-cycle: %v", err))
		return r
	}
	if err := guard(func() error {
		for i := 0; i < postN; i++ {
			id := uint64(postBase + i)
			if v, ok := trial.lookup(id); !ok || v != id {
				fail(OutcomeCorrupt, fmt.Sprintf("post-cycle id %d: ok=%v v=%d", id, ok, v))
			}
		}
		return nil
	}); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-cycle readback %v", err))
		return r
	}
	// Re-verify the original dataset after the repair traffic.
	if err := verify("post-ops readback"); err != nil {
		fail(OutcomeCorrupt, fmt.Sprintf("post-ops readback %v", err))
	}
	return r
}

// DurabilitySitesOrderedAsync runs the per-site durability campaign
// through the async commit pipeline for an ordered index: after a
// crash at any discovered site (commit.* drain-loop sites included),
// recovery and postN post-crash async inserts must leave every dirtied
// line flushed and fenced at each quiesced committer boundary.
func DurabilitySitesOrderedAsync(name string, factory func(*pmem.Heap) core.OrderedIndex, kind keys.Kind, loadN, postN, batch, workers int) SiteCampaignReport {
	return durabilitySitesAsync(name, loadN, postN, batch, workers, orderedAsyncTrial(factory, kind, batch))
}

// DurabilitySitesHashAsync is DurabilitySitesOrderedAsync for
// unordered indexes.
func DurabilitySitesHashAsync(name string, factory func(*pmem.Heap) core.HashIndex, loadN, postN, batch, workers int) SiteCampaignReport {
	return durabilitySitesAsync(name, loadN, postN, batch, workers, hashAsyncTrial(factory, batch))
}

func durabilitySitesAsync(name string, loadN, postN, batch, workers int, build func(*pmem.Heap) asyncTrial) SiteCampaignReport {
	sites := discoverAsyncSites(loadN, build)
	rep := SiteCampaignReport{Index: name, PostOps: postN, Sites: make([]SiteReport, len(sites))}
	forEachSite(len(sites), workers, func(i int) {
		rep.Sites[i] = durabilityAsyncAtSite(sites[i], loadN, postN, batch, build)
	})
	return rep
}

// durabilityAsyncAtSite is one trial: async load with a crash armed at
// the site's first visit on a Track-mode heap, then recovery and postN
// further async inserts — one committer generation per post batch, so
// every Tracker check runs at a quiesced acknowledged boundary.
func durabilityAsyncAtSite(site string, loadN, postN, batch int, build func(*pmem.Heap) asyncTrial) SiteReport {
	r := SiteReport{Site: site}
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	trial := build(heap)
	heap.SetInjector(crash.NewAtSite(site, 1))
	_, _, _ = asyncLoad(trial, loadN)
	r.Fired = heap.Injector().Fired()
	heap.SetInjector(nil)
	if !r.Fired {
		return r
	}
	// Power-cycle: unflushed state is gone; every boundary from here on
	// must be durable again.
	heap.Tracker().Reset()
	if err := trial.recoverFn(); err != nil {
		r.RecoveryFailed = true
		return r
	}
	if v := heap.Tracker().Check(); len(v) != 0 {
		r.RecoveryViolations = len(v)
		heap.Tracker().Reset()
	}
	const postBase = 1_000_000
	_ = batches(postN, batch, func(lo uint64, n int) error {
		run := trial.start()
		futs := make([]*commit.Future, 0, n)
		for i := 0; i < n; i++ {
			f, err := run.enqueue(postBase + lo + uint64(i))
			if err != nil {
				r.OpViolations++
				continue
			}
			futs = append(futs, f)
		}
		cerr := run.close()
		bad := cerr != nil
		for _, f := range futs {
			if f.Err() != nil {
				bad = true
			}
		}
		if bad {
			r.OpViolations++
			return nil // keep driving the remaining batches
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			r.OpViolations += len(v)
			heap.Tracker().Reset()
		}
		return nil
	})
	return r
}
