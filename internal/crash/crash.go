// Package crash implements the crash-simulation methodology of RECIPE §5.
//
// The paper observes that insert and structure-modification operations in
// non-blocking indexes consist of a small number of ordered atomic steps,
// so it suffices to simulate a crash after each atomic store rather than
// at every instruction. A simulated crash "returns from an insert or
// structure-modification operation mid-way without cleaning up any state,
// leaving the index in a partially modified state".
//
// Indexes mark each such boundary with a call to Injector.Here(site). When
// the injector decides to crash there, Here panics with a Signal; the
// index's public operation recovers the Signal at its entry point and
// returns ErrCrashed without performing any cleanup, leaving locks held
// and intermediate state visible — exactly the post-crash persistent
// image, because every crash site is placed immediately after the
// preceding stores were persisted.
package crash

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrCrashed is returned by an index operation that was interrupted by a
// simulated crash.
var ErrCrashed = errors.New("crash: simulated crash")

// Signal is the panic value used to unwind out of an operation at a crash
// site. Index entry points recover it and convert it to ErrCrashed.
type Signal struct {
	// Site identifies the crash point that fired.
	Site string
}

// Mode selects how an Injector chooses crash points.
type Mode int

const (
	// Off disables crash injection entirely.
	Off Mode = iota
	// Probabilistic crashes at each site independently with probability P.
	Probabilistic
	// Nth crashes at the N-th site visit (1-based) counted across all
	// sites, enabling systematic enumeration of crash states.
	Nth
	// AtSite crashes at the K-th visit of one named site.
	AtSite
)

// Injector decides, at each crash site an index passes through, whether to
// simulate a crash there. The zero value never crashes. An Injector is
// safe for concurrent use.
type Injector struct {
	mode Mode

	// P is the per-site crash probability in Probabilistic mode.
	P float64

	// N is the target visit count in Nth mode.
	N int64

	// Site and K select the target in AtSite mode.
	Site string
	K    int64

	visits    atomic.Int64
	siteVisit atomic.Int64
	fired     atomic.Bool
	oneShot   bool

	mu  sync.Mutex
	rng *rand.Rand

	// sitesSeen records every distinct site observed, for coverage
	// reporting in the crash-test harness.
	sites sync.Map // site string -> *atomic.Int64
}

// NewProbabilistic returns an injector that crashes at each site with
// probability p. It fires at most once (one crash per simulated run).
func NewProbabilistic(p float64, seed int64) *Injector {
	return &Injector{mode: Probabilistic, P: p, rng: rand.New(rand.NewSource(seed)), oneShot: true}
}

// NewNth returns an injector that crashes at the n-th site visit.
func NewNth(n int64) *Injector {
	return &Injector{mode: Nth, N: n, oneShot: true}
}

// NewAtSite returns an injector that crashes at the k-th visit of site.
func NewAtSite(site string, k int64) *Injector {
	return &Injector{mode: AtSite, Site: site, K: k, oneShot: true}
}

// Here marks a crash site. If the injector decides to crash it panics with
// a Signal carrying the site name; otherwise it returns normally. A nil
// injector never crashes.
func (in *Injector) Here(site string) {
	if in == nil || in.mode == Off {
		return
	}
	if c, ok := in.sites.Load(site); ok {
		c.(*atomic.Int64).Add(1)
	} else {
		c := new(atomic.Int64)
		c.Add(1)
		in.sites.Store(site, c)
	}
	if in.fired.Load() {
		return
	}
	switch in.mode {
	case Probabilistic:
		in.mu.Lock()
		hit := in.rng.Float64() < in.P
		in.mu.Unlock()
		if hit && in.arm() {
			panic(Signal{Site: site})
		}
	case Nth:
		if in.visits.Add(1) == in.N && in.arm() {
			panic(Signal{Site: site})
		}
	case AtSite:
		if site != in.Site {
			return
		}
		if in.siteVisit.Add(1) == in.K && in.arm() {
			panic(Signal{Site: site})
		}
	}
}

func (in *Injector) arm() bool {
	if !in.oneShot {
		return true
	}
	return in.fired.CompareAndSwap(false, true)
}

// Fired reports whether the injector has crashed an operation.
func (in *Injector) Fired() bool { return in != nil && in.fired.Load() }

// Rearm resets the one-shot trigger and the visit counters so the
// injector can fire again in a new run phase — a multi-cycle campaign
// power-cycles, recovers, and then crashes the recovered index a second
// time. Without Rearm a fired one-shot injector silently never crashes
// again, which reads as "no crash site reached" instead of "injector
// spent". Site coverage counts are preserved across Rearm: a site
// visited before the cycle stays counted. Rearm must not be called
// concurrently with index operations.
func (in *Injector) Rearm() {
	if in == nil {
		return
	}
	in.visits.Store(0)
	in.siteVisit.Store(0)
	in.fired.Store(false)
}

// Visits returns the total number of site visits observed (Nth mode).
func (in *Injector) Visits() int64 { return in.visits.Load() }

// Sites returns the distinct crash sites observed and their visit counts.
func (in *Injector) Sites() map[string]int64 {
	out := make(map[string]int64)
	in.sites.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Recover converts a recovered panic value into (error, true) when it is a
// crash Signal, and re-panics otherwise. Typical use at an index entry
// point:
//
//	defer func() {
//	    if r := recover(); r != nil {
//	        err = crash.Recover(r)
//	    }
//	}()
func Recover(r any) error {
	if _, ok := r.(Signal); ok {
		return ErrCrashed
	}
	panic(r)
}

// IsCrash reports whether err is the simulated-crash error.
func IsCrash(err error) bool { return errors.Is(err, ErrCrashed) }
