package crash

import (
	"errors"
	"testing"
)

// run executes f, converting a crash Signal into ErrCrashed, the way an
// index entry point does.
func run(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Recover(r)
		}
	}()
	f()
	return nil
}

func TestNilInjectorNeverCrashes(t *testing.T) {
	var in *Injector
	err := run(func() {
		for i := 0; i < 1000; i++ {
			in.Here("site")
		}
	})
	if err != nil {
		t.Fatalf("nil injector crashed: %v", err)
	}
}

func TestNthCrashesExactlyOnce(t *testing.T) {
	in := NewNth(3)
	visits := 0
	err := run(func() {
		for i := 0; i < 10; i++ {
			visits++
			in.Here("s")
		}
	})
	if !IsCrash(err) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if visits != 3 {
		t.Fatalf("crashed after %d visits, want 3", visits)
	}
	if !in.Fired() {
		t.Fatal("Fired() = false after crash")
	}
	// Subsequent visits never crash again (one-shot).
	err = run(func() {
		for i := 0; i < 10; i++ {
			in.Here("s")
		}
	})
	if err != nil {
		t.Fatalf("one-shot injector crashed twice: %v", err)
	}
}

func TestNthBeyondVisitsNeverFires(t *testing.T) {
	in := NewNth(100)
	err := run(func() {
		for i := 0; i < 5; i++ {
			in.Here("s")
		}
	})
	if err != nil {
		t.Fatalf("unexpected crash: %v", err)
	}
	if in.Fired() {
		t.Fatal("should not have fired")
	}
	if in.Visits() != 5 {
		t.Fatalf("Visits() = %d, want 5", in.Visits())
	}
}

func TestAtSite(t *testing.T) {
	in := NewAtSite("b", 2)
	seq := []string{"a", "b", "a", "b", "b"}
	fired := ""
	err := run(func() {
		for _, s := range seq {
			fired = s
			in.Here(s)
		}
	})
	if !IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	if fired != "b" {
		t.Fatalf("crashed at %q, want second visit of b", fired)
	}
}

func TestProbabilisticEventuallyFires(t *testing.T) {
	in := NewProbabilistic(0.5, 42)
	err := run(func() {
		for i := 0; i < 10000; i++ {
			in.Here("s")
		}
	})
	if !IsCrash(err) {
		t.Fatalf("p=0.5 injector never fired in 10000 visits: %v", err)
	}
}

func TestProbabilisticZeroNeverFires(t *testing.T) {
	in := NewProbabilistic(0, 1)
	err := run(func() {
		for i := 0; i < 1000; i++ {
			in.Here("s")
		}
	})
	if err != nil {
		t.Fatalf("p=0 injector fired: %v", err)
	}
}

func TestSitesCoverage(t *testing.T) {
	in := NewNth(1 << 30) // never fires
	_ = run(func() {
		in.Here("x")
		in.Here("x")
		in.Here("y")
	})
	sites := in.Sites()
	if sites["x"] != 2 || sites["y"] != 1 {
		t.Fatalf("Sites() = %v, want x:2 y:1", sites)
	}
}

func TestRecoverRepanicsOnForeignPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Recover swallowed a non-crash panic")
		}
	}()
	_ = run(func() { panic(errors.New("unrelated")) })
}

// Across repeated power cycles a one-shot injector must (a) never fire a
// second crash until explicitly rearmed, (b) fire again after Rearm, and
// (c) keep counting site visits the whole time — a fired injector that
// stops counting would make sites look unreached in coverage reports.
func TestRearmAcrossPowerCycles(t *testing.T) {
	in := NewAtSite("s", 1)
	if err := run(func() { in.Here("s") }); !IsCrash(err) {
		t.Fatalf("first cycle did not crash: %v", err)
	}
	if !in.Fired() {
		t.Fatal("Fired() false after crash")
	}
	// Spent injector: further visits are counted but never crash.
	if err := run(func() { in.Here("s"); in.Here("t") }); err != nil {
		t.Fatalf("spent injector fired a second crash: %v", err)
	}
	if s := in.Sites(); s["s"] != 2 || s["t"] != 1 {
		t.Fatalf("visits uncounted while spent: %v, want s:2 t:1", s)
	}

	in.Rearm()
	if in.Fired() {
		t.Fatal("Fired() still true after Rearm")
	}
	// The siteVisit counter restarts: the next visit of "s" is the 1st
	// again and must crash.
	if err := run(func() { in.Here("s") }); !IsCrash(err) {
		t.Fatalf("rearmed injector did not crash: %v", err)
	}
	// Coverage accumulated across both cycles.
	if s := in.Sites(); s["s"] != 3 {
		t.Fatalf("site counts lost across Rearm: %v, want s:3", s)
	}
}

// Rearm also restarts Nth-mode visit counting from zero.
func TestRearmResetsNthCounting(t *testing.T) {
	in := NewNth(2)
	if err := run(func() { in.Here("a"); in.Here("b") }); !IsCrash(err) {
		t.Fatalf("Nth injector did not crash at visit 2: %v", err)
	}
	in.Rearm()
	if err := run(func() { in.Here("a") }); err != nil {
		t.Fatalf("crashed at visit 1 after Rearm: %v", err)
	}
	if err := run(func() { in.Here("b") }); !IsCrash(err) {
		t.Fatalf("did not crash at visit 2 after Rearm: %v", err)
	}
}
