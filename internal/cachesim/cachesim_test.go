package cachesim

import (
	"sync"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 8 sets x 4 ways.
	return New(Config{CapacityBytes: 8 * 4 * LineSize, Ways: 4})
}

func TestFirstAccessMisses(t *testing.T) {
	c := small()
	if c.Access(1) {
		t.Fatal("first access should miss")
	}
	if !c.Access(1) {
		t.Fatal("second access should hit")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Single-set cache with 2 ways: third distinct line evicts the LRU.
	c := New(Config{CapacityBytes: 2 * LineSize, Ways: 2})
	if c.Sets() != 1 {
		t.Fatalf("Sets() = %d, want 1", c.Sets())
	}
	c.Access(1) // miss: [1]
	c.Access(2) // miss: [2 1]
	c.Access(1) // hit:  [1 2]
	c.Access(3) // miss, evicts LRU line 2: [3 1]
	if !c.Access(1) {
		t.Fatal("line 1 should still be resident") // now [1 3]
	}
	if c.Access(2) {
		t.Fatal("line 2 should have been evicted (LRU)")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(7)
	c.Invalidate(7)
	if c.Access(7) {
		t.Fatal("access after invalidate should miss")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := small()
	c.Access(9)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if !c.Access(9) {
		t.Fatal("contents should survive ResetStats")
	}
}

func TestMissRate(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("zero accesses should give 0 miss rate")
	}
	s := Stats{Accesses: 4, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v, want 0.25", got)
	}
}

func TestConcurrentAccessCounts(t *testing.T) {
	c := New(DefaultConfig())
	var wg sync.WaitGroup
	const per = 10000
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Access(uint64(g*per + i))
			}
		}()
	}
	wg.Wait()
	if s := c.Stats(); s.Accesses != 4*per {
		t.Fatalf("accesses = %d, want %d", s.Accesses, 4*per)
	}
}

// Property: hits + misses == accesses, and re-accessing a line with no
// interleaving evictions always hits.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(lines []uint64) bool {
		c := New(DefaultConfig())
		for _, l := range lines {
			c.Access(l)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Accesses == uint64(len(lines))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: working sets no larger than the associativity of a single-set
// cache never miss after the first touch.
func TestQuickSmallWorkingSetAlwaysHits(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(Config{CapacityBytes: 4 * LineSize, Ways: 4})
		ws := []uint64{seed, seed + 1, seed + 2, seed + 3}
		for _, l := range ws {
			c.Access(l)
		}
		for round := 0; round < 3; round++ {
			for _, l := range ws {
				if !c.Access(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero ways should panic")
		}
	}()
	New(Config{CapacityBytes: 1024, Ways: 0})
}
