// Package cachesim implements a set-associative last-level-cache (LLC)
// simulator with LRU replacement.
//
// RECIPE's evaluation (Fig 4c, Fig 4d, Table 4) reports LLC misses per
// operation collected with perf on a 32 MB LLC. Go programs cannot read
// hardware performance counters portably, so the benchmark harness routes
// the line-granularity memory accesses made by each index through this
// simulator and reports simulated misses instead. The default geometry
// matches the paper's machine: 32 MB capacity, 16-way associativity,
// 64-byte lines.
package cachesim

import (
	"fmt"
	"sync"

	"repro/internal/stripe"
)

// LineSize is the cache line size in bytes assumed throughout the
// repository (matching x86).
const LineSize = 64

// Config describes a cache geometry.
type Config struct {
	// CapacityBytes is the total cache capacity.
	CapacityBytes int
	// Ways is the associativity.
	Ways int
}

// DefaultConfig mirrors the evaluation machine's 32 MB, 16-way LLC.
func DefaultConfig() Config {
	return Config{CapacityBytes: 32 << 20, Ways: 16}
}

// Cache is a set-associative LRU cache over abstract line addresses. It is
// safe for concurrent use; each set is guarded by its own lock so that
// multi-threaded benchmark runs do not serialise on a single mutex, and
// the hit/miss statistics are striped (internal/stripe) so counting does
// not reintroduce the shared cache lines the set locks avoid. Accesses
// are derived: every Access is exactly one hit or one miss.
type Cache struct {
	sets    []set
	setMask uint64
	hits    *stripe.Counter
	misses  *stripe.Counter
}

type set struct {
	mu    sync.Mutex
	lines []uint64 // line addresses, most-recently-used first
	_     [40]byte // pad to keep adjacent set locks off one cache line
}

// New builds a cache from cfg. The number of sets is rounded down to a
// power of two so the set index is a mask.
func New(cfg Config) *Cache {
	if cfg.CapacityBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid config %+v", cfg))
	}
	nsets := cfg.CapacityBytes / LineSize / cfg.Ways
	if nsets < 1 {
		nsets = 1
	}
	// Round down to power of two.
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	c := &Cache{
		sets:    make([]set, p),
		setMask: uint64(p - 1),
		hits:    stripe.NewCounter(),
		misses:  stripe.NewCounter(),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]uint64, 0, cfg.Ways)
	}
	return c
}

// Access touches one line address and reports whether it hit. The address
// space is abstract: callers supply any stable 64-bit identifier per
// 64-byte line (the pmem heap derives them from object IDs and offsets).
func (c *Cache) Access(line uint64) bool {
	// Scramble the line so abstract sequential IDs spread across sets the
	// way physical addresses do.
	h := line * 0x9E3779B97F4A7C15
	s := &c.sets[h&c.setMask]
	s.mu.Lock()
	for i, l := range s.lines {
		if l == line {
			// Move to MRU position.
			copy(s.lines[1:i+1], s.lines[:i])
			s.lines[0] = line
			s.mu.Unlock()
			c.hits.Add(1)
			return true
		}
	}
	if len(s.lines) < cap(s.lines) {
		s.lines = append(s.lines, 0)
	}
	copy(s.lines[1:], s.lines)
	s.lines[0] = line
	s.mu.Unlock()
	c.misses.Add(1)
	return false
}

// Invalidate drops a line if present (used when simulating flushes with
// invalidation semantics such as clflush; clwb leaves the line cached and
// does not call this).
func (c *Cache) Invalidate(line uint64) {
	h := line * 0x9E3779B97F4A7C15
	s := &c.sets[h&c.setMask]
	s.mu.Lock()
	for i, l := range s.lines {
		if l == line {
			s.lines = append(s.lines[:i], s.lines[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// Stats is a snapshot of cache counters.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 when no accesses were recorded.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Stats returns a snapshot of the counters. Accesses is hits + misses —
// exact once concurrent Access calls have completed.
func (c *Cache) Stats() Stats {
	h, m := c.hits.Load(), c.misses.Load()
	return Stats{Accesses: h + m, Hits: h, Misses: m}
}

// ResetStats zeroes the counters without disturbing cache contents, so a
// harness can exclude the load phase from measured-phase statistics.
// Callers must quiesce Access traffic for an exact zero.
func (c *Cache) ResetStats() {
	c.hits.Reset()
	c.misses.Reset()
}

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return len(c.sets) }
