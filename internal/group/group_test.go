package group

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func newOrdered(t *testing.T, heap *pmem.Heap) core.OrderedIndex {
	t.Helper()
	idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestApplyBatchDurable: a committed batch is fully readable and the
// tracker reports every line fenced at the acknowledgment point.
func TestApplyBatchDurable(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	idx := newOrdered(t, heap)
	gen := keys.NewGenerator(keys.RandInt)
	heap.Tracker().Reset() // constructor coverage is tested elsewhere

	ops := make([]ByteOp, 16)
	for i := range ops {
		ops[i] = ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)}
	}
	if err := ApplyOrdered(heap, idx, ops, nil); err != nil {
		t.Fatal(err)
	}
	if v := heap.Tracker().Check(); len(v) != 0 {
		t.Fatalf("acked batch left %d undurable lines: %v", len(v), v)
	}
	for i := range ops {
		if v, ok := idx.Lookup(gen.Key(uint64(i))); !ok || v != uint64(i) {
			t.Fatalf("id %d: ok=%v v=%d", i, ok, v)
		}
	}
}

// TestApplyFewerFences: a batch of in-place updates pays one barrier
// instead of one fence per op.
func TestApplyFewerFences(t *testing.T) {
	heap := pmem.NewFast()
	defer heap.Release()
	idx := newOrdered(t, heap)
	gen := keys.NewGenerator(keys.RandInt)
	const B = 32
	for i := 0; i < B; i++ {
		if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	unbatched := heap.Stats()
	for i := 0; i < B; i++ {
		if err := idx.Update(gen.Key(uint64(i)), uint64(i)+100); err != nil {
			t.Fatal(err)
		}
	}
	unbatchedFences := heap.Stats().Sub(unbatched).Fence

	ops := make([]ByteOp, B)
	for i := range ops {
		ops[i] = ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i) + 200, Update: true}
	}
	batched := heap.Stats()
	if err := ApplyOrdered(heap, idx, ops, nil); err != nil {
		t.Fatal(err)
	}
	d := heap.Stats().Sub(batched)
	if d.Fence >= unbatchedFences {
		t.Errorf("batched fences = %d, want < %d", d.Fence, unbatchedFences)
	}
	if d.Fence != 1 {
		// P-ART updates are single-fence commits, so the whole batch
		// coalesces to the barrier alone.
		t.Errorf("batched update fences = %d, want 1", d.Fence)
	}
}

// TestApplySingleOpBypass: a batch of one is byte-for-byte the
// unbatched path in clwb and fence counters, with no group sites.
func TestApplySingleOpBypass(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)

	ha := pmem.NewFast()
	defer ha.Release()
	ia := newOrdered(t, ha)
	beforeA := ha.Stats()
	if err := ia.Insert(gen.Key(1), 1); err != nil {
		t.Fatal(err)
	}
	plain := ha.Stats().Sub(beforeA)

	hb := pmem.NewFast()
	inj := crash.NewProbabilistic(0, 1) // never fires, records visits
	hb.SetInjector(inj)
	defer hb.Release()
	ib := newOrdered(t, hb)
	beforeB := hb.Stats()
	if err := ApplyOrdered(hb, ib, []ByteOp{{Key: gen.Key(1), Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	batched := hb.Stats().Sub(beforeB)

	if plain != batched {
		t.Errorf("batch-of-1 delta %+v != unbatched delta %+v", batched, plain)
	}
	if hb.ElidedFences() != 0 {
		t.Errorf("batch-of-1 elided %d fences, want 0", hb.ElidedFences())
	}
	sites := inj.Sites()
	if sites[SiteOpApplied] != 0 || sites[SiteCommitFenced] != 0 {
		t.Errorf("batch-of-1 visited group sites: %v", sites)
	}
}

// TestApplyCrashMidBatch: a crash at a group site surfaces as a typed
// *Error wrapping crash.ErrCrashed, with the fence group torn down.
func TestApplyCrashMidBatch(t *testing.T) {
	heap := pmem.NewFast()
	defer heap.Release()
	idx := newOrdered(t, heap)
	gen := keys.NewGenerator(keys.RandInt)
	heap.SetInjector(crash.NewAtSite(SiteOpApplied, 3))

	ops := make([]ByteOp, 8)
	for i := range ops {
		ops[i] = ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)}
	}
	err := ApplyOrdered(heap, idx, ops, nil)
	if !crash.IsCrash(err) {
		t.Fatalf("err = %v, want a crash", err)
	}
	var ge *Error
	if !errors.As(err, &ge) {
		t.Fatalf("err = %T, want *group.Error", err)
	}
	if ge.Applied != 3 {
		t.Errorf("Applied = %d, want 3 (crash at the 3rd op boundary)", ge.Applied)
	}
	if heap.GroupActive() {
		t.Error("fence group still active after crash")
	}
}

// TestApplyOpError: a non-crash op failure fences the applied prefix
// (durable, ackable) and reports where the batch stopped.
func TestApplyOpError(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	idx := newOrdered(t, heap)
	gen := keys.NewGenerator(keys.RandInt)
	heap.Tracker().Reset()

	ops := []ByteOp{
		{Key: gen.Key(1), Value: 1},
		{Key: gen.Key(2), Value: 2},
		{Key: nil, Value: 3}, // empty key: every ordered index rejects it
		{Key: gen.Key(4), Value: 4},
	}
	err := ApplyOrdered(heap, idx, ops, nil)
	var ge *Error
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *group.Error", err)
	}
	if ge.Applied != 2 {
		t.Errorf("Applied = %d, want 2", ge.Applied)
	}
	if crash.IsCrash(err) {
		t.Error("op failure misreported as crash")
	}
	if v := heap.Tracker().Check(); len(v) != 0 {
		t.Errorf("applied prefix not fenced: %v", v)
	}
	for i := uint64(1); i <= 2; i++ {
		if v, ok := idx.Lookup(gen.Key(i)); !ok || v != i {
			t.Errorf("prefix id %d: ok=%v v=%d", i, ok, v)
		}
	}
	if heap.GroupActive() {
		t.Error("fence group still active after op error")
	}
}

// TestApplyObserverCoverage: the observer fires once per op plus once
// for the barrier, on batched and single-op paths alike.
func TestApplyObserverCoverage(t *testing.T) {
	heap := pmem.NewFast()
	defer heap.Release()
	idx := newOrdered(t, heap)
	gen := keys.NewGenerator(keys.RandInt)

	var calls []int
	obs := func(i int) { calls = append(calls, i) }
	ops := []ByteOp{
		{Key: gen.Key(1), Value: 1},
		{Key: gen.Key(2), Value: 2},
		{Key: gen.Key(3), Value: 3},
	}
	if err := ApplyOrdered(heap, idx, ops, obs); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 2} // per-op boundaries, then the barrier
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}

	calls = nil
	if err := ApplyOrdered(heap, idx, []ByteOp{{Key: gen.Key(9), Value: 9}}, obs); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 0 || calls[1] != 0 {
		t.Fatalf("single-op calls = %v, want [0 0]", calls)
	}
}

// TestApplyHashBatch: the unordered path commits a batch durably too.
func TestApplyHashBatch(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	idx, err := core.NewHash("P-CLHT", heap)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	heap.Tracker().Reset()

	ops := make([]U64Op, 16)
	for i := range ops {
		ops[i] = U64Op{Key: gen.Uint64(uint64(i)) | 1, Value: uint64(i)}
	}
	if err := ApplyHash(heap, idx, ops, nil); err != nil {
		t.Fatal(err)
	}
	if v := heap.Tracker().Check(); len(v) != 0 {
		t.Fatalf("acked batch left %d undurable lines: %v", len(v), v)
	}
	for i := range ops {
		if v, ok := idx.Lookup(gen.Uint64(uint64(i)) | 1); !ok || v != uint64(i) {
			t.Fatalf("id %d: ok=%v v=%d", i, ok, v)
		}
	}
}
