// Package group is the single-heap group-commit layer: it applies a
// batch of write operations to one converted index under the heap's
// deferred-fence mode (pmem.BeginFenceGroup), so the batch pays one
// covering barrier fence instead of one trailing fence per operation,
// with every operation's clwb coverage and intra-operation ordering
// intact.
//
// The acked-durability contract is unchanged, just paid per group: a
// nil return means every operation of the batch is durable — the
// covering fence retired before Apply returned. A non-nil *Error
// reports how far the batch got. Two crash sites bracket the new
// boundaries the batching introduces, and both are swept by the
// batched durability and lossy campaigns (internal/harness):
//
//   - "group.op.applied" fires after each operation's boundary inside
//     a group — the batch is mid-flight, its trailing commits written
//     back but unfenced.
//   - "group.commit.fenced" fires after the covering barrier, before
//     the acknowledgment returns.
//
// Apply inherits the heap's group-mode single-writer contract: no
// concurrent writes to the same heap during a batch. The sharded
// front-end (shard.ApplyBatch) serialises batches per shard.
package group

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/pmem"
)

// Crash sites introduced by group commit (see package comment).
const (
	SiteOpApplied    = "group.op.applied"
	SiteCommitFenced = "group.commit.fenced"
)

// ByteOp is one batched write against an ordered index.
type ByteOp struct {
	Key   []byte
	Value uint64
	// Update selects the in-place update path (core.OrderedIndex.Update)
	// instead of insert.
	Update bool
}

// U64Op is one batched write against an unordered index.
type U64Op struct {
	Key, Value uint64
	Update     bool
}

// Observer receives instrumentation callbacks during Apply, for exact
// per-operation counter attribution: it is called with i after
// operation i's boundary, and once more with the last applied index
// after the covering barrier (charging the barrier to the batch's last
// operation). Nil means no instrumentation.
type Observer func(i int)

// Error reports a batch that did not fully commit.
type Error struct {
	// Applied is the number of leading operations applied before the
	// failure. When Err is not a crash, Apply fenced them before
	// returning, so they are durable and may be acknowledged; after a
	// crash (crash.IsCrash(Err)) nothing past the previous barrier is
	// acknowledged and any subset of the batch may survive the loss.
	Applied int
	// Err is the underlying failure: the failing operation's error, or
	// crash.ErrCrashed.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("group: batch failed after %d ops: %v", e.Applied, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// ApplyOrdered applies ops to idx as one group commit on heap. A batch
// of one bypasses group mode entirely — it is byte-for-byte the
// unbatched path, with no group crash sites and identical clwb/fence
// counters. See the package comment for the durability contract.
func ApplyOrdered(heap *pmem.Heap, idx core.OrderedIndex, ops []ByteOp, obs Observer) error {
	do := func(op ByteOp) error {
		if op.Update {
			return idx.Update(op.Key, op.Value)
		}
		return idx.Insert(op.Key, op.Value)
	}
	return apply(heap, len(ops), func(i int) error { return do(ops[i]) }, obs)
}

// ApplyHash is ApplyOrdered for unordered indexes.
func ApplyHash(heap *pmem.Heap, idx core.HashIndex, ops []U64Op, obs Observer) error {
	do := func(op U64Op) error {
		if op.Update {
			return idx.Update(op.Key, op.Value)
		}
		return idx.Insert(op.Key, op.Value)
	}
	return apply(heap, len(ops), func(i int) error { return do(ops[i]) }, obs)
}

// apply is the kind-independent group commit.
func apply(heap *pmem.Heap, n int, do func(i int) error, obs Observer) (err error) {
	switch n {
	case 0:
		return nil
	case 1:
		// Single-op bypass: the unbatched path, counter-identical.
		if e := do(0); e != nil {
			return &Error{Applied: 0, Err: e}
		}
		if obs != nil {
			obs(0)
			obs(0) // the op's own fence is its barrier; zero extra delta
		}
		return nil
	}

	heap.BeginFenceGroup()
	applied := 0
	defer func() {
		if r := recover(); r != nil {
			// Our own crash sites panic with the injector's signal; the
			// machine died mid-batch, so nothing gets fenced. Non-crash
			// panics propagate (crash.Recover re-panics them).
			heap.AbortFenceGroup()
			err = &Error{Applied: applied, Err: crash.Recover(r)}
		}
	}()
	for i := 0; i < n; i++ {
		if e := do(i); e != nil {
			if crash.IsCrash(e) {
				// Index operations convert injected crashes to errors; the
				// machine died, so the applied prefix stays unfenced.
				heap.AbortFenceGroup()
			} else {
				// An ordinary failure (key rejected, shard logic): fence the
				// applied prefix so the caller can acknowledge it.
				heap.EndFenceGroup()
			}
			return &Error{Applied: i, Err: e}
		}
		heap.GroupOpBoundary()
		applied = i + 1
		heap.CrashPoint(SiteOpApplied)
		if obs != nil {
			obs(i)
		}
	}
	heap.EndFenceGroup()
	heap.CrashPoint(SiteCommitFenced)
	if obs != nil {
		obs(n - 1)
	}
	return nil
}
