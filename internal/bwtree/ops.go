package bwtree

import "sort"

// findLeaf descends to the leaf logical node covering key and returns its
// PID, the chain head observed, and the parent PID. When help is true
// (writers), unfinished splits encountered on the way are completed first
// — the Bw-Tree helping mechanism that doubles as RECIPE's crash
// recovery (§6.3).
func (idx *Index) findLeaf(key []byte, help bool) (pid uint64, head *record, parent uint64) {
	pid = idx.rootPID
	parent = 0
node:
	for {
		head = idx.head(pid)
		// Writers consolidate oversized chains before operating.
		if help && head.depth >= idx.chainThreshold() {
			idx.consolidate(pid, parent)
			head = idx.head(pid)
		}
		r := head
		var bestSep []byte
		var bestChild uint64
		haveDelta := false
		for {
			idx.loadTouch(r, false)
			switch r.kind {
			case kDeltaSplit:
				if help {
					idx.completeSplit(pid, r, parent)
				}
				if keyLeq(r.key, key) {
					// key >= separator: the right sibling owns it.
					pid = r.right
					continue node
				}
				r = r.next
			case kDeltaIndex:
				if keyLeq(r.key, key) && (bestSep == nil || keyLess(bestSep, r.key)) {
					bestSep, bestChild, haveDelta = r.key, r.right, true
				}
				r = r.next
			case kDeltaInsert, kDeltaDelete:
				r = r.next
			case kBaseLeaf:
				if geqHigh(key, r.high) {
					pid = r.next2
					continue node
				}
				return pid, head, parent
			case kBaseInner:
				if geqHigh(key, r.high) {
					pid = r.next2
					continue node
				}
				// Route via the base, then let a fresher index delta win.
				j := sort.Search(len(r.keys), func(i int) bool { return keyLess(key, r.keys[i]) })
				child := r.pids[j]
				if haveDelta && (j == 0 || keyLeq(r.keys[j-1], bestSep)) {
					child = bestChild
				}
				parent = pid
				pid = child
				continue node
			}
		}
	}
}

// completeSplit finishes an in-flight or crash-torn split: it posts the
// index-entry delta for (split.key -> split.right) to the parent if the
// parent does not know about it yet. Idempotent; CAS failures mean
// another helper won the race.
func (idx *Index) completeSplit(pid uint64, split *record, parent uint64) {
	if parent == 0 {
		return // root splits are installed atomically, never torn
	}
	phead := idx.head(parent)
	r := phead
	for {
		idx.loadTouch(r, true)
		switch r.kind {
		case kDeltaIndex:
			if keyEqual(r.key, split.key) {
				return // already posted
			}
			r = r.next
		case kDeltaSplit, kDeltaInsert, kDeltaDelete:
			r = r.next
		case kBaseInner:
			for _, k := range r.keys {
				if keyEqual(k, split.key) {
					return // consolidated in
				}
			}
			d := idx.newDelta(kDeltaIndex, split.key, 0, split.right, phead)
			if idx.casHead(parent, phead, d) {
				idx.heap.CrashPoint("bw.smo.parent")
			}
			return
		case kBaseLeaf:
			return // raced with a root change; a later writer re-helps
		}
	}
}

// chainLookup resolves key within one logical node's chain.
func (idx *Index) chainLookup(head *record, key []byte) (uint64, bool) {
	r := head
	for {
		idx.loadTouch(r, false)
		switch r.kind {
		case kDeltaInsert:
			if keyEqual(r.key, key) {
				return r.val, true
			}
			r = r.next
		case kDeltaDelete:
			if keyEqual(r.key, key) {
				return 0, false
			}
			r = r.next
		case kDeltaSplit, kDeltaIndex:
			r = r.next
		case kBaseLeaf:
			i := sort.Search(len(r.keys), func(i int) bool { return keyLeq(key, r.keys[i]) })
			if i < len(r.keys) && keyEqual(r.keys[i], key) {
				return r.vals[i], true
			}
			return 0, false
		default:
			return 0, false
		}
	}
}

// Lookup returns the value stored under key. Reads are non-blocking and
// never retry: split deltas route them B-link style and delta chains are
// immutable snapshots.
func (idx *Index) Lookup(key []byte) (uint64, bool) {
	if len(key) == 0 {
		return 0, false
	}
	_, head, _ := idx.findLeaf(key, false)
	return idx.chainLookup(head, key)
}

// Insert stores value under key (overwriting an existing binding) by
// prepending an insert delta and publishing it with one CAS. A failed CAS
// aborts and restarts from the root, as in the original.
func (idx *Index) Insert(key []byte, value uint64) (err error) {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	defer recoverCrash(&err)
	for {
		pid, head, _ := idx.findLeaf(key, true)
		_, existed := idx.chainLookup(head, key)
		d := idx.newDelta(kDeltaInsert, key, value, 0, head)
		if idx.casHead(pid, head, d) {
			idx.heap.CrashPoint("bw.insert.commit")
			if !existed {
				idx.count.Add(1)
			}
			return nil
		}
	}
}

// Delete removes key by posting a delete delta.
func (idx *Index) Delete(key []byte) (deleted bool, err error) {
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	defer recoverCrash(&err)
	for {
		pid, head, _ := idx.findLeaf(key, true)
		if _, ok := idx.chainLookup(head, key); !ok {
			return false, nil
		}
		d := idx.newDelta(kDeltaDelete, key, 0, 0, head)
		if idx.casHead(pid, head, d) {
			idx.heap.CrashPoint("bw.delete.commit")
			idx.count.Add(-1)
			return true, nil
		}
	}
}

// Scan visits keys >= start in order, calling fn until it returns false
// or count keys have been visited (count <= 0 means unbounded). Each
// logical leaf is replayed (deltas over base) — the pointer-chasing cost
// behind P-BwTree's weak scan numbers in Fig 4c (workload E).
func (idx *Index) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	pid, head, _ := idx.findLeaf(start, false)
	_ = pid
	visited := 0
	for {
		ks, vs, _, next := idx.flattenLeaf(head)
		for i, k := range ks {
			if keyLess(k, start) {
				continue
			}
			if !fn(k, vs[i]) {
				return visited
			}
			visited++
			if count > 0 && visited >= count {
				return visited
			}
		}
		if next == 0 {
			return visited
		}
		head = idx.head(next)
	}
}
