// Package bwtree implements P-BwTree, the RECIPE conversion of the
// Bw-Tree (Levandoski et al., ICDE '13; Wang et al., SIGMOD '18) to
// persistent memory (§6.3).
//
// The Bw-Tree never updates a node in place. Every logical node is a
// chain of immutable delta records ending in a base node, reached through
// a mapping table of logical node IDs (PIDs); a writer prepends a delta
// and publishes it with a single compare-and-swap on the PID's mapping
// entry. Reads and writes are both non-blocking: a failed CAS aborts and
// restarts from the root.
//
// Non-SMO operations (insert/delete deltas) become visible via one CAS,
// so they satisfy Condition #1; following §6.3, the conversion flushes
// the mapping entry only when the CAS succeeds and does not flush loads
// on this path (an ablatable choice — see FlushSMOLoads). Structure
// modifications use the B-link two-step protocol: a split delta installs
// the new right sibling, and a separate index-entry delta tells the
// parent. Writers that encounter an unfinished split complete it first —
// the helping mechanism that makes SMOs satisfy Condition #2 — so after a
// crash the first writer to walk past the torn split repairs it, and
// every store and load on the SMO path is followed by a flush and fence.
package bwtree

import (
	"bytes"
	"errors"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/pmem"
)

// ErrEmptyKey is returned for zero-length keys.
var ErrEmptyKey = errors.New("bwtree: empty key")

// Tunables mirroring common Bw-Tree configurations.
const (
	// DeltaChainThreshold triggers consolidation.
	DeltaChainThreshold = 8
	// MaxLeafEntries / MaxInnerEntries trigger splits at consolidation.
	MaxLeafEntries  = 64
	MaxInnerEntries = 64
)

type recKind uint8

const (
	kBaseLeaf recKind = iota
	kBaseInner
	kDeltaInsert
	kDeltaDelete
	kDeltaSplit
	kDeltaIndex
)

// record is one delta or base node. Immutable after publication; `next`
// points toward the base.
type record struct {
	kind recKind
	pm   pmem.Obj
	next *record

	// delta payload (insert/delete/split/index)
	key   []byte
	val   uint64
	right uint64 // split/index: PID of the right sibling / new child

	// base payload
	keys  [][]byte
	vals  []uint64 // leaf values
	pids  []uint64 // inner children (pids[i] covers keys < keys[i+...]); len(pids) == len(keys)+1
	high  []byte   // high key; nil = +inf
	next2 uint64   // right-sibling PID (B-link)

	depth int // chain position for consolidation decisions
}

// Index is a persistent Bw-Tree over byte-string keys. All operations are
// non-blocking.
type Index struct {
	heap *pmem.Heap

	mapPM   pmem.Obj
	mapping []atomic.Pointer[record]
	nextPID atomic.Uint64
	rootPID uint64

	count atomic.Int64

	// FlushSMOLoads controls the Condition #2 load-flush on SMO paths
	// (§6.3). On by default; the ablation benchmark turns it off.
	FlushSMOLoads bool

	// ChainThreshold overrides DeltaChainThreshold when positive (for the
	// delta-chain ablation benchmark).
	ChainThreshold int
}

// chainThreshold returns the effective consolidation trigger.
func (idx *Index) chainThreshold() int {
	if idx.ChainThreshold > 0 {
		return idx.ChainThreshold
	}
	return DeltaChainThreshold
}

// MaxPIDs bounds the mapping table (1M logical nodes ≈ 64M+ keys).
const MaxPIDs = 1 << 20

// New returns an empty P-BwTree backed by heap.
func New(heap *pmem.Heap) *Index {
	idx := &Index{heap: heap, FlushSMOLoads: true}
	idx.mapping = make([]atomic.Pointer[record], MaxPIDs)
	idx.mapPM = heap.Alloc(MaxPIDs * 8)
	heap.ShadowSlice(idx.mapPM, idx.mapping, 8)
	// RECIPE: the zero-initialised mapping table is persisted once at
	// pool creation (the unpersisted-initial-allocation class of bug §7.5
	// reports in FAST & FAIR and CCEH).
	heap.Persist(idx.mapPM, 0, MaxPIDs*8)
	heap.Fence()
	idx.nextPID.Store(1) // PID 0 is invalid
	idx.rootPID = idx.allocPID()
	base := &record{kind: kBaseLeaf}
	base.pm = heap.Alloc(64)
	heap.Shadow(base.pm, base)
	heap.Persist(base.pm, 0, 64)
	heap.Fence()
	idx.mapping[idx.rootPID].Store(base)
	// RECIPE: persist the root mapping entry at creation.
	heap.PersistFence(idx.mapPM, uintptr(idx.rootPID)*8, 8)
	return idx
}

func (idx *Index) allocPID() uint64 {
	pid := idx.nextPID.Add(1) - 1
	if pid >= MaxPIDs {
		panic("bwtree: mapping table exhausted")
	}
	return pid
}

func (idx *Index) head(pid uint64) *record { return idx.mapping[pid].Load() }

// casHead publishes rec as the new head of pid's chain. On success the
// mapping entry is flushed and fenced (the only persistence a non-SMO
// commit needs, §6.3).
func (idx *Index) casHead(pid uint64, old, rec *record) bool {
	if !idx.mapping[pid].CompareAndSwap(old, rec) {
		return false
	}
	idx.heap.Dirty(idx.mapPM, uintptr(pid)*8, 8)
	// RECIPE: flush + fence after the committing CAS (only on success).
	idx.heap.PersistFence(idx.mapPM, uintptr(pid)*8, 8)
	return true
}

// newDelta allocates and persists a delta before it is published.
func (idx *Index) newDelta(kind recKind, key []byte, val uint64, right uint64, next *record) *record {
	r := &record{kind: kind, key: append([]byte(nil), key...), val: val, right: right, next: next}
	if next != nil {
		r.depth = next.depth + 1
	}
	r.pm = idx.heap.Alloc(uintptr(32 + len(key)))
	idx.heap.Shadow(r.pm, r)
	// RECIPE: persist the delta record before the CAS that publishes it.
	idx.heap.Persist(r.pm, 0, uintptr(32+len(key)))
	idx.heap.Fence()
	return r
}

// persistBase persists a freshly built base node.
func (idx *Index) persistBase(r *record) {
	size := uintptr(64)
	for _, k := range r.keys {
		size += uintptr(len(k)) + 16
	}
	r.pm = idx.heap.Alloc(size)
	idx.heap.Shadow(r.pm, r)
	idx.heap.Persist(r.pm, 0, size)
	idx.heap.Fence()
}

// loadTouch charges the LLC model for reading a record and, on SMO paths,
// issues the Condition #2 load flush.
func (idx *Index) loadTouch(r *record, smo bool) {
	if r == nil {
		return
	}
	size := uintptr(32)
	if r.kind == kBaseLeaf || r.kind == kBaseInner {
		size = 64
		for _, k := range r.keys {
			size += uintptr(len(k)) + 16
		}
	}
	idx.heap.Load(r.pm, 0, size)
	if smo && idx.FlushSMOLoads {
		// RECIPE: loads on the SMO help path are flushed so that helping
		// threads persist the state they acted on (§4.4, §6.3).
		idx.heap.Persist(r.pm, 0, 8)
		idx.heap.Fence()
	}
}

// Len returns the number of keys.
func (idx *Index) Len() int { return int(idx.count.Load()) }

// Recover is a no-op beyond the interface contract: the Bw-Tree has no
// locks to re-initialise, and torn SMOs are completed lazily by the
// helping mechanism on the next write that encounters them.
func (idx *Index) Recover() {}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}

func keyLess(a, b []byte) bool  { return bytes.Compare(a, b) < 0 }
func keyLeq(a, b []byte) bool   { return bytes.Compare(a, b) <= 0 }
func keyEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// geqHigh reports whether key lies at or beyond a node's high key
// (nil = +inf).
func geqHigh(key, high []byte) bool {
	return high != nil && bytes.Compare(key, high) >= 0
}
