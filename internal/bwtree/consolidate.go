package bwtree

import "sort"

// flattenLeaf replays a leaf chain into sorted (keys, values) plus the
// effective high key and right sibling.
func (idx *Index) flattenLeaf(head *record) (ks [][]byte, vs []uint64, high []byte, next uint64) {
	type override struct {
		del bool
		val uint64
	}
	ovr := make(map[string]override)
	var order [][]byte
	r := head
	for {
		idx.loadTouch(r, false)
		switch r.kind {
		case kDeltaInsert:
			if _, seen := ovr[string(r.key)]; !seen {
				ovr[string(r.key)] = override{val: r.val}
				order = append(order, r.key)
			}
			r = r.next
		case kDeltaDelete:
			if _, seen := ovr[string(r.key)]; !seen {
				ovr[string(r.key)] = override{del: true}
			}
			r = r.next
		case kDeltaSplit:
			// The newest split delta defines the truncation; older ones
			// cover wider ranges and are subsumed.
			if high == nil || keyLess(r.key, high) {
				high = r.key
				next = r.right
			}
			r = r.next
		case kDeltaIndex:
			r = r.next
		case kBaseLeaf:
			if high == nil {
				high = r.high
				next = r.next2
			}
			for i, k := range r.keys {
				if geqHigh(k, high) {
					continue
				}
				if o, seen := ovr[string(k)]; seen {
					if !o.del {
						ks = append(ks, k)
						vs = append(vs, o.val)
					}
					delete(ovr, string(k))
					continue
				}
				ks = append(ks, k)
				vs = append(vs, r.vals[i])
			}
			// Remaining overrides are fresh inserts.
			for _, k := range order {
				o, seen := ovr[string(k)]
				if !seen || o.del || geqHigh(k, high) {
					continue
				}
				ks = append(ks, k)
				vs = append(vs, o.val)
			}
			sortPairs(ks, vs)
			return ks, vs, high, next
		default:
			return ks, vs, high, next
		}
	}
}

// flattenInner replays an inner chain into sorted separators and child
// PIDs (len(pids) == len(keys)+1) plus high key and right sibling.
func (idx *Index) flattenInner(head *record) (ks [][]byte, pids []uint64, high []byte, next uint64) {
	type idxEntry struct {
		sep   []byte
		child uint64
	}
	var extra []idxEntry
	r := head
	for {
		idx.loadTouch(r, false)
		switch r.kind {
		case kDeltaIndex:
			dup := false
			for _, e := range extra {
				if keyEqual(e.sep, r.key) {
					dup = true
					break
				}
			}
			if !dup {
				extra = append(extra, idxEntry{r.key, r.right})
			}
			r = r.next
		case kDeltaSplit:
			if high == nil || keyLess(r.key, high) {
				high = r.key
				next = r.right
			}
			r = r.next
		case kDeltaInsert, kDeltaDelete:
			r = r.next
		case kBaseInner:
			if high == nil {
				high = r.high
				next = r.next2
			}
			ks = append(ks, r.keys...)
			pids = append(pids, r.pids...)
			// Merge index deltas (insert separator + child).
			for _, e := range extra {
				exists := false
				for _, k := range ks {
					if keyEqual(k, e.sep) {
						exists = true
						break
					}
				}
				if exists {
					continue
				}
				j := sort.Search(len(ks), func(i int) bool { return keyLess(e.sep, ks[i]) })
				ks = append(ks, nil)
				copy(ks[j+1:], ks[j:])
				ks[j] = e.sep
				pids = append(pids, 0)
				copy(pids[j+2:], pids[j+1:])
				pids[j+1] = e.child
			}
			// Apply truncation.
			if high != nil {
				cut := sort.Search(len(ks), func(i int) bool { return keyLeq(high, ks[i]) })
				ks = ks[:cut]
				pids = pids[:cut+1]
			}
			return ks, pids, high, next
		default:
			return ks, pids, high, next
		}
	}
}

func sortPairs(ks [][]byte, vs []uint64) {
	sort.Sort(&pairSorter{ks, vs})
}

type pairSorter struct {
	ks [][]byte
	vs []uint64
}

func (p *pairSorter) Len() int           { return len(p.ks) }
func (p *pairSorter) Less(i, j int) bool { return keyLess(p.ks[i], p.ks[j]) }
func (p *pairSorter) Swap(i, j int) {
	p.ks[i], p.ks[j] = p.ks[j], p.ks[i]
	p.vs[i], p.vs[j] = p.vs[j], p.vs[i]
}

// consolidate replaces pid's delta chain with a fresh base node,
// splitting it first when oversized. The replacement commits with one
// CAS; failures mean a racing writer modified the chain, and the
// consolidation is simply abandoned (it will be retried later).
func (idx *Index) consolidate(pid, parent uint64) {
	head := idx.head(pid)
	// Make sure any pending split is known to the parent before the
	// split delta is folded away.
	for r := head; r != nil; r = r.next {
		if r.kind == kDeltaSplit {
			idx.completeSplit(pid, r, parent)
			break
		}
		if r.kind == kBaseLeaf || r.kind == kBaseInner {
			break
		}
	}
	leaf := false
	for r := head; r != nil; r = r.next {
		if r.kind == kBaseLeaf {
			leaf = true
			break
		}
		if r.kind == kBaseInner {
			break
		}
	}
	if leaf {
		ks, vs, high, next := idx.flattenLeaf(head)
		if len(ks) > MaxLeafEntries {
			idx.splitLeaf(pid, parent, head, ks, vs, high, next)
			return
		}
		nb := &record{kind: kBaseLeaf, keys: ks, vals: vs, high: high, next2: next}
		idx.persistBase(nb)
		if idx.casHead(pid, head, nb) {
			idx.heap.CrashPoint("bw.consolidate.leaf")
		}
		return
	}
	ks, pids, high, next := idx.flattenInner(head)
	if len(ks) > MaxInnerEntries {
		idx.splitInner(pid, parent, head, ks, pids, high, next)
		return
	}
	nb := &record{kind: kBaseInner, keys: ks, pids: pids, high: high, next2: next}
	idx.persistBase(nb)
	if idx.casHead(pid, head, nb) {
		idx.heap.CrashPoint("bw.consolidate.inner")
	}
}

// splitLeaf performs the B-link split of an oversized leaf: install the
// right sibling under a fresh PID, then publish a split delta on the
// left. The parent index entry is posted by completeSplit — by this
// writer normally, or by whichever writer next walks past the split if a
// crash intervenes (Condition #2).
func (idx *Index) splitLeaf(pid, parent uint64, head *record, ks [][]byte, vs []uint64, high []byte, next uint64) {
	mid := len(ks) / 2
	sep := ks[mid]
	right := &record{kind: kBaseLeaf, keys: append([][]byte(nil), ks[mid:]...), vals: append([]uint64(nil), vs[mid:]...), high: high, next2: next}
	idx.persistBase(right)
	rpid := idx.allocPID()
	idx.mapping[rpid].Store(right)
	idx.heap.Dirty(idx.mapPM, uintptr(rpid)*8, 8)
	// RECIPE: persist the sibling's mapping entry before the split delta
	// can make it reachable.
	idx.heap.PersistFence(idx.mapPM, uintptr(rpid)*8, 8)
	idx.heap.CrashPoint("bw.split.sibling")

	if pid == idx.rootPID && parent == 0 {
		idx.rootSplit(pid, head, sep, ks[:mid], vs[:mid], nil, rpid, true)
		return
	}
	split := idx.newDelta(kDeltaSplit, sep, 0, rpid, head)
	if idx.casHead(pid, head, split) {
		idx.heap.CrashPoint("bw.split.delta")
		idx.completeSplit(pid, split, parent)
	}
}

// splitInner is the inner-node analogue of splitLeaf. The separator moves
// up: the right sibling takes keys after mid, with pids[mid+1] as its
// leftmost child.
func (idx *Index) splitInner(pid, parent uint64, head *record, ks [][]byte, pids []uint64, high []byte, next uint64) {
	mid := len(ks) / 2
	sep := ks[mid]
	right := &record{kind: kBaseInner, keys: append([][]byte(nil), ks[mid+1:]...), pids: append([]uint64(nil), pids[mid+1:]...), high: high, next2: next}
	idx.persistBase(right)
	rpid := idx.allocPID()
	idx.mapping[rpid].Store(right)
	idx.heap.Dirty(idx.mapPM, uintptr(rpid)*8, 8)
	idx.heap.PersistFence(idx.mapPM, uintptr(rpid)*8, 8)
	idx.heap.CrashPoint("bw.isplit.sibling")

	if pid == idx.rootPID && parent == 0 {
		idx.rootSplit(pid, head, sep, ks[:mid], nil, pids[:mid+1], rpid, false)
		return
	}
	split := idx.newDelta(kDeltaSplit, sep, 0, rpid, head)
	if idx.casHead(pid, head, split) {
		idx.heap.CrashPoint("bw.isplit.delta")
		idx.completeSplit(pid, split, parent)
	}
}

// rootSplit grows the tree: the root PID must stay the root, so the left
// half moves to a fresh PID and a new inner base with two children is
// installed at the root PID with a single CAS — atomic, hence
// crash-consistent without help.
func (idx *Index) rootSplit(pid uint64, head *record, sep []byte, lks [][]byte, lvs []uint64, lpids []uint64, rpid uint64, leaf bool) {
	var left *record
	if leaf {
		left = &record{kind: kBaseLeaf, keys: append([][]byte(nil), lks...), vals: append([]uint64(nil), lvs...), high: sep, next2: rpid}
	} else {
		left = &record{kind: kBaseInner, keys: append([][]byte(nil), lks...), pids: append([]uint64(nil), lpids...), high: sep, next2: rpid}
	}
	idx.persistBase(left)
	lpid := idx.allocPID()
	idx.mapping[lpid].Store(left)
	idx.heap.Dirty(idx.mapPM, uintptr(lpid)*8, 8)
	idx.heap.PersistFence(idx.mapPM, uintptr(lpid)*8, 8)
	newRoot := &record{kind: kBaseInner, keys: [][]byte{sep}, pids: []uint64{lpid, rpid}}
	idx.persistBase(newRoot)
	idx.heap.CrashPoint("bw.rootsplit.built")
	if idx.casHead(pid, head, newRoot) {
		idx.heap.CrashPoint("bw.rootsplit.commit")
	}
}
