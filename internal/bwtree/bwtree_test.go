package bwtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func newIdx() *Index { return New(pmem.NewFast()) }

func k64(v uint64) []byte { return keys.EncodeUint64(v) }

func mustInsert(t testing.TB, idx *Index, key []byte, v uint64) {
	t.Helper()
	if err := idx.Insert(key, v); err != nil {
		t.Fatalf("Insert(%x): %v", key, err)
	}
}

func TestEmptyTree(t *testing.T) {
	idx := newIdx()
	if _, ok := idx.Lookup(k64(1)); ok {
		t.Fatal("phantom")
	}
	if idx.Len() != 0 {
		t.Fatal("Len != 0")
	}
	if err := idx.Insert(nil, 1); err != ErrEmptyKey {
		t.Fatalf("empty key err = %v", err)
	}
}

func TestInsertLookup(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(5), 50)
	if v, ok := idx.Lookup(k64(5)); !ok || v != 50 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
}

func TestDeltaOverridesBase(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	mustInsert(t, idx, k64(1), 2)
	if v, _ := idx.Lookup(k64(1)); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestDelete(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 300; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < 300; i += 2 {
		del, err := idx.Delete(k64(i))
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", i, del, err)
		}
	}
	if del, _ := idx.Delete(k64(0)); del {
		t.Fatal("double delete")
	}
	for i := uint64(0); i < 300; i++ {
		_, ok := idx.Lookup(k64(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted %d present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("survivor %d missing", i)
		}
	}
	if idx.Len() != 150 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestConsolidationAndSplits(t *testing.T) {
	idx := newIdx()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(k64(keys.Mix64(i))); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestSequentialInserts(t *testing.T) {
	idx := newIdx()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(k64(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	idx := newIdx()
	var want []uint64
	for i := 0; i < 5000; i++ {
		v := keys.Mix64(uint64(i))
		mustInsert(t, idx, k64(v), v)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order broken at %d", i)
		}
	}
}

func TestScanRange(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 1000; i++ {
		mustInsert(t, idx, k64(i*2), i*2)
	}
	var got []uint64
	n := idx.Scan(k64(501), 5, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
	for i, g := range got {
		if g != uint64(502+i*2) {
			t.Fatalf("scan[%d] = %d", i, g)
		}
	}
}

func TestScanRespectsDeletes(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 100; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < 100; i += 2 {
		if _, err := idx.Delete(k64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cnt := idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		if keys.DecodeUint64(k)%2 == 0 {
			t.Fatalf("scan surfaced deleted key %d", keys.DecodeUint64(k))
		}
		return true
	})
	if cnt != 50 {
		t.Fatalf("scan visited %d, want 50", cnt)
	}
}

func TestOracleRandom(t *testing.T) {
	idx := newIdx()
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			mustInsert(t, idx, k64(k), v)
			oracle[k] = v
		case 2:
			if _, err := idx.Delete(k64(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := idx.Lookup(k64(k))
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%d) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	if idx.Len() != len(oracle) {
		t.Fatalf("Len = %d oracle %d", idx.Len(), len(oracle))
	}
}

// Property: inserted sets scan back sorted and complete.
func TestQuickScanComplete(t *testing.T) {
	f := func(vals []uint64) bool {
		idx := newIdx()
		set := make(map[uint64]bool)
		for _, v := range vals {
			if idx.Insert(k64(v), v) != nil {
				return false
			}
			set[v] = true
		}
		got := 0
		prev := []byte(nil)
		okOrder := true
		idx.Scan(nil, 0, func(k []byte, v uint64) bool {
			if prev != nil && keyLeq(k, prev) {
				okOrder = false
			}
			prev = append(prev[:0], k...)
			got++
			return true
		})
		return okOrder && got == len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	idx := newIdx()
	const threads = 8
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				k := k64(keys.Mix64(id))
				if err := idx.Insert(k, id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if v, ok := idx.Lookup(k); !ok || v != id {
					t.Errorf("readback %d = %d,%v", id, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx.Len() != threads*per {
		t.Fatalf("Len = %d want %d", idx.Len(), threads*per)
	}
	for id := uint64(0); id < threads*per; id += 173 {
		if v, ok := idx.Lookup(k64(keys.Mix64(id))); !ok || v != id {
			t.Fatalf("final lookup %d = %d,%v", id, v, ok)
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 2000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % 2000
				if v, ok := idx.Lookup(k64(k)); ok && v != k && v < 2000 {
					t.Errorf("reader saw %d for %d", v, k)
					return
				}
				i++
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			idx.Scan(k64(500), 100, func([]byte, uint64) bool { return true })
		}
	}()
	for i := uint64(2000); i < 8000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	close(stop)
	wg.Wait()
}

// §5 crash testing: enumerate crash states; lock-free CAS publication
// plus help-along SMO completion must preserve all committed keys.
func TestCrashRecoveryEnumerated(t *testing.T) {
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := New(heap)
		heap.SetInjector(crash.NewNth(n))
		committed := make(map[uint64]uint64)
		crashed := false
		for i := uint64(0); i < 500; i++ {
			k := keys.Mix64(i)
			err := idx.Insert(k64(k), i)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = i
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		idx.Recover()
		for k, v := range committed {
			got, ok := idx.Lookup(k64(k))
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, k, got, ok)
			}
		}
		// Post-crash writes drive the helping mechanism over any torn SMO.
		for i := uint64(70000); i < 70080; i++ {
			if err := idx.Insert(k64(keys.Mix64(i)), i); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
		}
		if n > 20000 {
			t.Fatal("enumeration did not terminate")
		}
	}
}

// Crash exactly between the split delta and the parent index entry — the
// Condition #2 window. The next writer must complete the SMO.
func TestCrashBetweenSplitSteps(t *testing.T) {
	heap := pmem.NewFast()
	idx := New(heap)
	heap.SetInjector(crash.NewAtSite("bw.split.delta", 2))
	committed := make(map[uint64]uint64)
	for i := uint64(0); i < 20000; i++ {
		k := keys.Mix64(i)
		err := idx.Insert(k64(k), i)
		if crash.IsCrash(err) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		committed[k] = i
	}
	heap.SetInjector(nil)
	idx.Recover()
	for k, v := range committed {
		if got, ok := idx.Lookup(k64(k)); !ok || got != v {
			t.Fatalf("committed key %d lost after mid-SMO crash (%d,%v)", k, got, ok)
		}
	}
	// Writers complete the torn split and the tree keeps working.
	for i := uint64(90000); i < 91000; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
	}
	for k, v := range committed {
		if got, ok := idx.Lookup(k64(k)); !ok || got != v {
			t.Fatalf("key %d lost after post-crash writes (%d,%v)", k, got, ok)
		}
	}
}

func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := New(heap)
	for i := uint64(0); i < 1200; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", i, v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	idx := newIdx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(k64(keys.Mix64(uint64(i))), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	idx := newIdx()
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if err := idx.Insert(k64(keys.Mix64(i)), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := idx.Lookup(k64(keys.Mix64(uint64(i) % n))); !ok {
			b.Fatal("miss")
		}
	}
}
