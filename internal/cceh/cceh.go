// Package cceh implements CCEH — Cacheline-Conscious Extendible Hashing
// (Nam et al., FAST '19) — the state-of-the-art PM hash table RECIPE
// compares P-CLHT against (§3, §7.2).
//
// CCEH hashes keys into fixed-size segments addressed through a directory
// indexed by the hash's most significant bits. Buckets are single cache
// lines of four slots; an insert probes a short window of consecutive
// buckets. When a segment fills it splits: a new segment takes the keys
// whose next hash bit is 1, the old segment keeps its entries lazily, and
// the directory entries for the moved half are repointed one by one. When
// a full segment's local depth equals the global depth the directory
// doubles.
//
// §3 of the RECIPE paper reports two CCEH crash bugs in exactly this
// doubling path: the directory pointer, its width, and the global depth
// are updated non-atomically, so a crash between the stores leaves
// insertions (or recovery) looping forever. Faithful mode reproduces that
// ordering (observable as ErrStalled rather than a literal infinite
// loop); Fixed mode publishes all three fields with a single atomic
// pointer swap, which removes the window.
package cceh

import (
	"errors"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// Mode selects bug fidelity for the directory-doubling path.
type Mode int

const (
	// Fixed publishes directory pointer, width and depth with one atomic
	// store.
	Fixed Mode = iota
	// Faithful reproduces the published non-atomic update order (§3).
	Faithful
)

const (
	// SlotsPerBucket packs four 16-byte pairs into one cache line.
	SlotsPerBucket = 4
	// BucketsPerSegment gives 16 KB segments, as in the paper.
	BucketsPerSegment = 256
	// ProbeBuckets is the linear-probing window in buckets (cache lines).
	ProbeBuckets = 4

	bucketBytes  = 64
	segmentBytes = BucketsPerSegment * bucketBytes
)

// ErrZeroKey is returned for key 0, reserved as the empty-slot marker.
var ErrZeroKey = errors.New("cceh: key 0 is reserved")

// ErrStalled is returned when an operation cannot make progress because
// the directory metadata is permanently inconsistent — the observable
// form of the paper's "insertion operations loop infinitely" bug. A real
// execution would spin forever; the port bounds the retries so tests can
// assert the bug.
var ErrStalled = errors.New("cceh: operation stalled on inconsistent directory (reproduced §3 bug)")

// maxRetries bounds insert retries before declaring a stall.
const maxRetries = 64

type segment struct {
	pm         pmem.Obj
	lock       pmlock.Mutex
	localDepth atomic.Uint32
	pattern    atomic.Uint64 // hash prefix (localDepth bits) this segment covers
	keys       [BucketsPerSegment * SlotsPerBucket]atomic.Uint64
	vals       [BucketsPerSegment * SlotsPerBucket]atomic.Uint64
}

// directory bundles the entry array with its depth so Fixed mode can swap
// both in one atomic store.
type directory struct {
	pm      pmem.Obj
	entries []atomic.Pointer[segment]
	depth   uint32
}

// Index is a CCEH hash table over non-zero uint64 keys.
type Index struct {
	heap *pmem.Heap
	mode Mode

	rootPM pmem.Obj
	dir    atomic.Pointer[directory]
	// fDepth is the separately stored global depth used by Faithful mode
	// for directory indexing — the field whose non-atomic update relative
	// to the directory pointer is the published bug.
	fDepth atomic.Uint32

	doubling pmlock.Mutex
	count    atomic.Int64
}

// DefaultDepth gives 4 initial segments.
const DefaultDepth = 2

// New returns an empty CCEH table in Fixed mode.
func New(heap *pmem.Heap) *Index { return NewWithMode(heap, Fixed) }

// NewWithMode returns an empty CCEH table with explicit bug fidelity.
func NewWithMode(heap *pmem.Heap, mode Mode) *Index {
	idx := &Index{heap: heap, mode: mode}
	idx.rootPM = heap.Alloc(64)
	heap.Shadow(idx.rootPM, &idx.dir)
	d := &directory{depth: DefaultDepth}
	d.entries = make([]atomic.Pointer[segment], 1<<DefaultDepth)
	d.pm = heap.Alloc(uintptr(len(d.entries)) * 8)
	heap.ShadowSlice(d.pm, d.entries, 8)
	for i := range d.entries {
		s := idx.newSegment(DefaultDepth, uint64(i))
		d.entries[i].Store(s)
	}
	idx.dir.Store(d)
	idx.fDepth.Store(DefaultDepth)
	heap.Persist(d.pm, 0, uintptr(len(d.entries))*8)
	// Faithful mode reproduces the durability finding of §7.5: the
	// initial allocation holding the root pointer is not persisted.
	if mode == Fixed {
		heap.PersistFence(idx.rootPM, 0, 64)
	}
	return idx
}

func (idx *Index) newSegment(depth uint32, pattern uint64) *segment {
	s := &segment{}
	s.pm = idx.heap.Alloc(segmentBytes)
	idx.heap.Shadow(s.pm, s)
	s.localDepth.Store(depth)
	s.pattern.Store(pattern)
	idx.heap.Persist(s.pm, 0, segmentBytes)
	return s
}

func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	return k ^ (k >> 33)
}

// dirIndexState captures one consistent view of the directory for an
// operation attempt.
type dirIndexState struct {
	d     *directory
	depth uint32
}

// view returns the directory and the depth used to index it. In Fixed
// mode the two travel together; Faithful mode reads them from separate
// fields, reproducing the window the paper's bug lives in.
func (idx *Index) view() dirIndexState {
	d := idx.dir.Load()
	if idx.mode == Fixed {
		return dirIndexState{d: d, depth: d.depth}
	}
	return dirIndexState{d: d, depth: idx.fDepth.Load()}
}

func (v dirIndexState) segmentFor(h uint64) *segment {
	i := int(h >> (64 - v.depth))
	if i >= len(v.d.entries) {
		i = len(v.d.entries) - 1
	}
	return v.d.entries[i].Load()
}

// slotIndex returns the first slot of the home bucket for hash h.
func slotIndex(h uint64) int {
	return int(h&(BucketsPerSegment-1)) * SlotsPerBucket
}

// Lookup returns the value for key. Reads are lock-free and take atomic
// (value, key-recheck) snapshots.
func (idx *Index) Lookup(key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	h := hash(key)
	s := idx.view().segmentFor(h)
	if s == nil {
		return 0, false
	}
	base := slotIndex(h)
	for b := 0; b < ProbeBuckets; b++ {
		off := (base + b*SlotsPerBucket) % len(s.keys)
		idx.heap.Load(s.pm, uintptr(off/SlotsPerBucket)*bucketBytes, bucketBytes)
		for i := 0; i < SlotsPerBucket; i++ {
			if s.keys[off+i].Load() == key {
				v := s.vals[off+i].Load()
				if s.keys[off+i].Load() == key {
					return v, true
				}
			}
		}
	}
	return 0, false
}

// Insert stores value under key, overwriting an existing value. It
// returns ErrStalled when the directory is permanently inconsistent
// (Faithful mode after the §3 crash) and crash.ErrCrashed when a
// simulated crash interrupts it.
func (idx *Index) Insert(key, value uint64) (err error) {
	if key == 0 {
		return ErrZeroKey
	}
	defer recoverCrash(&err)
	h := hash(key)
	for attempt := 0; attempt < maxRetries; attempt++ {
		v := idx.view()
		s := v.segmentFor(h)
		s.lock.Lock()
		// Verify the segment actually covers this hash prefix. A
		// mismatch is transient during splits/doubling — or permanent
		// after the Faithful-mode crash, in which case the retries
		// exhaust and the insert stalls, as §3 describes.
		ld := s.localDepth.Load()
		if h>>(64-ld) != s.pattern.Load() || idx.view().d != v.d {
			s.lock.Unlock()
			continue
		}
		done, full := idx.insertLocked(s, h, key, value)
		s.lock.Unlock()
		if done {
			return nil
		}
		if full {
			idx.split(v, s, h)
		}
	}
	return ErrStalled
}

func (idx *Index) insertLocked(s *segment, h uint64, key, value uint64) (done, full bool) {
	base := slotIndex(h)
	ld := s.localDepth.Load()
	pattern := s.pattern.Load()
	freeOff := -1
	for b := 0; b < ProbeBuckets; b++ {
		off := (base + b*SlotsPerBucket) % len(s.keys)
		for i := 0; i < SlotsPerBucket; i++ {
			k := s.keys[off+i].Load()
			if k == key {
				s.vals[off+i].Store(value)
				idx.heap.Dirty(s.pm, uintptr(off+i)*8, 8)
				idx.heap.PersistFence(s.pm, uintptr((off+i)/SlotsPerBucket)*bucketBytes, bucketBytes)
				idx.heap.CrashPoint("cceh.update.commit")
				return true, false
			}
			if freeOff < 0 && (k == 0 || hash(k)>>(64-ld) != pattern) {
				// Empty, or a key a past split moved to a sibling: CCEH's
				// lazy deletion leaves such slots in place and lets
				// inserts reclaim them (the directory no longer routes
				// their keys here, so overwriting is safe).
				freeOff = off + i
			}
		}
	}
	if freeOff < 0 {
		return false, true
	}
	// Value first, fence, then the atomic key store commits the pair.
	s.vals[freeOff].Store(value)
	idx.heap.Dirty(s.pm, uintptr(freeOff/SlotsPerBucket)*bucketBytes, 8)
	idx.heap.Fence()
	idx.heap.CrashPoint("cceh.insert.val")
	s.keys[freeOff].Store(key)
	idx.heap.Dirty(s.pm, uintptr(freeOff/SlotsPerBucket)*bucketBytes, 8)
	idx.heap.PersistFence(s.pm, uintptr(freeOff/SlotsPerBucket)*bucketBytes, bucketBytes)
	idx.heap.CrashPoint("cceh.insert.commit")
	idx.count.Add(1)
	return true, false
}

// Delete removes key (lazy: the slot key is zeroed with one atomic store).
func (idx *Index) Delete(key uint64) (deleted bool, err error) {
	if key == 0 {
		return false, ErrZeroKey
	}
	defer recoverCrash(&err)
	h := hash(key)
	for attempt := 0; attempt < maxRetries; attempt++ {
		v := idx.view()
		s := v.segmentFor(h)
		s.lock.Lock()
		if h>>(64-s.localDepth.Load()) != s.pattern.Load() || idx.view().d != v.d {
			s.lock.Unlock()
			continue
		}
		base := slotIndex(h)
		for b := 0; b < ProbeBuckets; b++ {
			off := (base + b*SlotsPerBucket) % len(s.keys)
			for i := 0; i < SlotsPerBucket; i++ {
				if s.keys[off+i].Load() == key {
					s.keys[off+i].Store(0)
					idx.heap.Dirty(s.pm, uintptr((off+i)/SlotsPerBucket)*bucketBytes, 8)
					idx.heap.PersistFence(s.pm, uintptr((off+i)/SlotsPerBucket)*bucketBytes, bucketBytes)
					idx.heap.CrashPoint("cceh.delete.commit")
					idx.count.Add(-1)
					s.lock.Unlock()
					return true, nil
				}
			}
		}
		s.lock.Unlock()
		return false, nil
	}
	return false, ErrStalled
}

// split divides segment s (which covers too many keys for its probe
// window). The old segment keeps its entries lazily; a new segment takes
// the keys whose next hash bit is one, and the directory entries for that
// half are repointed.
func (idx *Index) split(v dirIndexState, s *segment, h uint64) {
	idx.doubling.Lock()
	defer idx.doubling.Unlock()
	cur := idx.view()
	if cur.d != v.d {
		return // directory changed; retry the insert instead
	}
	s.lock.Lock()
	ld := s.localDepth.Load()
	if h>>(64-ld) != s.pattern.Load() {
		s.lock.Unlock()
		return
	}
	if ld == cur.depth {
		// Segment is as wide as the directory: double it first.
		s.lock.Unlock()
		idx.doubleDirectory(cur)
		return // caller retries; the next split sees room
	}
	// Allocate the sibling covering pattern*2+1 at depth ld+1.
	ns := idx.newSegment(ld+1, s.pattern.Load()*2+1)
	for i := range s.keys {
		k := s.keys[i].Load()
		if k == 0 {
			continue
		}
		kh := hash(k)
		if kh>>(64-(ld+1)) == ns.pattern.Load() {
			nb := slotIndex(kh)
			placed := false
			for b := 0; b < ProbeBuckets && !placed; b++ {
				off := (nb + b*SlotsPerBucket) % len(ns.keys)
				for j := 0; j < SlotsPerBucket; j++ {
					if ns.keys[off+j].Load() == 0 {
						ns.vals[off+j].Store(s.vals[i].Load())
						ns.keys[off+j].Store(k)
						placed = true
						break
					}
				}
			}
			// An unplaceable key stays readable in the old segment until
			// the next split; CCEH tolerates this via lazy deletion.
			_ = placed
		}
	}
	idx.heap.Persist(ns.pm, 0, segmentBytes)
	idx.heap.Fence()
	idx.heap.CrashPoint("cceh.split.built")

	// Repoint the upper half of this segment's directory range. Each
	// store is atomic; a crash mid-way leaves stale entries that still
	// reach the old segment, which lazily retains the moved keys.
	d := cur.d
	span := 1 << (cur.depth - ld) // directory entries covering s
	first := int(s.pattern.Load()) << (cur.depth - ld)
	for i := first + span/2; i < first+span; i++ {
		d.entries[i].Store(ns)
		idx.heap.Dirty(d.pm, uintptr(i)*8, 8)
		idx.heap.Persist(d.pm, uintptr(i)*8, 8)
	}
	idx.heap.Fence()
	idx.heap.CrashPoint("cceh.split.repointed")

	// Narrow the old segment to its new (deeper) pattern. Keys that moved
	// remain as lazy garbage; lookups for them now route to ns.
	s.pattern.Store(s.pattern.Load() * 2)
	s.localDepth.Store(ld + 1)
	idx.heap.Dirty(s.pm, 0, 16)
	idx.heap.PersistFence(s.pm, 0, 16)
	idx.heap.CrashPoint("cceh.split.depth")
	s.lock.Unlock()
}

// doubleDirectory doubles the directory. Fixed mode publishes the new
// entry array and depth with one atomic pointer store. Faithful mode
// reproduces the paper's bug: the directory pointer, then (separately)
// the global depth, with a crash window between the two stores in which
// indexing uses the new array with the old depth.
func (idx *Index) doubleDirectory(cur dirIndexState) {
	old := cur.d
	nd := &directory{depth: old.depth + 1}
	nd.entries = make([]atomic.Pointer[segment], len(old.entries)*2)
	nd.pm = idx.heap.Alloc(uintptr(len(nd.entries)) * 8)
	idx.heap.ShadowSlice(nd.pm, nd.entries, 8)
	for i := range old.entries {
		s := old.entries[i].Load()
		nd.entries[2*i].Store(s)
		nd.entries[2*i+1].Store(s)
	}
	idx.heap.Persist(nd.pm, 0, uintptr(len(nd.entries))*8)
	idx.heap.Fence()
	idx.heap.CrashPoint("cceh.double.built")

	if idx.mode == Fixed {
		// One store publishes entries and depth together — the fix.
		idx.dir.Store(nd)
		idx.fDepth.Store(nd.depth) // kept in sync for introspection
		idx.heap.Dirty(idx.rootPM, 0, 8)
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("cceh.double.commit")
		return
	}
	// Faithful: pointer first...
	idx.dir.Store(nd)
	idx.heap.Dirty(idx.rootPM, 0, 8)
	idx.heap.PersistFence(idx.rootPM, 0, 8)
	idx.heap.CrashPoint("cceh.double.swapped")
	// ...then the global depth, a separate store. A crash between the two
	// leaves every subsequent insert indexing the doubled directory with
	// the stale depth: the §3 infinite loop.
	idx.fDepth.Store(nd.depth)
	idx.heap.Dirty(idx.rootPM, 8, 8)
	idx.heap.PersistFence(idx.rootPM, 8, 8)
	idx.heap.CrashPoint("cceh.double.depth")
}

// Len returns the number of live keys.
func (idx *Index) Len() int { return int(idx.count.Load()) }

// Range calls fn for every live key/value pair until fn returns false.
// Enumeration order is unspecified. Splits leave moved keys behind in
// the old segment as lazy garbage, so Range reports a key only from the
// segment the directory currently routes it to — each live key is
// visited exactly once. Pairs are read with the lookup snapshot
// (value, key-recheck); a consistent cut requires quiesced writers.
func (idx *Index) Range(fn func(key, value uint64) bool) {
	v := idx.view()
	var prev *segment
	for i := range v.d.entries {
		s := v.d.entries[i].Load()
		if s == nil || s == prev {
			// Entries sharing a segment are contiguous in the directory.
			continue
		}
		prev = s
		for j := range s.keys {
			k := s.keys[j].Load()
			if k == 0 {
				continue
			}
			val := s.vals[j].Load()
			if s.keys[j].Load() != k {
				continue
			}
			if v.segmentFor(hash(k)) != s {
				continue // lazy leftover; the owning segment reports it
			}
			if !fn(k, val) {
				return
			}
		}
	}
}

// Depth returns the directory's global depth as used for indexing.
func (idx *Index) Depth() uint32 { return idx.view().depth }

// Segments returns the number of distinct segments.
func (idx *Index) Segments() int {
	d := idx.dir.Load()
	seen := make(map[*segment]bool)
	for i := range d.entries {
		seen[d.entries[i].Load()] = true
	}
	return len(seen)
}

// Recover re-initialises locks after a crash. In Faithful mode it also
// runs the published recovery walk, which cannot terminate when the
// directory metadata is torn — reported as ErrStalled (§3: "the crash
// recovery algorithm goes into an infinite loop").
func (idx *Index) Recover() error {
	idx.doubling.Reset()
	d := idx.dir.Load()
	for i := range d.entries {
		if s := d.entries[i].Load(); s != nil {
			s.lock.Reset()
		}
	}
	if idx.mode == Faithful {
		// The published recovery scans the directory expecting each
		// segment to span 2^(global-local) consistent entries. With the
		// torn depth the spans never line up; bound the walk and report.
		depth := idx.fDepth.Load()
		if depth != d.depth {
			return ErrStalled
		}
	}
	return nil
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
