package cceh

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func TestInsertLookup(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok := idx.Lookup(7); !ok || v != 70 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := idx.Lookup(8); ok {
		t.Fatal("phantom")
	}
}

func TestZeroKey(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(0, 1); err != ErrZeroKey {
		t.Fatalf("err = %v", err)
	}
	if _, err := idx.Delete(0); err != ErrZeroKey {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(5, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := idx.Lookup(5); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestDelete(t *testing.T) {
	idx := New(pmem.NewFast())
	for k := uint64(1); k <= 100; k++ {
		if err := idx.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 100; k += 2 {
		del, err := idx.Delete(k)
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", k, del, err)
		}
	}
	for k := uint64(1); k <= 100; k++ {
		_, ok := idx.Lookup(k)
		if k%2 == 1 && ok {
			t.Fatalf("deleted %d present", k)
		}
		if k%2 == 0 && !ok {
			t.Fatalf("survivor %d missing", k)
		}
	}
}

func TestSegmentSplitsAndDoubling(t *testing.T) {
	idx := New(pmem.NewFast())
	const n = 100000
	for i := uint64(1); i <= n; i++ {
		if err := idx.Insert(keys.Mix64(i), i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if idx.Segments() < 8 {
		t.Fatalf("expected many segments, got %d", idx.Segments())
	}
	if idx.Depth() <= DefaultDepth {
		t.Fatalf("directory never doubled: depth %d", idx.Depth())
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := idx.Lookup(keys.Mix64(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestOracleRandom(t *testing.T) {
	idx := New(pmem.NewFast())
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(5000)) + 1
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			if err := idx.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			if _, err := idx.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := idx.Lookup(k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%d) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
}

// Property: batches of distinct keys all round-trip through splits.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		idx := New(pmem.NewFast())
		count := int(n%2000) + 1
		for i := 0; i < count; i++ {
			k := keys.Mix64(seed + uint64(i))
			if idx.Insert(k, uint64(i)) != nil {
				return false
			}
		}
		for i := 0; i < count; i++ {
			k := keys.Mix64(seed + uint64(i))
			if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrent(t *testing.T) {
	idx := New(pmem.NewFast())
	const threads = 8
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := keys.Mix64(uint64(g*per+i)) | 1
				if err := idx.Insert(k, uint64(i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, ok := idx.Lookup(k); !ok {
					t.Errorf("readback miss %d", k)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// §5 crash testing in Fixed mode: every enumerated crash state recovers
// without losing committed keys.
func TestCrashRecoveryFixedMode(t *testing.T) {
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := NewWithMode(heap, Fixed)
		heap.SetInjector(crash.NewNth(n))
		committed := make(map[uint64]uint64)
		crashed := false
		for i := uint64(1); i <= 800; i++ {
			k := keys.Mix64(i)
			err := idx.Insert(k, i)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = i
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		if err := idx.Recover(); err != nil {
			t.Fatalf("crash state %d: Fixed-mode recovery failed: %v", n, err)
		}
		for k, v := range committed {
			got, ok := idx.Lookup(k)
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, k, got, ok)
			}
		}
		for i := uint64(100000); i < 100050; i++ {
			if err := idx.Insert(keys.Mix64(i), i); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
		}
		if n > 10000 {
			t.Fatal("crash-state enumeration did not terminate")
		}
	}
}

// §3 bug reproduction: in Faithful mode, a crash between the directory
// pointer swap and the global-depth update leaves insertions unable to
// make progress (the published "insertion operations loop infinitely")
// and the recovery walk stalled.
func TestDirectoryDoublingBugFaithful(t *testing.T) {
	heap := pmem.NewFast()
	idx := NewWithMode(heap, Faithful)
	heap.SetInjector(crash.NewAtSite("cceh.double.swapped", 1))
	var sawCrash bool
	for i := uint64(1); i <= 200000; i++ {
		err := idx.Insert(keys.Mix64(i), i)
		if crash.IsCrash(err) {
			sawCrash = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected pre-crash error: %v", err)
		}
	}
	if !sawCrash {
		t.Fatal("directory never doubled; cannot exercise the bug")
	}
	heap.SetInjector(nil)
	// The recovery algorithm itself stalls (§3: "goes into an infinite
	// loop").
	if err := idx.Recover(); !errors.Is(err, ErrStalled) {
		t.Fatalf("Faithful recovery err = %v, want ErrStalled", err)
	}
	// Insertions stall rather than making progress.
	stalled := 0
	for i := uint64(500000); i < 500040; i++ {
		if err := idx.Insert(keys.Mix64(i), i); errors.Is(err, ErrStalled) {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatal("no insert stalled; the §3 bug was not reproduced")
	}
}

// The same crash in Fixed mode is harmless: the single-pointer publish
// closes the window.
func TestDirectoryDoublingFixed(t *testing.T) {
	heap := pmem.NewFast()
	idx := NewWithMode(heap, Fixed)
	heap.SetInjector(crash.NewAtSite("cceh.double.commit", 1))
	committed := make(map[uint64]uint64)
	for i := uint64(1); i <= 200000; i++ {
		k := keys.Mix64(i)
		err := idx.Insert(k, i)
		if crash.IsCrash(err) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		committed[k] = i
	}
	heap.SetInjector(nil)
	if err := idx.Recover(); err != nil {
		t.Fatalf("Fixed recovery: %v", err)
	}
	for k, v := range committed {
		if got, ok := idx.Lookup(k); !ok || got != v {
			t.Fatalf("key %d lost (%d,%v)", k, got, ok)
		}
	}
	for i := uint64(500000); i < 500100; i++ {
		if err := idx.Insert(keys.Mix64(i), i); err != nil {
			t.Fatalf("post-crash insert: %v", err)
		}
	}
}

// §7.5 durability finding: CCEH's initial root allocation is unpersisted
// in Faithful mode.
func TestDurabilityInitialAllocation(t *testing.T) {
	heapF := pmem.New(pmem.Options{Track: true})
	NewWithMode(heapF, Faithful)
	if v := heapF.Tracker().Check(); len(v) == 0 {
		t.Fatal("Faithful mode should leave the root allocation unpersisted")
	}
	heapX := pmem.New(pmem.Options{Track: true})
	NewWithMode(heapX, Fixed)
	if v := heapX.Tracker().Check(); len(v) != 0 {
		t.Fatalf("Fixed mode left unpersisted lines: %v", v)
	}
}

func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := NewWithMode(heap, Fixed)
	for i := uint64(1); i <= 2000; i++ {
		if err := idx.Insert(keys.Mix64(i), i); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", i, v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	idx := New(pmem.NewFast())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(keys.Mix64(uint64(i))|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	idx := New(pmem.NewFast())
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if err := idx.Insert(keys.Mix64(i)|1, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(keys.Mix64(uint64(i)%n) | 1)
	}
}
