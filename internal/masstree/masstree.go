// Package masstree implements P-Masstree, the RECIPE conversion of
// Masstree (Mao et al., EuroSys '12) to persistent memory (§6.5).
//
// Masstree is a trie of B+ trees: each layer indexes 8 bytes of key; keys
// that share a full 8-byte slice continue into a deeper layer. Leaf
// entries are committed by atomically publishing a new 8-byte permutation
// word (count + sorted slot order), so non-SMO inserts and deletes
// satisfy Condition #1.
//
// The original Masstree lets readers retry on version numbers during
// structure modifications — exactly the pattern RECIPE cannot convert.
// The paper therefore reworks the internal nodes to resemble the leaf
// nodes and follow the B-link protocol: a split copies the upper half
// into a new sibling, atomically installs the sibling pointer (step 1),
// then atomically truncates the split node's permutation (step 2).
// Readers tolerate the intermediate states by following sibling links and
// never retry. Writes, however, cannot repair a crash-torn split —
// Condition #3 — so the conversion adds try-lock crash detection plus a
// helper that simply replays the split completion (§6.5). Conversion
// points carry "RECIPE:" comments.
package masstree

import (
	"encoding/binary"
	"errors"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// Fanout is the number of entries per node (15 slot indexes + a count fit
// one 8-byte permutation word).
const Fanout = 15

// ErrEmptyKey is returned for zero-length keys.
var ErrEmptyKey = errors.New("masstree: empty key")

// lenclass encodes how a leaf entry uses its key slice: 1..8 = the key
// ends within this slice with that many bytes; 9 = the key continues
// (suffix stored out of line or in a deeper layer).
const suffixClass = 9

// perm is Masstree's 8-byte permutation: bits 0..3 hold the live count,
// nibble i (bits 4+4i..) holds the slot index at sorted position i. All
// 15 slot indexes are always present, so nibbles at positions >= count
// form the free list.
type perm uint64

// emptyPerm has count 0 and the identity free list.
func emptyPerm() perm {
	var p uint64
	for i := 0; i < Fanout; i++ {
		p |= uint64(i) << (4 + 4*uint(i))
	}
	return perm(p)
}

func (p perm) count() int { return int(p & 0xF) }

func (p perm) slot(i int) int { return int(p>>(4+4*uint(i))) & 0xF }

// insertAt returns a new permutation with the free-head slot placed at
// sorted position pos. It also returns the slot used.
func (p perm) insertAt(pos int) (perm, int) {
	n := p.count()
	slot := p.slot(n) // free head
	nibbles := make([]int, Fanout)
	for i := 0; i < Fanout; i++ {
		nibbles[i] = p.slot(i)
	}
	copy(nibbles[pos+1:n+1], nibbles[pos:n])
	nibbles[pos] = slot
	var np uint64 = uint64(n + 1)
	for i := 0; i < Fanout; i++ {
		np |= uint64(nibbles[i]) << (4 + 4*uint(i))
	}
	return perm(np), slot
}

// removeAt returns a new permutation with sorted position pos removed
// (its slot returns to the free list).
func (p perm) removeAt(pos int) perm {
	n := p.count()
	nibbles := make([]int, Fanout)
	for i := 0; i < Fanout; i++ {
		nibbles[i] = p.slot(i)
	}
	s := nibbles[pos]
	copy(nibbles[pos:n-1], nibbles[pos+1:n])
	nibbles[n-1] = s
	var np uint64 = uint64(n - 1)
	for i := 0; i < Fanout; i++ {
		np |= uint64(nibbles[i]) << (4 + 4*uint(i))
	}
	return perm(np)
}

// truncate returns a new permutation keeping only the first keep sorted
// positions (the slots beyond return to the free list in place).
func (p perm) truncate(keep int) perm {
	return perm(uint64(p)&^0xF | uint64(keep))
}

// leafVal is the immutable payload of one leaf entry. Swapping the entry's
// payload pointer is a single atomic store, so converting a suffix entry
// into a layer link (or updating a value) commits atomically. The payload
// carries its own (slice, lenclass) so a reader that races a slot reuse
// can verify the pair and never return a mismatched value.
type leafVal struct {
	pm       pmem.Obj
	slice    uint64
	lenclass int
	value    uint64
	suffix   []byte     // lenclass == suffixClass and layer == nil
	layer    *layerRoot // lenclass == suffixClass and layer != nil
}

// layerRoot anchors one B+ tree layer.
type layerRoot struct {
	pm   pmem.Obj
	root atomic.Pointer[node]
	mu   pmlock.Mutex // guards root replacement
}

// Simulated persistent node layout: 8B permutation + 15*8B key slices +
// 16*8B pointers + 64B header/high/sibling ≈ 4 cache lines.
const nodeBytes = 8 + Fanout*8 + 16*8 + 64

const (
	offPerm    = 0
	offSlices  = 8
	offPtrs    = 8 + Fanout*8
	offHigh    = 8 + Fanout*8 + 16*8
	offSibling = offHigh + 8
)

type node struct {
	pm   pmem.Obj
	lock pmlock.Mutex
	leaf bool
	// level is the node's height within its layer (0 = leaf).
	level int

	perm   atomic.Uint64
	slices [Fanout]atomic.Uint64

	// Leaf payloads.
	vals [Fanout]atomic.Pointer[leafVal]
	// Leaf lenclasses, packed like the ART key arrays (readable without
	// locks; each entry only written before its perm publication).
	lens [Fanout]atomic.Uint32

	// Internal children: kids[0] is the leftmost child; the child for
	// slot s lives at kids[s+1].
	kids [Fanout + 1]atomic.Pointer[node]

	next    atomic.Pointer[node]
	high    atomic.Uint64
	highSet atomic.Bool
}

// Index is a persistent Masstree over byte-string keys.
type Index struct {
	heap   *pmem.Heap
	layer0 *layerRoot
	count  atomic.Int64
}

// New returns an empty P-Masstree backed by heap.
func New(heap *pmem.Heap) *Index {
	idx := &Index{heap: heap}
	idx.layer0 = idx.newLayerRoot()
	r := idx.newNode(true, 0)
	idx.layer0.root.Store(r)
	// RECIPE: persist the initial root node and layer anchor.
	heap.PersistFence(r.pm, 0, nodeBytes)
	heap.PersistFence(idx.layer0.pm, 0, 64)
	return idx
}

func (idx *Index) newLayerRoot() *layerRoot {
	lr := &layerRoot{}
	lr.pm = idx.heap.Alloc(64)
	idx.heap.Shadow(lr.pm, lr)
	return lr
}

func (idx *Index) newNode(leaf bool, level int) *node {
	n := &node{leaf: leaf, level: level}
	n.perm.Store(uint64(emptyPerm()))
	n.pm = idx.heap.Alloc(nodeBytes)
	idx.heap.Shadow(n.pm, n)
	return n
}

// sliceOf extracts the 8-byte big-endian key slice and lenclass of the
// remaining key bytes.
func sliceOf(rem []byte) (uint64, int) {
	var b [8]byte
	n := copy(b[:], rem)
	s := binary.BigEndian.Uint64(b[:])
	if len(rem) > 8 {
		return s, suffixClass
	}
	return s, n
}

// entryLess orders leaf entries by (slice, lenclass): shorter keys sort
// before longer keys sharing the same padded slice.
func entryLess(s1 uint64, c1 int, s2 uint64, c2 int) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return c1 < c2
}

// Len returns the number of keys in the index.
func (idx *Index) Len() int { return int(idx.count.Load()) }

// Recover re-initialises all locks in every layer after a simulated
// crash (§6 lock-table re-initialisation). Structural repair happens
// lazily on the write path via split replay.
func (idx *Index) Recover() {
	var walkLayer func(lr *layerRoot)
	seen := make(map[*node]bool)
	var walkNode func(n *node)
	walkNode = func(n *node) {
		for n != nil && !seen[n] {
			seen[n] = true
			n.lock.Reset()
			p := perm(n.perm.Load())
			if n.leaf {
				for i := 0; i < p.count(); i++ {
					lv := n.vals[p.slot(i)].Load()
					if lv != nil && lv.layer != nil {
						walkLayer(lv.layer)
					}
				}
			} else {
				if c := n.kids[0].Load(); c != nil {
					walkNode(c)
				}
				for i := 0; i < p.count(); i++ {
					if c := n.kids[p.slot(i)+1].Load(); c != nil {
						walkNode(c)
					}
				}
			}
			n = n.next.Load()
		}
	}
	walkLayer = func(lr *layerRoot) {
		lr.mu.Reset()
		walkNode(lr.root.Load())
	}
	walkLayer(idx.layer0)
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
