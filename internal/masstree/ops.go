package masstree

import (
	"bytes"
	"encoding/binary"
)

// findLeaf descends within one layer to the leaf whose range covers
// slice, following B-link sibling pointers on the way. Non-blocking.
//
// The high-key check runs AFTER the permutation scan: a split links the
// sibling, publishes the high key, and only then truncates the
// permutation, so a reader that observes a truncated permutation is
// guaranteed to see the high key and re-routes right; the reverse order
// could pair a pre-split high key with post-truncation entries.
func (idx *Index) findLeaf(lr *layerRoot, slice uint64) *node {
	n := lr.root.Load()
	for !n.leaf {
		idx.heap.Load(n.pm, 0, 64)
		p := perm(n.perm.Load())
		child := n.kids[0].Load()
		for i := 0; i < p.count(); i++ {
			slot := p.slot(i)
			if slice >= n.slices[slot].Load() {
				child = n.kids[slot+1].Load()
			} else {
				break
			}
		}
		if n.highSet.Load() && slice >= n.high.Load() {
			n = n.next.Load()
			continue
		}
		n = child
	}
	return n
}

// leafSearch finds the published entry (slice, lc) in the leaf chain
// starting at n, chasing siblings (checked after the scan, as in
// findLeaf). The payload self-verification makes slot-reuse races return
// a linearizable miss instead of a wrong value.
func (idx *Index) leafSearch(n *node, slice uint64, lc int) *leafVal {
	for n != nil {
		idx.heap.Load(n.pm, 0, nodeBytes)
		p := perm(n.perm.Load())
		for i := 0; i < p.count(); i++ {
			slot := p.slot(i)
			if n.slices[slot].Load() != slice || int(n.lens[slot].Load()) != lc {
				continue
			}
			lv := n.vals[slot].Load()
			if lv != nil && lv.slice == slice && lv.lenclass == lc {
				return lv
			}
		}
		if n.highSet.Load() && slice >= n.high.Load() {
			n = n.next.Load()
			continue
		}
		return nil
	}
	return nil
}

// Lookup returns the value stored under key. Reads are non-blocking and
// never retry: sibling links and payload verification absorb every
// intermediate state SMOs (or crashes) expose.
func (idx *Index) Lookup(key []byte) (uint64, bool) {
	if len(key) == 0 {
		return 0, false
	}
	lr := idx.layer0
	rem := key
	for {
		slice, lc := sliceOf(rem)
		n := idx.findLeaf(lr, slice)
		lv := idx.leafSearch(n, slice, lc)
		if lv == nil {
			return 0, false
		}
		if lc < suffixClass {
			return lv.value, true
		}
		if lv.layer != nil {
			lr = lv.layer
			rem = rem[8:]
			continue
		}
		if bytes.Equal(lv.suffix, rem[8:]) {
			return lv.value, true
		}
		return 0, false
	}
}

func (idx *Index) newLeafVal(slice uint64, lc int, value uint64, suffix []byte, layer *layerRoot) *leafVal {
	lv := &leafVal{slice: slice, lenclass: lc, value: value, layer: layer}
	if suffix != nil {
		lv.suffix = append([]byte(nil), suffix...)
	}
	lv.pm = idx.heap.Alloc(uintptr(40 + len(suffix)))
	idx.heap.Shadow(lv.pm, lv)
	// RECIPE: persist the payload before it becomes reachable.
	idx.heap.Persist(lv.pm, 0, uintptr(40+len(suffix)))
	idx.heap.Fence()
	return lv
}

// lockLeafFor descends to and locks the leaf covering slice, with sibling
// hand-over under lock.
func (idx *Index) lockLeafFor(lr *layerRoot, slice uint64) *node {
	n := idx.findLeaf(lr, slice)
	n.lock.Lock()
	for n.highSet.Load() && slice >= n.high.Load() {
		s := n.next.Load()
		n.lock.Unlock()
		s.lock.Lock()
		n = s
	}
	return n
}

// leafFind locates (slice, lc) in the locked leaf; pos is the sorted
// position the entry occupies or would occupy.
func leafFind(n *node, slice uint64, lc int) (pos, slot int, lv *leafVal) {
	p := perm(n.perm.Load())
	for i := 0; i < p.count(); i++ {
		s := p.slot(i)
		es, ec := n.slices[s].Load(), int(n.lens[s].Load())
		if es == slice && ec == lc {
			return i, s, n.vals[s].Load()
		}
		if entryLess(slice, lc, es, ec) {
			return i, -1, nil
		}
	}
	return p.count(), -1, nil
}

// Insert stores value under key, overwriting an existing binding.
func (idx *Index) Insert(key []byte, value uint64) (err error) {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	defer recoverCrash(&err)
	lr := idx.layer0
	rem := key
	for {
		slice, lc := sliceOf(rem)
		n := idx.lockLeafFor(lr, slice)
		pos, slot, lv := leafFind(n, slice, lc)
		if lv != nil {
			switch {
			case lc < suffixClass:
				// In-place update: swing the payload pointer atomically.
				nlv := idx.newLeafVal(slice, lc, value, nil, nil)
				n.vals[slot].Store(nlv)
				idx.heap.Dirty(n.pm, offPtrs+uintptr(slot)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(n.pm, offPtrs+uintptr(slot)*8, 8)
				idx.heap.CrashPoint("mt.update.commit")
				n.lock.Unlock()
				return nil
			case lv.layer != nil:
				// Descend into the existing layer.
				n.lock.Unlock()
				lr = lv.layer
				rem = rem[8:]
				continue
			case bytes.Equal(lv.suffix, rem[8:]):
				nlv := idx.newLeafVal(slice, lc, value, rem[8:], nil)
				n.vals[slot].Store(nlv)
				idx.heap.Dirty(n.pm, offPtrs+uintptr(slot)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(n.pm, offPtrs+uintptr(slot)*8, 8)
				idx.heap.CrashPoint("mt.update.commit")
				n.lock.Unlock()
				return nil
			default:
				// Two distinct keys share the slice: push both into a
				// fresh layer, committed by one payload-pointer swap.
				nlr := idx.buildLayer(lv.suffix, lv.value, rem[8:], value)
				nlv := idx.newLeafVal(slice, suffixClass, 0, nil, nlr)
				idx.heap.CrashPoint("mt.layer.built")
				n.vals[slot].Store(nlv)
				idx.heap.Dirty(n.pm, offPtrs+uintptr(slot)*8, 8)
				// RECIPE: flush + fence after the committing store.
				idx.heap.PersistFence(n.pm, offPtrs+uintptr(slot)*8, 8)
				idx.heap.CrashPoint("mt.layer.commit")
				idx.count.Add(1)
				n.lock.Unlock()
				return nil
			}
		}
		// New entry.
		var payload *leafVal
		if lc < suffixClass {
			payload = idx.newLeafVal(slice, lc, value, nil, nil)
		} else {
			payload = idx.newLeafVal(slice, suffixClass, value, rem[8:], nil)
		}
		p := perm(n.perm.Load())
		if p.count() == Fanout {
			right, splitSlice := idx.splitLeaf(n)
			target := n
			if slice >= splitSlice {
				target = right
			}
			pos, _, _ = leafFind(target, slice, lc)
			idx.insertLeafEntry(target, pos, slice, lc, payload)
			idx.count.Add(1)
			right.lock.Unlock()
			n.lock.Unlock()
			idx.insertParent(lr, n, splitSlice, right, 1)
			return nil
		}
		idx.insertLeafEntry(n, pos, slice, lc, payload)
		idx.count.Add(1)
		n.lock.Unlock()
		return nil
	}
}

// insertLeafEntry writes the entry into a free slot, persists it, then
// commits with the single atomic permutation store (Condition #1).
func (idx *Index) insertLeafEntry(n *node, pos int, slice uint64, lc int, lv *leafVal) {
	p := perm(n.perm.Load())
	np, slot := p.insertAt(pos)
	n.slices[slot].Store(slice)
	n.lens[slot].Store(uint32(lc))
	n.vals[slot].Store(lv)
	idx.heap.Dirty(n.pm, offSlices+uintptr(slot)*8, 8)
	idx.heap.Dirty(n.pm, offPtrs+uintptr(slot)*8, 8)
	// RECIPE: persist the slot, fence, then commit via the permutation
	// store, then persist the permutation word.
	idx.heap.Persist(n.pm, offSlices+uintptr(slot)*8, 8)
	idx.heap.Persist(n.pm, offPtrs+uintptr(slot)*8, 8)
	idx.heap.Fence()
	idx.heap.CrashPoint("mt.insert.entry")
	n.perm.Store(uint64(np))
	idx.heap.Dirty(n.pm, offPerm, 8)
	idx.heap.PersistFence(n.pm, offPerm, 8)
	idx.heap.CrashPoint("mt.insert.commit")
}

// buildLayer constructs the (unpublished) layer tree holding two
// diverging key remainders; intermediate single-entry layers bridge any
// further shared 8-byte slices.
func (idx *Index) buildLayer(k0 []byte, v0 uint64, k1 []byte, v1 uint64) *layerRoot {
	top := idx.newLayerRoot()
	cur := top
	a, b := k0, k1
	for {
		s0, c0 := sliceOf(a)
		s1, c1 := sliceOf(b)
		leafn := idx.newNode(true, 0)
		cur.root.Store(leafn)
		if s0 == s1 && c0 == suffixClass && c1 == suffixClass {
			next := idx.newLayerRoot()
			lv := idx.newLeafVal(s0, suffixClass, 0, nil, next)
			idx.placePrivate(leafn, 0, s0, suffixClass, lv)
			idx.heap.Persist(leafn.pm, 0, nodeBytes)
			idx.heap.Persist(cur.pm, 0, 64)
			idx.heap.Fence()
			cur = next
			a, b = a[8:], b[8:]
			continue
		}
		mk := func(s uint64, c int, k []byte, v uint64) *leafVal {
			if c < suffixClass {
				return idx.newLeafVal(s, c, v, nil, nil)
			}
			return idx.newLeafVal(s, suffixClass, v, k[8:], nil)
		}
		lv0 := mk(s0, c0, a, v0)
		lv1 := mk(s1, c1, b, v1)
		if entryLess(s1, c1, s0, c0) {
			s0, c0, lv0, s1, c1, lv1 = s1, c1, lv1, s0, c0, lv0
		}
		idx.placePrivate(leafn, 0, s0, c0, lv0)
		idx.placePrivate(leafn, 1, s1, c1, lv1)
		idx.heap.Persist(leafn.pm, 0, nodeBytes)
		idx.heap.Persist(cur.pm, 0, 64)
		idx.heap.Fence()
		return top
	}
}

// placePrivate fills sorted position pos of an unpublished leaf.
func (idx *Index) placePrivate(n *node, pos int, slice uint64, lc int, lv *leafVal) {
	p := perm(n.perm.Load())
	np, slot := p.insertAt(pos)
	n.slices[slot].Store(slice)
	n.lens[slot].Store(uint32(lc))
	n.vals[slot].Store(lv)
	n.perm.Store(uint64(np))
}

// splitLeaf splits the locked, full leaf n. Before splitting it checks
// for — and completes — a crash-torn previous split by replaying the
// completion steps, the RECIPE Condition #3 helper of §6.5. Returns the
// locked right sibling and the separator slice.
func (idx *Index) splitLeaf(n *node) (*node, uint64) {
	if s := n.next.Load(); s != nil {
		if cut, ok := idx.tornSplit(n, s); ok {
			s.lock.Lock()
			splitSlice := s.slices[perm(s.perm.Load()).slot(0)].Load()
			// RECIPE: replay the split completion — publish the high key,
			// then truncate the permutation.
			n.high.Store(splitSlice)
			n.highSet.Store(true)
			idx.heap.Dirty(n.pm, offHigh, 8)
			idx.heap.PersistFence(n.pm, offHigh, 8)
			n.perm.Store(uint64(perm(n.perm.Load()).truncate(cut)))
			idx.heap.Dirty(n.pm, offPerm, 8)
			idx.heap.PersistFence(n.pm, offPerm, 8)
			idx.heap.CrashPoint("mt.split.replayed")
			return s, splitSlice
		}
	}
	p := perm(n.perm.Load())
	cnt := p.count()
	// Pick a split position on a slice boundary so same-slice entries
	// stay together and routing by slice is unambiguous.
	mid := cnt / 2
	for mid > 1 && n.slices[p.slot(mid)].Load() == n.slices[p.slot(mid-1)].Load() {
		mid--
	}
	for mid < cnt-1 && n.slices[p.slot(mid)].Load() == n.slices[p.slot(mid-1)].Load() {
		mid++
	}
	s := idx.newNode(true, 0)
	s.lock.Lock()
	for i := mid; i < cnt; i++ {
		slot := p.slot(i)
		idx.placePrivate(s, i-mid, n.slices[slot].Load(), int(n.lens[slot].Load()), n.vals[slot].Load())
	}
	s.next.Store(n.next.Load())
	if n.highSet.Load() {
		s.high.Store(n.high.Load())
		s.highSet.Store(true)
	}
	// RECIPE: persist the sibling before step 1 publishes it.
	idx.heap.Persist(s.pm, 0, nodeBytes)
	idx.heap.Fence()
	idx.heap.CrashPoint("mt.split.built")

	splitSlice := n.slices[p.slot(mid)].Load()
	// Step 1: atomically install the sibling link.
	n.next.Store(s)
	idx.heap.Dirty(n.pm, offSibling, 8)
	idx.heap.PersistFence(n.pm, offSibling, 8)
	idx.heap.CrashPoint("mt.split.linked")

	// Publish the high key so readers route moved slices to the sibling.
	n.high.Store(splitSlice)
	n.highSet.Store(true)
	idx.heap.Dirty(n.pm, offHigh, 8)
	idx.heap.PersistFence(n.pm, offHigh, 8)

	// Step 2: atomically invalidate the moved entries via the permutation.
	n.perm.Store(uint64(p.truncate(mid)))
	idx.heap.Dirty(n.pm, offPerm, 8)
	idx.heap.PersistFence(n.pm, offPerm, 8)
	idx.heap.CrashPoint("mt.split.truncated")
	return s, splitSlice
}

// tornSplit reports whether sibling s duplicates entries still published
// in n (the signature of a split crash-torn between linking and
// truncation), returning the permutation position where n must be cut.
func (idx *Index) tornSplit(n, s *node) (int, bool) {
	sp := perm(s.perm.Load())
	if sp.count() == 0 {
		return 0, false
	}
	var firstPtr any
	if n.leaf {
		firstPtr = s.vals[sp.slot(0)].Load()
	} else {
		firstPtr = s.kids[0].Load()
	}
	p := perm(n.perm.Load())
	for i := 0; i < p.count(); i++ {
		slot := p.slot(i)
		if n.leaf {
			if any(n.vals[slot].Load()) == firstPtr {
				return i, true
			}
		} else {
			if any(n.kids[slot+1].Load()) == firstPtr {
				return i, true
			}
		}
	}
	return 0, false
}

// insertParent installs (splitSlice -> right) one level above left,
// splitting upward as needed; at the top it grows the layer with a new
// root committed by one pointer swap. Idempotent: a separator that is
// already present (posted before a crash, or by a replayed split) is
// left alone.
func (idx *Index) insertParent(lr *layerRoot, left *node, splitSlice uint64, right *node, level int) {
	for {
		root := lr.root.Load()
		if root == left {
			lr.mu.Lock()
			if lr.root.Load() != left {
				lr.mu.Unlock()
				continue
			}
			nr := idx.newNode(false, level)
			nr.kids[0].Store(left)
			np, slot := perm(nr.perm.Load()).insertAt(0)
			nr.slices[slot].Store(splitSlice)
			nr.kids[slot+1].Store(right)
			nr.perm.Store(uint64(np))
			// RECIPE: persist the new root, then commit with the atomic
			// root swap.
			idx.heap.Persist(nr.pm, 0, nodeBytes)
			idx.heap.Fence()
			idx.heap.CrashPoint("mt.rootgrow.built")
			lr.root.Store(nr)
			idx.heap.Dirty(lr.pm, 0, 8)
			idx.heap.PersistFence(lr.pm, 0, 8)
			idx.heap.CrashPoint("mt.rootgrow.commit")
			lr.mu.Unlock()
			return
		}
		if root.level < level {
			continue // root replacement in flight
		}
		n := root
		for n.level > level {
			idx.heap.Load(n.pm, 0, 64)
			p := perm(n.perm.Load())
			child := n.kids[0].Load()
			for i := 0; i < p.count(); i++ {
				slot := p.slot(i)
				if splitSlice >= n.slices[slot].Load() {
					child = n.kids[slot+1].Load()
				} else {
					break
				}
			}
			// High-key check after the scan, as in findLeaf.
			if n.highSet.Load() && splitSlice >= n.high.Load() {
				n = n.next.Load()
				continue
			}
			n = child
		}
		n.lock.Lock()
		for n.highSet.Load() && splitSlice >= n.high.Load() {
			s := n.next.Load()
			n.lock.Unlock()
			s.lock.Lock()
			n = s
		}
		p := perm(n.perm.Load())
		pos := p.count()
		exists := false
		for i := 0; i < p.count(); i++ {
			es := n.slices[p.slot(i)].Load()
			if es == splitSlice {
				exists = true
				break
			}
			if splitSlice < es {
				pos = i
				break
			}
		}
		if exists {
			n.lock.Unlock()
			return
		}
		if p.count() < Fanout {
			idx.insertInnerEntry(n, pos, splitSlice, right)
			n.lock.Unlock()
			return
		}
		ns, sep := idx.splitInner(n)
		target := n
		if splitSlice >= sep {
			target = ns
		}
		tp := perm(target.perm.Load())
		pos = tp.count()
		for i := 0; i < tp.count(); i++ {
			if splitSlice < target.slices[tp.slot(i)].Load() {
				pos = i
				break
			}
		}
		idx.insertInnerEntry(target, pos, splitSlice, right)
		ns.lock.Unlock()
		n.lock.Unlock()
		idx.insertParent(lr, n, sep, ns, level+1)
		return
	}
}

func (idx *Index) insertInnerEntry(n *node, pos int, slice uint64, child *node) {
	p := perm(n.perm.Load())
	np, slot := p.insertAt(pos)
	n.slices[slot].Store(slice)
	n.kids[slot+1].Store(child)
	idx.heap.Dirty(n.pm, offSlices+uintptr(slot)*8, 8)
	idx.heap.Dirty(n.pm, offPtrs+uintptr(slot+1)*8, 8)
	// RECIPE: persist the slot, fence, commit via the permutation store.
	idx.heap.Persist(n.pm, offSlices+uintptr(slot)*8, 8)
	idx.heap.Persist(n.pm, offPtrs+uintptr(slot+1)*8, 8)
	idx.heap.Fence()
	idx.heap.CrashPoint("mt.iinsert.entry")
	n.perm.Store(uint64(np))
	idx.heap.Dirty(n.pm, offPerm, 8)
	idx.heap.PersistFence(n.pm, offPerm, 8)
	idx.heap.CrashPoint("mt.iinsert.commit")
}

// splitInner splits the locked, full internal node n; the median
// separator moves up. Returns the locked sibling and the promoted
// separator.
func (idx *Index) splitInner(n *node) (*node, uint64) {
	if s := n.next.Load(); s != nil {
		if cut, ok := idx.tornSplit(n, s); ok {
			s.lock.Lock()
			// The cut position is the median whose child became the
			// sibling's leftmost; it is promoted and dropped from n.
			p := perm(n.perm.Load())
			sep := n.slices[p.slot(cut)].Load()
			// RECIPE: replay the split completion.
			n.high.Store(sep)
			n.highSet.Store(true)
			idx.heap.Dirty(n.pm, offHigh, 8)
			idx.heap.PersistFence(n.pm, offHigh, 8)
			n.perm.Store(uint64(p.truncate(cut)))
			idx.heap.Dirty(n.pm, offPerm, 8)
			idx.heap.PersistFence(n.pm, offPerm, 8)
			idx.heap.CrashPoint("mt.isplit.replayed")
			return s, sep
		}
	}
	p := perm(n.perm.Load())
	cnt := p.count()
	mid := cnt / 2
	sep := n.slices[p.slot(mid)].Load()
	s := idx.newNode(false, n.level)
	s.lock.Lock()
	s.kids[0].Store(n.kids[p.slot(mid)+1].Load())
	for i := mid + 1; i < cnt; i++ {
		slot := p.slot(i)
		sp := perm(s.perm.Load())
		np, nslot := sp.insertAt(i - mid - 1)
		s.slices[nslot].Store(n.slices[slot].Load())
		s.kids[nslot+1].Store(n.kids[slot+1].Load())
		s.perm.Store(uint64(np))
	}
	s.next.Store(n.next.Load())
	if n.highSet.Load() {
		s.high.Store(n.high.Load())
		s.highSet.Store(true)
	}
	// RECIPE: persist the sibling before step 1.
	idx.heap.Persist(s.pm, 0, nodeBytes)
	idx.heap.Fence()
	idx.heap.CrashPoint("mt.isplit.built")

	n.next.Store(s)
	idx.heap.Dirty(n.pm, offSibling, 8)
	idx.heap.PersistFence(n.pm, offSibling, 8)
	idx.heap.CrashPoint("mt.isplit.linked")

	n.high.Store(sep)
	n.highSet.Store(true)
	idx.heap.Dirty(n.pm, offHigh, 8)
	idx.heap.PersistFence(n.pm, offHigh, 8)

	n.perm.Store(uint64(p.truncate(mid)))
	idx.heap.Dirty(n.pm, offPerm, 8)
	idx.heap.PersistFence(n.pm, offPerm, 8)
	idx.heap.CrashPoint("mt.isplit.truncated")
	return s, sep
}

// Delete removes key, committing via a single atomic permutation store.
func (idx *Index) Delete(key []byte) (deleted bool, err error) {
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	defer recoverCrash(&err)
	lr := idx.layer0
	rem := key
	for {
		slice, lc := sliceOf(rem)
		n := idx.lockLeafFor(lr, slice)
		pos, slot, lv := leafFind(n, slice, lc)
		if lv == nil {
			n.lock.Unlock()
			return false, nil
		}
		if lc < suffixClass {
			idx.removeLeafEntry(n, pos)
			idx.count.Add(-1)
			n.lock.Unlock()
			return true, nil
		}
		if lv.layer != nil {
			n.lock.Unlock()
			lr = lv.layer
			rem = rem[8:]
			continue
		}
		if !bytes.Equal(lv.suffix, rem[8:]) {
			n.lock.Unlock()
			return false, nil
		}
		_ = slot
		idx.removeLeafEntry(n, pos)
		idx.count.Add(-1)
		n.lock.Unlock()
		return true, nil
	}
}

func (idx *Index) removeLeafEntry(n *node, pos int) {
	p := perm(n.perm.Load())
	n.perm.Store(uint64(p.removeAt(pos)))
	idx.heap.Dirty(n.pm, offPerm, 8)
	// RECIPE: flush + fence after the committing permutation store.
	idx.heap.PersistFence(n.pm, offPerm, 8)
	idx.heap.CrashPoint("mt.delete.commit")
}

// Scan visits keys >= start in ascending order, calling fn until it
// returns false or count keys were visited (count <= 0 = unbounded).
// Within a layer it walks the leaf sibling chain; layer links recurse.
func (idx *Index) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	visited := 0
	emit := func(k []byte, v uint64) bool {
		if bytes.Compare(k, start) < 0 {
			return true
		}
		if !fn(k, v) {
			return false
		}
		visited++
		return count <= 0 || visited < count
	}
	idx.scanLayer(idx.layer0, nil, start, emit)
	return visited
}

// scanLayer walks one layer from the leaf covering layerStart (nil =
// leftmost); prefix holds the key bytes consumed by outer layers.
func (idx *Index) scanLayer(lr *layerRoot, prefix, layerStart []byte, emit func([]byte, uint64) bool) bool {
	var startSlice uint64
	if len(layerStart) > 0 {
		startSlice, _ = sliceOf(layerStart)
	}
	n := idx.findLeaf(lr, startSlice)
	var sliceBytes [8]byte
	for n != nil {
		idx.heap.Load(n.pm, 0, nodeBytes)
		p := perm(n.perm.Load())
		highSet := n.highSet.Load()
		high := n.high.Load()
		for i := 0; i < p.count(); i++ {
			slot := p.slot(i)
			s := n.slices[slot].Load()
			if highSet && s >= high {
				break // stale duplicates beyond a split boundary
			}
			lc := int(n.lens[slot].Load())
			lv := n.vals[slot].Load()
			if lv == nil || lv.slice != s || lv.lenclass != lc {
				continue
			}
			binary.BigEndian.PutUint64(sliceBytes[:], s)
			switch {
			case lc < suffixClass:
				key := append(append([]byte(nil), prefix...), sliceBytes[:lc]...)
				if !emit(key, lv.value) {
					return false
				}
			case lv.layer != nil:
				sub := append(append([]byte(nil), prefix...), sliceBytes[:]...)
				var subStart []byte
				if len(layerStart) > 8 {
					ss, _ := sliceOf(layerStart)
					if ss == s {
						subStart = layerStart[8:]
					}
				}
				if !idx.scanLayer(lv.layer, sub, subStart, emit) {
					return false
				}
			default:
				key := append(append(append([]byte(nil), prefix...), sliceBytes[:]...), lv.suffix...)
				if !emit(key, lv.value) {
					return false
				}
			}
		}
		n = n.next.Load()
	}
	return true
}
