package masstree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func newIdx() *Index { return New(pmem.NewFast()) }

func k64(v uint64) []byte { return keys.EncodeUint64(v) }

func mustInsert(t testing.TB, idx *Index, key []byte, v uint64) {
	t.Helper()
	if err := idx.Insert(key, v); err != nil {
		t.Fatalf("Insert(%x): %v", key, err)
	}
}

func TestPermutation(t *testing.T) {
	p := emptyPerm()
	if p.count() != 0 {
		t.Fatal("empty perm count != 0")
	}
	// Insert slots at positions and verify ordering bookkeeping.
	p, s0 := p.insertAt(0)
	p, s1 := p.insertAt(0) // before s0
	p, s2 := p.insertAt(2) // after both
	if p.count() != 3 {
		t.Fatalf("count = %d", p.count())
	}
	if p.slot(0) != s1 || p.slot(1) != s0 || p.slot(2) != s2 {
		t.Fatalf("order %d,%d,%d want %d,%d,%d", p.slot(0), p.slot(1), p.slot(2), s1, s0, s2)
	}
	// Remove the middle entry.
	p = p.removeAt(1)
	if p.count() != 2 || p.slot(0) != s1 || p.slot(1) != s2 {
		t.Fatalf("after remove: count %d order %d,%d", p.count(), p.slot(0), p.slot(1))
	}
	// The freed slot is reusable.
	p, s3 := p.insertAt(2)
	if s3 != s0 {
		t.Fatalf("freed slot not reused: got %d want %d", s3, s0)
	}
}

// Property: any sequence of permutation inserts keeps slots a valid
// permutation of 0..14.
func TestQuickPermutationValid(t *testing.T) {
	f := func(positions []uint8) bool {
		p := emptyPerm()
		for _, raw := range positions {
			if p.count() == Fanout {
				break
			}
			pos := int(raw) % (p.count() + 1)
			p, _ = p.insertAt(pos)
		}
		seen := make(map[int]bool)
		for i := 0; i < Fanout; i++ {
			s := p.slot(i)
			if s < 0 || s >= Fanout || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateKeepsFreeList(t *testing.T) {
	p := emptyPerm()
	for i := 0; i < Fanout; i++ {
		p, _ = p.insertAt(i)
	}
	p = p.truncate(7)
	if p.count() != 7 {
		t.Fatalf("count = %d", p.count())
	}
	// Slots 7..14 become free and reusable.
	for i := 0; i < 8; i++ {
		var s int
		p, s = p.insertAt(p.count())
		if s < 0 || s >= Fanout {
			t.Fatalf("bad freed slot %d", s)
		}
	}
}

func TestBasic(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 10)
	if v, ok := idx.Lookup(k64(1)); !ok || v != 10 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := idx.Lookup(k64(2)); ok {
		t.Fatal("phantom")
	}
	if err := idx.Insert(nil, 1); err != ErrEmptyKey {
		t.Fatalf("empty key err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	mustInsert(t, idx, k64(1), 2)
	if v, _ := idx.Lookup(k64(1)); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestShortKeysSameSlicePrefix(t *testing.T) {
	idx := newIdx()
	// "a", "ab", "abc" share a padded slice; lenclass disambiguates.
	ks := [][]byte{[]byte("a"), []byte("ab"), []byte("abc"), []byte("abcdefgh")}
	for i, k := range ks {
		mustInsert(t, idx, k, uint64(i))
	}
	for i, k := range ks {
		if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%q) = %d,%v", k, v, ok)
		}
	}
}

func TestLongKeysLayerCreation(t *testing.T) {
	idx := newIdx()
	// Shared 8-byte slices force suffix entries and layer creation.
	ks := [][]byte{
		[]byte("prefix00-suffix-A"),
		[]byte("prefix00-suffix-B"),
		[]byte("prefix00-other"),
		[]byte("prefix00"),
		[]byte("prefix00-suffix-A-longer-tail"),
	}
	for i, k := range ks {
		mustInsert(t, idx, k, uint64(i))
	}
	for i, k := range ks {
		if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%q) = %d,%v", k, v, ok)
		}
	}
	if _, ok := idx.Lookup([]byte("prefix00-suffix-C")); ok {
		t.Fatal("phantom suffix key")
	}
	if idx.Len() != len(ks) {
		t.Fatalf("Len = %d want %d", idx.Len(), len(ks))
	}
}

func TestDeepLayerChain(t *testing.T) {
	idx := newIdx()
	// Two 60-byte keys diverging only in the last byte exercise chained
	// intermediate layers.
	base := make([]byte, 60)
	for i := range base {
		base[i] = 'x'
	}
	k1 := append(append([]byte(nil), base...), '1')
	k2 := append(append([]byte(nil), base...), '2')
	mustInsert(t, idx, k1, 1)
	mustInsert(t, idx, k2, 2)
	if v, ok := idx.Lookup(k1); !ok || v != 1 {
		t.Fatalf("k1 = %d,%v", v, ok)
	}
	if v, ok := idx.Lookup(k2); !ok || v != 2 {
		t.Fatalf("k2 = %d,%v", v, ok)
	}
	// Updating a deep key still works.
	mustInsert(t, idx, k1, 11)
	if v, _ := idx.Lookup(k1); v != 11 {
		t.Fatal("deep update failed")
	}
}

func TestSplitsManyIntKeys(t *testing.T) {
	idx := newIdx()
	const n = 30000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(k64(keys.Mix64(i))); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestStringKeys(t *testing.T) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.YCSBString)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, gen.Key(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(gen.Key(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 2000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < 2000; i += 2 {
		del, err := idx.Delete(k64(i))
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", i, del, err)
		}
	}
	if del, _ := idx.Delete(k64(0)); del {
		t.Fatal("double delete")
	}
	for i := uint64(0); i < 2000; i++ {
		_, ok := idx.Lookup(k64(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted %d present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("survivor %d missing", i)
		}
	}
}

func TestDeleteSuffixAndLayerKeys(t *testing.T) {
	idx := newIdx()
	k1 := []byte("prefix00-suffix-A")
	k2 := []byte("prefix00-suffix-B")
	mustInsert(t, idx, k1, 1)
	mustInsert(t, idx, k2, 2)
	if del, err := idx.Delete(k1); err != nil || !del {
		t.Fatalf("delete layered key = %v,%v", del, err)
	}
	if _, ok := idx.Lookup(k1); ok {
		t.Fatal("deleted key present")
	}
	if v, ok := idx.Lookup(k2); !ok || v != 2 {
		t.Fatal("sibling layer key lost")
	}
}

func TestScanOrdered(t *testing.T) {
	idx := newIdx()
	var want []uint64
	for i := 0; i < 5000; i++ {
		v := keys.Mix64(uint64(i))
		mustInsert(t, idx, k64(v), v)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestScanAcrossLayers(t *testing.T) {
	idx := newIdx()
	ks := []string{
		"prefix00-aaa", "prefix00-bbb", "prefix00-ccc",
		"prefix01-aaa", "prefix02", "aaa", "zzz",
	}
	for i, k := range ks {
		mustInsert(t, idx, []byte(k), uint64(i))
	}
	sorted := append([]string(nil), ks...)
	sort.Strings(sorted)
	var got []string
	idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(sorted) {
		t.Fatalf("scan count %d want %d (%q)", len(got), len(sorted), got)
	}
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("order[%d] = %q want %q", i, got[i], sorted[i])
		}
	}
	// Bounded range scan from the middle.
	var bounded []string
	n := idx.Scan([]byte("prefix00-b"), 3, func(k []byte, v uint64) bool {
		bounded = append(bounded, string(k))
		return true
	})
	if n != 3 || bounded[0] != "prefix00-bbb" || bounded[1] != "prefix00-ccc" || bounded[2] != "prefix01-aaa" {
		t.Fatalf("bounded scan = %q", bounded)
	}
}

func TestOracleRandomStrings(t *testing.T) {
	idx := newIdx()
	oracle := make(map[string]uint64)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%04d-%s", rng.Intn(800), []string{"", "long-shared-suffix-tail"}[rng.Intn(2)])
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			mustInsert(t, idx, []byte(k), v)
			oracle[k] = v
		case 2:
			if _, err := idx.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := idx.Lookup([]byte(k))
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%q) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	if idx.Len() != len(oracle) {
		t.Fatalf("Len = %d oracle %d", idx.Len(), len(oracle))
	}
	for k, ov := range oracle {
		if v, ok := idx.Lookup([]byte(k)); !ok || v != ov {
			t.Fatalf("final Lookup(%q) = %d,%v want %d", k, v, ok, ov)
		}
	}
}

// Property: scans are sorted and complete for random int-key sets.
func TestQuickScanSorted(t *testing.T) {
	f := func(vals []uint64) bool {
		idx := newIdx()
		set := make(map[uint64]bool)
		for _, v := range vals {
			if idx.Insert(k64(v), v) != nil {
				return false
			}
			set[v] = true
		}
		var got []uint64
		idx.Scan(nil, 0, func(k []byte, v uint64) bool {
			got = append(got, keys.DecodeUint64(k))
			return true
		})
		if len(got) != len(set) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.YCSBString)
	const threads = 8
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				if err := idx.Insert(gen.Key(id), id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if v, ok := idx.Lookup(gen.Key(id)); !ok || v != id {
					t.Errorf("readback %d = %d,%v", id, v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx.Len() != threads*per {
		t.Fatalf("Len = %d want %d", idx.Len(), threads*per)
	}
	for id := uint64(0); id < threads*per; id += 211 {
		if v, ok := idx.Lookup(gen.Key(id)); !ok || v != id {
			t.Fatalf("final lookup %d = %d,%v", id, v, ok)
		}
	}
}

func TestConcurrentReadersScanners(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 3000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % 3000
				if v, ok := idx.Lookup(k64(k)); ok && v != k {
					t.Errorf("reader saw %d for %d", v, k)
					return
				}
				i++
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			idx.Scan(k64(1000), 200, func([]byte, uint64) bool { return true })
		}
	}()
	for i := uint64(3000); i < 9000; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	close(stop)
	wg.Wait()
}

// §5 crash testing: enumerate crash states during write-heavy load.
func TestCrashRecoveryEnumerated(t *testing.T) {
	gen := keys.NewGenerator(keys.YCSBString)
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := New(heap)
		heap.SetInjector(crash.NewNth(n))
		committed := make(map[uint64]uint64)
		crashed := false
		for i := uint64(0); i < 400; i++ {
			err := idx.Insert(gen.Key(i), i)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[i] = i
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		idx.Recover()
		for id, v := range committed {
			got, ok := idx.Lookup(gen.Key(id))
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, id, got, ok)
			}
		}
		// Post-crash writes must succeed and trigger split replay where
		// needed.
		for id := uint64(50000); id < 50100; id++ {
			if err := idx.Insert(gen.Key(id), id); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
		}
		if n > 20000 {
			t.Fatal("enumeration did not terminate")
		}
	}
}

// Crash between the two split steps (sibling linked, permutation not yet
// truncated): readers tolerate the duplicates; the next split of the node
// replays the completion under try-lock (§6.5).
func TestCrashBetweenSplitSteps(t *testing.T) {
	heap := pmem.NewFast()
	idx := New(heap)
	heap.SetInjector(crash.NewAtSite("mt.split.linked", 1))
	committed := make(map[uint64]uint64)
	for i := uint64(0); i < 5000; i++ {
		k := keys.Mix64(i)
		err := idx.Insert(k64(k), i)
		if crash.IsCrash(err) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		committed[k] = i
	}
	heap.SetInjector(nil)
	idx.Recover()
	for k, v := range committed {
		if got, ok := idx.Lookup(k64(k)); !ok || got != v {
			t.Fatalf("committed key %d lost after torn split (%d,%v)", k, got, ok)
		}
	}
	// Post-crash writes fill the node again and replay the split.
	for i := uint64(60000); i < 63000; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
	}
	for k, v := range committed {
		if got, ok := idx.Lookup(k64(k)); !ok || got != v {
			t.Fatalf("key %d lost after replay (%d,%v)", k, got, ok)
		}
	}
}

func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := New(heap)
	gen := keys.NewGenerator(keys.YCSBString)
	for i := uint64(0); i < 600; i++ {
		mustInsert(t, idx, gen.Key(i), i)
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", i, v)
		}
	}
	for i := uint64(0); i < 600; i += 3 {
		if _, err := idx.Delete(gen.Key(i)); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("delete %d left unpersisted lines: %v", i, v)
		}
	}
}

func BenchmarkInsertString(b *testing.B) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.YCSBString)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupString(b *testing.B) {
	idx := newIdx()
	gen := keys.NewGenerator(keys.YCSBString)
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		if err := idx.Insert(gen.Key(i), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := idx.Lookup(gen.Key(uint64(i) % n)); !ok {
			b.Fatal("miss")
		}
	}
}
