package pmem

import "testing"

// TestGroupFenceCoalescing: B single-fence "operations" inside a group
// issue exactly one real fence (the closing barrier), and every
// trailing fence is accounted as elided.
func TestGroupFenceCoalescing(t *testing.T) {
	h := NewFast()
	defer h.Release()
	const B = 8
	objs := make([]Obj, B)
	for i := range objs {
		objs[i] = h.Alloc(64)
	}
	h.BeginFenceGroup()
	for _, o := range objs {
		h.Persist(o, 0, 8)
		h.Fence()
		h.GroupOpBoundary()
	}
	h.EndFenceGroup()
	s := h.Stats()
	if s.Fence != 1 {
		t.Errorf("fences = %d, want 1 (the barrier)", s.Fence)
	}
	if s.Clwb != B {
		t.Errorf("clwb = %d, want %d (coverage untouched)", s.Clwb, B)
	}
	if h.ElidedFences() != B {
		t.Errorf("elided = %d, want %d", h.ElidedFences(), B)
	}
}

// TestGroupIntraOpFenceMaterialises: a fence followed by another
// Persist within the same op is an ordering fence, not a trailing one —
// it must retire for real before the next write-back.
func TestGroupIntraOpFenceMaterialises(t *testing.T) {
	h := NewFast()
	defer h.Release()
	node, slot := h.Alloc(64), h.Alloc(64)
	h.BeginFenceGroup()
	h.Persist(node, 0, 64) // build the node
	h.Fence()              // ordering fence: node before pointer
	h.Persist(slot, 0, 8)  // install the pointer — must materialise the fence
	if got := h.Stats().Fence; got != 1 {
		t.Errorf("fences after install = %d, want 1 (materialised ordering fence)", got)
	}
	h.Fence() // trailing fence
	h.GroupOpBoundary()
	h.EndFenceGroup()
	if got := h.Stats().Fence; got != 2 {
		t.Errorf("fences = %d, want 2 (ordering + barrier)", got)
	}
	if h.ElidedFences() != 1 {
		t.Errorf("elided = %d, want 1 (the trailing fence)", h.ElidedFences())
	}
}

// TestGroupTrackerIntegration: inside a group, op boundaries leave the
// elided commit lines pending (clwb'd, unfenced); the barrier clears
// them, and an abort leaves them for the power-failure model to see.
func TestGroupTrackerIntegration(t *testing.T) {
	h := New(Options{Track: true})
	defer h.Release()
	o := h.Alloc(64)
	h.PersistFence(o, 0, 64) // settle the allocation

	h.BeginFenceGroup()
	h.Dirty(o, 0, 8)
	h.Persist(o, 0, 8)
	h.Fence()
	h.GroupOpBoundary()
	if v := h.Tracker().Check(); len(v) != 1 || v[0].Kind != "pending" {
		t.Fatalf("mid-group violations = %v, want one pending line", v)
	}
	h.EndFenceGroup()
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("post-barrier violations = %v, want none", v)
	}

	// Abort path: the unfenced line must stay visible as pending.
	h.BeginFenceGroup()
	h.Dirty(o, 8, 8)
	h.Persist(o, 8, 8)
	h.Fence()
	h.GroupOpBoundary()
	h.AbortFenceGroup()
	if v := h.Tracker().Check(); len(v) != 1 || v[0].Kind != "pending" {
		t.Fatalf("post-abort violations = %v, want one pending line", v)
	}
}

// TestGroupShadowPromotion: unfenced batched lines revert under
// PolicyRevert after an aborted group, and survive once the barrier
// promoted them.
func TestGroupShadowPromotion(t *testing.T) {
	type rec struct{ v uint64 }

	// Aborted group: the write was clwb'd but never fenced — revert
	// policy loses it back to the fenced baseline.
	h := New(Options{Shadow: true})
	r := &rec{v: 1}
	o := h.Alloc(64)
	h.Shadow(o, r)
	h.PersistFence(o, 0, 8) // baseline v=1 durable
	h.BeginFenceGroup()
	r.v = 2
	h.Dirty(o, 0, 8)
	h.Persist(o, 0, 8)
	h.Fence()
	h.GroupOpBoundary()
	h.AbortFenceGroup()
	h.PowerCycle(PolicyRevert, 1)
	if r.v != 1 {
		t.Errorf("aborted group: v = %d, want 1 (unfenced write lost)", r.v)
	}
	h.Release()

	// Completed group: the barrier promoted the capture — durable.
	h2 := New(Options{Shadow: true})
	defer h2.Release()
	r2 := &rec{v: 1}
	o2 := h2.Alloc(64)
	h2.Shadow(o2, r2)
	h2.PersistFence(o2, 0, 8)
	h2.BeginFenceGroup()
	r2.v = 2
	h2.Dirty(o2, 0, 8)
	h2.Persist(o2, 0, 8)
	h2.Fence()
	h2.GroupOpBoundary()
	h2.EndFenceGroup()
	h2.PowerCycle(PolicyRevert, 1)
	if r2.v != 2 {
		t.Errorf("completed group: v = %d, want 2 (barrier made it durable)", r2.v)
	}
}

// TestGroupMisuse: boundary/end outside a group and nested groups are
// programming errors and panic; abort is idempotent.
func TestGroupMisuse(t *testing.T) {
	h := NewFast()
	defer h.Release()
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("boundary outside group", h.GroupOpBoundary)
	expectPanic("end outside group", h.EndFenceGroup)
	h.BeginFenceGroup()
	expectPanic("nested begin", h.BeginFenceGroup)
	h.AbortFenceGroup()
	h.AbortFenceGroup() // idempotent
	if h.GroupActive() {
		t.Error("group still active after abort")
	}
}

// TestGroupFenceBarrierInsideGroup: an explicit barrier mid-group
// absorbs the deferred fence and keeps the group armed.
func TestGroupFenceBarrierInsideGroup(t *testing.T) {
	h := NewFast()
	defer h.Release()
	o := h.Alloc(64)
	h.BeginFenceGroup()
	h.Persist(o, 0, 8)
	h.Fence()
	h.FenceBarrier()
	if !h.GroupActive() {
		t.Fatal("barrier must not disarm the group")
	}
	h.EndFenceGroup()
	if got := h.Stats().Fence; got != 2 {
		t.Errorf("fences = %d, want 2 (explicit barrier + closing barrier)", got)
	}
	if h.ElidedFences() != 0 {
		t.Errorf("elided = %d, want 0 (the deferred fence was absorbed, not elided)", h.ElidedFences())
	}
}
