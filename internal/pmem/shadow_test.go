package pmem

import (
	"testing"
)

// node is a toy persistent struct for shadow tests: two "fields" the
// tests store to and persist independently.
type node struct {
	a, b uint64
	next *node
}

func shadowHeap() *Heap { return New(Options{Shadow: true}) }

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatalf("ParsePolicy(bogus) succeeded")
	}
}

// A stored-but-never-persisted object reverts to its durable image
// under every policy — no clwb means the line never left the cache.
func TestPowerCycleRevertsDirty(t *testing.T) {
	for _, p := range Policies {
		h := shadowHeap()
		n := &node{}
		o := h.Alloc(24)
		h.Shadow(o, n)
		n.a, n.b = 1, 2
		h.Dirty(o, 0, 16)
		h.PersistFence(o, 0, 16) // durable baseline {1, 2}

		n.a = 99
		h.Dirty(o, 0, 8) // stored, never clwb'd

		rep := h.PowerCycle(p, 1)
		if n.a != 1 || n.b != 2 {
			t.Fatalf("policy %v: got {%d,%d}, want durable {1,2}", p, n.a, n.b)
		}
		if rep.Reverted != 1 || rep.Kept != 0 || rep.ZeroFilled != 0 {
			t.Fatalf("policy %v: report %v", p, rep)
		}
		h.Release()
	}
}

// A clwb'd-but-unfenced object follows the policy: revert loses it,
// keep retains it, torn flips a seeded coin.
func TestPowerCyclePolicyOnPending(t *testing.T) {
	build := func() (*Heap, *node) {
		h := shadowHeap()
		n := &node{}
		o := h.Alloc(24)
		h.Shadow(o, n)
		n.a = 1
		h.Dirty(o, 0, 8)
		h.PersistFence(o, 0, 8) // durable baseline {1}

		n.a = 2
		h.Dirty(o, 0, 8)
		h.Persist(o, 0, 8) // clwb'd, no fence
		return h, n
	}

	h, n := build()
	rep := h.PowerCycle(PolicyRevert, 1)
	if n.a != 1 || rep.Reverted != 1 {
		t.Fatalf("revert: a=%d report=%v", n.a, rep)
	}
	h.Release()

	h, n = build()
	rep = h.PowerCycle(PolicyKeep, 1)
	if n.a != 2 || rep.Kept != 1 {
		t.Fatalf("keep: a=%d report=%v", n.a, rep)
	}
	// Kept state is durable in the post-cycle world: a second cycle with
	// no new stores must not lose it.
	rep = h.PowerCycle(PolicyRevert, 2)
	if n.a != 2 || rep.Reverted != 0 {
		t.Fatalf("keep then revert: a=%d report=%v", n.a, rep)
	}
	h.Release()

	// Torn: deterministic for a fixed seed, and both outcomes reachable
	// across seeds.
	outcomes := map[uint64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		h, n = build()
		first := h.PowerCycle(PolicyTorn, seed)
		got := n.a
		outcomes[got] = true
		h.Release()
		h, n = build()
		h.PowerCycle(PolicyTorn, seed)
		if n.a != got {
			t.Fatalf("torn seed %d not deterministic: %d then %d", seed, got, n.a)
		}
		_ = first
		h.Release()
	}
	if !outcomes[1] || !outcomes[2] {
		t.Fatalf("torn never produced both outcomes across seeds: %v", outcomes)
	}
}

// An object that was allocated and stored to but never persisted at all
// zero-fills on power loss — there is no durable image to revert to.
func TestPowerCycleZeroFillsNeverPersisted(t *testing.T) {
	h := shadowHeap()
	n := &node{a: 7, b: 8}
	o := h.Alloc(24)
	h.Shadow(o, n)
	h.Dirty(o, 0, 16)

	rep := h.PowerCycle(PolicyKeep, 1)
	if n.a != 0 || n.b != 0 {
		t.Fatalf("got {%d,%d}, want zero fill", n.a, n.b)
	}
	if rep.ZeroFilled != 1 {
		t.Fatalf("report %v, want ZeroFilled=1", rep)
	}
	h.Release()
}

// A fully durable object is untouched by any policy, and links restored
// from a durable image still point at live memory (the registry keeps
// every registered allocation alive).
func TestPowerCycleDurableUntouchedAndLinksSurvive(t *testing.T) {
	h := shadowHeap()
	child := &node{a: 42}
	oc := h.Alloc(24)
	h.Shadow(oc, child)
	h.Dirty(oc, 0, 8)
	h.PersistFence(oc, 0, 8)

	parent := &node{next: child}
	op := h.Alloc(24)
	h.Shadow(op, parent)
	h.Dirty(op, 0, 24)
	h.PersistFence(op, 0, 24) // durable: parent -> child

	// Unlink the child without persisting the unlink.
	parent.next = nil
	h.Dirty(op, 16, 8)

	rep := h.PowerCycle(PolicyRevert, 1)
	if rep.Reverted != 1 {
		t.Fatalf("report %v, want exactly the parent reverted", rep)
	}
	if parent.next != child || parent.next.a != 42 {
		t.Fatalf("durable link did not survive: next=%v", parent.next)
	}
	h.Release()
}

// Slice-backed registration: only the persisted element range is
// shadowed, and power loss is applied per element. The stride here is
// one full line so each element fails independently; elements sharing a
// line fail together, exactly as the hardware loses whole lines (see
// TestPowerCycleSliceSharedLine).
func TestPowerCycleSliceElements(t *testing.T) {
	h := shadowHeap()
	const elems = 8
	const stride = LineSize
	tab := make([]uint64, elems)
	o := h.Alloc(elems * stride)
	h.ShadowSlice(o, tab, stride)
	// Fresh allocations start dirty; persist the zeroed table once, as
	// index code does, so the durable baseline covers every element.
	h.PersistFence(o, 0, elems*stride)

	// Persist a baseline for elements 0..3 only.
	for i := 0; i < 4; i++ {
		tab[i] = uint64(i + 1)
		h.Dirty(o, uintptr(i)*stride, 8)
		h.Persist(o, uintptr(i)*stride, 8)
	}
	h.Fence()

	// Element 1: store, never clwb'd -> must revert to baseline.
	tab[1] = 100
	h.Dirty(o, 1*stride, 8)
	// Element 2: store + clwb, unfenced -> policy decides.
	tab[2] = 200
	h.Dirty(o, 2*stride, 8)
	h.Persist(o, 2*stride, 8)
	// Element 5: never persisted at all -> reverts to zero baseline.
	tab[5] = 500
	h.Dirty(o, 5*stride, 8)

	rep := h.PowerCycle(PolicyKeep, 1)
	want := []uint64{1, 2, 200, 4, 0, 0, 0, 0}
	for i, w := range want {
		if tab[i] != w {
			t.Fatalf("elem %d = %d, want %d (report %v, tab %v)", i, tab[i], w, rep, tab)
		}
	}
	if rep.Reverted != 2 || rep.Kept != 1 {
		t.Fatalf("report %v, want Reverted=2 Kept=1", rep)
	}
	h.Release()
}

// Elements that share a cache line share its fate: a clwb issued for
// one element writes back its neighbours' stores too, so a neighbour's
// unflushed store survives a keep-policy cycle — real line-granularity
// write-back, not a tracking bug.
func TestPowerCycleSliceSharedLine(t *testing.T) {
	h := shadowHeap()
	const stride = 8 // 8 elements per 64-byte line
	tab := make([]uint64, 8)
	o := h.Alloc(8 * stride)
	h.ShadowSlice(o, tab, stride)

	tab[1] = 100
	h.Dirty(o, 1*stride, 8) // store elem 1, no clwb
	tab[2] = 200
	h.Dirty(o, 2*stride, 8)
	h.Persist(o, 2*stride, 8) // clwb of the shared line writes both back

	h.PowerCycle(PolicyKeep, 1)
	if tab[1] != 100 || tab[2] != 200 {
		t.Fatalf("shared-line keep lost data: tab=%v", tab[:4])
	}
	h.Release()
}

// PowerCycle leaves the tracker clean: restart durability starts fresh.
func TestPowerCycleResetsTracker(t *testing.T) {
	h := shadowHeap()
	n := &node{}
	o := h.Alloc(24)
	h.Shadow(o, n)
	n.a = 1
	h.Dirty(o, 0, 8)

	h.PowerCycle(PolicyRevert, 1)
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("tracker not clean after cycle: %v", v)
	}
}

// Release must clear tracker and shadow state so a pooled allocator
// reused by a later heap never sees stale dirty/pending lines or shadow
// images from a previous generation.
func TestReleaseClearsTrackerState(t *testing.T) {
	h := New(Options{Shadow: true})
	n := &node{}
	o := h.Alloc(24)
	h.Shadow(o, n)
	n.a = 1
	h.Dirty(o, 0, 24)
	h.Persist(o, 0, 8) // leave both dirty and pending lines behind
	if len(h.Tracker().Check()) == 0 {
		t.Fatalf("test setup: expected outstanding violations before Release")
	}
	tr, sh := h.Tracker(), h.shadow
	h.Release()

	if v := tr.Check(); len(v) != 0 {
		t.Fatalf("tracker state leaked through Release: %v", v)
	}
	sh.mu.Lock()
	objs, queue := len(sh.objs), len(sh.queue)
	sh.mu.Unlock()
	if objs != 0 || queue != 0 {
		t.Fatalf("shadow state leaked through Release: objs=%d queue=%d", objs, queue)
	}

	// A fresh heap drawing (very likely) the same pooled allocator starts
	// with clean tracker state and an empty registry.
	h2 := New(Options{Shadow: true})
	if v := h2.Tracker().Check(); len(v) != 0 {
		t.Fatalf("fresh heap inherited tracker state: %v", v)
	}
	o2 := h2.Alloc(24)
	n2 := &node{}
	h2.Shadow(o2, n2)
	h2.shadow.mu.Lock()
	if len(h2.shadow.objs) != 1 {
		t.Fatalf("fresh heap registry polluted: %d objs", len(h2.shadow.objs))
	}
	h2.shadow.mu.Unlock()
	h2.Release()
}

// Shadow registration is a no-op on non-shadow heaps, so index code can
// call it unconditionally.
func TestShadowNoopWithoutMode(t *testing.T) {
	h := NewFast()
	o := h.Alloc(24)
	h.Shadow(o, &node{})
	h.ShadowSlice(o, make([]uint64, 4), 8)
	if h.ShadowEnabled() {
		t.Fatalf("fast heap claims shadow mode")
	}
}
