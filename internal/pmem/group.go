// Group-persistence mode: deferred-fence batching on one heap.
//
// Every converted index ends each write with a trailing commit
// sequence — clwb the commit store's line, then mfence — so a batch of
// B writes pays B trailing fences even though a single fence would
// cover them all: mfence is global, ordering every clwb issued before
// it. The group mode below coalesces exactly those trailing fences
// while leaving each operation's clwb coverage and *intra*-operation
// ordering untouched:
//
//   - BeginFenceGroup arms the mode. While armed, Fence does not fence;
//     it records that a fence is pending.
//   - Persist materialises a pending fence before writing back new
//     lines. This preserves intra-operation ordering exactly: the
//     materialised fence covers precisely the clwbs the original fence
//     would have covered, because no Persist ran in between. Ordering
//     matters even under batching — an SMO's "persist node, fence,
//     install pointer" must not collapse into one unordered group, or a
//     torn power loss could keep the pointer and lose the node.
//   - GroupOpBoundary marks the end of one operation. A fence still
//     pending there is the operation's trailing fence; the boundary
//     elides it, leaving the op's final commit stores written back but
//     unfenced. That is safe because each such store is a
//     self-contained atomic commit (an 8-byte pointer or value install
//     whose referents the intra-op fences already made durable), so any
//     subset surviving a power loss is a consistent image — and any
//     later real fence, or the group's closing barrier, covers it.
//   - EndFenceGroup disarms the mode and issues the covering barrier
//     fence (FenceBarrier). Only after it may the caller acknowledge
//     the batch: the acked-durability contract is unchanged, just
//     paid once per group.
//   - AbortFenceGroup disarms without fencing — the crash path. The
//     batched lines stay unfenced, so a PowerCycle sees them exactly as
//     a power loss mid-batch would.
//
// The savings: every op's one trailing fence is elided, so a B-op group
// of single-fence operations (in-place updates, leaf inserts without
// SMOs) issues 1 fence instead of B.
//
// Group mode is a single-writer mode per heap: between BeginFenceGroup
// and EndFenceGroup/AbortFenceGroup no other goroutine may call
// Persist, Fence, or Alloc on this heap (reads — Load, Lookup paths —
// are fine: they never touch group state). The sharded front-end
// serialises groups per shard; campaigns drive batched phases
// single-threaded, like Track and Shadow modes.
package pmem

// groupState is the heap's deferred-fence mode. Plain fields: all
// access happens on the group's single writer (callers serialise
// groups externally, e.g. the shard front-end's per-shard batch lock).
type groupState struct {
	// active reports an armed fence group.
	active bool
	// pending reports a Fence call deferred and not yet materialised or
	// elided.
	pending bool
	// elided counts trailing fences coalesced at op boundaries — the
	// fences a group saved relative to the unbatched path.
	elided uint64
}

// BeginFenceGroup arms deferred-fence mode: subsequent Fence calls are
// deferred, materialised by the next Persist (preserving intra-op
// ordering) or elided at GroupOpBoundary (the trailing commit fence).
// The group's single-writer contract is documented above. Nested
// groups are a bug and panic.
func (h *Heap) BeginFenceGroup() {
	if h.group.active {
		panic("pmem: nested fence group")
	}
	h.group.active = true
	h.group.pending = false
}

// GroupActive reports whether a fence group is armed.
func (h *Heap) GroupActive() bool { return h.group.active }

// GroupOpBoundary marks the end of one operation inside a fence group.
// A fence still pending here is the op's trailing commit fence: the
// boundary elides it, leaving the commit stores written back but
// unfenced until a later real fence or the group's closing barrier
// covers them. Calling it outside a group is a bug and panics.
func (h *Heap) GroupOpBoundary() {
	if !h.group.active {
		panic("pmem: GroupOpBoundary outside a fence group")
	}
	if h.group.pending {
		h.group.pending = false
		h.group.elided++
	}
}

// EndFenceGroup disarms deferred-fence mode and issues the covering
// barrier fence. On return every store of the group is durable; the
// caller may acknowledge the batch. Calling it outside a group is a
// bug and panics.
func (h *Heap) EndFenceGroup() {
	if !h.group.active {
		panic("pmem: EndFenceGroup outside a fence group")
	}
	h.group.active = false
	h.group.pending = false
	h.FenceBarrier()
}

// AbortFenceGroup disarms deferred-fence mode without fencing — the
// crash path out of a group. The group's unfenced lines stay unfenced,
// so a subsequent PowerCycle treats them exactly as a power loss
// mid-batch would. Idempotent: aborting with no group armed is a no-op,
// so recovery paths can call it unconditionally.
func (h *Heap) AbortFenceGroup() {
	h.group.active = false
	h.group.pending = false
}

// FenceBarrier issues a real fence immediately, even inside a fence
// group, and absorbs any deferred fence (one barrier covers both — the
// fence is global). Outside a group it is exactly Fence.
func (h *Heap) FenceBarrier() {
	h.group.pending = false
	h.fenceReal()
}

// ElidedFences returns the number of trailing fences group mode has
// coalesced on this heap — the fence savings relative to the unbatched
// path. Like Stats, it must not be read concurrently with an open
// group.
func (h *Heap) ElidedFences() uint64 { return h.group.elided }

// materialisePending issues the deferred fence, if one is pending.
// Persist calls it first, so a deferred fence always retires before any
// new write-back — the materialised fence covers exactly the clwbs the
// original would have.
func (h *Heap) materialisePending() {
	if h.group.pending {
		h.group.pending = false
		h.fenceReal()
	}
}
