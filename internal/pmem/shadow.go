// Lossy power-failure emulation: the shadow image layer behind
// Heap.PowerCycle.
//
// The §5 crash methodology (internal/crash) simulates a crash by
// unwinding an operation mid-way with every store still visible — a
// model in which a missing clwb or fence can only ever surface as a
// Tracker report, never as actual data loss. Real faulty-PM models
// (Ben-David et al., "Delay-Free Concurrency on Faulty Persistent
// Memory") define a crash as losing exactly the cache lines that were
// never written back and fenced. This file adds that stronger model.
//
// Go gives the heap no view of index node bytes: nodes are ordinary Go
// structs and the heap's Obj handles map them onto abstract line
// addresses with no byte-level correspondence (the simulated persistent
// layout is an idealised C layout, not the Go struct layout). So the
// shadow layer works at the granularity the heap can reason about — the
// allocation — and asks each index to register, next to every Alloc,
// the Go object that allocation models:
//
//   - Shadow(obj, ptr) registers a struct-backed allocation (a node).
//     Its image is one typed shallow copy of the struct.
//   - ShadowSlice(obj, slice, elemBytes) registers a slice-backed
//     allocation (a bucket array, a mapping table) together with the
//     abstract layout's element stride. Because the stride gives a real
//     offset→element correspondence, slice-backed objects are shadowed
//     per element range, not per allocation.
//
// In shadow mode every Persist captures a typed image of the covered
// object (or element range) — the content clwb wrote back — and every
// Fence promotes the images captured since the previous fence to the
// durable baseline. PowerCycle then materialises a post-power-loss
// image: objects with stores that were never written back revert to
// their durable baseline (or to the zero value if they never had one),
// and objects with written-back-but-unfenced state follow the policy.
// The images are typed copies made and restored through reflect, so
// pointers inside them stay visible to the garbage collector and
// restores go through the runtime's write barriers; the registry keeps
// every allocation ever registered alive, so a restored stale pointer
// always points at live memory.
//
// Precision: a line that is stored to but never written back is lost
// exactly when no *later* Persist of the same allocation re-captures
// it. Capturing whole objects means a missing clwb on line A can hide
// behind a later clwb+fence of line B of the same small node; the
// Tracker still reports such lines as dirty violations, and the capture
// records the taint (CycleReport.TaintedCaptures). Slice-backed
// registrations do not have this imprecision across elements outside
// the persisted range.
//
// Shadow mode is a testing mode, like Track: it serialises captures on
// one mutex and copies node images on every Persist. Campaigns drive
// the tracked phase single-threaded. PowerCycle must not run
// concurrently with index operations.
package pmem

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
)

// Policy selects what a power cycle does with lines that were written
// back (clwb) but not yet fenced at the instant of the crash. Lines
// that were stored to and never written back always revert — no policy
// can save data that never left the cache.
type Policy int

const (
	// PolicyRevert loses written-back-but-unfenced state: the adversarial
	// reading of the persistence contract (the fence had not retired, so
	// nothing it would have ordered is guaranteed).
	PolicyRevert Policy = iota
	// PolicyKeep retains written-back-but-unfenced state: the friendly
	// reading (clwb had already pushed the line to the memory controller).
	PolicyKeep
	// PolicyTorn flips a seeded coin per affected object (per element
	// range for slice-backed registrations) between revert and keep —
	// a torn image in which some unfenced lines survived and others did
	// not, the hardest image a recovery path has to face.
	PolicyTorn
)

// Policies lists all power-cycle policies, in definition order.
var Policies = []Policy{PolicyRevert, PolicyKeep, PolicyTorn}

func (p Policy) String() string {
	switch p {
	case PolicyRevert:
		return "revert"
	case PolicyKeep:
		return "keep"
	case PolicyTorn:
		return "torn"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses "revert", "keep" or "torn".
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("pmem: unknown power-cycle policy %q (want revert, keep or torn)", s)
}

// CycleReport describes what one PowerCycle did.
type CycleReport struct {
	// Policy is the policy the cycle applied.
	Policy Policy
	// Seed drove the torn policy's coin flips.
	Seed int64
	// Objects is the number of registered shadow objects (slice-backed
	// registrations count once).
	Objects int
	// Reverted counts objects (or slice element ranges) restored to
	// their durable baseline because they held never-written-back
	// stores, plus unfenced ones the policy chose to lose.
	Reverted int
	// Kept counts objects (or slice element ranges) whose
	// written-back-but-unfenced state the policy let survive.
	Kept int
	// ZeroFilled counts reverted objects that had no durable baseline at
	// all — they were allocated and stored to but never persisted, so
	// the power loss leaves them as uninitialised (zero) memory. For a
	// correctly converted index this is always 0 for reachable nodes.
	ZeroFilled int
	// TaintedCaptures counts Persist captures that included lines the
	// Tracker held dirty outside the persisted range — the whole-object
	// imprecision documented above. The Tracker reports those lines as
	// violations in their own right.
	TaintedCaptures uint64
}

func (r CycleReport) String() string {
	return fmt.Sprintf("policy=%s objs=%d reverted=%d kept=%d zeroFilled=%d tainted=%d",
		r.Policy, r.Objects, r.Reverted, r.Kept, r.ZeroFilled, r.TaintedCaptures)
}

// shadowObj is one registered allocation.
type shadowObj struct {
	obj Obj

	// Struct-backed registrations: target is the addressable registered
	// value; durable and pending are typed copies (invalid Value = none).
	target  reflect.Value
	durable reflect.Value
	pending reflect.Value

	// Slice-backed registrations: slice is the registered slice value,
	// elemBytes the abstract stride, durableS a same-length baseline
	// slice, pendingR the element ranges captured since the last fence.
	slice     reflect.Value
	elemBytes uintptr
	durableS  reflect.Value
	pendingR  []pendRange

	// queued marks the object as waiting in the fence-promotion queue.
	queued bool
}

type pendRange struct {
	lo, hi int // element indices [lo, hi)
	img    reflect.Value
}

func (s *shadowObj) isSlice() bool { return s.elemBytes != 0 }

// shadowState is a heap's shadow registry. All mutation happens under
// mu; shadow mode is a single-writer testing mode, so the lock is
// uncontended in practice.
type shadowState struct {
	mu      sync.Mutex
	objs    map[uint64]*shadowObj // keyed by Obj base line
	queue   []*shadowObj          // captured since the last fence
	tainted uint64
}

func newShadowState() *shadowState {
	return &shadowState{objs: make(map[uint64]*shadowObj)}
}

// ShadowEnabled reports whether the heap keeps shadow images
// (Options.Shadow).
func (h *Heap) ShadowEnabled() bool { return h.shadow != nil }

// Shadow registers ptr — a non-nil pointer to the Go object that
// allocation o models — as o's backing memory for lossy power-failure
// emulation. Indexes call it immediately after Alloc, before the first
// Persist of the object; it is a nil-check no-op unless the heap was
// built with Options.Shadow. The registry keeps ptr's target alive for
// the life of the heap, so restoring a stale image can never resurrect
// a collected pointer.
func (h *Heap) Shadow(o Obj, ptr any) {
	if h.shadow == nil || !o.Valid() {
		return
	}
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		panic("pmem: Shadow needs a non-nil pointer")
	}
	s := h.shadow
	s.mu.Lock()
	s.objs[o.base] = &shadowObj{obj: o, target: v.Elem()}
	s.mu.Unlock()
}

// ShadowSlice registers slice — the Go slice that allocation o models,
// laid out at elemBytes abstract bytes per element — for lossy
// power-failure emulation. Because the stride ties abstract offsets to
// elements, slice-backed objects are captured and restored per element
// range: a Persist of [off, off+size) shadows exactly the elements it
// covers. The durable baseline starts as the zero value of every
// element, matching Alloc's lines-start-dirty contract.
func (h *Heap) ShadowSlice(o Obj, slice any, elemBytes uintptr) {
	if h.shadow == nil || !o.Valid() {
		return
	}
	v := reflect.ValueOf(slice)
	if v.Kind() != reflect.Slice {
		panic("pmem: ShadowSlice needs a slice")
	}
	if elemBytes == 0 {
		panic("pmem: ShadowSlice needs a non-zero element stride")
	}
	base := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
	s := h.shadow
	s.mu.Lock()
	s.objs[o.base] = &shadowObj{obj: o, slice: v, elemBytes: elemBytes, durableS: base}
	s.mu.Unlock()
}

// capture records the image clwb wrote back: the registered object's
// content (or, for slice-backed objects, the persisted element range's
// content) at the instant of the Persist call. Promotion to the durable
// baseline happens at the next Fence.
func (s *shadowState) capture(o Obj, off, size uintptr, t *Tracker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	so, ok := s.objs[o.base]
	if !ok {
		return
	}
	if t != nil && s.captureTainted(so, o, off, size, t) {
		s.tainted++
	}
	if so.isSlice() {
		lo, hi := so.elemRange(off, size)
		if hi > lo {
			img := reflect.MakeSlice(so.slice.Type(), hi-lo, hi-lo)
			reflect.Copy(img, so.slice.Slice(lo, hi))
			so.pendingR = append(so.pendingR, pendRange{lo: lo, hi: hi, img: img})
		}
	} else {
		if !so.pending.IsValid() {
			so.pending = reflect.New(so.target.Type()).Elem()
		}
		so.pending.Set(so.target)
	}
	if !so.queued {
		so.queued = true
		s.queue = append(s.queue, so)
	}
}

// captureTainted reports whether the capture includes lines the tracker
// holds dirty outside the persisted range — for struct-backed objects,
// whose image is the whole object.
func (s *shadowState) captureTainted(so *shadowObj, o Obj, off, size uintptr, t *Tracker) bool {
	if so.isSlice() {
		return false // slice captures cover exactly the persisted range
	}
	first, last := o.line(off), o.line(off+size-1)
	for l := o.base; l < o.base+uint64(o.lines); l++ {
		if l >= first && l <= last {
			continue
		}
		sh := t.shard(l)
		sh.mu.Lock()
		d := sh.dirty[l]
		sh.mu.Unlock()
		if d {
			return true
		}
	}
	return false
}

// elemRange maps an abstract byte range of the allocation to the slice
// elements it covers, clamped to the slice length.
func (so *shadowObj) elemRange(off, size uintptr) (lo, hi int) {
	lo = int(off / so.elemBytes)
	hi = int((off + size + so.elemBytes - 1) / so.elemBytes)
	if n := so.slice.Len(); hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// promote makes every image captured since the previous fence the
// durable baseline — the clwb'd content is now guaranteed on media.
func (s *shadowState) promote() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, so := range s.queue {
		if so.isSlice() {
			for _, p := range so.pendingR {
				reflect.Copy(so.durableS.Slice(p.lo, p.hi), p.img)
			}
			so.pendingR = so.pendingR[:0]
		} else {
			if !so.durable.IsValid() {
				so.durable = reflect.New(so.target.Type()).Elem()
			}
			so.durable.Set(so.pending)
		}
		so.queued = false
	}
	s.queue = s.queue[:0]
}

// lineBits is the snapshot of one tracked line's state at cycle time.
type lineBits struct{ dirty, pending bool }

// snapshotLines drains the tracker into a flat map of the lines that
// are not durable at this instant. The set is small — fences clear
// pending lines and flushes clear dirty ones, so only the crashed
// operation's working set remains — which makes the power cycle
// proportional to the damage, not to the heap size.
func snapshotLines(t *Tracker) map[uint64]lineBits {
	lines := make(map[uint64]lineBits)
	if t == nil {
		return lines
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for l := range sh.dirty {
			b := lines[l]
			b.dirty = true
			lines[l] = b
		}
		for l := range sh.pending {
			b := lines[l]
			b.pending = true
			lines[l] = b
		}
		sh.mu.Unlock()
	}
	return lines
}

// state folds the snapshot over a line range.
func rangeState(lines map[uint64]lineBits, first, last uint64) (dirty, pending bool) {
	for l := first; l <= last; l++ {
		b := lines[l]
		dirty = dirty || b.dirty
		pending = pending || b.pending
		if dirty {
			// anyDirty dominates the classification; pending no longer
			// matters to the caller.
			return true, pending
		}
	}
	return dirty, pending
}

// decide resolves the fate of non-durable state: never-written-back
// stores are always lost; written-back-but-unfenced state follows the
// policy.
func decide(dirty bool, policy Policy, rng *rand.Rand) (lose bool) {
	if dirty {
		return true
	}
	switch policy {
	case PolicyKeep:
		return false
	case PolicyTorn:
		return rng.Intn(2) == 0
	default: // PolicyRevert
		return true
	}
}

// PowerCycle materialises a true post-power-loss image of every
// registered shadow object and resets the durability tracker to the
// clean post-restart state. State that was stored but never written
// back reverts to the durable baseline under every policy; state that
// was written back but not fenced reverts, survives, or is torn
// per-object (per element for slice-backed registrations) according to
// policy. The torn coin flips are driven by seed alone, so a cycle is
// deterministic for a fixed seed and operation history. It must not be
// called concurrently with index operations; the caller runs the
// index's Recover afterwards, exactly as a restart would.
func (h *Heap) PowerCycle(policy Policy, seed int64) CycleReport {
	if h.shadow == nil {
		panic("pmem: PowerCycle requires a heap with Options.Shadow")
	}
	// A power loss ends any fence group mid-batch: the group's unfenced
	// lines are already in the tracker's pending/dirty sets and get
	// classified below; the mode itself does not survive the restart.
	h.AbortFenceGroup()
	s := h.shadow
	rng := rand.New(rand.NewSource(seed))
	rep := CycleReport{Policy: policy, Seed: seed}
	lines := snapshotLines(h.tracker)

	s.mu.Lock()
	rep.Objects = len(s.objs)
	rep.TaintedCaptures = s.tainted

	// Map the affected lines back to their owning objects so the cycle
	// only touches what the crash actually left in flight. Objects are
	// processed in base-address order for deterministic torn flips.
	bases := make([]uint64, 0, len(s.objs))
	for b := range s.objs {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	hit := make(map[uint64]bool)
	for l := range lines {
		// Owning object: the registration with the largest base ≤ l that
		// still spans l. Lines of unregistered allocations are skipped.
		i := sort.Search(len(bases), func(i int) bool { return bases[i] > l }) - 1
		if i < 0 {
			continue
		}
		if so := s.objs[bases[i]]; l < so.obj.base+uint64(so.obj.lines) {
			hit[bases[i]] = true
		}
	}
	for _, b := range bases {
		if !hit[b] {
			continue
		}
		so := s.objs[b]
		if so.isSlice() {
			h.cycleSlice(so, policy, rng, lines, &rep)
		} else {
			h.cycleStruct(so, policy, rng, lines, &rep)
		}
	}
	// Clear capture state everywhere: post-restart there is nothing
	// in flight.
	for _, so := range s.queue {
		so.pending = reflect.Value{}
		so.pendingR = so.pendingR[:0]
		so.queued = false
	}
	s.queue = s.queue[:0]
	s.mu.Unlock()

	// The restored image is, by construction, durable: restart leaves
	// nothing dirty or pending.
	if h.tracker != nil {
		h.tracker.Reset()
	}
	return rep
}

// cycleStruct applies the power-loss decision to one struct-backed
// object that the snapshot marked as affected.
func (h *Heap) cycleStruct(so *shadowObj, policy Policy, rng *rand.Rand, lines map[uint64]lineBits, rep *CycleReport) {
	dirty, pending := rangeState(lines, so.obj.base, so.obj.base+uint64(so.obj.lines)-1)
	if !dirty && !pending {
		return // fully durable: the current content is the PM content
	}
	if !decide(dirty, policy, rng) {
		// The unfenced write-back survived the power loss; it is durable
		// in the post-cycle world.
		rep.Kept++
		if !so.durable.IsValid() {
			so.durable = reflect.New(so.target.Type()).Elem()
		}
		so.durable.Set(so.target)
		return
	}
	rep.Reverted++
	if so.durable.IsValid() {
		so.target.Set(so.durable)
	} else {
		// Never persisted at all: power loss leaves uninitialised memory,
		// modelled as the zero value.
		rep.ZeroFilled++
		so.target.Set(reflect.Zero(so.target.Type()))
	}
}

// cycleSlice applies the power-loss decision per affected element of
// one slice-backed object. An element's fate is decided over all the
// lines it spans; elements sharing a line share those lines' state,
// exactly as the hardware loses whole lines.
func (h *Heap) cycleSlice(so *shadowObj, policy Policy, rng *rand.Rand, lines map[uint64]lineBits, rep *CycleReport) {
	// Affected elements: those overlapping any affected line of this
	// object, in ascending order for deterministic torn flips.
	maxLine := so.obj.base + uint64(so.obj.lines) - 1
	elems := make(map[int]bool)
	for l := range lines {
		if l < so.obj.base || l > maxLine {
			continue
		}
		off := uintptr(l-so.obj.base) * LineSize
		lo, hi := so.elemRange(off, LineSize)
		for e := lo; e < hi; e++ {
			elems[e] = true
		}
	}
	order := make([]int, 0, len(elems))
	for e := range elems {
		order = append(order, e)
	}
	sort.Ints(order)
	for _, e := range order {
		lo := uintptr(e) * so.elemBytes
		first, last := so.obj.line(lo), so.obj.line(lo+so.elemBytes-1)
		if last > maxLine {
			last = maxLine
		}
		dirty, pending := rangeState(lines, first, last)
		if !dirty && !pending {
			continue
		}
		if !decide(dirty, policy, rng) {
			rep.Kept++
			reflect.Copy(so.durableS.Slice(e, e+1), so.slice.Slice(e, e+1))
			continue
		}
		rep.Reverted++
		reflect.Copy(so.slice.Slice(e, e+1), so.durableS.Slice(e, e+1))
	}
}
