// Package pmem simulates the persistent-memory substrate that RECIPE's
// converted indexes run on.
//
// On real hardware (Intel Optane DC PMM) a converted index guarantees
// crash consistency by ordering stores with mfence and writing dirty cache
// lines back with clwb. Portable Go exposes neither instruction, so this
// package provides a simulated heap with the same programming model:
//
//   - Alloc registers a persistent object and returns a handle (Obj) that
//     maps the object's bytes onto abstract 64-byte cache lines.
//   - Persist(obj, off, size) stands in for one clwb per dirtied line.
//   - Fence stands in for mfence/sfence.
//   - Dirty and Load report stores and loads for the durability checker
//     (the analogue of the paper's PIN tracing, §5) and for the LLC
//     simulator used to reproduce the paper's cache-miss counters.
//
// The heap counts clwb/fence/allocation events (Fig 4c, 4d, Table 4) and
// optionally charges a configurable busy-wait latency per clwb and fence
// so that flush-heavy indexes pay a throughput penalty, mimicking the
// asymmetric cost of persistence on Optane. Crash points (§5) are routed
// to a crash.Injector.
//
// Because every index operation passes through the heap, its counters are
// the hottest shared state in the whole benchmark. They are striped
// (internal/stripe) so the zero-options fast heap performs no shared-line
// atomics on the hot path: counter adds go to per-shard padded cells and
// line allocation bump-allocates from per-shard chunks. Stats aggregates
// lazily and is exact. Options.SharedAtomics selects the pre-striping
// reference implementation for ablation benchmarks (see DESIGN.md and
// BenchmarkHeapScaling).
package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cachesim"
	"repro/internal/crash"
	"repro/internal/stripe"
)

// LineSize is the simulated cache-line size in bytes.
const LineSize = cachesim.LineSize

// Obj is a handle to a persistent allocation. The zero value is not a
// valid allocation; nodes obtain one from Heap.Alloc. Obj maps byte
// offsets within the object to global abstract line addresses.
type Obj struct {
	base  uint64 // first line address
	lines uint32 // number of lines spanned
}

// Valid reports whether the handle came from an allocation.
func (o Obj) Valid() bool { return o.lines != 0 }

// Lines returns the number of cache lines the allocation spans.
func (o Obj) Lines() int { return int(o.lines) }

func (o Obj) line(off uintptr) uint64 { return o.base + uint64(off/LineSize) }

// Options configures a Heap.
type Options struct {
	// Track enables the durability shadow tracker (slow; testing only).
	Track bool
	// LLC, when non-nil, routes every reported load/store/flush through a
	// simulated last-level cache.
	LLC *cachesim.Cache
	// Injector, when non-nil, is consulted at every crash point.
	Injector *crash.Injector
	// DelayClwb and DelayFence are busy-wait iterations charged per clwb
	// and per fence, approximating Optane write-back latency. Zero means
	// free (unit tests); benchmark harnesses set them.
	DelayClwb  int
	DelayFence int
	// SharedAtomics selects the pre-striping reference instrumentation:
	// five shared atomic counters on adjacent cache lines, ping-ponged by
	// every thread. It exists as the ablation baseline for
	// BenchmarkHeapScaling and `cmd/counters -selftest`; leave it false
	// for real runs.
	SharedAtomics bool
	// Shadow enables lossy power-failure emulation (shadow.go): the heap
	// keeps typed shadow images of every registered allocation so that
	// PowerCycle can materialise a true post-power-loss state. Shadow
	// implies Track — the cycle classifies allocations by the tracker's
	// dirty/pending line state. Slow; testing only, single writer during
	// tracked phases.
	Shadow bool
}

// Heap is a simulated persistent-memory pool. It is safe for concurrent
// use. A Heap with zero-valued Options has negligible overhead: Persist
// and Fence touch only shard-private padded counter cells, Alloc
// bump-allocates from a shard-private chunk, and Dirty and Load are a
// nil check.
type Heap struct {
	// Striped instrumentation (the default).
	lines  *stripe.Allocator
	clwb   *stripe.Counter
	fence  *stripe.Counter
	allocs *stripe.Counter
	bytes  *stripe.Counter

	// Shared-atomics reference instrumentation (Options.SharedAtomics):
	// the pre-striping layout, kept in-tree as the ablation baseline.
	shared    bool
	sNextLine atomic.Uint64
	sClwb     atomic.Uint64
	sFence    atomic.Uint64
	sAllocs   atomic.Uint64
	sBytes    atomic.Uint64

	llc        *cachesim.Cache
	tracker    *Tracker
	shadow     *shadowState
	inj        *crash.Injector
	delayClwb  int
	delayFence int

	// group is the deferred-fence batching mode (group.go). Zero value =
	// inactive; Persist and Fence check it with one predictable branch.
	group groupState
}

// New returns a heap configured by opts.
func New(opts Options) *Heap {
	h := &Heap{
		shared:     opts.SharedAtomics,
		llc:        opts.LLC,
		inj:        opts.Injector,
		delayClwb:  opts.DelayClwb,
		delayFence: opts.DelayFence,
	}
	// Line address 0 is reserved so Obj{} is detectably invalid.
	if h.shared {
		h.sNextLine.Store(1)
	} else {
		h.lines = newLineAllocator()
		h.clwb = stripe.NewCounter()
		h.fence = stripe.NewCounter()
		h.allocs = stripe.NewCounter()
		h.bytes = stripe.NewCounter()
	}
	if opts.Track || opts.Shadow {
		h.tracker = newTracker()
	}
	if opts.Shadow {
		h.shadow = newShadowState()
	}
	return h
}

// allocPool recycles line allocators across heap generations. Campaigns
// that churn thousands of short-lived heaps (one per crash state or
// crash site) would otherwise build a fresh allocator each time and
// abandon its reserved address space; recycling caps the process's
// simulated address-space footprint at the peak number of live heaps.
var allocPool struct {
	mu   sync.Mutex
	free []*stripe.Allocator
}

// maxPooledAllocators bounds the pool; releases beyond it fall through
// to the garbage collector, exactly as every heap did before pooling.
const maxPooledAllocators = 64

func newLineAllocator() *stripe.Allocator {
	allocPool.mu.Lock()
	if n := len(allocPool.free); n > 0 {
		a := allocPool.free[n-1]
		allocPool.free = allocPool.free[:n-1]
		allocPool.mu.Unlock()
		return a
	}
	allocPool.mu.Unlock()
	return stripe.NewAllocator(1, stripe.DefaultChunkLines)
}

// Release retires the heap and recycles its line allocator — and with
// it the heap's whole simulated address space — into the process-wide
// pool that New draws from. The caller must have dropped every index
// built on the heap: after Release the heap (and any Obj it handed out)
// must not be used, and further Alloc calls panic. Releasing a
// shared-atomics ablation heap or releasing twice is a no-op.
func (h *Heap) Release() {
	if h.shared || h.lines == nil {
		return
	}
	// Drop per-heap testing state so nothing stale (dirty/pending lines,
	// shadow images pinning index nodes, an open fence group) survives
	// into a reused heap slot or outlives the heap via the pool.
	h.AbortFenceGroup()
	if h.tracker != nil {
		h.tracker.Reset()
	}
	if h.shadow != nil {
		h.shadow.mu.Lock()
		h.shadow.objs = make(map[uint64]*shadowObj)
		h.shadow.queue = nil
		h.shadow.tainted = 0
		h.shadow.mu.Unlock()
	}
	a := h.lines
	h.lines = nil
	a.Reset()
	allocPool.mu.Lock()
	if len(allocPool.free) < maxPooledAllocators {
		allocPool.free = append(allocPool.free, a)
	}
	allocPool.mu.Unlock()
}

// NewFast returns a heap with counters only — the configuration used by
// unit tests and by throughput benchmarks that model PM latency
// separately.
func NewFast() *Heap { return New(Options{}) }

// SetInjector installs (or clears) the crash injector. It must not be
// called concurrently with index operations.
func (h *Heap) SetInjector(in *crash.Injector) { h.inj = in }

// Injector returns the currently installed crash injector.
func (h *Heap) Injector() *crash.Injector { return h.inj }

// Alloc registers a persistent allocation of the given size and returns
// its handle. The allocation's lines start out dirty (a freshly
// initialised object must be persisted before it is linked into the
// index), matching the paper's durability findings about unpersisted node
// allocations in FAST & FAIR and CCEH.
func (h *Heap) Alloc(size uintptr) Obj {
	if size == 0 {
		size = 1
	}
	lines := uint32((size + LineSize - 1) / LineSize)
	var base uint64
	if h.shared {
		base = h.sNextLine.Add(uint64(lines)) - uint64(lines)
		h.sAllocs.Add(1)
		h.sBytes.Add(uint64(size))
	} else {
		k := stripe.Key()
		base = h.lines.AllocKey(k, uint64(lines))
		h.allocs.AddKey(k, 1)
		h.bytes.AddKey(k, uint64(size))
	}
	o := Obj{base: base, lines: lines}
	if h.tracker != nil {
		h.tracker.dirtyRange(o, 0, size)
	}
	return o
}

// Persist simulates clwb over [off, off+size) of o: one write-back per
// spanned cache line. It does not order stores; callers must issue Fence
// at the points the converted index requires.
func (h *Heap) Persist(o Obj, off, size uintptr) {
	// A fence deferred by group mode retires before any new write-back,
	// preserving intra-operation ordering exactly (group.go).
	h.materialisePending()
	if size == 0 {
		return
	}
	first := o.line(off)
	last := o.line(off + size - 1)
	n := last - first + 1
	if h.shared {
		h.sClwb.Add(n)
	} else {
		h.clwb.Add(n)
	}
	if h.delayClwb > 0 {
		spin(h.delayClwb * int(n))
	}
	if h.llc != nil {
		for l := first; l <= last; l++ {
			h.llc.Access(l)
		}
	}
	if h.shadow != nil {
		h.shadow.capture(o, off, size, h.tracker)
	}
	if h.tracker != nil {
		h.tracker.flushRange(o, off, size)
	}
}

// Fence simulates mfence: all previously issued clwbs become durable.
// Inside a fence group (BeginFenceGroup) the fence is deferred instead:
// the next Persist materialises it, or the op boundary elides it if it
// was the operation's trailing fence (group.go).
func (h *Heap) Fence() {
	if h.group.active {
		h.group.pending = true
		return
	}
	h.fenceReal()
}

// fenceReal is the unconditional fence: counter, latency, tracker and
// shadow promotion.
func (h *Heap) fenceReal() {
	if h.shared {
		h.sFence.Add(1)
	} else {
		h.fence.Add(1)
	}
	if h.delayFence > 0 {
		spin(h.delayFence)
	}
	if h.tracker != nil {
		h.tracker.fence()
	}
	if h.shadow != nil {
		h.shadow.promote()
	}
}

// PersistFence is the common "clwb; mfence" pair the conversion actions
// insert after each store.
func (h *Heap) PersistFence(o Obj, off, size uintptr) {
	h.Persist(o, off, size)
	h.Fence()
}

// Dirty records that [off, off+size) of o was stored to. Write paths call
// it so the durability checker can verify flush coverage and so the LLC
// simulator sees the store traffic. It is a nil-check no-op on fast heaps.
func (h *Heap) Dirty(o Obj, off, size uintptr) {
	if h.llc != nil && size > 0 {
		for l, last := o.line(off), o.line(off+size-1); l <= last; l++ {
			h.llc.Access(l)
		}
	}
	if h.tracker != nil {
		h.tracker.dirtyRange(o, off, size)
	}
}

// Load records that [off, off+size) of o was read. Read paths call it so
// the LLC simulator sees load traffic. It is a nil-check no-op on fast
// heaps.
func (h *Heap) Load(o Obj, off, size uintptr) {
	if h.llc != nil && size > 0 {
		for l, last := o.line(off), o.line(off+size-1); l <= last; l++ {
			h.llc.Access(l)
		}
	}
}

// CrashPoint marks a §5 crash site: the boundary immediately after one of
// the ordered atomic stores that make up an insert or SMO.
func (h *Heap) CrashPoint(site string) {
	if h.inj != nil {
		h.inj.Here(site)
	}
}

// Stats is a snapshot of heap counters.
type Stats struct {
	Clwb       uint64
	Fence      uint64
	Allocs     uint64
	AllocBytes uint64
	LLC        cachesim.Stats
}

// Add returns s + t field-wise (for aggregating per-shard snapshots).
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Clwb:       s.Clwb + t.Clwb,
		Fence:      s.Fence + t.Fence,
		Allocs:     s.Allocs + t.Allocs,
		AllocBytes: s.AllocBytes + t.AllocBytes,
		LLC: cachesim.Stats{
			Accesses: s.LLC.Accesses + t.LLC.Accesses,
			Hits:     s.LLC.Hits + t.LLC.Hits,
			Misses:   s.LLC.Misses + t.LLC.Misses,
		},
	}
}

// Sub returns s - t field-wise (for per-phase deltas).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Clwb:       s.Clwb - t.Clwb,
		Fence:      s.Fence - t.Fence,
		Allocs:     s.Allocs - t.Allocs,
		AllocBytes: s.AllocBytes - t.AllocBytes,
		LLC: cachesim.Stats{
			Accesses: s.LLC.Accesses - t.LLC.Accesses,
			Hits:     s.LLC.Hits - t.LLC.Hits,
			Misses:   s.LLC.Misses - t.LLC.Misses,
		},
	}
}

// Stats returns a snapshot of the counters. Striped counters aggregate
// here, off the hot path; totals are exact with respect to completed
// operations.
func (h *Heap) Stats() Stats {
	var s Stats
	if h.shared {
		s = Stats{
			Clwb:       h.sClwb.Load(),
			Fence:      h.sFence.Load(),
			Allocs:     h.sAllocs.Load(),
			AllocBytes: h.sBytes.Load(),
		}
	} else {
		s = Stats{
			Clwb:       h.clwb.Load(),
			Fence:      h.fence.Load(),
			Allocs:     h.allocs.Load(),
			AllocBytes: h.bytes.Load(),
		}
	}
	if h.llc != nil {
		s.LLC = h.llc.Stats()
	}
	return s
}

// Tracker returns the durability tracker, or nil when tracking is off.
func (h *Heap) Tracker() *Tracker { return h.tracker }

// spin burns roughly n "work units" to model PM persistence latency.
//
//go:noinline
func spin(n int) {
	var x uint64 = 1
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	spinSink.Store(x)
}

var spinSink atomic.Uint64

// trackerShards is the number of independently locked shards in the
// durability tracker (must be a power of two). Striping the single
// shadow mutex by line hash keeps Track-mode multi-thread runs (the §5
// durability campaigns) from serialising every store on one lock.
const trackerShards = 64

// Tracker is the shadow state behind the §5 durability test: it records
// which lines are dirty, which have been written back but not yet fenced,
// and reports any line that an operation left unprotected. State is
// sharded by line hash; each line's transitions are serialised by its
// shard lock, which is all the per-line dirty→pending→durable protocol
// needs.
type Tracker struct {
	shards [trackerShards]trackerShard
}

type trackerShard struct {
	mu      sync.Mutex
	dirty   map[uint64]bool // line -> true while modified and not clwb'd
	pending map[uint64]bool // line -> true after clwb, before fence
	// Pad the 24 bytes above to 128 — the prefetch-pair stride, matching
	// stripe's padding policy — so adjacent shard locks never share a
	// paired line.
	_ [104]byte
}

func newTracker() *Tracker {
	t := &Tracker{}
	for i := range t.shards {
		t.shards[i].dirty = make(map[uint64]bool)
		t.shards[i].pending = make(map[uint64]bool)
	}
	return t
}

// shard maps a line address to its shard; the multiplier scrambles the
// sequential line addresses the allocator hands out, and the mask takes
// well-mixed high bits.
func (t *Tracker) shard(line uint64) *trackerShard {
	return &t.shards[(line*0x9E3779B97F4A7C15)>>32&(trackerShards-1)]
}

func (t *Tracker) dirtyRange(o Obj, off, size uintptr) {
	for l, last := o.line(off), o.line(off+size-1); l <= last; l++ {
		s := t.shard(l)
		s.mu.Lock()
		s.dirty[l] = true
		delete(s.pending, l) // a store after clwb re-dirties the line
		s.mu.Unlock()
	}
}

func (t *Tracker) flushRange(o Obj, off, size uintptr) {
	for l, last := o.line(off), o.line(off+size-1); l <= last; l++ {
		s := t.shard(l)
		s.mu.Lock()
		if s.dirty[l] {
			delete(s.dirty, l)
			s.pending[l] = true
		}
		s.mu.Unlock()
	}
}

func (t *Tracker) fence() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for l := range s.pending {
			delete(s.pending, l)
		}
		s.mu.Unlock()
	}
}

// Violation describes a durability failure at an operation boundary.
type Violation struct {
	Line uint64
	// Kind is "dirty" (stored, never clwb'd) or "pending" (clwb'd, never
	// fenced).
	Kind string
}

func (v Violation) String() string {
	return fmt.Sprintf("line %d left %s", v.Line, v.Kind)
}

// Check returns the lines that are not durable at this instant. A
// correctly converted index has an empty result at every operation
// boundary.
func (t *Tracker) Check() []Violation {
	var out []Violation
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for l := range s.dirty {
			out = append(out, Violation{Line: l, Kind: "dirty"})
		}
		for l := range s.pending {
			out = append(out, Violation{Line: l, Kind: "pending"})
		}
		s.mu.Unlock()
	}
	return out
}

// Reset clears the shadow state (e.g. between test phases).
func (t *Tracker) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.dirty = make(map[uint64]bool)
		s.pending = make(map[uint64]bool)
		s.mu.Unlock()
	}
}
