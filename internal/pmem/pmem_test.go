package pmem

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/crash"
)

func TestAllocHandles(t *testing.T) {
	h := NewFast()
	o1 := h.Alloc(64)
	o2 := h.Alloc(65)
	if !o1.Valid() || !o2.Valid() {
		t.Fatal("allocations should be valid")
	}
	if o1.Lines() != 1 {
		t.Fatalf("64B alloc spans %d lines, want 1", o1.Lines())
	}
	if o2.Lines() != 2 {
		t.Fatalf("65B alloc spans %d lines, want 2", o2.Lines())
	}
	if (Obj{}).Valid() {
		t.Fatal("zero Obj must be invalid")
	}
	s := h.Stats()
	if s.Allocs != 2 || s.AllocBytes != 64+65 {
		t.Fatalf("alloc stats = %+v", s)
	}
}

func TestZeroSizeAllocStillValid(t *testing.T) {
	h := NewFast()
	o := h.Alloc(0)
	if !o.Valid() {
		t.Fatal("zero-size alloc should round up to a valid handle")
	}
}

func TestPersistCountsLines(t *testing.T) {
	h := NewFast()
	o := h.Alloc(256)
	h.Persist(o, 0, 64) // 1 line
	h.Persist(o, 0, 65) // 2 lines
	h.Persist(o, 63, 2) // straddles a boundary: 2 lines
	h.Persist(o, 0, 0)  // no-op
	if got := h.Stats().Clwb; got != 5 {
		t.Fatalf("clwb = %d, want 5", got)
	}
}

func TestFenceCounts(t *testing.T) {
	h := NewFast()
	h.Fence()
	h.Fence()
	if got := h.Stats().Fence; got != 2 {
		t.Fatalf("fence = %d, want 2", got)
	}
}

func TestPersistFence(t *testing.T) {
	h := NewFast()
	o := h.Alloc(64)
	h.PersistFence(o, 0, 8)
	s := h.Stats()
	if s.Clwb != 1 || s.Fence != 1 {
		t.Fatalf("stats = %+v, want 1 clwb + 1 fence", s)
	}
}

func TestStatsSub(t *testing.T) {
	h := NewFast()
	o := h.Alloc(64)
	before := h.Stats()
	h.PersistFence(o, 0, 8)
	d := h.Stats().Sub(before)
	if d.Clwb != 1 || d.Fence != 1 || d.Allocs != 0 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestTrackerFlushCoverage(t *testing.T) {
	h := New(Options{Track: true})
	o := h.Alloc(128) // allocation dirties both lines
	if v := h.Tracker().Check(); len(v) != 2 {
		t.Fatalf("fresh alloc should leave 2 dirty lines, got %v", v)
	}
	h.Persist(o, 0, 128)
	if v := h.Tracker().Check(); len(v) != 2 {
		t.Fatalf("clwb without fence should leave 2 pending lines, got %v", v)
	}
	h.Fence()
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("after clwb+fence tracker should be clean, got %v", v)
	}
}

func TestTrackerRedirtyAfterFlush(t *testing.T) {
	h := New(Options{Track: true})
	o := h.Alloc(64)
	h.PersistFence(o, 0, 64)
	h.Dirty(o, 0, 8)
	v := h.Tracker().Check()
	if len(v) != 1 || v[0].Kind != "dirty" {
		t.Fatalf("store after flush should re-dirty, got %v", v)
	}
	h.PersistFence(o, 0, 8)
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("want clean, got %v", v)
	}
}

func TestTrackerPartialFlushDetected(t *testing.T) {
	h := New(Options{Track: true})
	o := h.Alloc(128)
	h.PersistFence(o, 0, 64) // second line never flushed
	v := h.Tracker().Check()
	if len(v) != 1 || v[0].Kind != "dirty" {
		t.Fatalf("want one dirty violation for unflushed line, got %v", v)
	}
}

func TestTrackerReset(t *testing.T) {
	h := New(Options{Track: true})
	h.Alloc(64)
	h.Tracker().Reset()
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("after Reset want clean, got %v", v)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Line: 7, Kind: "dirty"}
	if v.String() != "line 7 left dirty" {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestLLCIntegration(t *testing.T) {
	llc := cachesim.New(cachesim.Config{CapacityBytes: 1 << 16, Ways: 4})
	h := New(Options{LLC: llc})
	o := h.Alloc(64)
	h.Dirty(o, 0, 8)
	h.Load(o, 0, 8)
	h.Persist(o, 0, 8)
	s := h.Stats()
	if s.LLC.Accesses != 3 {
		t.Fatalf("LLC accesses = %d, want 3", s.LLC.Accesses)
	}
	if s.LLC.Misses != 1 {
		t.Fatalf("LLC misses = %d, want 1 (first touch only)", s.LLC.Misses)
	}
}

func TestCrashPointRoutesToInjector(t *testing.T) {
	in := crash.NewNth(1)
	h := New(Options{Injector: in})
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = crash.Recover(r)
			}
		}()
		h.CrashPoint("pmem.test")
		return nil
	}()
	if !crash.IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
}

func TestSetInjector(t *testing.T) {
	h := NewFast()
	if h.Injector() != nil {
		t.Fatal("fast heap should have no injector")
	}
	in := crash.NewNth(10)
	h.SetInjector(in)
	if h.Injector() != in {
		t.Fatal("SetInjector did not install")
	}
	h.CrashPoint("x") // should not fire (n=10)
	if in.Visits() != 1 {
		t.Fatalf("visits = %d, want 1", in.Visits())
	}
}

func TestDelaySpinRuns(t *testing.T) {
	h := New(Options{DelayClwb: 10, DelayFence: 10})
	o := h.Alloc(64)
	h.PersistFence(o, 0, 8) // just exercise the spin path
	if h.Stats().Clwb != 1 {
		t.Fatal("counting broken with delays enabled")
	}
}

// TestStatsConservationConcurrent is the striping correctness anchor:
// aggregated Stats() totals after a concurrent run must equal the serial
// expectation exactly, even though every increment went to a
// shard-private cell.
func TestStatsConservationConcurrent(t *testing.T) {
	for _, shared := range []bool{false, true} {
		name := "striped"
		if shared {
			name = "shared"
		}
		t.Run(name, func(t *testing.T) {
			h := New(Options{SharedAtomics: shared})
			const goroutines, per = 8, 5_000
			const size = 100 // spans 2 lines -> 2 clwb per Persist
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						o := h.Alloc(size)
						h.Persist(o, 0, size)
						h.Fence()
					}
				}()
			}
			wg.Wait()
			s := h.Stats()
			const n = goroutines * per
			if s.Allocs != n || s.AllocBytes != n*size || s.Clwb != 2*n || s.Fence != n {
				t.Fatalf("stats = %+v, want Allocs=%d AllocBytes=%d Clwb=%d Fence=%d",
					s, n, n*size, 2*n, n)
			}
		})
	}
}

// TestSharedVsStripedStatsIdentical runs the same serial op sequence on
// both heap implementations; every counter must match bit-exactly.
func TestSharedVsStripedStatsIdentical(t *testing.T) {
	run := func(h *Heap) Stats {
		for i := 0; i < 1_000; i++ {
			o := h.Alloc(uintptr(1 + i%300))
			h.Persist(o, 0, uintptr(1+i%300))
			if i%3 == 0 {
				h.Fence()
			}
			h.PersistFence(o, 0, 8)
		}
		return h.Stats()
	}
	striped := run(New(Options{}))
	shared := run(New(Options{SharedAtomics: true}))
	if striped != shared {
		t.Fatalf("striped stats %+v != shared stats %+v", striped, shared)
	}
}

// Concurrent allocations must hand out non-overlapping line ranges and
// never touch reserved line 0 (so Obj{} stays detectably invalid).
func TestAllocConcurrentNonOverlap(t *testing.T) {
	h := NewFast()
	const goroutines, per = 8, 3_000
	type iv struct{ base, end uint64 }
	results := make([][]iv, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ivs := make([]iv, 0, per)
			for i := 0; i < per; i++ {
				size := uintptr(1 + (g*per+i)%500)
				o := h.Alloc(size)
				ivs = append(ivs, iv{o.base, o.base + uint64(o.lines)})
			}
			results[g] = ivs
		}()
	}
	wg.Wait()
	var all []iv
	for _, ivs := range results {
		all = append(all, ivs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].base < all[j].base })
	for i, x := range all {
		if x.base == 0 {
			t.Fatal("allocation at reserved line 0")
		}
		if i > 0 && all[i-1].end > x.base {
			t.Fatalf("allocations overlap: [%d,%d) and [%d,%d)",
				all[i-1].base, all[i-1].end, x.base, x.end)
		}
	}
}

// The shared-atomics reference heap must behave identically through the
// rest of the API (it backs the scaling ablation baseline).
func TestSharedAtomicsHeapBasics(t *testing.T) {
	h := New(Options{SharedAtomics: true})
	o := h.Alloc(65)
	if !o.Valid() || o.Lines() != 2 {
		t.Fatalf("alloc = %+v", o)
	}
	h.PersistFence(o, 0, 65)
	s := h.Stats()
	if s.Clwb != 2 || s.Fence != 1 || s.Allocs != 1 || s.AllocBytes != 65 {
		t.Fatalf("stats = %+v", s)
	}
}

// Tracker striping must preserve per-line protocol under concurrency:
// after every goroutine persists and fences everything it dirtied, no
// violations remain.
func TestTrackerConcurrentFlushCoverage(t *testing.T) {
	h := New(Options{Track: true})
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o := h.Alloc(128)
				h.Dirty(o, 0, 128)
				h.Persist(o, 0, 128)
				h.Fence()
			}
		}()
	}
	wg.Wait()
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("tracker left %d violations after full persist+fence: %v", len(v), v[:min(len(v), 5)])
	}
}

func BenchmarkPersistFenceFastHeap(b *testing.B) {
	h := NewFast()
	o := h.Alloc(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PersistFence(o, 0, 8)
	}
}

// TestReleaseRecyclesAllocator: Release returns a heap's line allocator
// to the process pool, and the next New draws it back out reset — so
// churning heaps reuse one address space instead of growing it.
func TestReleaseRecyclesAllocator(t *testing.T) {
	h1 := New(Options{})
	o := h1.Alloc(1000)
	if !o.Valid() {
		t.Fatal("alloc failed")
	}
	recycled := h1.lines
	h1.Release()
	if h1.lines != nil {
		t.Fatal("Release must detach the allocator")
	}
	h1.Release() // double release is a no-op

	h2 := New(Options{})
	if h2.lines != recycled {
		t.Fatal("New did not reuse the released allocator (pool is LIFO)")
	}
	if r := h2.lines.Reserved(); r != 0 {
		t.Fatalf("recycled allocator Reserved = %d, want 0", r)
	}
	// A recycled heap replays fresh-heap address assignment exactly.
	if o2 := h2.Alloc(64); o2.base != 1 {
		t.Fatalf("first alloc on recycled heap at line %d, want 1", o2.base)
	}
	h2.Release()
}

// TestReleaseSharedHeapNoOp: the shared-atomics ablation heap has no
// striped allocator to recycle; Release must be a safe no-op.
func TestReleaseSharedHeapNoOp(t *testing.T) {
	h := New(Options{SharedAtomics: true})
	h.Release()
	if o := h.Alloc(64); !o.Valid() {
		t.Fatal("shared heap unusable after Release")
	}
}

// TestHeapChurnAddressSpaceBounded: a create/use/release loop keeps
// total reserved address space at the single-generation footprint —
// the crash-campaign churn pattern that motivated allocator recycling.
func TestHeapChurnAddressSpaceBounded(t *testing.T) {
	var reserved []uint64
	for gen := 0; gen < 50; gen++ {
		h := New(Options{})
		for i := 0; i < 1000; i++ {
			h.Alloc(100)
		}
		reserved = append(reserved, h.lines.Reserved())
		h.Release()
	}
	for i, r := range reserved {
		if r != reserved[0] {
			t.Fatalf("generation %d reserved %d lines, generation 0 reserved %d — address space grew across churn",
				i, r, reserved[0])
		}
	}
}
