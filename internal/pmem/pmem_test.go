package pmem

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/crash"
)

func TestAllocHandles(t *testing.T) {
	h := NewFast()
	o1 := h.Alloc(64)
	o2 := h.Alloc(65)
	if !o1.Valid() || !o2.Valid() {
		t.Fatal("allocations should be valid")
	}
	if o1.Lines() != 1 {
		t.Fatalf("64B alloc spans %d lines, want 1", o1.Lines())
	}
	if o2.Lines() != 2 {
		t.Fatalf("65B alloc spans %d lines, want 2", o2.Lines())
	}
	if (Obj{}).Valid() {
		t.Fatal("zero Obj must be invalid")
	}
	s := h.Stats()
	if s.Allocs != 2 || s.AllocBytes != 64+65 {
		t.Fatalf("alloc stats = %+v", s)
	}
}

func TestZeroSizeAllocStillValid(t *testing.T) {
	h := NewFast()
	o := h.Alloc(0)
	if !o.Valid() {
		t.Fatal("zero-size alloc should round up to a valid handle")
	}
}

func TestPersistCountsLines(t *testing.T) {
	h := NewFast()
	o := h.Alloc(256)
	h.Persist(o, 0, 64) // 1 line
	h.Persist(o, 0, 65) // 2 lines
	h.Persist(o, 63, 2) // straddles a boundary: 2 lines
	h.Persist(o, 0, 0)  // no-op
	if got := h.Stats().Clwb; got != 5 {
		t.Fatalf("clwb = %d, want 5", got)
	}
}

func TestFenceCounts(t *testing.T) {
	h := NewFast()
	h.Fence()
	h.Fence()
	if got := h.Stats().Fence; got != 2 {
		t.Fatalf("fence = %d, want 2", got)
	}
}

func TestPersistFence(t *testing.T) {
	h := NewFast()
	o := h.Alloc(64)
	h.PersistFence(o, 0, 8)
	s := h.Stats()
	if s.Clwb != 1 || s.Fence != 1 {
		t.Fatalf("stats = %+v, want 1 clwb + 1 fence", s)
	}
}

func TestStatsSub(t *testing.T) {
	h := NewFast()
	o := h.Alloc(64)
	before := h.Stats()
	h.PersistFence(o, 0, 8)
	d := h.Stats().Sub(before)
	if d.Clwb != 1 || d.Fence != 1 || d.Allocs != 0 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestTrackerFlushCoverage(t *testing.T) {
	h := New(Options{Track: true})
	o := h.Alloc(128) // allocation dirties both lines
	if v := h.Tracker().Check(); len(v) != 2 {
		t.Fatalf("fresh alloc should leave 2 dirty lines, got %v", v)
	}
	h.Persist(o, 0, 128)
	if v := h.Tracker().Check(); len(v) != 2 {
		t.Fatalf("clwb without fence should leave 2 pending lines, got %v", v)
	}
	h.Fence()
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("after clwb+fence tracker should be clean, got %v", v)
	}
}

func TestTrackerRedirtyAfterFlush(t *testing.T) {
	h := New(Options{Track: true})
	o := h.Alloc(64)
	h.PersistFence(o, 0, 64)
	h.Dirty(o, 0, 8)
	v := h.Tracker().Check()
	if len(v) != 1 || v[0].Kind != "dirty" {
		t.Fatalf("store after flush should re-dirty, got %v", v)
	}
	h.PersistFence(o, 0, 8)
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("want clean, got %v", v)
	}
}

func TestTrackerPartialFlushDetected(t *testing.T) {
	h := New(Options{Track: true})
	o := h.Alloc(128)
	h.PersistFence(o, 0, 64) // second line never flushed
	v := h.Tracker().Check()
	if len(v) != 1 || v[0].Kind != "dirty" {
		t.Fatalf("want one dirty violation for unflushed line, got %v", v)
	}
}

func TestTrackerReset(t *testing.T) {
	h := New(Options{Track: true})
	h.Alloc(64)
	h.Tracker().Reset()
	if v := h.Tracker().Check(); len(v) != 0 {
		t.Fatalf("after Reset want clean, got %v", v)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Line: 7, Kind: "dirty"}
	if v.String() != "line 7 left dirty" {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestLLCIntegration(t *testing.T) {
	llc := cachesim.New(cachesim.Config{CapacityBytes: 1 << 16, Ways: 4})
	h := New(Options{LLC: llc})
	o := h.Alloc(64)
	h.Dirty(o, 0, 8)
	h.Load(o, 0, 8)
	h.Persist(o, 0, 8)
	s := h.Stats()
	if s.LLC.Accesses != 3 {
		t.Fatalf("LLC accesses = %d, want 3", s.LLC.Accesses)
	}
	if s.LLC.Misses != 1 {
		t.Fatalf("LLC misses = %d, want 1 (first touch only)", s.LLC.Misses)
	}
}

func TestCrashPointRoutesToInjector(t *testing.T) {
	in := crash.NewNth(1)
	h := New(Options{Injector: in})
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = crash.Recover(r)
			}
		}()
		h.CrashPoint("pmem.test")
		return nil
	}()
	if !crash.IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
}

func TestSetInjector(t *testing.T) {
	h := NewFast()
	if h.Injector() != nil {
		t.Fatal("fast heap should have no injector")
	}
	in := crash.NewNth(10)
	h.SetInjector(in)
	if h.Injector() != in {
		t.Fatal("SetInjector did not install")
	}
	h.CrashPoint("x") // should not fire (n=10)
	if in.Visits() != 1 {
		t.Fatalf("visits = %d, want 1", in.Visits())
	}
}

func TestDelaySpinRuns(t *testing.T) {
	h := New(Options{DelayClwb: 10, DelayFence: 10})
	o := h.Alloc(64)
	h.PersistFence(o, 0, 8) // just exercise the spin path
	if h.Stats().Clwb != 1 {
		t.Fatal("counting broken with delays enabled")
	}
}

func BenchmarkPersistFenceFastHeap(b *testing.B) {
	h := NewFast()
	o := h.Alloc(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PersistFence(o, 0, 8)
	}
}
