// Package ycsb generates the YCSB workload patterns used in RECIPE's
// evaluation (§7, Table 3).
//
// The paper generates workload files with the index micro-benchmark and
// statically splits them across threads. This package reproduces that:
// Generate materialises per-thread operation streams up front so the
// measured phase does no generation work. Key identifiers are dense and
// mapped to uniformly distributed key values by keys.Mix64; the run phase
// reads uniformly from the loaded population and inserts fresh keys
// (updates are modelled as inserts of new keys because several of the
// compared indexes do not support in-place update, per §7).
package ycsb

import (
	"fmt"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind uint8

const (
	// OpInsert inserts a fresh key.
	OpInsert OpKind = iota
	// OpRead point-reads an existing key.
	OpRead
	// OpScan range-scans from an existing key.
	OpScan
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRead:
		return "read"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one pre-generated operation. ID is a dense key identifier: for
// inserts it names a fresh key, for reads/scans an already-loaded key.
type Op struct {
	Kind    OpKind
	ID      uint64
	ScanLen int
}

// Workload is one row of Table 3.
type Workload struct {
	Name string
	// Mix in percent. InsertPct + ReadPct + ScanPct == 100.
	InsertPct, ReadPct, ScanPct int
	// Description and AppPattern reproduce Table 3's text.
	Description string
	AppPattern  string
}

// The five workload patterns evaluated in the paper (Table 3). Workloads D
// and F are excluded, as in the paper, because several compared indexes do
// not support key updates.
var (
	LoadA = Workload{Name: "Load A", InsertPct: 100, Description: "100% writes", AppPattern: "Bulk database insert"}
	A     = Workload{Name: "A", InsertPct: 50, ReadPct: 50, Description: "Read/Write, 50/50", AppPattern: "A session store"}
	B     = Workload{Name: "B", InsertPct: 5, ReadPct: 95, Description: "Read/Write, 95/5", AppPattern: "Photo tagging"}
	C     = Workload{Name: "C", ReadPct: 100, Description: "100% reads", AppPattern: "User profile cache"}
	E     = Workload{Name: "E", InsertPct: 5, ScanPct: 95, Description: "Scan/Write, 95/5", AppPattern: "Threaded conversations"}
)

// All lists the evaluated workloads in the paper's order.
var All = []Workload{LoadA, A, B, C, E}

// ByName returns the workload with the given name (case-sensitive, as in
// Table 3: "Load A", "A", "B", "C", "E").
func ByName(name string) (Workload, error) {
	for _, w := range All {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// MaxScanLen is the YCSB default maximum range length: scan lengths are
// uniform in [1, MaxScanLen].
const MaxScanLen = 100

// Plan holds per-thread operation streams for one workload execution.
type Plan struct {
	Workload Workload
	// LoadN is the size of the pre-loaded key population (identifiers
	// [0, LoadN)).
	LoadN int
	// Threads[i] is the operation stream for thread i.
	Threads [][]Op
	// Inserts is the number of OpInsert operations across all threads,
	// precomputed at generation time so consumers (per-insert counter
	// columns) need not re-walk the op streams on every run.
	Inserts int
}

// TotalOps returns the number of operations across all threads.
func (p *Plan) TotalOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}

// Generate builds a plan: opN operations of workload w, statically split
// across threads, assuming identifiers [0, loadN) are already loaded.
// Fresh insert identifiers start at loadN and are partitioned between
// threads so concurrent inserts never collide. Generation is deterministic
// in seed.
func Generate(w Workload, loadN, opN, threads int, seed int64) *Plan {
	if threads < 1 {
		threads = 1
	}
	if w.InsertPct+w.ReadPct+w.ScanPct != 100 {
		panic(fmt.Sprintf("ycsb: workload %q percentages sum to %d", w.Name, w.InsertPct+w.ReadPct+w.ScanPct))
	}
	p := &Plan{Workload: w, LoadN: loadN, Threads: make([][]Op, threads)}
	per := opN / threads
	nextInsert := uint64(loadN)
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = opN - per*(threads-1)
		}
		rng := rand.New(rand.NewSource(seed + int64(t)*1_000_003))
		ops := make([]Op, 0, n)
		// Reserve the worst case: every op an insert.
		base := nextInsert
		used := uint64(0)
		for i := 0; i < n; i++ {
			r := rng.Intn(100)
			switch {
			case r < w.InsertPct:
				ops = append(ops, Op{Kind: OpInsert, ID: base + used})
				used++
			case r < w.InsertPct+w.ReadPct:
				ops = append(ops, Op{Kind: OpRead, ID: uint64(rng.Int63n(int64(max(loadN, 1))))})
			default:
				ops = append(ops, Op{Kind: OpScan, ID: uint64(rng.Int63n(int64(max(loadN, 1)))), ScanLen: 1 + rng.Intn(MaxScanLen)})
			}
		}
		nextInsert = base + used
		p.Inserts += int(used)
		p.Threads[t] = ops
	}
	return p
}

// GenerateLoad builds the Load A plan that populates identifiers
// [0, loadN), split across threads in contiguous chunks.
func GenerateLoad(loadN, threads int) *Plan {
	if threads < 1 {
		threads = 1
	}
	p := &Plan{Workload: LoadA, LoadN: 0, Threads: make([][]Op, threads), Inserts: loadN}
	per := loadN / threads
	start := 0
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = loadN - per*(threads-1)
		}
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: OpInsert, ID: uint64(start + i)}
		}
		p.Threads[t] = ops
		start += n
	}
	return p
}

// Describe renders Table 3.
func Describe() string {
	s := "Workload | Description        | Application pattern\n"
	s += "---------+--------------------+---------------------\n"
	for _, w := range All {
		s += fmt.Sprintf("%-8s | %-18s | %s\n", w.Name, w.Description, w.AppPattern)
	}
	return s
}
