// Package ycsb generates the YCSB workload patterns used in RECIPE's
// evaluation (§7, Table 3), extended with the skewed request
// distributions and update-bearing workloads the paper left out.
//
// The paper generates workload files with the index micro-benchmark and
// statically splits them across threads. This package reproduces that:
// Generate materialises per-thread operation streams up front so the
// measured phase does no generation work. Key identifiers are dense and
// mapped to uniformly distributed key values by keys.Mix64; the run
// phase draws read-like targets from the loaded population through a
// pluggable Distribution (uniform — the paper's setup and the default —
// zipfian, or read-latest) and inserts fresh keys.
//
// The paper modelled updates as inserts of fresh keys because several
// of its compared indexes lacked in-place update (§7). Every index in
// this port upserts through Insert, so that restriction is gone:
// OpUpdate overwrites an existing key in place and OpRMW reads it,
// derives a new value and writes it back, which is what unlocks YCSB
// workloads D (95/5 read/insert, read-latest) and F (50/50
// read/read-modify-write, zipfian) — the two rows Table 3 skipped.
package ycsb

import (
	"fmt"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind uint8

const (
	// OpInsert inserts a fresh key.
	OpInsert OpKind = iota
	// OpRead point-reads an existing key.
	OpRead
	// OpScan range-scans from an existing key.
	OpScan
	// OpUpdate overwrites an existing key's value in place through the
	// index's upsert path.
	OpUpdate
	// OpRMW reads an existing key, derives a new value from the one
	// found, and writes it back (YCSB's read-modify-write).
	OpRMW

	// NumOpKinds is the number of operation kinds; per-kind count and
	// stats arrays are indexed by OpKind.
	NumOpKinds = 5
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRead:
		return "read"
	case OpScan:
		return "scan"
	case OpUpdate:
		return "update"
	case OpRMW:
		return "rmw"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one pre-generated operation. ID is a dense key identifier: for
// inserts it names a fresh key, for reads/scans/updates/RMWs an
// already-inserted key (loaded, or inserted earlier by the same
// thread's stream — see Distribution).
type Op struct {
	Kind    OpKind
	ID      uint64
	ScanLen int
}

// Workload is one row of Table 3, extended with the update-bearing
// mixes (UpdatePct, RMWPct) and the request distribution the row runs
// under by default.
type Workload struct {
	Name string
	// Mix in percent. InsertPct + ReadPct + ScanPct + UpdatePct +
	// RMWPct == 100.
	InsertPct, ReadPct, ScanPct, UpdatePct, RMWPct int
	// Description and AppPattern reproduce Table 3's text (and extend
	// it for D and F).
	Description string
	AppPattern  string
	// Dist is the request distribution read-like operations draw
	// targets from. Nil selects Uniform — the paper's setup, and the
	// bit-compatible default for the Table 3 rows.
	Dist Distribution
}

// The workload patterns: the five the paper evaluates (Table 3) plus
// YCSB D and F, which the paper excluded because several compared
// indexes lacked in-place update — ours don't (every index upserts
// through Insert), so both run here, under their YCSB-default skewed
// distributions.
var (
	LoadA = Workload{Name: "Load A", InsertPct: 100, Description: "100% writes", AppPattern: "Bulk database insert"}
	A     = Workload{Name: "A", InsertPct: 50, ReadPct: 50, Description: "Read/Write, 50/50", AppPattern: "A session store"}
	B     = Workload{Name: "B", InsertPct: 5, ReadPct: 95, Description: "Read/Write, 95/5", AppPattern: "Photo tagging"}
	C     = Workload{Name: "C", ReadPct: 100, Description: "100% reads", AppPattern: "User profile cache"}
	D     = Workload{Name: "D", InsertPct: 5, ReadPct: 95, Description: "Read latest, 95/5", AppPattern: "User status updates",
		Dist: Latest{Theta: DefaultTheta}}
	E = Workload{Name: "E", InsertPct: 5, ScanPct: 95, Description: "Scan/Write, 95/5", AppPattern: "Threaded conversations"}
	F = Workload{Name: "F", ReadPct: 50, RMWPct: 50, Description: "Read-modify-write, 50/50", AppPattern: "User activity records",
		Dist: Zipfian{Theta: DefaultTheta}}
)

// DefaultTheta is the YCSB default skew for the zipfian and
// read-latest distributions.
const DefaultTheta = 0.99

// All lists the workloads the paper evaluates, in the paper's order.
// The figure runners iterate this set, so the reproduced figures stay
// faithful to Table 3.
var All = []Workload{LoadA, A, B, C, E}

// Extended lists every workload including the beyond-the-paper D and
// F rows, in YCSB letter order.
var Extended = []Workload{LoadA, A, B, C, D, E, F}

// ByName returns the workload with the given name (case-sensitive:
// "Load A", "A", "B", "C", "D", "E", "F").
func ByName(name string) (Workload, error) {
	for _, w := range Extended {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// MaxScanLen is the YCSB default maximum range length: scan lengths are
// uniform in [1, MaxScanLen].
const MaxScanLen = 100

// Plan holds per-thread operation streams for one workload execution.
type Plan struct {
	Workload Workload
	// LoadN is the size of the pre-loaded key population (identifiers
	// [0, LoadN)).
	LoadN int
	// Threads[i] is the operation stream for thread i.
	Threads [][]Op
	// Inserts is the number of OpInsert operations across all threads
	// (== Counts[OpInsert]), precomputed at generation time so
	// consumers (per-insert counter columns) need not re-walk the op
	// streams on every run.
	Inserts int
	// Counts is the number of operations of each kind across all
	// threads, indexed by OpKind. Its sum equals TotalOps — the
	// conservation invariant the harness re-checks after execution.
	Counts [NumOpKinds]int
}

// TotalOps returns the number of operations across all threads.
func (p *Plan) TotalOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}

// Generate builds a plan: opN operations of workload w, statically split
// across threads, assuming identifiers [0, loadN) are already loaded.
// Fresh insert identifiers start at loadN and are partitioned between
// threads so concurrent inserts never collide. Read-like targets come
// from w.Dist (nil = Uniform, the paper's setup). Generation is
// deterministic in seed.
func Generate(w Workload, loadN, opN, threads int, seed int64) *Plan {
	dist := w.Dist
	if dist == nil {
		dist = Uniform{}
	}
	return GenerateWith(w, loadN, opN, threads, seed, dist)
}

// GenerateWith is Generate with an explicit request distribution,
// overriding the workload row's default (how -dist runs workload A–F
// under any distribution).
func GenerateWith(w Workload, loadN, opN, threads int, seed int64, dist Distribution) *Plan {
	if threads < 1 {
		threads = 1
	}
	if s := w.InsertPct + w.ReadPct + w.ScanPct + w.UpdatePct + w.RMWPct; s != 100 {
		panic(fmt.Sprintf("ycsb: workload %q percentages sum to %d", w.Name, s))
	}
	p := &Plan{Workload: w, LoadN: loadN, Threads: make([][]Op, threads)}
	per := opN / threads
	nextInsert := uint64(loadN)
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = opN - per*(threads-1)
		}
		rng := rand.New(rand.NewSource(seed + int64(t)*1_000_003))
		smp := dist.NewSampler(loadN, rng)
		ops := make([]Op, 0, n)
		base := nextInsert
		used := uint64(0)
		for i := 0; i < n; i++ {
			r := rng.Intn(100)
			switch {
			case r < w.InsertPct:
				id := base + used
				ops = append(ops, Op{Kind: OpInsert, ID: id})
				used++
				smp.NoteInsert(id)
			case r < w.InsertPct+w.ReadPct:
				ops = append(ops, Op{Kind: OpRead, ID: smp.Next()})
			case r < w.InsertPct+w.ReadPct+w.UpdatePct:
				ops = append(ops, Op{Kind: OpUpdate, ID: smp.Next()})
			case r < w.InsertPct+w.ReadPct+w.UpdatePct+w.RMWPct:
				ops = append(ops, Op{Kind: OpRMW, ID: smp.Next()})
			default:
				ops = append(ops, Op{Kind: OpScan, ID: smp.Next(), ScanLen: 1 + rng.Intn(MaxScanLen)})
			}
		}
		nextInsert = base + used
		p.Threads[t] = ops
		for _, op := range ops {
			p.Counts[op.Kind]++
		}
	}
	p.Inserts = p.Counts[OpInsert]
	return p
}

// GenerateLoad builds the Load A plan that populates identifiers
// [0, loadN), split across threads in contiguous chunks.
func GenerateLoad(loadN, threads int) *Plan {
	if threads < 1 {
		threads = 1
	}
	p := &Plan{Workload: LoadA, LoadN: 0, Threads: make([][]Op, threads), Inserts: loadN}
	p.Counts[OpInsert] = loadN
	per := loadN / threads
	start := 0
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = loadN - per*(threads-1)
		}
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: OpInsert, ID: uint64(start + i)}
		}
		p.Threads[t] = ops
		start += n
	}
	return p
}

// Describe renders the workload table: Table 3's five rows plus the
// beyond-the-paper D and F rows with their default distributions.
func Describe() string {
	s := "Workload | Description              | Distribution | Application pattern\n"
	s += "---------+--------------------------+--------------+---------------------\n"
	for _, w := range Extended {
		dist := "uniform"
		if w.Dist != nil {
			dist = w.Dist.Name()
		}
		s += fmt.Sprintf("%-8s | %-24s | %-12s | %s\n", w.Name, w.Description, dist, w.AppPattern)
	}
	return s
}
