// Request distributions: which already-inserted key a read-like
// operation (read, update, read-modify-write, scan start) targets.
//
// The paper's evaluation draws read targets uniformly from the loaded
// population; YCSB itself also defines the skewed zipfian and
// read-latest distributions, which workloads D and F depend on. The
// samplers here are deterministic functions of the plan seed so that
// two generations of the same plan are bit-identical (the property
// every regression test in this package leans on).

package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Distribution selects which existing key identifier each read-like
// operation targets. Implementations are stateless descriptors; the
// per-thread sampling state lives in the Sampler they return, so one
// Distribution value can be shared by every generation thread and by
// concurrent Generate calls.
type Distribution interface {
	// Name returns the distribution's flag name ("uniform", "zipfian",
	// "latest").
	Name() string
	// NewSampler returns a fresh sampler over the initially loaded
	// population [0, loadN), drawing randomness only from rng (the
	// per-thread deterministic source).
	NewSampler(loadN int, rng *rand.Rand) Sampler
}

// Sampler is per-thread sampling state. Next returns the identifier of
// a key guaranteed to be inserted by the time the operation executes:
// a member of the loaded population, or an earlier insert from the
// same thread's stream (announced via NoteInsert). Samplers are not
// safe for concurrent use; each generation thread owns one.
type Sampler interface {
	// Next returns the target identifier for one read-like operation.
	Next() uint64
	// NoteInsert records that the owning thread's stream has appended
	// an insert of id, growing the population visible to later ops.
	NoteInsert(id uint64)
}

// Uniform draws uniformly from the loaded population [0, loadN) — the
// paper's §7 setup and the generator's default. Its sampler consumes
// exactly one rng value per call, which keeps plans bit-identical to
// the pre-distribution-engine generator (regression-tested).
type Uniform struct{}

// Name returns "uniform".
func (Uniform) Name() string { return "uniform" }

// NewSampler returns the uniform sampler.
func (Uniform) NewSampler(loadN int, rng *rand.Rand) Sampler {
	return &uniformSampler{n: int64(max(loadN, 1)), rng: rng}
}

type uniformSampler struct {
	n   int64
	rng *rand.Rand
}

func (s *uniformSampler) Next() uint64      { return uint64(s.rng.Int63n(s.n)) }
func (s *uniformSampler) NoteInsert(uint64) {}

// Zipfian draws from the loaded population with the YCSB zipfian
// distribution (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD '94): rank r is hit with probability
// proportional to 1/(r+1)^Theta. Identifier 0 is the hottest rank;
// keys.Mix64 scatters identifiers over the key space, so the hot
// ranks land on arbitrary keys (and, under the sharded front-end's
// hash partitioner, on arbitrary shards). Theta must be in (0, 1);
// YCSB's default is 0.99. The required zeta(n, Theta) normaliser is
// precomputed once per (n, Theta) and memoized process-wide, so
// per-thread samplers and repeated benchmark generations don't redo
// the O(n) sum.
type Zipfian struct {
	// Theta is the skew parameter in (0, 1): 0 → uniform-like,
	// 0.99 → YCSB's default hot-spot skew.
	Theta float64
}

// Name returns "zipfian".
func (Zipfian) Name() string { return "zipfian" }

// NewSampler returns a Gray et al. sampler over [0, loadN).
func (z Zipfian) NewSampler(loadN int, rng *rand.Rand) Sampler {
	core := newZipfCore(z.theta())
	n := uint64(max(loadN, 1))
	zetan := zeta(int(n), core.theta)
	return &zipfSampler{
		zipfCore: core,
		n:        n,
		zetan:    zetan,
		eta:      core.eta(n, zetan),
		rng:      rng,
	}
}

func (z Zipfian) theta() float64 {
	if z.Theta <= 0 || z.Theta >= 1 {
		panic(fmt.Sprintf("ycsb: Zipfian theta %v outside (0, 1)", z.Theta))
	}
	return z.Theta
}

// zipfCore holds the per-sampler constants of the Gray et al.
// inversion, precomputed once at construction so Next never touches
// the process-wide zeta cache (and its mutex) or recomputes pows that
// do not change: alpha = 1/(1-theta), and halfPow = 2^-theta, which is
// both the rank-1 threshold and zeta(2,theta)-1.
type zipfCore struct {
	theta, alpha, halfPow float64
}

func newZipfCore(theta float64) zipfCore {
	return zipfCore{theta: theta, alpha: 1 / (1 - theta), halfPow: math.Pow(0.5, theta)}
}

// eta returns the Gray et al. tail coefficient for population n with
// normaliser zetan — constant for a fixed population, recomputed by
// the latest sampler as its population grows.
func (c zipfCore) eta(n uint64, zetan float64) float64 {
	return (1 - math.Pow(2/float64(n), 1-c.theta)) / (1 - (1+c.halfPow)/zetan)
}

// rank maps one uniform variate u to a zipfian rank in [0, n): one
// multiply, two comparisons for the two hottest ranks, one pow for the
// tail.
func (c zipfCore) rank(u float64, n uint64, zetan, eta float64) uint64 {
	if n <= 1 {
		return 0
	}
	uz := u * zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+c.halfPow {
		return 1
	}
	r := uint64(float64(n) * math.Pow(eta*u-eta+1, c.alpha))
	if r >= n {
		r = n - 1
	}
	return r
}

// zipfSampler draws over a fixed population: every coefficient is
// precomputed, so Next is one rng draw plus at most one pow.
type zipfSampler struct {
	zipfCore
	n     uint64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func (s *zipfSampler) Next() uint64 {
	return s.rank(s.rng.Float64(), s.n, s.zetan, s.eta)
}

func (s *zipfSampler) NoteInsert(uint64) {}

// zetaCache memoizes zeta(n, theta) = Σ_{i=1..n} i^-theta, the O(n)
// normaliser every zipfian sampler needs. Keyed by (n, theta): plans
// of the same shape across threads, runs and benchmarks share one
// computation.
var zetaCache struct {
	sync.Mutex
	m map[zetaKey]float64
}

type zetaKey struct {
	n     int
	theta float64
}

func zeta(n int, theta float64) float64 {
	if n < 1 {
		return 0
	}
	zetaCache.Lock()
	defer zetaCache.Unlock()
	if zetaCache.m == nil {
		zetaCache.m = make(map[zetaKey]float64)
	}
	k := zetaKey{n, theta}
	if z, ok := zetaCache.m[k]; ok {
		return z
	}
	z := 0.0
	for i := 1; i <= n; i++ {
		z += math.Pow(float64(i), -theta)
	}
	zetaCache.m[k] = z
	return z
}

// Latest is YCSB's read-latest distribution (workload D): zipfian over
// recency rank, so the most recently inserted keys are the hottest.
// Rank 0 is the newest key the sampling thread is guaranteed to find
// inserted: its own most recent insert if it has made one, otherwise
// the last loaded key. Because plans are materialised statically per
// thread, the frontier each thread tracks is the part of the insert
// stream whose ordering is certain at execution time — the loaded
// population plus the thread's own earlier inserts — which is exactly
// the guarantee TestLatestNeverEmitsUninserted pins: Latest never
// emits an identifier that could still be un-inserted when the
// operation runs.
type Latest struct {
	// Theta is the recency skew in (0, 1); YCSB uses the zipfian
	// default 0.99.
	Theta float64
}

// Name returns "latest".
func (Latest) Name() string { return "latest" }

// NewSampler returns a read-latest sampler whose population starts at
// [0, loadN) and grows with the owning thread's inserts.
func (l Latest) NewSampler(loadN int, rng *rand.Rand) Sampler {
	core := newZipfCore(Zipfian{Theta: l.Theta}.theta())
	return &latestSampler{
		zipfCore: core,
		loadN:    uint64(loadN),
		n:        uint64(loadN),
		zetan:    zeta(loadN, core.theta),
		rng:      rng,
	}
}

// latestSampler tracks the moving insert frontier: n is the current
// population (loadN + own inserts), zetan is maintained incrementally
// as the population grows (zeta(n) = zeta(n-1) + n^-theta), so
// NoteInsert is O(1) instead of an O(n) recompute per insert. The
// population changes between draws, so eta is rederived per Next (one
// pow from the precomputed core constants — no zeta-cache access).
type latestSampler struct {
	zipfCore
	loadN uint64 // initially loaded population size
	base  uint64 // first own-inserted identifier
	own   uint64 // own inserts so far
	n     uint64 // loadN + own
	zetan float64
	rng   *rand.Rand
}

func (s *latestSampler) Next() uint64 {
	if s.n == 0 {
		return 0
	}
	r := s.rank(s.rng.Float64(), s.n, s.zetan, s.eta(s.n, s.zetan))
	// Recency rank → identifier: the thread's own inserts are newest
	// (most recent first), then the loaded population (highest id
	// first, matching load order).
	if r < s.own {
		return s.base + (s.own - 1 - r)
	}
	return s.loadN - 1 - (r - s.own)
}

func (s *latestSampler) NoteInsert(id uint64) {
	if s.own == 0 {
		s.base = id
	}
	s.own++
	s.n++
	s.zetan += math.Pow(float64(s.n), -s.theta)
}

// DistributionByName returns the named distribution ("uniform",
// "zipfian", "latest"); theta parameterises the skewed ones and is
// ignored for uniform. Out-of-range theta is rejected here, as an
// error, so flag parsing fails cleanly instead of the sampler
// panicking mid-run.
func DistributionByName(name string, theta float64) (Distribution, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "zipfian", "latest":
		if theta <= 0 || theta >= 1 {
			return nil, fmt.Errorf("ycsb: %s theta %v outside (0, 1)", name, theta)
		}
		if name == "latest" {
			return Latest{Theta: theta}, nil
		}
		return Zipfian{Theta: theta}, nil
	default:
		return nil, fmt.Errorf("ycsb: unknown distribution %q (want uniform, zipfian or latest)", name)
	}
}
