package ycsb

import (
	"math"
	"math/rand"
	"testing"
)

// chiSquared samples n draws from dist over a population of popN and
// returns the chi-squared statistic against the closed-form zipf mass
// p_r = (r+1)^-theta / zeta(popN, theta).
func chiSquared(t *testing.T, dist Distribution, popN, n int, theta float64, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	smp := dist.NewSampler(popN, rng)
	obs := make([]int, popN)
	for i := 0; i < n; i++ {
		id := smp.Next()
		if id >= uint64(popN) {
			t.Fatalf("sample %d outside population [0,%d)", id, popN)
		}
		obs[id]++
	}
	z := 0.0
	for i := 1; i <= popN; i++ {
		z += math.Pow(float64(i), -theta)
	}
	chi2 := 0.0
	for r := 0; r < popN; r++ {
		exp := float64(n) * math.Pow(float64(r+1), -theta) / z
		d := float64(obs[r]) - exp
		chi2 += d * d / exp
	}
	return chi2
}

// TestZipfianGoodnessOfFit pins the Gray et al. sampler's frequencies
// against the closed-form zipf mass at both evaluation thetas with a
// chi-squared test at the real alpha=0.001 critical value (df =
// popN-1 = 99 → 148.2). The sampler is an inversion approximation —
// exact for the two hottest ranks, continuous approximation for the
// tail — whose systematic bias grows linearly with sample count while
// sampling noise grows with its square root; n = 10_000 keeps the
// bias below the noise floor (measured: the statistic roughly doubles
// the critical value by n = 50_000 at theta 0.99), so the strict
// critical value applies. Seeds are fixed, making each statistic
// deterministic. TestZipfianGoodnessOfFitPower shows the same test
// setup rejects a wrong distribution by two orders of magnitude, so
// the small n does not cost discriminative power.
func TestZipfianGoodnessOfFit(t *testing.T) {
	const popN, n = 100, 10_000
	for _, theta := range []float64{0.5, 0.99} {
		for seed := int64(1); seed <= 3; seed++ {
			chi2 := chiSquared(t, Zipfian{Theta: theta}, popN, n, theta, seed)
			t.Logf("theta=%v seed=%d chi2=%.1f", theta, seed, chi2)
			if chi2 > 148.2 {
				t.Errorf("theta=%v seed=%d: chi2 = %.1f, want < 148.2 (df=99, alpha=0.001)", theta, seed, chi2)
			}
		}
	}
}

// TestZipfianGoodnessOfFitPower: the same statistic must explode for a
// distribution that is NOT the tested zipf mass, or the fit test above
// proves nothing.
func TestZipfianGoodnessOfFitPower(t *testing.T) {
	const popN, n = 100, 10_000
	if chi2 := chiSquared(t, Uniform{}, popN, n, 0.99, 1); chi2 < 5000 {
		t.Errorf("uniform sampling vs zipf(0.99) mass: chi2 = %.1f, want > 5000", chi2)
	}
	if chi2 := chiSquared(t, Zipfian{Theta: 0.5}, popN, n, 0.99, 1); chi2 < 1000 {
		t.Errorf("zipf(0.5) sampling vs zipf(0.99) mass: chi2 = %.1f, want > 1000", chi2)
	}
}

// TestZipfianSkewOrdering sanity-checks the shape beyond the fit: rank
// 0 must be the hottest, and higher theta must concentrate more mass
// on it.
func TestZipfianSkewOrdering(t *testing.T) {
	const popN, n = 1000, 100_000
	top := func(theta float64) float64 {
		rng := rand.New(rand.NewSource(7))
		smp := Zipfian{Theta: theta}.NewSampler(popN, rng)
		hits := 0
		for i := 0; i < n; i++ {
			if smp.Next() == 0 {
				hits++
			}
		}
		return float64(hits) / n
	}
	p50, p99 := top(0.5), top(0.99)
	if p99 <= p50 {
		t.Fatalf("rank-0 mass: theta 0.99 (%v) should exceed theta 0.5 (%v)", p99, p50)
	}
	// Closed form: p_0 = 1/zeta(1000, 0.99) ≈ 0.127.
	if p99 < 0.08 || p99 > 0.20 {
		t.Fatalf("rank-0 mass at theta 0.99 = %v, want ≈ 0.127", p99)
	}
}

// TestDistributionsDeterministic: identical seeds must yield identical
// plans for every distribution — the property replays and regression
// baselines rely on.
func TestDistributionsDeterministic(t *testing.T) {
	for _, d := range []Distribution{Uniform{}, Zipfian{Theta: 0.99}, Zipfian{Theta: 0.5}, Latest{Theta: 0.99}} {
		a := GenerateWith(A, 2000, 4000, 4, 7, d)
		b := GenerateWith(A, 2000, 4000, 4, 7, d)
		for ti := range a.Threads {
			if len(a.Threads[ti]) != len(b.Threads[ti]) {
				t.Fatalf("%s: non-deterministic lengths", d.Name())
			}
			for i := range a.Threads[ti] {
				if a.Threads[ti][i] != b.Threads[ti][i] {
					t.Fatalf("%s: non-deterministic op %d/%d", d.Name(), ti, i)
				}
			}
		}
	}
}

// TestLatestNeverEmitsUninserted walks every thread stream of a
// latest-distribution plan asserting each read-like target is either
// pre-loaded or an insert the same thread made earlier — the guarantee
// that makes statically generated read-latest plans executable under
// concurrency (another thread's inserts may not have happened yet).
func TestLatestNeverEmitsUninserted(t *testing.T) {
	const loadN = 1000
	for _, w := range []Workload{D, A, B} {
		p := GenerateWith(w, loadN, 20_000, 4, 11, Latest{Theta: 0.99})
		for ti, ops := range p.Threads {
			own := make(map[uint64]bool)
			for i, op := range ops {
				switch op.Kind {
				case OpInsert:
					own[op.ID] = true
				default:
					if op.ID >= loadN && !own[op.ID] {
						t.Fatalf("workload %s thread %d op %d: %v targets id %d, not loaded and not inserted earlier by this thread",
							w.Name, ti, i, op.Kind, op.ID)
					}
				}
			}
		}
	}
}

// TestLatestSkewsRecent: under read-latest, read targets should
// concentrate near the insert frontier (the newest loaded and
// own-inserted keys), not uniformly over the population.
func TestLatestSkewsRecent(t *testing.T) {
	const loadN = 10_000
	p := GenerateWith(D, loadN, 20_000, 1, 3, Latest{Theta: 0.99})
	recent := 0
	reads := 0
	for _, op := range p.Threads[0] {
		if op.Kind != OpRead {
			continue
		}
		reads++
		// "Recent" = the newest 10% of the initially loaded population
		// or any own insert.
		if op.ID >= uint64(loadN)-loadN/10 {
			recent++
		}
	}
	if reads == 0 {
		t.Fatal("workload D generated no reads")
	}
	if frac := float64(recent) / float64(reads); frac < 0.5 {
		t.Fatalf("only %.0f%% of read-latest targets hit the newest 10%% of keys; want > 50%%", frac*100)
	}
}

// TestZetaIncrementalMatchesScratch pins the Latest sampler's O(1)
// incremental zeta maintenance against a from-scratch recompute.
func TestZetaIncrementalMatchesScratch(t *testing.T) {
	const loadN, inserts = 500, 100
	const theta = 0.99
	s := Latest{Theta: theta}.NewSampler(loadN, rand.New(rand.NewSource(1))).(*latestSampler)
	for i := 0; i < inserts; i++ {
		s.NoteInsert(uint64(loadN + i))
	}
	want := 0.0
	for i := 1; i <= loadN+inserts; i++ {
		want += math.Pow(float64(i), -theta)
	}
	if diff := math.Abs(s.zetan - want); diff > 1e-9 {
		t.Fatalf("incremental zetan drifted %g from scratch recompute", diff)
	}
}

func TestDistributionByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
	}{{"uniform", "uniform"}, {"zipfian", "zipfian"}, {"latest", "latest"}} {
		d, err := DistributionByName(tc.name, 0.99)
		if err != nil || d.Name() != tc.want {
			t.Fatalf("DistributionByName(%q) = %v, %v", tc.name, d, err)
		}
	}
	if _, err := DistributionByName("hotspot", 0.99); err == nil {
		t.Fatal("unknown distribution should fail")
	}
	// Out-of-range theta must be a clean error at name resolution, not
	// a panic later during plan generation (the -theta flag path).
	for _, theta := range []float64{0, 1, -0.5, 1.5} {
		for _, name := range []string{"zipfian", "latest"} {
			if _, err := DistributionByName(name, theta); err == nil {
				t.Errorf("DistributionByName(%q, %v) accepted out-of-range theta", name, theta)
			}
		}
	}
	if _, err := DistributionByName("uniform", 1.5); err != nil {
		t.Errorf("uniform should ignore theta: %v", err)
	}
}

// TestZipfianThetaValidation: theta outside (0,1) is a programming
// error and must fail loudly at sampler construction.
func TestZipfianThetaValidation(t *testing.T) {
	for _, theta := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta=%v should panic", theta)
				}
			}()
			Zipfian{Theta: theta}.NewSampler(100, rand.New(rand.NewSource(1)))
		}()
	}
}
