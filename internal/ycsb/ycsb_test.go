package ycsb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWorkloadMixesSumTo100(t *testing.T) {
	for _, w := range Extended {
		if s := w.InsertPct + w.ReadPct + w.ScanPct + w.UpdatePct + w.RMWPct; s != 100 {
			t.Fatalf("workload %s mix sums to %d", w.Name, s)
		}
	}
}

// oldGenerate is a frozen copy of the pre-distribution-engine
// generator (uniform reads, insert/read/scan only), kept verbatim so
// TestUniformBitCompatible can prove the refactored Generate still
// emits bit-identical plans for every Table 3 workload under the
// default distribution.
func oldGenerate(w Workload, loadN, opN, threads int, seed int64) *Plan {
	if threads < 1 {
		threads = 1
	}
	p := &Plan{Workload: w, LoadN: loadN, Threads: make([][]Op, threads)}
	per := opN / threads
	nextInsert := uint64(loadN)
	for t := 0; t < threads; t++ {
		n := per
		if t == threads-1 {
			n = opN - per*(threads-1)
		}
		rng := rand.New(rand.NewSource(seed + int64(t)*1_000_003))
		ops := make([]Op, 0, n)
		base := nextInsert
		used := uint64(0)
		for i := 0; i < n; i++ {
			r := rng.Intn(100)
			switch {
			case r < w.InsertPct:
				ops = append(ops, Op{Kind: OpInsert, ID: base + used})
				used++
			case r < w.InsertPct+w.ReadPct:
				ops = append(ops, Op{Kind: OpRead, ID: uint64(rng.Int63n(int64(max(loadN, 1))))})
			default:
				ops = append(ops, Op{Kind: OpScan, ID: uint64(rng.Int63n(int64(max(loadN, 1)))), ScanLen: 1 + rng.Intn(MaxScanLen)})
			}
		}
		nextInsert = base + used
		p.Inserts += int(used)
		p.Threads[t] = ops
	}
	return p
}

// TestUniformBitCompatible is the regression the distribution engine
// must never break: with the default (uniform) distribution, Generate
// produces plans bit-identical to the pre-engine generator for every
// paper workload, over several seeds and thread counts.
func TestUniformBitCompatible(t *testing.T) {
	for _, w := range All {
		for _, seed := range []int64{1, 42, 999} {
			for _, threads := range []int{1, 3, 8} {
				got := Generate(w, 1000, 5000, threads, seed)
				want := oldGenerate(w, 1000, 5000, threads, seed)
				if got.Inserts != want.Inserts || len(got.Threads) != len(want.Threads) {
					t.Fatalf("%s seed=%d threads=%d: plan shape diverged", w.Name, seed, threads)
				}
				for ti := range want.Threads {
					if len(got.Threads[ti]) != len(want.Threads[ti]) {
						t.Fatalf("%s seed=%d threads=%d: thread %d length diverged", w.Name, seed, threads, ti)
					}
					for i := range want.Threads[ti] {
						if got.Threads[ti][i] != want.Threads[ti][i] {
							t.Fatalf("%s seed=%d threads=%d: op %d/%d = %+v, pre-engine generator emitted %+v",
								w.Name, seed, threads, ti, i, got.Threads[ti][i], want.Threads[ti][i])
						}
					}
				}
			}
		}
	}
}

// TestGenerateDFMixes: D is 95/5 read/insert under read-latest, F is
// 50/50 read/RMW under zipfian; update/RMW targets must come from the
// already-inserted population.
func TestGenerateDFMixes(t *testing.T) {
	const loadN, n = 1000, 100_000
	d := Generate(D, loadN, n, 2, 11)
	if d.Counts[OpRMW] != 0 || d.Counts[OpUpdate] != 0 || d.Counts[OpScan] != 0 {
		t.Fatalf("workload D contains non-read/insert ops: %v", d.Counts)
	}
	if pct := float64(d.Counts[OpInsert]) / n * 100; pct < 3 || pct > 7 {
		t.Fatalf("workload D insert fraction = %.2f%%, want ~5%%", pct)
	}
	f := Generate(F, loadN, n, 2, 11)
	if f.Counts[OpInsert] != 0 || f.Counts[OpScan] != 0 || f.Counts[OpUpdate] != 0 {
		t.Fatalf("workload F contains non-read/RMW ops: %v", f.Counts)
	}
	if pct := float64(f.Counts[OpRMW]) / n * 100; pct < 45 || pct > 55 {
		t.Fatalf("workload F RMW fraction = %.2f%%, want ~50%%", pct)
	}
	for _, ops := range f.Threads {
		for _, op := range ops {
			if op.ID >= loadN {
				t.Fatalf("workload F %v targets id %d outside loaded population", op.Kind, op.ID)
			}
		}
	}
}

// TestPlanCountsConserve: per-kind counts must sum to TotalOps for
// every workload shape — the plan half of the conservation invariant
// the harness re-checks after execution.
func TestPlanCountsConserve(t *testing.T) {
	for _, w := range Extended {
		p := Generate(w, 500, 3000, 4, 9)
		sum := 0
		for k, c := range p.Counts {
			if c < 0 {
				t.Fatalf("workload %s: negative count for %v", w.Name, OpKind(k))
			}
			sum += c
		}
		if sum != p.TotalOps() {
			t.Fatalf("workload %s: kind counts sum to %d, TotalOps = %d", w.Name, sum, p.TotalOps())
		}
		if p.Inserts != p.Counts[OpInsert] {
			t.Fatalf("workload %s: Inserts = %d != Counts[OpInsert] = %d", w.Name, p.Inserts, p.Counts[OpInsert])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Load A")
	if err != nil || w.InsertPct != 100 {
		t.Fatalf("ByName(Load A) = %+v, %v", w, err)
	}
	if _, err := ByName("Z"); err == nil {
		t.Fatal("ByName(Z) should fail")
	}
}

func TestGenerateLoadCoversAllIDs(t *testing.T) {
	p := GenerateLoad(100, 3)
	seen := make(map[uint64]bool)
	for _, ops := range p.Threads {
		for _, op := range ops {
			if op.Kind != OpInsert {
				t.Fatalf("load plan contains %v", op.Kind)
			}
			if seen[op.ID] {
				t.Fatalf("duplicate id %d", op.ID)
			}
			seen[op.ID] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("load plan covers %d ids, want 100", len(seen))
	}
	if p.TotalOps() != 100 {
		t.Fatalf("TotalOps = %d, want 100", p.TotalOps())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(A, 1000, 500, 4, 7)
	b := Generate(A, 1000, 500, 4, 7)
	for ti := range a.Threads {
		if len(a.Threads[ti]) != len(b.Threads[ti]) {
			t.Fatal("non-deterministic lengths")
		}
		for i := range a.Threads[ti] {
			if a.Threads[ti][i] != b.Threads[ti][i] {
				t.Fatal("non-deterministic ops")
			}
		}
	}
}

func TestGenerateInsertIDsDisjointAndFresh(t *testing.T) {
	const loadN = 1000
	p := Generate(A, loadN, 2000, 4, 3)
	seen := make(map[uint64]bool)
	for _, ops := range p.Threads {
		for _, op := range ops {
			switch op.Kind {
			case OpInsert:
				if op.ID < loadN {
					t.Fatalf("insert id %d collides with load population", op.ID)
				}
				if seen[op.ID] {
					t.Fatalf("duplicate insert id %d across threads", op.ID)
				}
				seen[op.ID] = true
			case OpRead, OpScan:
				if op.ID >= loadN {
					t.Fatalf("%v id %d outside loaded population", op.Kind, op.ID)
				}
			}
		}
	}
}

func TestGenerateMixApproximatesWorkload(t *testing.T) {
	const n = 100000
	p := Generate(B, 1000, n, 2, 11)
	var ins, rd int
	for _, ops := range p.Threads {
		for _, op := range ops {
			switch op.Kind {
			case OpInsert:
				ins++
			case OpRead:
				rd++
			}
		}
	}
	insPct := float64(ins) / float64(n) * 100
	if insPct < 3 || insPct > 7 {
		t.Fatalf("workload B insert fraction = %.2f%%, want ~5%%", insPct)
	}
	if rd+ins != n {
		t.Fatalf("B should contain only reads+inserts, got %d/%d", rd, ins)
	}
}

// Plan.Inserts is precomputed at generation time; it must equal a walk
// of the op streams for every workload shape.
func TestPlanInsertsMatchesOpStreams(t *testing.T) {
	count := func(p *Plan) int {
		n := 0
		for _, ops := range p.Threads {
			for _, op := range ops {
				if op.Kind == OpInsert {
					n++
				}
			}
		}
		return n
	}
	for _, w := range All {
		p := Generate(w, 500, 3000, 4, 9)
		if p.Inserts != count(p) {
			t.Fatalf("workload %s: Inserts = %d, op streams contain %d", w.Name, p.Inserts, count(p))
		}
	}
	if p := GenerateLoad(123, 4); p.Inserts != 123 || count(p) != 123 {
		t.Fatalf("load plan Inserts = %d (streams %d), want 123", p.Inserts, count(p))
	}
}

func TestScanLengthsInRange(t *testing.T) {
	p := Generate(E, 1000, 20000, 2, 5)
	sawScan := false
	for _, ops := range p.Threads {
		for _, op := range ops {
			if op.Kind == OpScan {
				sawScan = true
				if op.ScanLen < 1 || op.ScanLen > MaxScanLen {
					t.Fatalf("scan length %d out of [1,%d]", op.ScanLen, MaxScanLen)
				}
			}
		}
	}
	if !sawScan {
		t.Fatal("workload E generated no scans")
	}
}

func TestGenerateSplitsOpsExactly(t *testing.T) {
	f := func(opN uint16, threads uint8) bool {
		th := int(threads%8) + 1
		n := int(opN % 5000)
		p := Generate(C, 100, n, th, 1)
		return p.TotalOps() == n && len(p.Threads) == th
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateZeroThreadsClamped(t *testing.T) {
	p := Generate(C, 10, 10, 0, 1)
	if len(p.Threads) != 1 {
		t.Fatalf("threads clamped to %d, want 1", len(p.Threads))
	}
	if GenerateLoad(10, 0).TotalOps() != 10 {
		t.Fatal("GenerateLoad with 0 threads should still cover all ids")
	}
}

func TestDescribeContainsAllRows(t *testing.T) {
	d := Describe()
	for _, w := range All {
		if !strings.Contains(d, w.AppPattern) {
			t.Fatalf("Describe() missing %q", w.AppPattern)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpRead.String() != "read" || OpScan.String() != "scan" {
		t.Fatal("OpKind.String mismatch")
	}
}

func TestBadWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with bad mix should panic")
		}
	}()
	Generate(Workload{Name: "bad", InsertPct: 10}, 10, 10, 1, 1)
}
