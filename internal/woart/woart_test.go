package woart

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/keys"
	"repro/internal/pmem"
)

func newIdx() *Index { return New(pmem.NewFast()) }

func k64(v uint64) []byte { return keys.EncodeUint64(v) }

func mustInsert(t testing.TB, idx *Index, key []byte, v uint64) {
	t.Helper()
	if err := idx.Insert(key, v); err != nil {
		t.Fatalf("Insert(%x): %v", key, err)
	}
}

func TestBasic(t *testing.T) {
	idx := newIdx()
	if _, ok := idx.Lookup(k64(1)); ok {
		t.Fatal("phantom on empty")
	}
	mustInsert(t, idx, k64(1), 10)
	if v, ok := idx.Lookup(k64(1)); !ok || v != 10 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if err := idx.Insert(nil, 1); err != ErrEmptyKey {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	idx := newIdx()
	mustInsert(t, idx, k64(1), 1)
	mustInsert(t, idx, k64(1), 2)
	if v, _ := idx.Lookup(k64(1)); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestManyKeys(t *testing.T) {
	idx := newIdx()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		mustInsert(t, idx, k64(keys.Mix64(i)), i)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := idx.Lookup(k64(keys.Mix64(i))); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestPathCompression(t *testing.T) {
	idx := newIdx()
	ks := [][]byte{
		[]byte("sharedprefix-AAAA"),
		[]byte("sharedprefix-BBBB"),
		[]byte("sharedprefix-AABB"),
		[]byte("other"),
	}
	for i, k := range ks {
		mustInsert(t, idx, k, uint64(i))
	}
	for i, k := range ks {
		if v, ok := idx.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%q) = %d,%v", k, v, ok)
		}
	}
	if err := idx.Insert([]byte("shared"), 9); err == nil {
		t.Fatal("prefix key accepted")
	}
}

func TestDelete(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 500; i++ {
		mustInsert(t, idx, k64(i), i)
	}
	for i := uint64(0); i < 500; i += 2 {
		del, err := idx.Delete(k64(i))
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", i, del, err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		_, ok := idx.Lookup(k64(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted %d present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("survivor %d missing", i)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	idx := newIdx()
	var want []uint64
	for i := 0; i < 2000; i++ {
		v := keys.Mix64(uint64(i))
		mustInsert(t, idx, k64(v), v)
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	idx.Scan(nil, 0, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestOracle(t *testing.T) {
	idx := newIdx()
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 15000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			mustInsert(t, idx, k64(k), v)
			oracle[k] = v
		case 2:
			if _, err := idx.Delete(k64(k)); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := idx.Lookup(k64(k))
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%d) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
}

// Property: batches round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		idx := newIdx()
		for _, v := range vals {
			if idx.Insert(k64(v), v) != nil {
				return false
			}
		}
		for _, v := range vals {
			if got, ok := idx.Lookup(k64(v)); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The global lock serialises writers but readers may run concurrently —
// the design property behind the §7.3 gap.
func TestConcurrentGlobalLock(t *testing.T) {
	idx := newIdx()
	const threads = 4
	const per = 2000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i)
				if err := idx.Insert(k64(keys.Mix64(id)), id); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if idx.Len() != threads*per {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func BenchmarkInsert(b *testing.B) {
	idx := newIdx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(k64(keys.Mix64(uint64(i))), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScanRangePruned(t *testing.T) {
	idx := newIdx()
	for i := uint64(0); i < 1000; i++ {
		mustInsert(t, idx, k64(i*3), i*3)
	}
	var got []uint64
	n := idx.Scan(k64(100), 6, func(k []byte, v uint64) bool {
		got = append(got, keys.DecodeUint64(k))
		return true
	})
	if n != 6 {
		t.Fatalf("visited %d", n)
	}
	for i, g := range got {
		if g != uint64(102+i*3) {
			t.Fatalf("scan[%d] = %d want %d", i, g, 102+i*3)
		}
	}
}
