// Package woart implements WOART — Write Optimal Adaptive Radix Tree
// (Lee et al., FAST '17) — the hand-crafted, single-threaded PM radix
// tree RECIPE compares P-ART against in §7.3.
//
// WOART redesigns ART's node types for failure atomicity on PM: node4
// gains an 8-byte slot-ordering word updated atomically after the entry
// is written, node16/48 use their index arrays as commit points, and path
// compression headers are updated with 8-byte atomic stores. The design
// is single-writer; its authors suggest a global lock for
// multi-threading, which is what this port provides (and what limits it
// to 2–20x below P-ART on multi-threaded YCSB, the §7.3 result).
//
// Because a global lock serialises writers AND readers cannot proceed
// during writes in the suggested scheme, the port uses a sync.RWMutex:
// concurrent readers, exclusive writers.
package woart

import (
	"bytes"
	"errors"
	"sort"
	"sync"

	"repro/internal/crash"
	"repro/internal/pmem"
)

// ErrEmptyKey is returned for zero-length keys.
var ErrEmptyKey = errors.New("woart: empty key")

// node is a simplified adaptive radix node: a sorted array of byte-keyed
// slots that grows 4 -> 16 -> 48 -> 256 in capacity, plus a compressed
// prefix. Single-writer discipline (the global lock) removes the need for
// per-node synchronisation.
type node struct {
	pm       pmem.Obj
	prefix   []byte
	depth    int // key depth of this node's branch byte
	keys     []byte
	children []any // *node or *leaf, parallel to keys
}

type leaf struct {
	pm    pmem.Obj
	key   []byte
	value uint64
}

func capFor(n int) int {
	switch {
	case n <= 4:
		return 4
	case n <= 16:
		return 16
	case n <= 48:
		return 48
	default:
		return 256
	}
}

func nodeBytes(capacity int) uintptr { return uintptr(16 + capacity*9) }

// rootSlot is the tree's only top-level persistent object: the 8-byte
// root pointer the commit stores write. It exists as its own struct so
// shadow registration covers a pure-persistent value — the volatile
// Index (its sync.RWMutex, its cached count) is never a shadow target
// and can never be captured into, or restored out of, a power-failure
// image.
type rootSlot struct {
	root any
}

// Index is a WOART tree guarded by a global reader/writer lock. The
// lock and the key count are volatile state, rebuilt on recovery; the
// persistent root pointer lives in slot.
type Index struct {
	heap   *pmem.Heap
	rootPM pmem.Obj
	mu     sync.RWMutex
	slot   rootSlot
	count  int
}

// New returns an empty WOART backed by heap.
func New(heap *pmem.Heap) *Index {
	idx := &Index{heap: heap}
	idx.rootPM = heap.Alloc(64)
	heap.Shadow(idx.rootPM, &idx.slot)
	heap.PersistFence(idx.rootPM, 0, 64)
	return idx
}

// Len returns the number of keys.
func (idx *Index) Len() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.count
}

func (idx *Index) newLeaf(key []byte, value uint64) *leaf {
	l := &leaf{key: append([]byte(nil), key...), value: value}
	l.pm = idx.heap.Alloc(uintptr(16 + len(key)))
	idx.heap.Shadow(l.pm, l)
	// WOART persists the leaf before linking it.
	idx.heap.Persist(l.pm, 0, uintptr(16+len(key)))
	idx.heap.Fence()
	return l
}

func (idx *Index) newNode(prefix []byte, depth int) *node {
	n := &node{prefix: append([]byte(nil), prefix...), depth: depth}
	n.pm = idx.heap.Alloc(nodeBytes(4))
	idx.heap.Shadow(n.pm, n)
	idx.heap.Persist(n.pm, 0, nodeBytes(4))
	return n
}

func (n *node) find(b byte) int {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= b })
	if i < len(n.keys) && n.keys[i] == b {
		return i
	}
	return -1
}

// Lookup returns the value stored under key.
func (idx *Index) Lookup(key []byte) (uint64, bool) {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	cur := idx.slot.root
	depth := 0
	for cur != nil {
		switch c := cur.(type) {
		case *leaf:
			idx.heap.Load(c.pm, 0, uintptr(16+len(c.key)))
			if bytes.Equal(c.key, key) {
				return c.value, true
			}
			return 0, false
		case *node:
			idx.heap.Load(c.pm, 0, nodeBytes(capFor(len(c.keys))))
			if len(c.prefix) > 0 {
				if len(key) < depth+len(c.prefix) || !bytes.Equal(key[depth:depth+len(c.prefix)], c.prefix) {
					return 0, false
				}
			}
			depth = c.depth
			if depth >= len(key) {
				return 0, false
			}
			i := c.find(key[depth])
			if i < 0 {
				return 0, false
			}
			cur = c.children[i]
			depth++
		}
	}
	return 0, false
}

// Insert stores value under key, overwriting an existing binding. Writers
// hold the global lock — the serialisation §7.3 measures.
func (idx *Index) Insert(key []byte, value uint64) (err error) {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	defer recoverCrash(&err)
	if idx.slot.root == nil {
		l := idx.newLeaf(key, value)
		idx.slot.root = l
		idx.heap.Dirty(idx.rootPM, 0, 8)
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("woart.insert.root")
		idx.count++
		return nil
	}
	added, err := idx.insert(&idx.slot.root, idx.slot.root, 0, key, value)
	if err != nil {
		return err
	}
	if added {
		idx.count++
	}
	return nil
}

// insert descends recursively; slot is the reference holding cur.
func (idx *Index) insert(slot *any, cur any, depth int, key []byte, value uint64) (bool, error) {
	switch c := cur.(type) {
	case *leaf:
		if bytes.Equal(c.key, key) {
			// In-place 8-byte value update, persisted.
			c.value = value
			idx.heap.Dirty(c.pm, 8, 8)
			idx.heap.PersistFence(c.pm, 8, 8)
			idx.heap.CrashPoint("woart.update")
			return false, nil
		}
		cp := 0
		for depth+cp < len(key) && depth+cp < len(c.key) && key[depth+cp] == c.key[depth+cp] {
			cp++
		}
		if depth+cp == len(key) || depth+cp == len(c.key) {
			return false, errors.New("woart: key is a prefix of an existing key")
		}
		nn := idx.newNode(key[depth:depth+cp], depth+cp)
		nl := idx.newLeaf(key, value)
		nn.addChild(c.key[depth+cp], c)
		nn.addChild(key[depth+cp], nl)
		idx.heap.Persist(nn.pm, 0, nodeBytes(capFor(2)))
		idx.heap.Fence()
		idx.heap.CrashPoint("woart.leafsplit.built")
		*slot = nn
		idx.heap.Dirty(idx.rootPM, 0, 8)
		idx.heap.PersistFence(idx.rootPM, 0, 8)
		idx.heap.CrashPoint("woart.leafsplit.commit")
		return true, nil
	case *node:
		// Prefix mismatch: split the compressed path (two ordered steps
		// in WOART, both under the global lock).
		pl := len(c.prefix)
		cp := 0
		for cp < pl && depth+cp < len(key) && c.prefix[cp] == key[depth+cp] {
			cp++
		}
		if cp < pl {
			if depth+cp >= len(key) {
				return false, errors.New("woart: key is a prefix of an existing key")
			}
			nn := idx.newNode(c.prefix[:cp], depth+cp)
			nl := idx.newLeaf(key, value)
			nn.addChild(c.prefix[cp], c)
			nn.addChild(key[depth+cp], nl)
			idx.heap.Persist(nn.pm, 0, nodeBytes(capFor(2)))
			idx.heap.Fence()
			idx.heap.CrashPoint("woart.split.built")
			*slot = nn
			idx.heap.Dirty(idx.rootPM, 0, 8)
			idx.heap.PersistFence(idx.rootPM, 0, 8)
			c.prefix = append([]byte(nil), c.prefix[cp+1:]...)
			idx.heap.Dirty(c.pm, 0, 16)
			idx.heap.PersistFence(c.pm, 0, 16)
			idx.heap.CrashPoint("woart.split.prefix")
			return true, nil
		}
		depth = c.depth
		if depth >= len(key) {
			return false, errors.New("woart: key is a prefix of an existing key")
		}
		b := key[depth]
		if i := c.find(b); i >= 0 {
			return idx.insert(&c.children[i], c.children[i], depth+1, key, value)
		}
		nl := idx.newLeaf(key, value)
		c.addChild(b, nl)
		idx.heap.Dirty(c.pm, 16, uintptr(len(c.keys))*9)
		idx.heap.Dirty(c.pm, 0, 8)
		// WOART: persist the slot array, fence, then the ordering word.
		idx.heap.Persist(c.pm, 16, uintptr(len(c.keys))*9)
		idx.heap.Fence()
		idx.heap.Persist(c.pm, 0, 8)
		idx.heap.Fence()
		idx.heap.CrashPoint("woart.insert.commit")
		return true, nil
	}
	return false, nil
}

func (n *node) addChild(b byte, child any) {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= b })
	n.keys = append(n.keys, 0)
	n.children = append(n.children, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.children[i+1:], n.children[i:])
	n.keys[i] = b
	n.children[i] = child
}

// Delete removes key.
func (idx *Index) Delete(key []byte) (deleted bool, err error) {
	if len(key) == 0 {
		return false, ErrEmptyKey
	}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	defer recoverCrash(&err)
	if l, ok := idx.slot.root.(*leaf); ok {
		if bytes.Equal(l.key, key) {
			idx.slot.root = nil
			idx.heap.Dirty(idx.rootPM, 0, 8)
			idx.heap.PersistFence(idx.rootPM, 0, 8)
			idx.count--
			return true, nil
		}
		return false, nil
	}
	n, _ := idx.slot.root.(*node)
	depth := 0
	for n != nil {
		if len(n.prefix) > 0 {
			if len(key) < depth+len(n.prefix) || !bytes.Equal(key[depth:depth+len(n.prefix)], n.prefix) {
				return false, nil
			}
		}
		depth = n.depth
		if depth >= len(key) {
			return false, nil
		}
		i := n.find(key[depth])
		if i < 0 {
			return false, nil
		}
		if l, ok := n.children[i].(*leaf); ok {
			if !bytes.Equal(l.key, key) {
				return false, nil
			}
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.children = append(n.children[:i], n.children[i+1:]...)
			idx.heap.Dirty(n.pm, 0, 8)
			idx.heap.PersistFence(n.pm, 0, 8)
			idx.heap.CrashPoint("woart.delete.commit")
			idx.count--
			return true, nil
		}
		n = n.children[i].(*node)
		depth++
	}
	return false, nil
}

// Scan visits keys >= start in order until fn returns false or count keys
// have been visited (count <= 0 = unbounded). It holds the read lock for
// the duration, as the suggested global-lock scheme implies, and prunes
// subtrees that end before start.
func (idx *Index) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	visited := 0
	var walk func(cur any, bounded bool) bool
	walk = func(cur any, bounded bool) bool {
		switch c := cur.(type) {
		case *leaf:
			if bytes.Compare(c.key, start) >= 0 {
				if !fn(c.key, c.value) {
					return false
				}
				visited++
				if count > 0 && visited >= count {
					return false
				}
			}
		case *node:
			if bounded {
				// Compare the compressed prefix with start's bytes to
				// decide whether the subtree can still straddle start.
				d := c.depth - len(c.prefix)
				for i, pb := range c.prefix {
					sb := byte(0)
					if d+i < len(start) {
						sb = start[d+i]
					}
					if pb > sb {
						bounded = false
						break
					}
					if pb < sb {
						return true // whole subtree < start
					}
				}
			}
			lo := -1
			if bounded && c.depth < len(start) {
				lo = int(start[c.depth])
			}
			for i, ch := range c.children {
				if lo >= 0 {
					if int(c.keys[i]) < lo {
						continue
					}
					if !walk(ch, int(c.keys[i]) == lo) {
						return false
					}
					continue
				}
				if !walk(ch, false) {
					return false
				}
			}
		}
		return true
	}
	walk(idx.slot.root, len(start) > 0)
	return visited
}

// Recover re-initialises the global lock after a simulated crash.
func (idx *Index) Recover() {
	idx.mu = sync.RWMutex{}
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
