// Package loadgen is the client-side open-loop load generator for the
// serving tier: it drives a recipesrv-compatible endpoint at a target
// aggregate QPS with Poisson arrivals, the way production traffic
// arrives — send times follow the arrival schedule, not the replies,
// so a slow server faces a growing backlog instead of a politely
// waiting client (the closed-loop coordinated-omission trap the
// ROADMAP calls out).
//
// Each of Conns connections runs an independent Poisson process of
// rate QPS/Conns (their superposition is Poisson at QPS): a sender
// draws exponential inter-arrival gaps, picks an operation kind by the
// configured mix and a key by the configured ycsb.Distribution
// sampler, and pipelines the request; a receiver consumes replies in
// order and tallies outcomes per kind. At the end of the run every
// sender half-closes its connection (CloseWrite) and the receiver
// drains the remaining replies — a missing reply for an accepted
// request is a reported deficit, which is how the CI smoke proves
// clean server drain.
//
// Key identifiers are scattered through keys.Mix64 and rendered as
// fixed-width hex, so hot identifiers land on arbitrary shards and
// range partitioning sees a uniform key space.
package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/keys"
	"repro/internal/server"
	"repro/internal/ycsb"
)

// Kind is the operation kind axis of the report.
type Kind int

// Operation kinds the generator issues.
const (
	KindRead Kind = iota
	KindInsert
	KindUpdate
	KindScan
	KindDelete
	numKinds
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindScan:
		return "scan"
	case KindDelete:
		return "delete"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Options configures a load run.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the number of client connections (workers). Values < 1
	// select 4.
	Conns int
	// QPS is the target aggregate arrival rate. Must be positive.
	QPS float64
	// Duration is the measured open-loop window.
	Duration time.Duration
	// LoadN preloads keys [0, LoadN) with SET before the window opens
	// (skipped when 0). Read-like ops sample from this population.
	LoadN int
	// Dist picks which existing key read-like operations target; nil
	// selects ycsb.Uniform.
	Dist ycsb.Distribution
	// Seed drives arrivals, op mix and key choice deterministically.
	Seed int64
	// ReadFrac, InsertFrac, UpdateFrac, ScanFrac, DeleteFrac define the
	// op mix; they must sum to at most 1 and reads absorb the
	// remainder. All zero selects 90/5/5 read/insert/update.
	ReadFrac, InsertFrac, UpdateFrac, ScanFrac, DeleteFrac float64
	// ScanLen is the SCAN page size (default 16).
	ScanLen int
	// DialRetry bounds how long the first dial retries a refused
	// connection (server still starting). Default 2s.
	DialRetry time.Duration
}

func (o Options) conns() int {
	if o.Conns < 1 {
		return 4
	}
	return o.Conns
}

func (o Options) scanLen() int {
	if o.ScanLen < 1 {
		return 16
	}
	return o.ScanLen
}

func (o Options) dist() ycsb.Distribution {
	if o.Dist == nil {
		return ycsb.Uniform{}
	}
	return o.Dist
}

func (o Options) mix() (cum [numKinds]float64, err error) {
	r, i, u, s, d := o.ReadFrac, o.InsertFrac, o.UpdateFrac, o.ScanFrac, o.DeleteFrac
	if r == 0 && i == 0 && u == 0 && s == 0 && d == 0 {
		r, i, u = 0.90, 0.05, 0.05
	}
	sum := r + i + u + s + d
	if sum > 1+1e-9 || i < 0 || u < 0 || s < 0 || d < 0 || r < 0 {
		return cum, fmt.Errorf("loadgen: op fractions sum to %v (> 1) or are negative", sum)
	}
	// Reads absorb any remainder; cumulative thresholds in draw order.
	r += 1 - sum
	cum[KindInsert] = i
	cum[KindUpdate] = i + u
	cum[KindScan] = i + u + s
	cum[KindDelete] = i + u + s + d
	cum[KindRead] = 1 // remainder
	return cum, nil
}

// KindCount is one op kind's tally.
type KindCount struct {
	// Ops counts replies received for this kind.
	Ops uint64
	// Errors counts error replies among them.
	Errors uint64
}

// Report is one load run's outcome.
type Report struct {
	// Target is the configured aggregate QPS.
	Target float64
	// Achieved is completed operations per second of elapsed wall time
	// (including the drain tail).
	Achieved float64
	// Sent and Done count requests written and replies received; after
	// a clean run and drain they are equal.
	Sent, Done uint64
	// Late counts arrivals dispatched more than 1ms behind their
	// open-loop schedule (the generator fell behind, not the server).
	Late uint64
	// Elapsed is the wall time from window open to last reply.
	Elapsed time.Duration
	// Kinds tallies replies per op kind.
	Kinds [5]KindCount
	// ProtoErrors counts replies that failed to parse or had an
	// impossible shape — any non-zero value is a server bug.
	ProtoErrors uint64
	// ErrorCodes tallies error replies by typed code (ERR, UNAVAIL,
	// SHUTDOWN, BUSY).
	ErrorCodes map[string]uint64
	// PreloadErrors counts failed preload SETs.
	PreloadErrors uint64
}

// TotalErrors sums error replies across kinds.
func (r Report) TotalErrors() uint64 {
	n := uint64(0)
	for _, k := range r.Kinds {
		n += k.Errors
	}
	return n
}

// Deficit is Sent - Done: accepted requests whose reply never arrived.
// Non-zero after a drain means the server dropped acknowledged work.
func (r Report) Deficit() uint64 { return r.Sent - r.Done }

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target=%.0f qps achieved=%.0f qps sent=%d done=%d deficit=%d late=%d elapsed=%v\n",
		r.Target, r.Achieved, r.Sent, r.Done, r.Deficit(), r.Late, r.Elapsed.Round(time.Millisecond))
	for k := KindRead; k < numKinds; k++ {
		kc := r.Kinds[k]
		if kc.Ops == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-7s ops=%-8d errors=%d\n", k.String(), kc.Ops, kc.Errors)
	}
	if len(r.ErrorCodes) > 0 {
		codes := make([]string, 0, len(r.ErrorCodes))
		for c := range r.ErrorCodes {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		b.WriteString("  error codes:")
		for _, c := range codes {
			fmt.Fprintf(&b, " %s=%d", c, r.ErrorCodes[c])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  proto errors=%d preload errors=%d\n", r.ProtoErrors, r.PreloadErrors)
	return b.String()
}

// Key renders identifier id as its wire key: "k" + 16 hex digits of
// the mixed id — fixed width, scattered across the key space.
func Key(id uint64) []byte { return AppendKey(nil, id) }

// AppendKey appends Key(id) to dst.
func AppendKey(dst []byte, id uint64) []byte {
	m := keys.Mix64(id)
	dst = append(dst, 'k')
	for sh := 60; sh >= 0; sh -= 4 {
		dst = append(dst, "0123456789abcdef"[(m>>uint(sh))&0xf])
	}
	return dst
}

// Run preloads (when LoadN > 0), opens the window, drives the
// open-loop schedule, drains, and reports. It returns an error only
// for configuration or connection-establishment failures; server-side
// error replies are counted in the report instead.
func Run(o Options) (Report, error) {
	cum, err := o.mix()
	if err != nil {
		return Report{}, err
	}
	if o.QPS <= 0 {
		return Report{}, fmt.Errorf("loadgen: QPS must be positive, got %v", o.QPS)
	}
	if o.Duration <= 0 {
		return Report{}, fmt.Errorf("loadgen: Duration must be positive, got %v", o.Duration)
	}
	rep := Report{Target: o.QPS, ErrorCodes: make(map[string]uint64)}
	if o.LoadN > 0 {
		if err := preload(o, &rep); err != nil {
			return rep, err
		}
	}
	conns := o.conns()
	workers := make([]*worker, conns)
	for i := range workers {
		nc, err := dial(o)
		if err != nil {
			for _, w := range workers[:i] {
				w.nc.Close()
			}
			return rep, err
		}
		workers[i] = newWorker(o, nc, i, cum)
	}
	var nextInsert atomic.Uint64
	nextInsert.Store(uint64(o.LoadN))
	start := time.Now()
	deadline := start.Add(o.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(start, deadline, &nextInsert)
		}(w)
	}
	wg.Wait()
	end := start
	for _, w := range workers {
		rep.Sent += w.sent
		rep.Done += w.done
		rep.Late += w.late
		rep.ProtoErrors += w.protoErrs
		for k := range w.kinds {
			rep.Kinds[k].Ops += w.kinds[k].Ops
			rep.Kinds[k].Errors += w.kinds[k].Errors
		}
		for code, n := range w.codes {
			rep.ErrorCodes[code] += n
		}
		if w.lastReply.After(end) {
			end = w.lastReply
		}
	}
	rep.Elapsed = end.Sub(start)
	if rep.Elapsed > 0 {
		rep.Achieved = float64(rep.Done) / rep.Elapsed.Seconds()
	}
	return rep, nil
}

// dial connects, retrying refused connections for DialRetry (the CI
// smoke starts client and server near-simultaneously).
func dial(o Options) (net.Conn, error) {
	retry := o.DialRetry
	if retry <= 0 {
		retry = 2 * time.Second
	}
	deadline := time.Now().Add(retry)
	for {
		nc, err := net.Dial("tcp", o.Addr)
		if err == nil {
			return nc, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("loadgen: dial %s: %w", o.Addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// preload pipelines SET id for ids [0, LoadN) over one connection,
// flushing in windows, and verifies every reply.
func preload(o Options, rep *Report) error {
	nc, err := dial(o)
	if err != nil {
		return err
	}
	defer nc.Close()
	bw := bufio.NewWriterSize(nc, 1<<16)
	br := bufio.NewReaderSize(nc, 1<<16)
	const window = 512
	var frame []byte
	var val [20]byte
	pendingReplies := 0
	settle := func() error {
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("loadgen: preload flush: %w", err)
		}
		for ; pendingReplies > 0; pendingReplies-- {
			rp, err := server.ReadReply(br)
			if err != nil {
				return fmt.Errorf("loadgen: preload reply: %w", err)
			}
			if rp.Kind != server.ReplySimple {
				rep.PreloadErrors++
			}
		}
		return nil
	}
	for id := 0; id < o.LoadN; id++ {
		frame = frame[:0]
		frame = append(frame, "*3\r\n$3\r\nSET\r\n$17\r\n"...)
		frame = AppendKey(frame, uint64(id))
		frame = append(frame, '\r', '\n')
		v := strconv.AppendUint(val[:0], uint64(id), 10)
		frame = append(frame, '$')
		frame = strconv.AppendInt(frame, int64(len(v)), 10)
		frame = append(frame, '\r', '\n')
		frame = append(frame, v...)
		frame = append(frame, '\r', '\n')
		if _, err := bw.Write(frame); err != nil {
			return fmt.Errorf("loadgen: preload write: %w", err)
		}
		if pendingReplies++; pendingReplies >= window {
			if err := settle(); err != nil {
				return err
			}
		}
	}
	return settle()
}

// worker is one connection's open-loop state.
type worker struct {
	o       Options
	nc      net.Conn
	bw      *bufio.Writer
	br      *bufio.Reader
	rng     *rand.Rand
	sampler ycsb.Sampler
	cum     [numKinds]float64
	gapMean float64 // mean inter-arrival in seconds (conn-local rate)

	expect chan Kind // kinds of requests in flight, in order

	// Sender-side tallies.
	sent, late uint64
	// Receiver-side tallies.
	done, protoErrs uint64
	kinds           [numKinds]KindCount
	codes           map[string]uint64
	lastReply       time.Time
}

func newWorker(o Options, nc net.Conn, i int, cum [numKinds]float64) *worker {
	rng := rand.New(rand.NewSource(o.Seed + int64(i)*0x9e3779b9))
	return &worker{
		o:       o,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 1<<15),
		br:      bufio.NewReaderSize(nc, 1<<15),
		rng:     rng,
		sampler: o.dist().NewSampler(o.LoadN, rng),
		cum:     cum,
		gapMean: float64(o.conns()) / o.QPS,
		expect:  make(chan Kind, 8192),
		codes:   make(map[string]uint64),
	}
}

// run drives the worker's Poisson schedule until the deadline, then
// half-closes and drains.
func (w *worker) run(start, deadline time.Time, nextInsert *atomic.Uint64) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.receive()
	}()
	next := start
	var frame []byte
	for {
		// Exponential gap: Poisson arrivals at the conn-local rate.
		next = next.Add(time.Duration(w.rng.ExpFloat64() * w.gapMean * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			// About to idle: push buffered requests to the server first,
			// so pipelining never trades latency for the schedule.
			w.bw.Flush()
			time.Sleep(d)
		} else if d < -time.Millisecond {
			w.late++
		}
		kind, args := w.draw(nextInsert)
		frame = server.AppendFrame(frame[:0], args)
		if _, err := w.bw.Write(frame); err != nil {
			break // connection gone (server crash test); receiver sees EOF
		}
		w.sent++
		w.expect <- kind
	}
	w.bw.Flush()
	close(w.expect)
	// Half-close: no more requests, replies still flow — the server's
	// EOF drain path settles and answers everything accepted.
	if tc, ok := w.nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-done
	w.nc.Close()
}

// draw picks one operation and materialises its wire arguments.
func (w *worker) draw(nextInsert *atomic.Uint64) (Kind, [][]byte) {
	u := w.rng.Float64()
	var kind Kind
	switch {
	case u < w.cum[KindInsert]:
		kind = KindInsert
	case u < w.cum[KindUpdate]:
		kind = KindUpdate
	case u < w.cum[KindScan]:
		kind = KindScan
	case u < w.cum[KindDelete]:
		kind = KindDelete
	default:
		kind = KindRead
	}
	switch kind {
	case KindInsert:
		id := nextInsert.Add(1) - 1
		w.sampler.NoteInsert(id)
		return kind, [][]byte{[]byte("SET"), Key(id), []byte(strconv.FormatUint(id, 10))}
	case KindUpdate:
		id := w.sampler.Next()
		return kind, [][]byte{[]byte("UPDATE"), Key(id), []byte(strconv.FormatUint(id^0x5a5a, 10))}
	case KindScan:
		id := w.sampler.Next()
		return kind, [][]byte{[]byte("SCAN"), Key(id), []byte(strconv.Itoa(w.o.scanLen()))}
	case KindDelete:
		id := w.sampler.Next()
		return kind, [][]byte{[]byte("DEL"), Key(id)}
	default:
		id := w.sampler.Next()
		return kind, [][]byte{[]byte("GET"), Key(id)}
	}
}

// receive consumes one reply per expected request, classifying
// outcomes; it exits when the sender closes the expectation stream and
// every in-flight reply arrived (or the connection died).
func (w *worker) receive() {
	for kind := range w.expect {
		rp, err := server.ReadReply(w.br)
		if err != nil {
			// Connection died with replies owed (server crash): the
			// remaining expectations are the deficit.
			for range w.expect {
			}
			return
		}
		w.lastReply = time.Now()
		w.done++
		kc := &w.kinds[kind]
		kc.Ops++
		if rp.Kind == server.ReplyError {
			kc.Errors++
			w.codes[rp.ErrorCode()]++
			continue
		}
		if !plausible(kind, rp) {
			w.protoErrs++
		}
	}
}

// plausible checks a success reply's shape against its op kind.
func plausible(kind Kind, rp server.Reply) bool {
	switch kind {
	case KindRead:
		return rp.Kind == server.ReplyInt || (rp.Kind == server.ReplyBulk && rp.Null)
	case KindInsert, KindUpdate:
		return rp.Kind == server.ReplySimple
	case KindDelete:
		return rp.Kind == server.ReplyInt
	case KindScan:
		return rp.Kind == server.ReplyArray && len(rp.Elems) == 2
	}
	return false
}
