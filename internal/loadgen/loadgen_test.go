package loadgen_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/loadgen"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/ycsb"
	"repro/shard"
)

// startServer runs an in-process recipesrv-equivalent and returns its
// address.
func startServer(t *testing.T, mode server.WriteMode) string {
	t.Helper()
	m, err := shard.NewOrdered("P-ART", keys.YCSBString, shard.Options{
		Shards: 4,
		Heap:   pmem.Options{Track: true},
	})
	if err != nil {
		t.Fatalf("NewOrdered: %v", err)
	}
	t.Cleanup(m.Release)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(m, server.Options{Mode: mode, IndexName: "P-ART"})
	fin := make(chan error, 1)
	go func() { fin <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-fin
	})
	return lis.Addr().String()
}

// TestSustainsTargetQPS: the open-loop generator reaches its arrival
// target and drains cleanly in every write-path mode — zero deficit,
// zero protocol errors, zero error replies.
func TestSustainsTargetQPS(t *testing.T) {
	for _, mode := range []server.WriteMode{server.ModeSync, server.ModeBatched, server.ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			addr := startServer(t, mode)
			rep, err := loadgen.Run(loadgen.Options{
				Addr:     addr,
				Conns:    2,
				QPS:      2000,
				Duration: 400 * time.Millisecond,
				LoadN:    300,
				Seed:     7,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			t.Logf("mode=%s %s", mode, rep.String())
			if rep.Deficit() != 0 {
				t.Fatalf("reply deficit %d: accepted requests went unanswered", rep.Deficit())
			}
			if rep.ProtoErrors != 0 || rep.PreloadErrors != 0 {
				t.Fatalf("protocol errors: proto=%d preload=%d", rep.ProtoErrors, rep.PreloadErrors)
			}
			if n := rep.TotalErrors(); n != 0 {
				t.Fatalf("%d error replies: %v", n, rep.ErrorCodes)
			}
			if rep.Done == 0 {
				t.Fatal("no operations completed")
			}
			// Open-loop: achieved tracks the arrival schedule. Generous
			// floor — CI runs this on one slow core under -race.
			if rep.Achieved < 0.4*rep.Target {
				t.Fatalf("achieved %.0f qps, under 40%% of target %.0f", rep.Achieved, rep.Target)
			}
		})
	}
}

// TestMixedWorkloadZipfian: skewed keys, scans and deletes through the
// full reply-validation path.
func TestMixedWorkloadZipfian(t *testing.T) {
	addr := startServer(t, server.ModeBatched)
	rep, err := loadgen.Run(loadgen.Options{
		Addr:       addr,
		Conns:      2,
		QPS:        1500,
		Duration:   300 * time.Millisecond,
		LoadN:      400,
		Dist:       ycsb.Zipfian{Theta: 0.99},
		Seed:       11,
		ReadFrac:   0.55,
		InsertFrac: 0.15,
		UpdateFrac: 0.15,
		ScanFrac:   0.10,
		DeleteFrac: 0.05,
		ScanLen:    8,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("%s", rep.String())
	if rep.Deficit() != 0 || rep.ProtoErrors != 0 || rep.TotalErrors() != 0 {
		t.Fatalf("unclean run: deficit=%d proto=%d errors=%d (%v)",
			rep.Deficit(), rep.ProtoErrors, rep.TotalErrors(), rep.ErrorCodes)
	}
	for _, k := range []loadgen.Kind{loadgen.KindRead, loadgen.KindInsert, loadgen.KindUpdate, loadgen.KindScan, loadgen.KindDelete} {
		if rep.Kinds[k].Ops == 0 {
			t.Fatalf("op kind %s never exercised", k)
		}
	}
}

// TestOptionValidation: malformed configurations fail fast.
func TestOptionValidation(t *testing.T) {
	if _, err := loadgen.Run(loadgen.Options{Addr: "x", QPS: 0, Duration: time.Second}); err == nil {
		t.Fatal("QPS 0 must be rejected")
	}
	if _, err := loadgen.Run(loadgen.Options{Addr: "x", QPS: 100, Duration: 0}); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	if _, err := loadgen.Run(loadgen.Options{
		Addr: "x", QPS: 100, Duration: time.Second,
		ReadFrac: 0.9, InsertFrac: 0.9,
	}); err == nil {
		t.Fatal("fractions summing past 1 must be rejected")
	}
	if _, err := loadgen.Run(loadgen.Options{
		Addr: "127.0.0.1:1", QPS: 100, Duration: 50 * time.Millisecond,
		DialRetry: 50 * time.Millisecond,
	}); err == nil {
		t.Fatal("unreachable server must surface a dial error")
	}
}
