// Package levelhash implements Level Hashing (Zuo et al., OSDI '18), the
// second hand-crafted PM hash table in RECIPE's unordered-index
// evaluation (§7.2, Fig 5, Table 4).
//
// Level hashing keeps two bucket arrays: a top level of N buckets and a
// bottom level of N/2. Every key has two candidate top-level buckets (two
// hash functions); each bottom-level bucket is shared by the two top
// buckets above it, giving each key four candidate cache lines in the
// worst case — the "two-level architecture that results in
// non-contiguous cache line accesses" the paper blames for Level
// hashing's higher LLC miss rate (Table 4). Resizing is one-level
// rotation: a new top level of 2N buckets is allocated, the old top
// becomes the new bottom, and the old bottom's keys are rehashed into the
// new top.
//
// Writers lock buckets; slot commits write the value, fence, then publish
// with the atomic key store.
package levelhash

import (
	"errors"
	"sync/atomic"

	"repro/internal/crash"
	"repro/internal/pmem"
	"repro/internal/pmlock"
)

// SlotsPerBucket packs four 16-byte pairs per bucket (two cache lines of
// key/value halves in the original layout; modelled as one 64-byte line
// of keys plus one of values).
const SlotsPerBucket = 4

const bucketBytes = 64

// ErrZeroKey is returned for key 0, reserved as the empty-slot marker.
var ErrZeroKey = errors.New("levelhash: key 0 is reserved")

type bucket struct {
	pm   pmem.Obj
	off  uintptr
	lock pmlock.Mutex
	keys [SlotsPerBucket]atomic.Uint64
	vals [SlotsPerBucket]atomic.Uint64
}

type level struct {
	pm      pmem.Obj
	buckets []bucket
	bits    uint // log2(len(buckets))
}

// idx maps a hash to a bucket index using the high bits, so that when the
// top level doubles, the new index of a key is 2*old (+0/1). That keeps
// keys in the old top findable at index/2 once it becomes the bottom —
// the property the one-level rotation depends on.
func (l *level) idx(h uint64) uint64 { return h >> (64 - l.bits) }

type table struct {
	top    *level
	bottom *level
}

// topIndexes returns the two candidate top-level bucket indexes for key.
func (t *table) topIndexes(key uint64) (uint64, uint64) {
	return t.top.idx(hash1(key)), t.top.idx(hash2(key))
}

// Index is a Level-hashing table over non-zero uint64 keys.
type Index struct {
	heap   *pmem.Heap
	rootPM pmem.Obj
	tab    atomic.Pointer[table]
	resize pmlock.Mutex
	count  atomic.Int64
}

// DefaultTopBuckets sizes the initial top level; with the bottom level at
// half size this is ~48 KB of buckets, matching the paper's starting
// size.
const DefaultTopBuckets = 512

// New returns an empty level-hashing table of the default initial size.
func New(heap *pmem.Heap) *Index { return NewWithBuckets(heap, DefaultTopBuckets) }

// NewWithBuckets returns an empty table with n top-level buckets (rounded
// up to an even power of two).
func NewWithBuckets(heap *pmem.Heap, n int) *Index {
	if n < 2 {
		n = 2
	}
	p := 2
	for p < n {
		p *= 2
	}
	idx := &Index{heap: heap}
	idx.rootPM = heap.Alloc(64)
	heap.Shadow(idx.rootPM, &idx.tab)
	t := &table{top: idx.newLevel(p), bottom: idx.newLevel(p / 2)}
	idx.tab.Store(t)
	heap.PersistFence(idx.rootPM, 0, 64)
	return idx
}

func (idx *Index) newLevel(n int) *level {
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		panic("levelhash: level size must be a power of two")
	}
	l := &level{buckets: make([]bucket, n), bits: bits}
	l.pm = idx.heap.Alloc(uintptr(n) * bucketBytes)
	for i := range l.buckets {
		l.buckets[i].pm = l.pm
		l.buckets[i].off = uintptr(i) * bucketBytes
	}
	idx.heap.ShadowSlice(l.pm, l.buckets, bucketBytes)
	idx.heap.Persist(l.pm, 0, uintptr(n)*bucketBytes)
	return l
}

func hash1(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

func hash2(k uint64) uint64 {
	k ^= k >> 31
	k *= 0x9E3779B97F4A7C15
	k ^= k >> 29
	return k
}

// candidates returns the four candidate buckets for a key in probe order:
// two top-level, then the two shared bottom-level buckets (top index / 2).
func (t *table) candidates(key uint64) [4]*bucket {
	i1, i2 := t.topIndexes(key)
	return [4]*bucket{
		&t.top.buckets[i1],
		&t.top.buckets[i2],
		&t.bottom.buckets[i1/2],
		&t.bottom.buckets[i2/2],
	}
}

// Lookup returns the value for key, probing all four candidate buckets
// with lock-free atomic snapshots.
func (idx *Index) Lookup(key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	t := idx.tab.Load()
	for _, b := range t.candidates(key) {
		idx.heap.Load(b.pm, b.off, bucketBytes)
		for i := 0; i < SlotsPerBucket; i++ {
			if b.keys[i].Load() == key {
				v := b.vals[i].Load()
				if b.keys[i].Load() == key {
					return v, true
				}
			}
		}
	}
	return 0, false
}

// Insert stores value under key, overwriting an existing value.
func (idx *Index) Insert(key, value uint64) (err error) {
	if key == 0 {
		return ErrZeroKey
	}
	defer recoverCrash(&err)
	for {
		t := idx.tab.Load()
		if idx.tryInsert(t, key, value) {
			return nil
		}
		idx.rehash(t)
	}
}

func (idx *Index) tryInsert(t *table, key, value uint64) bool {
	cands := t.candidates(key)
	// First pass: update in place if present (any candidate).
	for _, b := range cands {
		b.lock.Lock()
		if idx.tab.Load() != t {
			b.lock.Unlock()
			return false
		}
		for i := 0; i < SlotsPerBucket; i++ {
			if b.keys[i].Load() == key {
				b.vals[i].Store(value)
				idx.heap.Dirty(b.pm, b.off+24+uintptr(i)*8, 8)
				idx.heap.PersistFence(b.pm, b.off+24+uintptr(i)*8, 8)
				idx.heap.CrashPoint("level.update.commit")
				b.lock.Unlock()
				return true
			}
		}
		b.lock.Unlock()
	}
	// Second pass: claim the first free slot in candidate order.
	for _, b := range cands {
		b.lock.Lock()
		if idx.tab.Load() != t {
			b.lock.Unlock()
			return false
		}
		for i := 0; i < SlotsPerBucket; i++ {
			if b.keys[i].Load() == 0 {
				b.vals[i].Store(value)
				idx.heap.Dirty(b.pm, b.off+24+uintptr(i)*8, 8)
				idx.heap.Fence()
				idx.heap.CrashPoint("level.insert.val")
				b.keys[i].Store(key)
				idx.heap.Dirty(b.pm, b.off+uintptr(i)*8, 8)
				idx.heap.PersistFence(b.pm, b.off, bucketBytes)
				idx.heap.CrashPoint("level.insert.commit")
				idx.count.Add(1)
				b.lock.Unlock()
				return true
			}
		}
		b.lock.Unlock()
	}
	return false
}

// Delete removes key with a single atomic key-zeroing store.
func (idx *Index) Delete(key uint64) (deleted bool, err error) {
	if key == 0 {
		return false, ErrZeroKey
	}
	defer recoverCrash(&err)
	for {
		t := idx.tab.Load()
		for _, b := range t.candidates(key) {
			b.lock.Lock()
			if idx.tab.Load() != t {
				b.lock.Unlock()
				goto retry
			}
			for i := 0; i < SlotsPerBucket; i++ {
				if b.keys[i].Load() == key {
					b.keys[i].Store(0)
					idx.heap.Dirty(b.pm, b.off+uintptr(i)*8, 8)
					idx.heap.PersistFence(b.pm, b.off+uintptr(i)*8, 8)
					idx.heap.CrashPoint("level.delete.commit")
					idx.count.Add(-1)
					b.lock.Unlock()
					return true, nil
				}
			}
			b.lock.Unlock()
		}
		return false, nil
	retry:
	}
}

// rehash performs the one-level rotation: new top of 2N, old top becomes
// the bottom, old bottom's keys rehash into the new top. The new table is
// committed with a single atomic pointer swap.
func (idx *Index) rehash(old *table) {
	idx.resize.Lock()
	defer idx.resize.Unlock()
	if idx.tab.Load() != old {
		return
	}
	// Lock every bucket of the old table so no writer races the copy.
	for i := range old.top.buckets {
		old.top.buckets[i].lock.Lock()
	}
	for i := range old.bottom.buckets {
		old.bottom.buckets[i].lock.Lock()
	}
	nt := &table{top: idx.newLevel(len(old.top.buckets) * 2), bottom: old.top}
	for i := range old.bottom.buckets {
		b := &old.bottom.buckets[i]
		for s := 0; s < SlotsPerBucket; s++ {
			k := b.keys[s].Load()
			if k == 0 {
				continue
			}
			idx.copyInto(nt, k, b.vals[s].Load())
		}
	}
	idx.heap.Persist(nt.top.pm, 0, uintptr(len(nt.top.buckets))*bucketBytes)
	// The retiring top (new bottom) may have absorbed spill placements.
	idx.heap.Persist(nt.bottom.pm, 0, uintptr(len(nt.bottom.buckets))*bucketBytes)
	idx.heap.Fence()
	idx.heap.CrashPoint("level.rehash.built")
	idx.tab.Store(nt)
	idx.heap.Dirty(idx.rootPM, 0, 8)
	idx.heap.PersistFence(idx.rootPM, 0, 8)
	idx.heap.CrashPoint("level.rehash.swap")
	for i := range old.top.buckets {
		old.top.buckets[i].lock.Unlock()
	}
	for i := range old.bottom.buckets {
		old.bottom.buckets[i].lock.Unlock()
	}
}

// copyInto places a rehashed key into the unpublished new table (private,
// so plain stores suffice). Order: new-top candidates, one-step
// displacement within the new top (the original's bucket-movement
// scheme), then the bottom candidates. The new top receives at most a
// quarter of its slot capacity during a rotation, so with two choices
// plus displacement a placement failure is practically unreachable.
func (idx *Index) copyInto(t *table, key, value uint64) {
	l := t.top
	i1, i2 := l.idx(hash1(key)), l.idx(hash2(key))
	for _, bi := range [2]uint64{i1, i2} {
		if place(&l.buckets[bi], key, value) {
			return
		}
	}
	// Displacement: evict one occupant of a candidate bucket to the
	// occupant's alternate top bucket.
	for _, bi := range [2]uint64{i1, i2} {
		b := &l.buckets[bi]
		for s := 0; s < SlotsPerBucket; s++ {
			ok := b.keys[s].Load()
			for _, abi := range [2]uint64{l.idx(hash1(ok)), l.idx(hash2(ok))} {
				if abi == bi {
					continue
				}
				if place(&l.buckets[abi], ok, b.vals[s].Load()) {
					b.vals[s].Store(value)
					b.keys[s].Store(key)
					return
				}
			}
		}
	}
	for _, bi := range [2]uint64{i1 / 2, i2 / 2} {
		if place(&t.bottom.buckets[bi], key, value) {
			return
		}
	}
	panic("levelhash: could not place key during rotation (table pathologically skewed)")
}

// place stores (key, value) in the first free slot of an unpublished
// bucket, reporting success.
func place(b *bucket, key, value uint64) bool {
	for i := 0; i < SlotsPerBucket; i++ {
		if b.keys[i].Load() == 0 {
			b.vals[i].Store(value)
			b.keys[i].Store(key)
			return true
		}
	}
	return false
}

// Len returns the number of live keys.
func (idx *Index) Len() int { return int(idx.count.Load()) }

// Range calls fn for every live key/value pair until fn returns false.
// Enumeration order is unspecified. Both levels of one atomically
// loaded table are swept with the lookup snapshot (value, key-recheck);
// a consistent cut requires quiesced writers.
func (idx *Index) Range(fn func(key, value uint64) bool) {
	t := idx.tab.Load()
	for _, l := range [2]*level{t.top, t.bottom} {
		for i := range l.buckets {
			b := &l.buckets[i]
			idx.heap.Load(b.pm, b.off, bucketBytes)
			for e := 0; e < SlotsPerBucket; e++ {
				k := b.keys[e].Load()
				if k == 0 {
					continue
				}
				v := b.vals[e].Load()
				if b.keys[e].Load() != k {
					continue
				}
				if !fn(k, v) {
					return
				}
			}
		}
	}
}

// TopBuckets returns the current top-level bucket count.
func (idx *Index) TopBuckets() int { return len(idx.tab.Load().top.buckets) }

// Recover re-initialises all locks after a simulated crash.
func (idx *Index) Recover() {
	idx.resize.Reset()
	t := idx.tab.Load()
	for i := range t.top.buckets {
		t.top.buckets[i].lock.Reset()
	}
	for i := range t.bottom.buckets {
		t.bottom.buckets[i].lock.Reset()
	}
}

func recoverCrash(err *error) {
	if r := recover(); r != nil {
		*err = crash.Recover(r)
	}
}
