package levelhash

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func TestInsertLookup(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(3, 30); err != nil {
		t.Fatal(err)
	}
	if v, ok := idx.Lookup(3); !ok || v != 30 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := idx.Lookup(4); ok {
		t.Fatal("phantom")
	}
}

func TestZeroKey(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(0, 1); err != ErrZeroKey {
		t.Fatalf("err = %v", err)
	}
	if _, err := idx.Delete(0); err != ErrZeroKey {
		t.Fatalf("err = %v", err)
	}
	if _, ok := idx.Lookup(0); ok {
		t.Fatal("zero key lookup hit")
	}
}

func TestUpdateInPlace(t *testing.T) {
	idx := New(pmem.NewFast())
	if err := idx.Insert(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(9, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := idx.Lookup(9); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestDelete(t *testing.T) {
	idx := New(pmem.NewFast())
	for k := uint64(1); k <= 200; k++ {
		if err := idx.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 200; k += 2 {
		del, err := idx.Delete(k)
		if err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", k, del, err)
		}
	}
	if del, _ := idx.Delete(1); del {
		t.Fatal("double delete succeeded")
	}
	for k := uint64(2); k <= 200; k += 2 {
		if v, ok := idx.Lookup(k); !ok || v != k {
			t.Fatalf("survivor %d = %d,%v", k, v, ok)
		}
	}
}

func TestRotationGrowsAndPreserves(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 4)
	const n = 20000
	for i := uint64(1); i <= n; i++ {
		if err := idx.Insert(keys.Mix64(i), i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if idx.TopBuckets() <= 4 {
		t.Fatal("table never rotated")
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := idx.Lookup(keys.Mix64(i)); !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d", idx.Len())
	}
}

// Keys that lived in the old top must remain findable after it becomes
// the bottom level — the high-bit indexing invariant.
func TestOldTopFindableAfterRotation(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 8)
	inserted := []uint64{}
	i := uint64(1)
	start := idx.TopBuckets()
	for idx.TopBuckets() == start {
		k := keys.Mix64(i)
		if err := idx.Insert(k, i); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, k)
		i++
	}
	for j, k := range inserted {
		if v, ok := idx.Lookup(k); !ok || v != uint64(j+1) {
			t.Fatalf("pre-rotation key %d lost after rotation (%d,%v)", k, v, ok)
		}
	}
}

func TestOracleRandom(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 8)
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(4000)) + 1
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			if err := idx.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			if _, err := idx.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(oracle, k)
		default:
			v, ok := idx.Lookup(k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("Lookup(%d) = %d,%v oracle %d,%v", k, v, ok, ov, ook)
			}
		}
	}
	if idx.Len() != len(oracle) {
		t.Fatalf("Len = %d oracle %d", idx.Len(), len(oracle))
	}
}

// Property: distinct keys all round-trip through rotations.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		idx := NewWithBuckets(pmem.NewFast(), 4)
		count := int(n%1500) + 1
		for i := 0; i < count; i++ {
			if idx.Insert(keys.Mix64(seed+uint64(i))|1, uint64(i)) != nil {
				return false
			}
		}
		for i := 0; i < count; i++ {
			if v, ok := idx.Lookup(keys.Mix64(seed+uint64(i)) | 1); !ok || v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrent(t *testing.T) {
	idx := NewWithBuckets(pmem.NewFast(), 8)
	const threads = 8
	const per = 4000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := keys.Mix64(uint64(g*per+i)) | 1
				if err := idx.Insert(k, uint64(i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for g := 0; g < threads; g++ {
		for i := 0; i < per; i += 53 {
			k := keys.Mix64(uint64(g*per+i)) | 1
			if _, ok := idx.Lookup(k); !ok {
				t.Fatalf("missing key %d", k)
			}
		}
	}
}

// §5 crash testing: enumerate crash states, verify no committed key lost.
func TestCrashRecoveryEnumerated(t *testing.T) {
	for n := int64(1); ; n++ {
		heap := pmem.NewFast()
		idx := NewWithBuckets(heap, 4)
		heap.SetInjector(crash.NewNth(n))
		committed := make(map[uint64]uint64)
		crashed := false
		for i := uint64(1); i <= 1500; i++ {
			k := keys.Mix64(i)
			err := idx.Insert(k, i)
			if crash.IsCrash(err) {
				crashed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = i
		}
		heap.SetInjector(nil)
		if !crashed {
			if n == 1 {
				t.Fatal("no crash sites reached")
			}
			t.Logf("enumerated %d crash states", n-1)
			break
		}
		idx.Recover()
		for k, v := range committed {
			got, ok := idx.Lookup(k)
			if !ok || got != v {
				t.Fatalf("crash state %d: committed key %d lost (%d,%v)", n, k, got, ok)
			}
		}
		for i := uint64(900000); i < 900040; i++ {
			if err := idx.Insert(keys.Mix64(i), i); err != nil {
				t.Fatalf("crash state %d: post-crash insert: %v", n, err)
			}
		}
		if n > 6000 {
			t.Fatal("crash-state enumeration did not terminate")
		}
	}
}

func TestDurabilityFlushCoverage(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	idx := NewWithBuckets(heap, 8)
	for i := uint64(1); i <= 2000; i++ {
		if err := idx.Insert(keys.Mix64(i), i); err != nil {
			t.Fatal(err)
		}
		if v := heap.Tracker().Check(); len(v) != 0 {
			t.Fatalf("insert %d left unpersisted lines: %v", i, v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	idx := New(pmem.NewFast())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(keys.Mix64(uint64(i))|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
