package commit_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/shard"
)

// watchdog bounds on anything that could hang: a deadlocked committer
// must fail the test, not wedge the run.
const guardTimeout = 30 * time.Second

// waitGuarded waits for f with the watchdog.
func waitGuarded(t *testing.T, f *commit.Future) error {
	t.Helper()
	select {
	case <-f.Done():
		return f.Err()
	case <-time.After(guardTimeout):
		t.Fatal("future wait timed out — pipeline hung")
		return nil
	}
}

// closeGuarded closes with the watchdog.
func closeGuarded(t *testing.T, close func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- close() }()
	select {
	case err := <-done:
		return err
	case <-time.After(guardTimeout):
		t.Fatal("Close timed out — graceful drain hung")
		return nil
	}
}

// newCommitter builds a standalone committer over one P-ART heap.
func newCommitter(t *testing.T, heap *pmem.Heap, opts commit.Options) (*commit.Committer[group.ByteOp], core.OrderedIndex) {
	t.Helper()
	idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	opts.Heap = heap
	c := commit.NewCommitter(func(ops []group.ByteOp, obs group.Observer) error {
		return group.ApplyOrdered(heap, idx, ops, obs)
	}, nil, opts)
	return c, idx
}

// TestAckAfterFence: a future that resolved nil is durable — at every
// acknowledgment point the flush tracker reports no dirty unfenced
// line, and every acked key reads back.
func TestAckAfterFence(t *testing.T) {
	heap := pmem.New(pmem.Options{Track: true})
	defer heap.Release()
	c, idx := newCommitter(t, heap, commit.Options{Queue: 32, MaxBatch: 8})
	gen := keys.NewGenerator(keys.RandInt)

	const n = 200
	futs := make([]*commit.Future, n)
	for i := 0; i < n; i++ {
		f, err := c.Enqueue(group.ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("future %d after Drain: %v", i, err)
		}
	}
	// Every ack implies its covering fence retired, so after the drain
	// barrier nothing durable is outstanding.
	if v := heap.Tracker().Check(); len(v) != 0 {
		t.Fatalf("acked writes left %d undurable lines: %v", len(v), v)
	}
	for i := 0; i < n; i++ {
		if v, ok := idx.Lookup(gen.Key(uint64(i))); !ok || v != uint64(i) {
			t.Fatalf("acked key %d: ok=%v v=%d", i, ok, v)
		}
	}
	if err := closeGuarded(t, c.Close); err != nil {
		t.Fatal(err)
	}
}

// gatedApply is an apply function a test can stall: each batch signals
// entered, then blocks until the gate is opened.
type gatedApply struct {
	entered chan struct{}
	gate    chan struct{}
	applied atomic.Int64
}

func newGatedApply() *gatedApply {
	return &gatedApply{entered: make(chan struct{}, 64), gate: make(chan struct{})}
}

func (g *gatedApply) apply(ops []group.ByteOp, obs group.Observer) error {
	g.entered <- struct{}{}
	<-g.gate
	g.applied.Add(int64(len(ops)))
	return nil
}

// fill stalls the committer in one in-flight batch and fills the
// queue: enqueue one op, wait for the committer to take it into apply,
// then enqueue `queue` more to occupy every slot.
func fill(t *testing.T, c *commit.Committer[group.ByteOp], g *gatedApply, queue int) []*commit.Future {
	t.Helper()
	futs := make([]*commit.Future, 0, queue+1)
	f, err := c.Enqueue(group.ByteOp{Key: []byte("k0"), Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	futs = append(futs, f)
	select {
	case <-g.entered:
	case <-time.After(guardTimeout):
		t.Fatal("committer never entered apply")
	}
	for i := 0; i < queue; i++ {
		f, err := c.Enqueue(group.ByteOp{Key: []byte(fmt.Sprintf("k%d", i+1)), Value: uint64(i + 1)})
		if err != nil {
			t.Fatalf("filling enqueue %d: %v", i, err)
		}
		futs = append(futs, f)
	}
	return futs
}

// TestRejectPolicy: a full queue fails fast with ErrQueueFull and no
// future; accepted ops still resolve once the committer resumes.
func TestRejectPolicy(t *testing.T) {
	g := newGatedApply()
	c := commit.NewCommitter(g.apply, nil, commit.Options{Queue: 2, MaxBatch: 1, Policy: commit.Reject})
	futs := fill(t, c, g, 2)

	f, err := c.Enqueue(group.ByteOp{Key: []byte("overflow")})
	if !errors.Is(err, commit.ErrQueueFull) {
		t.Fatalf("enqueue on full queue: err = %v, want ErrQueueFull", err)
	}
	if f != nil {
		t.Fatal("rejected enqueue returned a future")
	}

	close(g.gate)
	if err := closeGuarded(t, c.Close); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("accepted future %d: %v", i, err)
		}
	}
}

// TestDeadlinePolicy: a full queue waits EnqueueTimeout, then fails
// with ErrQueueFull; once space frees within the deadline the enqueue
// succeeds.
func TestDeadlinePolicy(t *testing.T) {
	g := newGatedApply()
	c := commit.NewCommitter(g.apply, nil, commit.Options{
		Queue: 2, MaxBatch: 1, Policy: commit.Deadline, EnqueueTimeout: 20 * time.Millisecond,
	})
	fill(t, c, g, 2)

	start := time.Now()
	_, err := c.Enqueue(group.ByteOp{Key: []byte("overflow")})
	if !errors.Is(err, commit.ErrQueueFull) {
		t.Fatalf("deadline enqueue: err = %v, want ErrQueueFull", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("deadline enqueue rejected after %v, want >= the 20ms deadline", waited)
	}

	// With the gate open the committer frees space within the deadline.
	close(g.gate)
	f, err := c.Enqueue(group.ByteOp{Key: []byte("after")})
	if err != nil {
		t.Fatalf("enqueue after gate opened: %v", err)
	}
	if err := waitGuarded(t, f); err != nil {
		t.Fatal(err)
	}
	if err := closeGuarded(t, c.Close); err != nil {
		t.Fatal(err)
	}
}

// TestBlockPolicy: a full queue blocks the enqueuer until the
// committer frees space — and completes rather than hanging.
func TestBlockPolicy(t *testing.T) {
	g := newGatedApply()
	c := commit.NewCommitter(g.apply, nil, commit.Options{Queue: 2, MaxBatch: 1, Policy: commit.Block})
	fill(t, c, g, 2)

	unblocked := make(chan *commit.Future, 1)
	go func() {
		f, err := c.Enqueue(group.ByteOp{Key: []byte("blocked")})
		if err != nil {
			panic(err)
		}
		unblocked <- f
	}()
	select {
	case <-unblocked:
		t.Fatal("enqueue on a full queue did not block")
	case <-time.After(50 * time.Millisecond):
	}

	close(g.gate)
	select {
	case f := <-unblocked:
		if err := waitGuarded(t, f); err != nil {
			t.Fatal(err)
		}
	case <-time.After(guardTimeout):
		t.Fatal("blocked enqueue never unblocked")
	}
	if err := closeGuarded(t, c.Close); err != nil {
		t.Fatal(err)
	}
}

// TestFlushIntervalBoundsStaleness: with a huge MaxBatch a trickle of
// writes must not wait for a full batch — the flush deadline commits
// the partial batch.
func TestFlushIntervalBoundsStaleness(t *testing.T) {
	heap := pmem.NewFast()
	defer heap.Release()
	c, idx := newCommitter(t, heap, commit.Options{
		Queue: 1024, MaxBatch: 1024, FlushInterval: 20 * time.Millisecond,
	})
	gen := keys.NewGenerator(keys.RandInt)

	for i := 0; i < 3; i++ {
		f, err := c.Enqueue(group.ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := waitGuarded(t, f); err != nil {
			t.Fatal(err)
		}
		if v, ok := idx.Lookup(gen.Key(uint64(i))); !ok || v != uint64(i) {
			t.Fatalf("trickle key %d after ack: ok=%v v=%d", i, ok, v)
		}
	}
	if err := closeGuarded(t, c.Close); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrain is the shutdown guarantee: after Close returns,
// every accepted future is resolved, post-close enqueues fail with
// ErrClosed, and the committer goroutine has exited (no leak).
func TestGracefulDrain(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)
	baseline := runtime.NumGoroutine()

	heap := pmem.NewFast()
	defer heap.Release()
	c, idx := newCommitter(t, heap, commit.Options{Queue: 32, MaxBatch: 8})

	const n = 500
	futs := make([]*commit.Future, n)
	for i := 0; i < n; i++ {
		f, err := c.Enqueue(group.ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	if err := closeGuarded(t, c.Close); err != nil {
		t.Fatal(err)
	}

	// No future unresolved, every accepted op durable and readable.
	for i, f := range futs {
		if err := f.Err(); errors.Is(err, commit.ErrPending) {
			t.Fatalf("future %d unresolved after Close", i)
		} else if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := idx.Lookup(gen.Key(uint64(i))); !ok || v != uint64(i) {
			t.Fatalf("key %d lost across Close: ok=%v v=%d", i, ok, v)
		}
	}

	// Post-close enqueues fail typed, without a future.
	if f, err := c.Enqueue(group.ByteOp{Key: gen.Key(0)}); !errors.Is(err, commit.ErrClosed) || f != nil {
		t.Fatalf("post-close enqueue = (%v, %v), want (nil, ErrClosed)", f, err)
	}
	if err := c.Drain(); !errors.Is(err, commit.ErrClosed) {
		t.Fatalf("post-close drain = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The committer goroutine exited: the count returns to baseline
	// (with retries — exiting goroutines need a scheduler beat).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		t.Fatalf("goroutines after Close = %d, baseline %d — committer leaked", got, baseline)
	}
}

// TestDrainUnderFire races concurrent enqueuers against Close:
// every enqueue must end in a durably-resolved future or a typed
// rejection — never a hang, never a lost ack.
func TestDrainUnderFire(t *testing.T) {
	m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	p := commit.NewOrdered(m, commit.Options{Queue: 16, MaxBatch: 8})
	gen := keys.NewGenerator(keys.RandInt)

	const writers = 8
	type acked struct {
		id  uint64
		fut *commit.Future
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []acked
		started  atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				id := uint64(w*1_000_000 + i)
				f, err := p.Insert(gen.Key(id), id)
				started.Add(1)
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, acked{id: id, fut: f})
					mu.Unlock()
				case errors.Is(err, commit.ErrClosed):
					return // the race resolved: typed rejection
				default:
					panic(fmt.Sprintf("writer %d: unexpected enqueue error %v", w, err))
				}
			}
		}(w)
	}

	// Let the enqueuers get going, then slam the door mid-stream.
	for started.Load() < 2_000 {
		time.Sleep(time.Millisecond)
	}
	if err := closeGuarded(t, p.Close); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(accepted) == 0 {
		t.Fatal("no enqueue was accepted before Close")
	}
	for _, a := range accepted {
		if err := a.fut.Err(); errors.Is(err, commit.ErrPending) {
			t.Fatalf("accepted future for id %d unresolved after Close", a.id)
		} else if err != nil {
			t.Fatalf("accepted future for id %d failed: %v", a.id, err)
		}
		// Resolved nil = acked = must read back.
		if v, ok := m.Lookup(gen.Key(a.id)); !ok || v != a.id {
			t.Fatalf("acked id %d lost across Close: ok=%v v=%d", a.id, ok, v)
		}
	}
}

// TestCommitterDeathContainment: a panic escaping the apply function
// kills that committer without deadlocking anyone — the in-flight
// batch and everything queued resolve with *CommitterError, the
// quarantine hook fires once, and Close returns the cause.
func TestCommitterDeathContainment(t *testing.T) {
	var batches atomic.Int64
	var quarantined atomic.Int64
	var quarCause error
	apply := func(ops []group.ByteOp, obs group.Observer) error {
		if batches.Add(1) == 2 {
			panic("wild pointer in batch 2")
		}
		return nil
	}
	c := commit.NewCommitter(apply, nil, commit.Options{
		Queue: 8, MaxBatch: 1, Shard: 3,
		Quarantine: func(cause error) { quarantined.Add(1); quarCause = cause },
	})

	f1, err := c.Enqueue(group.ByteOp{Key: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if err := waitGuarded(t, f1); err != nil {
		t.Fatalf("batch 1: %v", err)
	}

	f2, err := c.Enqueue(group.ByteOp{Key: []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	werr := waitGuarded(t, f2)
	if !errors.Is(werr, commit.ErrCommitterFailed) {
		t.Fatalf("in-flight future after panic: %v, want ErrCommitterFailed", werr)
	}
	var ce *commit.CommitterError
	if !errors.As(werr, &ce) || ce.Shard != 3 {
		t.Fatalf("error %v does not carry the shard label", werr)
	}

	// A dead committer keeps consuming: post-death enqueues are accepted
	// (the caller cannot know yet) and fail typed, promptly.
	f3, err := c.Enqueue(group.ByteOp{Key: []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if err := waitGuarded(t, f3); !errors.Is(err, commit.ErrCommitterFailed) {
		t.Fatalf("post-death future: %v, want ErrCommitterFailed", err)
	}

	if err := closeGuarded(t, c.Close); !errors.Is(err, commit.ErrCommitterFailed) {
		t.Fatalf("Close after death = %v, want the death cause", err)
	}
	if got := quarantined.Load(); got != 1 {
		t.Fatalf("quarantine hook fired %d times, want 1", got)
	}
	if !errors.Is(quarCause, commit.ErrCommitterFailed) {
		t.Fatalf("quarantine cause = %v", quarCause)
	}
}

// TestQuarantinedShardFailsFutures: ops routed to a quarantined shard
// resolve with the shard's typed unavailability error instead of
// hanging, while the healthy shards keep acking.
func TestQuarantinedShardFailsFutures(t *testing.T) {
	m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	cause := errors.New("image rejected")
	m.Quarantine(1, cause)
	p := commit.NewOrdered(m, commit.Options{Queue: 8, MaxBatch: 4})
	gen := keys.NewGenerator(keys.RandInt)

	blocked, served := 0, 0
	for id := uint64(0); id < 200; id++ {
		key := gen.Key(id)
		f, err := p.Insert(key, id)
		if err != nil {
			t.Fatal(err)
		}
		werr := waitGuarded(t, f)
		if m.Route(key) == 1 {
			if !errors.Is(werr, shard.ErrShardUnavailable) {
				t.Fatalf("quarantined-shard future: %v, want ErrShardUnavailable", werr)
			}
			var se *shard.ShardUnavailableError
			if !errors.As(werr, &se) || se.Shard != 1 {
				t.Fatalf("error %v does not carry shard 1", werr)
			}
			blocked++
			continue
		}
		if werr != nil {
			t.Fatalf("healthy-shard future: %v", werr)
		}
		served++
	}
	if blocked == 0 || served == 0 {
		t.Fatalf("both paths must be exercised (blocked=%d served=%d)", blocked, served)
	}
	if err := closeGuarded(t, p.Close); err != nil {
		t.Fatalf("Close with a quarantined shard should be clean (no committer died): %v", err)
	}
}

// TestCrashSiteAckFenced: an injected crash between the covering fence
// and the ack withholds the acknowledgment (futures fail typed) even
// though the batch is durable — the safe direction of the ack
// contract. The shard quarantines; recovery heals it.
func TestCrashSiteAckFenced(t *testing.T) {
	m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	inj := crash.NewAtSite(commit.SiteAckFenced, 1)
	m.Heap(0).SetInjector(inj)
	p := commit.NewOrdered(m, commit.Options{Queue: 16, MaxBatch: 4})
	gen := keys.NewGenerator(keys.RandInt)

	futs := make([]*commit.Future, 8)
	for i := range futs {
		f, err := p.Insert(gen.Key(uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	if err := closeGuarded(t, p.Close); err == nil {
		t.Fatal("Close after an injected committer crash returned nil")
	}
	if !inj.Fired() {
		t.Fatal("ack-fenced site never fired")
	}
	if len(m.Quarantined()) != 1 {
		t.Fatalf("crashed committer did not quarantine its shard: %v", m.Quarantined())
	}

	unacked := 0
	for i, f := range futs {
		err := f.Err()
		if errors.Is(err, commit.ErrPending) {
			t.Fatalf("future %d unresolved after Close", i)
		}
		if err != nil {
			if !errors.Is(err, commit.ErrCommitterFailed) || !crash.IsCrash(err) {
				t.Fatalf("future %d error %v, want committer-failed wrapping the crash", i, err)
			}
			unacked++
		}
	}
	if unacked == 0 {
		t.Fatal("a crash before the ack must leave unacked futures")
	}

	// Restart: the machine recovers and the durable-but-unacked batch is
	// allowed (not required) to be present — never torn.
	m.Heap(0).SetInjector(nil)
	if err := m.RecoverShard(0); err != nil {
		t.Fatal(err)
	}
	for i := range futs {
		if v, ok := m.Lookup(gen.Key(uint64(i))); ok && v != uint64(i) {
			t.Fatalf("key %d present with wrong value %d after crash", i, v)
		}
	}
}

// TestCrashSitesDiscovered: a committer drain visits both commit crash
// sites, so campaigns sweeping discovered sites cover them.
func TestCrashSitesDiscovered(t *testing.T) {
	m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	inj := crash.NewProbabilistic(0, 1) // records sites, never fires
	m.Heap(0).SetInjector(inj)
	p := commit.NewOrdered(m, commit.Options{Queue: 16, MaxBatch: 4})
	gen := keys.NewGenerator(keys.RandInt)

	for i := uint64(0); i < 64; i++ {
		if _, err := p.Insert(gen.Key(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := closeGuarded(t, p.Close); err != nil {
		t.Fatal(err)
	}
	sites := inj.Sites()
	for _, site := range []string{commit.SiteDrainApplied, commit.SiteAckFenced, group.SiteOpApplied, group.SiteCommitFenced} {
		if sites[site] == 0 {
			t.Errorf("site %q never visited (sites: %v)", site, sites)
		}
	}
}
