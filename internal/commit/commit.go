// Package commit is the per-shard asynchronous commit pipeline on top
// of the group-persistence layer: writers enqueue operations into a
// bounded queue and immediately receive a completion Future; a
// committer goroutine drains the queue into group commits
// (group.ApplyOrdered/ApplyHash) and resolves each Future only after
// the covering fence of the batch carrying its op retired — never
// before. Acknowledgement is thereby tied to durability while
// persistence latency leaves the writer's critical path, the shape of
// Ben-David et al.'s delay-free construction.
//
// The robustness contract:
//
//   - Bounded queue, configurable backpressure: Block (default) waits
//     for space, Reject fails fast with ErrQueueFull, Deadline waits up
//     to Options.EnqueueTimeout then fails with ErrQueueFull.
//   - Bounded staleness: Options.FlushInterval caps how long the
//     committer waits for a batch to fill after its first op, so a
//     trickle of writes never waits indefinitely; zero means commit
//     whatever is immediately available.
//   - Graceful shutdown: after Close returns, every accepted Future is
//     resolved, the committer goroutine has exited, and further
//     enqueues fail with ErrClosed.
//   - Containment: a committer panic or injected crash resolves all
//     affected and queued Futures with a *CommitterError (matched by
//     errors.Is(err, ErrCommitterFailed)) and invokes the quarantine
//     hook — waiters never deadlock. Operations routed to an already
//     quarantined shard resolve with that shard's
//     *shard.ShardUnavailableError instead of hanging.
//
// Two crash sites bracket the committer's drain loop, swept by the
// async lossy and durability-site campaigns (internal/harness):
//
//   - "commit.drain.applied" fires after the committer applies each op
//     of a draining batch, inside the fence group — the batch is
//     mid-flight and unfenced, and no Future it carries has resolved.
//   - "commit.ack.fenced" fires after the covering fence retires and
//     before any Future of the batch resolves — the batch is durable
//     but unacknowledged.
//
// Crashing at either site can therefore never lose an acknowledged
// write: a Future that resolved nil had its covering fence retire
// strictly earlier.
package commit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/pmem"
)

// Crash sites introduced by the committer drain loop (see the package
// comment).
const (
	SiteDrainApplied = "commit.drain.applied"
	SiteAckFenced    = "commit.ack.fenced"
)

// Typed failures of the pipeline surface.
var (
	// ErrQueueFull reports an enqueue rejected by backpressure: the
	// bounded queue was full under the Reject policy, or stayed full past
	// the Deadline policy's timeout.
	ErrQueueFull = errors.New("commit: queue full")
	// ErrClosed reports an enqueue after Close.
	ErrClosed = errors.New("commit: pipeline closed")
	// ErrPending is returned by Future.Err while the future is
	// unresolved.
	ErrPending = errors.New("commit: future pending")
	// ErrCommitterFailed is the sentinel matched by errors.Is for
	// futures failed by a committer that died (panic or injected crash).
	ErrCommitterFailed = errors.New("commit: committer failed")
)

// CommitterError reports a committer that died mid-drain: an injected
// crash or a panic escaping the apply function. Every future the
// committer still owed — the in-flight batch and everything queued
// behind it — resolves with this error, so no waiter hangs on a dead
// committer. It matches ErrCommitterFailed via errors.Is and unwraps
// to the underlying cause (e.g. crash.ErrCrashed).
type CommitterError struct {
	// Shard labels the committer (Options.Shard; 0 for standalone
	// committers).
	Shard int
	// Cause is the underlying failure.
	Cause error
}

func (e *CommitterError) Error() string {
	return fmt.Sprintf("commit: shard %d committer failed: %v", e.Shard, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *CommitterError) Unwrap() error { return e.Cause }

// Is matches the ErrCommitterFailed sentinel.
func (e *CommitterError) Is(target error) bool { return target == ErrCommitterFailed }

// Policy selects the backpressure behaviour of enqueues against a full
// queue.
type Policy int

const (
	// Block waits until the committer frees queue space (the default).
	// It cannot deadlock: the committer drains the queue even while
	// Close is pending and after a committer failure.
	Block Policy = iota
	// Reject fails immediately with ErrQueueFull.
	Reject
	// Deadline waits up to Options.EnqueueTimeout for space, then fails
	// with ErrQueueFull.
	Deadline
)

// String names the policy for reports and flags.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Reject:
		return "reject"
	case Deadline:
		return "deadline"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options configures a Committer (and, via the pipeline constructors,
// every per-shard committer).
type Options struct {
	// Queue is the bounded queue capacity (ops admitted but not yet
	// committed). Values < 1 select DefaultQueue.
	Queue int
	// MaxBatch caps how many queued ops one group commit drains. Values
	// < 1 select DefaultMaxBatch.
	MaxBatch int
	// Policy is the backpressure policy for enqueues against a full
	// queue (default Block).
	Policy Policy
	// EnqueueTimeout bounds the Deadline policy's wait for queue space.
	// Non-positive values make Deadline behave like Reject.
	EnqueueTimeout time.Duration
	// FlushInterval bounds staleness: the longest the committer waits,
	// after a batch's first op arrives, for the batch to fill to
	// MaxBatch before committing it anyway. Zero commits whatever is
	// immediately available (minimum latency, smallest batches).
	FlushInterval time.Duration
	// Heap, when set, routes the committer's crash sites
	// (SiteDrainApplied, SiteAckFenced) through the heap's injector so
	// campaigns can crash inside the drain loop. Nil disables them.
	Heap *pmem.Heap
	// Shard labels this committer in CommitterError (the pipeline
	// constructors set it to the shard index).
	Shard int
	// Quarantine, when set, is invoked once with the cause if the
	// committer dies (the pipeline constructors point it at the
	// front-end's shard quarantine).
	Quarantine func(cause error)
}

// Queue/batch defaults (see Options).
const (
	DefaultQueue    = 256
	DefaultMaxBatch = 64
)

func (o Options) queue() int {
	if o.Queue < 1 {
		return DefaultQueue
	}
	return o.Queue
}

func (o Options) maxBatch() int {
	if o.MaxBatch < 1 {
		return DefaultMaxBatch
	}
	return o.MaxBatch
}

// Future is the completion handle returned by an accepted enqueue. It
// resolves exactly once: with nil after the covering fence of the
// group commit carrying the op retired (the op is durable and may be
// acknowledged downstream), or with an error if the op did not commit
// (shard unavailable, committer death, close-time failure). An
// unresolved future only ever means the op is not yet — and may never
// be — durable.
type Future struct {
	done chan struct{}
	err  error     // written before done closes; read only after
	when time.Time // resolution time, for enqueue-to-ack latency
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

// resolve publishes the outcome; the done-channel close is the
// happens-before edge making err/when visible to waiters.
func (f *Future) resolve(err error, at time.Time) {
	f.err = err
	f.when = at
	close(f.done)
}

// Wait blocks until the future resolves and returns its outcome: nil
// means the op is durable (covering fence retired).
func (f *Future) Wait() error {
	<-f.done
	return f.err
}

// Done returns a channel closed when the future resolves, for select
// loops.
func (f *Future) Done() <-chan struct{} { return f.done }

// Err returns the resolution without blocking: ErrPending while
// unresolved, otherwise Wait's result.
func (f *Future) Err() error {
	select {
	case <-f.done:
		return f.err
	default:
		return ErrPending
	}
}

// ResolvedAt returns when the future resolved (false while pending),
// for enqueue-to-ack latency measurement.
func (f *Future) ResolvedAt() (time.Time, bool) {
	select {
	case <-f.done:
		return f.when, true
	default:
		return time.Time{}, false
	}
}

// item is one queue entry: an op awaiting commit, or a barrier (op
// unused) that resolves once everything enqueued before it has
// resolved.
type item[O any] struct {
	op      O
	fut     *Future
	barrier bool
}

// Committer drains one bounded queue of ops into group commits via the
// apply function and resolves futures after each batch's covering
// fence. The pipeline constructors run one per shard; campaigns run
// one standalone over a single heap/index pair. Enqueue/Barrier/Drain
// are safe for concurrent use; Close is idempotent and safe to race
// with enqueuers.
type Committer[O any] struct {
	apply func(ops []O, obs group.Observer) error
	obs   func(op O) // per-op instrumentation, on the committer goroutine
	quar  func(cause error)
	heap  *pmem.Heap
	shard int

	policy   Policy
	timeout  time.Duration
	flush    time.Duration
	maxBatch int

	ch      chan item[O]
	closing chan struct{} // closed by Close after the closed flag is set
	exited  chan struct{} // closed when the committer goroutine returns

	// mu makes enqueue-vs-Close race-free: enqueuers hold it shared for
	// the whole admission (including a Block policy wait — safe because
	// the committer never takes mu and keeps draining), Close takes it
	// exclusive to set closed. Everything admitted before Close wins the
	// lock is therefore in the queue before closing is observable, and
	// is drained; everything after fails with ErrClosed.
	mu     sync.RWMutex
	closed bool

	// cause is the committer's death cause (nil for a clean shutdown);
	// written by the committer goroutine before exited closes.
	cause error

	batch []item[O] // gather scratch, reused between batches
	ops   []O       // apply scratch, reused between batches
}

// NewCommitter starts a committer goroutine draining enqueued ops into
// apply, which must commit the batch as one group commit and honour
// the group.Observer contract (obs called after each op's boundary,
// once more after the covering fence). The per-op observer obs, when
// non-nil, is called on the committer goroutine with the op for every
// group.Observer callback — the attribution hook. Close the committer
// to release the goroutine.
func NewCommitter[O any](apply func(ops []O, obs group.Observer) error, obs func(op O), opts Options) *Committer[O] {
	c := &Committer[O]{
		apply:    apply,
		obs:      obs,
		quar:     opts.Quarantine,
		heap:     opts.Heap,
		shard:    opts.Shard,
		policy:   opts.Policy,
		timeout:  opts.EnqueueTimeout,
		flush:    opts.FlushInterval,
		maxBatch: opts.maxBatch(),
		ch:       make(chan item[O], opts.queue()),
		closing:  make(chan struct{}),
		exited:   make(chan struct{}),
	}
	go c.run()
	return c
}

// Enqueue admits op under the backpressure policy and returns its
// completion future. It returns ErrClosed after Close and ErrQueueFull
// on backpressure rejection; the future is nil exactly when the error
// is non-nil (a rejected op was never accepted and owes no ack).
func (c *Committer[O]) Enqueue(op O) (*Future, error) {
	return c.push(item[O]{op: op, fut: newFuture()})
}

// Barrier enqueues a flush marker and returns its future, which
// resolves once every op accepted before it has resolved. A barrier
// future resolves with nil on a healthy committer (even if individual
// earlier ops failed — each op's own future carries its outcome) and
// with the death cause on a failed one.
func (c *Committer[O]) Barrier() (*Future, error) {
	return c.push(item[O]{fut: newFuture(), barrier: true})
}

// Drain flushes: it waits until everything already accepted has
// resolved. It returns nil on a healthy committer, the death cause on
// a failed one, and ErrClosed after Close.
func (c *Committer[O]) Drain() error {
	f, err := c.Barrier()
	if err != nil {
		return err
	}
	return f.Wait()
}

// push admits one item under the backpressure policy.
func (c *Committer[O]) push(it item[O]) (*Future, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	switch c.policy {
	case Reject:
		select {
		case c.ch <- it:
		default:
			return nil, ErrQueueFull
		}
	case Deadline:
		select {
		case c.ch <- it:
		default:
			if c.timeout <= 0 {
				return nil, ErrQueueFull
			}
			t := time.NewTimer(c.timeout)
			select {
			case c.ch <- it:
				t.Stop()
			case <-t.C:
				return nil, ErrQueueFull
			}
		}
	default: // Block
		c.ch <- it
	}
	return it.fut, nil
}

// Pending returns the number of admitted, not-yet-drained queue
// entries (a snapshot; the committer drains concurrently).
func (c *Committer[O]) Pending() int { return len(c.ch) }

// Close shuts the committer down gracefully: it rejects further
// enqueues with ErrClosed, waits until every already accepted future
// has resolved and the committer goroutine has exited, and returns the
// committer's death cause (nil for a clean shutdown). It is idempotent
// and safe to call concurrently with enqueuers.
func (c *Committer[O]) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.closing)
	}
	c.mu.Unlock()
	<-c.exited
	return c.cause
}

// run is the committer goroutine: gather a batch, commit it, resolve
// its futures; on Close drain what remains and exit; on committer
// death fail everything still owed and exit.
func (c *Committer[O]) run() {
	defer close(c.exited)
	for {
		var first item[O]
		select {
		case first = <-c.ch:
		case <-c.closing:
			// Closed: everything admitted is already in the queue (see
			// mu). Drain it batch by batch, then exit.
			for {
				batch := c.gatherReady(c.batch[:0])
				if len(batch) == 0 {
					return
				}
				if cause := c.commit(batch); cause != nil {
					c.fail(cause)
					return
				}
			}
		}
		if cause := c.commit(c.gather(first)); cause != nil {
			c.fail(cause)
			return
		}
	}
}

// gather fills a batch starting from first: greedily when
// FlushInterval is zero, otherwise waiting up to the flush deadline
// for the batch to reach MaxBatch.
func (c *Committer[O]) gather(first item[O]) []item[O] {
	batch := append(c.batch[:0], first)
	if c.flush <= 0 {
		return c.gatherReady(batch)
	}
	timer := time.NewTimer(c.flush)
	defer timer.Stop()
	for len(batch) < c.maxBatch {
		select {
		case it := <-c.ch:
			batch = append(batch, it)
		case <-timer.C:
			return batch
		case <-c.closing:
			return c.gatherReady(batch)
		}
	}
	return batch
}

// gatherReady appends immediately available items up to MaxBatch.
func (c *Committer[O]) gatherReady(batch []item[O]) []item[O] {
	for len(batch) < c.maxBatch {
		select {
		case it := <-c.ch:
			batch = append(batch, it)
		default:
			return batch
		}
	}
	return batch
}

// commit applies one gathered batch as a group commit and resolves its
// futures. The returned error is non-nil only for committer death
// (injected crash or escaped panic); ordinary batch failures resolve
// the affected futures and keep the committer running.
func (c *Committer[O]) commit(batch []item[O]) error {
	c.batch = batch // retain scratch capacity
	ops := c.ops[:0]
	for i := range batch {
		if !batch[i].barrier {
			ops = append(ops, batch[i].op)
		}
	}
	c.ops = ops

	var err error
	if len(ops) > 0 {
		err = c.runApply(ops)
	}
	now := time.Now()
	if err == nil {
		// Covering fence retired: the whole batch is durable — ack.
		for i := range batch {
			batch[i].fut.resolve(nil, now)
		}
		return nil
	}

	fatal := crash.IsCrash(err)
	var ce *CommitterError
	if errors.As(err, &ce) {
		fatal = true
	}
	// On an ordinary failure the group layer fenced the applied prefix
	// before returning (group.Error contract), so those ops are durable
	// and acked; the rest resolve with the failure. On committer death
	// nothing past the previous barrier was fenced — every op of the
	// batch stays unacknowledged and resolves with the typed committer
	// error.
	applied := 0
	failErr := err
	if fatal {
		if ce == nil {
			failErr = &CommitterError{Shard: c.shard, Cause: err}
		}
	} else {
		var ge *group.Error
		if errors.As(err, &ge) {
			applied = ge.Applied
		}
	}
	k := 0
	for i := range batch {
		if batch[i].barrier {
			batch[i].fut.resolve(nil, now)
			continue
		}
		if k < applied {
			batch[i].fut.resolve(nil, now)
		} else {
			batch[i].fut.resolve(failErr, now)
		}
		k++
	}
	if fatal {
		return failErr
	}
	return nil
}

// runApply runs the group commit with the committer's crash sites and
// panic containment: SiteDrainApplied fires after each op's boundary
// inside the group (via the observer), SiteAckFenced fires after a
// successful commit before any future resolves. An injected crash
// surfaces as crash.ErrCrashed; any other panic as *CommitterError.
func (c *Committer[O]) runApply(ops []O) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crash.Signal); ok {
				// SiteAckFenced fired (in-group signals were already
				// converted by the group layer): the machine died after the
				// fence, before the ack.
				err = crash.ErrCrashed
				return
			}
			err = &CommitterError{Shard: c.shard, Cause: fmt.Errorf("committer panic: %v", r)}
		}
	}()
	n := len(ops)
	calls := 0
	obs := func(i int) {
		calls++
		if calls <= n {
			c.crashPoint(SiteDrainApplied)
		}
		if c.obs != nil {
			c.obs(ops[i])
		}
	}
	if err := c.apply(ops, obs); err != nil {
		return err
	}
	c.crashPoint(SiteAckFenced)
	return nil
}

func (c *Committer[O]) crashPoint(site string) {
	if c.heap != nil {
		c.heap.CrashPoint(site)
	}
}

// fail is the death path: record the cause, quarantine, then keep
// consuming the queue — failing every future still owed — until Close
// empties it, so neither waiters nor Block-policy enqueuers ever hang
// on a dead committer.
func (c *Committer[O]) fail(cause error) {
	werr := cause
	if _, ok := cause.(*CommitterError); !ok {
		werr = &CommitterError{Shard: c.shard, Cause: cause}
	}
	c.cause = werr
	if c.quar != nil {
		c.quar(werr)
	}
	for {
		select {
		case it := <-c.ch:
			it.fut.resolve(werr, time.Now())
		case <-c.closing:
			for {
				select {
				case it := <-c.ch:
					it.fut.resolve(werr, time.Now())
				default:
					return
				}
			}
		}
	}
}
