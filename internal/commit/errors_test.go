package commit_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/commit"
	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/keys"
	"repro/shard"
)

// TestErrorChainTransparency: callers match failures by sentinel
// (errors.Is) or by type (errors.As) without knowing how many layers
// wrapped them — every nesting the batch and async paths can produce
// stays transparent.
func TestErrorChainTransparency(t *testing.T) {
	quarCause := errors.New("recovery rejected image")
	unavailable := &shard.ShardUnavailableError{Shard: 2, Cause: quarCause}
	groupCrash := &group.Error{Applied: 3, Err: crash.ErrCrashed}

	cases := []struct {
		name string
		err  error
		is   []error // sentinels the chain must match
		not  []error // sentinels the chain must NOT match
		as   func(error) bool
	}{
		{
			name: "bare ShardUnavailableError",
			err:  unavailable,
			is:   []error{shard.ErrShardUnavailable, quarCause},
			not:  []error{commit.ErrCommitterFailed, crash.ErrCrashed},
			as: func(err error) bool {
				var se *shard.ShardUnavailableError
				return errors.As(err, &se) && se.Shard == 2
			},
		},
		{
			name: "SubBatchError wrapping shard unavailability",
			err:  &shard.SubBatchError{Shard: 2, OpIndices: []int{0, 4}, Err: unavailable},
			is:   []error{shard.ErrShardUnavailable, quarCause},
			not:  []error{commit.ErrCommitterFailed},
			as: func(err error) bool {
				var se *shard.ShardUnavailableError
				return errors.As(err, &se) && se.Shard == 2
			},
		},
		{
			name: "BatchError over SubBatchError over ShardUnavailableError",
			err: &shard.BatchError{Failed: []shard.SubBatchError{
				{Shard: 0, Err: &group.Error{Applied: 1, Err: errors.New("key rejected")}},
				{Shard: 2, Err: unavailable},
			}},
			is:  []error{shard.ErrShardUnavailable, quarCause},
			not: []error{commit.ErrCommitterFailed, crash.ErrCrashed},
			as: func(err error) bool {
				var se *shard.ShardUnavailableError
				if !errors.As(err, &se) || se.Shard != 2 {
					return false
				}
				var sbe *shard.SubBatchError
				return errors.As(err, &sbe)
			},
		},
		{
			name: "fmt-wrapped BatchError",
			err: fmt.Errorf("flush: %w", &shard.BatchError{Failed: []shard.SubBatchError{
				{Shard: 2, Err: unavailable},
			}}),
			is:  []error{shard.ErrShardUnavailable, quarCause},
			not: []error{commit.ErrCommitterFailed},
			as: func(err error) bool {
				var be *shard.BatchError
				return errors.As(err, &be) && len(be.Failed) == 1
			},
		},
		{
			name: "CommitterError wrapping a group crash",
			err:  &commit.CommitterError{Shard: 1, Cause: groupCrash},
			is:   []error{commit.ErrCommitterFailed, crash.ErrCrashed},
			not:  []error{shard.ErrShardUnavailable},
			as: func(err error) bool {
				var ce *commit.CommitterError
				if !errors.As(err, &ce) || ce.Shard != 1 {
					return false
				}
				var ge *group.Error
				return errors.As(err, &ge) && ge.Applied == 3
			},
		},
		{
			name: "CommitterError wrapping shard unavailability",
			err:  &commit.CommitterError{Shard: 2, Cause: unavailable},
			is:   []error{commit.ErrCommitterFailed, shard.ErrShardUnavailable, quarCause},
			not:  []error{crash.ErrCrashed},
			as: func(err error) bool {
				var se *shard.ShardUnavailableError
				return errors.As(err, &se) && se.Shard == 2
			},
		},
		{
			name: "future-style rejection sentinels",
			err:  fmt.Errorf("async insert: %w", commit.ErrQueueFull),
			is:   []error{commit.ErrQueueFull},
			not:  []error{commit.ErrClosed, shard.ErrShardUnavailable},
			as:   func(err error) bool { return true },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, target := range tc.is {
				if !errors.Is(tc.err, target) {
					t.Errorf("errors.Is(%v, %v) = false, want true", tc.err, target)
				}
			}
			for _, target := range tc.not {
				if errors.Is(tc.err, target) {
					t.Errorf("errors.Is(%v, %v) = true, want false", tc.err, target)
				}
			}
			if !tc.as(tc.err) {
				t.Errorf("errors.As checks failed for %v", tc.err)
			}
		})
	}
}

// TestErrorChainLive reproduces the deepest chain end-to-end: a future
// failed by a quarantined shard carries the typed unavailability
// through the pipeline, matchable by both Is and As.
func TestErrorChainLive(t *testing.T) {
	m, err := shard.NewOrdered("P-ART", keys.RandInt, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	quarCause := errors.New("verifier verdict: corrupt")
	m.Quarantine(0, quarCause)
	p := commit.NewOrdered(m, commit.Options{Queue: 4, MaxBatch: 2})
	defer p.Close()

	for id := uint64(0); id < 64; id++ {
		key := []byte(fmt.Sprintf("key-%03d", id))
		if m.Route(key) != 0 {
			continue
		}
		f, err := p.Insert(key, id)
		if err != nil {
			t.Fatal(err)
		}
		werr := waitGuarded(t, f)
		if !errors.Is(werr, shard.ErrShardUnavailable) || !errors.Is(werr, quarCause) {
			t.Fatalf("future error %v does not chain to the quarantine", werr)
		}
		var se *shard.ShardUnavailableError
		if !errors.As(werr, &se) || se.Shard != 0 {
			t.Fatalf("future error %v does not expose the shard", werr)
		}
		return
	}
	t.Fatal("no key routed to shard 0")
}
