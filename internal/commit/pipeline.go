// Shard-routed async pipelines: one committer per shard of a sharded
// front-end. Writers enqueue through the pipeline, which routes each
// op to its owning shard's queue (shard.Ordered.Route) and commits
// per-shard batches through shard.ApplyShard — so a pipeline inherits
// the front-end's partitioning, quarantine behaviour, and per-shard
// single-writer group commits. Reads go to the front-end directly and
// may miss enqueued-but-uncommitted writes; the staleness window is
// bounded by Options.FlushInterval plus one batch commit. Callers that
// need read-your-writes call Drain (or wait their own futures) first.
package commit

import (
	"errors"

	"repro/internal/group"
	"repro/internal/pmem"
	"repro/shard"
)

// pipeline is the shard-count-generic half: the per-shard committers
// and the operations that fan out across all of them.
type pipeline[O any] struct {
	cs []*Committer[O]
}

// Drain waits until every op accepted by any shard's committer before
// the call has resolved. It returns nil when all committers are
// healthy, the joined death causes otherwise, and ErrClosed after
// Close.
func (p *pipeline[O]) Drain() error {
	futs := make([]*Future, 0, len(p.cs))
	var errs []error
	for _, c := range p.cs {
		f, err := c.Barrier()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close shuts every committer down gracefully (see Committer.Close)
// and returns the joined death causes, nil when all exited cleanly.
func (p *pipeline[O]) Close() error {
	var errs []error
	for _, c := range p.cs {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Pending returns the total number of admitted, not-yet-drained ops
// across all shard queues (a racy snapshot).
func (p *pipeline[O]) Pending() int {
	n := 0
	for _, c := range p.cs {
		n += c.Pending()
	}
	return n
}

// Committer returns shard s's committer, for per-shard barriers and
// tests.
func (p *pipeline[O]) Committer(s int) *Committer[O] { return p.cs[s] }

// Ordered is the async pipeline over a sharded ordered front-end.
type Ordered struct {
	m *shard.Ordered
	pipeline[group.ByteOp]
}

// NewOrdered starts one committer per shard of m. opts applies to each
// committer (Queue and MaxBatch are per shard); opts.Shard is
// overridden with the shard index, opts.Heap with the shard's heap,
// and a dying committer quarantines its shard in m before any caller-
// provided opts.Quarantine hook runs. Close the pipeline to release
// the committer goroutines.
func NewOrdered(m *shard.Ordered, opts Options) *Ordered {
	return NewOrderedObserved(m, opts, nil)
}

// NewOrderedObserved is NewOrdered with a per-op instrumentation hook:
// obs is called on the owning shard's committer goroutine for every
// group.Observer callback of the op (after the op's boundary, and once
// more for a batch's last op after its covering fence) — the
// attribution hook.
func NewOrderedObserved(m *shard.Ordered, opts Options, obs func(group.ByteOp)) *Ordered {
	p := &Ordered{m: m}
	p.cs = make([]*Committer[group.ByteOp], m.NumShards())
	for s := range p.cs {
		p.cs[s] = NewCommitter(func(ops []group.ByteOp, gobs group.Observer) error {
			return m.ApplyShard(s, ops, gobs)
		}, obs, shardOptions(opts, s, m))
	}
	return p
}

// Insert enqueues an insertion and returns its completion future. The
// key is copied, so callers may reuse their buffers. Backpressure and
// close behave as Committer.Enqueue.
func (p *Ordered) Insert(key []byte, value uint64) (*Future, error) {
	return p.Apply(group.ByteOp{Key: key, Value: value})
}

// Update enqueues an in-place update; see Insert.
func (p *Ordered) Update(key []byte, value uint64) (*Future, error) {
	return p.Apply(group.ByteOp{Key: key, Value: value, Update: true})
}

// Apply enqueues one write op onto its owning shard's queue. The key
// is copied.
func (p *Ordered) Apply(op group.ByteOp) (*Future, error) {
	op.Key = append([]byte(nil), op.Key...)
	return p.cs[p.m.Route(op.Key)].Enqueue(op)
}

// Frontend returns the sharded front-end the pipeline commits into —
// the read side.
func (p *Ordered) Frontend() *shard.Ordered { return p.m }

// Hash is the async pipeline over a sharded unordered front-end.
type Hash struct {
	m *shard.Hash
	pipeline[group.U64Op]
}

// NewHash starts one committer per shard of m; see NewOrdered.
func NewHash(m *shard.Hash, opts Options) *Hash {
	return NewHashObserved(m, opts, nil)
}

// NewHashObserved is NewHash with the per-op instrumentation hook; see
// NewOrderedObserved.
func NewHashObserved(m *shard.Hash, opts Options, obs func(group.U64Op)) *Hash {
	p := &Hash{m: m}
	p.cs = make([]*Committer[group.U64Op], m.NumShards())
	for s := range p.cs {
		p.cs[s] = NewCommitter(func(ops []group.U64Op, gobs group.Observer) error {
			return m.ApplyShard(s, ops, gobs)
		}, obs, shardOptions(opts, s, m))
	}
	return p
}

// Insert enqueues an insertion and returns its completion future.
func (p *Hash) Insert(key, value uint64) (*Future, error) {
	return p.Apply(group.U64Op{Key: key, Value: value})
}

// Update enqueues an in-place update; see Insert.
func (p *Hash) Update(key, value uint64) (*Future, error) {
	return p.Apply(group.U64Op{Key: key, Value: value, Update: true})
}

// Apply enqueues one write op onto its owning shard's queue.
func (p *Hash) Apply(op group.U64Op) (*Future, error) {
	return p.cs[p.m.Route(op.Key)].Enqueue(op)
}

// Frontend returns the sharded front-end the pipeline commits into.
func (p *Hash) Frontend() *shard.Hash { return p.m }

// shardOptions specialises opts for shard s of front-end m: the
// shard's heap carries the crash sites, the shard index labels errors,
// and committer death quarantines the shard before any caller hook.
func shardOptions[M interface {
	Quarantine(i int, cause error)
	Heap(i int) *pmem.Heap
}](opts Options, s int, m M) Options {
	o := opts
	o.Shard = s
	o.Heap = m.Heap(s)
	caller := opts.Quarantine
	o.Quarantine = func(cause error) {
		m.Quarantine(s, cause)
		if caller != nil {
			caller(cause)
		}
	}
	return o
}
