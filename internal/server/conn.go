// Per-connection protocol loop. The invariant every write path shares:
// a reply reaches the socket only after the write it acknowledges is
// fenced. The loop stages replies in arrival order — literals for
// commands resolved immediately, placeholders for writes whose fence
// is pending — and a settle step (commit staged writes, resolve
// placeholders) always runs before the staged bytes are flushed to the
// wire. Reads settle first too, so a connection always reads its own
// writes regardless of mode.
package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strconv"
	"time"

	"repro/internal/commit"
	"repro/internal/crash"
	"repro/shard"
)

// conn is one client connection's state.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	lit     []byte         // arena of resolved reply bytes
	replies []pendingReply // in-order staged replies
	nw      int            // writes staged since the last settle
	def     *shard.Deferred
	futs    []*commit.Future
	werrs   []error // settle scratch: per staged write outcome

	scanBuf  []byte // SCAN scratch: collected keys
	scanEnds []int
	scanVals []uint64
}

// pendingReply is one reply slot: a resolved [off,end) region of the
// lit arena, or (w >= 0) a placeholder for staged write #w.
type pendingReply struct {
	off, end int
	w        int
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv: s,
		nc:  nc,
		br:  bufio.NewReader(nc),
		bw:  bufio.NewWriter(nc),
	}
	if s.opts.Mode == ModeBatched {
		// The settle step flushes before the queue reaches the limit, so
		// the combiner's own auto-flush never fires and queue positions
		// stay aligned with staged-write indices.
		c.def = shard.NewDeferred(s.m, s.opts.batch()+1)
	}
	return c
}

// kick expires the connection's read deadline so a blocked (and any
// future) socket read fails with a timeout — the drain signal. Bytes
// already buffered still parse; new bytes do not arrive.
func (c *conn) kick() { c.nc.SetReadDeadline(time.Unix(1, 0)) }

// serve runs the connection to completion. An injected crash signal
// escaping a synchronous index operation is the simulated machine
// dying mid-op: the server fails as a whole and the connection drops
// with its staged replies unsent (unacknowledged).
func (c *conn) serve() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crash.Signal); ok {
				c.srv.fail(crash.ErrCrashed)
				c.nc.Close()
				return
			}
			panic(r)
		}
	}()
	defer c.nc.Close()
	for {
		fr, err := ParseCommand(c.br)
		if err != nil {
			c.finish(err)
			return
		}
		quit, aerr := c.dispatch(fr)
		if aerr != nil {
			return // machine crash during settle; srv.fail already ran
		}
		if quit {
			if c.settleWrites() == nil {
				c.flushWire()
			}
			return
		}
		if c.br.Buffered() == 0 || len(c.replies) >= c.srv.opts.maxPipeline() {
			if c.settleWrites() != nil {
				return
			}
			if c.flushWire() != nil {
				return
			}
			if c.srv.draining.Load() {
				return // drained: accepted writes settled, replies sent
			}
		}
	}
}

// finish handles the read-side end of a connection: settle accepted
// writes (fencing them), send what can still be sent, close.
func (c *conn) finish(err error) {
	var pe *ProtocolError
	switch {
	case errors.As(err, &pe):
		// Framing is unrecoverable: settle, reply with the typed
		// protocol error, close.
		if c.settleWrites() != nil {
			return
		}
		c.litError("ERR proto/" + pe.Kind + " " + pe.Detail)
		c.flushWire()
	case isTimeout(err), errors.Is(err, io.EOF):
		// Drain kick, or the client half-closed its write side: settle
		// and deliver every staged reply before closing.
		if c.settleWrites() != nil {
			return
		}
		c.flushWire()
	default:
		// Torn connection (reset, unexpected EOF): fence what was
		// accepted; no replies can be delivered.
		c.settleWrites()
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Reply staging helpers: append one encoded reply to the arena and
// record its region.

func (c *conn) record(off int) {
	c.replies = append(c.replies, pendingReply{off: off, end: len(c.lit), w: -1})
}

func (c *conn) litSimple(s string) {
	off := len(c.lit)
	c.lit = appendSimple(c.lit, s)
	c.record(off)
}

func (c *conn) litError(msg string) {
	off := len(c.lit)
	c.lit = appendErrorReply(c.lit, msg)
	c.record(off)
}

func (c *conn) litInt(n int64) {
	off := len(c.lit)
	c.lit = appendInt(c.lit, n)
	c.record(off)
}

func (c *conn) litBulk(b []byte) {
	off := len(c.lit)
	c.lit = appendBulk(c.lit, b)
	c.record(off)
}

func (c *conn) litNull() {
	off := len(c.lit)
	c.lit = appendNullBulk(c.lit)
	c.record(off)
}

// placeholder stages the reply slot for the next staged write.
func (c *conn) placeholder() {
	c.replies = append(c.replies, pendingReply{w: c.nw})
	c.nw++
}

// settleWrites commits every staged write and resolves its placeholder
// reply: +OK for a fenced write, a typed error otherwise. A non-nil
// return means the machine died (injected crash) — the server has
// failed and the connection must drop without flushing.
func (c *conn) settleWrites() error {
	if c.nw == 0 {
		return nil
	}
	werrs := c.werrs[:0]
	for i := 0; i < c.nw; i++ {
		werrs = append(werrs, nil)
	}
	switch c.srv.opts.Mode {
	case ModeBatched:
		if err := c.def.Flush(); err != nil {
			if isMachineCrash(err) {
				c.srv.fail(err)
				return err
			}
			var be *shard.BatchError
			if errors.As(err, &be) {
				for i := range be.Failed {
					sub := &be.Failed[i]
					// The applied prefix of a failed sub-batch was fenced
					// by the group layer before it returned — those writes
					// are durable and ack +OK; the rest carry the cause.
					for j := sub.Applied; j < len(sub.OpIndices); j++ {
						werrs[sub.OpIndices[j]] = sub.Err
					}
				}
			} else {
				for i := range werrs {
					werrs[i] = err
				}
			}
		}
	case ModeAsync:
		for i, f := range c.futs {
			e := f.Wait()
			if isMachineCrash(e) {
				c.srv.fail(e)
				return e
			}
			werrs[i] = e
		}
		c.futs = c.futs[:0]
	}
	for i := range c.replies {
		p := &c.replies[i]
		if p.w < 0 {
			continue
		}
		off := len(c.lit)
		if e := werrs[p.w]; e != nil {
			c.lit = appendErrorReply(c.lit, errorText(e))
		} else {
			c.lit = appendSimple(c.lit, "OK")
		}
		p.off, p.end, p.w = off, len(c.lit), -1
	}
	c.nw = 0
	c.werrs = werrs[:0]
	return nil
}

// flushWire writes every settled reply to the socket in order and
// flushes. All placeholders must have been settled.
func (c *conn) flushWire() error {
	for _, p := range c.replies {
		if _, err := c.bw.Write(c.lit[p.off:p.end]); err != nil {
			return err
		}
	}
	c.replies = c.replies[:0]
	c.lit = c.lit[:0]
	return c.bw.Flush()
}

// errorText maps a store/pipeline error to its typed wire code.
func errorText(err error) string {
	switch {
	case errors.Is(err, shard.ErrShardUnavailable):
		return "UNAVAIL " + err.Error()
	case errors.Is(err, commit.ErrClosed):
		return "SHUTDOWN " + err.Error()
	case errors.Is(err, commit.ErrQueueFull):
		return "BUSY " + err.Error()
	default:
		return "ERR " + err.Error()
	}
}

// cmdName folds an ASCII command to upper case without allocating;
// unknown or over-long names return "".
func cmdName(b []byte) string {
	if len(b) > 6 {
		return ""
	}
	var buf [6]byte
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		buf[i] = ch
	}
	switch string(buf[:len(b)]) {
	case "GET":
		return "GET"
	case "SET":
		return "SET"
	case "DEL":
		return "DEL"
	case "UPDATE":
		return "UPDATE"
	case "SCAN":
		return "SCAN"
	case "INFO":
		return "INFO"
	case "STATS":
		return "STATS"
	case "PING":
		return "PING"
	case "QUIT":
		return "QUIT"
	}
	return ""
}

// dispatch executes one parsed command. quit requests connection
// close after the final flush; a non-nil error aborts the connection
// (machine crash during a settle).
func (c *conn) dispatch(fr Frame) (quit bool, _ error) {
	args := fr.Args
	cmd := cmdName(args[0])
	switch cmd {
	case "PING":
		c.litSimple("PONG")
		return false, nil
	case "QUIT":
		c.litSimple("OK")
		return true, nil
	case "INFO":
		c.litBulk(c.srv.infoText())
		return false, nil
	case "STATS":
		c.litBulk(c.srv.statsText())
		return false, nil
	case "":
		c.litError("ERR unknown command " + strconv.Quote(string(args[0])))
		return false, nil
	}
	// Data commands: refused while draining — enqueue-after-drain gets
	// the typed shutdown error, nothing new enters the write paths.
	if c.srv.draining.Load() {
		c.litError("SHUTDOWN server draining")
		return false, nil
	}
	m := c.srv.m
	switch cmd {
	case "GET":
		if len(args) != 2 {
			c.litError("ERR wrong number of arguments for 'GET'")
			return false, nil
		}
		if err := c.settleWrites(); err != nil {
			return false, err
		}
		v, ok, err := m.LookupChecked(args[1])
		switch {
		case isMachineCrash(err):
			c.srv.fail(err)
			return false, err
		case err != nil:
			c.litError(errorText(err))
		case ok:
			c.litInt(int64(v))
		default:
			c.litNull()
		}
	case "SET", "UPDATE":
		if len(args) != 3 {
			c.litError("ERR wrong number of arguments for '" + cmd + "'")
			return false, nil
		}
		v, perr := strconv.ParseUint(string(args[2]), 10, 64)
		if perr != nil {
			c.litError("ERR value is not a uint64")
			return false, nil
		}
		return false, c.stageWrite(args[1], v, cmd == "UPDATE")
	case "DEL":
		if len(args) != 2 {
			c.litError("ERR wrong number of arguments for 'DEL'")
			return false, nil
		}
		// Deletes have no batched/async op shape, so they settle what
		// precedes them (preserving order) and apply synchronously.
		if err := c.settleWrites(); err != nil {
			return false, err
		}
		ok, err := m.Delete(args[1])
		if isMachineCrash(err) {
			c.srv.fail(err)
			return false, err
		}
		if err != nil {
			c.litError(errorText(err))
		} else if ok {
			c.litInt(1)
		} else {
			c.litInt(0)
		}
	case "SCAN":
		return false, c.scan(args)
	}
	return false, nil
}

// stageWrite routes one SET/UPDATE through the configured write path.
func (c *conn) stageWrite(key []byte, value uint64, update bool) error {
	m := c.srv.m
	switch c.srv.opts.Mode {
	case ModeSync:
		var err error
		if update {
			err = m.Update(key, value)
		} else {
			err = m.Insert(key, value)
		}
		if err != nil {
			// The indexes convert an injected crash panic into an error
			// (crash.Recover); over the wire that is the machine dying
			// mid-op, not a reply.
			if isMachineCrash(err) {
				c.srv.fail(err)
				return err
			}
			c.litError(errorText(err))
		} else {
			c.litSimple("OK")
		}
	case ModeBatched:
		if c.nw >= c.srv.opts.batch() {
			if err := c.settleWrites(); err != nil {
				return err
			}
		}
		if update {
			c.def.Update(key, value)
		} else {
			c.def.Insert(key, value)
		}
		c.placeholder()
	case ModeAsync:
		var f *commit.Future
		var err error
		if update {
			f, err = c.srv.pipe.Update(key, value)
		} else {
			f, err = c.srv.pipe.Insert(key, value)
		}
		if err != nil {
			if isMachineCrash(err) {
				c.srv.fail(err)
				return err
			}
			c.litError(errorText(err))
			return nil
		}
		c.futs = append(c.futs, f)
		c.placeholder()
	}
	return nil
}

// scan serves one SCAN page: a fresh shard.Cursor streams up to count
// merged entries from start, and the reply carries the resume key for
// the next page (null when the key space is exhausted) — pagination
// across requests without server-side cursor state.
func (c *conn) scan(args [][]byte) error {
	if len(args) != 3 {
		c.litError("ERR wrong number of arguments for 'SCAN'")
		return nil
	}
	count, perr := strconv.Atoi(string(args[2]))
	if perr != nil || count < 1 || count > MaxScanCount {
		c.litError("ERR scan count must be in [1," + strconv.Itoa(MaxScanCount) + "]")
		return nil
	}
	if err := c.settleWrites(); err != nil {
		return err
	}
	cur := c.srv.m.Cursor(args[1])
	c.scanBuf, c.scanEnds, c.scanVals = c.scanBuf[:0], c.scanEnds[:0], c.scanVals[:0]
	for len(c.scanEnds) < count {
		k, v, ok := cur.Next()
		if !ok {
			break
		}
		c.scanBuf = append(c.scanBuf, k...)
		c.scanEnds = append(c.scanEnds, len(c.scanBuf))
		c.scanVals = append(c.scanVals, v)
	}
	n := len(c.scanEnds)
	off := len(c.lit)
	c.lit = appendArrayHeader(c.lit, 2)
	if n == count {
		// Page full: resume at the exclusive successor of the last key
		// (smallest byte string strictly greater — lastKey + 0x00).
		lo := 0
		if n > 1 {
			lo = c.scanEnds[n-2]
		}
		last := c.scanBuf[lo:c.scanEnds[n-1]]
		c.lit = append(c.lit, '$')
		c.lit = strconv.AppendInt(c.lit, int64(len(last)+1), 10)
		c.lit = append(c.lit, '\r', '\n')
		c.lit = append(c.lit, last...)
		c.lit = append(c.lit, 0, '\r', '\n')
	} else {
		c.lit = appendNullBulk(c.lit)
	}
	c.lit = appendArrayHeader(c.lit, 2*n)
	lo := 0
	for i := 0; i < n; i++ {
		c.lit = appendBulk(c.lit, c.scanBuf[lo:c.scanEnds[i]])
		c.lit = appendInt(c.lit, int64(c.scanVals[i]))
		lo = c.scanEnds[i]
	}
	c.record(off)
	return nil
}
