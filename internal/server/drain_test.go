// Drain-under-fire: concurrent clients race a SIGTERM-style Shutdown.
// The contract under test — run it under -race — is the ack-after-fence
// invariant at drain time: every reply a client received before its
// connection closed corresponds to a fenced (durable, readable) write,
// and data commands arriving after the drain began get the typed
// SHUTDOWN error instead of silence.
package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// TestDrainUnderFire: several clients hammer SETs while Shutdown fires
// mid-traffic. After Shutdown returns, every acked write must be in
// the store.
func TestDrainUnderFire(t *testing.T) {
	const clients = 4
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 4)

			type result struct {
				acked    map[string]uint64
				shutdown int // typed SHUTDOWN replies observed
			}
			results := make([]result, clients)
			var wg sync.WaitGroup
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					res := result{acked: map[string]uint64{}}
					defer func() { results[g] = res }()
					nc, err := net.Dial("tcp", ts.addr())
					if err != nil {
						return
					}
					defer nc.Close()
					br := bufio.NewReader(nc)
					for i := 0; ; i++ {
						k, v := fmt.Sprintf("g%d-%06d", g, i), uint64(i)
						if _, err := nc.Write(frame("SET", k, fmt.Sprint(v))); err != nil {
							return // drain closed the conn
						}
						rp, err := ReadReply(br)
						if err != nil {
							return // kicked mid-read: the write was never acked
						}
						switch {
						case rp.Kind == ReplySimple:
							res.acked[k] = v
						case rp.Kind == ReplyError && rp.ErrorCode() == "SHUTDOWN":
							res.shutdown++
							return // draining: no more data commands accepted
						default:
							t.Errorf("client %d: unexpected reply %q %q", g, rp.Kind, rp.Str)
							return
						}
					}
				}(g)
			}

			time.Sleep(20 * time.Millisecond) // let traffic build
			if err := ts.srv.Shutdown(); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			wg.Wait()

			total, shutdownSeen := 0, 0
			for g := range results {
				for k, v := range results[g].acked {
					got, ok := ts.m.Lookup([]byte(k))
					if !ok || got != v {
						t.Fatalf("acked write %s=%d not durable after drain (present=%v got=%d)",
							k, v, ok, got)
					}
					total++
				}
				shutdownSeen += results[g].shutdown
			}
			if total == 0 {
				t.Fatal("no writes acked before the drain; test raced wrong")
			}
			t.Logf("mode=%s acked-and-durable=%d shutdown-replies=%d", mode, total, shutdownSeen)

			// Post-drain connections are refused or closed without service.
			if nc, err := net.Dial("tcp", ts.addr()); err == nil {
				nc.SetReadDeadline(time.Now().Add(2 * time.Second))
				if _, err := bufio.NewReader(nc).ReadByte(); err == nil {
					t.Fatal("post-drain connection was served")
				}
				nc.Close()
			}
		})
	}
}

// TestEnqueueAfterDrainTypedError pins the typed reply deterministically:
// once draining is set, a buffered data command answers SHUTDOWN (not
// silence, not ERR), liveness commands still answer, and the connection
// closes after the reply flush.
func TestEnqueueAfterDrainTypedError(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 2)

			c := dialT(t, ts.addr())
			wantSimple(t, c.do("PING"), "PONG") // conn established and served

			// Flip the drain flag directly (in-package): the deterministic
			// version of bytes that were already buffered when SIGTERM hit.
			ts.srv.draining.Store(true)

			c.send(frame("SET", "late", "1"))
			rp := c.read()
			wantCode(t, rp, "SHUTDOWN")
			if _, err := c.br.ReadByte(); err == nil {
				t.Fatal("connection must close after the drain reply")
			}
			if _, ok := ts.m.Lookup([]byte("late")); ok {
				t.Fatal("post-drain write must not reach the store")
			}

			// Liveness survives the drain window on a fresh pre-existing
			// conn: PING answers, then the conn closes.
			ts.srv.draining.Store(false)
			c2 := dialT(t, ts.addr())
			wantSimple(t, c2.do("PING"), "PONG")
			ts.srv.draining.Store(true)
			c2.send(frame("PING")) // liveness, not data: still served
			wantSimple(t, c2.read(), "PONG")
			if _, err := c2.br.ReadByte(); err == nil {
				t.Fatal("connection must close once draining")
			}
		})
	}
}
