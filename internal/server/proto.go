// Package server is the network serving tier: a RESP-style wire
// protocol in front of the sharded ordered front-end (shard.Ordered),
// so the system is measured under open-loop client traffic instead of
// closed-loop goroutines.
//
// Requests are RESP arrays of bulk strings — `*2\r\n$3\r\nGET\r\n...`
// — parsed strictly: lengths are canonical decimals (no signs, no
// leading zeros), every terminator is exactly CRLF, and limits
// (MaxArgs, MaxBulk) bound what a frame may carry. Strictness is what
// makes the codec fuzzable: every accepted frame re-encodes
// byte-identically (FuzzParseCommand pins this), and everything else
// fails with a typed *ProtocolError instead of a panic or a silent
// re-interpretation.
//
// Replies use the standard RESP reply kinds (simple string, error,
// integer, bulk, null bulk, array). Error replies carry a typed code
// as their first token — ERR (protocol/command), UNAVAIL (routed to a
// quarantined shard), SHUTDOWN (draining or closed), BUSY (async
// queue backpressure) — so clients can branch on failure class
// without string matching the cause.
//
// The command set maps onto the shard map API:
//
//	SET key value       insert            → +OK
//	UPDATE key value    in-place update   → +OK
//	GET key             lookup            → :value | $-1 (missing)
//	DEL key             delete            → :1 | :0
//	SCAN start count    cursor page       → [next-start | $-1, [k, v, ...]]
//	INFO                server/shard info → bulk text
//	STATS               pmem counters     → bulk text
//	PING                liveness          → +PONG
//	QUIT                close             → +OK, then close
//
// Values are uint64 decimals on the wire, matching the store's value
// type. SCAN's next-start is the resume key for the following page
// (already the exclusive successor), or null when the scan is done.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Frame limits. A request frame is rejected with a typed
// *ProtocolError the moment a declared length exceeds them, before any
// allocation of that size.
const (
	// MaxArgs caps the number of bulk strings in one request array.
	MaxArgs = 64
	// MaxBulk caps the byte length of one bulk string (keys, values,
	// command names).
	MaxBulk = 64 << 10
	// MaxScanCount caps one SCAN page, bounding the reply array a
	// single command can produce.
	MaxScanCount = 4096
)

// ProtocolError kinds: what class of malformation a frame exhibited.
const (
	// KindMalformed: the bytes do not form a canonical RESP request
	// frame (bad type byte, bad length syntax, missing CRLF).
	KindMalformed = "malformed"
	// KindOversized: a declared length exceeds MaxArgs or MaxBulk.
	KindOversized = "oversized"
	// KindEmpty: a syntactically valid but empty request array (*0).
	KindEmpty = "empty"
)

// ErrProtocol is the sentinel matched by errors.Is for every
// *ProtocolError.
var ErrProtocol = errors.New("server: protocol error")

// ProtocolError reports a malformed or over-limit request frame. A
// connection that produced one is beyond recovery — framing is lost —
// so the server sends the error reply and closes.
type ProtocolError struct {
	// Kind classifies the malformation (KindMalformed, KindOversized,
	// KindEmpty).
	Kind string
	// Detail describes the specific violation.
	Detail string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("server: %s frame: %s", e.Kind, e.Detail)
}

// Is matches the ErrProtocol sentinel.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }

func malformed(format string, args ...any) error {
	return &ProtocolError{Kind: KindMalformed, Detail: fmt.Sprintf(format, args...)}
}

func oversized(format string, args ...any) error {
	return &ProtocolError{Kind: KindOversized, Detail: fmt.Sprintf(format, args...)}
}

// Frame is one parsed request: the command name and its arguments as
// raw byte strings, in wire order. Args[0] is the command.
type Frame struct {
	Args [][]byte
}

// AppendFrame appends the canonical encoding of a request frame (an
// array of bulk strings) to dst and returns the extended slice. It is
// the exact inverse of ParseCommand on accepted input.
func AppendFrame(dst []byte, args [][]byte) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = append(dst, '$')
		dst = strconv.AppendInt(dst, int64(len(a)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, a...)
		dst = append(dst, '\r', '\n')
	}
	return dst
}

// Encode returns the frame's canonical wire encoding.
func (f Frame) Encode() []byte { return AppendFrame(nil, f.Args) }

// readLen reads a canonical decimal length terminated by CRLF: one or
// more digits, no sign, no leading zero unless the length is exactly
// "0". max bounds the accepted value; limit names it in the error.
func readLen(r *bufio.Reader, max int, what string) (int, error) {
	n, digits := 0, 0
	first := byte(0)
	for {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if c == '\r' {
			break
		}
		if c < '0' || c > '9' {
			return 0, malformed("%s length: unexpected byte %q", what, c)
		}
		if digits == 0 {
			first = c
		}
		digits++
		if digits > 1 && first == '0' {
			return 0, malformed("%s length: leading zero", what)
		}
		if digits > 7 { // 10^7 > any sane length; also keeps n from overflowing
			return 0, oversized("%s length: too many digits", what)
		}
		n = n*10 + int(c-'0')
	}
	if digits == 0 {
		return 0, malformed("%s length: no digits", what)
	}
	if c, err := r.ReadByte(); err != nil {
		return 0, err
	} else if c != '\n' {
		return 0, malformed("%s length: CR not followed by LF", what)
	}
	if n > max {
		return 0, oversized("%s length %d exceeds limit %d", what, n, max)
	}
	return n, nil
}

// ParseCommand reads one request frame from r. It returns io.EOF (or
// io.ErrUnexpectedEOF mid-frame) when the stream ends, and a typed
// *ProtocolError when the bytes are not a canonical request frame —
// after which the stream's framing is unrecoverable.
func ParseCommand(r *bufio.Reader) (Frame, error) {
	c, err := r.ReadByte()
	if err != nil {
		return Frame{}, err // io.EOF: clean end between frames
	}
	if c != '*' {
		return Frame{}, malformed("request must be an array, got type byte %q", c)
	}
	n, err := readLen(r, MaxArgs, "array")
	if err != nil {
		return Frame{}, unexpectedEOF(err)
	}
	if n == 0 {
		return Frame{}, &ProtocolError{Kind: KindEmpty, Detail: "empty request array"}
	}
	args := make([][]byte, n)
	for i := range args {
		c, err := r.ReadByte()
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		if c != '$' {
			return Frame{}, malformed("array element must be a bulk string, got type byte %q", c)
		}
		ln, err := readLen(r, MaxBulk, "bulk")
		if err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		buf := make([]byte, ln+2)
		if _, err := readFull(r, buf); err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return Frame{}, malformed("bulk string not terminated by CRLF")
		}
		args[i] = buf[:ln:ln]
	}
	return Frame{Args: args}, nil
}

// readFull fills buf from r.
func readFull(r *bufio.Reader, buf []byte) (int, error) {
	return io.ReadFull(r, buf)
}

// unexpectedEOF converts a mid-frame io.EOF into io.ErrUnexpectedEOF so
// callers can distinguish a clean close (between frames) from a
// truncated frame. Typed protocol errors pass through.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reply kinds (ReadReply.Kind).
const (
	ReplySimple = '+'
	ReplyError  = '-'
	ReplyInt    = ':'
	ReplyBulk   = '$'
	ReplyArray  = '*'
)

// Reply is one parsed server reply, as read by clients (the load
// generator, the conformance tests).
type Reply struct {
	// Kind is the RESP type byte (ReplySimple, ReplyError, ReplyInt,
	// ReplyBulk, ReplyArray).
	Kind byte
	// Str holds the simple-string text, error text, or bulk payload.
	Str []byte
	// Null reports a null bulk ($-1) or null array (*-1).
	Null bool
	// Int holds the integer reply value.
	Int int64
	// Elems holds the array reply's elements.
	Elems []Reply
}

// ErrorCode returns the typed first token of an error reply ("ERR",
// "UNAVAIL", "SHUTDOWN", "BUSY"), or "" for non-error replies.
func (rp Reply) ErrorCode() string {
	if rp.Kind != ReplyError {
		return ""
	}
	s := rp.Str
	for i, c := range s {
		if c == ' ' {
			return string(s[:i])
		}
	}
	return string(s)
}

// ReadReply reads one reply frame from r. Replies are parsed leniently
// relative to requests (signed integers, null markers), since the peer
// is our own server, but still bounded by the request limits.
func ReadReply(r *bufio.Reader) (Reply, error) {
	c, err := r.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	switch c {
	case ReplySimple, ReplyError:
		line, err := readLine(r)
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		return Reply{Kind: c, Str: line}, nil
	case ReplyInt:
		line, err := readLine(r)
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Reply{}, malformed("integer reply: %v", err)
		}
		return Reply{Kind: c, Int: n}, nil
	case ReplyBulk:
		line, err := readLine(r)
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if string(line) == "-1" {
			return Reply{Kind: c, Null: true}, nil
		}
		ln, err := strconv.Atoi(string(line))
		if err != nil || ln < 0 || ln > MaxBulk {
			return Reply{}, malformed("bulk reply length %q", line)
		}
		buf := make([]byte, ln+2)
		if _, err := readFull(r, buf); err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if buf[ln] != '\r' || buf[ln+1] != '\n' {
			return Reply{}, malformed("bulk reply not terminated by CRLF")
		}
		return Reply{Kind: c, Str: buf[:ln:ln]}, nil
	case ReplyArray:
		line, err := readLine(r)
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if string(line) == "-1" {
			return Reply{Kind: c, Null: true}, nil
		}
		n, err := strconv.Atoi(string(line))
		if err != nil || n < 0 || n > MaxArgs+2*MaxScanCount {
			return Reply{}, malformed("array reply length %q", line)
		}
		elems := make([]Reply, n)
		for i := range elems {
			e, err := ReadReply(r)
			if err != nil {
				return Reply{}, unexpectedEOF(err)
			}
			elems[i] = e
		}
		return Reply{Kind: c, Elems: elems}, nil
	}
	return Reply{}, malformed("unknown reply type byte %q", c)
}

// readLine reads bytes up to CRLF, rejecting bare CR or LF.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		c, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if c == '\r' {
			c2, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			if c2 != '\n' {
				return nil, malformed("CR not followed by LF in line")
			}
			return line, nil
		}
		if c == '\n' {
			return nil, malformed("bare LF in line")
		}
		if len(line) > MaxBulk {
			return nil, oversized("line exceeds %d bytes", MaxBulk)
		}
		line = append(line, c)
	}
}

// Reply encoding helpers, appending RESP reply frames to a byte slice
// (the per-connection output buffer).

func appendSimple(dst []byte, s string) []byte {
	return append(append(append(dst, '+'), s...), '\r', '\n')
}

func appendErrorReply(dst []byte, msg string) []byte {
	// Error text is a single line; scrub framing bytes out of wrapped
	// causes so the reply cannot break the stream.
	dst = append(dst, '-')
	for i := 0; i < len(msg); i++ {
		if c := msg[i]; c == '\r' || c == '\n' {
			dst = append(dst, ' ')
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, '\r', '\n')
}

func appendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '\r', '\n')
}

func appendBulk(dst []byte, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

func appendNullBulk(dst []byte) []byte {
	return append(dst, '$', '-', '1', '\r', '\n')
}

func appendArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}
