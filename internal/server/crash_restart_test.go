// Crash-restart end-to-end: traffic over the wire, an injected power
// failure mid-stream, a lossy power cycle, per-shard recovery, and a
// fresh server over the recovered front-end. The classification is the
// lossy campaign's, applied to client-visible acknowledgements: a
// reply that reached the client is a durability promise, so every
// acked write must read back with its acked value after restart
// (anything else is OutcomeLostAck/OutcomeCorrupt and fails); writes
// sent but never acked may have vanished (OutcomePartial) or survived
// (OutcomeClean) — both legal.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/crash"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/shard"
)

// ledger tracks what one client saw: acked writes (promise made) and
// sent-but-unacked writes (no promise).
type ledger struct {
	acked   map[string]uint64
	unacked map[string]uint64
}

// driveUntilCrash sends pipelined SETs in windows of w until the
// server dies mid-stream, maintaining the ledger. Returns how many
// replies arrived.
func driveUntilCrash(t *testing.T, addr string, w int, led *ledger) int {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	replies := 0
	type sent struct {
		key string
		val uint64
	}
	for i := 0; i < 100_000; i += w {
		var burst []byte
		window := make([]sent, 0, w)
		for j := i; j < i+w; j++ {
			k, v := fmt.Sprintf("c%06d", j), uint64(j)
			burst = append(burst, frame("SET", k, fmt.Sprint(v))...)
			window = append(window, sent{k, v})
			led.unacked[k] = v
		}
		if _, err := nc.Write(burst); err != nil {
			return replies // server dropped us mid-write
		}
		for _, s := range window {
			rp, err := ReadReply(br)
			if err != nil {
				return replies // power failure: remaining window unacked
			}
			if rp.Kind != ReplySimple {
				t.Fatalf("SET %s: unexpected reply %q %q", s.key, rp.Kind, rp.Str)
			}
			replies++
			delete(led.unacked, s.key)
			led.acked[s.key] = s.val
		}
	}
	t.Fatal("crash never fired")
	return replies
}

// classify reads every ledger entry back over the wire and returns the
// lossy outcome plus a detail string.
func classify(t *testing.T, addr string, led *ledger) (harness.LossyOutcome, string) {
	t.Helper()
	c := dialT(t, addr)
	for k, v := range led.acked {
		rp := c.do("GET", k)
		switch {
		case rp.Kind == ReplyInt && rp.Int == int64(v):
		case rp.Kind == ReplyBulk && rp.Null:
			return harness.OutcomeLostAck, fmt.Sprintf("acked key %s missing after restart", k)
		case rp.Kind == ReplyInt:
			return harness.OutcomeCorrupt, fmt.Sprintf("acked key %s: value %d, acked %d", k, rp.Int, v)
		default:
			return harness.OutcomeCorrupt, fmt.Sprintf("acked key %s: reply %q %q", k, rp.Kind, rp.Str)
		}
	}
	outcome := harness.OutcomeClean
	for k, v := range led.unacked {
		rp := c.do("GET", k)
		switch {
		case rp.Kind == ReplyInt && rp.Int == int64(v):
			// Unacked but survived: the fence covering it retired before
			// the power cut. Clean.
		case rp.Kind == ReplyBulk && rp.Null:
			outcome = harness.OutcomePartial // vanished without a promise
		case rp.Kind == ReplyInt:
			return harness.OutcomeCorrupt, fmt.Sprintf("in-flight key %s: torn value %d (sent %d)", k, rp.Int, v)
		default:
			return harness.OutcomeCorrupt, fmt.Sprintf("in-flight key %s: reply %q %q", k, rp.Kind, rp.Str)
		}
	}
	return outcome, ""
}

// TestCrashRestartE2E runs the full cycle in every write mode under
// the torn power-cycle policy (the hardest image recovery faces).
func TestCrashRestartE2E(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			const shards = 4
			m, err := shard.NewOrdered("P-ART", keys.YCSBString, shard.Options{
				Shards: shards,
				Heap:   pmem.Options{Shadow: true},
			})
			if err != nil {
				t.Fatalf("NewOrdered: %v", err)
			}
			t.Cleanup(m.Release)

			// Arm a power failure on shard 1, a few hundred persistence
			// sites into its traffic.
			m.Heap(1).SetInjector(crash.NewNth(400))

			ts := serveOver(t, m, Options{Mode: mode, IndexName: "P-ART", Batch: 8})
			led := &ledger{acked: map[string]uint64{}, unacked: map[string]uint64{}}
			replies := driveUntilCrash(t, ts.addr(), 8, led)
			if replies == 0 || len(led.acked) == 0 {
				t.Fatal("no writes acked before the crash; injector fired too early")
			}

			// The whole server died, as a machine does: Serve reports the
			// crash cause and no connection got further replies.
			if err := ts.wait(); !errors.Is(err, crash.ErrCrashed) {
				t.Fatalf("Serve returned %v, want crash cause", err)
			}
			if !ts.srv.Failed() {
				t.Fatal("server must be marked failed")
			}

			// Restart: lossy image under torn policy, per-shard recovery
			// (only the fired shard replays), new server over the same
			// front-end.
			m.PowerCycleShard(1, pmem.PolicyTorn, 0x5eed+int64(mode))
			replayed, rerr := m.RecoverCrashed()
			if rerr != nil {
				t.Fatalf("recovery failed: %v (quarantined %v)", rerr, m.Quarantined())
			}
			if len(replayed) != 1 || replayed[0] != 1 {
				t.Fatalf("replayed shards %v, want [1]", replayed)
			}

			ts2 := serveOver(t, m, Options{Mode: mode, IndexName: "P-ART", Batch: 8})
			outcome, detail := classify(t, ts2.addr(), led)
			t.Logf("mode=%s acked=%d unacked=%d outcome=%s",
				mode, len(led.acked), len(led.unacked), outcome)
			if outcome == harness.OutcomeLostAck || outcome == harness.OutcomeCorrupt {
				t.Fatalf("client-visible durability violated: %s (%s)", outcome, detail)
			}

			// The restarted server takes new traffic.
			c := dialT(t, ts2.addr())
			wantSimple(t, c.do("SET", "post-restart", "1"), "OK")
			wantInt(t, c.do("GET", "post-restart"), 1)
		})
	}
}

// TestCrashRestartQuarantineDegrades: when a shard's recovery fails,
// the server must come up degraded — UNAVAIL for the quarantined
// shard's key space, full service elsewhere — rather than refuse to
// serve.
func TestCrashRestartQuarantineDegrades(t *testing.T) {
	const shards = 4
	m, err := shard.NewOrdered("P-ART", keys.YCSBString, shard.Options{
		Shards: shards,
		Heap:   pmem.Options{Shadow: true},
	})
	if err != nil {
		t.Fatalf("NewOrdered: %v", err)
	}
	t.Cleanup(m.Release)

	m.Heap(2).SetInjector(crash.NewNth(300))
	ts := serveOver(t, m, Options{Mode: ModeSync, IndexName: "P-ART"})
	led := &ledger{acked: map[string]uint64{}, unacked: map[string]uint64{}}
	driveUntilCrash(t, ts.addr(), 4, led)
	if err := ts.wait(); !errors.Is(err, crash.ErrCrashed) {
		t.Fatalf("Serve returned %v, want crash cause", err)
	}

	// Simulate the unrecoverable case: power-cycle, then quarantine the
	// damaged shard as a failed verifier would (clearing the injector the
	// way RecoverCrashed does for shards it gives up on).
	m.PowerCycleShard(2, pmem.PolicyTorn, 99)
	m.Heap(2).SetInjector(nil)
	m.Quarantine(2, errors.New("recovery verifier: corrupt image"))

	ts2 := serveOver(t, m, Options{Mode: ModeSync, IndexName: "P-ART"})
	c := dialT(t, ts2.addr())

	// Acked keys on healthy shards must still honour their promise;
	// keys on the quarantined shard answer UNAVAIL, not silence.
	healthy, unavail := 0, 0
	for k, v := range led.acked {
		rp := c.do("GET", k)
		if m.Route([]byte(k)) == 2 {
			wantCode(t, rp, "UNAVAIL")
			unavail++
			continue
		}
		wantInt(t, rp, int64(v))
		healthy++
	}
	if healthy == 0 || unavail == 0 {
		t.Fatalf("test did not exercise both sides: healthy=%d unavail=%d", healthy, unavail)
	}
	info := string(c.do("INFO").Str)
	if !strings.Contains(info, "degraded:true") || !strings.Contains(info, "quarantined:2") {
		t.Fatalf("INFO must surface the quarantine: %q", info)
	}
	// Degraded, not down: writes to healthy shards still work.
	for i := 0; ; i++ {
		k := fmt.Sprintf("fresh%03d", i)
		if m.Route([]byte(k)) != 2 {
			wantSimple(t, c.do("SET", k, "9"), "OK")
			wantInt(t, c.do("GET", k), 9)
			break
		}
	}
}
