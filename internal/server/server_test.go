// In-process protocol conformance: every command crossed with the
// failure axes — ok, missing key, quarantined shard, oversized frame,
// pipelined burst, half-closed connection — against a real listener,
// in all three write-path modes where the axis involves writes.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/shard"
)

// modes every write-path-sensitive table runs under.
var modes = []WriteMode{ModeSync, ModeBatched, ModeAsync}

// testServer is an in-process server on a loopback listener.
type testServer struct {
	srv *Server
	m   *shard.Ordered
	lis net.Listener
	fin chan error

	once   sync.Once
	finErr error
}

// wait blocks until Serve returned and reports its result; safe to
// call repeatedly (tests consume it, the cleanup consumes it again).
func (ts *testServer) wait() error {
	ts.once.Do(func() { ts.finErr = <-ts.fin })
	return ts.finErr
}

func startServer(t *testing.T, mode WriteMode, shards int) *testServer {
	t.Helper()
	m, err := shard.NewOrdered("P-ART", keys.YCSBString, shard.Options{
		Shards: shards,
		Heap:   pmem.Options{Track: true},
	})
	if err != nil {
		t.Fatalf("NewOrdered: %v", err)
	}
	t.Cleanup(m.Release)
	return serveOver(t, m, Options{Mode: mode, IndexName: "P-ART"})
}

// serveOver starts a server over an existing front-end (the crash
// tests re-serve a recovered one). The front-end's lifetime belongs to
// the caller; the cleanup only drains the server.
func serveOver(t *testing.T, m *shard.Ordered, opts Options) *testServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ts := &testServer{srv: New(m, opts), m: m, lis: lis, fin: make(chan error, 1)}
	go func() { ts.fin <- ts.srv.Serve(lis) }()
	t.Cleanup(func() {
		ts.srv.Shutdown()
		ts.wait()
	})
	return ts
}

func (ts *testServer) addr() string { return ts.lis.Addr().String() }

// tclient is a test client over one connection.
type tclient struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialT(t *testing.T, addr string) *tclient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return &tclient{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func frame(args ...string) []byte {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return AppendFrame(nil, bs)
}

// send writes raw bytes (one or more frames) without reading replies.
func (c *tclient) send(raw []byte) {
	c.t.Helper()
	if _, err := c.nc.Write(raw); err != nil {
		c.t.Fatalf("write: %v", err)
	}
}

// read reads one reply.
func (c *tclient) read() Reply {
	c.t.Helper()
	rp, err := ReadReply(c.br)
	if err != nil {
		c.t.Fatalf("read reply: %v", err)
	}
	return rp
}

// do sends one command and reads its reply.
func (c *tclient) do(args ...string) Reply {
	c.t.Helper()
	c.send(frame(args...))
	return c.read()
}

func wantSimple(t *testing.T, rp Reply, s string) {
	t.Helper()
	if rp.Kind != ReplySimple || string(rp.Str) != s {
		t.Fatalf("want +%s, got kind %q %q", s, rp.Kind, rp.Str)
	}
}

func wantInt(t *testing.T, rp Reply, n int64) {
	t.Helper()
	if rp.Kind != ReplyInt || rp.Int != n {
		t.Fatalf("want :%d, got kind %q int=%d str=%q", n, rp.Kind, rp.Int, rp.Str)
	}
}

func wantNull(t *testing.T, rp Reply) {
	t.Helper()
	if rp.Kind != ReplyBulk || !rp.Null {
		t.Fatalf("want $-1, got kind %q null=%v %q", rp.Kind, rp.Null, rp.Str)
	}
}

func wantCode(t *testing.T, rp Reply, code string) {
	t.Helper()
	if rp.Kind != ReplyError {
		t.Fatalf("want -%s..., got kind %q %q int=%d", code, rp.Kind, rp.Str, rp.Int)
	}
	if got := rp.ErrorCode(); got != code {
		t.Fatalf("want error code %s, got %s (%q)", code, got, rp.Str)
	}
}

// TestCommandsOK: the happy path of every command, in every mode.
func TestCommandsOK(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 4)
			c := dialT(t, ts.addr())

			wantSimple(t, c.do("PING"), "PONG")
			wantSimple(t, c.do("SET", "ka", "1"), "OK")
			wantSimple(t, c.do("SET", "kb", "2"), "OK")
			wantSimple(t, c.do("set", "kc", "3"), "OK") // case-folded
			wantInt(t, c.do("GET", "ka"), 1)
			wantSimple(t, c.do("UPDATE", "ka", "10"), "OK")
			wantInt(t, c.do("GET", "ka"), 10)
			wantInt(t, c.do("DEL", "kb"), 1)
			wantNull(t, c.do("GET", "kb"))

			rp := c.do("SCAN", "", "10")
			if rp.Kind != ReplyArray || len(rp.Elems) != 2 {
				t.Fatalf("SCAN reply shape: kind %q elems %d", rp.Kind, len(rp.Elems))
			}
			if !rp.Elems[0].Null {
				t.Fatalf("partial page must have null resume key, got %q", rp.Elems[0].Str)
			}
			kv := rp.Elems[1]
			if len(kv.Elems) != 4 { // ka, kc
				t.Fatalf("want 2 entries (4 elems), got %d", len(kv.Elems))
			}
			if string(kv.Elems[0].Str) != "ka" || kv.Elems[1].Int != 10 ||
				string(kv.Elems[2].Str) != "kc" || kv.Elems[3].Int != 3 {
				t.Fatalf("SCAN entries wrong: %q=%d %q=%d",
					kv.Elems[0].Str, kv.Elems[1].Int, kv.Elems[2].Str, kv.Elems[3].Int)
			}

			info := c.do("INFO")
			if info.Kind != ReplyBulk || !strings.Contains(string(info.Str), "mode:"+mode.String()) {
				t.Fatalf("INFO missing mode: %q", info.Str)
			}
			stats := c.do("STATS")
			if stats.Kind != ReplyBulk || !strings.Contains(string(stats.Str), "fence:") {
				t.Fatalf("STATS missing fence counter: %q", stats.Str)
			}

			wantSimple(t, c.do("QUIT"), "OK")
			if _, err := c.br.ReadByte(); err == nil {
				t.Fatal("connection still open after QUIT")
			}
		})
	}
}

// TestMissingKeyAndArity: missing keys and malformed arguments answer
// without disturbing the connection.
func TestMissingKeyAndArity(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 2)
			c := dialT(t, ts.addr())

			wantNull(t, c.do("GET", "nope"))
			wantInt(t, c.do("DEL", "nope"), 0)
			// Blind-write semantics: UPDATE of an absent key inserts it
			// (YCSB contract, documented on core.OrderedIndex.Update).
			wantSimple(t, c.do("UPDATE", "nope", "5"), "OK")
			wantInt(t, c.do("GET", "nope"), 5)

			wantCode(t, c.do("GET"), "ERR")
			wantCode(t, c.do("SET", "k"), "ERR")
			wantCode(t, c.do("SET", "k", "notanumber"), "ERR")
			wantCode(t, c.do("SCAN", "a", "0"), "ERR")
			wantCode(t, c.do("SCAN", "a", fmt.Sprint(MaxScanCount+1)), "ERR")
			wantCode(t, c.do("NOSUCH", "x"), "ERR")

			// The connection survived all of it.
			wantSimple(t, c.do("PING"), "PONG")
		})
	}
}

// TestQuarantinedShard: ops routed to a quarantined shard answer
// UNAVAIL; other shards and merged scans keep serving (degraded, not
// down).
func TestQuarantinedShard(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 4)
			c := dialT(t, ts.addr())

			// Find keys on shard 0 and on some other shard.
			var hit, miss string
			for i := 0; hit == "" || miss == ""; i++ {
				k := fmt.Sprintf("key%04d", i)
				if ts.m.Route([]byte(k)) == 0 {
					if hit == "" {
						hit = k
					}
				} else if miss == "" {
					miss = k
				}
			}
			wantSimple(t, c.do("SET", miss, "7"), "OK")
			ts.m.Quarantine(0, errors.New("verifier: corrupt image"))

			wantCode(t, c.do("GET", hit), "UNAVAIL")
			wantCode(t, c.do("SET", hit, "1"), "UNAVAIL")
			wantCode(t, c.do("UPDATE", hit, "1"), "UNAVAIL")
			wantCode(t, c.do("DEL", hit), "UNAVAIL")

			// Healthy shards unaffected; scans degrade past the hole.
			wantInt(t, c.do("GET", miss), 7)
			rp := c.do("SCAN", "", "10")
			if rp.Kind != ReplyArray {
				t.Fatalf("degraded SCAN failed: kind %q %q", rp.Kind, rp.Str)
			}
			info := string(c.do("INFO").Str)
			if !strings.Contains(info, "degraded:true") || !strings.Contains(info, "quarantined:0") {
				t.Fatalf("INFO must surface quarantine: %q", info)
			}
		})
	}
}

// TestOversizedAndMalformedFrames: framing violations get one typed
// ERR proto/... reply, then the connection closes (framing is lost).
func TestOversizedAndMalformedFrames(t *testing.T) {
	cases := []struct {
		name, kind string
		raw        []byte
	}{
		{"bulk over MaxBulk", KindOversized, []byte(fmt.Sprintf("*2\r\n$3\r\nGET\r\n$%d\r\n", MaxBulk+1))},
		{"args over MaxArgs", KindOversized, []byte(fmt.Sprintf("*%d\r\n", MaxArgs+1))},
		{"huge length literal", KindOversized, []byte("*1\r\n$99999999\r\n")},
		{"not an array", KindMalformed, []byte("+PING\r\n")},
		{"inline command", KindMalformed, []byte("GET k\r\n")},
		{"leading zero length", KindMalformed, []byte("*01\r\n$4\r\nPING\r\n")},
		{"signed length", KindMalformed, []byte("*-1\r\n")},
		{"element not bulk", KindMalformed, []byte("*1\r\n:42\r\n")},
		{"bulk missing CRLF", KindMalformed, []byte("*1\r\n$4\r\nPINGxx")},
		{"empty array", KindEmpty, []byte("*0\r\n")},
	}
	ts := startServer(t, ModeSync, 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dialT(t, ts.addr())
			// A write accepted before the bad frame must still be acked.
			c.send(frame("SET", "pre", "1"))
			c.send(tc.raw)
			wantSimple(t, c.read(), "OK")
			rp := c.read()
			wantCode(t, rp, "ERR")
			if !strings.HasPrefix(string(rp.Str), "ERR proto/"+tc.kind) {
				t.Fatalf("want ERR proto/%s..., got %q", tc.kind, rp.Str)
			}
			if _, err := c.br.ReadByte(); err == nil {
				t.Fatal("connection must close after a protocol error")
			}
		})
	}
}

// TestPipelinedBurst: hundreds of commands in one write, replies in
// exact order — across settle boundaries (burst > MaxPipeline) and
// batch boundaries in batched mode.
func TestPipelinedBurst(t *testing.T) {
	const n = 700 // > DefaultMaxPipeline and many DefaultBatch multiples
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 4)
			c := dialT(t, ts.addr())

			var burst []byte
			for i := 0; i < n; i++ {
				burst = append(burst, frame("SET", fmt.Sprintf("k%05d", i), fmt.Sprint(i))...)
			}
			for i := 0; i < n; i++ {
				burst = append(burst, frame("GET", fmt.Sprintf("k%05d", i))...)
			}
			c.send(burst)
			for i := 0; i < n; i++ {
				wantSimple(t, c.read(), "OK")
			}
			for i := 0; i < n; i++ {
				wantInt(t, c.read(), int64(i))
			}
		})
	}
}

// TestHalfClosedConnection: the client half-closes after pipelining
// writes; every accepted write is settled, acked, and durable.
func TestHalfClosedConnection(t *testing.T) {
	const n = 100
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := startServer(t, mode, 4)
			c := dialT(t, ts.addr())

			var burst []byte
			for i := 0; i < n; i++ {
				burst = append(burst, frame("SET", fmt.Sprintf("h%04d", i), fmt.Sprint(i))...)
			}
			c.send(burst)
			c.nc.(*net.TCPConn).CloseWrite()
			for i := 0; i < n; i++ {
				wantSimple(t, c.read(), "OK")
			}
			if _, err := c.br.ReadByte(); err == nil {
				t.Fatal("server must close after draining a half-closed conn")
			}
			// Acked ⇒ readable on a fresh connection.
			c2 := dialT(t, ts.addr())
			for i := 0; i < n; i++ {
				wantInt(t, c2.do("GET", fmt.Sprintf("h%04d", i)), int64(i))
			}
		})
	}
}

// TestScanPagination: a full page returns the exclusive-successor
// resume key; chained pages cover the key space exactly once.
func TestScanPagination(t *testing.T) {
	ts := startServer(t, ModeSync, 4)
	c := dialT(t, ts.addr())
	const n = 57
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("p%04d", i)
		wantSimple(t, c.do("SET", k, fmt.Sprint(i)), "OK")
		want = append(want, k)
	}
	var got []string
	start := ""
	for page := 0; ; page++ {
		rp := c.do("SCAN", start, "10")
		if rp.Kind != ReplyArray || len(rp.Elems) != 2 {
			t.Fatalf("page %d: bad shape", page)
		}
		kv := rp.Elems[1]
		for i := 0; i < len(kv.Elems); i += 2 {
			got = append(got, string(kv.Elems[i].Str))
		}
		if rp.Elems[0].Null {
			break
		}
		next := string(rp.Elems[0].Str)
		if !(next > start) {
			t.Fatalf("resume key %q not past %q", next, start)
		}
		start = next
		if page > n {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(got) != n {
		t.Fatalf("pages covered %d keys, want %d", len(got), n)
	}
	for i, k := range got {
		if k != want[i] {
			t.Fatalf("entry %d: got %q want %q", i, k, want[i])
		}
	}
}

// TestFrameHelperCanonical: the test client's own frames match the
// codec's canonical form (guards the helpers the other tests lean on).
func TestFrameHelperCanonical(t *testing.T) {
	f := frame("SET", "k", "1")
	parsed, err := ParseCommand(bufio.NewReader(bytes.NewReader(f)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !bytes.Equal(parsed.Encode(), f) {
		t.Fatalf("round trip: %q vs %q", parsed.Encode(), f)
	}
}
