// Server lifecycle and write-path plumbing: a Server accepts
// connections on a listener, serves the wire protocol over a sharded
// ordered front-end, and shuts down by draining — every write accepted
// before the connection closes is fenced before its reply is flushed,
// so a client that saw +OK holds a durable write even across SIGTERM.
//
// Three write paths, selected at construction:
//
//   - ModeSync: point writes through shard.Ordered — each op's own
//     persistence fences synchronously before the reply is staged.
//   - ModeBatched: per-connection shard.Deferred combiners — pipelined
//     writes group-commit with fence coalescing; replies for the batch
//     are withheld until the flush that makes them durable returns.
//   - ModeAsync: a shared internal/commit pipeline — writes enqueue
//     into per-shard committer queues and replies are withheld until
//     each op's ack-after-fence future resolves.
//
// In every mode the reply for a write reaches the socket only after
// the write's covering fence retired: the connection's settle step
// (commit staged writes, resolve withheld replies) always runs before
// the output buffer is flushed.
//
// An injected machine crash (crash.Signal out of an index operation,
// or a crash error surfacing from a group commit) fails the whole
// server: connections drop without further replies — exactly a power
// failure's client-visible shape — and Serve returns the cause. The
// crash-restart tests power-cycle the damaged heap, RecoverCrashed the
// front-end, and start a fresh Server over it; shards whose recovery
// failed stay quarantined and surface as UNAVAIL replies while the
// rest keep serving.
package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/commit"
	"repro/internal/crash"
	"repro/shard"
)

// WriteMode selects how SET/UPDATE reach persistence.
type WriteMode int

const (
	// ModeSync applies point writes synchronously (default).
	ModeSync WriteMode = iota
	// ModeBatched group-commits pipelined writes per connection via
	// shard.Deferred, one covering fence per batch.
	ModeBatched
	// ModeAsync enqueues writes into the shared internal/commit
	// pipeline and acks on the future's fence.
	ModeAsync
)

// String names the mode for flags and INFO.
func (m WriteMode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeBatched:
		return "batched"
	case ModeAsync:
		return "async"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseWriteMode parses a -mode flag value.
func ParseWriteMode(s string) (WriteMode, error) {
	switch s {
	case "sync":
		return ModeSync, nil
	case "batched":
		return ModeBatched, nil
	case "async":
		return ModeAsync, nil
	}
	return 0, fmt.Errorf("server: unknown write mode %q (want sync, batched or async)", s)
}

// Options configures a Server.
type Options struct {
	// Mode is the write path (default ModeSync).
	Mode WriteMode
	// Batch caps a batched-mode connection's deferred queue: a settle
	// is forced once this many writes are staged. Values < 1 select
	// DefaultBatch. Ignored outside ModeBatched.
	Batch int
	// Commit configures the async pipeline's per-shard committers
	// (queue depth, max batch, backpressure policy, flush interval).
	// Ignored outside ModeAsync.
	Commit commit.Options
	// MaxPipeline caps commands handled per settle round, bounding the
	// reply bytes buffered for one connection. Values < 1 select
	// DefaultMaxPipeline.
	MaxPipeline int
	// IndexName labels INFO output (the converted index in use).
	IndexName string
}

// Defaults for Options.
const (
	DefaultBatch       = 64
	DefaultMaxPipeline = 256
)

func (o Options) batch() int {
	if o.Batch < 1 {
		return DefaultBatch
	}
	return o.Batch
}

func (o Options) maxPipeline() int {
	if o.MaxPipeline < 1 {
		return DefaultMaxPipeline
	}
	return o.MaxPipeline
}

// Server serves the wire protocol over one sharded ordered front-end.
// Start it with Serve, stop it with Shutdown. A Server is single-use:
// after Shutdown (or a machine crash) build a new one — the crash
// tests do exactly that, over the same recovered front-end.
type Server struct {
	m    *shard.Ordered
	opts Options
	pipe *commit.Ordered // ModeAsync: the shared ack-after-fence pipeline

	mu       sync.Mutex
	lis      net.Listener
	conns    map[*conn]struct{}
	cause    error          // machine-crash cause (guarded by mu, read via Cause)
	wg       sync.WaitGroup // live connection goroutines; Add under mu, gated by draining
	draining atomic.Bool
	failed   atomic.Bool
}

// New builds a Server over front-end m. In ModeAsync it starts the
// commit pipeline's per-shard committer goroutines immediately;
// Shutdown (or Close) releases them.
func New(m *shard.Ordered, opts Options) *Server {
	s := &Server{m: m, opts: opts, conns: make(map[*conn]struct{})}
	if opts.Mode == ModeAsync {
		s.pipe = commit.NewOrdered(m, opts.Commit)
	}
	return s
}

// Frontend returns the front-end the server serves — the crash tests
// recover and re-serve it.
func (s *Server) Frontend() *shard.Ordered { return s.m }

// Mode returns the configured write path.
func (s *Server) Mode() WriteMode { return s.opts.Mode }

// Serve accepts connections on l until Shutdown or a machine crash.
// It returns nil after a clean drain and the crash cause after a
// failure. The listener is owned by the server from here on.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.lis != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.lis = l
	s.mu.Unlock()

	for {
		nc, err := l.Accept()
		if err != nil {
			// Listener closed by Shutdown or fail; wait for the
			// connections to settle and report the verdict.
			s.wg.Wait()
			s.closePipe()
			return s.Cause()
		}
		c := newConn(s, nc)
		if !s.track(c) {
			nc.Close() // raced Shutdown/fail past Accept
			continue
		}
		go func() {
			defer s.wg.Done()
			c.serve()
			s.untrack(c)
		}()
	}
}

// track registers a live connection; it refuses (false) once draining
// or failed, so late accepts cannot outlive Shutdown. The WaitGroup
// Add happens under the same mutex Shutdown uses to set draining, so
// Shutdown's Wait races no Add.
func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() || s.failed.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown drains the server gracefully: no new connections, data
// commands on live connections answer with SHUTDOWN errors, every
// write accepted before the drain began is fenced and its reply
// flushed, then connections close. It blocks until every connection
// has settled and (in ModeAsync) the commit pipeline has drained and
// stopped. Safe to call more than once and concurrently with traffic.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.draining.Store(true) // under mu: no conn can register after this
	lis := s.lis
	// Kick connections blocked in read: an already-expired read deadline
	// fails the pending (and any future) read with a timeout, which the
	// conn loop treats as "settle what you hold, reply, and close".
	for c := range s.conns {
		c.kick()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	// Each connection settles (fences accepted writes, flushes replies)
	// before exiting; only then stop the async committers.
	s.wg.Wait()
	s.closePipe()
	return s.Cause()
}

// closePipe stops the async committers exactly once.
func (s *Server) closePipe() {
	s.mu.Lock()
	pipe := s.pipe
	s.pipe = nil
	s.mu.Unlock()
	if pipe != nil {
		pipe.Close()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// fail is the machine-death path: an injected crash escaped an index
// operation or surfaced from a group commit. The server records the
// cause and drops everything on the floor — listener, connections,
// buffered replies — because a machine that lost power sends no more
// bytes. Unreplied operations are thereby unacknowledged, which is
// exactly what the crash-restart classification needs.
func (s *Server) fail(cause error) {
	s.mu.Lock()
	if s.cause == nil {
		s.cause = cause
	}
	lis := s.lis
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.failed.Store(true)
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.nc.Close()
	}
}

// Cause returns the machine-crash cause, nil after a clean lifetime.
func (s *Server) Cause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cause
}

// Failed reports whether the server died to an injected crash.
func (s *Server) Failed() bool { return s.failed.Load() }

// infoText renders the INFO reply: one key:value per line.
func (s *Server) infoText() []byte {
	q := s.m.Quarantined()
	recov := s.m.Recoveries()
	var b []byte
	b = append(b, "mode:"...)
	b = append(b, s.opts.Mode.String()...)
	b = append(b, "\nindex:"...)
	b = append(b, s.opts.IndexName...)
	b = append(b, "\nshards:"...)
	b = strconv.AppendInt(b, int64(s.m.NumShards()), 10)
	b = append(b, "\npartitioner:"...)
	b = append(b, s.m.PartitionerName()...)
	b = append(b, "\nkeys:"...)
	b = strconv.AppendInt(b, int64(s.m.Len()), 10)
	b = append(b, "\ndraining:"...)
	b = strconv.AppendBool(b, s.draining.Load())
	b = append(b, "\ndegraded:"...)
	b = strconv.AppendBool(b, s.m.Degraded())
	b = append(b, "\nquarantined:"...)
	sort.Ints(q)
	for i, sh := range q {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(sh), 10)
	}
	b = append(b, "\nrecoveries:"...)
	for i, r := range recov {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, r, 10)
	}
	b = append(b, '\n')
	return b
}

// statsText renders the STATS reply: the aggregate pmem counters.
func (s *Server) statsText() []byte {
	st := s.m.Stats()
	var b []byte
	b = append(b, "clwb:"...)
	b = strconv.AppendUint(b, st.Clwb, 10)
	b = append(b, "\nfence:"...)
	b = strconv.AppendUint(b, st.Fence, 10)
	b = append(b, "\nallocs:"...)
	b = strconv.AppendUint(b, st.Allocs, 10)
	b = append(b, "\nalloc_bytes:"...)
	b = strconv.AppendUint(b, st.AllocBytes, 10)
	b = append(b, '\n')
	return b
}

// isMachineCrash reports whether err carries an injected power-failure
// signal (through group/batch error chains).
func isMachineCrash(err error) bool {
	return err != nil && errors.Is(err, crash.ErrCrashed)
}
