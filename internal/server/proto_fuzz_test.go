package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParseCommand pins the codec's three load-bearing properties on
// arbitrary input: no panics, every accepted frame re-encodes
// byte-identically to the bytes it consumed (canonical parsing), and
// every rejection is a typed error (EOF pair or *ProtocolError).
func FuzzParseCommand(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$4\r\nk001\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$4\r\nk001\r\n$2\r\n42\r\n"))
	f.Add([]byte("*3\r\n$6\r\nUPDATE\r\n$1\r\nk\r\n$1\r\n7\r\n"))
	f.Add([]byte("*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n"))
	f.Add([]byte("*3\r\n$4\r\nSCAN\r\n$1\r\na\r\n$2\r\n16\r\n"))
	f.Add([]byte("*1\r\n$4\r\nINFO\r\n*1\r\n$5\r\nSTATS\r\n")) // pipelined pair
	f.Add([]byte("*0\r\n"))                                    // empty array
	f.Add([]byte("*2\r\n$03\r\nGET\r\n$1\r\nk\r\n"))           // leading zero
	f.Add([]byte("*-1\r\n"))                                   // signed length
	f.Add([]byte("*1\r\n$99999999\r\nx\r\n"))                  // oversized bulk
	f.Add([]byte("*1\r\n$4\r\nPING\n"))                        // bare LF
	f.Add([]byte("+OK\r\n"))                                   // reply, not request
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$4\r\nk0"))               // truncated mid-bulk
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		consumed := 0
		for {
			frame, err := ParseCommand(r)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				var pe *ProtocolError
				if !errors.As(err, &pe) || !errors.Is(err, ErrProtocol) {
					t.Fatalf("untyped parse error %T: %v", err, err)
				}
				switch pe.Kind {
				case KindMalformed, KindOversized, KindEmpty:
				default:
					t.Fatalf("unknown ProtocolError kind %q", pe.Kind)
				}
				return
			}
			if len(frame.Args) == 0 || len(frame.Args) > MaxArgs {
				t.Fatalf("accepted frame with %d args", len(frame.Args))
			}
			for _, a := range frame.Args {
				if len(a) > MaxBulk {
					t.Fatalf("accepted bulk of %d bytes", len(a))
				}
			}
			// Canonical parsing: the consumed prefix IS the canonical
			// encoding, so re-encoding must reproduce it byte for byte.
			enc := frame.Encode()
			end := consumed + len(enc)
			if end > len(data) || !bytes.Equal(data[consumed:end], enc) {
				t.Fatalf("re-encode mismatch at offset %d:\n  input %q\n  enc   %q",
					consumed, data[consumed:min(end, len(data))], enc)
			}
			consumed = end
		}
	})
}

// FuzzFrameRoundTrip drives the inverse direction: any args within
// limits encode to a frame the parser accepts, reproduces exactly, and
// re-encodes byte-identically.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("GET"), []byte("k001"), []byte(""), uint8(2))
	f.Add([]byte("SET"), []byte("key"), []byte("42"), uint8(3))
	f.Add([]byte("PING"), []byte(""), []byte(""), uint8(1))
	f.Add([]byte(""), []byte(""), []byte(""), uint8(3)) // empty bulks are legal
	f.Add([]byte("\r\n$"), []byte("*9"), []byte{0}, uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c []byte, n uint8) {
		pool := [][]byte{a, b, c}
		args := make([][]byte, 0, MaxArgs)
		for i := 0; i < int(n%MaxArgs)+1; i++ {
			arg := pool[i%len(pool)]
			if len(arg) > MaxBulk {
				arg = arg[:MaxBulk]
			}
			args = append(args, arg)
		}
		enc := AppendFrame(nil, args)
		frame, err := ParseCommand(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n  enc %q", err, enc)
		}
		if len(frame.Args) != len(args) {
			t.Fatalf("round trip lost args: sent %d got %d", len(args), len(frame.Args))
		}
		for i := range args {
			if !bytes.Equal(frame.Args[i], args[i]) {
				t.Fatalf("arg %d mismatch: sent %q got %q", i, args[i], frame.Args[i])
			}
		}
		if re := frame.Encode(); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode mismatch:\n  enc %q\n  re  %q", enc, re)
		}
	})
}
