// Package pmlock provides CAS-based spinlocks for simulated
// persistent-memory indexes.
//
// RECIPE (§4.2) assumes that locks embedded in persistent nodes are
// non-persistent and are re-initialised when an index restarts after a
// crash. A sync.Mutex cannot express that: a crashed operation would leave
// it locked forever and there is no way to force-reset it. The locks in
// this package are plain words manipulated with compare-and-swap, so a
// simulated crash can abandon them mid-critical-section and recovery can
// re-initialise them, exactly as a real PM index re-initialises its lock
// table on startup (§6, "Lock initialization").
package pmlock

import (
	"runtime"
	"sync/atomic"
)

// Mutex is a CAS spinlock. The zero value is unlocked.
//
// Unlike sync.Mutex it supports Reset, which unconditionally returns the
// lock to the unlocked state regardless of owner. Reset is only safe when
// no thread is inside the critical section, i.e. during post-crash
// recovery.
type Mutex struct {
	v atomic.Uint32
}

// Lock acquires the lock, spinning until it is available.
func (m *Mutex) Lock() {
	for i := 0; ; i++ {
		if m.v.CompareAndSwap(0, 1) {
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// TryLock attempts to acquire the lock without blocking and reports
// whether it succeeded. RECIPE's Condition #3 crash detection is built on
// try-lock: if a writer observes an inconsistency and then successfully
// acquires the lock, no concurrent writer can be mid-update, so the
// inconsistency must be permanent (left by a crash).
func (m *Mutex) TryLock() bool {
	return m.v.CompareAndSwap(0, 1)
}

// Unlock releases the lock. It must only be called by the holder.
func (m *Mutex) Unlock() {
	m.v.Store(0)
}

// Reset unconditionally re-initialises the lock to unlocked. It models
// lock-table re-initialisation on restart after a crash.
func (m *Mutex) Reset() {
	m.v.Store(0)
}

// Locked reports whether the lock is currently held. It is advisory and
// intended for tests and recovery diagnostics.
func (m *Mutex) Locked() bool {
	return m.v.Load() != 0
}
