package pmlock

import (
	"sync"
	"testing"
)

func TestLockUnlock(t *testing.T) {
	var m Mutex
	if m.Locked() {
		t.Fatal("zero-value mutex should be unlocked")
	}
	m.Lock()
	if !m.Locked() {
		t.Fatal("Lock did not set state")
	}
	m.Unlock()
	if m.Locked() {
		t.Fatal("Unlock did not clear state")
	}
}

func TestTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
}

func TestResetReleasesAbandonedLock(t *testing.T) {
	var m Mutex
	m.Lock() // simulate a crashed holder
	if m.TryLock() {
		t.Fatal("abandoned lock should still appear held")
	}
	m.Reset()
	if !m.TryLock() {
		t.Fatal("Reset should re-initialise the lock")
	}
}

func TestMutualExclusion(t *testing.T) {
	var m Mutex
	const goroutines = 8
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates => no mutual exclusion)", counter, goroutines*iters)
	}
}

func TestTryLockMutualExclusion(t *testing.T) {
	var m Mutex
	const goroutines = 8
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if m.TryLock() {
					counter++
					m.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// No assertion on the count (TryLock may fail), only on race-freedom,
	// which the race detector validates.
	_ = counter
}
