package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeUint64(t *testing.T) {
	for _, v := range []uint64{0, 1, 255, 256, 1 << 32, ^uint64(0)} {
		if got := DecodeUint64(EncodeUint64(v)); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

// Property: big-endian encoding preserves numeric order lexicographically.
func TestQuickOrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := EncodeUint64(a), EncodeUint64(b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mix64 is injective on sampled pairs (it is a bijection by
// construction; this guards against regressions in the constants).
func TestQuickMix64Injective(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return Mix64(a) == Mix64(b)
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorSizes(t *testing.T) {
	for _, kind := range []Kind{RandInt, YCSBString} {
		g := NewGenerator(kind)
		k := g.Key(12345)
		if len(k) != kind.Size() {
			t.Fatalf("%v key has %d bytes, want %d", kind, len(k), kind.Size())
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(YCSBString)
	g2 := NewGenerator(YCSBString)
	if !bytes.Equal(g1.Key(42), g2.Key(42)) {
		t.Fatal("generator not deterministic")
	}
}

func TestYCSBStringFormat(t *testing.T) {
	g := NewGenerator(YCSBString)
	k := g.Key(7)
	if !bytes.HasPrefix(k, []byte("user")) {
		t.Fatalf("YCSB key %q missing user prefix", k)
	}
	for _, c := range k[4:] {
		if c < '0' || c > '9' {
			t.Fatalf("YCSB key %q has non-digit payload", k)
		}
	}
}

// Property: distinct identifiers produce distinct keys for both kinds.
func TestQuickDistinctKeys(t *testing.T) {
	ri := NewGenerator(RandInt)
	ys := NewGenerator(YCSBString)
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return !bytes.Equal(ri.Key(a), ri.Key(b)) && !bytes.Equal(ys.Key(a), ys.Key(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	g := NewGenerator(RandInt)
	buf := g.AppendKey([]byte("pfx"), 9)
	if !bytes.Equal(buf[:3], []byte("pfx")) || !bytes.Equal(buf[3:], g.Key(9)) {
		t.Fatalf("AppendKey mismatch: %q", buf)
	}
}

func TestUint64MatchesMix(t *testing.T) {
	g := NewGenerator(RandInt)
	if g.Uint64(5) != Mix64(5) {
		t.Fatal("Uint64 should be Mix64")
	}
}

func TestKindString(t *testing.T) {
	if RandInt.String() != "randint" || YCSBString.String() != "string" {
		t.Fatal("Kind.String mismatch")
	}
}
