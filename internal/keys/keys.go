// Package keys provides the key encodings used throughout the evaluation.
//
// The paper tests two key types (§7): "randint" — 8-byte uniformly random
// integer keys — and "string" — 24-byte YCSB string keys. Ordered indexes
// consume keys as byte strings whose lexicographic order must match the
// logical key order, so integer keys are encoded big-endian.
package keys

import (
	"encoding/binary"
	"fmt"
)

// Kind selects a key encoding.
type Kind int

const (
	// RandInt is the paper's 8-byte random integer key type.
	RandInt Kind = iota
	// YCSBString is the paper's 24-byte YCSB string key type.
	YCSBString
)

func (k Kind) String() string {
	switch k {
	case RandInt:
		return "randint"
	case YCSBString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Size returns the encoded key length in bytes.
func (k Kind) Size() int {
	switch k {
	case RandInt:
		return 8
	case YCSBString:
		return 24
	default:
		panic("keys: unknown kind")
	}
}

// EncodeUint64 writes v big-endian into an 8-byte slice, preserving
// numeric order under lexicographic comparison.
func EncodeUint64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// AppendUint64 appends the big-endian encoding of v to dst.
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint64 reads a big-endian 8-byte key.
func DecodeUint64(b []byte) uint64 {
	return binary.BigEndian.Uint64(b)
}

// Mix64 is the SplitMix64 finaliser: a bijection on uint64 used to map
// dense key identifiers onto uniformly distributed key values. Because it
// is a bijection, distinct identifiers never collide.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Generator maps dense key identifiers (0, 1, 2, ...) to encoded keys of a
// fixed Kind. The mapping is deterministic and collision-free so that
// load/run phases across threads agree on the key universe.
type Generator struct {
	kind Kind
}

// NewGenerator returns a generator for the given key kind.
func NewGenerator(kind Kind) *Generator { return &Generator{kind: kind} }

// Kind returns the key kind.
func (g *Generator) Kind() Kind { return g.kind }

// Key returns the encoded key for identifier id.
func (g *Generator) Key(id uint64) []byte {
	return g.AppendKey(nil, id)
}

// AppendKey appends the encoded key for id to dst and returns the result.
func (g *Generator) AppendKey(dst []byte, id uint64) []byte {
	v := Mix64(id)
	switch g.kind {
	case RandInt:
		return AppendUint64(dst, v)
	case YCSBString:
		// YCSB keys look like "user<zero-padded number>"; 4 + 20 digits
		// gives the paper's 24-byte keys.
		dst = append(dst, 'u', 's', 'e', 'r')
		var digits [20]byte
		x := v
		for i := 19; i >= 0; i-- {
			digits[i] = byte('0' + x%10)
			x /= 10
		}
		return append(dst, digits[:]...)
	default:
		panic("keys: unknown kind")
	}
}

// Uint64 returns the 64-bit key value for identifier id (for unordered
// indexes, which the paper evaluates with integer keys only).
func (g *Generator) Uint64(id uint64) uint64 { return Mix64(id) }
