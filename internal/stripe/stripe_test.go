package stripe

import (
	"sort"
	"sync"
	"testing"
)

func TestNumShardsSane(t *testing.T) {
	n := NumShards()
	if n < 8 || n > 128 {
		t.Fatalf("NumShards() = %d, want within [8, 128]", n)
	}
	if n&(n-1) != 0 {
		t.Fatalf("NumShards() = %d, want a power of two", n)
	}
}

func TestKeyStableWithinFrame(t *testing.T) {
	// Two calls from the same frame see the same stack region, so the
	// key is deterministic for a goroutine at a given depth.
	if k1, k2 := Key(), Key(); k1 != k2 {
		t.Fatalf("Key() unstable within one frame: %d then %d", k1, k2)
	}
}

func TestKeySpreadsAcrossGoroutines(t *testing.T) {
	// Goroutine stacks are disjoint, so a batch of goroutines must not
	// all collapse onto a single key.
	const n = 64
	keys := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys[i] = Key()
		}()
	}
	wg.Wait()
	distinct := make(map[uint64]bool, n)
	for _, k := range keys {
		distinct[k] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("64 goroutines produced %d distinct keys", len(distinct))
	}
}

// The headline exactness property: the striped aggregate equals the
// serial total, no matter how adds interleave across goroutines.
func TestCounterConcurrentAddExact(t *testing.T) {
	c := NewCounter()
	const goroutines, per = 16, 20_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("Load() = %d, want %d", got, goroutines*per)
	}
}

func TestCounterVariableDeltasExact(t *testing.T) {
	c := NewCounter()
	const goroutines, per = 8, 5_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= per; i++ {
				c.Add(i)
			}
		}()
	}
	wg.Wait()
	want := uint64(goroutines) * (per * (per + 1) / 2)
	if got := c.Load(); got != want {
		t.Fatalf("Load() = %d, want %d", got, want)
	}
}

func TestCounterAddKeySpreadsByKey(t *testing.T) {
	c := NewCounter()
	// Distinct keys modulo the stripe width must land in distinct cells;
	// the aggregate is still exact.
	for k := uint64(0); k < uint64(NumShards()); k++ {
		c.AddKey(k, k+1)
	}
	var want uint64
	for k := uint64(0); k < uint64(NumShards()); k++ {
		want += k + 1
	}
	if got := c.Load(); got != want {
		t.Fatalf("Load() = %d, want %d", got, want)
	}
	occupied := 0
	for i := range c.cells {
		if c.cells[i].n.Load() != 0 {
			occupied++
		}
	}
	if occupied != NumShards() {
		t.Fatalf("distinct keys occupied %d cells, want %d", occupied, NumShards())
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter()
	for k := uint64(0); k < 100; k++ {
		c.AddKey(k, 7)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("Load() after Reset = %d, want 0", got)
	}
	c.Add(3)
	if got := c.Load(); got != 3 {
		t.Fatalf("Load() after Reset+Add = %d, want 3", got)
	}
}

// interval is one allocation's [base, base+lines) range.
type interval struct{ base, end uint64 }

func checkDisjoint(t *testing.T, ivs []interval, floor uint64) {
	t.Helper()
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].base < ivs[j].base })
	for i, iv := range ivs {
		if iv.base < floor {
			t.Fatalf("allocation %d at base %d below floor %d", i, iv.base, floor)
		}
		if i > 0 && ivs[i-1].end > iv.base {
			t.Fatalf("allocations overlap: [%d,%d) and [%d,%d)",
				ivs[i-1].base, ivs[i-1].end, iv.base, iv.end)
		}
	}
}

// Allocations from concurrent goroutines must never overlap, including
// the chunk-refill and oversized-allocation paths. Run under -race in CI.
func TestAllocatorConcurrentNonOverlap(t *testing.T) {
	a := NewAllocator(1, 64) // small chunks force frequent refills
	const goroutines, per = 8, 4_000
	results := make([][]interval, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ivs := make([]interval, 0, per)
			for i := 0; i < per; i++ {
				lines := uint64(1 + (g+i)%9)
				if i%97 == 0 {
					lines = 100 // oversized: exceeds the 64-line chunk
				}
				base := a.Alloc(lines)
				ivs = append(ivs, interval{base, base + lines})
			}
			results[g] = ivs
		}()
	}
	wg.Wait()
	var all []interval
	for _, ivs := range results {
		all = append(all, ivs...)
	}
	checkDisjoint(t, all, 1)
}

func TestAllocatorStartAndReserved(t *testing.T) {
	a := NewAllocator(10, 16)
	base := a.Alloc(4)
	if base < 10 {
		t.Fatalf("Alloc base %d below start 10", base)
	}
	if r := a.Reserved(); r != 16 {
		t.Fatalf("Reserved() = %d, want one 16-line chunk", r)
	}
	// An oversized allocation bypasses chunking and reserves exactly its
	// own size.
	a.Alloc(1000)
	if r := a.Reserved(); r != 16+1000 {
		t.Fatalf("Reserved() = %d, want %d", r, 16+1000)
	}
}

func TestAllocatorSerialBumpWithinChunk(t *testing.T) {
	a := NewAllocator(1, DefaultChunkLines)
	b1 := a.AllocKey(5, 2)
	b2 := a.AllocKey(5, 3)
	if b2 != b1+2 {
		t.Fatalf("same-shard allocations not contiguous: %d then %d", b1, b2)
	}
}

func TestAllocatorDefaultChunk(t *testing.T) {
	a := NewAllocator(0, 0)
	a.Alloc(1)
	if r := a.Reserved(); r != DefaultChunkLines {
		t.Fatalf("Reserved() = %d, want DefaultChunkLines %d", r, DefaultChunkLines)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() != uint64(b.N) {
		b.Fatal("lost adds")
	}
}

func BenchmarkAllocatorAlloc(b *testing.B) {
	a := NewAllocator(1, DefaultChunkLines)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			a.Alloc(1)
		}
	})
}

// TestAllocatorFreeListReuse: a freed span is handed back out on the
// next refill of the same shard instead of advancing the global cursor.
func TestAllocatorFreeListReuse(t *testing.T) {
	a := NewAllocator(1, 8)
	const k = 0
	first := a.AllocKey(k, 4) // window [1,9), cur 5
	if first != 1 {
		t.Fatalf("first alloc at %d, want 1", first)
	}
	a.FreeKey(k, first, 4)
	if got := a.AllocKey(k, 4); got != 5 {
		t.Fatalf("second alloc at %d, want bump to 5", got) // window still has room
	}
	// Window exhausted; the refill must pick the freed span, not a new
	// chunk from the global cursor.
	if got := a.AllocKey(k, 4); got != first {
		t.Fatalf("post-refill alloc at %d, want recycled %d", got, first)
	}
	if r := a.Reserved(); r != 8 {
		t.Fatalf("Reserved = %d, want 8 (no new chunk)", r)
	}
}

// TestAllocatorRefillTailRecycled: the unused tail of an exhausted
// window lands on the free list and serves later small requests.
func TestAllocatorRefillTailRecycled(t *testing.T) {
	a := NewAllocator(1, 8)
	const k = 0
	if got := a.AllocKey(k, 5); got != 1 {
		t.Fatalf("alloc 5 at %d, want 1", got)
	}
	// Refill abandons tail [6,9): 3 lines.
	if got := a.AllocKey(k, 5); got != 9 {
		t.Fatalf("alloc 5 at %d, want fresh chunk 9", got)
	}
	if got := a.AllocKey(k, 3); got != 14 {
		t.Fatalf("alloc 3 at %d, want bump to 14", got)
	}
	// Window exhausted; the 3-line request fits the recycled tail.
	if got := a.AllocKey(k, 3); got != 6 {
		t.Fatalf("alloc 3 at %d, want recycled tail 6", got)
	}
	if r := a.Reserved(); r != 16 {
		t.Fatalf("Reserved = %d, want 16", r)
	}
}

// TestAllocatorFreeNeverOverlaps: interleaved alloc/free churn on one
// shard never hands out overlapping live ranges.
func TestAllocatorFreeNeverOverlaps(t *testing.T) {
	a := NewAllocator(1, 16)
	const k = 0
	live := map[uint64]uint64{} // base -> lines
	rng := uint64(12345)
	for i := 0; i < 20_000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		lines := rng%7 + 1
		base := a.AllocKey(k, lines)
		for b, n := range live {
			if base < b+n && b < base+lines {
				t.Fatalf("alloc [%d,%d) overlaps live [%d,%d)", base, base+lines, b, b+n)
			}
		}
		live[base] = lines
		if rng%3 == 0 {
			for b, n := range live {
				a.FreeKey(k, b, n)
				delete(live, b)
				break
			}
		}
	}
}

// TestAllocatorReset: Reset reclaims the whole address space, and the
// allocator then replays fresh-allocator behaviour exactly.
func TestAllocatorReset(t *testing.T) {
	a := NewAllocator(1, 8)
	var before []uint64
	for i := 0; i < 10; i++ {
		before = append(before, a.AllocKey(uint64(i), 3))
	}
	if a.Reserved() == 0 {
		t.Fatal("Reserved should be non-zero after allocations")
	}
	a.Reset()
	if r := a.Reserved(); r != 0 {
		t.Fatalf("Reserved = %d after Reset, want 0", r)
	}
	var after []uint64
	for i := 0; i < 10; i++ {
		after = append(after, a.AllocKey(uint64(i), 3))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("alloc %d: %d after Reset, want %d (fresh-allocator replay)", i, after[i], before[i])
		}
	}
}
