// Package stripe provides contention-free building blocks for the
// simulated-PM instrumentation layer: a cache-line-padded striped counter
// and a sharded bump allocator for abstract line addresses.
//
// Every operation of every converted index routes through pmem.Heap, so
// any shared cache line inside the heap is ping-ponged between all
// benchmark threads and caps the throughput of *every* index — the
// harness, not the index, becomes what the multi-thread figures measure
// (the measurement-overhead pitfall called out by "Evaluating Persistent
// Memory Range Indexes: Part Two"). The types here keep per-thread
// bookkeeping on private cache lines:
//
//   - Counter spreads atomic adds over padded cells selected by a cheap
//     per-goroutine shard key; Load sums the cells, so aggregate totals
//     are exact even though increments never contend.
//   - Allocator hands out line-address ranges from per-shard chunks
//     reserved in bulk from a single global cursor, so the common
//     allocation touches only the shard's own cache line.
//
// Shard keys come from Key, which derives a per-goroutine value from the
// goroutine's own stack address in a few nanoseconds — cheap enough to
// fetch on every counter add without eating the savings striping buys.
package stripe

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// padBytes is the stripe padding granularity. 128 bytes covers the
// adjacent-line spatial prefetcher pairing on x86, which otherwise drags
// a neighbour's line into the ping-pong.
const padBytes = 128

// numShards is the stripe width: a power of two sized to the machine at
// init. The floor of 8 keeps striping structurally meaningful (and
// testable) even on single-CPU containers; the cap bounds Load/Reset
// iteration cost.
var numShards = func() int {
	p := 8
	for p < runtime.GOMAXPROCS(0) {
		p <<= 1
	}
	if p > 128 {
		p = 128
	}
	return p
}()

// NumShards reports the stripe width used by Counter and Allocator.
func NumShards() int { return numShards }

// Key returns a per-goroutine shard key derived from the address of a
// stack variable: goroutine stacks are disjoint memory regions, so after
// discarding intra-stack frame offsets (Go's minimum stack is 2 KB) and
// mixing, distinct goroutines land on distinct keys with high
// probability. The key is not perfectly stable — stack growth moves it —
// and two goroutines may collide on a shard; neither affects
// correctness, only which padded cell absorbs the add. This costs a few
// nanoseconds, versus ~15 ns for a sync.Pool token and an unavailable
// (runtime-private) P id.
func Key() uint64 {
	var b byte
	a := uint64(uintptr(unsafe.Pointer(&b)))
	a >>= 11                // drop intra-stack offsets (2 KB minimum stack)
	a *= 0x9E3779B97F4A7C15 // spread neighbouring stacks across shards
	return a >> 32
}

// cell is one padded counter stripe. The padding keeps adjacent cells on
// distinct (prefetch-paired) cache lines.
type cell struct {
	n atomic.Uint64
	_ [padBytes - 8]byte
}

// Counter is a striped uint64 counter. Adds from different shards touch
// different cache lines; Load sums all cells, so the aggregate equals
// the serial total exactly. The zero value is not usable; call
// NewCounter.
type Counter struct {
	cells []cell
	mask  uint64
}

// NewCounter returns a counter with NumShards stripes.
func NewCounter() *Counter {
	return &Counter{cells: make([]cell, numShards), mask: uint64(numShards - 1)}
}

// Add adds d to the calling goroutine's stripe.
func (c *Counter) Add(d uint64) { c.cells[Key()&c.mask].n.Add(d) }

// AddKey is Add with a shard key the caller already fetched via Key —
// hot paths that bump several counters fetch the key once.
func (c *Counter) AddKey(k, d uint64) { c.cells[k&c.mask].n.Add(d) }

// Load returns the exact aggregate of all stripes. Concurrent Adds that
// race with Load may or may not be included, as with a plain atomic.
func (c *Counter) Load() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// Reset zeroes every stripe. For an exact zero the caller must quiesce
// writers first (the harness resets only between measured phases).
func (c *Counter) Reset() {
	for i := range c.cells {
		c.cells[i].n.Store(0)
	}
}

// DefaultChunkLines is the number of line addresses a shard reserves
// from the global cursor per refill. 4096 lines (256 KB of simulated
// PM) makes global-cursor traffic ~4096× rarer than allocations.
const DefaultChunkLines = 4096

// span is a recycled range of line addresses [cur, end).
type span struct {
	cur, end uint64
}

// maxFreeSpans bounds each shard's free list; spans released beyond it
// are dropped (leaked, as every span was before free lists existed), so
// a pathological free pattern cannot grow the list without bound.
const maxFreeSpans = 64

// allocShard is one shard's private allocation window [cur, end) plus
// its free list of recycled spans. The mutex is effectively uncontended
// (shards track Ps); it exists so that two goroutines that happen to
// share a shard key stay correct.
type allocShard struct {
	mu       sync.Mutex
	cur, end uint64
	free     []span
	_        [padBytes]byte
}

// Allocator is a striped bump allocator over abstract line addresses.
// Each shard bump-allocates from a privately reserved chunk and only
// touches the shared global cursor on refill, so concurrent allocations
// from different shards never contend. Live allocations never overlap.
//
// Each shard also keeps a free list of recycled spans: refills recycle
// the abandoned tail of the previous window and prefer a recycled span
// over advancing the global cursor, and Free returns retired ranges for
// reuse, so steady-state churn stops growing the address space. Reset
// reclaims everything at once for callers (heap pools) that retire a
// whole allocation generation.
type Allocator struct {
	global atomic.Uint64
	start  uint64
	chunk  uint64
	shards []allocShard
	mask   uint64
}

// NewAllocator returns an allocator whose addresses start at start.
// chunkLines is the per-shard reservation size; values < 1 select
// DefaultChunkLines.
func NewAllocator(start uint64, chunkLines int) *Allocator {
	if chunkLines < 1 {
		chunkLines = DefaultChunkLines
	}
	a := &Allocator{
		start:  start,
		chunk:  uint64(chunkLines),
		shards: make([]allocShard, numShards),
		mask:   uint64(numShards - 1),
	}
	a.global.Store(start)
	return a
}

// Alloc reserves lines consecutive line addresses and returns the first.
func (a *Allocator) Alloc(lines uint64) uint64 { return a.AllocKey(Key(), lines) }

// AllocKey is Alloc with a shard key the caller already fetched via Key.
func (a *Allocator) AllocKey(k, lines uint64) uint64 {
	if lines >= a.chunk {
		// Oversized request: take it straight from the global cursor
		// rather than burning a whole chunk's locality on it.
		return a.global.Add(lines) - lines
	}
	s := &a.shards[k&a.mask]
	s.mu.Lock()
	if s.cur+lines > s.end {
		a.refill(s, lines)
	}
	base := s.cur
	s.cur += lines
	s.mu.Unlock()
	return base
}

// refill installs a window with room for lines: a recycled span from
// the shard free list when one is large enough, else a fresh chunk from
// the global cursor. The abandoned tail of the old window goes on the
// free list instead of leaking; it cannot satisfy this request (that is
// why a refill is needed), so it is never immediately popped back.
func (a *Allocator) refill(s *allocShard, lines uint64) {
	if s.end > s.cur {
		s.push(span{s.cur, s.end})
	}
	for i := len(s.free) - 1; i >= 0; i-- {
		if f := s.free[i]; f.end-f.cur >= lines {
			s.free = append(s.free[:i], s.free[i+1:]...)
			s.cur, s.end = f.cur, f.end
			return
		}
	}
	s.cur = a.global.Add(a.chunk) - a.chunk
	s.end = s.cur + a.chunk
}

func (s *allocShard) push(f span) {
	if len(s.free) < maxFreeSpans {
		s.free = append(s.free, f)
	}
}

// Free recycles lines consecutive line addresses starting at base onto
// the calling goroutine's shard free list, where future allocations of
// any shardable size reuse them. The caller must guarantee that no live
// object still maps onto the range.
func (a *Allocator) Free(base, lines uint64) { a.FreeKey(Key(), base, lines) }

// FreeKey is Free with a shard key the caller already fetched via Key.
func (a *Allocator) FreeKey(k, base, lines uint64) {
	if lines == 0 {
		return
	}
	s := &a.shards[k&a.mask]
	s.mu.Lock()
	s.push(span{base, base + lines})
	s.mu.Unlock()
}

// Reset returns the allocator to its initial state: the global cursor
// back at start, every shard window and free list empty, so the whole
// address space is handed out again from scratch. It must only run when
// no allocation is live and no Alloc/Free is concurrent — e.g. between
// heap generations, from pmem's allocator pool.
func (a *Allocator) Reset() {
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		s.cur, s.end = 0, 0
		s.free = s.free[:0]
		s.mu.Unlock()
	}
	a.global.Store(a.start)
}

// Reserved returns the number of line addresses reserved from the global
// cursor so far: an upper bound on (and, modulo unconsumed chunk tails,
// a proxy for) the allocated footprint.
func (a *Allocator) Reserved() uint64 { return a.global.Load() - a.start }
