package shard

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// memIndex is a deterministic in-memory core.OrderedIndex for pinning
// the streaming scan engine's contract edge cases. Like the real
// indexes, its Scan reuses one callback key buffer between entries, so
// any cursor code that retains a callback key without copying fails
// loudly. It counts Scan calls so tests can assert how many batches a
// streaming scan actually fetched.
type memIndex struct {
	mu    sync.Mutex
	keys  [][]byte
	vals  []uint64
	scans int
}

func (m *memIndex) find(key []byte) (int, bool) {
	i := sort.Search(len(m.keys), func(i int) bool { return bytes.Compare(m.keys[i], key) >= 0 })
	return i, i < len(m.keys) && bytes.Equal(m.keys[i], key)
}

func (m *memIndex) Insert(key []byte, value uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := append([]byte(nil), key...)
	if i, ok := m.find(k); ok {
		m.vals[i] = value
	} else {
		m.keys = append(m.keys[:i], append([][]byte{k}, m.keys[i:]...)...)
		m.vals = append(m.vals[:i], append([]uint64{value}, m.vals[i:]...)...)
	}
	return nil
}

func (m *memIndex) Update(key []byte, value uint64) error { return m.Insert(key, value) }

func (m *memIndex) Lookup(key []byte) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i, ok := m.find(key); ok {
		return m.vals[i], true
	}
	return 0, false
}

func (m *memIndex) Delete(key []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, ok := m.find(key)
	if !ok {
		return false, nil
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	return true, nil
}

func (m *memIndex) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scans++
	visited := 0
	buf := make([]byte, 0, 32)
	for i := range m.keys {
		if bytes.Compare(m.keys[i], start) < 0 {
			continue
		}
		buf = append(buf[:0], m.keys[i]...)
		if !fn(buf, m.vals[i]) {
			return visited
		}
		visited++
		if count > 0 && visited >= count {
			return visited
		}
	}
	return visited
}

func (m *memIndex) Recover() error { return nil }

func (m *memIndex) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.keys)
}

// memFactory ignores the heap and returns a fresh memIndex.
func memFactory(*pmem.Heap) (core.OrderedIndex, error) { return &memIndex{}, nil }

// entry is a collected scan result.
type entry struct {
	key []byte
	val uint64
}

// collect gathers a scan's full callback sequence, copying keys.
func collect(idx core.OrderedIndex, start []byte, count int) []entry {
	var out []entry
	idx.Scan(start, count, func(k []byte, v uint64) bool {
		out = append(out, entry{append([]byte(nil), k...), v})
		return true
	})
	return out
}

func entriesEqual(t *testing.T, label string, want, got []entry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(want[i].key, got[i].key) || want[i].val != got[i].val {
			t.Fatalf("%s: entry %d = (%x,%d), want (%x,%d)",
				label, i, got[i].key, got[i].val, want[i].key, want[i].val)
		}
	}
}

// TestScanStreamingParity: for both partitioners, several shard counts
// and deliberately tiny batch sizes (to force many resume boundaries),
// the streamed sharded scan visits exactly the single-index sequence —
// same keys, same values, same order, same return value — for bounded,
// unbounded, and mid-key starts, over real converted indexes.
func TestScanStreamingParity(t *testing.T) {
	const n = 600
	for _, idxName := range []string{"P-ART", "FAST & FAIR"} {
		for _, part := range []Partitioner{HashPartition{}, RangePartition{}} {
			for _, h := range []int{2, 5} {
				for _, batch := range []int{1, 7} {
					t.Run(fmt.Sprintf("%s/%s/h=%d/b=%d", idxName, part.Name(), h, batch), func(t *testing.T) {
						gen := keys.NewGenerator(keys.RandInt)
						single, err := NewOrdered(idxName, keys.RandInt, Options{Shards: 1})
						if err != nil {
							t.Fatal(err)
						}
						sharded, err := NewOrdered(idxName, keys.RandInt, Options{
							Shards: h, Partitioner: part, ScanBatch: batch,
						})
						if err != nil {
							t.Fatal(err)
						}
						for id := uint64(0); id < n; id++ {
							k := gen.Key(id)
							if err := single.Insert(k, id); err != nil {
								t.Fatal(err)
							}
							if err := sharded.Insert(k, id); err != nil {
								t.Fatal(err)
							}
						}
						// Starts: nil, empty, a real mid-range key, and a
						// successor-shaped 9-byte key. (No short non-empty
						// starts: FAST & FAIR's randint probe decode
						// requires >= 8 bytes or empty.)
						starts := [][]byte{nil, {}, gen.Key(n / 3), append(gen.Key(n/2), 0)}
						for si, start := range starts {
							for _, count := range []int{0, 1, 29, n + 10} {
								label := fmt.Sprintf("start=%d/count=%d", si, count)
								want := collect(single, start, count)
								got := collect(sharded, start, count)
								entriesEqual(t, label, want, got)
								if w, g := single.Scan(start, count, func([]byte, uint64) bool { return true }),
									sharded.Scan(start, count, func([]byte, uint64) bool { return true }); w != g {
									t.Fatalf("%s: visited %d, want %d", label, g, w)
								}
							}
						}
						// Early stop mid-scan: the visited count must
						// exclude the key fn rejected, exactly as the
						// single index counts it.
						for _, stop := range []int{0, 3, 13} {
							visit := func(m *Ordered) int {
								seen := 0
								return m.Scan(nil, 0, func([]byte, uint64) bool {
									if seen == stop {
										return false
									}
									seen++
									return true
								})
							}
							if w, g := visit(single), visit(sharded); w != g || w != stop {
								t.Fatalf("early stop at %d: visited %d, want %d", stop, g, w)
							}
						}
					})
				}
			}
		}
	}
}

// TestScanParityStringKeys repeats the parity check with the 24-byte
// YCSB string keys, whose shared "user" prefix exercises long common
// prefixes across batch boundaries.
func TestScanParityStringKeys(t *testing.T) {
	const n = 400
	gen := keys.NewGenerator(keys.YCSBString)
	single, err := NewOrdered("P-Masstree", keys.YCSBString, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewOrdered("P-Masstree", keys.YCSBString, Options{Shards: 4, ScanBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < n; id++ {
		k := gen.Key(id)
		if err := single.Insert(k, id); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Insert(k, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, count := range []int{0, 10, 333} {
		entriesEqual(t, fmt.Sprintf("count=%d", count),
			collect(single, nil, count), collect(sharded, nil, count))
	}
	start := gen.Key(123)
	entriesEqual(t, "mid-key start", collect(single, start, 50), collect(sharded, start, 50))
}

// TestCursorSuccessorPrefixKeys pins the exclusive-successor resume
// computation on the nastiest key shapes: keys that are prefixes of
// their successors ("ab" -> "ab\x00"), runs of zero-byte extensions,
// and batch size 1 so every single entry crosses a resume boundary. Any
// off-by-one (resuming at lastKey, or at lastKey with the final byte
// incremented) would duplicate or skip the "ab\x00" family.
func TestCursorSuccessorPrefixKeys(t *testing.T) {
	keySet := [][]byte{
		[]byte("a"), []byte("ab"), []byte("ab\x00"), []byte("ab\x00\x00"),
		[]byte("ab\x01"), []byte("abc"), []byte("ac"), []byte("b"), []byte("b\x00"),
		{0x00}, {0x00, 0x00}, {0xff}, {0xff, 0x00},
	}
	single := &memIndex{}
	for i, k := range keySet {
		if err := single.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []int{1, 2, 3} {
		for _, batch := range []int{1, 2, len(keySet) + 1} {
			sharded, err := NewOrderedWith(memFactory, Options{Shards: h, ScanBatch: batch})
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keySet {
				if err := sharded.Insert(k, uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			for _, start := range [][]byte{nil, []byte("ab"), []byte("ab\x00"), []byte("z")} {
				label := fmt.Sprintf("h=%d/b=%d/start=%q", h, batch, start)
				entriesEqual(t, label, collect(single, start, 0), collect(sharded, start, 0))
			}
			// Pull API over the same keys.
			cur := sharded.Cursor(nil)
			var got []entry
			for {
				k, v, ok := cur.Next()
				if !ok {
					break
				}
				got = append(got, entry{append([]byte(nil), k...), v})
			}
			entriesEqual(t, fmt.Sprintf("cursor h=%d/b=%d", h, batch), collect(single, nil, 0), got)
		}
	}
}

// TestCursorSuccessorPrefixKeysRealIndex repeats the prefix-successor
// check against a real byte-string index (P-BwTree) rather than the
// test fake.
func TestCursorSuccessorPrefixKeysRealIndex(t *testing.T) {
	factory := func(h *pmem.Heap) (core.OrderedIndex, error) {
		return core.NewOrdered("P-BwTree", h, keys.YCSBString)
	}
	single, err := NewOrderedWith(factory, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewOrderedWith(factory, Options{Shards: 3, ScanBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	keySet := [][]byte{
		[]byte("ab"), []byte("ab\x00"), []byte("ab\x00\x00"), []byte("ab\x01"),
		[]byte("abc"), []byte("b"), []byte("b\x00"),
	}
	for i, k := range keySet {
		if err := single.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	entriesEqual(t, "bwtree prefix keys", collect(single, nil, 0), collect(sharded, nil, 0))
}

// TestScanBatchBoundaryOnCount: when the requested count lands exactly
// on a batch boundary, the merge must not fetch the next batch it will
// never use. The memIndex scan counters make over-fetch visible: a
// bounded merge scan clamps its batch to count, so each shard is
// consulted exactly once.
func TestScanBatchBoundaryOnCount(t *testing.T) {
	const h, batch = 3, 4
	sharded, err := NewOrderedWith(memFactory, Options{Shards: h, ScanBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < 120; id++ {
		if err := sharded.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	// count == batch: one Scan call per shard, no resume fetch.
	if got := sharded.Scan(nil, batch, func([]byte, uint64) bool { return true }); got != batch {
		t.Fatalf("visited %d, want %d", got, batch)
	}
	for i := 0; i < h; i++ {
		if n := sharded.Shard(i).(*memIndex).scans; n != 1 {
			t.Fatalf("shard %d scanned %d times, want exactly 1", i, n)
		}
	}
	// fn stopping mid-batch must also stop batch fetching: with count
	// unbounded but fn rejecting the 3rd key, no shard needs a second
	// batch (batch entries are already buffered per shard).
	seen := 0
	sharded.Scan(nil, 0, func([]byte, uint64) bool {
		if seen == 2 {
			return false
		}
		seen++
		return true
	})
	for i := 0; i < h; i++ {
		if n := sharded.Shard(i).(*memIndex).scans; n != 2 {
			t.Fatalf("shard %d scanned %d times total, want 2", i, n)
		}
	}
}

// TestCursorMatchesScan: the pull API yields the same sequence as the
// callback API for both partitioners, from nil and mid-key starts, and
// the key handed out stays valid until the next Next call even across
// batch refills.
func TestCursorMatchesScan(t *testing.T) {
	const n = 800
	for _, part := range []Partitioner{HashPartition{}, RangePartition{}} {
		t.Run(part.Name(), func(t *testing.T) {
			gen := keys.NewGenerator(keys.RandInt)
			m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 4, Partitioner: part, ScanBatch: 5})
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(0); id < n; id++ {
				if err := m.Insert(gen.Key(id), id); err != nil {
					t.Fatal(err)
				}
			}
			for _, start := range [][]byte{nil, gen.Key(n / 4)} {
				want := collect(m, start, 0)
				cur := m.Cursor(start)
				for i := 0; ; i++ {
					k, v, ok := cur.Next()
					if !ok {
						if i != len(want) {
							t.Fatalf("cursor ended after %d entries, want %d", i, len(want))
						}
						break
					}
					if i >= len(want) {
						t.Fatalf("cursor yielded %d entries, want %d", i+1, len(want))
					}
					// Compare before calling Next again: the key is
					// documented valid only until the next call.
					if !bytes.Equal(k, want[i].key) || v != want[i].val {
						t.Fatalf("cursor entry %d = (%x,%d), want (%x,%d)", i, k, v, want[i].key, want[i].val)
					}
				}
			}
		})
	}
}

// TestNewCursorSingleIndex: NewCursor paginates a single ordered index
// without any front-end, resuming across batches.
func TestNewCursorSingleIndex(t *testing.T) {
	heap := pmem.NewFast()
	idx, err := core.NewOrdered("FAST & FAIR", heap, keys.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < 300; id++ {
		if err := idx.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	want := collect(idx, nil, 0)
	cur := NewCursor(idx, nil, 7)
	var got []entry
	for {
		k, v, ok := cur.Next()
		if !ok {
			break
		}
		got = append(got, entry{append([]byte(nil), k...), v})
	}
	entriesEqual(t, "single-index cursor", want, got)
	// An exhausted cursor stays exhausted.
	if _, _, ok := cur.Next(); ok {
		t.Fatal("exhausted cursor returned another entry")
	}
}

// TestScanEmptyAndMissing: scans over empty front-ends and starts past
// the last key return zero without fetching forever.
func TestScanEmptyAndMissing(t *testing.T) {
	m, err := NewOrderedWith(memFactory, Options{Shards: 3, ScanBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Scan(nil, 0, func([]byte, uint64) bool { return true }); got != 0 {
		t.Fatalf("empty scan visited %d", got)
	}
	if k, _, ok := m.Cursor(nil).Next(); ok {
		t.Fatalf("empty cursor yielded %x", k)
	}
	if err := m.Insert([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Scan([]byte("z"), 0, func([]byte, uint64) bool { return true }); got != 0 {
		t.Fatalf("past-the-end scan visited %d", got)
	}
}

// TestAdaptiveBatchParityAndSchedule: cursors warm up their batch size
// geometrically (adaptiveSeed doubling to the cap), which must change
// only how many Scan calls a long scan makes — never which entries come
// back. With 1000 keys in one shard and the default cap of 256, the
// fill sizes are 32, 64, 128, 256, 256, 256, then a final short fill:
// 7 Scan calls, versus 32 for a fixed seed-sized batch.
func TestAdaptiveBatchParityAndSchedule(t *testing.T) {
	const n = 1_000
	sharded, err := NewOrderedWith(memFactory, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	want := make([]entry, 0, n)
	for id := uint64(0); id < n; id++ {
		k := gen.Key(id)
		if err := sharded.Insert(k, id); err != nil {
			t.Fatal(err)
		}
		want = append(want, entry{append([]byte(nil), k...), id})
	}
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i].key, want[j].key) < 0 })

	// Parity: the adaptive cursor yields exactly the full ordered set.
	cur, got := sharded.Cursor(nil), make([]entry, 0, n)
	for {
		k, v, ok := cur.Next()
		if !ok {
			break
		}
		got = append(got, entry{append([]byte(nil), k...), v})
	}
	entriesEqual(t, "adaptive cursor", want, got)

	// Schedule: 32+64+128+256+256+256 = 992 full fills + 1 short fill.
	if scans := sharded.Shard(0).(*memIndex).scans; scans != 7 {
		t.Fatalf("adaptive cursor made %d Scan calls over %d keys, want 7", scans, n)
	}

	// A short scan touches only seed-sized batches: 10 entries from a
	// fresh cursor must cost exactly one 32-entry fill.
	m2, err := NewOrderedWith(memFactory, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range want {
		if err := m2.Insert(e.key, e.val); err != nil {
			t.Fatal(err)
		}
	}
	cur2 := m2.Cursor(nil)
	for i := 0; i < 10; i++ {
		if _, _, ok := cur2.Next(); !ok {
			t.Fatalf("cursor exhausted at entry %d", i)
		}
	}
	if scans := m2.Shard(0).(*memIndex).scans; scans != 1 {
		t.Fatalf("10-entry read made %d Scan calls, want 1 seed-sized fill", scans)
	}
}
