package shard

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// flakyOrdered wraps an ordered index so a test can make its Recover
// fail on demand — the deterministic stand-in for "recovery rejected
// this shard's post-power-loss image".
type flakyOrdered struct {
	core.OrderedIndex
	fail *bool
}

var errRecoveryRejected = errors.New("recovery rejected image")

func (f flakyOrdered) Recover() error {
	if *f.fail {
		return errRecoveryRejected
	}
	return f.OrderedIndex.Recover()
}

// newFlakyOrdered builds a sharded P-ART front-end whose shard `target`
// can be made to fail recovery via the returned flag. Every shard heap
// runs in shadow mode so power cycles are available.
func newFlakyOrdered(t *testing.T, h, target int) (*Ordered, *bool) {
	t.Helper()
	fail := new(bool)
	built := 0
	m, err := NewOrderedWith(func(heap *pmem.Heap) (core.OrderedIndex, error) {
		idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
		if err != nil {
			return nil, err
		}
		i := built
		built++
		if i == target {
			return flakyOrdered{OrderedIndex: idx, fail: fail}, nil
		}
		return idx, nil
	}, Options{Shards: h, Heap: pmem.Options{Shadow: true}})
	if err != nil {
		t.Fatal(err)
	}
	return m, fail
}

// TestQuarantineGracefulDegradation is the tentpole end-to-end: crash
// one shard, power-cycle it under the torn policy, fail its recovery so
// it is quarantined — then drive full traffic through the rest. Ops
// routed to the quarantined shard return the typed error, scans and
// cursors skip its partition, Stats conserve exactly over shards, and
// after a successful RetryShard the shard rejoins with every
// acknowledged key intact.
func TestQuarantineGracefulDegradation(t *testing.T) {
	const (
		h      = 4
		target = 2
		loadN  = 2_000
	)
	m, fail := newFlakyOrdered(t, h, target)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)

	committed := make(map[uint64]uint64)
	for id := uint64(0); id < loadN; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		committed[id] = id
	}

	// Crash shard `target` mid-insert, then materialise its torn
	// post-power-loss image.
	m.Heap(target).SetInjector(crash.NewNth(10))
	crashed := false
	for id := uint64(loadN); id < loadN+10_000 && !crashed; id++ {
		if (HashPartition{}).Shard(gen.Key(id), h) != target {
			continue
		}
		err := m.Insert(gen.Key(id), id)
		switch {
		case crash.IsCrash(err):
			crashed = true
		case err != nil:
			t.Fatal(err)
		default:
			committed[id] = id
		}
	}
	if !crashed {
		t.Fatal("injector never fired in target shard")
	}
	m.Heap(target).SetInjector(nil)
	m.PowerCycleShard(target, pmem.PolicyTorn, 1)

	// Recovery rejects the image: the sweep quarantines the shard and
	// reports the casualty, instead of taking the front-end down.
	*fail = true
	if err := m.RecoverShard(target); !errors.Is(err, errRecoveryRejected) {
		t.Fatalf("RecoverShard error = %v, want wrapped errRecoveryRejected", err)
	}
	if !m.Degraded() {
		t.Fatal("front-end not Degraded after failed recovery")
	}
	if q := m.Quarantined(); len(q) != 1 || q[0] != target {
		t.Fatalf("Quarantined() = %v, want [%d]", q, target)
	}
	if !errors.Is(m.QuarantineCause(target), errRecoveryRejected) {
		t.Fatalf("QuarantineCause = %v", m.QuarantineCause(target))
	}

	// Full traffic through the healthy shards; typed errors from the
	// quarantined one.
	healthyLen := m.Len()
	for id := uint64(50_000); id < 52_000; id++ {
		key := gen.Key(id)
		if (HashPartition{}).Shard(key, h) == target {
			err := m.Insert(key, id)
			if !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("insert to quarantined shard: err = %v, want ErrShardUnavailable", err)
			}
			var se *ShardUnavailableError
			if !errors.As(err, &se) || se.Shard != target {
				t.Fatalf("error %v does not carry shard number %d", err, target)
			}
			if err := m.Update(key, id); !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("update: err = %v", err)
			}
			if _, _, err := m.LookupChecked(key); !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("lookupChecked: err = %v", err)
			}
			if v, ok := m.Lookup(key); ok || v != 0 {
				t.Fatalf("lookup on quarantined shard = %d,%v, want absent", v, ok)
			}
			if _, err := m.Delete(key); !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("delete: err = %v", err)
			}
			continue
		}
		if err := m.Insert(key, id); err != nil {
			t.Fatalf("insert to healthy shard while %d quarantined: %v", target, err)
		}
		committed[id] = id
		if v, ok := m.Lookup(key); !ok || v != id {
			t.Fatalf("healthy-shard readback %d = %d,%v", id, v, ok)
		}
	}

	// Degraded scans and cursors: exactly the healthy shards' keys, in
	// order, with no error and no keys from the quarantined partition.
	wantScan := m.Len()
	if wantScan <= healthyLen {
		t.Fatalf("healthy Len did not grow under degradation: %d -> %d", healthyLen, wantScan)
	}
	seen := 0
	m.Scan(nil, 0, func(k []byte, v uint64) bool {
		if (HashPartition{}).Shard(k, h) == target {
			t.Fatalf("degraded scan returned a quarantined-shard key")
		}
		seen++
		return true
	})
	if seen != wantScan {
		t.Fatalf("degraded scan visited %d keys, want %d", seen, wantScan)
	}
	cur, curN := m.Cursor(nil), 0
	for {
		if _, _, ok := cur.Next(); !ok {
			break
		}
		curN++
	}
	if curN != wantScan {
		t.Fatalf("degraded cursor visited %d keys, want %d", curN, wantScan)
	}

	// Exact Stats conservation over shards: the aggregate is the
	// field-wise sum of per-shard snapshots even while one is down.
	if got, want := m.Stats(), sumStats(m.ShardStats()); got != want {
		t.Fatalf("Stats() = %+v, want exact sum %+v", got, want)
	}

	// Recovery heals: RetryShard re-runs recovery, the shard rejoins,
	// and every acknowledged key — including the quarantined shard's —
	// reads back.
	*fail = false
	if err := m.RetryShard(target); err != nil {
		t.Fatalf("RetryShard after cause cleared: %v", err)
	}
	if m.Degraded() || len(m.Quarantined()) != 0 {
		t.Fatal("still degraded after successful RetryShard")
	}
	for id, v := range committed {
		if got, ok := m.Lookup(gen.Key(id)); !ok || got != v {
			t.Fatalf("acknowledged key %d lost across torn cycle + quarantine: %d,%v", id, got, ok)
		}
	}
	if err := m.Insert(gen.Key(900_000), 900_000); err != nil {
		t.Fatalf("insert after rejoin: %v", err)
	}
}

// TestRetryShardBackoff drives the capped exponential backoff with an
// injected clock and a seeded jitter source: each failure's wait is
// drawn full-jitter from [0, ceiling] where the ceiling doubles up to
// RetryBackoffMax — the test mirrors the rng to pin the exact drawn
// window, asserts attempts inside it return the typed error without
// touching the shard, and that success resets everything.
func TestRetryShardBackoff(t *testing.T) {
	m, fail := newFlakyOrdered(t, 2, 1)
	defer m.Release()
	now := time.Unix(1_000_000, 0)
	m.now = func() time.Time { return now }
	const seed = 7
	m.jitter.rng = rand.New(rand.NewSource(seed))
	mirror := rand.New(rand.NewSource(seed))

	*fail = true
	m.Quarantine(1, errRecoveryRejected)

	// Thirteen failed attempts: ceilings double 50ms → 5s cap, and the
	// drawn wait is pinned to the seeded sequence and to [0, ceiling].
	ceiling := RetryBackoffBase
	for i := 0; i < 13; i++ {
		if err := m.RetryShard(1); !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("retry %d: %v", i, err)
		}
		if got, want := m.Recoveries()[1], uint64(i+1); got != want {
			t.Fatalf("recoveries after retry %d = %d, want %d", i, got, want)
		}
		want := time.Duration(mirror.Int63n(int64(ceiling) + 1))
		if want < 0 || want > ceiling {
			t.Fatalf("retry %d: drawn wait %v outside the jitter window [0, %v]", i, want, ceiling)
		}
		h := &m.health[1]
		h.mu.Lock()
		next := h.nextRetry
		h.mu.Unlock()
		if got := next.Sub(now); got != want {
			t.Fatalf("retry %d: jittered wait = %v, want %v (ceiling %v)", i, got, want, ceiling)
		}

		// Strictly inside the drawn window nothing touches the shard.
		if want > 0 {
			now = now.Add(want - time.Nanosecond)
			if err := m.RetryShard(1); !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("in-window retry %d: %v", i, err)
			}
			if got := m.Recoveries()[1]; got != uint64(i+1) {
				t.Fatalf("in-window retry %d ran a recovery (count %d)", i, got)
			}
			now = now.Add(time.Nanosecond)
		}

		ceiling *= 2
		if ceiling > RetryBackoffMax {
			ceiling = RetryBackoffMax
		}
	}
	// The ceiling is capped: the drawn wait can never exceed
	// RetryBackoffMax, so the clock never had to advance past it.

	*fail = false
	if err := m.RetryShard(1); err != nil {
		t.Fatalf("retry after cause cleared: %v", err)
	}
	if m.Degraded() {
		t.Fatal("still degraded after successful retry")
	}
	// Healthy-shard retry is a no-op.
	if err := m.RetryShard(1); err != nil {
		t.Fatalf("retry on healthy shard: %v", err)
	}
}

// TestRetryJitterSeeded: two front-ends with the same RetrySeed draw
// identical retry schedules; different seeds are allowed to differ —
// the injectable determinism the campaigns and tests rely on.
func TestRetryJitterSeeded(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		fail := new(bool)
		*fail = true
		m, err := NewOrderedWith(func(heap *pmem.Heap) (core.OrderedIndex, error) {
			idx, err := core.NewOrdered("P-ART", heap, keys.RandInt)
			if err != nil {
				return nil, err
			}
			return flakyOrdered{OrderedIndex: idx, fail: fail}, nil
		}, Options{Shards: 1, RetrySeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Release()
		now := time.Unix(1_000_000, 0)
		m.now = func() time.Time { return now }
		m.Quarantine(0, errRecoveryRejected)

		var waits []time.Duration
		for i := 0; i < 8; i++ {
			if err := m.RetryShard(0); !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("retry %d: %v", i, err)
			}
			h := &m.health[0]
			h.mu.Lock()
			waits = append(waits, h.nextRetry.Sub(now))
			h.mu.Unlock()
			now = now.Add(RetryBackoffMax) // always clear the window
		}
		return waits
	}

	a, b, c := draw(11), draw(11), draw(12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

// TestHashQuarantine mirrors the typed-error contract on the unordered
// front-end.
func TestHashQuarantine(t *testing.T) {
	m, err := NewHash("P-CLHT", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	for id := uint64(1); id < 1_000; id++ { // key 0 is reserved in CLHT
		if err := m.Insert(id, id); err != nil {
			t.Fatal(err)
		}
	}
	const target = 3
	m.Quarantine(target, errRecoveryRejected)

	served, blocked := 0, 0
	for id := uint64(1_000); id < 2_000; id++ {
		err := m.Insert(id, id)
		if (HashPartition64{}).Shard(id, 4) == target {
			if !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("insert %d: err = %v, want ErrShardUnavailable", id, err)
			}
			if _, _, err := m.LookupChecked(id); !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("lookupChecked %d: %v", id, err)
			}
			blocked++
			continue
		}
		if err != nil {
			t.Fatalf("healthy-shard insert %d: %v", id, err)
		}
		if v, ok := m.Lookup(id); !ok || v != id {
			t.Fatalf("healthy-shard readback %d = %d,%v", id, v, ok)
		}
		served++
	}
	if served == 0 || blocked == 0 {
		t.Fatalf("test did not exercise both paths (served=%d blocked=%d)", served, blocked)
	}

	// RecoverShard success ends the quarantine.
	if err := m.RecoverShard(target); err != nil {
		t.Fatalf("RecoverShard: %v", err)
	}
	if m.Degraded() {
		t.Fatal("still degraded after successful RecoverShard")
	}
	if err := m.Insert(42_000_000, 1); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}
