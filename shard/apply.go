// Single-shard group-commit entry points for external committers: the
// async pipeline (internal/commit) routes each op itself and drains
// per-shard queues, so it needs to commit a pre-routed batch on one
// shard without re-partitioning, plus the routing function to do the
// pre-routing. The quarantine and single-writer rules are the same as
// the batch API's: a quarantined shard rejects the whole sub-batch
// with *ShardUnavailableError, and the shard's batch mutex serialises
// group commits on its heap.
//
// Pre-routing pins a route at enqueue time, so an async pipeline whose
// ops straddle a routing-table flip can apply to the old owner. While a
// handoff window is open ApplyShard shadow-applies the covered ops to
// the recipient (so in-window traffic is migration-safe), but a flip
// retires the window — drain async pipelines before rebalancing.
package shard

import "repro/internal/group"

// Route returns the shard owning key — the partitioner decision point
// operations route through. Callers that pre-partition work (the async
// commit pipeline) use it to pick the per-shard queue. Route counts as
// one routed operation in LoadReport accounting (the later ApplyShard
// does not re-count).
func (m *Ordered) Route(key []byte) int { return m.route(key) }

// Route returns the shard owning key; see Ordered.Route.
func (m *Hash) Route(key uint64) int { return m.route(key) }

// ApplyShard applies ops — all of which must be owned by shard s (see
// Route) — as one group commit on that shard's heap. A quarantined
// shard returns *ShardUnavailableError without touching the index;
// otherwise the error is the group layer's (*group.Error on partial
// application). A nil return means every op is durable.
func (m *Ordered) ApplyShard(s int, ops []group.ByteOp, obs group.Observer) error {
	if len(m.shards) > 1 {
		g := m.gate.enter()
		defer m.gate.exit(g)
		if t := m.rt.Load(); t != nil {
			if mg := t.mig; mg != nil && mg.donor == s {
				return m.applyShardWindow(t, mg, s, ops, obs)
			}
		}
	}
	if err := m.unavailable(s); err != nil {
		return err
	}
	m.batchMu[s].Lock()
	defer m.batchMu[s].Unlock()
	sh := &m.shards[s]
	return group.ApplyOrdered(sh.heap, sh.idx, ops, obs)
}

// applyShardWindow is ApplyShard against the migration donor while a
// handoff window is open: the donor commit stays authoritative, and the
// window-covered slice of the applied ops is shadow-applied to the
// recipient under the shared window lock so copy batches cannot
// interleave.
func (m *Ordered) applyShardWindow(t *routeTable, mg *migration, s int, ops []group.ByteOp, obs group.Observer) error {
	if err := m.unavailable(s); err != nil {
		return err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	m.batchMu[s].Lock()
	sh := &m.shards[s]
	err := group.ApplyOrdered(sh.heap, sh.idx, ops, obs)
	m.batchMu[s].Unlock()
	applied := len(ops)
	if ge, ok := err.(*group.Error); ok {
		applied = ge.Applied
	} else if err != nil {
		applied = 0
	}
	var shadow []group.ByteOp
	for i := 0; i < applied; i++ {
		if mg.covers(m.mapper.Point(ops[i].Key), t) {
			shadow = append(shadow, ops[i])
		}
	}
	if len(shadow) == 0 {
		return err
	}
	if m.unavailable(mg.recipient) != nil {
		mg.failed.Store(true)
		return err
	}
	rec := &m.shards[mg.recipient]
	m.batchMu[mg.recipient].Lock()
	serr := group.ApplyOrdered(rec.heap, rec.idx, shadow, nil)
	m.batchMu[mg.recipient].Unlock()
	if serr != nil {
		mg.failed.Store(true)
	}
	return err
}

// ApplyShard applies ops — all owned by shard s — as one group commit
// on that shard's heap; see Ordered.ApplyShard.
func (m *Hash) ApplyShard(s int, ops []group.U64Op, obs group.Observer) error {
	if len(m.shards) > 1 {
		g := m.gate.enter()
		defer m.gate.exit(g)
		if t := m.rt.Load(); t != nil {
			if mg := t.mig; mg != nil && mg.donor == s {
				return m.applyShardWindow(t, mg, s, ops, obs)
			}
		}
	}
	if err := m.unavailable(s); err != nil {
		return err
	}
	m.batchMu[s].Lock()
	defer m.batchMu[s].Unlock()
	sh := &m.shards[s]
	return group.ApplyHash(sh.heap, sh.idx, ops, obs)
}

// applyShardWindow is the unordered ApplyShard against the migration
// donor while a handoff window is open; see Ordered.applyShardWindow.
func (m *Hash) applyShardWindow(t *routeTable, mg *migration, s int, ops []group.U64Op, obs group.Observer) error {
	if err := m.unavailable(s); err != nil {
		return err
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	m.batchMu[s].Lock()
	sh := &m.shards[s]
	err := group.ApplyHash(sh.heap, sh.idx, ops, obs)
	m.batchMu[s].Unlock()
	applied := len(ops)
	if ge, ok := err.(*group.Error); ok {
		applied = ge.Applied
	} else if err != nil {
		applied = 0
	}
	var shadow []group.U64Op
	for i := 0; i < applied; i++ {
		if mg.covers(m.mapper64.Point(ops[i].Key), t) {
			shadow = append(shadow, ops[i])
		}
	}
	if len(shadow) == 0 {
		return err
	}
	if m.unavailable(mg.recipient) != nil {
		mg.failed.Store(true)
		return err
	}
	rec := &m.shards[mg.recipient]
	m.batchMu[mg.recipient].Lock()
	serr := group.ApplyHash(rec.heap, rec.idx, shadow, nil)
	m.batchMu[mg.recipient].Unlock()
	if serr != nil {
		mg.failed.Store(true)
	}
	return err
}
