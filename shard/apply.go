// Single-shard group-commit entry points for external committers: the
// async pipeline (internal/commit) routes each op itself and drains
// per-shard queues, so it needs to commit a pre-routed batch on one
// shard without re-partitioning, plus the routing function to do the
// pre-routing. The quarantine and single-writer rules are the same as
// the batch API's: a quarantined shard rejects the whole sub-batch
// with *ShardUnavailableError, and the shard's batch mutex serialises
// group commits on its heap.
package shard

import "repro/internal/group"

// Route returns the shard owning key — the partitioner decision point
// operations route through. Callers that pre-partition work (the async
// commit pipeline) use it to pick the per-shard queue.
func (m *Ordered) Route(key []byte) int { return m.route(key) }

// Route returns the shard owning key; see Ordered.Route.
func (m *Hash) Route(key uint64) int { return m.route(key) }

// ApplyShard applies ops — all of which must be owned by shard s (see
// Route) — as one group commit on that shard's heap. A quarantined
// shard returns *ShardUnavailableError without touching the index;
// otherwise the error is the group layer's (*group.Error on partial
// application). A nil return means every op is durable.
func (m *Ordered) ApplyShard(s int, ops []group.ByteOp, obs group.Observer) error {
	if err := m.unavailable(s); err != nil {
		return err
	}
	m.batchMu[s].Lock()
	defer m.batchMu[s].Unlock()
	sh := &m.shards[s]
	return group.ApplyOrdered(sh.heap, sh.idx, ops, obs)
}

// ApplyShard applies ops — all owned by shard s — as one group commit
// on that shard's heap; see Ordered.ApplyShard.
func (m *Hash) ApplyShard(s int, ops []group.U64Op, obs group.Observer) error {
	if err := m.unavailable(s); err != nil {
		return err
	}
	m.batchMu[s].Lock()
	defer m.batchMu[s].Unlock()
	sh := &m.shards[s]
	return group.ApplyHash(sh.heap, sh.idx, ops, obs)
}
