// Routing tables: the mutable, versioned layer that replaces the fixed
// Partitioner → shard mapping once a front-end starts resharding.
//
// A front-end is born "pristine": no table exists and every operation
// routes through the stateless Partitioner exactly as before.
// EnableResharding materialises a routeTable whose initial mapping is
// bit-identical to the legacy partitioner (proved at newSlotTable /
// newRangeTable), so enabling resharding never moves a key by itself.
// From then on the table is the single routing authority: the fast path
// is one atomic pointer load plus an O(1) (hash) or O(log n) (range)
// lookup, and rebalancing publishes a fresh immutable table rather than
// mutating the live one.
package shard

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/keys"
	"repro/internal/stripe"
)

// SlotsPerShard is the consistent-hash slot multiplier: a hash-routed
// front-end with H shards carves the key space into H×SlotsPerShard
// slots, each independently assignable to a shard. More slots means
// finer-grained load moves (one slot ≈ 1/(H×SlotsPerShard) of a uniform
// key population) at the cost of a larger table; 64 lets the rebalancer
// move ~1.5% load increments while the table stays a few cache lines.
const SlotsPerShard = 64

// PointMapper is implemented by byte-key partitioners that can reduce a
// key to a point on the 64-bit ring, the first stage of table-based
// routing. Both built-in partitioners implement it; a custom Partitioner
// without it cannot be resharded (ErrNotReshardable).
type PointMapper interface {
	// Point maps key to a 64-bit value consistent with the partitioner's
	// Shard mapping: Shard(key, H) must equal the table lookup of
	// Point(key) on a fresh H-shard table (see newSlotTable /
	// newRangeTable for the two contracts).
	Point(key []byte) uint64
}

// PointMapper64 is PointMapper for uint64-key partitioners.
type PointMapper64 interface {
	Point(key uint64) uint64
}

// Table kinds: how a routeTable turns a point into a shard.
const (
	// kindSlots: consistent-hash slots. slot = point % len(slots),
	// shard = slots[slot]. Used by hash partitioners.
	kindSlots = iota
	// kindRange: contiguous spans. shard = owner[i] for the first span i
	// with point <= bounds[i]. Used by order-preserving partitioners.
	kindRange
)

// routeTable is one immutable version of the routing function. Readers
// reach it through a single atomic pointer load; rebalancing builds a
// modified copy and publishes it, so no lock ever sits on the routed-op
// fast path. Only the per-slot ops counters (striped) and the migration
// window carry mutable state.
type routeTable struct {
	// version increments on every published change; the flip that
	// completes a migration is observable as a version step.
	version uint64
	kind    int

	// kindSlots state: slots[j] = owning shard of slot j.
	slots []uint32

	// kindRange state: span i covers points in (bounds[i-1], bounds[i]]
	// (span 0 from zero), owned by owner[i]. bounds is strictly
	// increasing and ends at MaxUint64, so every point falls in exactly
	// one span.
	bounds []uint64
	owner  []uint32

	// ops counts routed operations per slot (kindSlots) or per span
	// (kindRange), feeding the rebalancer's "which slice of the donor is
	// hot" decision. The backing array is shared across table versions so
	// counts survive republishing; a range flip reallocates it (spans
	// changed shape) and restarts counting.
	ops []*stripe.Counter

	// mig, when non-nil, is the open handoff window: keys the migration
	// is moving double-apply to donor and recipient (see reshard.go).
	mig *migration
}

// locate returns the owning shard for point p and the slot/span index it
// hit (for load counting).
func (t *routeTable) locate(p uint64) (shard, slot int) {
	if t.kind == kindSlots {
		j := int(p % uint64(len(t.slots)))
		return int(t.slots[j]), j
	}
	// First span whose inclusive upper bound covers p.
	i := sort.Search(len(t.bounds), func(i int) bool { return p <= t.bounds[i] })
	return int(t.owner[i]), i
}

// newCounters builds n independent striped counters.
func newCounters(n int) []*stripe.Counter {
	cs := make([]*stripe.Counter, n)
	for i := range cs {
		cs[i] = stripe.NewCounter()
	}
	return cs
}

// newSlotTable builds the initial consistent-hash table for H shards:
// S = H×SlotsPerShard slots with slots[j] = j % H. Because H divides S,
// (p % S) % H == p % H for every point p, so the fresh table routes
// exactly like the legacy `point % H` partitioners — enabling resharding
// does not move any key.
func newSlotTable(shards int) *routeTable {
	s := shards * SlotsPerShard
	t := &routeTable{
		kind:  kindSlots,
		slots: make([]uint32, s),
		ops:   newCounters(s),
	}
	for j := range t.slots {
		t.slots[j] = uint32(j % shards)
	}
	return t
}

// newRangeTable builds the initial range table for H shards: span i ends
// at width×(i+1) − 1 with width = ceil(2^64 / H), the last bound clamped
// to MaxUint64. For any point v, locate finds the first i with
// v <= width×(i+1) − 1, i.e. i = v/width — exactly RangePartition.Shard,
// so the fresh table is bit-identical to the legacy mapping.
func newRangeTable(shards int) *routeTable {
	t := &routeTable{
		kind:   kindRange,
		bounds: make([]uint64, shards),
		owner:  make([]uint32, shards),
		ops:    newCounters(shards),
	}
	width := math.MaxUint64/uint64(shards) + 1
	for i := 0; i < shards; i++ {
		if i == shards-1 {
			t.bounds[i] = math.MaxUint64
		} else {
			t.bounds[i] = width*uint64(i+1) - 1
		}
		t.owner[i] = uint32(i)
	}
	return t
}

// clone returns a copy of t sharing the ops backing array, ready to be
// modified and published as the next version.
func (t *routeTable) clone() *routeTable {
	n := &routeTable{version: t.version, kind: t.kind, ops: t.ops}
	if t.kind == kindSlots {
		n.slots = append([]uint32(nil), t.slots...)
	} else {
		n.bounds = append([]uint64(nil), t.bounds...)
		n.owner = append([]uint32(nil), t.owner...)
	}
	return n
}

// migration is the open handoff window of one in-flight migration: the
// set of points moving from donor to recipient. While the window is
// open, writes to covered keys double-apply — the donor stays
// authoritative and acknowledges, the recipient receives a shadow copy —
// so the copy stream cannot miss a concurrent update. mu orders copy
// batches against those writers: a copy batch holds mu exclusively
// across its read-donor + apply-recipient step, while writers hold it
// shared across their double-apply, so a copy batch can never overwrite
// a concurrent writer's fresher value with a stale read.
type migration struct {
	donor, recipient int

	// kindSlots: moving[j] reports whether slot j is in the window.
	moving []bool
	// kindRange: the window covers points in [lo, hi], both inclusive.
	lo, hi uint64
	ranged bool

	mu sync.RWMutex

	// failed is set by a writer whose shadow apply to the recipient
	// errored: the recipient copy is incomplete, so the migration must
	// abort instead of flipping.
	failed atomic.Bool
}

// covers reports whether point p (which must already route to the donor
// on the window table) is inside the handoff window.
func (mg *migration) covers(p uint64, t *routeTable) bool {
	if mg.ranged {
		return p >= mg.lo && p <= mg.hi
	}
	return mg.moving[int(p%uint64(len(t.slots)))]
}

// withWindow returns the next table version: same mapping as t, with the
// migration window attached.
func (t *routeTable) withWindow(mg *migration) *routeTable {
	n := t.clone()
	n.version = t.version + 1
	n.mig = mg
	return n
}

// withoutWindow returns the next table version with the window closed
// and the mapping unchanged (migration aborted).
func (t *routeTable) withoutWindow() *routeTable {
	n := t.clone()
	n.version = t.version + 1
	n.mig = nil
	return n
}

// flipped returns the next table version with the window closed and the
// windowed slots/span reassigned to the recipient (migration complete).
func (t *routeTable) flipped(mg *migration) *routeTable {
	n := t.clone()
	n.version = t.version + 1
	n.mig = nil
	if t.kind == kindSlots {
		for j, mv := range mg.moving {
			if mv {
				n.slots[j] = uint32(mg.recipient)
			}
		}
		return n
	}
	// Range: carve [lo, hi] out of the donor's spans and hand it to the
	// recipient. Rebuild the span list — tables are tiny and a from-
	// scratch walk is the simplest correct form. Each donor span
	// overlapping the window splits into up to three pieces: the part
	// before lo (donor), the overlap (recipient), the part after hi
	// (donor).
	type span struct {
		hi    uint64
		owner uint32
	}
	var spans []span
	sLo := uint64(0)
	for i := range t.bounds {
		sHi, own := t.bounds[i], t.owner[i]
		if own == uint32(mg.donor) && sHi >= mg.lo && sLo <= mg.hi {
			if mg.lo > sLo {
				spans = append(spans, span{mg.lo - 1, own})
			}
			cutHi := mg.hi
			if cutHi > sHi {
				cutHi = sHi
			}
			spans = append(spans, span{cutHi, uint32(mg.recipient)})
			if cutHi < sHi {
				spans = append(spans, span{sHi, own})
			}
		} else {
			spans = append(spans, span{sHi, own})
		}
		sLo = sHi + 1
	}
	// Merge adjacent same-owner spans so repeated splits cannot grow the
	// table without bound.
	merged := spans[:1]
	for _, sp := range spans[1:] {
		if sp.owner == merged[len(merged)-1].owner {
			merged[len(merged)-1].hi = sp.hi
		} else {
			merged = append(merged, sp)
		}
	}
	n.bounds = make([]uint64, len(merged))
	n.owner = make([]uint32, len(merged))
	for i, sp := range merged {
		n.bounds[i] = sp.hi
		n.owner[i] = sp.owner
	}
	// Span shape changed: per-span counts no longer line up. Restart.
	n.ops = newCounters(len(merged))
	return n
}

// opGate is the RCU-style grace-period barrier between routed operations
// and table transitions. Every routed operation holds one of the gate's
// stripes in read mode for the operation's duration; drain acquires
// every stripe exclusively, so it returns only after all operations that
// began before the call — which may have routed on the previous table
// version — have finished. Stripes are padded and selected by the
// per-goroutine stripe key, so the fast path costs one uncontended
// RLock/RUnlock pair.
type opGate struct {
	stripes []gateStripe
}

// gateStripe pads each RWMutex (24 bytes) onto its own prefetch-paired
// 128-byte line so stripes never false-share.
type gateStripe struct {
	mu sync.RWMutex
	_  [104]byte
}

// gateStripes is the gate width: enough that 8+ worker goroutines rarely
// share a stripe, small enough that drain stays trivial.
const gateStripes = 8

func newOpGate() *opGate {
	return &opGate{stripes: make([]gateStripe, gateStripes)}
}

// enter takes a read slot; the returned stripe must be passed to exit.
func (g *opGate) enter() int {
	s := int(stripe.Key() % gateStripes)
	g.stripes[s].mu.RLock()
	return s
}

// exit releases the read slot taken by enter.
func (g *opGate) exit(s int) { g.stripes[s].mu.RUnlock() }

// drain waits for every operation that entered before the call to exit:
// the grace period after publishing a new table version.
func (g *opGate) drain() {
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
		g.stripes[i].mu.Unlock()
	}
}

// Point implements PointMapper: the same FNV-1a + Mix64 point that the
// Shard method reduces, so table routing agrees with legacy routing.
func (HashPartition) Point(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return keys.Mix64(h)
}

// Point implements PointMapper: the first eight key bytes, big-endian,
// zero-padded — the value RangePartition.Shard divides.
func (RangePartition) Point(key []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v <<= 8
		if i < len(key) {
			v |= uint64(key[i])
		}
	}
	return v
}

// Point implements PointMapper64.
func (HashPartition64) Point(key uint64) uint64 { return keys.Mix64(key) }
