// Sharded group commit: a batch of writes against the front-end is
// partitioned by owning shard (preserving the batch's relative order
// within each partition) and each sub-batch is applied as one group
// commit on its shard's private heap (internal/group), so a batch of B
// same-shard writes pays one covering fence instead of B trailing
// fences. Sub-batches on different shards are independent crash
// domains: one shard's failure never blocks another's sub-batch from
// committing, which is why batch application returns a *BatchError
// naming exactly the failed sub-batches rather than failing the whole
// call.
//
// A batch that spans a quarantined shard is the canonical partial
// failure: the quarantined sub-batch is rejected up front with the
// shard's *ShardUnavailableError as cause, every healthy sub-batch
// commits durably, and the returned *BatchError matches
// errors.Is(err, ErrShardUnavailable).
//
// Per-shard mutexes (frontend.batchMu) serialise group commits on the
// same shard, because a heap's fence-group mode is single-writer.
// Concurrent point writes to a shard with an in-flight batch are NOT
// serialised against the group — callers that mix batched and
// unbatched writers on the same shard get the underlying index's
// concurrency, not group atomicity. The batched harness run loop and
// the Deferred combiners only ever write through batches.
package shard

import (
	"fmt"
	"strings"

	"repro/internal/group"
)

// SubBatchError reports one shard's failed sub-batch.
type SubBatchError struct {
	// Shard is the partition whose sub-batch failed.
	Shard int
	// OpIndices are the original batch indices routed to this shard, in
	// application order.
	OpIndices []int
	// Applied is how many leading operations of this sub-batch were
	// applied before the failure (group.Error.Applied; 0 when the shard
	// was quarantined and the sub-batch never started).
	Applied int
	// Err is the underlying failure: *ShardUnavailableError for a
	// quarantined shard, or the *group.Error from the group commit.
	Err error
}

func (e *SubBatchError) Error() string {
	return fmt.Sprintf("shard %d sub-batch (%d ops): %v", e.Shard, len(e.OpIndices), e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As chains.
func (e *SubBatchError) Unwrap() error { return e.Err }

// BatchError reports a batch that failed on one or more shards. Every
// sub-batch not listed in Failed committed durably. It participates in
// errors.Is/As through all failed sub-batches, so
// errors.Is(err, ErrShardUnavailable) answers "did any part of this
// batch hit a quarantined shard".
type BatchError struct {
	Failed []SubBatchError
}

func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch failed on %d shard(s): ", len(e.Failed))
	for i := range e.Failed {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.Failed[i].Error())
	}
	return b.String()
}

// Unwrap exposes every failed sub-batch to errors.Is/As chains.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i := range e.Failed {
		out[i] = &e.Failed[i]
	}
	return out
}

// subBatch is one shard's slice of a batch: positions into the original
// ops, in original order.
type subBatch struct {
	shard int
	idxs  []int
}

// partition groups op positions by owning shard, preserving original
// order within each shard, and returns the non-empty sub-batches in
// shard order. route maps an op position to its shard.
func partition(n, shards int, route func(i int) int) []subBatch {
	if shards == 1 {
		idxs := make([]int, n)
		for i := range idxs {
			idxs[i] = i
		}
		return []subBatch{{shard: 0, idxs: idxs}}
	}
	byShard := make([][]int, shards)
	for i := 0; i < n; i++ {
		s := route(i)
		byShard[s] = append(byShard[s], i)
	}
	out := make([]subBatch, 0, shards)
	for s, idxs := range byShard {
		if len(idxs) > 0 {
			out = append(out, subBatch{shard: s, idxs: idxs})
		}
	}
	return out
}

// applyBatch runs the partitioned group commits. apply commits one
// sub-batch (already serialised under the shard's batch mutex) and
// returns the group layer's error, if any.
func (f *frontend[IX]) applyBatch(subs []subBatch, apply func(sb subBatch) error) error {
	var failed []SubBatchError
	for _, sb := range subs {
		if err := f.unavailable(sb.shard); err != nil {
			failed = append(failed, SubBatchError{
				Shard: sb.shard, OpIndices: sb.idxs, Applied: 0, Err: err,
			})
			continue
		}
		f.batchMu[sb.shard].Lock()
		err := apply(sb)
		f.batchMu[sb.shard].Unlock()
		if err != nil {
			applied := 0
			if ge, ok := err.(*group.Error); ok {
				applied = ge.Applied
			}
			failed = append(failed, SubBatchError{
				Shard: sb.shard, OpIndices: sb.idxs, Applied: applied, Err: err,
			})
		}
	}
	if failed != nil {
		return &BatchError{Failed: failed}
	}
	return nil
}

// translate wraps a caller observer so sub-batch-relative indices
// arrive as original batch indices.
func translate(obs group.Observer, idxs []int) group.Observer {
	if obs == nil {
		return nil
	}
	return func(i int) { obs(idxs[i]) }
}

// ApplyBatch applies ops as per-shard group commits: each shard's
// sub-batch pays one covering fence, and a nil return means every
// operation of the batch is durable. On failure it returns *BatchError;
// sub-batches of shards not listed there committed durably. A batch of
// one op per shard degenerates to the unbatched path, counter-exact.
func (m *Ordered) ApplyBatch(ops []group.ByteOp) error {
	return m.ApplyBatchObserved(ops, nil)
}

// ApplyBatchObserved is ApplyBatch with per-op instrumentation: obs is
// called with each op's original batch index after that op's group
// boundary, plus once more per sub-batch with the sub-batch's last
// index after its covering fence (the group.Observer contract, with
// indices translated out of sub-batch space).
func (m *Ordered) ApplyBatchObserved(ops []group.ByteOp, obs group.Observer) error {
	if len(m.shards) == 1 {
		m.opCount[0].Add(uint64(len(ops)))
		subs := partition(len(ops), 1, nil)
		return m.applyBatch(subs, m.applyOrderedSub(ops, obs))
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	if t := m.rt.Load(); t != nil {
		return m.applyBatchTable(t, ops, obs)
	}
	subs := partition(len(ops), len(m.shards), func(i int) int { return m.route(ops[i].Key) })
	return m.applyBatch(subs, m.applyOrderedSub(ops, obs))
}

// applyOrderedSub builds the per-sub-batch group-commit step shared by
// the pristine and table-routed batch paths.
func (m *Ordered) applyOrderedSub(ops []group.ByteOp, obs group.Observer) func(sb subBatch) error {
	return func(sb subBatch) error {
		sub := make([]group.ByteOp, len(sb.idxs))
		for j, i := range sb.idxs {
			sub[j] = ops[i]
		}
		sh := &m.shards[sb.shard]
		return group.ApplyOrdered(sh.heap, sh.idx, sub, translate(obs, sb.idxs))
	}
}

// applyBatchTable is the table-routed batch path. When a handoff window
// is open it holds the window shared for the whole batch (so a copy
// batch cannot interleave between a donor sub-batch and its shadow) and
// shadow-applies the covered slice of the donor's applied ops to the
// recipient as one extra group commit with no observer — shadow writes
// are not separately acknowledged.
func (m *Ordered) applyBatchTable(t *routeTable, ops []group.ByteOp, obs group.Observer) error {
	points := make([]uint64, len(ops))
	subs := partition(len(ops), len(m.shards), func(i int) int {
		s, p := m.locateKey(t, ops[i].Key)
		points[i] = p
		return s
	})
	mg := t.mig
	if mg == nil {
		return m.applyBatch(subs, m.applyOrderedSub(ops, obs))
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	err := m.applyBatch(subs, m.applyOrderedSub(ops, obs))
	shadowIdxs := shadowApplied(subs, err, mg, t, points)
	if len(shadowIdxs) == 0 {
		return err
	}
	if m.unavailable(mg.recipient) != nil {
		mg.failed.Store(true)
		return err
	}
	shadow := make([]group.ByteOp, len(shadowIdxs))
	for j, i := range shadowIdxs {
		shadow[j] = ops[i]
	}
	sh := &m.shards[mg.recipient]
	m.batchMu[mg.recipient].Lock()
	serr := group.ApplyOrdered(sh.heap, sh.idx, shadow, nil)
	m.batchMu[mg.recipient].Unlock()
	if serr != nil {
		mg.failed.Store(true)
	}
	return err
}

// shadowApplied returns the original batch indices that must be
// shadow-applied to the migration recipient: the window-covered ops
// among the donor sub-batch's applied prefix (the whole sub-batch
// unless it failed part-way).
func shadowApplied(subs []subBatch, err error, mg *migration, t *routeTable, points []uint64) []int {
	for _, sb := range subs {
		if sb.shard != mg.donor {
			continue
		}
		applied := len(sb.idxs)
		if be, ok := err.(*BatchError); ok {
			for i := range be.Failed {
				if be.Failed[i].Shard == mg.donor {
					applied = be.Failed[i].Applied
					break
				}
			}
		}
		var out []int
		for _, i := range sb.idxs[:applied] {
			if mg.covers(points[i], t) {
				out = append(out, i)
			}
		}
		return out
	}
	return nil
}

// InsertBatch group-commits keys[i] → values[i] insertions. See
// ApplyBatch for the durability and error contract.
func (m *Ordered) InsertBatch(keys [][]byte, values []uint64) error {
	ops := make([]group.ByteOp, len(keys))
	for i := range keys {
		ops[i] = group.ByteOp{Key: keys[i], Value: values[i]}
	}
	return m.ApplyBatch(ops)
}

// UpdateBatch group-commits in-place updates. See ApplyBatch for the
// durability and error contract.
func (m *Ordered) UpdateBatch(keys [][]byte, values []uint64) error {
	ops := make([]group.ByteOp, len(keys))
	for i := range keys {
		ops[i] = group.ByteOp{Key: keys[i], Value: values[i], Update: true}
	}
	return m.ApplyBatch(ops)
}

// ApplyBatch applies ops as per-shard group commits on the unordered
// front-end. See Ordered.ApplyBatch for the contract.
func (m *Hash) ApplyBatch(ops []group.U64Op) error {
	return m.ApplyBatchObserved(ops, nil)
}

// ApplyBatchObserved is ApplyBatch with per-op instrumentation; see
// Ordered.ApplyBatchObserved.
func (m *Hash) ApplyBatchObserved(ops []group.U64Op, obs group.Observer) error {
	if len(m.shards) == 1 {
		m.opCount[0].Add(uint64(len(ops)))
		subs := partition(len(ops), 1, nil)
		return m.applyBatch(subs, m.applyHashSub(ops, obs))
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	if t := m.rt.Load(); t != nil {
		return m.applyBatchTable(t, ops, obs)
	}
	subs := partition(len(ops), len(m.shards), func(i int) int { return m.route(ops[i].Key) })
	return m.applyBatch(subs, m.applyHashSub(ops, obs))
}

// applyHashSub builds the per-sub-batch group-commit step shared by the
// pristine and table-routed batch paths.
func (m *Hash) applyHashSub(ops []group.U64Op, obs group.Observer) func(sb subBatch) error {
	return func(sb subBatch) error {
		sub := make([]group.U64Op, len(sb.idxs))
		for j, i := range sb.idxs {
			sub[j] = ops[i]
		}
		sh := &m.shards[sb.shard]
		return group.ApplyHash(sh.heap, sh.idx, sub, translate(obs, sb.idxs))
	}
}

// applyBatchTable is the table-routed batch path for the unordered
// front-end; see Ordered.applyBatchTable.
func (m *Hash) applyBatchTable(t *routeTable, ops []group.U64Op, obs group.Observer) error {
	points := make([]uint64, len(ops))
	subs := partition(len(ops), len(m.shards), func(i int) int {
		s, p := m.locateKey(t, ops[i].Key)
		points[i] = p
		return s
	})
	mg := t.mig
	if mg == nil {
		return m.applyBatch(subs, m.applyHashSub(ops, obs))
	}
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	err := m.applyBatch(subs, m.applyHashSub(ops, obs))
	shadowIdxs := shadowApplied(subs, err, mg, t, points)
	if len(shadowIdxs) == 0 {
		return err
	}
	if m.unavailable(mg.recipient) != nil {
		mg.failed.Store(true)
		return err
	}
	shadow := make([]group.U64Op, len(shadowIdxs))
	for j, i := range shadowIdxs {
		shadow[j] = ops[i]
	}
	sh := &m.shards[mg.recipient]
	m.batchMu[mg.recipient].Lock()
	serr := group.ApplyHash(sh.heap, sh.idx, shadow, nil)
	m.batchMu[mg.recipient].Unlock()
	if serr != nil {
		mg.failed.Store(true)
	}
	return err
}

// InsertBatch group-commits keys[i] → values[i] insertions. See
// Ordered.ApplyBatch for the contract.
func (m *Hash) InsertBatch(keys, values []uint64) error {
	ops := make([]group.U64Op, len(keys))
	for i := range keys {
		ops[i] = group.U64Op{Key: keys[i], Value: values[i]}
	}
	return m.ApplyBatch(ops)
}

// UpdateBatch group-commits in-place updates. See Ordered.ApplyBatch
// for the contract.
func (m *Hash) UpdateBatch(keys, values []uint64) error {
	ops := make([]group.U64Op, len(keys))
	for i := range keys {
		ops[i] = group.U64Op{Key: keys[i], Value: values[i], Update: true}
	}
	return m.ApplyBatch(ops)
}

// Deferred is a group-flush write combiner for the ordered front-end:
// writes queue in arrival order and commit as one batch (ApplyBatch)
// when Flush is called or the queue reaches its limit. Keys are copied
// at enqueue, so callers may reuse their key buffers — the harness run
// loops do. A Deferred is not safe for concurrent use; each worker
// owns one.
//
// Nothing queued is durable (or acknowledged) until the flush that
// carries it returns nil.
type Deferred struct {
	m     *Ordered
	limit int
	ops   []group.ByteOp
	buf   []byte // arena the queued keys are copied into
	ins   int    // queued non-update ops
}

// NewDeferred returns a combiner flushing into m, auto-flushing when
// limit ops are queued (limit < 1 selects 1, i.e. write-through).
func NewDeferred(m *Ordered, limit int) *Deferred {
	if limit < 1 {
		limit = 1
	}
	return &Deferred{m: m, limit: limit}
}

// Insert queues an insertion, flushing first if the queue is full. The
// returned error is a flush error (see Flush); the new op is queued
// regardless.
func (d *Deferred) Insert(key []byte, value uint64) error {
	return d.queue(key, value, false)
}

// Update queues an in-place update, flushing first if the queue is
// full.
func (d *Deferred) Update(key []byte, value uint64) error {
	return d.queue(key, value, true)
}

func (d *Deferred) queue(key []byte, value uint64, update bool) error {
	var err error
	if len(d.ops) >= d.limit {
		err = d.Flush()
	}
	n := len(d.buf)
	d.buf = append(d.buf, key...)
	if !update {
		d.ins++
	}
	d.ops = append(d.ops, group.ByteOp{Key: d.buf[n:len(d.buf):len(d.buf)], Value: value, Update: update})
	return err
}

// Pending returns the number of queued, unflushed ops.
func (d *Deferred) Pending() int { return len(d.ops) }

// HasInserts reports whether any queued op is an insertion — the read
// paths flush before reads that could observe a queued insert.
func (d *Deferred) HasInserts() bool { return d.ins > 0 }

// Flush group-commits the queued ops and empties the queue. A nil
// return means everything previously queued is durable. On error
// (*BatchError) the failed sub-batches were not acknowledged; the
// queue is emptied either way — group commit has no retry slot for
// half-applied sub-batches.
func (d *Deferred) Flush() error { return d.FlushObserved(nil) }

// FlushObserved is Flush with the observer forwarded to
// ApplyBatchObserved; obs receives queue positions (0-based enqueue
// order of this flush).
func (d *Deferred) FlushObserved(obs group.Observer) error {
	if len(d.ops) == 0 {
		return nil
	}
	err := d.m.ApplyBatchObserved(d.ops, obs)
	d.ops = d.ops[:0]
	d.buf = d.buf[:0]
	d.ins = 0
	return err
}

// DeferredHash is Deferred for the unordered front-end.
type DeferredHash struct {
	m     *Hash
	limit int
	ops   []group.U64Op
	ins   int
}

// NewDeferredHash returns a combiner flushing into m, auto-flushing
// when limit ops are queued (limit < 1 selects 1).
func NewDeferredHash(m *Hash, limit int) *DeferredHash {
	if limit < 1 {
		limit = 1
	}
	return &DeferredHash{m: m, limit: limit}
}

// Insert queues an insertion, flushing first if the queue is full.
func (d *DeferredHash) Insert(key, value uint64) error {
	return d.queue(key, value, false)
}

// Update queues an in-place update, flushing first if the queue is
// full.
func (d *DeferredHash) Update(key, value uint64) error {
	return d.queue(key, value, true)
}

func (d *DeferredHash) queue(key, value uint64, update bool) error {
	var err error
	if len(d.ops) >= d.limit {
		err = d.Flush()
	}
	if !update {
		d.ins++
	}
	d.ops = append(d.ops, group.U64Op{Key: key, Value: value, Update: update})
	return err
}

// Pending returns the number of queued, unflushed ops.
func (d *DeferredHash) Pending() int { return len(d.ops) }

// HasInserts reports whether any queued op is an insertion.
func (d *DeferredHash) HasInserts() bool { return d.ins > 0 }

// Flush group-commits the queued ops and empties the queue; see
// Deferred.Flush.
func (d *DeferredHash) Flush() error { return d.FlushObserved(nil) }

// FlushObserved is Flush with the observer forwarded; obs receives
// queue positions.
func (d *DeferredHash) FlushObserved(obs group.Observer) error {
	if len(d.ops) == 0 {
		return nil
	}
	err := d.m.ApplyBatchObserved(d.ops, obs)
	d.ops = d.ops[:0]
	d.ins = 0
	return err
}
