package shard

import (
	"bytes"

	"repro/internal/core"
)

// DefaultScanBatch is the per-shard batch-size cap B used by streaming
// merged scans and cursors when Options.ScanBatch is unset. A batch is
// one Scan call against the underlying index, so B trades per-entry
// resume overhead against the O(shards × B) peak scan memory.
const DefaultScanBatch = 256

// adaptiveSeed is the first-fill batch size of a shard cursor. Batches
// grow geometrically (doubling on every full fill) from here up to the
// configured cap, so a short scan pays for a few entries instead of a
// full cap-sized batch per shard, while a long scan converges to
// cap-sized fills after log2(cap/seed) rounds. Caps below the seed are
// used as-is.
const adaptiveSeed = 32

// shardCursor is a resumable iterator over one ordered index, built
// entirely on the index's public Scan(start, count, fn) contract: it
// pulls up to `batch` entries at a time and resumes the next batch at
// the exclusive successor of the last key seen (lastKey + 0x00, the
// smallest byte string strictly greater than lastKey), so no index
// package needs an API change to support streaming.
//
// Keys are copied once into a per-cursor arena that is reused across
// batches — one bulk buffer per batch instead of one allocation per
// entry, and after the first batch no allocation at all in steady state.
// Keys returned by head are valid until the batch is refilled, i.e.
// until advance moves past the batch's last entry.
type shardCursor struct {
	idx   core.OrderedIndex
	shard int      // owning shard index (merge-mode duplicate resolution)
	batch int      // next fill's batch size: adaptive, adaptiveSeed → max
	max   int      // configured batch cap (Options.ScanBatch)
	arena []byte   // backing bytes for the current batch's keys
	ends  []int    // ends[i] is the end offset of key i in arena
	vals  []uint64 // vals[i] is key i's value
	pos   int      // next entry to hand out
	// more records that the last fill hit the limit of the batch size it
	// was issued with, so the index may hold further keys beyond resume.
	more bool
	// resume is the start key of the next batch: the exclusive successor
	// of the last key of the current batch.
	resume []byte
}

// newShardCursor opens a cursor over idx at start and fetches the first
// batch. max is the batch cap; values < 1 select DefaultScanBatch. The
// first fill uses min(adaptiveSeed, max) and doubles per full fill.
func newShardCursor(idx core.OrderedIndex, start []byte, max int) *shardCursor {
	if max < 1 {
		max = DefaultScanBatch
	}
	batch := adaptiveSeed
	if batch > max {
		batch = max
	}
	c := &shardCursor{idx: idx, batch: batch, max: max, resume: append([]byte(nil), start...)}
	c.fill()
	return c
}

// fill fetches the next batch from the index. The callback key buffer
// belongs to the index and may be reused between entries, so each key is
// copied into the arena; the arena itself is reused across batches.
func (c *shardCursor) fill() {
	c.arena, c.ends, c.vals, c.pos = c.arena[:0], c.ends[:0], c.vals[:0], 0
	used := c.batch
	n := c.idx.Scan(c.resume, used, func(k []byte, v uint64) bool {
		c.arena = append(c.arena, k...)
		c.ends = append(c.ends, len(c.arena))
		c.vals = append(c.vals, v)
		return true
	})
	// more compares against the batch this fill was issued with, not the
	// (possibly already grown) next batch size.
	c.more = n == used
	if c.more {
		// Appending a zero byte yields the smallest key strictly greater
		// than the last one — exclusive resume that cannot skip a key
		// whose prefix is the last key (e.g. "ab" -> "ab\x00").
		last := c.key(n - 1)
		c.resume = append(c.resume[:0], last...)
		c.resume = append(c.resume, 0)
		// A full fill means the scan is long: double the next batch, up
		// to the cap, so steady state pays one Scan per max entries while
		// buffering stays O(max) per shard.
		if next := used * 2; next <= c.max {
			c.batch = next
		} else {
			c.batch = c.max
		}
	}
}

// key returns entry i's key, sliced out of the arena with its capacity
// clipped so callers cannot append into a neighbour.
func (c *shardCursor) key(i int) []byte {
	lo := 0
	if i > 0 {
		lo = c.ends[i-1]
	}
	return c.arena[lo:c.ends[i]:c.ends[i]]
}

// valid reports whether the cursor currently holds an entry.
func (c *shardCursor) valid() bool { return c.pos < len(c.ends) }

// head returns the current entry. Only legal while valid.
func (c *shardCursor) head() ([]byte, uint64) { return c.key(c.pos), c.vals[c.pos] }

// advance moves to the next entry, refilling at batch boundaries.
func (c *shardCursor) advance() {
	c.pos++
	if c.pos >= len(c.ends) && c.more {
		c.fill()
	}
}

// cursorHeap is a binary min-heap of shard cursors ordered by head key.
// Every cursor in the heap is valid. On a pristine front-end keys route
// to exactly one shard, so no two heads are ever equal; during and after
// a migration a key may briefly exist on two shards (the recipient's
// shadow copy, or the donor's residue), in which case the two equal
// heads are the root and one of its direct children — only two copies
// of a key can exist, and a non-root node equal to the root's head
// would force its parent to equal it too, making the parent the second
// copy. Cursor.Next resolves such pairs by emitting the owner's copy.
type cursorHeap []*shardCursor

func (h cursorHeap) less(i, j int) bool {
	ki, _ := h[i].head()
	kj, _ := h[j].head()
	return bytes.Compare(ki, kj) < 0
}

func (h cursorHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h cursorHeap) siftDown(i int) {
	for {
		m := i
		if l := 2*i + 1; l < len(h) && h.less(l, m) {
			m = l
		}
		if r := 2*i + 2; r < len(h) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Cursor is a pull-style iterator over the globally ordered key space of
// a sharded front-end (Ordered.Cursor) or a single ordered index
// (NewCursor): Next returns entries in ascending key order without
// callback gymnastics, so servers can paginate a scan across requests.
//
// A Cursor holds at most one batch of entries per shard, so its memory
// is O(shards × batch) no matter how long the scan runs or how large the
// dataset is. With an order-preserving partitioner (RangePartition) it
// drains shards one after another and holds a single batch.
//
// The key returned by Next is valid only until the next Next call; copy
// it to retain it. A Cursor is not safe for concurrent use, and it sees
// concurrent writers with the same batch-level consistency the
// underlying index Scans provide.
type Cursor struct {
	merged bool
	heap   cursorHeap // merge mode: valid cursors ordered by head key

	rest  []core.OrderedIndex // sequential mode: shards not yet opened
	cur   *shardCursor        // sequential mode: shard being drained
	start []byte
	batch int

	// ownerOf, when non-nil, resolves duplicate heads in merge mode: a
	// key found on two shards (migration shadow copy or residue) is
	// emitted only from the shard the routing table currently names as
	// its owner. Nil on pristine front-ends, where duplicates cannot
	// occur and head comparisons are skipped.
	ownerOf func(key []byte) int

	// pending is the cursor whose head the last Next returned; its
	// advance is deferred to the next call so the returned key stays
	// valid in the caller's hands across the batch boundary refill.
	pending *shardCursor
}

// NewCursor returns a streaming cursor over a single ordered index,
// starting at start (nil or empty = from the minimum key). batch values
// < 1 select DefaultScanBatch.
func NewCursor(idx core.OrderedIndex, start []byte, batch int) *Cursor {
	if batch < 1 {
		batch = DefaultScanBatch
	}
	return &Cursor{
		rest:  []core.OrderedIndex{idx},
		start: append([]byte(nil), start...),
		batch: batch,
	}
}

// Cursor returns a streaming cursor over the merged key space of all
// shards, starting at start (nil or empty = from the minimum key). The
// per-shard batch size is Options.ScanBatch.
func (m *Ordered) Cursor(start []byte) *Cursor {
	if len(m.shards) == 1 || (orderPreserving(m.part) && m.tablePristine()) {
		first := 0
		if len(m.shards) > 1 && len(start) > 0 {
			// Shard order equals key order, so shards before start's
			// owner hold only smaller keys.
			first = m.part.Shard(start, len(m.shards))
		}
		rest := make([]core.OrderedIndex, 0, len(m.shards)-first)
		for i := first; i < len(m.shards); i++ {
			if m.unavailable(i) != nil {
				continue // degraded: quarantined partition skipped
			}
			rest = append(rest, m.shards[i].idx)
		}
		return &Cursor{rest: rest, start: append([]byte(nil), start...), batch: m.batch}
	}
	return m.mergeCursor(start, m.batch)
}

// mergeCursor opens one cursor per serving shard and heapifies them by
// head key; quarantined partitions are skipped (degraded scan).
func (m *Ordered) mergeCursor(start []byte, batch int) *Cursor {
	h := make(cursorHeap, 0, len(m.shards))
	for i := range m.shards {
		if m.unavailable(i) != nil {
			continue
		}
		if c := newShardCursor(m.shards[i].idx, start, batch); c.valid() {
			c.shard = i
			h = append(h, c)
		}
	}
	h.init()
	cur := &Cursor{merged: true, heap: h}
	if m.rt.Load() != nil {
		// Resharding enabled: a key may transiently exist on two shards
		// (shadow copy during a handoff window, donor residue after a
		// flip). Emit only the copy owned per the current table.
		cur.ownerOf = func(k []byte) int {
			t := m.rt.Load()
			s, _ := t.locate(m.mapper.Point(k))
			return s
		}
	}
	return cur
}

// dropHead advances the cursor at heap position j past its head,
// removing the cursor when exhausted, and restores heap order. The
// replacement element (when j is filled from the tail) is no smaller
// than the root, so sifting down suffices.
func (c *Cursor) dropHead(j int) {
	c.heap[j].advance()
	if c.heap[j].valid() {
		c.heap.siftDown(j)
		return
	}
	last := len(c.heap) - 1
	c.heap[j] = c.heap[last]
	c.heap = c.heap[:last]
	if j < last {
		c.heap.siftDown(j)
	}
}

// Next returns the next entry in ascending key order, or ok = false when
// the scan is exhausted. The returned key is valid until the next call.
func (c *Cursor) Next() (key []byte, value uint64, ok bool) {
	if p := c.pending; p != nil {
		c.pending = nil
		p.advance()
		if c.merged {
			if p.valid() {
				c.heap.siftDown(0)
			} else {
				c.heap[0] = c.heap[len(c.heap)-1]
				c.heap = c.heap[:len(c.heap)-1]
				c.heap.siftDown(0)
			}
		}
	}
	if c.merged {
		for {
			if len(c.heap) == 0 {
				return nil, 0, false
			}
			k, v := c.heap[0].head()
			if c.ownerOf == nil {
				c.pending = c.heap[0]
				return k, v, true
			}
			// Duplicate heads can only pair the root with a direct child
			// (see cursorHeap); emit the owner's copy, drop the other.
			dup := -1
			for j := 1; j <= 2 && j < len(c.heap); j++ {
				if kj, _ := c.heap[j].head(); bytes.Equal(kj, k) {
					dup = j
					break
				}
			}
			if dup < 0 {
				c.pending = c.heap[0]
				return k, v, true
			}
			if c.ownerOf(k) == c.heap[dup].shard {
				// The root holds the non-owned copy: drop it and
				// re-examine the new root (the owned copy).
				c.dropHead(0)
				continue
			}
			c.dropHead(dup)
			c.pending = c.heap[0]
			return k, v, true
		}
	}
	for {
		if c.cur == nil || !c.cur.valid() {
			if len(c.rest) == 0 {
				return nil, 0, false
			}
			c.cur = newShardCursor(c.rest[0], c.start, c.batch)
			c.rest = c.rest[1:]
			continue
		}
		k, v := c.cur.head()
		c.pending = c.cur
		return k, v, true
	}
}
