// Load accounting: epoch-windowed per-shard activity snapshots that
// drive rebalancing decisions. Every routed operation bumps a striped
// per-shard counter (and, once a routing table exists, a striped
// per-slot counter), so accounting adds no shared cache line to the hot
// path and never quiesces writers; LoadReport turns the cumulative
// counters into rolling deltas since the previous report.
package shard

import "sync"

// ShardLoad is one shard's activity during a report epoch (the window
// since the previous LoadReport call).
type ShardLoad struct {
	// Shard is the partition index.
	Shard int
	// Ops is the number of operations routed to the shard: point
	// operations, batched operations, and async-pipeline enqueues.
	Ops uint64
	// Clwb and Fence are the shard heap's persist-instruction deltas —
	// the PM-side cost of the shard's traffic, which can diverge from Ops
	// under mixed workloads (inserts persist more lines than lookups).
	Clwb, Fence uint64
	// Quarantined reports whether the shard was quarantined at snapshot
	// time; quarantined shards are excluded from Imbalance.
	Quarantined bool
}

// LoadReport is one epoch's cross-shard load snapshot.
type LoadReport struct {
	// Epoch numbers the report: the Nth LoadReport call on this
	// front-end, 1-based.
	Epoch uint64
	// Loads holds one entry per shard, in shard order.
	Loads []ShardLoad
}

// TotalOps sums the epoch's routed operations across all shards.
func (r LoadReport) TotalOps() uint64 {
	var t uint64
	for _, l := range r.Loads {
		t += l.Ops
	}
	return t
}

// Imbalance returns the epoch's load skew: the busiest serving shard's
// op count divided by the mean over serving shards. 1.0 is perfectly
// balanced; H is the worst case (all traffic on one of H shards). An
// epoch with no traffic reports 0.
func (r LoadReport) Imbalance() float64 {
	var total, max uint64
	n := 0
	for _, l := range r.Loads {
		if l.Quarantined {
			continue
		}
		total += l.Ops
		if l.Ops > max {
			max = l.Ops
		}
		n++
	}
	if total == 0 || n == 0 {
		return 0
	}
	mean := float64(total) / float64(n)
	return float64(max) / mean
}

// MaxShard returns the busiest serving shard of the epoch (-1 when no
// shard served traffic).
func (r LoadReport) MaxShard() int {
	best, bestOps := -1, uint64(0)
	for _, l := range r.Loads {
		if l.Quarantined {
			continue
		}
		if best == -1 || l.Ops > bestOps {
			best, bestOps = l.Shard, l.Ops
		}
	}
	return best
}

// MinShard returns the least busy serving shard of the epoch (-1 when
// every shard is quarantined).
func (r LoadReport) MinShard() int {
	best := -1
	var bestOps uint64
	for _, l := range r.Loads {
		if l.Quarantined {
			continue
		}
		if best == -1 || l.Ops < bestOps {
			best, bestOps = l.Shard, l.Ops
		}
	}
	return best
}

// loadState is the epoch bookkeeping behind LoadReport: the cumulative
// counter values at the previous report, so each report returns deltas.
// It lives behind a pointer on the frontend because it holds a mutex.
type loadState struct {
	mu        sync.Mutex
	epoch     uint64
	lastOps   []uint64
	lastClwb  []uint64
	lastFence []uint64
}

// LoadReport snapshots every shard's activity since the previous call
// (the first call reports since construction) and starts a new epoch.
// It is safe to call concurrently with operations; concurrent reports
// serialise against each other.
func (f *frontend[IX]) LoadReport() LoadReport {
	ls := f.load
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.lastOps == nil {
		ls.lastOps = make([]uint64, len(f.shards))
		ls.lastClwb = make([]uint64, len(f.shards))
		ls.lastFence = make([]uint64, len(f.shards))
	}
	ls.epoch++
	r := LoadReport{Epoch: ls.epoch, Loads: make([]ShardLoad, len(f.shards))}
	for i := range f.shards {
		ops := f.opCount[i].Load()
		st := f.shards[i].heap.Stats()
		r.Loads[i] = ShardLoad{
			Shard:       i,
			Ops:         ops - ls.lastOps[i],
			Clwb:        st.Clwb - ls.lastClwb[i],
			Fence:       st.Fence - ls.lastFence[i],
			Quarantined: f.health[i].quarantined.Load(),
		}
		ls.lastOps[i] = ops
		ls.lastClwb[i] = st.Clwb
		ls.lastFence[i] = st.Fence
	}
	return r
}

// OpCounts returns the cumulative routed-operation count per shard
// (LoadReport's counter before epoch differencing).
func (f *frontend[IX]) OpCounts() []uint64 {
	out := make([]uint64, len(f.shards))
	for i := range f.shards {
		out[i] = f.opCount[i].Load()
	}
	return out
}

// TableVersion returns the published routing-table version: 0 while the
// front-end is pristine (resharding never enabled), then the version of
// the current table (which starts at 0 and steps on every window open,
// abort, or flip).
func (f *frontend[IX]) TableVersion() uint64 {
	if t := f.rt.Load(); t != nil {
		return t.version
	}
	return 0
}

// Resharding reports whether a routing table has been materialised
// (EnableResharding ran).
func (f *frontend[IX]) Resharding() bool { return f.rt.Load() != nil }

// SlotLoads returns the cumulative routed-operation count per routing
// slot (hash tables) or per span (range tables), and nil while the
// front-end is pristine. Slot counts feed the rebalancer's choice of
// which slice of a hot shard to move.
func (f *frontend[IX]) SlotLoads() []uint64 {
	t := f.rt.Load()
	if t == nil {
		return nil
	}
	out := make([]uint64, len(t.ops))
	for i := range t.ops {
		out[i] = t.ops[i].Load()
	}
	return out
}

// SlotsOf returns the routing slots (hash tables) or span indices
// (range tables) currently owned by shard s, and nil while pristine.
func (f *frontend[IX]) SlotsOf(s int) []int {
	t := f.rt.Load()
	if t == nil {
		return nil
	}
	var out []int
	if t.kind == kindSlots {
		for j, o := range t.slots {
			if int(o) == s {
				out = append(out, j)
			}
		}
		return out
	}
	for i, o := range t.owner {
		if int(o) == s {
			out = append(out, i)
		}
	}
	return out
}
