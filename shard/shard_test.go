package shard

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
)

// TestPartitionerRoutesExactlyOnce: routing is total, in-range, and
// deterministic — every key maps to exactly one shard, every time.
func TestPartitionerRoutesExactlyOnce(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)
	sgen := keys.NewGenerator(keys.YCSBString)
	for _, part := range []Partitioner{HashPartition{}, RangePartition{}} {
		for _, h := range []int{1, 2, 3, 4, 8} {
			for id := uint64(0); id < 10_000; id++ {
				for _, key := range [][]byte{gen.Key(id), sgen.Key(id)} {
					s := part.Shard(key, h)
					if s < 0 || s >= h {
						t.Fatalf("%s: key %x with %d shards routed to %d", part.Name(), key, h, s)
					}
					if again := part.Shard(key, h); again != s {
						t.Fatalf("%s: key %x routed to %d then %d", part.Name(), key, s, again)
					}
				}
			}
		}
	}
}

// TestPartitionerKeyInOneShard: after inserting through the front-end,
// each key is present in exactly one underlying shard index and the
// shard Lens sum to the key count.
func TestPartitionerKeyInOneShard(t *testing.T) {
	const n, h = 5_000, 4
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: h})
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for id := uint64(0); id < n; id += 97 {
		key := gen.Key(id)
		holders := 0
		for i := 0; i < h; i++ {
			if _, ok := m.Shard(i).Lookup(key); ok {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("key %d present in %d shards, want exactly 1", id, holders)
		}
	}
}

// TestHashBalance: uniform keys spread within tolerance of the ideal
// per-shard share under the default hash partitioner, for both key
// kinds.
func TestHashBalance(t *testing.T) {
	const n, h = 100_000, 8
	for _, kind := range []keys.Kind{keys.RandInt, keys.YCSBString} {
		gen := keys.NewGenerator(kind)
		var counts [h]int
		for id := uint64(0); id < n; id++ {
			counts[HashPartition{}.Shard(gen.Key(id), h)]++
		}
		ideal := n / h
		for i, c := range counts {
			if c < ideal*9/10 || c > ideal*11/10 {
				t.Errorf("%s: shard %d holds %d keys, outside ±10%% of ideal %d (counts %v)",
					kind, i, c, ideal, counts)
			}
		}
	}
}

// TestRangePartitionMonotonic: the range partitioner is order-preserving
// over the key space, so a scan's key order never moves backwards across
// shard boundaries.
func TestRangePartitionMonotonic(t *testing.T) {
	const h = 8
	prev := -1
	var prevKey []byte
	for v := uint64(0); v < 1<<16; v += 257 {
		key := keys.EncodeUint64(v << 48)
		s := RangePartition{}.Shard(key, h)
		if s < prev {
			t.Fatalf("key %x in shard %d after key %x in shard %d", key, s, prevKey, prev)
		}
		prev, prevKey = s, key
	}
	if prev != h-1 {
		t.Fatalf("largest keys reached shard %d, want %d", prev, h-1)
	}
}

// TestShardedMatchesUnsharded: the H-shard front-end is observationally
// equivalent to one index — lookups, deletes, and globally ordered merged
// scans agree — under both partitioners.
func TestShardedMatchesUnsharded(t *testing.T) {
	const n = 4_000
	for _, part := range []Partitioner{HashPartition{}, RangePartition{}} {
		t.Run(part.Name(), func(t *testing.T) {
			gen := keys.NewGenerator(keys.RandInt)
			single, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 4, Partitioner: part})
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(0); id < n; id++ {
				k := gen.Key(id)
				if err := single.Insert(k, id); err != nil {
					t.Fatal(err)
				}
				if err := sharded.Insert(k, id); err != nil {
					t.Fatal(err)
				}
			}
			// Delete a stride through both.
			for id := uint64(0); id < n; id += 11 {
				k := gen.Key(id)
				if _, err := single.Delete(k); err != nil {
					t.Fatal(err)
				}
				ok, err := sharded.Delete(k)
				if err != nil || !ok {
					t.Fatalf("sharded delete id %d: %v %v", id, ok, err)
				}
			}
			if single.Len() != sharded.Len() {
				t.Fatalf("Len: single %d, sharded %d", single.Len(), sharded.Len())
			}
			for id := uint64(0); id < n; id++ {
				k := gen.Key(id)
				v1, ok1 := single.Lookup(k)
				v2, ok2 := sharded.Lookup(k)
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("lookup id %d: single (%d,%v), sharded (%d,%v)", id, v1, ok1, v2, ok2)
				}
			}
			// Merged scans must agree in content and order, bounded and not.
			for _, count := range []int{50, 0} {
				var want, got []uint64
				var wantKeys, gotKeys [][]byte
				single.Scan(nil, count, func(k []byte, v uint64) bool {
					want = append(want, v)
					wantKeys = append(wantKeys, append([]byte(nil), k...))
					return true
				})
				sharded.Scan(nil, count, func(k []byte, v uint64) bool {
					got = append(got, v)
					gotKeys = append(gotKeys, append([]byte(nil), k...))
					return true
				})
				if len(want) != len(got) {
					t.Fatalf("scan(count=%d): single %d entries, sharded %d", count, len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] || !bytes.Equal(wantKeys[i], gotKeys[i]) {
						t.Fatalf("scan(count=%d) entry %d: single (%x,%d), sharded (%x,%d)",
							count, i, wantKeys[i], want[i], gotKeys[i], got[i])
					}
				}
				for i := 1; i < len(gotKeys); i++ {
					if bytes.Compare(gotKeys[i-1], gotKeys[i]) >= 0 {
						t.Fatalf("merged scan out of order at %d: %x >= %x", i, gotKeys[i-1], gotKeys[i])
					}
				}
			}
			// A key on which fn returns false is not counted as visited —
			// the merged path must agree with the single index.
			for _, stop := range []int{0, 3} {
				visit := func(m *Ordered) int {
					seen := 0
					return m.Scan(nil, 0, func([]byte, uint64) bool {
						if seen == stop {
							return false
						}
						seen++
						return true
					})
				}
				if a, b := visit(single), visit(sharded); a != b || a != stop {
					t.Fatalf("early-stop scan after %d: single visited %d, sharded %d", stop, a, b)
				}
			}
		})
	}
}

// TestStatsConservation reuses the `cmd/counters -selftest` conservation
// idiom across shards: a concurrent hammer with known per-shard op
// counts must aggregate to exact serial expectations, and the aggregate
// Stats must equal the field-wise sum of ShardStats bit-exactly.
func TestStatsConservation(t *testing.T) {
	const (
		h    = 8
		gPer = 4
		ops  = 20_000
		size = 100 // 2 lines -> 2 clwb per Persist
	)
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: h})
	if err != nil {
		t.Fatal(err)
	}
	// Index construction itself allocates (root nodes); measure deltas
	// from this baseline.
	aggBase := m.Stats()
	perBase := m.ShardStats()
	var wg sync.WaitGroup
	for i := 0; i < h; i++ {
		heap := m.Heap(i)
		for g := 0; g < gPer; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < ops; j++ {
					o := heap.Alloc(size)
					heap.Persist(o, 0, size)
					heap.Fence()
				}
			}()
		}
	}
	wg.Wait()
	agg := m.Stats().Sub(aggBase)
	per := m.ShardStats()
	for i := range per {
		per[i] = per[i].Sub(perBase[i])
	}
	var sum pmem.Stats
	for _, p := range per {
		sum = sum.Add(p)
	}
	if agg != sum {
		t.Fatalf("aggregate %+v != sum of shard stats %+v", agg, sum)
	}
	perShard := uint64(gPer * ops)
	for i, p := range per {
		if p.Clwb != 2*perShard || p.Fence != perShard || p.Allocs != perShard || p.AllocBytes != perShard*size {
			t.Fatalf("shard %d stats %+v do not match serial expectations", i, p)
		}
	}
	n := uint64(h) * perShard
	if agg.Clwb != 2*n || agg.Fence != n || agg.Allocs != n || agg.AllocBytes != n*size {
		t.Fatalf("aggregate %+v does not match serial expectations for %d ops", agg, n)
	}
}

// TestCrashInOneShardRecoversOnlyThatShard is the per-shard recovery
// invariant: a crash injected into shard k is recovered by replaying
// shard k alone; the other shards keep serving reads and writes with no
// replay, and no committed key is lost.
func TestCrashInOneShardRecoversOnlyThatShard(t *testing.T) {
	const (
		h      = 4
		target = 2
		loadN  = 2_000
	)
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: h})
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	committed := make(map[uint64]uint64)
	for id := uint64(0); id < loadN; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		committed[id] = id
	}

	// Arm only shard `target` and write into it until the crash fires.
	m.Heap(target).SetInjector(crash.NewNth(10))
	crashed := false
	for id := uint64(loadN); id < loadN+10_000 && !crashed; id++ {
		if (HashPartition{}).Shard(gen.Key(id), h) != target {
			continue
		}
		err := m.Insert(gen.Key(id), id)
		switch {
		case crash.IsCrash(err):
			crashed = true
		case err != nil:
			t.Fatal(err)
		default:
			committed[id] = id
		}
	}
	if !crashed {
		t.Fatal("injector never fired in target shard")
	}

	// The other shards accept writes while shard `target` is down.
	for id := uint64(20_000); id < 22_000; id++ {
		if (HashPartition{}).Shard(gen.Key(id), h) == target {
			continue
		}
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatalf("insert to healthy shard failed while shard %d was crashed: %v", target, err)
		}
		committed[id] = id
	}

	recovered, err := m.RecoverCrashed()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != target {
		t.Fatalf("RecoverCrashed replayed shards %v, want [%d]", recovered, target)
	}
	for i, n := range m.Recoveries() {
		want := uint64(0)
		if i == target {
			want = 1
		}
		if n != want {
			t.Fatalf("shard %d replayed %d times, want %d (recoveries %v)", i, n, want, m.Recoveries())
		}
	}

	// No committed key lost, and the recovered shard accepts writes again.
	for id, v := range committed {
		if got, ok := m.Lookup(gen.Key(id)); !ok || got != v {
			t.Fatalf("committed key %d lost after per-shard recovery: got %d,%v", id, got, ok)
		}
	}
	for id := uint64(30_000); id < 31_000; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatalf("insert after recovery: %v", err)
		}
	}
}

// TestHashFrontEnd: the sharded unordered front-end routes, conserves
// Len, and recovers per shard.
func TestHashFrontEnd(t *testing.T) {
	const n, h = 10_000, 4
	m, err := NewHash("P-CLHT", Options{Shards: h})
	if err != nil {
		t.Fatal(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < n; id++ {
		k := gen.Uint64(id) | 1
		if err := m.Insert(k, id); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for id := uint64(0); id < n; id++ {
		k := gen.Uint64(id) | 1
		if v, ok := m.Lookup(k); !ok || v != id {
			t.Fatalf("lookup %d: got %d,%v", id, v, ok)
		}
		holders := 0
		for i := 0; i < h; i++ {
			if _, ok := m.Shard(i).Lookup(k); ok {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("key %d present in %d shards", id, holders)
		}
	}
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Recoveries() {
		if c != 1 {
			t.Fatalf("full Recover counts %v, want all 1", m.Recoveries())
		}
	}
}

// TestShardedUpdateRoutes: Update routes to the owning shard (same
// shard as the original insert), rewrites in place, and leaves the
// cross-shard Len unchanged.
func TestShardedUpdateRoutes(t *testing.T) {
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := m.Insert(gen.Key(i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := m.Update(gen.Key(i), i+7_000_000); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != n {
		t.Fatalf("updates grew cross-shard Len to %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Lookup(gen.Key(i)); !ok || v != i+7_000_000 {
			t.Fatalf("lookup %d after update = %d,%v", i, v, ok)
		}
	}

	h, err := NewHash("P-CLHT", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	for i := uint64(1); i <= n; i++ {
		if err := h.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		if err := h.Update(i, i+7_000_000); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != n {
		t.Fatalf("hash updates grew cross-shard Len to %d, want %d", h.Len(), n)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := h.Lookup(i); !ok || v != i+7_000_000 {
			t.Fatalf("hash lookup %d after update = %d,%v", i, v, ok)
		}
	}
}

// TestNewOrderedUnknownName surfaces the registry error with the shard
// index attached.
func TestNewOrderedUnknownName(t *testing.T) {
	if _, err := NewOrdered("no-such-index", keys.RandInt, Options{Shards: 2}); err == nil {
		t.Fatal("want error for unknown index name")
	}
	if _, err := NewHash("no-such-index", Options{Shards: 2}); err == nil {
		t.Fatal("want error for unknown index name")
	}
}

// TestFrontEndImplementsCoreInterfaces pins the drop-in property the
// harness relies on.
func TestFrontEndImplementsCoreInterfaces(t *testing.T) {
	var _ core.OrderedIndex = (*Ordered)(nil)
	var _ core.HashIndex = (*Hash)(nil)
}

// TestEveryIndexSharded smoke-tests the front-end over the full registry.
func TestEveryIndexSharded(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)
	for _, name := range core.OrderedNames {
		m, err := NewOrdered(name, keys.RandInt, Options{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		for id := uint64(0); id < 500; id++ {
			if err := m.Insert(gen.Key(id), id); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for id := uint64(0); id < 500; id++ {
			if v, ok := m.Lookup(gen.Key(id)); !ok || v != id {
				t.Fatalf("%s: lookup %d got %d,%v", name, id, v, ok)
			}
		}
		if got := m.Scan(nil, 100, func([]byte, uint64) bool { return true }); got != 100 {
			t.Fatalf("%s: scan visited %d, want 100", name, got)
		}
	}
	for _, name := range core.HashNames {
		m, err := NewHash(name, Options{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		for id := uint64(0); id < 500; id++ {
			if err := m.Insert(gen.Uint64(id)|1, id); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for id := uint64(0); id < 500; id++ {
			if v, ok := m.Lookup(gen.Uint64(id) | 1); !ok || v != id {
				t.Fatalf("%s: lookup %d got %d,%v", name, id, v, ok)
			}
		}
	}
}

func ExampleOrdered() {
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 4})
	if err != nil {
		panic(err)
	}
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < 1000; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			panic(err)
		}
	}
	fmt.Println(m.NumShards(), m.Len(), m.PartitionerName())
	// Output: 4 1000 hash
}
