// Shard quarantine and graceful degradation: a serving front-end must
// survive one shard's image being unrecoverable. A shard enters
// quarantine when its recovery fails (RecoverShard/RecoverCrashed) or
// when a verifier reports its recovered image corrupt (Quarantine).
// Operations routed to a quarantined shard return a typed
// *ShardUnavailableError — matched by errors.Is(err,
// ErrShardUnavailable) — while every other shard keeps serving; scans
// skip the quarantined partition and are documented degraded.
// RetryShard re-attempts recovery under capped exponential backoff, so
// a transiently failing shard rejoins and a permanently damaged one
// does not consume the front-end in recovery loops.
package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
)

// ErrShardUnavailable is the sentinel matched by errors.Is for
// operations routed to a quarantined shard.
var ErrShardUnavailable = errors.New("shard unavailable")

// ShardUnavailableError reports an operation routed to a quarantined
// shard. It matches ErrShardUnavailable via errors.Is and unwraps to
// the quarantine cause.
type ShardUnavailableError struct {
	// Shard is the quarantined partition's index.
	Shard int
	// Cause is why the shard was quarantined (recovery error, verifier
	// verdict).
	Cause error
}

func (e *ShardUnavailableError) Error() string {
	return fmt.Sprintf("shard %d unavailable: %v", e.Shard, e.Cause)
}

// Unwrap exposes the quarantine cause to errors.Is/As chains.
func (e *ShardUnavailableError) Unwrap() error { return e.Cause }

// Is matches the ErrShardUnavailable sentinel.
func (e *ShardUnavailableError) Is(target error) bool { return target == ErrShardUnavailable }

// Retry backoff bounds: the first RetryShard failure blocks further
// attempts for RetryBackoffBase, doubling per failure up to
// RetryBackoffMax.
const (
	RetryBackoffBase = 50 * time.Millisecond
	RetryBackoffMax  = 5 * time.Second
)

// shardHealth is one shard's availability state. The quarantined flag
// is read on every routed operation, so it is an atomic separate from
// the mutex guarding the slow-path fields.
type shardHealth struct {
	quarantined atomic.Bool

	mu        sync.Mutex
	cause     error
	retries   int       // consecutive failed RetryShard attempts
	nextRetry time.Time // earliest next recovery attempt
}

// newHealth returns the per-shard health array sized for n shards.
func newHealth(n int) []shardHealth { return make([]shardHealth, n) }

// unavailable returns the typed routing error for shard i, or nil when
// the shard is serving. The fast path is one atomic load.
func (f *frontend[IX]) unavailable(i int) error {
	h := &f.health[i]
	if !h.quarantined.Load() {
		return nil
	}
	h.mu.Lock()
	cause := h.cause
	h.mu.Unlock()
	return &ShardUnavailableError{Shard: i, Cause: cause}
}

// Quarantine marks shard i unavailable with the given cause — recovery
// failure does this automatically; verifiers call it when readback
// reports the recovered image corrupt. Operations routed to the shard
// return *ShardUnavailableError until a RetryShard succeeds.
func (f *frontend[IX]) Quarantine(i int, cause error) {
	h := &f.health[i]
	h.mu.Lock()
	h.cause = cause
	h.retries = 0
	h.nextRetry = time.Time{} // first retry may run immediately
	h.mu.Unlock()
	h.quarantined.Store(true)
}

// Quarantined returns the indices of quarantined shards, in order.
func (f *frontend[IX]) Quarantined() []int {
	var out []int
	for i := range f.health {
		if f.health[i].quarantined.Load() {
			out = append(out, i)
		}
	}
	return out
}

// Degraded reports whether any shard is quarantined — the front-end is
// serving a subset of the key space.
func (f *frontend[IX]) Degraded() bool {
	for i := range f.health {
		if f.health[i].quarantined.Load() {
			return true
		}
	}
	return false
}

// QuarantineCause returns why shard i is quarantined (nil when it is
// serving).
func (f *frontend[IX]) QuarantineCause(i int) error {
	h := &f.health[i]
	if !h.quarantined.Load() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cause
}

// RetryShard re-attempts recovery of a quarantined shard under capped
// exponential backoff with full-range jitter: the first attempt may
// run immediately; after each failure the backoff ceiling doubles
// (RetryBackoffBase up to RetryBackoffMax) and the actual wait is
// drawn uniformly from [0, ceiling] — full jitter, so many shards
// quarantined by one event do not retry in lockstep. Attempts inside
// the drawn window return *ShardUnavailableError without touching the
// shard. On success the shard leaves quarantine and serves again; a
// no-op on a healthy shard. It must not be called concurrently with
// index operations on shard i.
func (f *frontend[IX]) RetryShard(i int) error {
	h := &f.health[i]
	if !h.quarantined.Load() {
		return nil
	}
	h.mu.Lock()
	now := f.clock()
	if now.Before(h.nextRetry) {
		err := &ShardUnavailableError{
			Shard: i,
			Cause: fmt.Errorf("retry backoff (next attempt in %v): %w", h.nextRetry.Sub(now), h.cause),
		}
		h.mu.Unlock()
		return err
	}
	h.mu.Unlock()

	f.shards[i].recoveries++
	if err := f.shards[i].idx.Recover(); err != nil {
		h.mu.Lock()
		h.cause = err
		backoff := RetryBackoffBase << h.retries
		if backoff > RetryBackoffMax || backoff <= 0 {
			backoff = RetryBackoffMax
		}
		h.retries++
		h.nextRetry = f.clock().Add(f.drawJitter(backoff))
		h.mu.Unlock()
		return &ShardUnavailableError{Shard: i, Cause: err}
	}
	h.mu.Lock()
	h.cause = nil
	h.retries = 0
	h.nextRetry = time.Time{}
	h.mu.Unlock()
	h.quarantined.Store(false)
	return nil
}

// clock returns the front-end's time source (injectable for backoff
// tests).
func (f *frontend[IX]) clock() time.Time {
	if f.now != nil {
		return f.now()
	}
	return time.Now()
}

// drawJitter draws the actual retry wait uniformly from [0, max] — the
// full-jitter strategy, which decorrelates retry storms better than
// partial jitter because the window floor is zero. The source is
// seeded by Options.RetrySeed (deterministic, for tests) or lazily
// from the wall clock, and is mutex-guarded: retries of different
// shards may race.
func (f *frontend[IX]) drawJitter(max time.Duration) time.Duration {
	j := f.jitter
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(j.rng.Int63n(int64(max) + 1))
}

// PowerCycleShard materialises a lossy post-power-loss image on shard
// i's heap (pmem.Heap.PowerCycle): stores that never reached a
// clwb+fence revert, unfenced write-backs follow the policy. The shard
// heaps must have been built with Options.Heap.Shadow. The caller then
// recovers the shard (RecoverShard or RetryShard), exactly as a
// restart of that PM pool would. It must not be called concurrently
// with operations on shard i.
func (f *frontend[IX]) PowerCycleShard(i int, policy pmem.Policy, seed int64) pmem.CycleReport {
	return f.shards[i].heap.PowerCycle(policy, seed)
}
