package shard

import (
	"math"

	"repro/internal/keys"
)

// Partitioner maps a byte-string key to one of `shards` shards. The
// mapping must be deterministic and total: every key routes to exactly
// one shard in [0, shards), every time. Routing runs on the operation
// hot path, so implementations should be allocation-free.
type Partitioner interface {
	// Shard returns the shard index for key, in [0, shards).
	Shard(key []byte, shards int) int
	// Name identifies the partitioner in reports and flags.
	Name() string
}

// HashPartition is the default partitioner: a 64-bit FNV-1a hash of the
// whole key, finalised with keys.Mix64 and reduced modulo the shard
// count. It balances any key population (including the skewed prefixes
// of YCSB "user..." string keys) at the cost of scattering adjacent keys
// across shards, which makes range scans merge across all shards.
type HashPartition struct{}

// Shard implements Partitioner.
func (HashPartition) Shard(key []byte, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(keys.Mix64(h) % uint64(shards))
}

// Name implements Partitioner.
func (HashPartition) Name() string { return "hash" }

// RangePartition splits the key space into `shards` equal contiguous
// ranges of the first eight key bytes (big-endian, zero-padded). It is
// order-preserving — adjacent keys land in the same or adjacent shard,
// so range scans touch few shards — but it only balances populations
// whose leading bytes are uniform (e.g. the RandInt keys, which are
// Mix64-scrambled). YCSB string keys all share the "user" prefix and
// would degenerate to one shard; use HashPartition for those.
type RangePartition struct{}

// Shard implements Partitioner.
func (RangePartition) Shard(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v <<= 8
		if i < len(key) {
			v |= uint64(key[i])
		}
	}
	// Divide 2^64 into `shards` equal ranges. width = ceil(2^64 / shards),
	// so v/width < shards for every v.
	width := math.MaxUint64/uint64(shards) + 1
	return int(v / width)
}

// Name implements Partitioner.
func (RangePartition) Name() string { return "range" }

// OrderPreserving implements OrderPreserver: byte-string order implies
// 8-byte-prefix order, so shard indices never decrease along a scan.
func (RangePartition) OrderPreserving() bool { return true }

// OrderPreserver is implemented by partitioners that guarantee shard
// order equals key order: key a <= key b implies Shard(a) <= Shard(b)
// for every shard count. Scans over such partitioners skip the k-way
// merge entirely and stream shard by shard with no buffering.
type OrderPreserver interface {
	OrderPreserving() bool
}

// orderPreserving reports whether p declares the order-preserving
// guarantee.
func orderPreserving(p Partitioner) bool {
	op, ok := p.(OrderPreserver)
	return ok && op.OrderPreserving()
}

// Partitioner64 is Partitioner for the unordered indexes, which key on
// non-zero uint64 values directly.
type Partitioner64 interface {
	// Shard returns the shard index for key, in [0, shards).
	Shard(key uint64, shards int) int
	// Name identifies the partitioner in reports and flags.
	Name() string
}

// HashPartition64 is the default uint64 partitioner: keys.Mix64 reduced
// modulo the shard count.
type HashPartition64 struct{}

// Shard implements Partitioner64.
func (HashPartition64) Shard(key uint64, shards int) int {
	return int(keys.Mix64(key) % uint64(shards))
}

// Name implements Partitioner64.
func (HashPartition64) Name() string { return "hash" }

// ByName returns the named byte-key partitioner ("hash" or "range"),
// for flag parsing in the command-line harnesses.
func ByName(name string) (Partitioner, bool) {
	switch name {
	case "hash":
		return HashPartition{}, true
	case "range":
		return RangePartition{}, true
	default:
		return nil, false
	}
}
