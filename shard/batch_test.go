package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/group"
	"repro/internal/keys"
	"repro/internal/pmem"
)

func batchOrdered(t *testing.T, shards int, heap pmem.Options) *Ordered {
	t.Helper()
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: shards, Heap: heap})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatchDurableAndReadable: an acked batch is fully readable and
// every shard's tracker is clean at the ack point.
func TestBatchDurableAndReadable(t *testing.T) {
	m := batchOrdered(t, 4, pmem.Options{Track: true})
	defer m.Release()
	for i := 0; i < m.NumShards(); i++ {
		m.Heap(i).Tracker().Reset()
	}
	gen := keys.NewGenerator(keys.RandInt)

	const B = 64
	ops := make([]group.ByteOp, B)
	for i := range ops {
		ops[i] = group.ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)}
	}
	if err := m.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumShards(); i++ {
		if v := m.Heap(i).Tracker().Check(); len(v) != 0 {
			t.Errorf("shard %d: %d undurable lines after ack", i, len(v))
		}
	}
	for i := 0; i < B; i++ {
		if v, ok := m.Lookup(gen.Key(uint64(i))); !ok || v != uint64(i) {
			t.Errorf("id %d: ok=%v v=%d", i, ok, v)
		}
	}
	if m.Len() != B {
		t.Errorf("Len = %d, want %d", m.Len(), B)
	}
}

// TestBatchOfOneCounterParity: a batch that lands one op per shard is
// byte-for-byte the unbatched path in every counter.
func TestBatchOfOneCounterParity(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)
	const N = 8 // one op per shard at most, many shards

	a := batchOrdered(t, 4, pmem.Options{})
	defer a.Release()
	b := batchOrdered(t, 4, pmem.Options{})
	defer b.Release()

	for i := 0; i < N; i++ {
		key := gen.Key(uint64(i))
		beforeA := a.Stats()
		if err := a.Insert(key, uint64(i)); err != nil {
			t.Fatal(err)
		}
		dA := a.Stats().Sub(beforeA)

		beforeB := b.Stats()
		if err := b.ApplyBatch([]group.ByteOp{{Key: key, Value: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
		dB := b.Stats().Sub(beforeB)
		if dA != dB {
			t.Fatalf("op %d: unbatched delta %+v != batch-of-1 delta %+v", i, dA, dB)
		}
	}
}

// TestBatchSavesFences: a same-shard update batch pays one fence per
// sub-batch instead of one per op.
func TestBatchSavesFences(t *testing.T) {
	m := batchOrdered(t, 1, pmem.Options{})
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	const B = 32
	for i := 0; i < B; i++ {
		if err := m.Insert(gen.Key(uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	keysB := make([][]byte, B)
	vals := make([]uint64, B)
	for i := range keysB {
		keysB[i], vals[i] = gen.Key(uint64(i)), uint64(i)+100
	}

	before := m.Stats()
	for i := range keysB {
		if err := m.Update(keysB[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	unbatched := m.Stats().Sub(before).Fence

	before = m.Stats()
	if err := m.UpdateBatch(keysB, vals); err != nil {
		t.Fatal(err)
	}
	batched := m.Stats().Sub(before).Fence
	if batched != 1 {
		t.Errorf("batched fences = %d, want 1 (single sub-batch barrier)", batched)
	}
	if batched >= unbatched {
		t.Errorf("batched fences = %d, not < unbatched %d", batched, unbatched)
	}
	for i := range keysB {
		if v, _ := m.Lookup(keysB[i]); v != vals[i] {
			t.Errorf("key %d: v = %d, want %d", i, v, vals[i])
		}
	}
}

// TestBatchQuarantinedShardPartialFailure: a batch spanning a
// quarantined shard fails typed and partially — the healthy
// sub-batches commit durably, the quarantined one is rejected whole.
func TestBatchQuarantinedShardPartialFailure(t *testing.T) {
	m := batchOrdered(t, 4, pmem.Options{Track: true})
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)

	const bad = 2
	cause := fmt.Errorf("verifier: shard image corrupt")
	m.Quarantine(bad, cause)

	const B = 64
	ops := make([]group.ByteOp, B)
	routed := make([]int, B)
	badOps := 0
	for i := range ops {
		key := gen.Key(uint64(i))
		ops[i] = group.ByteOp{Key: key, Value: uint64(i)}
		routed[i] = m.route(key)
		if routed[i] == bad {
			badOps++
		}
	}
	if badOps == 0 {
		t.Fatal("test needs at least one op routed to the quarantined shard")
	}

	err := m.ApplyBatch(ops)
	if err == nil {
		t.Fatal("batch spanning a quarantined shard must fail")
	}
	if !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("errors.Is(err, ErrShardUnavailable) = false; err = %v", err)
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BatchError", err)
	}
	if len(be.Failed) != 1 {
		t.Fatalf("failed sub-batches = %d, want 1", len(be.Failed))
	}
	sub := be.Failed[0]
	if sub.Shard != bad || sub.Applied != 0 || len(sub.OpIndices) != badOps {
		t.Errorf("sub-batch = {Shard:%d Applied:%d |OpIndices|:%d}, want {%d 0 %d}",
			sub.Shard, sub.Applied, len(sub.OpIndices), bad, badOps)
	}
	var sue *ShardUnavailableError
	if !errors.As(err, &sue) || sue.Shard != bad {
		t.Errorf("no *ShardUnavailableError for shard %d in chain", bad)
	}

	// Healthy sub-batches: durable (tracker-clean) and readable.
	for i := 0; i < m.NumShards(); i++ {
		if i == bad {
			continue
		}
		if v := m.Heap(i).Tracker().Check(); len(v) != 0 {
			t.Errorf("healthy shard %d: %d undurable lines", i, len(v))
		}
	}
	for i := range ops {
		v, ok, lerr := m.LookupChecked(ops[i].Key)
		if routed[i] == bad {
			if lerr == nil {
				t.Errorf("op %d on quarantined shard: lookup did not error", i)
			}
			continue
		}
		if lerr != nil || !ok || v != uint64(i) {
			t.Errorf("op %d: v=%d ok=%v err=%v", i, v, ok, lerr)
		}
	}
}

// TestBatchObservedIndexTranslation: the observer sees original batch
// indices, each op once plus one barrier repeat per sub-batch.
func TestBatchObservedIndexTranslation(t *testing.T) {
	m := batchOrdered(t, 4, pmem.Options{})
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)

	const B = 32
	ops := make([]group.ByteOp, B)
	for i := range ops {
		ops[i] = group.ByteOp{Key: gen.Key(uint64(i)), Value: uint64(i)}
	}
	counts := make([]int, B)
	if err := m.ApplyBatchObserved(ops, func(i int) { counts[i]++ }); err != nil {
		t.Fatal(err)
	}
	extra := 0
	for i, c := range counts {
		switch c {
		case 1:
		case 2:
			extra++ // the sub-batch's last op absorbs its barrier callback
		default:
			t.Errorf("op %d observed %d times, want 1 or 2", i, c)
		}
	}
	// One barrier repeat per sub-batch that actually grouped (>= 2 ops);
	// single-op sub-batches also double-call per the group contract.
	if extra < 1 || extra > m.NumShards() {
		t.Errorf("barrier repeats = %d, want 1..%d", extra, m.NumShards())
	}
}

// TestDeferredCombiner: queued writes survive caller key-buffer reuse,
// auto-flush at the limit, and a final Flush commits the tail.
func TestDeferredCombiner(t *testing.T) {
	m := batchOrdered(t, 2, pmem.Options{})
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	d := NewDeferred(m, 8)

	const N = 29 // deliberately not a multiple of the limit
	buf := make([]byte, 0, 16)
	for i := 0; i < N; i++ {
		buf = gen.AppendKey(buf[:0], uint64(i)) // reused buffer: Deferred must copy
		if err := d.Insert(buf, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.HasInserts() {
		t.Error("HasInserts = false with queued inserts")
	}
	if d.Pending() != N%8 {
		t.Errorf("Pending = %d, want %d (auto-flush at limit)", d.Pending(), N%8)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 || d.HasInserts() {
		t.Errorf("after Flush: Pending=%d HasInserts=%v", d.Pending(), d.HasInserts())
	}
	for i := 0; i < N; i++ {
		if v, ok := m.Lookup(gen.Key(uint64(i))); !ok || v != uint64(i) {
			t.Errorf("id %d: ok=%v v=%d (clobbered by buffer reuse?)", i, ok, v)
		}
	}

	// Updates queue too, and don't count as inserts.
	if err := d.Update(gen.Key(3), 1003); err != nil {
		t.Fatal(err)
	}
	if d.HasInserts() {
		t.Error("HasInserts = true with only an update queued")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Lookup(gen.Key(3)); v != 1003 {
		t.Errorf("updated v = %d, want 1003", v)
	}
}

// TestDeferredHashCombiner: the unordered combiner round-trips.
func TestDeferredHashCombiner(t *testing.T) {
	m, err := NewHash("P-CLHT", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	d := NewDeferredHash(m, 8)

	const N = 21
	for i := 0; i < N; i++ {
		if err := d.Insert(gen.Uint64(uint64(i))|1, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if v, ok := m.Lookup(gen.Uint64(uint64(i)) | 1); !ok || v != uint64(i) {
			t.Errorf("id %d: ok=%v v=%d", i, ok, v)
		}
	}
	if m.Len() != N {
		t.Errorf("Len = %d, want %d", m.Len(), N)
	}
}

// TestHashBatchSavesFences: the unordered batch path coalesces fences
// per shard too.
func TestHashBatchSavesFences(t *testing.T) {
	m, err := NewHash("P-CLHT", Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	const B = 32
	ks := make([]uint64, B)
	vs := make([]uint64, B)
	for i := range ks {
		ks[i], vs[i] = gen.Uint64(uint64(i))|1, uint64(i)
	}
	if err := m.InsertBatch(ks, vs); err != nil {
		t.Fatal(err)
	}

	before := m.Stats()
	for i := range ks {
		if err := m.Update(ks[i], vs[i]+100); err != nil {
			t.Fatal(err)
		}
	}
	unbatched := m.Stats().Sub(before).Fence

	for i := range vs {
		vs[i] += 200
	}
	before = m.Stats()
	if err := m.UpdateBatch(ks, vs); err != nil {
		t.Fatal(err)
	}
	batched := m.Stats().Sub(before).Fence
	if batched >= unbatched {
		t.Errorf("batched fences = %d, not < unbatched %d", batched, unbatched)
	}
}
