package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/crash"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

// newReshardOrdered builds a sharded P-ART front-end with resharding
// enabled (shadow heaps so crash tests can power-cycle).
func newReshardOrdered(t *testing.T, h int, part Partitioner, shadow bool) *Ordered {
	t.Helper()
	m, err := NewOrdered("P-ART", keys.RandInt, Options{
		Shards:      h,
		Partitioner: part,
		Heap:        pmem.Options{Shadow: shadow},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableResharding(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTableRoutingMatchesPartitioner: the initial routing table must be
// bit-identical to the stateless partitioner, for both table kinds and
// many shard counts — EnableResharding may not move a single key.
func TestTableRoutingMatchesPartitioner(t *testing.T) {
	gen := keys.NewGenerator(keys.RandInt)
	sgen := keys.NewGenerator(keys.YCSBString)
	for _, part := range []Partitioner{HashPartition{}, RangePartition{}} {
		for _, h := range []int{1, 2, 3, 4, 7, 8, 16} {
			m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: h, Partitioner: part})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.EnableResharding(); err != nil {
				t.Fatal(err)
			}
			for id := uint64(0); id < 20_000; id++ {
				for _, key := range [][]byte{gen.Key(id), sgen.Key(id)} {
					want := part.Shard(key, h)
					if got := m.Route(key); got != want {
						t.Fatalf("%s h=%d key %x: table routes %d, partitioner %d", part.Name(), h, key, got, want)
					}
				}
			}
			m.Release()
		}
	}
}

// TestTableRoutingMatchesPartitioner64: same for the unordered
// front-end's slot table.
func TestTableRoutingMatchesPartitioner64(t *testing.T) {
	for _, h := range []int{1, 2, 3, 5, 8, 16} {
		m, err := NewHash("P-CLHT", Options{Shards: h})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.EnableResharding(); err != nil {
			t.Fatal(err)
		}
		for id := uint64(0); id < 50_000; id++ {
			key := id * 0x9e3779b97f4a7c15
			want := (HashPartition64{}).Shard(key, h)
			if got := m.Route(key); got != want {
				t.Fatalf("h=%d key %#x: table routes %d, partitioner %d", h, key, got, want)
			}
		}
		m.Release()
	}
}

// checkOrderedContent verifies every expected key is readable with its
// expected value and that a merged scan yields exactly the expected keys
// in strictly ascending order (deduplicating any migration residue).
func checkOrderedContent(t *testing.T, m *Ordered, gen *keys.Generator, want map[uint64]uint64) {
	t.Helper()
	for id, v := range want {
		got, ok, err := m.LookupChecked(gen.Key(id))
		if err != nil || !ok || got != v {
			t.Fatalf("key %d: Lookup = %d, %v, %v; want %d", id, got, ok, err, v)
		}
	}
	seen := 0
	var prev []byte
	m.Scan(nil, len(want)+16, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order or duplicate: %x after %x", k, prev)
		}
		prev = append(prev[:0], k...)
		seen++
		return true
	})
	if seen != len(want) {
		t.Fatalf("scan saw %d unique keys, want %d", seen, len(want))
	}
}

// checkStatsConserved asserts the exact cross-shard conservation law:
// the front-end total equals the field-wise sum of per-shard stats.
func checkStatsConserved(t *testing.T, total pmem.Stats, per []pmem.Stats) {
	t.Helper()
	var sum pmem.Stats
	for _, s := range per {
		sum = sum.Add(s)
	}
	if sum != total {
		t.Fatalf("Stats not conserved: total %+v, shard sum %+v", total, sum)
	}
}

// TestMigrateSlotsMovesKeys: migrate half of shard 0's slots to shard 1
// under no traffic; every key stays readable, the merged scan is
// duplicate-free, routing agrees with shard placement, Stats conserve,
// and the donor's residue is gone (Len is exact).
func TestMigrateSlotsMovesKeys(t *testing.T) {
	const n, h = 4_000, 4
	m := newReshardOrdered(t, h, HashPartition{}, false)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	want := make(map[uint64]uint64, n)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		want[id] = id
	}
	donorLen := m.Shard(0).Len()
	slots := m.SlotsOf(0)
	moved := slots[:len(slots)/2]
	if err := m.MigrateSlots(0, 1, moved, 64); err != nil {
		t.Fatal(err)
	}
	if v := m.TableVersion(); v == 0 {
		t.Fatal("table version did not advance across flip")
	}
	for _, j := range moved {
		for _, owned := range m.SlotsOf(0) {
			if owned == j {
				t.Fatalf("slot %d still owned by donor after flip", j)
			}
		}
	}
	if got := m.Shard(0).Len(); got >= donorLen {
		t.Fatalf("donor Len %d not reduced from %d (residue not swept?)", got, donorLen)
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	checkOrderedContent(t, m, gen, want)
	checkStatsConserved(t, m.Stats(), m.ShardStats())

	// Every key must live on exactly the shard the flipped table routes
	// it to.
	for id := uint64(0); id < n; id += 13 {
		key := gen.Key(id)
		s := m.Route(key)
		if _, ok := m.Shard(s).Lookup(key); !ok {
			t.Fatalf("key %d routed to shard %d but absent there", id, s)
		}
	}
}

// TestMigrateRangeMovesKeys: range-partitioned front-end, move the
// upper half of shard 0's span to the last shard.
func TestMigrateRangeMovesKeys(t *testing.T) {
	const n, h = 4_000, 4
	m := newReshardOrdered(t, h, RangePartition{}, false)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	want := make(map[uint64]uint64, n)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		want[id] = id
	}
	width := ^uint64(0)/h + 1
	lo, hi := width/2, width-1 // upper half of shard 0's span
	if err := m.MigrateRange(0, h-1, lo, hi, 64); err != nil {
		t.Fatal(err)
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	checkOrderedContent(t, m, gen, want)
	checkStatsConserved(t, m.Stats(), m.ShardStats())
	for id := uint64(0); id < n; id += 7 {
		key := gen.Key(id)
		s := m.Route(key)
		if _, ok := m.Shard(s).Lookup(key); !ok {
			t.Fatalf("key %d routed to shard %d but absent there", id, s)
		}
	}
}

// TestMigrateHashMovesKeys: unordered front-end slot migration via the
// HashRanger enumeration path.
func TestMigrateHashMovesKeys(t *testing.T) {
	const n, h = 4_000, 4
	m, err := NewHash("P-CLHT", Options{Shards: h})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := m.EnableResharding(); err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= n; id++ {
		if err := m.Insert(id*0x9e3779b97f4a7c15, id); err != nil {
			t.Fatal(err)
		}
	}
	slots := m.SlotsOf(2)
	if err := m.MigrateSlots(2, 3, slots[:len(slots)/2], 64); err != nil {
		t.Fatal(err)
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for id := uint64(1); id <= n; id++ {
		key := id * 0x9e3779b97f4a7c15
		v, ok, err := m.LookupChecked(key)
		if err != nil || !ok || v != id {
			t.Fatalf("key %#x: Lookup = %d, %v, %v; want %d", key, v, ok, err, id)
		}
		if _, ok := m.Shard(m.Route(key)).Lookup(key); !ok {
			t.Fatalf("key %#x absent from its routed shard", key)
		}
	}
	checkStatsConserved(t, m.Stats(), m.ShardStats())
}

// TestMigrateUnderConcurrentWriters runs point writes and batch writes
// from several goroutines while slots migrate between shards, then
// verifies every acknowledged final value — the double-applied handoff
// window must never lose or resurrect a write. Run with -race.
func TestMigrateUnderConcurrentWriters(t *testing.T) {
	const (
		h       = 4
		writers = 4
		perW    = 1_500
	)
	m := newReshardOrdered(t, h, HashPartition{}, false)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)

	// Preload so the donor has something to copy.
	for id := uint64(0); id < 2_000; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := keys.NewGenerator(keys.RandInt)
			for i := 0; i < perW; i++ {
				id := uint64(10_000 + w*perW + i)
				if err := m.Insert(g.Key(id), id); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if err := m.Update(g.Key(id), id+1); err != nil {
					t.Errorf("update %d: %v", id, err)
					return
				}
				// Overwrite a preloaded (possibly migrating) key too.
				if err := m.Update(g.Key(id%2_000), id); err != nil {
					t.Errorf("update hot %d: %v", id%2_000, err)
					return
				}
			}
		}(w)
	}

	// Migrate while the writers run: a few moves between distinct pairs.
	for mv := 0; mv < 4; mv++ {
		donor := mv % h
		recipient := (mv + 1) % h
		slots := m.SlotsOf(donor)
		if len(slots) < 2 {
			continue
		}
		if err := m.MigrateSlots(donor, recipient, slots[:len(slots)/4+1], 32); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	// Every writer-owned key must hold its final value.
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			id := uint64(10_000 + w*perW + i)
			v, ok, err := m.LookupChecked(gen.Key(id))
			if err != nil || !ok || v != id+1 {
				t.Fatalf("key %d: Lookup = %d, %v, %v; want %d", id, v, ok, err, id+1)
			}
		}
	}
	// Scan must be duplicate-free and exactly sized.
	total := 2_000 + writers*perW
	seen := 0
	var prev []byte
	m.Scan(nil, total+16, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order or duplicate after migration: %x", k)
		}
		prev = append(prev[:0], k...)
		seen++
		return true
	})
	if seen != total {
		t.Fatalf("scan saw %d unique keys, want %d", seen, total)
	}
	checkStatsConserved(t, m.Stats(), m.ShardStats())
}

// TestMigrateCrashAtCopyAborts: a crash injected at reshard.copy.applied
// (on the recipient) aborts the migration — the donor keeps ownership,
// no acknowledged key is lost, and recovery replays only the recipient.
func TestMigrateCrashAtCopyAborts(t *testing.T) {
	const n, h = 2_000, 4
	m := newReshardOrdered(t, h, HashPartition{}, true)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	want := make(map[uint64]uint64, n)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		want[id] = id
	}
	m.Heap(1).SetInjector(crash.NewAtSite(SiteCopyApplied, 2))
	slots := m.SlotsOf(0)
	err := m.MigrateSlots(0, 1, slots[:len(slots)/2], 64)
	if !crash.IsCrash(err) {
		t.Fatalf("Migrate error = %v, want crash", err)
	}
	if got := m.SlotsOf(0); len(got) != len(slots) {
		t.Fatalf("donor owns %d slots after aborted migration, want unchanged %d", len(got), len(slots))
	}
	if m.Resharding() && m.rt.Load().mig != nil {
		t.Fatal("handoff window left open after abort")
	}
	m.PowerCycleShard(1, pmem.PolicyTorn, 42)
	recovered, rerr := m.RecoverCrashed()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(recovered) != 1 || recovered[0] != 1 {
		t.Fatalf("recovered %v, want [1]", recovered)
	}
	for i, c := range m.Recoveries() {
		if want := uint64(0); i == 1 {
			want = 1
		} else if c != want {
			t.Fatalf("shard %d replayed %d times, want %d (healthy shards must not replay)", i, c, want)
		}
	}
	checkOrderedContent(t, m, gen, want)

	// The aborted migration must be retryable to completion.
	if err := m.MigrateSlots(0, 1, slots[:len(slots)/2], 64); err != nil {
		t.Fatal(err)
	}
	checkOrderedContent(t, m, gen, want)
}

// TestMigrateCrashAtFlipStands: a crash injected at
// reshard.flip.published (on the donor) leaves the flip in force — the
// recipient owns the keys, the skipped residue sweep costs capacity
// only, and recovery replays only the donor.
func TestMigrateCrashAtFlipStands(t *testing.T) {
	const n, h = 2_000, 4
	m := newReshardOrdered(t, h, HashPartition{}, true)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	want := make(map[uint64]uint64, n)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		want[id] = id
	}
	ver := m.TableVersion()

	m.Heap(0).SetInjector(crash.NewAtSite(SiteFlipPublished, 1))
	slots := m.SlotsOf(0)
	moved := slots[:len(slots)/2]
	err := m.MigrateSlots(0, 1, moved, 64)
	if !crash.IsCrash(err) {
		t.Fatalf("Migrate error = %v, want crash", err)
	}
	if got := m.TableVersion(); got <= ver {
		t.Fatalf("table version %d after flip crash, want > %d (flip must stand)", got, ver)
	}
	for _, j := range moved {
		for _, owned := range m.SlotsOf(0) {
			if owned == j {
				t.Fatalf("slot %d still owned by donor after published flip", j)
			}
		}
	}
	m.PowerCycleShard(0, pmem.PolicyTorn, 7)
	recovered, rerr := m.RecoverCrashed()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(recovered) != 1 || recovered[0] != 0 {
		t.Fatalf("recovered %v, want [0]", recovered)
	}
	// Donor residue survived (sweep skipped), so Len over-counts, but
	// the deduplicating scan and routed lookups must both be exact.
	checkOrderedContent(t, m, gen, want)
	checkStatsConserved(t, m.Stats(), m.ShardStats())
}

// TestRebalanceImprovesSkew: drive a zipfian(0.99) read workload at a
// hash-sharded front-end, then Rebalance; the measured per-shard load
// imbalance projected by the flipped table must improve at least 2×
// over the static hash assignment.
func TestRebalanceImprovesSkew(t *testing.T) {
	const (
		n   = 4_096
		h   = 8
		ops = 200_000
	)
	m := newReshardOrdered(t, h, HashPartition{}, false)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	sampler := ycsb.Zipfian{Theta: 0.99}.NewSampler(n, rand.New(rand.NewSource(1)))
	for i := 0; i < ops; i++ {
		m.Lookup(gen.Key(sampler.Next()))
	}

	rep, err := m.Rebalance(RebalanceOptions{Tolerance: 1.05, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) == 0 {
		t.Fatal("rebalancer made no moves on a zipfian-skewed table")
	}
	t.Logf("imbalance %.3f -> %.3f in %d moves", rep.Before, rep.After, len(rep.Moves))
	if rep.Before < 1.3 {
		t.Fatalf("zipfian load produced imbalance %.3f; workload not skewed enough to test", rep.Before)
	}
	if excess, residual := rep.Before-1, rep.After-1; residual > excess/2 {
		t.Fatalf("rebalance improved excess imbalance only %.3f -> %.3f, want >= 2x", excess, residual)
	}
	// The moved keys must actually be served by their new shards.
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for id := uint64(0); id < n; id++ {
		key := gen.Key(id)
		if _, ok := m.Shard(m.Route(key)).Lookup(key); !ok {
			t.Fatalf("key %d absent from its routed shard after rebalance", id)
		}
	}
}

// TestRebalanceRange: the range planner splits the hottest span and
// moves measured load off the hot shard.
func TestRebalanceRange(t *testing.T) {
	const n, h = 4_096, 4
	m := newReshardOrdered(t, h, RangePartition{}, false)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer keys that land in shard 0's span (top bits 00).
	hot := 0
	for id := uint64(0); hot < 50_000; id++ {
		key := gen.Key(id % n)
		if m.Route(key) == 0 {
			m.Lookup(key)
			hot++
		}
	}
	rep, err := m.Rebalance(RebalanceOptions{MaxMoves: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) == 0 || !rep.Moves[0].Ranged || rep.Moves[0].Donor != 0 {
		t.Fatalf("expected a range move off shard 0, got %+v", rep.Moves)
	}
	if rep.After >= rep.Before {
		t.Fatalf("imbalance did not improve: %.3f -> %.3f", rep.Before, rep.After)
	}
	want := make(map[uint64]uint64, n)
	for id := uint64(0); id < n; id++ {
		want[id] = id
	}
	checkOrderedContent(t, m, gen, want)
}

// TestLoadReportEpochs: LoadReport returns per-epoch deltas that sum to
// the cumulative op counts, and Imbalance reflects a skewed stream.
func TestLoadReportEpochs(t *testing.T) {
	const h = 4
	m := newReshardOrdered(t, h, HashPartition{}, false)
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	for id := uint64(0); id < 1_000; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	r1 := m.LoadReport()
	if r1.Epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", r1.Epoch)
	}
	if got := r1.TotalOps(); got != 1_000 {
		t.Fatalf("epoch 1 ops = %d, want 1000", got)
	}
	// Second epoch: hammer one key; the delta must isolate it.
	hotKey := gen.Key(3)
	for i := 0; i < 5_000; i++ {
		m.Lookup(hotKey)
	}
	r2 := m.LoadReport()
	if r2.Epoch != 2 {
		t.Fatalf("second epoch = %d, want 2", r2.Epoch)
	}
	if got := r2.TotalOps(); got != 5_000 {
		t.Fatalf("epoch 2 ops = %d, want 5000 (delta, not cumulative)", got)
	}
	if r2.Imbalance() < float64(h)*0.99 {
		t.Fatalf("single-key epoch imbalance = %.3f, want ~%d", r2.Imbalance(), h)
	}
	if r2.MaxShard() != m.Route(hotKey) {
		t.Fatalf("MaxShard = %d, want hot shard %d", r2.MaxShard(), m.Route(hotKey))
	}
}

// TestMigrateValidation: the migration entry points reject nonsense.
func TestMigrateValidation(t *testing.T) {
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if err := m.MigrateSlots(0, 1, []int{0}, 0); !errors.Is(err, ErrReshardingDisabled) {
		t.Fatalf("migrate before enable = %v, want ErrReshardingDisabled", err)
	}
	if err := m.EnableResharding(); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableResharding(); err != nil {
		t.Fatalf("EnableResharding not idempotent: %v", err)
	}
	cases := []error{
		m.MigrateSlots(0, 0, []int{0}, 0),       // donor == recipient
		m.MigrateSlots(0, 9, []int{0}, 0),       // recipient out of range
		m.MigrateSlots(0, 1, nil, 0),            // no slots
		m.MigrateSlots(0, 1, []int{1}, 0),       // slot owned by shard 1
		m.MigrateSlots(0, 1, []int{1 << 20}, 0), // slot out of range
		m.MigrateRange(0, 1, 10, 20, 0),         // range op on slot table
	}
	for i, err := range cases {
		if err == nil {
			t.Fatalf("case %d: invalid migration accepted", i)
		}
	}

	r, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: 4, Partitioner: RangePartition{}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if err := r.EnableResharding(); err != nil {
		t.Fatal(err)
	}
	width := ^uint64(0)/4 + 1
	if err := r.MigrateRange(0, 1, width/2, width+5, 0); err == nil {
		t.Fatal("range crossing a foreign span accepted")
	}
	if err := r.MigrateRange(0, 1, 20, 10, 0); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := r.MigrateSlots(0, 1, []int{0}, 0); err == nil {
		t.Fatal("slot op on range table accepted")
	}
}

// TestRecoverCrashedParallel: crash several shards at once; the
// parallel sweep recovers all of them, reports them in shard order, and
// replays no healthy shard.
func TestRecoverCrashedParallel(t *testing.T) {
	const n, h = 3_000, 8
	m, err := NewOrdered("P-ART", keys.RandInt, Options{Shards: h, Heap: pmem.Options{Shadow: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	gen := keys.NewGenerator(keys.RandInt)
	committed := make(map[uint64]uint64, n)
	for id := uint64(0); id < n; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
		committed[id] = id
	}
	victims := []int{1, 4, 6}
	for _, s := range victims {
		m.Heap(s).SetInjector(crash.NewNth(5))
	}
	crashed := map[int]bool{}
	for id := uint64(n); id < n+50_000 && len(crashed) < len(victims); id++ {
		key := gen.Key(id)
		s := m.Route(key)
		if crashed[s] {
			continue
		}
		err := m.Insert(key, id)
		switch {
		case crash.IsCrash(err):
			crashed[s] = true
		case err != nil:
			t.Fatal(err)
		default:
			committed[id] = id
		}
	}
	if len(crashed) != len(victims) {
		t.Fatalf("crashed %v, want all of %v", crashed, victims)
	}
	for _, s := range victims {
		m.PowerCycleShard(s, pmem.PolicyRevert, int64(s))
	}
	recovered, rerr := m.RecoverCrashed()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if fmt.Sprint(recovered) != fmt.Sprint(victims) {
		t.Fatalf("recovered %v, want %v (deterministic shard order)", recovered, victims)
	}
	for i, c := range m.Recoveries() {
		want := uint64(0)
		for _, s := range victims {
			if s == i {
				want = 1
			}
		}
		if c != want {
			t.Fatalf("shard %d replayed %d times, want %d", i, c, want)
		}
	}
	for id, v := range committed {
		got, ok, err := m.LookupChecked(gen.Key(id))
		if err != nil || !ok || got != v {
			t.Fatalf("acknowledged key %d: %d, %v, %v; want %d", id, got, ok, err, v)
		}
	}
}
