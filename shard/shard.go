// Package shard is the sharded multi-heap front-end: it partitions the
// key space across H independent simulated-PM heaps, each carrying its
// own converted index instance and its own durability tracker, behind
// the same map-style API the root recipe package exposes for a single
// heap.
//
// One pmem.Heap already scales within a socket (its counters and line
// allocator are striped, see internal/stripe), but a single heap still
// models a single PM pool: one address space, one crash/recovery domain,
// one LLC. Sharding models the next axis — multi-socket-style placement,
// where "Evaluating Persistent Memory Range Indexes: Part Two" (He et
// al.) shows cross-socket traffic dominates PM index throughput — by
// giving every shard a private heap, index, tracker and injector.
// Because shards share nothing, a crash in shard k is recovered by
// replaying shard k alone (the per-partition recovery argument of APEX),
// and restart cost is proportional to shard size, not index size.
//
// A pluggable Partitioner routes keys: HashPartition (the default)
// balances any population, RangePartition preserves key order so scans
// touch few shards. Ordered and Hash implement the same interfaces as
// the underlying indexes (core.OrderedIndex, core.HashIndex) plus a
// Stats method, so they drop into the existing harness unchanged.
package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/stripe"
)

// Options configures a sharded front-end.
type Options struct {
	// Shards is the number of partitions H. Values < 1 select 1.
	Shards int
	// Partitioner routes byte-string keys (Ordered). Nil selects
	// HashPartition.
	Partitioner Partitioner
	// Partitioner64 routes uint64 keys (Hash). Nil selects
	// HashPartition64.
	Partitioner64 Partitioner64
	// ScanBatch is the per-shard batch-size cap B for streaming merged
	// scans and cursors: a scan holds at most B buffered entries per
	// shard, so peak scan memory is O(Shards × ScanBatch) regardless of
	// scan length or dataset size. Batches warm up adaptively — the
	// first fill pulls min(32, B) entries and doubles per full fill up
	// to B — so short scans avoid paying a full cap-sized batch per
	// shard. Values < 1 select DefaultScanBatch.
	ScanBatch int
	// Heap configures every per-shard heap (latency model, tracking,
	// LLC, shared-atomics ablation). Injectors are not shared: arm a
	// single shard via Heap(i).SetInjector.
	Heap pmem.Options
	// RetrySeed seeds the full-range jitter applied to RetryShard's
	// capped exponential backoff, making retry schedules deterministic
	// in tests. Zero draws a time-based seed on first use.
	RetrySeed int64
}

func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

func (o Options) scanBatch() int {
	if o.ScanBatch < 1 {
		return DefaultScanBatch
	}
	return o.ScanBatch
}

// index is what the shared front-end machinery needs from a per-shard
// index; both core.OrderedIndex and core.HashIndex satisfy it.
type index interface {
	Recover() error
	Len() int
}

// shardOf is one partition: a private heap and the index built on it.
type shardOf[IX index] struct {
	heap *pmem.Heap
	idx  IX
	// recoveries counts Recover replays of this shard, so tests and
	// campaigns can assert that a crash in shard k replayed only shard k.
	recoveries uint64
}

// frontend is the key-type-independent half of a sharded front-end: the
// partition array plus everything that iterates it (length, recovery,
// stats, quarantine — see quarantine.go). Ordered and Hash embed it and
// add routing, point operations, and (for Ordered) the merged Scan.
type frontend[IX index] struct {
	shards []shardOf[IX]
	// health tracks per-shard availability; parallel to shards because
	// its entries hold locks and must never be copied.
	health []shardHealth
	// batchMu guards each shard's heap against its group-commit mode,
	// which is single-writer against every other writer on the heap: a
	// group commit (batch sub-batch, pre-routed ApplyShard, migration
	// copy) holds the exclusive side for the duration of the commit,
	// and point writes hold the shared side — concurrent with each
	// other (the indexes are internally concurrent) but excluded from
	// in-flight group commits. Parallel to shards; entries hold locks
	// and must never be copied.
	batchMu []sync.RWMutex
	// now overrides the backoff clock in tests; nil selects time.Now.
	now func() time.Time
	// jitter holds the seeded source for retry-backoff jitter behind a
	// pointer: it contains a mutex (retries of different shards may
	// race), and the frontend value is copied during construction.
	jitter *jitterSource

	// rt is the published routing table: nil while the front-end is
	// pristine (routing through the stateless Partitioner), then the
	// current immutable table version (see table.go). Behind a pointer
	// because atomic.Pointer must not be copied and the frontend value is
	// copied during construction.
	rt *atomic.Pointer[routeTable]
	// gate is the RCU grace-period barrier: multi-shard operations hold a
	// read stripe for their duration, and table transitions drain it
	// after publishing so no operation still routes on a retired table.
	gate *opGate
	// opCount counts routed operations per shard (striped), feeding
	// LoadReport. Parallel to shards.
	opCount []*stripe.Counter
	// load is the epoch bookkeeping behind LoadReport (holds a mutex).
	load *loadState
	// reshardMu serialises table transitions: EnableResharding,
	// migrations and rebalances. Behind a pointer (mutex, copied value).
	reshardMu *sync.Mutex
}

// jitterSource is the lazily seeded randomness behind retry-backoff
// jitter (see quarantine.go).
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// newFrontend builds one (heap, index) pair per shard.
func newFrontend[IX index](factory func(*pmem.Heap) (IX, error), opts Options) (frontend[IX], error) {
	f := frontend[IX]{
		shards:    make([]shardOf[IX], opts.shards()),
		health:    newHealth(opts.shards()),
		batchMu:   make([]sync.RWMutex, opts.shards()),
		jitter:    &jitterSource{},
		rt:        &atomic.Pointer[routeTable]{},
		gate:      newOpGate(),
		opCount:   newCounters(opts.shards()),
		load:      &loadState{},
		reshardMu: &sync.Mutex{},
	}
	if opts.RetrySeed != 0 {
		f.jitter.rng = rand.New(rand.NewSource(opts.RetrySeed))
	}
	for i := range f.shards {
		heap := pmem.New(opts.Heap)
		idx, err := factory(heap)
		if err != nil {
			return frontend[IX]{}, fmt.Errorf("shard %d: %w", i, err)
		}
		f.shards[i] = shardOf[IX]{heap: heap, idx: idx}
	}
	return f, nil
}

// Len returns the number of live keys across serving shards.
// Quarantined shards are excluded: their in-memory state is the one
// recovery rejected, so their counts are not trustworthy.
func (f *frontend[IX]) Len() int {
	n := 0
	for i := range f.shards {
		if f.health[i].quarantined.Load() {
			continue
		}
		n += f.shards[i].idx.Len()
	}
	return n
}

// Recover replays recovery on every shard (a whole-machine restart). It
// must not be called concurrently with index operations.
func (f *frontend[IX]) Recover() error {
	for i := range f.shards {
		if err := f.RecoverShard(i); err != nil {
			return err
		}
	}
	return nil
}

// RecoverShard replays recovery on shard i alone. A recovery failure
// quarantines the shard (see quarantine.go); success takes it out of
// quarantine. It must not be called concurrently with index operations.
func (f *frontend[IX]) RecoverShard(i int) error {
	f.shards[i].recoveries++
	if err := f.shards[i].idx.Recover(); err != nil {
		err = fmt.Errorf("shard %d: %w", i, err)
		f.Quarantine(i, err)
		return err
	}
	if f.health[i].quarantined.Load() {
		h := &f.health[i]
		h.mu.Lock()
		h.cause, h.retries, h.nextRetry = nil, 0, time.Time{}
		h.mu.Unlock()
		h.quarantined.Store(false)
	}
	return nil
}

// RecoverCrashed recovers exactly the shards whose injector fired,
// clearing each fired injector first, and returns their indices. Shards
// that did not crash are not replayed — the per-shard recovery
// invariant. A shard whose recovery fails is quarantined and the sweep
// continues: the healthy shards come back up, the joined error reports
// the casualties. It must not be called concurrently with index
// operations.
//
// Shards share nothing, so the fired shards are replayed concurrently
// by a bounded worker pool (min of fired count, GOMAXPROCS, 8) —
// restart cost is the largest fired shard, not their sum. The returned
// indices and the joined error are in deterministic shard order
// regardless of replay interleaving.
func (f *frontend[IX]) RecoverCrashed() ([]int, error) {
	var fired []int
	for i := range f.shards {
		if inj := f.shards[i].heap.Injector(); inj.Fired() {
			f.shards[i].heap.SetInjector(nil)
			fired = append(fired, i)
		}
	}
	if len(fired) == 0 {
		return nil, nil
	}
	errs := make([]error, len(fired))
	if workers := min(len(fired), runtime.GOMAXPROCS(0), 8); workers == 1 {
		for j, i := range fired {
			errs[j] = f.RecoverShard(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= len(fired) {
						return
					}
					errs[j] = f.RecoverShard(fired[j])
				}
			}()
		}
		wg.Wait()
	}
	var recovered []int
	var failed []error
	for j, i := range fired {
		if errs[j] != nil {
			failed = append(failed, errs[j])
			continue
		}
		recovered = append(recovered, i)
	}
	return recovered, errors.Join(failed...)
}

// Recoveries returns per-shard recovery replay counts (how many times
// each shard's Recover ran), for asserting the per-shard recovery
// invariant.
func (f *frontend[IX]) Recoveries() []uint64 {
	out := make([]uint64, len(f.shards))
	for i := range f.shards {
		out[i] = f.shards[i].recoveries
	}
	return out
}

// Release returns every shard heap's simulated address space to the
// process-wide allocator pool (pmem.Heap.Release). Campaigns that churn
// many front-ends call it between trials so address space stops
// growing. Neither the front-end nor any of its shard indexes may be
// used afterwards.
func (f *frontend[IX]) Release() {
	for i := range f.shards {
		f.shards[i].heap.Release()
	}
}

// NumShards returns the partition count H.
func (f *frontend[IX]) NumShards() int { return len(f.shards) }

// Heap returns shard i's private heap, for arming injectors, reading
// trackers, or inspecting one partition.
func (f *frontend[IX]) Heap(i int) *pmem.Heap { return f.shards[i].heap }

// Shard returns shard i's index, for direct per-partition access.
func (f *frontend[IX]) Shard(i int) IX { return f.shards[i].idx }

// writeLock takes the shared side of shard s's group-commit lock: a
// point write may run concurrently with other point writes but not
// with a group commit on the same heap (see batchMu).
func (f *frontend[IX]) writeLock(s int) { f.batchMu[s].RLock() }

// writeUnlock releases writeLock.
func (f *frontend[IX]) writeUnlock(s int) { f.batchMu[s].RUnlock() }

// writeLock2 takes the shared group-commit locks of two shards in
// index order — the consistent order keeps lock-ordering acyclic when
// a double-applied write spans the handoff window's donor and
// recipient.
func (f *frontend[IX]) writeLock2(a, b int) {
	if b < a {
		a, b = b, a
	}
	f.batchMu[a].RLock()
	f.batchMu[b].RLock()
}

// writeUnlock2 releases writeLock2.
func (f *frontend[IX]) writeUnlock2(a, b int) {
	f.batchMu[a].RUnlock()
	f.batchMu[b].RUnlock()
}

// ShardStats returns one counter snapshot per shard, in shard order.
func (f *frontend[IX]) ShardStats() []pmem.Stats {
	out := make([]pmem.Stats, len(f.shards))
	for i := range f.shards {
		out[i] = f.shards[i].heap.Stats()
	}
	return out
}

// Stats returns the aggregate of all per-shard counters. The aggregate
// conserves exactly: it is the field-wise sum of ShardStats, and each
// shard's counters are themselves exact striped aggregates.
func (f *frontend[IX]) Stats() pmem.Stats { return sumStats(f.ShardStats()) }

// Ordered is a sharded ordered index: core.OrderedIndex over H
// partitions, each a private (heap, index) pair. Point operations route
// through the Partitioner and touch exactly one shard; Scan merges the
// per-shard ordered streams into one globally ordered stream. It is safe
// for concurrent use to the same extent as the underlying index.
type Ordered struct {
	part  Partitioner
	batch int // per-shard streaming scan batch size (Options.ScanBatch)
	// mapper is part's point reduction, set (before the first table is
	// published) by EnableResharding; it is only read after observing a
	// non-nil routing table, so the atomic table publish orders it.
	mapper PointMapper
	frontend[core.OrderedIndex]
}

// NewOrdered builds the named converted index (as core.NewOrdered does)
// on each of opts.Shards private heaps.
func NewOrdered(name string, kind keys.Kind, opts Options) (*Ordered, error) {
	return NewOrderedWith(func(h *pmem.Heap) (core.OrderedIndex, error) {
		return core.NewOrdered(name, h, kind)
	}, opts)
}

// NewOrderedWith is NewOrdered with an explicit per-shard index factory,
// for callers that construct indexes outside the registry (e.g. the
// Faithful baseline modes).
func NewOrderedWith(factory func(*pmem.Heap) (core.OrderedIndex, error), opts Options) (*Ordered, error) {
	part := opts.Partitioner
	if part == nil {
		part = HashPartition{}
	}
	f, err := newFrontend(factory, opts)
	if err != nil {
		return nil, err
	}
	return &Ordered{part: part, batch: opts.scanBatch(), frontend: f}, nil
}

// route returns the shard owning key, bumping the load counters. With
// one shard no routing is needed, so the H=1 front-end adds no hashing
// to the operation path; once a routing table is published it replaces
// the stateless partitioner as the routing authority.
func (m *Ordered) route(key []byte) int {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		return 0
	}
	if t := m.rt.Load(); t != nil {
		s, _ := m.locateKey(t, key)
		return s
	}
	i := m.part.Shard(key, len(m.shards))
	m.opCount[i].Add(1)
	return i
}

// locateKey routes key through table t, bumping per-shard and per-slot
// load counters, and returns the owning shard plus the key's ring point
// (for handoff-window checks).
func (m *Ordered) locateKey(t *routeTable, key []byte) (shard int, point uint64) {
	p := m.mapper.Point(key)
	s, slot := t.locate(p)
	t.ops[slot].Add(1)
	m.opCount[s].Add(1)
	return s, p
}

// Insert stores value under key in the owning shard. If the owning
// shard is quarantined it returns *ShardUnavailableError
// (errors.Is(err, ErrShardUnavailable)); other shards keep serving.
// While key sits inside an open migration window the write
// double-applies: the donor stays authoritative (its result is
// returned), and the recipient receives a shadow copy so the migration
// stream cannot miss it.
func (m *Ordered) Insert(key []byte, value uint64) error {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return err
		}
		m.writeLock(0)
		defer m.writeUnlock(0)
		return m.shards[0].idx.Insert(key, value)
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	t := m.rt.Load()
	if t == nil {
		i := m.part.Shard(key, len(m.shards))
		m.opCount[i].Add(1)
		if err := m.unavailable(i); err != nil {
			return err
		}
		m.writeLock(i)
		defer m.writeUnlock(i)
		return m.shards[i].idx.Insert(key, value)
	}
	s, p := m.locateKey(t, key)
	if err := m.unavailable(s); err != nil {
		return err
	}
	if mg := t.mig; mg != nil && s == mg.donor && mg.covers(p, t) {
		mg.mu.RLock()
		defer mg.mu.RUnlock()
		m.writeLock2(s, mg.recipient)
		defer m.writeUnlock2(s, mg.recipient)
		if err := m.shards[s].idx.Insert(key, value); err != nil {
			return err
		}
		if err := m.shards[mg.recipient].idx.Insert(key, value); err != nil {
			mg.failed.Store(true) // recipient incomplete: migration must abort
		}
		return nil
	}
	m.writeLock(s)
	defer m.writeUnlock(s)
	return m.shards[s].idx.Insert(key, value)
}

// Update overwrites the value under key in place in the owning shard
// (the index's upsert path; see core.OrderedIndex.Update). Quarantined
// shards return *ShardUnavailableError. Updates double-apply inside an
// open migration window, like Insert.
func (m *Ordered) Update(key []byte, value uint64) error {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return err
		}
		m.writeLock(0)
		defer m.writeUnlock(0)
		return m.shards[0].idx.Update(key, value)
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	t := m.rt.Load()
	if t == nil {
		i := m.part.Shard(key, len(m.shards))
		m.opCount[i].Add(1)
		if err := m.unavailable(i); err != nil {
			return err
		}
		m.writeLock(i)
		defer m.writeUnlock(i)
		return m.shards[i].idx.Update(key, value)
	}
	s, p := m.locateKey(t, key)
	if err := m.unavailable(s); err != nil {
		return err
	}
	if mg := t.mig; mg != nil && s == mg.donor && mg.covers(p, t) {
		mg.mu.RLock()
		defer mg.mu.RUnlock()
		m.writeLock2(s, mg.recipient)
		defer m.writeUnlock2(s, mg.recipient)
		if err := m.shards[s].idx.Update(key, value); err != nil {
			return err
		}
		if err := m.shards[mg.recipient].idx.Update(key, value); err != nil {
			mg.failed.Store(true)
		}
		return nil
	}
	m.writeLock(s)
	defer m.writeUnlock(s)
	return m.shards[s].idx.Update(key, value)
}

// Lookup returns the value stored under key. The core interface has no
// error slot, so a key owned by a quarantined shard reads as absent;
// use LookupChecked to distinguish "absent" from "unavailable".
func (m *Ordered) Lookup(key []byte) (uint64, bool) {
	v, ok, err := m.LookupChecked(key)
	if err != nil {
		return 0, false
	}
	return v, ok
}

// LookupChecked is Lookup with quarantine visibility: err is
// *ShardUnavailableError when the owning shard is quarantined, in which
// case the key's presence is unknown. During a migration the donor
// stays the read authority until the table flips.
func (m *Ordered) LookupChecked(key []byte) (uint64, bool, error) {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return 0, false, err
		}
		v, ok := m.shards[0].idx.Lookup(key)
		return v, ok, nil
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	var s int
	if t := m.rt.Load(); t != nil {
		s, _ = m.locateKey(t, key)
	} else {
		s = m.part.Shard(key, len(m.shards))
		m.opCount[s].Add(1)
	}
	if err := m.unavailable(s); err != nil {
		return 0, false, err
	}
	v, ok := m.shards[s].idx.Lookup(key)
	return v, ok, nil
}

// Delete removes key from the owning shard. Quarantined shards return
// *ShardUnavailableError. Deletes double-apply inside an open migration
// window, like Insert.
func (m *Ordered) Delete(key []byte) (bool, error) {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return false, err
		}
		m.writeLock(0)
		defer m.writeUnlock(0)
		return m.shards[0].idx.Delete(key)
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	t := m.rt.Load()
	if t == nil {
		i := m.part.Shard(key, len(m.shards))
		m.opCount[i].Add(1)
		if err := m.unavailable(i); err != nil {
			return false, err
		}
		m.writeLock(i)
		defer m.writeUnlock(i)
		return m.shards[i].idx.Delete(key)
	}
	s, p := m.locateKey(t, key)
	if err := m.unavailable(s); err != nil {
		return false, err
	}
	if mg := t.mig; mg != nil && s == mg.donor && mg.covers(p, t) {
		mg.mu.RLock()
		defer mg.mu.RUnlock()
		m.writeLock2(s, mg.recipient)
		defer m.writeUnlock2(s, mg.recipient)
		ok, err := m.shards[s].idx.Delete(key)
		if err != nil {
			return ok, err
		}
		if _, err := m.shards[mg.recipient].idx.Delete(key); err != nil {
			mg.failed.Store(true)
		}
		return ok, nil
	}
	m.writeLock(s)
	defer m.writeUnlock(s)
	return m.shards[s].idx.Delete(key)
}

// Scan visits keys >= start in ascending order across all shards until
// fn returns false or count keys were visited (count <= 0 = unbounded);
// it returns the number of keys visited, where a key on which fn
// returned false is not counted — the single-index Scan contract.
//
// With one shard it delegates. With an order-preserving partitioner
// (RangePartition) shard order equals key order, so shards stream one
// after another straight into fn: no merge state, no buffering, no key
// copies. Otherwise a streaming k-way merge pulls one batch of
// Options.ScanBatch entries per shard at a time (see Cursor), so peak
// memory is O(shards × batch) regardless of scan length or dataset
// size.
//
// While a shard is quarantined the scan is degraded: the quarantined
// partition's keys are skipped (Degraded()/Quarantined() report the
// gap), and the healthy partitions stream normally.
func (m *Ordered) Scan(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	if len(m.shards) == 1 {
		if m.unavailable(0) != nil {
			return 0
		}
		return m.shards[0].idx.Scan(start, count, fn)
	}
	if orderPreserving(m.part) && m.tablePristine() {
		return m.scanSequential(start, count, fn)
	}
	return m.scanMerge(start, count, fn)
}

// tablePristine reports whether routing is still exactly the legacy
// partitioner mapping: no table, or a table that never moved a slot and
// has no open migration window. Order-preserving fast paths are only
// sound in this state — after a range migration, span ownership is no
// longer monotonic in key order.
func (m *Ordered) tablePristine() bool {
	t := m.rt.Load()
	return t == nil || (t.version == 0 && t.mig == nil)
}

// scanSequential is the order-preserving fast path: shard i's keys all
// precede shard i+1's, so the scan drains shards in order, forwarding
// each shard's callback keys to fn untouched.
func (m *Ordered) scanSequential(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	first := 0
	if len(start) > 0 {
		// Shards before start's owner hold only keys < start.
		first = m.part.Shard(start, len(m.shards))
	}
	visited := 0
	for i := first; i < len(m.shards); i++ {
		if m.unavailable(i) != nil {
			continue // degraded: quarantined partition skipped
		}
		rem := 0
		if count > 0 {
			rem = count - visited
		}
		stopped := false
		visited += m.shards[i].idx.Scan(start, rem, func(k []byte, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped || (count > 0 && visited >= count) {
			break
		}
	}
	return visited
}

// scanMerge streams the k-way merge: one batched cursor per shard, a
// min-heap by head key, at most one batch buffered per shard.
func (m *Ordered) scanMerge(start []byte, count int, fn func(key []byte, value uint64) bool) int {
	batch := m.batch
	if count > 0 && count < batch {
		// A bounded scan consumes at most count entries in total, so no
		// shard ever needs a larger batch.
		batch = count
	}
	c := m.mergeCursor(start, batch)
	visited := 0
	for {
		k, v, ok := c.Next()
		if !ok || !fn(k, v) {
			break
		}
		visited++
		if count > 0 && visited >= count {
			break
		}
	}
	return visited
}

// PartitionerName reports the routing policy in use.
func (m *Ordered) PartitionerName() string { return m.part.Name() }

// Hash is a sharded unordered index: core.HashIndex over H partitions.
type Hash struct {
	part Partitioner64
	// mapper64 is part's point reduction, set by EnableResharding before
	// the first table publish (see Ordered.mapper).
	mapper64 PointMapper64
	frontend[core.HashIndex]
}

// NewHash builds the named unordered index (as core.NewHash does) on
// each of opts.Shards private heaps.
func NewHash(name string, opts Options) (*Hash, error) {
	return NewHashWith(func(h *pmem.Heap) (core.HashIndex, error) {
		return core.NewHash(name, h)
	}, opts)
}

// NewHashWith is NewHash with an explicit per-shard index factory.
func NewHashWith(factory func(*pmem.Heap) (core.HashIndex, error), opts Options) (*Hash, error) {
	part := opts.Partitioner64
	if part == nil {
		part = HashPartition64{}
	}
	f, err := newFrontend(factory, opts)
	if err != nil {
		return nil, err
	}
	return &Hash{part: part, frontend: f}, nil
}

// route returns the shard owning key, bumping the load counters; see
// Ordered.route.
func (m *Hash) route(key uint64) int {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		return 0
	}
	if t := m.rt.Load(); t != nil {
		s, _ := m.locateKey(t, key)
		return s
	}
	i := m.part.Shard(key, len(m.shards))
	m.opCount[i].Add(1)
	return i
}

// locateKey routes key through table t, bumping load counters; see
// Ordered.locateKey.
func (m *Hash) locateKey(t *routeTable, key uint64) (shard int, point uint64) {
	p := m.mapper64.Point(key)
	s, slot := t.locate(p)
	t.ops[slot].Add(1)
	m.opCount[s].Add(1)
	return s, p
}

// Insert stores value under key in the owning shard. Quarantined shards
// return *ShardUnavailableError; other shards keep serving. Writes
// inside an open migration window double-apply (see Ordered.Insert).
func (m *Hash) Insert(key, value uint64) error {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return err
		}
		m.writeLock(0)
		defer m.writeUnlock(0)
		return m.shards[0].idx.Insert(key, value)
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	t := m.rt.Load()
	if t == nil {
		i := m.part.Shard(key, len(m.shards))
		m.opCount[i].Add(1)
		if err := m.unavailable(i); err != nil {
			return err
		}
		m.writeLock(i)
		defer m.writeUnlock(i)
		return m.shards[i].idx.Insert(key, value)
	}
	s, p := m.locateKey(t, key)
	if err := m.unavailable(s); err != nil {
		return err
	}
	if mg := t.mig; mg != nil && s == mg.donor && mg.covers(p, t) {
		mg.mu.RLock()
		defer mg.mu.RUnlock()
		m.writeLock2(s, mg.recipient)
		defer m.writeUnlock2(s, mg.recipient)
		if err := m.shards[s].idx.Insert(key, value); err != nil {
			return err
		}
		if err := m.shards[mg.recipient].idx.Insert(key, value); err != nil {
			mg.failed.Store(true)
		}
		return nil
	}
	m.writeLock(s)
	defer m.writeUnlock(s)
	return m.shards[s].idx.Insert(key, value)
}

// Update overwrites the value under key in place in the owning shard.
// Quarantined shards return *ShardUnavailableError. Updates inside an
// open migration window double-apply.
func (m *Hash) Update(key, value uint64) error {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return err
		}
		m.writeLock(0)
		defer m.writeUnlock(0)
		return m.shards[0].idx.Update(key, value)
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	t := m.rt.Load()
	if t == nil {
		i := m.part.Shard(key, len(m.shards))
		m.opCount[i].Add(1)
		if err := m.unavailable(i); err != nil {
			return err
		}
		m.writeLock(i)
		defer m.writeUnlock(i)
		return m.shards[i].idx.Update(key, value)
	}
	s, p := m.locateKey(t, key)
	if err := m.unavailable(s); err != nil {
		return err
	}
	if mg := t.mig; mg != nil && s == mg.donor && mg.covers(p, t) {
		mg.mu.RLock()
		defer mg.mu.RUnlock()
		m.writeLock2(s, mg.recipient)
		defer m.writeUnlock2(s, mg.recipient)
		if err := m.shards[s].idx.Update(key, value); err != nil {
			return err
		}
		if err := m.shards[mg.recipient].idx.Update(key, value); err != nil {
			mg.failed.Store(true)
		}
		return nil
	}
	m.writeLock(s)
	defer m.writeUnlock(s)
	return m.shards[s].idx.Update(key, value)
}

// Lookup returns the value stored under key. A key owned by a
// quarantined shard reads as absent; use LookupChecked to distinguish.
func (m *Hash) Lookup(key uint64) (uint64, bool) {
	v, ok, err := m.LookupChecked(key)
	if err != nil {
		return 0, false
	}
	return v, ok
}

// LookupChecked is Lookup with quarantine visibility: err is
// *ShardUnavailableError when the owning shard is quarantined. During a
// migration the donor stays the read authority until the table flips.
func (m *Hash) LookupChecked(key uint64) (uint64, bool, error) {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return 0, false, err
		}
		v, ok := m.shards[0].idx.Lookup(key)
		return v, ok, nil
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	var s int
	if t := m.rt.Load(); t != nil {
		s, _ = m.locateKey(t, key)
	} else {
		s = m.part.Shard(key, len(m.shards))
		m.opCount[s].Add(1)
	}
	if err := m.unavailable(s); err != nil {
		return 0, false, err
	}
	v, ok := m.shards[s].idx.Lookup(key)
	return v, ok, nil
}

// Delete removes key from the owning shard. Quarantined shards return
// *ShardUnavailableError. Deletes inside an open migration window
// double-apply.
func (m *Hash) Delete(key uint64) (bool, error) {
	if len(m.shards) == 1 {
		m.opCount[0].Add(1)
		if err := m.unavailable(0); err != nil {
			return false, err
		}
		m.writeLock(0)
		defer m.writeUnlock(0)
		return m.shards[0].idx.Delete(key)
	}
	g := m.gate.enter()
	defer m.gate.exit(g)
	t := m.rt.Load()
	if t == nil {
		i := m.part.Shard(key, len(m.shards))
		m.opCount[i].Add(1)
		if err := m.unavailable(i); err != nil {
			return false, err
		}
		m.writeLock(i)
		defer m.writeUnlock(i)
		return m.shards[i].idx.Delete(key)
	}
	s, p := m.locateKey(t, key)
	if err := m.unavailable(s); err != nil {
		return false, err
	}
	if mg := t.mig; mg != nil && s == mg.donor && mg.covers(p, t) {
		mg.mu.RLock()
		defer mg.mu.RUnlock()
		m.writeLock2(s, mg.recipient)
		defer m.writeUnlock2(s, mg.recipient)
		ok, err := m.shards[s].idx.Delete(key)
		if err != nil {
			return ok, err
		}
		if _, err := m.shards[mg.recipient].idx.Delete(key); err != nil {
			mg.failed.Store(true)
		}
		return ok, nil
	}
	m.writeLock(s)
	defer m.writeUnlock(s)
	return m.shards[s].idx.Delete(key)
}

// PartitionerName reports the routing policy in use.
func (m *Hash) PartitionerName() string { return m.part.Name() }

// sumStats folds per-shard snapshots field-wise.
func sumStats(per []pmem.Stats) pmem.Stats {
	var s pmem.Stats
	for _, p := range per {
		s = s.Add(p)
	}
	return s
}
