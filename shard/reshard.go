// Online migration and the load-driven rebalancer: the machinery that
// moves a slice of a hot shard's key space to a cold shard under live
// traffic.
//
// The handoff protocol, per migration:
//
//  1. Publish a new table version with an open migration window and
//     drain the operation gate, so every in-flight operation that
//     routed on the old table has finished. From here on, every write
//     to a covered key double-applies (donor authoritative, recipient
//     shadow).
//  2. Stream the donor's covered keys into the recipient in batches.
//     Each batch holds the window lock exclusively across its
//     read-donor + group-commit-recipient step, so it cannot overwrite
//     a concurrent writer's fresher double-applied value, and each
//     batch is fenced durable on the recipient before the crash site
//     "reshard.copy.applied" fires on the recipient's heap.
//  3. Publish the flipped table (covered points now owned by the
//     recipient) — the commit point, after which reads and writes of
//     covered keys route to the recipient. The crash site
//     "reshard.flip.published" fires on the donor's heap immediately
//     after. A second gate drain retires every pre-flip routing
//     decision before cleanup.
//  4. Cleanup: delete the donor's residue copies of the moved keys.
//
// A crash (injected at either reshard site, or at any group-commit site
// inside a copy batch) unwinds to the migration entry point, which
// aborts — republishes the window-closed, unflipped table — unless the
// flip already published, in which case the flip stands and only the
// residue sweep is lost. Either way the donor remains authoritative for
// exactly the keys the current table routes to it, recovery replays only
// the crashed shard, and residue copies are invisible to routing and
// deduplicated by merged scans.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/group"
)

// Crash sites of the migration protocol (pmem.Heap.CrashPoint sites, in
// addition to the group-commit sites each copy batch passes through).
const (
	// SiteCopyApplied fires on the recipient's heap after each copy
	// batch is group-committed (fenced durable).
	SiteCopyApplied = "reshard.copy.applied"
	// SiteFlipPublished fires on the donor's heap immediately after the
	// flipped routing table is published.
	SiteFlipPublished = "reshard.flip.published"
)

// Resharding errors.
var (
	// ErrNotReshardable reports a front-end whose partitioner cannot be
	// table-routed (it does not implement PointMapper/PointMapper64, or
	// the donor index cannot be enumerated).
	ErrNotReshardable = errors.New("shard: front-end not reshardable")
	// ErrReshardingDisabled reports a migration attempt on a pristine
	// front-end; call EnableResharding first.
	ErrReshardingDisabled = errors.New("shard: resharding not enabled")
	// ErrMigrationAborted reports a migration that closed its handoff
	// window without flipping (e.g. a shadow apply failed); the donor
	// keeps the keys and the front-end stays fully consistent.
	ErrMigrationAborted = errors.New("shard: migration aborted")
)

// defaultCopyBatch is the migration copy batch size when the caller
// passes batchSize < 1.
const defaultCopyBatch = 128

// EnableResharding materialises the initial routing table, switching the
// front-end from stateless partitioner routing to table routing. The
// initial table maps every key to the same shard the partitioner does,
// so no key moves; it may be called under live traffic and is idempotent.
// It fails with ErrNotReshardable if the partitioner does not implement
// PointMapper.
func (m *Ordered) EnableResharding() error {
	pm, ok := m.part.(PointMapper)
	if !ok {
		return fmt.Errorf("%w: partitioner %q has no point mapping", ErrNotReshardable, m.part.Name())
	}
	m.reshardMu.Lock()
	defer m.reshardMu.Unlock()
	if m.rt.Load() != nil {
		return nil
	}
	m.mapper = pm
	if orderPreserving(m.part) {
		m.rt.Store(newRangeTable(len(m.shards)))
	} else {
		m.rt.Store(newSlotTable(len(m.shards)))
	}
	return nil
}

// EnableResharding materialises the initial routing table for the
// unordered front-end; see Ordered.EnableResharding.
func (m *Hash) EnableResharding() error {
	pm, ok := m.part.(PointMapper64)
	if !ok {
		return fmt.Errorf("%w: partitioner %q has no point mapping", ErrNotReshardable, m.part.Name())
	}
	m.reshardMu.Lock()
	defer m.reshardMu.Unlock()
	if m.rt.Load() != nil {
		return nil
	}
	m.mapper64 = pm
	m.rt.Store(newSlotTable(len(m.shards)))
	return nil
}

// validateMove checks the donor/recipient pair against the front-end.
func (f *frontend[IX]) validateMove(donor, recipient int) error {
	if donor == recipient || donor < 0 || recipient < 0 ||
		donor >= len(f.shards) || recipient >= len(f.shards) {
		return fmt.Errorf("shard: invalid migration %d -> %d", donor, recipient)
	}
	if err := f.unavailable(donor); err != nil {
		return err
	}
	return f.unavailable(recipient)
}

// windowForSlots builds a slot-window migration after validating that
// every requested slot exists and is owned by the donor.
func windowForSlots(t *routeTable, donor, recipient int, slots []int) (*migration, error) {
	if t.kind != kindSlots {
		return nil, fmt.Errorf("shard: MigrateSlots on a range-routed front-end")
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("shard: no slots to migrate")
	}
	mg := &migration{donor: donor, recipient: recipient, moving: make([]bool, len(t.slots))}
	for _, j := range slots {
		if j < 0 || j >= len(t.slots) {
			return nil, fmt.Errorf("shard: slot %d out of range", j)
		}
		if int(t.slots[j]) != donor {
			return nil, fmt.Errorf("shard: slot %d not owned by donor %d", j, donor)
		}
		mg.moving[j] = true
	}
	return mg, nil
}

// windowForRange builds a range-window migration after validating that
// every point in [lo, hi] is owned by the donor.
func windowForRange(t *routeTable, donor, recipient int, lo, hi uint64) (*migration, error) {
	if t.kind != kindRange {
		return nil, fmt.Errorf("shard: MigrateRange on a slot-routed front-end")
	}
	if lo > hi {
		return nil, fmt.Errorf("shard: empty migration range")
	}
	sLo := uint64(0)
	for i := range t.bounds {
		if t.bounds[i] >= lo && sLo <= hi && int(t.owner[i]) != donor {
			return nil, fmt.Errorf("shard: range [%#x, %#x] not owned by donor %d", lo, hi, donor)
		}
		if t.bounds[i] >= hi {
			break
		}
		sLo = t.bounds[i] + 1
	}
	return &migration{donor: donor, recipient: recipient, lo: lo, hi: hi, ranged: true}, nil
}

// rangeStartKey returns the smallest useful scan start for points >= lo:
// the big-endian bytes of lo with trailing zeros trimmed. Any key whose
// point is >= lo sorts at or after this prefix (a key sorting strictly
// before it would have a strictly smaller 8-byte-padded prefix value).
func rangeStartKey(lo uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], lo)
	n := 8
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return b[:n]
}

// MigrateSlots moves the given routing slots (all currently owned by
// donor) from donor to recipient under live traffic, using the handoff
// protocol at the top of this file. batchSize < 1 selects
// defaultCopyBatch. On success the table is flipped and the donor's
// residue removed; on failure (including an injected crash, returned as
// crash.ErrCrashed) the migration is aborted unless the flip had
// already published.
func (m *Ordered) MigrateSlots(donor, recipient int, slots []int, batchSize int) error {
	if err := m.validateMove(donor, recipient); err != nil {
		return err
	}
	m.reshardMu.Lock()
	defer m.reshardMu.Unlock()
	t := m.rt.Load()
	if t == nil {
		return ErrReshardingDisabled
	}
	mg, err := windowForSlots(t, donor, recipient, slots)
	if err != nil {
		return err
	}
	return m.migrate(t, mg, batchSize)
}

// MigrateRange moves the points in [lo, hi] (all currently owned by
// donor) from donor to recipient; see MigrateSlots.
func (m *Ordered) MigrateRange(donor, recipient int, lo, hi uint64, batchSize int) error {
	if err := m.validateMove(donor, recipient); err != nil {
		return err
	}
	m.reshardMu.Lock()
	defer m.reshardMu.Unlock()
	t := m.rt.Load()
	if t == nil {
		return ErrReshardingDisabled
	}
	mg, err := windowForRange(t, donor, recipient, lo, hi)
	if err != nil {
		return err
	}
	return m.migrate(t, mg, batchSize)
}

// migrate runs the handoff protocol for an already-validated window.
// Caller holds reshardMu.
func (m *Ordered) migrate(t *routeTable, mg *migration, batchSize int) (err error) {
	if batchSize < 1 {
		batchSize = defaultCopyBatch
	}
	wt := t.withWindow(mg)
	m.rt.Store(wt)
	m.gate.drain()
	flipped := false
	defer func() {
		if r := recover(); r != nil {
			err = crash.Recover(r)
		}
		if err != nil && !flipped {
			// Abort: close the window, keep the mapping. Writers still
			// holding the window table double-apply harmlessly (the
			// donor stays authoritative).
			m.rt.Store(wt.withoutWindow())
		}
	}()

	start := []byte(nil)
	if mg.ranged {
		start = rangeStartKey(mg.lo)
	}
	cur := newShardCursor(m.shards[mg.donor].idx, start, batchSize)
	for {
		done, cerr := m.copyBatch(wt, mg, cur, batchSize)
		if cerr != nil {
			return cerr
		}
		if done {
			break
		}
	}
	if mg.failed.Load() {
		return fmt.Errorf("%w: shadow apply failed on recipient %d", ErrMigrationAborted, mg.recipient)
	}

	m.rt.Store(wt.flipped(mg))
	flipped = true
	m.shards[mg.donor].heap.CrashPoint(SiteFlipPublished)
	m.gate.drain()
	m.sweepResidue(wt, mg, batchSize)
	return nil
}

// copyBatch streams one batch of covered donor entries into the
// recipient as a single fenced group commit. It holds the window lock
// exclusively across the read + apply, so concurrent double-applied
// writes cannot be overwritten with stale reads; to bound the stall it
// advances the donor cursor at most batchSize entries per call even
// when few of them are covered.
func (m *Ordered) copyBatch(wt *routeTable, mg *migration, cur *shardCursor, batchSize int) (done bool, err error) {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	var ops []group.ByteOp
	for scanned := 0; cur.valid() && scanned < batchSize; scanned++ {
		k, v := cur.head()
		p := m.mapper.Point(k)
		if mg.ranged && p > mg.hi {
			return true, m.commitCopy(mg, ops)
		}
		if mg.covers(p, wt) {
			ops = append(ops, group.ByteOp{Key: append([]byte(nil), k...), Value: v})
		}
		cur.advance()
	}
	return !cur.valid(), m.commitCopy(mg, ops)
}

// commitCopy group-commits one copy batch on the recipient and passes
// the reshard.copy.applied crash site. Caller holds the window lock.
func (m *Ordered) commitCopy(mg *migration, ops []group.ByteOp) error {
	if len(ops) == 0 {
		return nil
	}
	rec := &m.shards[mg.recipient]
	m.batchMu[mg.recipient].Lock()
	defer m.batchMu[mg.recipient].Unlock()
	if err := group.ApplyOrdered(rec.heap, rec.idx, ops, nil); err != nil {
		return err
	}
	rec.heap.CrashPoint(SiteCopyApplied)
	return nil
}

// sweepResidue deletes the donor's copies of the migrated keys after the
// flip. Residue is invisible to routing and deduplicated by merged
// scans, so the sweep is plain unfenced deletes; a crash that skips it
// costs capacity, not correctness.
func (m *Ordered) sweepResidue(wt *routeTable, mg *migration, batchSize int) {
	start := []byte(nil)
	if mg.ranged {
		start = rangeStartKey(mg.lo)
	}
	donor := &m.shards[mg.donor]
	cur := newShardCursor(donor.idx, start, batchSize)
	var doomed [][]byte
	flush := func() {
		// Shared lock: the deletes are point writes on the donor heap and
		// must not interleave with a group commit there.
		m.writeLock(mg.donor)
		defer m.writeUnlock(mg.donor)
		for _, k := range doomed {
			donor.idx.Delete(k) //nolint:errcheck // residue sweep is best-effort
		}
		doomed = doomed[:0]
	}
	for cur.valid() {
		k, _ := cur.head()
		p := m.mapper.Point(k)
		if mg.ranged && p > mg.hi {
			break
		}
		if mg.covers(p, wt) {
			doomed = append(doomed, append([]byte(nil), k...))
		}
		cur.advance()
		if len(doomed) >= batchSize {
			// The cursor has already advanced past these keys and
			// resumes by key, so deleting behind it is safe.
			flush()
		}
	}
	flush()
}

// MigrateSlots moves the given routing slots from donor to recipient on
// the unordered front-end. Hash indexes have no ordered cursor, so the
// copy enumerates the donor via core.HashRanger while holding the
// handoff window exclusively — writers to the donor's covered keys
// stall for the duration of the copy (O(donor size)), which is the
// documented cost of migrating an unordered shard. The recipient is
// still populated in fenced group commits of batchSize with the same
// crash sites as the ordered path.
func (m *Hash) MigrateSlots(donor, recipient int, slots []int, batchSize int) error {
	if err := m.validateMove(donor, recipient); err != nil {
		return err
	}
	ranger, ok := m.shards[donor].idx.(core.HashRanger)
	if !ok {
		return fmt.Errorf("%w: donor index is not enumerable (no Range)", ErrNotReshardable)
	}
	m.reshardMu.Lock()
	defer m.reshardMu.Unlock()
	t := m.rt.Load()
	if t == nil {
		return ErrReshardingDisabled
	}
	mg, err := windowForSlots(t, donor, recipient, slots)
	if err != nil {
		return err
	}
	return m.migrate(t, mg, ranger, batchSize)
}

// migrate runs the handoff protocol for the unordered front-end. Caller
// holds reshardMu.
func (m *Hash) migrate(t *routeTable, mg *migration, ranger core.HashRanger, batchSize int) (err error) {
	if batchSize < 1 {
		batchSize = defaultCopyBatch
	}
	wt := t.withWindow(mg)
	m.rt.Store(wt)
	m.gate.drain()
	flipped := false
	defer func() {
		if r := recover(); r != nil {
			err = crash.Recover(r)
		}
		if err != nil && !flipped {
			m.rt.Store(wt.withoutWindow())
		}
	}()

	if cerr := m.copyAll(wt, mg, ranger, batchSize); cerr != nil {
		return cerr
	}
	if mg.failed.Load() {
		return fmt.Errorf("%w: shadow apply failed on recipient %d", ErrMigrationAborted, mg.recipient)
	}

	m.rt.Store(wt.flipped(mg))
	flipped = true
	m.shards[mg.donor].heap.CrashPoint(SiteFlipPublished)
	m.gate.drain()
	m.sweepResidue(wt, mg, ranger)
	return nil
}

// copyAll streams every covered donor pair into the recipient in fenced
// group commits of batchSize, holding the window exclusively for the
// whole enumeration (hash tables cannot resume an enumeration at a key,
// so the copy cannot release the window between batches without risking
// a missed concurrent write).
func (m *Hash) copyAll(wt *routeTable, mg *migration, ranger core.HashRanger, batchSize int) error {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	var ops []group.U64Op
	ranger.Range(func(k, v uint64) bool {
		if mg.covers(m.mapper64.Point(k), wt) {
			ops = append(ops, group.U64Op{Key: k, Value: v})
		}
		return true
	})
	rec := &m.shards[mg.recipient]
	for len(ops) > 0 {
		n := min(batchSize, len(ops))
		m.batchMu[mg.recipient].Lock()
		err := group.ApplyHash(rec.heap, rec.idx, ops[:n], nil)
		if err == nil {
			// CrashPoint may panic; the deferred window unlock and the
			// batch mutex unlock below must both run first.
			func() {
				defer m.batchMu[mg.recipient].Unlock()
				rec.heap.CrashPoint(SiteCopyApplied)
			}()
		} else {
			m.batchMu[mg.recipient].Unlock()
			return err
		}
		ops = ops[n:]
	}
	return nil
}

// sweepResidue deletes the donor's copies of the migrated keys after the
// flip; see Ordered.sweepResidue.
func (m *Hash) sweepResidue(wt *routeTable, mg *migration, ranger core.HashRanger) {
	var doomed []uint64
	ranger.Range(func(k, v uint64) bool {
		if mg.covers(m.mapper64.Point(k), wt) {
			doomed = append(doomed, k)
		}
		return true
	})
	donor := &m.shards[mg.donor]
	m.writeLock(mg.donor)
	defer m.writeUnlock(mg.donor)
	for _, k := range doomed {
		donor.idx.Delete(k) //nolint:errcheck // residue sweep is best-effort
	}
}

// RebalanceOptions tunes Rebalance.
type RebalanceOptions struct {
	// MaxMoves caps the number of migrations one Rebalance call may run.
	// Values < 1 select the shard count (shedding a hot shard's excess
	// usually takes several moves, one recipient each).
	MaxMoves int
	// Tolerance is the target imbalance (busiest shard's measured load
	// over the mean): rebalancing stops once the table's projected
	// imbalance is at or below it. Values <= 1 select 1.15.
	Tolerance float64
	// BatchSize is the migration copy batch size; values < 1 select the
	// migration default.
	BatchSize int
}

func (o RebalanceOptions) maxMoves(shards int) int {
	if o.MaxMoves < 1 {
		return shards
	}
	return o.MaxMoves
}

func (o RebalanceOptions) tolerance() float64 {
	if o.Tolerance <= 1 {
		return 1.15
	}
	return o.Tolerance
}

// MoveReport describes one migration a Rebalance call performed.
type MoveReport struct {
	// Donor and Recipient are the shards the keys moved between.
	Donor, Recipient int
	// Slots are the moved routing slots (slot-routed front-ends).
	Slots []int
	// Lo and Hi bound the moved point range, inclusive (range-routed
	// front-ends, where Ranged is true).
	Lo, Hi uint64
	Ranged bool
	// Ops is the measured operation count attributed to the moved
	// slots/span — the load the move is expected to shift.
	Ops uint64
}

// RebalanceReport summarises one Rebalance call.
type RebalanceReport struct {
	// Before and After are the projected imbalance (busiest shard's
	// measured load over the mean) under the routing table at entry and
	// exit. They are computed from the same cumulative slot counters, so
	// After < Before means the table reassignment moved measured load
	// off the hot shard.
	Before, After float64
	// Moves lists the migrations performed, in order.
	Moves []MoveReport
}

// shardLoads folds the cumulative per-slot counters by owning shard.
func shardLoads(t *routeTable, shards int) (perShard []uint64, perSlot []uint64) {
	perShard = make([]uint64, shards)
	perSlot = make([]uint64, len(t.ops))
	owners := t.slots
	for j := range t.ops {
		perSlot[j] = t.ops[j].Load()
		if t.kind == kindSlots {
			perShard[owners[j]] += perSlot[j]
		} else {
			perShard[t.owner[j]] += perSlot[j]
		}
	}
	return perShard, perSlot
}

// imbalanceOf returns max/mean over per-shard loads (0 if no load).
func imbalanceOf(perShard []uint64) float64 {
	var total, max uint64
	for _, l := range perShard {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(len(perShard)))
}

// planSlotMove picks one slot migration from the measured per-slot
// loads: donor = busiest shard, recipient = least busy, and the move is
// the heaviest-first subset of the donor's slots that fits
// min(donor − mean, mean − recipient) — shedding the donor's excess
// without creating a new hotspot at the recipient. ok is false when the
// table is already within tolerance or no slot fits the budget.
func planSlotMove(t *routeTable, shards int, tol float64) (donor, recipient int, slots []int, moved uint64, ok bool) {
	perShard, perSlot := shardLoads(t, shards)
	var total uint64
	for _, l := range perShard {
		total += l
	}
	if total == 0 {
		return 0, 0, nil, 0, false
	}
	mean := float64(total) / float64(shards)
	donor, recipient = 0, 0
	for s := 1; s < shards; s++ {
		if perShard[s] > perShard[donor] {
			donor = s
		}
		if perShard[s] < perShard[recipient] {
			recipient = s
		}
	}
	if float64(perShard[donor]) <= tol*mean || donor == recipient {
		return 0, 0, nil, 0, false
	}
	budget := min(float64(perShard[donor])-mean, mean-float64(perShard[recipient]))
	if budget <= 0 {
		return 0, 0, nil, 0, false
	}
	var own []int
	for j, o := range t.slots {
		if int(o) == donor {
			own = append(own, j)
		}
	}
	sort.Slice(own, func(a, b int) bool { return perSlot[own[a]] > perSlot[own[b]] })
	for _, j := range own {
		if float64(moved+perSlot[j]) <= budget {
			slots = append(slots, j)
			moved += perSlot[j]
		}
	}
	if len(slots) == 0 {
		return 0, 0, nil, 0, false
	}
	return donor, recipient, slots, moved, true
}

// planRangeMove picks one range migration: donor = busiest shard,
// recipient = least busy, moving the upper half of the donor's hottest
// span (span midpoint split — per-span counters do not resolve the
// intra-span distribution, so halving is the finest safe cut).
func planRangeMove(t *routeTable, shards int, tol float64) (donor, recipient int, lo, hi uint64, moved uint64, ok bool) {
	perShard, perSpan := shardLoads(t, shards)
	var total uint64
	for _, l := range perShard {
		total += l
	}
	if total == 0 {
		return 0, 0, 0, 0, 0, false
	}
	mean := float64(total) / float64(shards)
	donor, recipient = 0, 0
	for s := 1; s < shards; s++ {
		if perShard[s] > perShard[donor] {
			donor = s
		}
		if perShard[s] < perShard[recipient] {
			recipient = s
		}
	}
	if float64(perShard[donor]) <= tol*mean || donor == recipient {
		return 0, 0, 0, 0, 0, false
	}
	hot := -1
	for i, o := range t.owner {
		if int(o) == donor && (hot < 0 || perSpan[i] > perSpan[hot]) {
			hot = i
		}
	}
	if hot < 0 || perSpan[hot] == 0 {
		return 0, 0, 0, 0, 0, false
	}
	sLo := uint64(0)
	if hot > 0 {
		sLo = t.bounds[hot-1] + 1
	}
	sHi := t.bounds[hot]
	if sHi-sLo < 1 {
		return 0, 0, 0, 0, 0, false
	}
	mid := sLo + (sHi-sLo)/2
	return donor, recipient, mid + 1, sHi, perSpan[hot] / 2, true
}

// Rebalance measures the per-slot load counters, plans and runs up to
// MaxMoves migrations from the busiest shards to the least busy, and
// reports the projected imbalance before and after. It is the
// LoadReport-driven entry point: run traffic, then call Rebalance to
// move the measured hot slices. Requires EnableResharding.
func (m *Ordered) Rebalance(opts RebalanceOptions) (RebalanceReport, error) {
	var rep RebalanceReport
	t := m.rt.Load()
	if t == nil {
		return rep, ErrReshardingDisabled
	}
	perShard, _ := shardLoads(t, len(m.shards))
	rep.Before = imbalanceOf(perShard)
	tol := opts.tolerance()
	for move := 0; move < opts.maxMoves(len(m.shards)); move++ {
		t = m.rt.Load()
		if t.kind == kindSlots {
			donor, recipient, slots, moved, ok := planSlotMove(t, len(m.shards), tol)
			if !ok {
				break
			}
			if err := m.MigrateSlots(donor, recipient, slots, opts.BatchSize); err != nil {
				return rep, err
			}
			rep.Moves = append(rep.Moves, MoveReport{Donor: donor, Recipient: recipient, Slots: slots, Ops: moved})
		} else {
			donor, recipient, lo, hi, moved, ok := planRangeMove(t, len(m.shards), tol)
			if !ok {
				break
			}
			if err := m.MigrateRange(donor, recipient, lo, hi, opts.BatchSize); err != nil {
				return rep, err
			}
			rep.Moves = append(rep.Moves, MoveReport{Donor: donor, Recipient: recipient, Lo: lo, Hi: hi, Ranged: true, Ops: moved})
		}
	}
	perShard, _ = shardLoads(m.rt.Load(), len(m.shards))
	rep.After = imbalanceOf(perShard)
	return rep, nil
}

// Rebalance is the load-driven rebalancer for the unordered front-end;
// see Ordered.Rebalance.
func (m *Hash) Rebalance(opts RebalanceOptions) (RebalanceReport, error) {
	var rep RebalanceReport
	t := m.rt.Load()
	if t == nil {
		return rep, ErrReshardingDisabled
	}
	perShard, _ := shardLoads(t, len(m.shards))
	rep.Before = imbalanceOf(perShard)
	tol := opts.tolerance()
	for move := 0; move < opts.maxMoves(len(m.shards)); move++ {
		t = m.rt.Load()
		donor, recipient, slots, moved, ok := planSlotMove(t, len(m.shards), tol)
		if !ok {
			break
		}
		if err := m.MigrateSlots(donor, recipient, slots, opts.BatchSize); err != nil {
			return rep, err
		}
		rep.Moves = append(rep.Moves, MoveReport{Donor: donor, Recipient: recipient, Slots: slots, Ops: moved})
	}
	perShard, _ = shardLoads(m.rt.Load(), len(m.shards))
	rep.After = imbalanceOf(perShard)
	return rep, nil
}
