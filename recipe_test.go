package recipe_test

import (
	"strings"
	"testing"

	recipe "repro"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

// TestPublicAPIRoundTrip exercises the exported surface the examples use.
func TestPublicAPIRoundTrip(t *testing.T) {
	heap := recipe.NewHeap()
	idx, err := recipe.NewOrdered("P-ART", heap, recipe.YCSBString)
	if err != nil {
		t.Fatal(err)
	}
	gen := recipe.NewKeyGenerator(recipe.YCSBString)
	for i := uint64(0); i < 2000; i++ {
		if err := idx.Insert(gen.Key(i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := idx.Lookup(gen.Key(i)); !ok || v != i {
			t.Fatalf("lookup %d = %d,%v", i, v, ok)
		}
	}
	if heap.Stats().Clwb == 0 {
		t.Fatal("no clwb counted — persistence placements missing")
	}
}

// TestAllIndexesThroughPublicAPI runs a small YCSB A against every index.
func TestAllIndexesThroughPublicAPI(t *testing.T) {
	for _, name := range recipe.OrderedNames() {
		heap := recipe.NewHeap()
		idx, err := recipe.NewOrdered(name, heap, recipe.RandInt)
		if err != nil {
			t.Fatal(err)
		}
		gen := recipe.NewKeyGenerator(recipe.RandInt)
		res, err := recipe.RunOrderedWorkload(name, idx, gen, heap, ycsb.A, 3000, 3000, 4, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MopsPerSec() <= 0 {
			t.Fatalf("%s: zero throughput", name)
		}
	}
	for _, name := range recipe.HashNames() {
		heap := recipe.NewHeap()
		idx, err := recipe.NewHash(name, heap)
		if err != nil {
			t.Fatal(err)
		}
		gen := recipe.NewKeyGenerator(recipe.RandInt)
		res, err := recipe.RunHashWorkload(name, idx, gen, heap, ycsb.A, 3000, 3000, 4, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MopsPerSec() <= 0 {
			t.Fatalf("%s: zero throughput", name)
		}
	}
}

// TestCrashRecoveryAllRecipeIndexes is the §7.5 headline at test scale:
// every RECIPE-converted index survives its crash campaign.
func TestCrashRecoveryAllRecipeIndexes(t *testing.T) {
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rep := recipe.CrashCampaignOrdered(name, func(h *recipe.Heap) recipe.OrderedIndex {
				idx, err := recipe.NewOrdered(name, h, recipe.RandInt)
				if err != nil {
					t.Fatal(err)
				}
				return idx
			}, recipe.RandInt, 25, 2000, 2000, 4)
			if !rep.Pass() {
				t.Fatalf("crash campaign failed: %s", rep)
			}
			if rep.Crashed == 0 {
				t.Fatal("campaign never crashed; vacuous")
			}
		})
	}
	t.Run("P-CLHT", func(t *testing.T) {
		rep := recipe.CrashCampaignHash("P-CLHT", func(h *recipe.Heap) recipe.HashIndex {
			idx, err := recipe.NewHash("P-CLHT", h)
			if err != nil {
				t.Fatal(err)
			}
			return idx
		}, 25, 2000, 2000, 4)
		if !rep.Pass() {
			t.Fatalf("crash campaign failed: %s", rep)
		}
	})
}

// TestDurabilityAllRecipeIndexes: §5 flush coverage for all conversions.
func TestDurabilityAllRecipeIndexes(t *testing.T) {
	for _, name := range []string{"P-ART", "P-HOT", "P-BwTree", "P-Masstree"} {
		name := name
		rep := recipe.DurabilityOrdered(name, func(h *recipe.Heap) recipe.OrderedIndex {
			idx, err := recipe.NewOrdered(name, h, recipe.YCSBString)
			if err != nil {
				t.Fatal(err)
			}
			return idx
		}, recipe.YCSBString, 800)
		if !rep.Pass() {
			t.Fatalf("durability failed: %s", rep)
		}
	}
	rep := recipe.DurabilityHash("P-CLHT", func(h *recipe.Heap) recipe.HashIndex {
		idx, err := recipe.NewHash("P-CLHT", h)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}, 800)
	if !rep.Pass() {
		t.Fatalf("durability failed: %s", rep)
	}
}

// TestOrderedIndexesAgreeUnderYCSB cross-checks all five ordered indexes
// against one another: identical workloads must leave identical logical
// contents.
func TestOrderedIndexesAgreeUnderYCSB(t *testing.T) {
	const loadN, opN = 2000, 2000
	gen := keys.NewGenerator(keys.RandInt)
	contents := map[string]map[uint64]uint64{}
	for _, name := range recipe.OrderedNames() {
		heap := pmem.NewFast()
		idx, err := recipe.NewOrdered(name, heap, recipe.RandInt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := recipe.RunOrderedWorkload(name, idx, gen, heap, ycsb.A, loadN, opN, 1, 9); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := map[uint64]uint64{}
		idx.Scan(nil, 0, func(k []byte, v uint64) bool {
			got[keys.DecodeUint64(k)] = v
			return true
		})
		contents[name] = got
	}
	ref := contents[recipe.OrderedNames()[0]]
	for name, got := range contents {
		if len(got) != len(ref) {
			t.Fatalf("%s holds %d keys, reference holds %d", name, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("%s disagrees on key %d: %d vs %d", name, k, got[k], v)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(recipe.Table1(), "Masstree") {
		t.Fatal("Table1 incomplete")
	}
	if !strings.Contains(recipe.Table2(), "#3") {
		t.Fatal("Table2 incomplete")
	}
	if !strings.Contains(recipe.Table3(), "Threaded conversations") {
		t.Fatal("Table3 incomplete")
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := recipe.WorkloadByName("E")
	if err != nil || w.ScanPct != 95 {
		t.Fatalf("WorkloadByName(E) = %+v, %v", w, err)
	}
	if _, err := recipe.WorkloadByName("Q"); err == nil {
		t.Fatal("bogus workload accepted")
	}
	if len(recipe.Workloads()) != 5 {
		t.Fatal("expected 5 workloads")
	}
}

// TestStreamingScanPublicAPI pins the exported streaming scan surface:
// ShardOptions.ScanBatch, the sharded Cursor, NewCursor over a bare
// index, and the per-site durability campaign re-exports.
func TestStreamingScanPublicAPI(t *testing.T) {
	m, err := recipe.NewShardedOrdered("P-ART", recipe.RandInt,
		recipe.ShardOptions{Shards: 4, ScanBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := recipe.NewKeyGenerator(recipe.RandInt)
	for id := uint64(0); id < 500; id++ {
		if err := m.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	var want []uint64
	m.Scan(nil, 0, func(_ []byte, v uint64) bool {
		want = append(want, v)
		return true
	})
	if len(want) != 500 {
		t.Fatalf("scan visited %d, want 500", len(want))
	}
	cur := m.Cursor(nil)
	for i := 0; ; i++ {
		_, v, ok := cur.Next()
		if !ok {
			if i != len(want) {
				t.Fatalf("cursor ended at %d, want %d", i, len(want))
			}
			break
		}
		if v != want[i] {
			t.Fatalf("cursor entry %d = %d, want %d", i, v, want[i])
		}
	}

	heap := recipe.NewHeap()
	idx, err := recipe.NewOrdered("FAST & FAIR", heap, recipe.RandInt)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 100; id++ {
		if err := idx.Insert(gen.Key(id), id); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for c := recipe.NewCursor(idx, nil, recipe.DefaultScanBatch); ; n++ {
		if _, _, ok := c.Next(); !ok {
			break
		}
	}
	if n != 100 {
		t.Fatalf("NewCursor yielded %d entries, want 100", n)
	}

	rep := recipe.DurabilitySitesOrdered("P-ART", func(h *recipe.Heap) recipe.OrderedIndex {
		ix, err := recipe.NewOrdered("P-ART", h, recipe.RandInt)
		if err != nil {
			panic(err) // runs on a worker goroutine; t.Fatal is not allowed here
		}
		return ix
	}, recipe.RandInt, 600, 50, 2)
	if len(rep.Sites) == 0 || !rep.Pass() {
		t.Fatalf("per-site campaign: %s", rep.String())
	}
}
