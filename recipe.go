// Package recipe is a Go reproduction of "RECIPE: Converting Concurrent
// DRAM Indexes to Persistent-Memory Indexes" (Lee et al., SOSP 2019).
//
// RECIPE's insight is that the isolation machinery of a class of
// concurrent DRAM indexes — non-blocking reads that tolerate
// inconsistencies, writes that can detect and fix them — is exactly the
// machinery crash recovery needs on persistent memory, so such indexes
// become crash-consistent PM indexes by ordering and flushing their
// stores (plus, for Condition #3 indexes, a small helper on the write
// path). This package exposes the five converted indexes of the paper
// (P-ART, P-HOT, P-BwTree, P-CLHT, P-Masstree), the four hand-crafted PM
// baselines they are evaluated against (FAST & FAIR, CCEH, Level Hashing,
// WOART), the simulated persistent-memory substrate they run on, and the
// crash-testing methodology of §5.
//
// Quick start:
//
//	heap := recipe.NewHeap()
//	idx, _ := recipe.NewOrdered("P-ART", heap, recipe.RandInt)
//	_ = idx.Insert([]byte("hello"), 42)
//	v, ok := idx.Lookup([]byte("hello"))
//
// Go has no cache-line flush or fence control, so persistence is
// simulated: every index routes its clwb/mfence placements through a
// Heap, which counts them (reproducing the paper's Fig 4c/4d and Table 4
// counters), optionally models their latency, feeds an LLC simulator, and
// drives the §5 crash and durability testing. See DESIGN.md for the full
// substitution map.
package recipe

import (
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

// OrderedIndex is a persistent index supporting point and range queries
// over byte-string keys. All implementations are safe for concurrent use.
type OrderedIndex = core.OrderedIndex

// HashIndex is a persistent point-query index over non-zero uint64 keys.
type HashIndex = core.HashIndex

// Heap is the simulated persistent-memory pool indexes allocate from.
type Heap = pmem.Heap

// HeapOptions configures counters, durability tracking, LLC simulation,
// latency modelling and crash injection for a Heap.
type HeapOptions = pmem.Options

// Key kinds used throughout the evaluation (§7).
const (
	// RandInt is the paper's 8-byte random integer key type.
	RandInt = keys.RandInt
	// YCSBString is the paper's 24-byte YCSB string key type.
	YCSBString = keys.YCSBString
)

// KeyKind selects a key encoding.
type KeyKind = keys.Kind

// NewHeap returns a fast simulated-PM heap (counters only).
func NewHeap() *Heap { return pmem.NewFast() }

// NewHeapWithOptions returns a heap with explicit instrumentation.
func NewHeapWithOptions(opts HeapOptions) *Heap { return pmem.New(opts) }

// NewLLC returns an LLC simulator with the evaluation machine's geometry
// (32 MB, 16-way, 64-byte lines) for use in HeapOptions.
func NewLLC() *cachesim.Cache { return cachesim.New(cachesim.DefaultConfig()) }

// NewOrdered constructs one of the ordered indexes by evaluation name:
// "P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", or "WOART".
func NewOrdered(name string, heap *Heap, kind KeyKind) (OrderedIndex, error) {
	return core.NewOrdered(name, heap, kind)
}

// NewHash constructs one of the unordered indexes by evaluation name:
// "P-CLHT", "CCEH", or "Level Hashing".
func NewHash(name string, heap *Heap) (HashIndex, error) {
	return core.NewHash(name, heap)
}

// OrderedNames lists the ordered indexes in the paper's Fig 4 order.
func OrderedNames() []string { return append([]string(nil), core.OrderedNames...) }

// HashNames lists the unordered indexes in the paper's Fig 5 order.
func HashNames() []string { return append([]string(nil), core.HashNames...) }

// KeyGenerator deterministically maps dense identifiers to evaluation
// keys of a given kind.
type KeyGenerator = keys.Generator

// NewKeyGenerator returns a generator for kind.
func NewKeyGenerator(kind KeyKind) *KeyGenerator { return keys.NewGenerator(kind) }

// Workload is one of the YCSB patterns of Table 3.
type Workload = ycsb.Workload

// Workloads returns the evaluated YCSB workloads in Table 3 order:
// Load A, A, B, C, E.
func Workloads() []Workload { return append([]Workload(nil), ycsb.All...) }

// WorkloadByName returns the named workload ("Load A", "A", "B", "C",
// "E").
func WorkloadByName(name string) (Workload, error) { return ycsb.ByName(name) }

// Result is one (index, workload) measurement with throughput and
// per-operation counters.
type Result = harness.Result

// RunOrderedWorkload loads loadN keys and executes opN operations of w
// against a fresh run of idx across threads, as §7 does.
func RunOrderedWorkload(name string, idx OrderedIndex, gen *KeyGenerator, heap *Heap, w Workload, loadN, opN, threads int, seed int64) (Result, error) {
	return harness.RunOrdered(name, idx, gen, heap, w, loadN, opN, threads, seed)
}

// RunHashWorkload is RunOrderedWorkload for unordered indexes.
func RunHashWorkload(name string, idx HashIndex, gen *KeyGenerator, heap *Heap, w Workload, loadN, opN, threads int, seed int64) (Result, error) {
	return harness.RunHash(name, idx, gen, heap, w, loadN, opN, threads, seed)
}

// CrashReport summarises a §7.5 crash-recovery campaign.
type CrashReport = harness.CrashReport

// CrashCampaignOrdered runs the §5/§7.5 crash-recovery methodology
// against an ordered index factory.
func CrashCampaignOrdered(name string, factory func(*Heap) OrderedIndex, kind KeyKind, states, loadN, mixedN, threads int) CrashReport {
	return harness.CrashCampaignOrdered(name, factory, kind, states, loadN, mixedN, threads)
}

// CrashCampaignHash is CrashCampaignOrdered for unordered indexes.
func CrashCampaignHash(name string, factory func(*Heap) HashIndex, states, loadN, mixedN, threads int) CrashReport {
	return harness.CrashCampaignHash(name, factory, states, loadN, mixedN, threads)
}

// DurabilityReport summarises a §5 durability (flush-coverage) test.
type DurabilityReport = harness.DurabilityReport

// DurabilityOrdered verifies every dirtied line is flushed and fenced at
// each operation boundary.
func DurabilityOrdered(name string, factory func(*Heap) OrderedIndex, kind KeyKind, n int) DurabilityReport {
	return harness.DurabilityOrdered(name, factory, kind, n)
}

// DurabilityHash is DurabilityOrdered for unordered indexes.
func DurabilityHash(name string, factory func(*Heap) HashIndex, n int) DurabilityReport {
	return harness.DurabilityHash(name, factory, n)
}

// ErrCrashed is returned by operations interrupted by a simulated crash.
var ErrCrashed = crash.ErrCrashed

// Table1 renders the paper's Table 1 (conversion effort).
func Table1() string { return core.Table1() }

// Table2 renders the paper's Table 2 (conversion actions).
func Table2() string { return core.Table2() }

// Table3 renders the paper's Table 3 (YCSB workload patterns).
func Table3() string { return ycsb.Describe() }
