// Package recipe is a Go reproduction of "RECIPE: Converting Concurrent
// DRAM Indexes to Persistent-Memory Indexes" (Lee et al., SOSP 2019).
//
// RECIPE's insight is that the isolation machinery of a class of
// concurrent DRAM indexes — non-blocking reads that tolerate
// inconsistencies, writes that can detect and fix them — is exactly the
// machinery crash recovery needs on persistent memory, so such indexes
// become crash-consistent PM indexes by ordering and flushing their
// stores (plus, for Condition #3 indexes, a small helper on the write
// path). This package exposes the five converted indexes of the paper
// (P-ART, P-HOT, P-BwTree, P-CLHT, P-Masstree), the four hand-crafted PM
// baselines they are evaluated against (FAST & FAIR, CCEH, Level Hashing,
// WOART), the simulated persistent-memory substrate they run on, the
// crash-testing methodology of §5, and a sharded front-end that
// partitions the key space across many independent heaps for
// multi-socket-style scaling and per-shard crash recovery (see
// NewShardedOrdered and the shard package).
//
// Quick start:
//
//	heap := recipe.NewHeap()
//	idx, _ := recipe.NewOrdered("P-ART", heap, recipe.RandInt)
//	_ = idx.Insert([]byte("hello"), 42)
//	v, ok := idx.Lookup([]byte("hello"))
//
// Go has no cache-line flush or fence control, so persistence is
// simulated: every index routes its clwb/mfence placements through a
// Heap, which counts them (reproducing the paper's Fig 4c/4d and Table 4
// counters), optionally models their latency, feeds an LLC simulator, and
// drives the §5 crash and durability testing. See DESIGN.md for the full
// substitution map.
package recipe

import (
	"repro/internal/cachesim"
	"repro/internal/commit"
	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/group"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/loadgen"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/ycsb"
	"repro/shard"
)

// OrderedIndex is a persistent index supporting point and range queries
// over byte-string keys. All implementations are safe for concurrent use.
type OrderedIndex = core.OrderedIndex

// HashIndex is a persistent point-query index over non-zero uint64 keys.
type HashIndex = core.HashIndex

// Heap is the simulated persistent-memory pool indexes allocate from.
type Heap = pmem.Heap

// HeapOptions configures counters, durability tracking, LLC simulation,
// latency modelling and crash injection for a Heap.
type HeapOptions = pmem.Options

// Key kinds used throughout the evaluation (§7).
const (
	// RandInt is the paper's 8-byte random integer key type.
	RandInt = keys.RandInt
	// YCSBString is the paper's 24-byte YCSB string key type.
	YCSBString = keys.YCSBString
)

// KeyKind selects a key encoding.
type KeyKind = keys.Kind

// NewHeap returns a fast simulated-PM heap (counters only).
func NewHeap() *Heap { return pmem.NewFast() }

// NewHeapWithOptions returns a heap with explicit instrumentation.
func NewHeapWithOptions(opts HeapOptions) *Heap { return pmem.New(opts) }

// NewLLC returns an LLC simulator with the evaluation machine's geometry
// (32 MB, 16-way, 64-byte lines) for use in HeapOptions.
func NewLLC() *cachesim.Cache { return cachesim.New(cachesim.DefaultConfig()) }

// NewOrdered constructs one of the ordered indexes by evaluation name:
// "P-ART", "P-HOT", "P-BwTree", "P-Masstree", "FAST & FAIR", or "WOART".
func NewOrdered(name string, heap *Heap, kind KeyKind) (OrderedIndex, error) {
	return core.NewOrdered(name, heap, kind)
}

// NewHash constructs one of the unordered indexes by evaluation name:
// "P-CLHT", "CCEH", or "Level Hashing".
func NewHash(name string, heap *Heap) (HashIndex, error) {
	return core.NewHash(name, heap)
}

// OrderedNames lists the ordered indexes in the paper's Fig 4 order.
func OrderedNames() []string { return append([]string(nil), core.OrderedNames...) }

// HashNames lists the unordered indexes in the paper's Fig 5 order.
func HashNames() []string { return append([]string(nil), core.HashNames...) }

// KeyGenerator deterministically maps dense identifiers to evaluation
// keys of a given kind.
type KeyGenerator = keys.Generator

// NewKeyGenerator returns a generator for kind.
func NewKeyGenerator(kind KeyKind) *KeyGenerator { return keys.NewGenerator(kind) }

// Workload is one of the YCSB patterns: Table 3's rows plus the
// beyond-the-paper D and F.
type Workload = ycsb.Workload

// Workloads returns the workloads the paper evaluates, in Table 3
// order: Load A, A, B, C, E.
func Workloads() []Workload { return append([]Workload(nil), ycsb.All...) }

// ExtendedWorkloads returns every workload including the
// update-bearing D (read-latest) and F (read-modify-write, zipfian)
// the paper skipped, in YCSB letter order.
func ExtendedWorkloads() []Workload { return append([]Workload(nil), ycsb.Extended...) }

// WorkloadByName returns the named workload ("Load A", "A", "B", "C",
// "D", "E", "F").
func WorkloadByName(name string) (Workload, error) { return ycsb.ByName(name) }

// OpKind is a YCSB operation type (insert, read, scan, update, RMW);
// per-kind arrays such as Result.Counts are indexed by it.
type OpKind = ycsb.OpKind

// The operation kinds, and the size of per-kind arrays.
const (
	OpInsert   = ycsb.OpInsert
	OpRead     = ycsb.OpRead
	OpScan     = ycsb.OpScan
	OpUpdate   = ycsb.OpUpdate
	OpRMW      = ycsb.OpRMW
	NumOpKinds = ycsb.NumOpKinds
)

// Distribution selects which already-inserted key each read-like
// operation (read, update, RMW, scan start) targets: Uniform (the
// paper's setup and the default), Zipfian, or Latest. Set it on
// Workload.Dist, or pass names through DistributionByName.
type Distribution = ycsb.Distribution

// Uniform draws read-like targets uniformly from the loaded
// population — the paper's §7 setup and the bit-compatible default.
type Uniform = ycsb.Uniform

// Zipfian draws with YCSB's zipfian skew (Gray et al. sampler);
// Theta in (0, 1), hottest rank first.
type Zipfian = ycsb.Zipfian

// Latest is YCSB's read-latest distribution (workload D): zipfian
// over recency, hottest on the most recently inserted keys.
type Latest = ycsb.Latest

// DefaultTheta is the YCSB default skew (0.99) for Zipfian and Latest.
const DefaultTheta = ycsb.DefaultTheta

// DistributionByName returns the named distribution ("uniform",
// "zipfian", "latest") with the given theta (ignored for uniform).
func DistributionByName(name string, theta float64) (Distribution, error) {
	return ycsb.DistributionByName(name, theta)
}

// Result is one (index, workload) measurement with throughput and
// per-operation counters.
type Result = harness.Result

// StatsSource yields heap-counter snapshots for a measured phase: a
// single *Heap, or a sharded front-end aggregating many heaps.
type StatsSource = harness.StatsSource

// RunOrderedWorkload loads loadN keys and executes opN operations of w
// against a fresh run of idx across threads, as §7 does. stats is the
// counter source for the measured-phase delta — the heap idx runs on,
// or the sharded front-end itself.
func RunOrderedWorkload(name string, idx OrderedIndex, gen *KeyGenerator, stats StatsSource, w Workload, loadN, opN, threads int, seed int64) (Result, error) {
	return harness.RunOrdered(name, idx, gen, stats, w, loadN, opN, threads, seed)
}

// RunHashWorkload is RunOrderedWorkload for unordered indexes.
func RunHashWorkload(name string, idx HashIndex, gen *KeyGenerator, stats StatsSource, w Workload, loadN, opN, threads int, seed int64) (Result, error) {
	return harness.RunHash(name, idx, gen, stats, w, loadN, opN, threads, seed)
}

// Attribution is the exact per-op-kind counter breakdown of a
// single-threaded attribution pass: clwb/fence per update vs per
// insert, conserving bit-exactly against the aggregate delta.
type Attribution = harness.Attribution

// KindStats is one op kind's share of an Attribution.
type KindStats = harness.KindStats

// AttributeOrderedWorkload loads loadN keys and executes opN
// operations of w single-threaded, charging every counter delta to
// the operation kind that caused it.
func AttributeOrderedWorkload(idx OrderedIndex, gen *KeyGenerator, stats StatsSource, w Workload, loadN, opN int, seed int64) (Attribution, error) {
	return harness.AttributeOrdered(idx, gen, stats, w, loadN, opN, seed)
}

// AttributeHashWorkload is AttributeOrderedWorkload for unordered
// indexes.
func AttributeHashWorkload(idx HashIndex, gen *KeyGenerator, stats StatsSource, w Workload, loadN, opN int, seed int64) (Attribution, error) {
	return harness.AttributeHash(idx, gen, stats, w, loadN, opN, seed)
}

// ShardedOrdered is a sharded ordered index: the key space is
// partitioned across NumShards independent heaps, each with its own
// converted index instance and durability tracker. It implements
// OrderedIndex and StatsSource, so it drops into RunOrderedWorkload
// unchanged. A crash in one shard is recovered by replaying that shard
// alone (RecoverCrashed).
type ShardedOrdered = shard.Ordered

// ShardedHash is ShardedOrdered for unordered indexes.
type ShardedHash = shard.Hash

// ShardOptions configures a sharded front-end: the shard count, the
// partitioner (hash default, range optional), and the per-shard heap
// options.
type ShardOptions = shard.Options

// Partitioner routes byte-string keys to shards. HashPartition (the
// default) balances any key population; RangePartition preserves key
// order so scans touch few shards.
type Partitioner = shard.Partitioner

// HashPartition is the default partitioner (FNV-1a + Mix64).
type HashPartition = shard.HashPartition

// RangePartition is the order-preserving partitioner.
type RangePartition = shard.RangePartition

// Cursor is a pull-style streaming scan iterator: Next returns entries
// in ascending key order, holding at most one batch of entries per
// shard, so servers can paginate arbitrarily long scans in O(shards ×
// batch) memory without callback gymnastics. Obtain one from
// (*ShardedOrdered).Cursor or NewCursor.
type Cursor = shard.Cursor

// DefaultScanBatch is the per-shard batch size streaming scans use when
// ShardOptions.ScanBatch (or NewCursor's batch) is unset.
const DefaultScanBatch = shard.DefaultScanBatch

// NewCursor returns a streaming cursor over a single ordered index,
// starting at start (nil = the minimum key). batch < 1 selects
// DefaultScanBatch.
func NewCursor(idx OrderedIndex, start []byte, batch int) *Cursor {
	return shard.NewCursor(idx, start, batch)
}

// NewShardedOrdered builds the named ordered index on each of
// opts.Shards private heaps behind one front-end.
func NewShardedOrdered(name string, kind KeyKind, opts ShardOptions) (*ShardedOrdered, error) {
	return shard.NewOrdered(name, kind, opts)
}

// NewShardedHash is NewShardedOrdered for unordered indexes.
func NewShardedHash(name string, opts ShardOptions) (*ShardedHash, error) {
	return shard.NewHash(name, opts)
}

// CrashReport summarises a §7.5 crash-recovery campaign.
type CrashReport = harness.CrashReport

// CrashCampaignOrdered runs the §5/§7.5 crash-recovery methodology
// against an ordered index factory.
func CrashCampaignOrdered(name string, factory func(*Heap) OrderedIndex, kind KeyKind, states, loadN, mixedN, threads int) CrashReport {
	return harness.CrashCampaignOrdered(name, factory, kind, states, loadN, mixedN, threads)
}

// CrashCampaignHash is CrashCampaignOrdered for unordered indexes.
func CrashCampaignHash(name string, factory func(*Heap) HashIndex, states, loadN, mixedN, threads int) CrashReport {
	return harness.CrashCampaignHash(name, factory, states, loadN, mixedN, threads)
}

// ShardCrashReport summarises a per-shard crash-recovery campaign: a
// CrashReport plus the shard count and the count of healthy-shard
// replays (which must be zero).
type ShardCrashReport = harness.ShardCrashReport

// CrashCampaignSharded runs the crash-recovery methodology against the
// sharded front-end with the per-shard recovery discipline: a crash in
// shard k is recovered by replaying shard k alone.
func CrashCampaignSharded(name string, kind KeyKind, shards, states, loadN, mixedN, threads int) ShardCrashReport {
	return harness.CrashCampaignSharded(name, kind, shards, states, loadN, mixedN, threads)
}

// DurabilityReport summarises a §5 durability (flush-coverage) test.
type DurabilityReport = harness.DurabilityReport

// DurabilityOrdered verifies every dirtied line is flushed and fenced at
// each operation boundary.
func DurabilityOrdered(name string, factory func(*Heap) OrderedIndex, kind KeyKind, n int) DurabilityReport {
	return harness.DurabilityOrdered(name, factory, kind, n)
}

// DurabilityHash is DurabilityOrdered for unordered indexes.
func DurabilityHash(name string, factory func(*Heap) HashIndex, n int) DurabilityReport {
	return harness.DurabilityHash(name, factory, n)
}

// SiteCampaignReport summarises a per-crash-site durability campaign:
// one row per crash site, in deterministic site order.
type SiteCampaignReport = harness.SiteCampaignReport

// SiteReport is one crash site's row in a SiteCampaignReport.
type SiteReport = harness.SiteReport

// DurabilitySitesOrdered crashes an ordered index once at every crash
// site its load passes through and verifies that recovery plus postN
// traced post-crash inserts leave every dirtied line flushed and fenced
// at each operation boundary. Trials are independent heaps and fan out
// over `workers` goroutines (< 1 = GOMAXPROCS).
func DurabilitySitesOrdered(name string, factory func(*Heap) OrderedIndex, kind KeyKind, loadN, postN, workers int) SiteCampaignReport {
	return harness.DurabilitySitesOrdered(name, factory, kind, loadN, postN, workers)
}

// DurabilitySitesHash is DurabilitySitesOrdered for unordered indexes.
func DurabilitySitesHash(name string, factory func(*Heap) HashIndex, loadN, postN, workers int) SiteCampaignReport {
	return harness.DurabilitySitesHash(name, factory, loadN, postN, workers)
}

// CyclePolicy selects the fate of clwb'd-but-unfenced lines when a
// shadow-mode heap materialises a post-power-loss image (PowerCycle):
// PolicyRevert drops them, PolicyKeep retains them, PolicyTorn flips a
// seeded coin per line. Stores never written back always revert.
type CyclePolicy = pmem.Policy

// The power-cycle policies.
const (
	PolicyRevert = pmem.PolicyRevert
	PolicyKeep   = pmem.PolicyKeep
	PolicyTorn   = pmem.PolicyTorn
)

// CyclePolicies returns all policies in severity order.
func CyclePolicies() []CyclePolicy { return append([]CyclePolicy(nil), pmem.Policies...) }

// ParseCyclePolicy parses "revert", "keep" or "torn".
func ParseCyclePolicy(s string) (CyclePolicy, error) { return pmem.ParsePolicy(s) }

// CycleReport summarises one Heap.PowerCycle: how many objects were
// touched and how their lines fared. Requires HeapOptions.Shadow.
type CycleReport = pmem.CycleReport

// LossyOutcome classifies one crash site of a lossy campaign: Clean,
// Partial (the unacknowledged in-flight op vanished atomically —
// acceptable), LostAck (an acknowledged write is missing — a real
// durability bug), or Corrupt (recovery failed or readback mismatched).
type LossyOutcome = harness.LossyOutcome

// The lossy site outcomes, in severity order.
const (
	OutcomeClean   = harness.OutcomeClean
	OutcomePartial = harness.OutcomePartial
	OutcomeLostAck = harness.OutcomeLostAck
	OutcomeCorrupt = harness.OutcomeCorrupt
)

// LossyCampaignReport summarises a lossy power-failure campaign: one
// row per crash site; Pass reports zero LOST-ACK and zero CORRUPT.
type LossyCampaignReport = harness.LossyCampaignReport

// LossySiteReport is one crash site's row in a LossyCampaignReport.
type LossySiteReport = harness.LossySiteReport

// LossyCampaignOrdered runs the adversarial power-failure campaign
// against an ordered index factory: crash at every site the load passes
// through, materialise a post-power-loss image under policy, recover,
// and verify the full dataset plus postN post-cycle inserts. Trials are
// independent shadow-mode heaps fanned out over `workers` goroutines;
// the report is deterministic for a fixed seed, any worker count.
func LossyCampaignOrdered(name string, factory func(*Heap) OrderedIndex, kind KeyKind, policy CyclePolicy, seed int64, loadN, postN, workers int) LossyCampaignReport {
	return harness.LossyCampaignOrdered(name, factory, kind, policy, seed, loadN, postN, workers)
}

// LossyCampaignHash is LossyCampaignOrdered for unordered indexes.
func LossyCampaignHash(name string, factory func(*Heap) HashIndex, policy CyclePolicy, seed int64, loadN, postN, workers int) LossyCampaignReport {
	return harness.LossyCampaignHash(name, factory, policy, seed, loadN, postN, workers)
}

// ByteOp is one write in an ordered group commit: an insert or (with
// Update set) an in-place update. Slices of ByteOp feed
// (*ShardedOrdered).ApplyBatch, which coalesces the ops' trailing
// fences into one per shard while keeping each op's write-back
// coverage intact.
type ByteOp = group.ByteOp

// U64Op is ByteOp for unordered (uint64-keyed) indexes.
type U64Op = group.U64Op

// GroupObserver receives acknowledgement callbacks during an observed
// group commit: obs(i) after op i is applied, and once more with the
// last applied index after the covering fence retires — only then are
// the ops durably acknowledged.
type GroupObserver = group.Observer

// GroupError reports a group commit that stopped early: Applied ops
// were applied (durable only once a covering fence retired), the rest
// were not attempted.
type GroupError = group.Error

// The crash sites a group commit passes through, swept by the batched
// campaigns: after each op is applied (fence still deferred) and after
// the group's single covering fence.
const (
	SiteGroupOpApplied    = group.SiteOpApplied
	SiteGroupCommitFenced = group.SiteCommitFenced
)

// BatchError reports a sharded batch whose sub-batches partially
// failed: ops routed to healthy shards committed, Failed carries one
// SubBatchError per failing shard. errors.Is sees through it to each
// cause (e.g. ErrShardUnavailable).
type BatchError = shard.BatchError

// SubBatchError is one shard's failure inside a BatchError: the shard
// number, the batch positions routed to it, and how many of them were
// applied before the error.
type SubBatchError = shard.SubBatchError

// Deferred is a group-commit combiner for one writer: Insert/Update
// queue writes and flush them as a fence-coalesced batch when limit is
// reached or Flush is called. Not safe for concurrent use; each writer
// thread owns its own Deferred.
type Deferred = shard.Deferred

// DeferredHash is Deferred for unordered indexes.
type DeferredHash = shard.DeferredHash

// NewDeferredWriter returns a combiner batching up to limit writes per
// group commit against m.
func NewDeferredWriter(m *ShardedOrdered, limit int) *Deferred {
	return shard.NewDeferred(m, limit)
}

// NewDeferredHashWriter is NewDeferredWriter for unordered indexes.
func NewDeferredHashWriter(m *ShardedHash, limit int) *DeferredHash {
	return shard.NewDeferredHash(m, limit)
}

// RunOrderedWorkloadBatched is RunOrderedWorkload with writes routed
// through per-thread group-commit combiners of the given batch size:
// trailing fences coalesce to one per batch per shard, and reads that
// could target a thread's own pending writes flush first.
func RunOrderedWorkloadBatched(name string, m *ShardedOrdered, gen *KeyGenerator, w Workload, loadN, opN, threads, batch int, seed int64) (Result, error) {
	return harness.RunOrderedBatched(name, m, gen, w, loadN, opN, threads, batch, seed)
}

// RunHashWorkloadBatched is RunOrderedWorkloadBatched for unordered
// indexes (scan workloads are rejected).
func RunHashWorkloadBatched(name string, m *ShardedHash, gen *KeyGenerator, w Workload, loadN, opN, threads, batch int, seed int64) (Result, error) {
	return harness.RunHashBatched(name, m, gen, w, loadN, opN, threads, batch, seed)
}

// AttributeOrderedWorkloadBatched is AttributeOrderedWorkload through
// the batched write path: every counter delta, including each group's
// single covering fence, is charged to the op kind that caused it, and
// the result conserves bit-exactly against the aggregate delta.
func AttributeOrderedWorkloadBatched(m *ShardedOrdered, gen *KeyGenerator, w Workload, loadN, opN, batch int, seed int64) (Attribution, error) {
	return harness.AttributeOrderedBatched(m, gen, w, loadN, opN, batch, seed)
}

// AttributeHashWorkloadBatched is AttributeOrderedWorkloadBatched for
// unordered indexes.
func AttributeHashWorkloadBatched(m *ShardedHash, gen *KeyGenerator, w Workload, loadN, opN, batch int, seed int64) (Attribution, error) {
	return harness.AttributeHashBatched(m, gen, w, loadN, opN, batch, seed)
}

// LossyCampaignOrderedBatched is LossyCampaignOrdered with the load
// and post-cycle writes issued as group commits of the given batch
// size: the sweep also crashes at the group boundary sites
// (SiteGroupOpApplied, SiteGroupCommitFenced), acknowledgement is per
// batch, and the in-flight set at a crash is the whole unacknowledged
// batch — each of its keys must be present with the exact value or
// absent (batch-atomic PARTIAL), never corrupt.
func LossyCampaignOrderedBatched(name string, factory func(*Heap) OrderedIndex, kind KeyKind, policy CyclePolicy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return harness.LossyCampaignOrderedBatched(name, factory, kind, policy, seed, loadN, postN, batch, workers)
}

// LossyCampaignHashBatched is LossyCampaignOrderedBatched for
// unordered indexes.
func LossyCampaignHashBatched(name string, factory func(*Heap) HashIndex, policy CyclePolicy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return harness.LossyCampaignHashBatched(name, factory, policy, seed, loadN, postN, batch, workers)
}

// DurabilitySitesOrderedBatched is DurabilitySitesOrdered through the
// batched write path: flush coverage is checked at every acknowledged
// batch boundary (mid-batch, fences are legitimately deferred).
func DurabilitySitesOrderedBatched(name string, factory func(*Heap) OrderedIndex, kind KeyKind, loadN, postN, batch, workers int) SiteCampaignReport {
	return harness.DurabilitySitesOrderedBatched(name, factory, kind, loadN, postN, batch, workers)
}

// DurabilitySitesHashBatched is DurabilitySitesOrderedBatched for
// unordered indexes.
func DurabilitySitesHashBatched(name string, factory func(*Heap) HashIndex, loadN, postN, batch, workers int) SiteCampaignReport {
	return harness.DurabilitySitesHashBatched(name, factory, loadN, postN, batch, workers)
}

// CommitFuture is the completion handle an async enqueue returns: it
// resolves exactly once — with nil only after the covering fence of
// the group commit carrying the op retired (the op is durable), or
// with an error if the op did not commit.
type CommitFuture = commit.Future

// CommitOptions configures the per-shard committers of an async
// pipeline: queue capacity, max batch, backpressure policy, enqueue
// timeout, and the flush interval bounding staleness.
type CommitOptions = commit.Options

// CommitPolicy selects the backpressure behaviour of async enqueues
// against a full shard queue.
type CommitPolicy = commit.Policy

// The backpressure policies: block for space (default), reject
// immediately with ErrCommitQueueFull, or wait up to
// CommitOptions.EnqueueTimeout.
const (
	CommitBlock    = commit.Block
	CommitReject   = commit.Reject
	CommitDeadline = commit.Deadline
)

// Commit queue/batch defaults (see CommitOptions).
const (
	DefaultCommitQueue    = commit.DefaultQueue
	DefaultCommitMaxBatch = commit.DefaultMaxBatch
)

// Typed failures of the async pipeline surface, matched by errors.Is.
var (
	// ErrCommitQueueFull reports an enqueue rejected by backpressure.
	ErrCommitQueueFull = commit.ErrQueueFull
	// ErrCommitClosed reports an enqueue after the pipeline closed.
	ErrCommitClosed = commit.ErrClosed
	// ErrCommitPending is CommitFuture.Err's answer while unresolved.
	ErrCommitPending = commit.ErrPending
	// ErrCommitterFailed marks futures failed by a committer that died
	// (panic or injected crash); the shard is quarantined.
	ErrCommitterFailed = commit.ErrCommitterFailed
)

// CommitterError carries a dead committer's shard number and cause.
type CommitterError = commit.CommitterError

// The crash sites bracketing a committer's drain loop, swept by the
// async campaigns: after each op is applied inside the fence group,
// and after the covering fence retires but before any future resolves.
const (
	SiteCommitDrainApplied = commit.SiteDrainApplied
	SiteCommitAckFenced    = commit.SiteAckFenced
)

// AsyncOrdered is the async commit pipeline over a sharded ordered
// front-end: one committer goroutine per shard drains a bounded queue
// into group commits and resolves each write's CommitFuture only after
// its covering fence retired. Reads go to the front-end directly and
// may trail enqueued writes by at most CommitOptions.FlushInterval
// plus one batch commit; Drain (or waiting your own futures) closes
// the window. Close resolves every accepted future and stops the
// committers.
type AsyncOrdered = commit.Ordered

// AsyncHash is AsyncOrdered for unordered indexes.
type AsyncHash = commit.Hash

// NewAsyncOrdered starts one committer per shard of m; see AsyncOrdered.
func NewAsyncOrdered(m *ShardedOrdered, opts CommitOptions) *AsyncOrdered {
	return commit.NewOrdered(m, opts)
}

// NewAsyncHash is NewAsyncOrdered for unordered indexes.
func NewAsyncHash(m *ShardedHash, opts CommitOptions) *AsyncHash {
	return commit.NewHash(m, opts)
}

// RunOrderedWorkloadAsync is RunOrderedWorkload with writes enqueued
// through an async commit pipeline built over m with opts: workers
// receive futures, wait them only when a read could observe their own
// pending inserts, and the measured phase ends at a full pipeline
// drain. Result.AckOps/AckTotal carry the enqueue-to-ack latency
// sample.
func RunOrderedWorkloadAsync(name string, m *ShardedOrdered, gen *KeyGenerator, w Workload, loadN, opN, threads int, opts CommitOptions, seed int64) (Result, error) {
	return harness.RunOrderedAsync(name, m, gen, w, loadN, opN, threads, opts, seed)
}

// RunHashWorkloadAsync is RunOrderedWorkloadAsync for unordered
// indexes (scan workloads are rejected).
func RunHashWorkloadAsync(name string, m *ShardedHash, gen *KeyGenerator, w Workload, loadN, opN, threads int, opts CommitOptions, seed int64) (Result, error) {
	return harness.RunHashAsync(name, m, gen, w, loadN, opN, threads, opts, seed)
}

// AttributeOrderedWorkloadAsync is AttributeOrderedWorkload through
// the async pipeline: the committers' observer hook charges every
// write's counter delta to the kind inferred from its value tags, and
// the result conserves bit-exactly against the aggregate delta.
func AttributeOrderedWorkloadAsync(m *ShardedOrdered, gen *KeyGenerator, w Workload, loadN, opN int, opts CommitOptions, seed int64) (Attribution, error) {
	return harness.AttributeOrderedAsync(m, gen, w, loadN, opN, opts, seed)
}

// AttributeHashWorkloadAsync is AttributeOrderedWorkloadAsync for
// unordered indexes.
func AttributeHashWorkloadAsync(m *ShardedHash, gen *KeyGenerator, w Workload, loadN, opN int, opts CommitOptions, seed int64) (Attribution, error) {
	return harness.AttributeHashAsync(m, gen, w, loadN, opN, opts, seed)
}

// LossyCampaignOrderedAsync is LossyCampaignOrdered with the load and
// post-cycle writes enqueued through a standalone async committer: the
// sweep also crashes at the committer drain-loop sites
// (SiteCommitDrainApplied, SiteCommitAckFenced), acknowledgement is
// per future, and only nil-resolved futures join the must-survive
// model — error-resolved writes may survive whole or vanish whole.
func LossyCampaignOrderedAsync(name string, factory func(*Heap) OrderedIndex, kind KeyKind, policy CyclePolicy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return harness.LossyCampaignOrderedAsync(name, factory, kind, policy, seed, loadN, postN, batch, workers)
}

// LossyCampaignHashAsync is LossyCampaignOrderedAsync for unordered
// indexes.
func LossyCampaignHashAsync(name string, factory func(*Heap) HashIndex, policy CyclePolicy, seed int64, loadN, postN, batch, workers int) LossyCampaignReport {
	return harness.LossyCampaignHashAsync(name, factory, policy, seed, loadN, postN, batch, workers)
}

// DurabilitySitesOrderedAsync is DurabilitySitesOrdered through the
// async write path: flush coverage is checked at quiesced committer
// boundaries after a crash at any site, the drain-loop sites included.
func DurabilitySitesOrderedAsync(name string, factory func(*Heap) OrderedIndex, kind KeyKind, loadN, postN, batch, workers int) SiteCampaignReport {
	return harness.DurabilitySitesOrderedAsync(name, factory, kind, loadN, postN, batch, workers)
}

// DurabilitySitesHashAsync is DurabilitySitesOrderedAsync for
// unordered indexes.
func DurabilitySitesHashAsync(name string, factory func(*Heap) HashIndex, loadN, postN, batch, workers int) SiteCampaignReport {
	return harness.DurabilitySitesHashAsync(name, factory, loadN, postN, batch, workers)
}

// ErrShardUnavailable is the sentinel matched by errors.Is for
// operations routed to a quarantined shard of a sharded front-end: a
// shard whose recovery failed (or that a verifier reported corrupt) is
// quarantined and returns this while every other shard keeps serving;
// RetryShard re-attempts recovery under capped backoff. See the shard
// package for Quarantine/Quarantined/Degraded/RetryShard.
var ErrShardUnavailable = shard.ErrShardUnavailable

// ShardUnavailableError carries the quarantined shard's number and the
// quarantine cause.
type ShardUnavailableError = shard.ShardUnavailableError

// ErrCrashed is returned by operations interrupted by a simulated crash.
var ErrCrashed = crash.ErrCrashed

// Table1 renders the paper's Table 1 (conversion effort).
func Table1() string { return core.Table1() }

// Table2 renders the paper's Table 2 (conversion actions).
func Table2() string { return core.Table2() }

// Table3 renders the paper's Table 3 (YCSB workload patterns),
// extended with the beyond-the-paper D and F rows and each row's
// default request distribution.
func Table3() string { return ycsb.Describe() }

// LoadReport is an epoch-windowed per-shard load snapshot of a sharded
// front-end: call ShardedOrdered/ShardedHash LoadReport() to close the
// current accounting epoch and get op/clwb/fence deltas per shard since
// the previous call, with no writer quiescing. Imbalance() (busiest
// shard's share over the mean) is the rebalancer's trigger metric.
type LoadReport = shard.LoadReport

// ShardLoad is one shard's row in a LoadReport.
type ShardLoad = shard.ShardLoad

// RebalanceOptions tunes the load-driven rebalancer (move budget,
// target imbalance tolerance, migration copy batch size).
type RebalanceOptions = shard.RebalanceOptions

// RebalanceReport summarises one Rebalance call: projected imbalance
// before/after and the migrations performed.
type RebalanceReport = shard.RebalanceReport

// MoveReport describes one migration a Rebalance call performed.
type MoveReport = shard.MoveReport

// Crash sites of the live-migration protocol, in addition to the
// group-commit sites each copy batch passes through.
const (
	SiteReshardCopyApplied   = shard.SiteCopyApplied
	SiteReshardFlipPublished = shard.SiteFlipPublished
)

// Resharding errors; see the shard package.
var (
	ErrNotReshardable     = shard.ErrNotReshardable
	ErrReshardingDisabled = shard.ErrReshardingDisabled
	ErrMigrationAborted   = shard.ErrMigrationAborted
)

// ReshardCampaignReport summarises a crash-mid-migration campaign.
type ReshardCampaignReport = harness.ReshardCampaignReport

// ReshardSiteReport is one (crash site, host shard) campaign row.
type ReshardSiteReport = harness.ReshardSiteReport

// ReshardLossyOrdered runs the lossy power-failure campaign over the
// live-migration crash sites for a sharded ordered index: crash at each
// site (on the recipient for copy-path sites, the donor for the flip),
// power-cycle only that shard under the policy, recover, and verify
// zero lost acknowledgements, a duplicate-free merged scan, zero
// healthy-shard replays, and that an aborted migration is retryable.
func ReshardLossyOrdered(name string, kind KeyKind, ranged bool, policy CyclePolicy, seed int64, shards, loadN, postN, workers int) ReshardCampaignReport {
	return harness.ReshardLossyOrdered(name, kind, ranged, policy, seed, shards, loadN, postN, workers)
}

// ReshardLossyHash is ReshardLossyOrdered for unordered indexes.
func ReshardLossyHash(name string, policy CyclePolicy, seed int64, shards, loadN, postN, workers int) ReshardCampaignReport {
	return harness.ReshardLossyHash(name, policy, seed, shards, loadN, postN, workers)
}

// ReshardDurabilityOrdered is the flush-coverage variant of
// ReshardLossyOrdered: Track-mode heaps, no power loss, asserting every
// dirtied line is flushed and fenced at operation boundaries through
// the crash, recovery, and retry.
func ReshardDurabilityOrdered(name string, kind KeyKind, ranged bool, shards, loadN, postN, workers int) ReshardCampaignReport {
	return harness.ReshardDurabilityOrdered(name, kind, ranged, shards, loadN, postN, workers)
}

// ReshardDurabilityHash is ReshardDurabilityOrdered for unordered
// indexes.
func ReshardDurabilityHash(name string, shards, loadN, postN, workers int) ReshardCampaignReport {
	return harness.ReshardDurabilityHash(name, shards, loadN, postN, workers)
}

// Serving tier (internal/server + internal/loadgen): the RESP-style
// wire protocol over a sharded ordered front-end, and the open-loop
// load generator that drives it.

// Server serves the wire protocol over one sharded ordered front-end;
// see internal/server for the command set and drain semantics.
type Server = server.Server

// ServerOptions configures a Server (write mode, batch size, async
// commit pipeline, pipelining cap).
type ServerOptions = server.Options

// WriteMode selects how SET/UPDATE reach persistence: ServeSync,
// ServeBatched (per-connection group commit) or ServeAsync
// (ack-after-fence pipeline).
type WriteMode = server.WriteMode

// Write modes for ServerOptions.Mode.
const (
	ServeSync    = server.ModeSync
	ServeBatched = server.ModeBatched
	ServeAsync   = server.ModeAsync
)

// NewServer builds a Server over front-end m.
func NewServer(m *ShardedOrdered, opts ServerOptions) *Server { return server.New(m, opts) }

// LoadOptions configures an open-loop load run against a serving
// endpoint (target QPS, Poisson arrivals, YCSB key distributions).
type LoadOptions = loadgen.Options

// LoadgenReport is one load run's outcome: achieved QPS, per-kind op
// and error counts, typed error codes, and the reply deficit after
// drain.
type LoadgenReport = loadgen.Report

// RunLoad drives one open-loop load run and reports it.
func RunLoad(opts LoadOptions) (LoadgenReport, error) { return loadgen.Run(opts) }
